// Quickstart: run GCN inference on a (synthetic) Cora through the full
// Dynasparse pipeline — compile, dynamic kernel-to-primitive mapping,
// simulated Alveo-U250 execution — and print the report.
//
//   ./quickstart

#include <cstdio>

#include "core/engine.hpp"

int main() {
  using namespace dynasparse;

  // 1. Dataset: the registry reproduces the paper's Table VI statistics.
  Dataset cora = generate_dataset(dataset_by_tag("CO"), /*scale=*/1, /*seed=*/7);
  std::printf("Cora: %lld vertices, %lld edges, H0 density %.2f%%\n",
              static_cast<long long>(cora.graph.num_vertices()),
              static_cast<long long>(cora.graph.num_edges()),
              cora.features.density() * 100.0);

  // 2. Model: a 2-layer GCN sized like the paper's (hidden dim 16).
  Rng rng(13);
  GnnModel gcn = build_model(GnnModelKind::kGcn, cora.spec.feature_dim,
                             cora.spec.hidden_dim, cora.spec.num_classes, rng);

  // 3. Inference with the dynamic K2P mapping (the paper's contribution).
  InferenceReport report = run_inference(gcn, cora, {});
  std::printf("\n%s\n\n%s\n", report.summary().c_str(), report.kernel_table().c_str());

  // 4. Compare against the static mapping strategies of prior accelerators.
  CompiledProgram prog = compile(gcn, cora, u250_config());
  for (MappingStrategy s : {MappingStrategy::kStatic1, MappingStrategy::kStatic2}) {
    RuntimeOptions opt;
    opt.strategy = s;
    InferenceReport r = run_compiled(prog, opt);
    std::printf("%s latency: %.4f ms  (Dynamic speedup %.2fx)\n", strategy_name(s),
                r.latency_ms, r.latency_ms / report.latency_ms);
  }
  return 0;
}
