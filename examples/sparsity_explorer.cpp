// Sparsity explorer: sweep the input-feature density of a fixed graph and
// print which primitive the Analyzer picks for the first Update kernel's
// pairs, alongside the analytical model's regions (paper Section VI-A).
// This makes the decision thresholds amin = 1/2 and amax = 2/psys
// tangible, and shows the crossover in measured (simulated) latency.
//
//   ./sparsity_explorer

#include <cstdio>

#include "core/engine.hpp"
#include "runtime/perf_model.hpp"

int main() {
  using namespace dynasparse;
  SimConfig cfg = u250_config();

  std::printf("Analytical regions (psys = %d): GEMM iff amin >= 0.5;"
              " SpDMM iff amax >= %.4f; else SPMM\n\n",
              cfg.psys, 2.0 / cfg.psys);
  std::printf("%-10s %-10s %-10s | %12s %10s %10s %10s %10s\n", "H0-dens",
              "W-dens", "chosen", "latency(ms)", "GEMM", "SpDMM", "SPMM", "skip");

  DatasetSpec spec;
  spec.name = "explorer";
  spec.tag = "EX";
  spec.vertices = 2048;
  spec.edges = 16384;
  spec.feature_dim = 256;
  spec.num_classes = 16;
  spec.hidden_dim = 64;

  for (double h0 : {0.005, 0.05, 0.2, 0.45, 0.8}) {
    for (double w_sparsity : {0.0, 0.95}) {
      spec.h0_density = h0;
      Dataset ds = generate_dataset(spec, 1, 29);
      Rng rng(31);
      GnnModel gcn = build_model(GnnModelKind::kGcn, spec.feature_dim, spec.hidden_dim,
                                 spec.num_classes, rng);
      prune_model(gcn, w_sparsity);
      double w_density = gcn.weight_density();
      Primitive predicted = choose_primitive(h0, w_density, cfg.psys);

      InferenceReport rep = run_inference(gcn, ds, {});
      const KernelExecutionReport& first_update = rep.execution.kernels[0];
      std::printf("%-10.3f %-10.3f %-10s | %12.4f %10lld %10lld %10lld %10lld\n", h0,
                  w_density, primitive_name(predicted), rep.latency_ms,
                  static_cast<long long>(first_update.pairs_gemm),
                  static_cast<long long>(first_update.pairs_spdmm),
                  static_cast<long long>(first_update.pairs_spmm),
                  static_cast<long long>(first_update.pairs_skipped));
    }
  }
  std::printf("\nPer-tile densities scatter around the matrix average, so near the\n"
              "thresholds the Analyzer mixes primitives within one kernel — that is\n"
              "the fine-grained mapping the paper's Section VI-B argues for.\n");
  return 0;
}
