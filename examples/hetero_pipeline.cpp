// Heterogeneous pipeline scenario — the paper's Section IX future work:
// split a GNN between CPU, GPU and FPGA. The planner prices every kernel
// on each device (FPGA from the cycle-level simulation, CPU/GPU from the
// roofline models) and a dynamic program picks the assignment including
// PCIe transfer costs for the feature matrix between devices.
//
//   ./hetero_pipeline

#include <cstdio>

#include "core/engine.hpp"
#include "hetero/hetero_planner.hpp"
#include "io/report_io.hpp"

int main() {
  using namespace dynasparse;

  // A graph with very sparse features but a dense hidden pipeline: the
  // sweet spot for splitting (FPGA excels at the sparse kernels, the GPU
  // at the dense tail — exactly the paper's motivation).
  DatasetSpec spec;
  spec.name = "hetero-demo";
  spec.tag = "HD";
  spec.vertices = 8192;
  spec.edges = 65536;
  spec.feature_dim = 8192;  // NELL-like: huge, nearly-empty feature space
  spec.num_classes = 32;
  spec.h0_density = 0.002;
  spec.hidden_dim = 256;
  Dataset ds = generate_dataset(spec, 1, 41);

  Rng rng(42);
  GnnModel gin = build_model(GnnModelKind::kGin, spec.feature_dim, spec.hidden_dim,
                             spec.num_classes, rng);
  CompiledProgram prog = compile(gin, ds, u250_config());
  ExecutionResult fpga_run = execute(prog, {});

  auto lat = hetero_latency_matrix(prog, fpga_run);
  std::printf("per-kernel latency (ms):\n%-16s %10s %10s %10s\n", "kernel", "CPU",
              "GPU", "FPGA");
  for (std::size_t i = 0; i < prog.kernels.size(); ++i)
    std::printf("%-16s %10.4f %10.4f %10.4f\n",
                prog.kernels[i].describe().substr(0, 16).c_str(), lat[i][0], lat[i][1],
                lat[i][2]);

  HeteroPlan plan = plan_heterogeneous(prog, fpga_run);
  std::printf("\n%s\n", plan.describe().c_str());

  // Transfers get cheaper with a faster interconnect (paper Section
  // VIII-D suggests PCIe 5.0): rerun the plan with 4x the link bandwidth.
  HeteroOptions fast;
  fast.pcie_bytes_per_s = 4 * 11.2e9;
  HeteroPlan plan_fast = plan_heterogeneous(prog, fpga_run, fast);
  std::printf("with a 4x link: %s\n", plan_fast.describe().c_str());
  return 0;
}
