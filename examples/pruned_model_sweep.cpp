// Pruned-model scenario (the paper's Figs. 11/12 workload): magnitude-prune
// a GIN model to increasing weight sparsity and watch the dynamic mapping
// shift primitives (GEMM -> SpDMM -> SPMM -> skip) and latency fall, while
// the static strategies leave the sparsity on the table.
//
//   ./pruned_model_sweep [sparsity ...]   (defaults: 0 30 60 90 99)

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/engine.hpp"
#include "util/strict_parse.hpp"

int main(int argc, char** argv) {
  using namespace dynasparse;

  std::vector<double> sparsities = {0.0, 0.3, 0.6, 0.9, 0.99};
  if (argc > 1) {
    sparsities.clear();
    for (int i = 1; i < argc; ++i)
      sparsities.push_back(strict_stod(argv[i]) / 100.0);
  }

  // CiteSeer: very sparse features + a large input dimension, so the
  // Update kernels are compute-bound and the strategy gap is visible.
  Dataset citeseer = generate_dataset(dataset_by_tag("CI"), 1, 11);
  std::printf("%-9s %12s %12s %10s %8s %8s %8s %8s\n", "sparsity", "Dynamic(ms)",
              "Static1(ms)", "speedup", "GEMM", "SpDMM", "SPMM", "skip");

  for (double s : sparsities) {
    Rng rng(17);
    GnnModel gin = build_model(GnnModelKind::kGin, citeseer.spec.feature_dim,
                               citeseer.spec.hidden_dim, citeseer.spec.num_classes, rng);
    prune_model(gin, s);
    CompiledProgram prog = compile(gin, citeseer, u250_config());

    RuntimeOptions dyn;
    InferenceReport rd = run_compiled(prog, dyn);
    RuntimeOptions st;
    st.strategy = MappingStrategy::kStatic1;
    InferenceReport rs = run_compiled(prog, st);

    const AcceleratorStats& stats = rd.execution.stats;
    std::printf("%8.0f%% %12.4f %12.4f %9.2fx %8lld %8lld %8lld %8lld\n", s * 100.0,
                rd.latency_ms, rs.latency_ms, rs.latency_ms / rd.latency_ms,
                static_cast<long long>(stats.pairs_gemm),
                static_cast<long long>(stats.pairs_spdmm),
                static_cast<long long>(stats.pairs_spmm),
                static_cast<long long>(stats.pairs_skipped));
  }
  std::printf("\nNote how pruning moves pairs out of GEMM into the sparse primitives\n"
              "and eventually into outright skips — latency follows the density.\n");
  return 0;
}
