// Bring-your-own-graph scenario: build a Graph from an explicit edge list
// (here: a small citation-network-like structure plus an RMAT community
// graph), attach custom features, and run GraphSAGE inference — the
// workflow a downstream user follows for data the registry doesn't cover.
//
//   ./custom_graph

#include <cstdio>

#include "core/engine.hpp"
#include "graph/generators.hpp"

int main() {
  using namespace dynasparse;

  // --- Variant A: a hand-written mini graph -----------------------------
  std::vector<Edge> edges = {
      {0, 1}, {1, 0}, {1, 2}, {2, 1}, {2, 3}, {3, 2}, {3, 4},
      {4, 3}, {4, 0}, {0, 4}, {1, 3}, {2, 4},
  };
  Graph ring(5, edges);
  Rng rng(23);
  CooMatrix features = generate_features(5, 8, 0.75, rng);

  Dataset custom;
  custom.spec.name = "hand-built";
  custom.spec.tag = "HB";
  custom.spec.vertices = ring.num_vertices();
  custom.spec.edges = ring.num_edges();
  custom.spec.feature_dim = 8;
  custom.spec.num_classes = 3;
  custom.spec.hidden_dim = 4;
  custom.graph = std::move(ring);
  custom.features = std::move(features);

  GnnModel sage = build_model(GnnModelKind::kSage, 8, 4, 3, rng);
  InferenceReport rep = run_inference(sage, custom, {});
  std::printf("hand-built graph: %s\n", rep.summary().c_str());
  DenseMatrix out = rep.execution.output.to_dense();
  for (std::int64_t v = 0; v < out.rows(); ++v) {
    std::printf("  vertex %lld embedding:", static_cast<long long>(v));
    for (std::int64_t c = 0; c < out.cols(); ++c) std::printf(" %+.3f", out.at(v, c));
    std::printf("\n");
  }

  // --- Variant B: an RMAT community graph -------------------------------
  Graph communities = rmat(4096, 40000, 0.55, 0.15, 0.15, rng);
  Dataset big;
  big.spec.name = "rmat-communities";
  big.spec.tag = "RM";
  big.spec.vertices = communities.num_vertices();
  big.spec.edges = communities.num_edges();
  big.spec.feature_dim = 96;
  big.spec.num_classes = 10;
  big.spec.hidden_dim = 32;
  big.features = generate_features(4096, 96, 0.15, rng);
  big.graph = std::move(communities);

  GnnModel sage_big = build_model(GnnModelKind::kSage, 96, 32, 10, rng);
  InferenceReport rep_big = run_inference(sage_big, big, {});
  std::printf("\nRMAT graph: %s\n%s", rep_big.summary().c_str(),
              rep_big.kernel_table().c_str());
  return 0;
}
