// Reproduces paper Fig. 14 and the end-to-end discussion of Section
// VIII-D: speedup of Dynasparse over PyG/DGL on CPU (Ryzen 3990x) and GPU
// (RTX3090), in accelerator latency and in end-to-end latency
// (preprocessing + PCIe data movement + execution).

#include <cstdio>

#include "baselines/platform_models.hpp"
#include "bench_common.hpp"
#include "util/math_util.hpp"

using namespace dynasparse;
using namespace dynasparse::bench;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  std::printf("=== Fig. 14: speedup over CPU/GPU GNN frameworks (all models) ===\n");
  std::map<std::string, std::vector<double>> exec_speedups, e2e_speedups;

  for (GnnModelKind kind : paper_models()) {
    std::printf("\n-- %s --\n%-4s", model_kind_name(kind), "tag");
    for (const PlatformSpec& p : framework_platforms())
      std::printf("%12s", p.name.c_str());
    std::printf("\n");
    for (const std::string& tag : dataset_tags()) {
      Dataset ds = load_dataset(tag, args);
      GnnModel m = make_model(kind, ds, args.seed);
      InferenceReport rep = run_inference(m, ds, {});
      std::printf("%-4s", tag.c_str());
      for (const PlatformSpec& p : framework_platforms()) {
        double base_ms = platform_latency_ms(p, m, ds);
        double exec_speedup = base_ms / rep.latency_ms;
        double e2e_speedup = base_ms / rep.end_to_end_ms;
        exec_speedups[p.name].push_back(exec_speedup);
        e2e_speedups[p.name].push_back(e2e_speedup);
        std::printf("%11.1fx", exec_speedup);
      }
      std::printf("\n");
    }
  }

  std::printf("\ngeo-mean speedup (accelerator latency):\n");
  for (const PlatformSpec& p : framework_platforms())
    std::printf("  vs %-8s %8.1fx\n", p.name.c_str(),
                geometric_mean(exec_speedups[p.name]));
  std::printf("geo-mean speedup (end-to-end: + preprocessing + PCIe movement):\n");
  for (const PlatformSpec& p : framework_platforms())
    std::printf("  vs %-8s %8.1fx\n", p.name.c_str(),
                geometric_mean(e2e_speedups[p.name]));
  std::printf("# paper: exec-latency speedups 306x (PyG-CPU), 16.4x (PyG-GPU),\n"
              "# 141.9x (DGL-CPU), 35x (DGL-GPU); end-to-end 56.9x / 2.37x / 16.3x /\n"
              "# 1.37x. Reproduced claims: CPU >> GPU gap, PyG/DGL ordering per\n"
              "# device, and end-to-end speedups shrinking vs exec-only.\n");
  return 0;
}
