#pragma once
// Shared plumbing for the table/figure reproduction benches.
//
// Every bench prints the paper's rows as aligned text plus `# paper:`
// annotations with the published values, so EXPERIMENTS.md is regenerated
// by simply running every binary (see DESIGN.md, "Benchmark output
// contract"). Datasets are generated at their default bench scale; pass
// `--scale N` to override (1 = paper-size graphs, slower), `--seed S` for
// a different synthetic instance.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "util/strict_parse.hpp"
#include "util/stopwatch.hpp"

namespace dynasparse::bench {

struct BenchArgs {
  int scale = 0;  // 0 = per-dataset default bench scale
  std::uint64_t seed = 2023;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
      args.scale = strict_stoi(argv[++i]);
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      args.seed = strict_stoull(argv[++i]);
  }
  return args;
}

inline const std::vector<std::string>& dataset_tags() {
  static const std::vector<std::string> tags = {"CI", "CO", "PU", "FL", "NE", "RE"};
  return tags;
}

inline Dataset load_dataset(const std::string& tag, const BenchArgs& args) {
  return generate_dataset(dataset_by_tag(tag), args.scale, args.seed);
}

inline GnnModel make_model(GnnModelKind kind, const Dataset& ds, std::uint64_t seed,
                           double weight_sparsity = 0.0) {
  Rng rng(seed + static_cast<std::uint64_t>(kind) * 131);
  GnnModel m = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                           ds.spec.num_classes, rng);
  if (weight_sparsity > 0.0) prune_model(m, weight_sparsity);
  return m;
}

inline double strategy_latency_ms(const CompiledProgram& prog, MappingStrategy s) {
  RuntimeOptions opt;
  opt.strategy = s;
  return run_compiled(prog, opt).latency_ms;
}

// ---- machine-readable BENCH output ----------------------------------------
// Perf PRs record their numbers as BENCH_<pr>.json so every future
// optimization has a trajectory to beat (ISSUE 1 contract). The helpers
// below keep that output dependency-free.

/// Wall-clock `fn` `reps` times and return the best (minimum) time in ms —
/// the standard noise-robust microbench estimator.
inline double time_best_of_ms(int reps, const std::function<void()>& fn) {
  double best = -1.0;
  for (int i = 0; i < reps; ++i) {
    Stopwatch sw;
    fn();
    double ms = sw.elapsed_ms();
    if (best < 0.0 || ms < best) best = ms;
  }
  return best;
}

/// Minimal JSON emitter: enough for flat objects and arrays of flat
/// objects, which is all the BENCH files need.
class JsonWriter {
 public:
  JsonWriter& key(const std::string& k) {
    sep();
    out_ << '"' << k << "\":";
    return *this;
  }
  JsonWriter& value(double v) { return raw(num(v)); }
  JsonWriter& value(std::int64_t v) { return raw(std::to_string(v)); }
  JsonWriter& value(int v) { return raw(std::to_string(v)); }
  JsonWriter& value(bool v) { return raw(v ? "true" : "false"); }
  JsonWriter& value(const std::string& v) { return raw('"' + escape(v) + '"'); }
  JsonWriter& begin_object() { return open('{'); }
  JsonWriter& end_object() { return close('}'); }
  JsonWriter& begin_array() { return open('['); }
  JsonWriter& end_array() { return close(']'); }
  std::string str() const { return out_.str(); }

 private:
  static std::string num(double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
  }
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
    return out;
  }
  void sep() {
    if (need_comma_) out_ << ',';
    need_comma_ = false;
  }
  JsonWriter& raw(const std::string& s) {
    sep();
    out_ << s;
    need_comma_ = true;
    return *this;
  }
  JsonWriter& open(char c) {
    sep();
    out_ << c;
    need_comma_ = false;
    return *this;
  }
  JsonWriter& close(char c) {
    out_ << c;
    need_comma_ = true;
    return *this;
  }
  std::ostringstream out_;
  bool need_comma_ = false;
};

}  // namespace dynasparse::bench
