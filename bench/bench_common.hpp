#pragma once
// Shared plumbing for the table/figure reproduction benches.
//
// Every bench prints the paper's rows as aligned text plus `# paper:`
// annotations with the published values, so EXPERIMENTS.md is regenerated
// by simply running every binary (see DESIGN.md, "Benchmark output
// contract"). Datasets are generated at their default bench scale; pass
// `--scale N` to override (1 = paper-size graphs, slower), `--seed S` for
// a different synthetic instance.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/engine.hpp"

namespace dynasparse::bench {

struct BenchArgs {
  int scale = 0;  // 0 = per-dataset default bench scale
  std::uint64_t seed = 2023;
};

inline BenchArgs parse_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--scale") == 0 && i + 1 < argc)
      args.scale = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      args.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
  }
  return args;
}

inline const std::vector<std::string>& dataset_tags() {
  static const std::vector<std::string> tags = {"CI", "CO", "PU", "FL", "NE", "RE"};
  return tags;
}

inline Dataset load_dataset(const std::string& tag, const BenchArgs& args) {
  return generate_dataset(dataset_by_tag(tag), args.scale, args.seed);
}

inline GnnModel make_model(GnnModelKind kind, const Dataset& ds, std::uint64_t seed,
                           double weight_sparsity = 0.0) {
  Rng rng(seed + static_cast<std::uint64_t>(kind) * 131);
  GnnModel m = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                           ds.spec.num_classes, rng);
  if (weight_sparsity > 0.0) prune_model(m, weight_sparsity);
  return m;
}

inline double strategy_latency_ms(const CompiledProgram& prog, MappingStrategy s) {
  RuntimeOptions opt;
  opt.strategy = s;
  return run_compiled(prog, opt).latency_ms;
}

}  // namespace dynasparse::bench
