// Reproduces paper Table IX: preprocessing time of the compiler (IR
// generation + data partitioning + compile-time sparsity profiling) per
// model and dataset, measured host-side in wall-clock ms.

#include <cstdio>

#include "bench_common.hpp"

using namespace dynasparse;
using namespace dynasparse::bench;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  std::printf("=== Table IX: compiler preprocessing time (ms) ===\n");
  std::printf("%-10s", "model");
  for (const std::string& tag : dataset_tags()) std::printf("%10s", tag.c_str());
  std::printf("\n");
  for (GnnModelKind kind : paper_models()) {
    std::printf("%-10s", model_kind_name(kind));
    for (const std::string& tag : dataset_tags()) {
      Dataset ds = load_dataset(tag, args);
      GnnModel m = make_model(kind, ds, args.seed);
      CompiledProgram prog = compile(m, ds, u250_config());
      std::printf("%10.3f", prog.stats.total_ms());
    }
    std::printf("\n");
  }
  std::printf("# paper Table IX (ms): GCN row 0.25 / 0.022 / 0.57 / 2.68 / 1.70 / 51\n"
              "# Reproduced claim: preprocessing is milliseconds — negligible next to\n"
              "# regenerating an accelerator (DeepBurning-GL), and reusable across\n"
              "# sparsity changes. Breakdown: partitioning dominates, as in VIII-D.\n");
  return 0;
}
