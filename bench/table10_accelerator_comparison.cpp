// Reproduces paper Table X: accelerator-execution latency of Dynasparse
// vs the modelled BoostGCN and HyGCN accelerators on the GCN model.
// (Both baselines use Static-1-style mapping and ignore feature/weight
// sparsity; see src/baselines/accelerator_models.hpp.)

#include <cstdio>

#include "baselines/accelerator_models.hpp"
#include "bench_common.hpp"
#include "util/math_util.hpp"

using namespace dynasparse;
using namespace dynasparse::bench;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  std::printf("=== Table X: latency (ms) vs state-of-the-art GNN accelerators (GCN) ===\n");
  std::printf("%-12s", "design");
  for (const std::string& tag : dataset_tags()) std::printf("%12s", tag.c_str());
  std::printf("%12s\n", "peak-TFLOPS");

  std::vector<double> boost_row, hygcn_row, dyn_row;
  for (const std::string& tag : dataset_tags()) {
    Dataset ds = load_dataset(tag, args);
    GnnModel m = make_model(GnnModelKind::kGcn, ds, args.seed);
    boost_row.push_back(accelerator_latency_ms(boostgcn_spec(), m, ds));
    hygcn_row.push_back(accelerator_latency_ms(hygcn_spec(), m, ds));
    CompiledProgram prog = compile(m, ds, u250_config());
    dyn_row.push_back(strategy_latency_ms(prog, MappingStrategy::kDynamic));
  }
  auto print_row = [&](const char* name, const std::vector<double>& row, double tflops) {
    std::printf("%-12s", name);
    for (double v : row) std::printf("%12.4g", v);
    std::printf("%12.3f\n", tflops);
  };
  print_row("BoostGCN", boost_row, 1.35);
  print_row("HyGCN", hygcn_row, 4.6);
  print_row("Dynasparse", dyn_row, 0.512);

  std::vector<double> sp_boost, sp_hygcn;
  for (std::size_t i = 0; i < dyn_row.size(); ++i) {
    sp_boost.push_back(boost_row[i] / dyn_row[i]);
    sp_hygcn.push_back(hygcn_row[i] / dyn_row[i]);
  }
  std::printf("geo-mean speedup: vs BoostGCN %.2fx (paper 2.7x), vs HyGCN %.2fx"
              " (paper 171x*)\n",
              geometric_mean(sp_boost), geometric_mean(sp_hygcn));
  std::printf("# paper Table X (ms): BoostGCN 1.9E-2/2.5E-2/1.6E-1/4.0E1/N/A/1.9E2;\n"
              "# HyGCN 2.1E-2/3E-1/6.4E1/N/A/N/A/2.9E2; Dynasparse 7.7E-3/4.7E-3/\n"
              "# 6.3E-2/8.8E0/2.9E0/1.0E2. *HyGCN's PubMed outlier drives its mean.\n"
              "# Reproduced claim: Dynasparse wins despite the lowest peak TFLOPS.\n");
  return 0;
}
