// Memory-pool bench (PR 8): measure what the dataset-keyed TilePool
// does to the resident footprint of a warm serving process.
//
// Workload: a 12-request stream over 3 datasets — CI/CO/PU, each served
// as {GCN, GraphSAGE} x {unpruned, 50%-pruned weights}. Every request is
// a distinct CompileKey (pruning changes the model content), so the
// compilation cache ends up holding 12 programs — but only 3 distinct
// datasets back them. Without the pool each program carries private
// partitioned copies of its dataset's adjacency + H0 tiles; with it,
// programs compiled from one dataset under one geometry share a single
// immutable copy, so cached bytes grow with datasets, not programs.
//
// The stream runs twice through each configuration (cold then warm) and
// the metric is cached-bytes-per-program at quiesce:
//
//   (compilation-cache bytes + tile-pool bytes) / cached programs
//
// Gates (exit code, recorded in BENCH_pr8.json):
//   - pooling reduces cached-bytes-per-program by >= 30%;
//   - every report is bit-identical between the pool-off and pool-on
//     runs (deterministic_fingerprint) — sharing is invisible to results.
//
// The budget runs track-only here (no limit) so the recorded high-water
// numbers measure the true demand of each configuration.
//
// A second section runs the two paper-scale graphs (NELL, Reddit) at
// their default bench scales (8 and 32) through the same harness — 4
// programs per dataset ({GCN, GraphSAGE} x {unpruned, 50%-pruned}) — and
// records their cached-bytes-per-program numbers alongside. Gate there:
// bit-identity plus any positive reduction (4 programs share 1 dataset,
// so pooling must shrink the footprint).
//
//   memory_pool [--seed S] [--scale N] [--out PATH]

#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "service/inference_service.hpp"

using namespace dynasparse;
using bench::JsonWriter;

namespace {

struct RunResult {
  std::vector<std::uint64_t> fingerprints;
  double wall_ms = 0.0;
  CacheStats cache;
  TilePoolStats pool;
  MemoryBudgetStats budget;
};

RunResult run_stream(const std::vector<ServiceRequest>& pool_requests,
                     std::size_t tile_pool_capacity) {
  ServiceOptions opts;
  opts.workers = 4;
  opts.cache_capacity = 16;  // holds all 12 programs: byte growth is real
  opts.tile_pool_capacity = tile_pool_capacity;
  InferenceService service(opts);

  RunResult r;
  Stopwatch sw;
  for (int round = 0; round < 2; ++round) {  // cold pass, then warm pass
    std::vector<RequestId> ids;
    ids.reserve(pool_requests.size());
    for (const ServiceRequest& req : pool_requests)
      ids.push_back(service.submit(req));
    for (RequestId id : ids) {
      InferenceReport rep = service.wait(id);
      if (round == 0) r.fingerprints.push_back(rep.deterministic_fingerprint());
    }
  }
  r.wall_ms = sw.elapsed_ms();
  r.cache = service.cache_stats();
  r.pool = service.tile_pool_stats();
  r.budget = service.memory_budget_stats();
  return r;
}

double bytes_per_program(const RunResult& r) {
  if (r.cache.entries <= 0) return 0.0;
  return static_cast<double>(r.cache.bytes + r.pool.bytes) /
         static_cast<double>(r.cache.entries);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs args = bench::parse_args(argc, argv);
  const char* out_path = "BENCH_pr8.json";
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out_path = argv[++i];

  auto build_requests = [&](const std::vector<std::string>& roster_tags) {
    std::vector<ServiceRequest> reqs;
    for (const std::string& tag : roster_tags) {
      Dataset ds = bench::load_dataset(tag, args);
      for (GnnModelKind kind : {GnnModelKind::kGcn, GnnModelKind::kSage}) {
        for (double prune : {0.0, 0.5}) {
          GnnModel model = bench::make_model(kind, ds, args.seed, prune);
          Dataset ds_copy = ds;  // each request owns its dataset copy
          reqs.push_back(
              ServiceRequest::own(std::move(model), std::move(ds_copy), {}));
        }
      }
    }
    return reqs;
  };

  const std::vector<std::string> tags = {"CI", "CO", "PU"};
  std::vector<ServiceRequest> requests = build_requests(tags);
  std::printf("memory pool bench: %zu requests over %zu datasets\n",
              requests.size(), tags.size());

  RunResult off = run_stream(requests, 0);
  RunResult on = run_stream(requests, 64);

  bool identical = off.fingerprints == on.fingerprints;
  const double bpp_off = bytes_per_program(off);
  const double bpp_on = bytes_per_program(on);
  const double reduction = bpp_off > 0.0 ? 1.0 - bpp_on / bpp_off : 0.0;

  std::printf("pool off: %lld programs, %.2f MiB cached (%.1f KiB/program), "
              "high water %.2f MiB\n",
              static_cast<long long>(off.cache.entries),
              static_cast<double>(off.cache.bytes) / (1024.0 * 1024.0),
              bpp_off / 1024.0,
              static_cast<double>(off.budget.high_water) / (1024.0 * 1024.0));
  std::printf("pool on:  %lld programs + %lld pooled operands, %.2f MiB cached "
              "(%.1f KiB/program), high water %.2f MiB\n",
              static_cast<long long>(on.cache.entries),
              static_cast<long long>(on.pool.entries),
              static_cast<double>(on.cache.bytes + on.pool.bytes) /
                  (1024.0 * 1024.0),
              bpp_on / 1024.0,
              static_cast<double>(on.budget.high_water) / (1024.0 * 1024.0));
  std::printf("cached bytes per program: %.1f KiB -> %.1f KiB (%.1f%% reduction)"
              "  # gate: >=30%%\n",
              bpp_off / 1024.0, bpp_on / 1024.0, reduction * 100.0);
  std::printf("pool sharing: %lld hits / %lld misses, %lld shared refs\n",
              static_cast<long long>(on.pool.hits),
              static_cast<long long>(on.pool.misses),
              static_cast<long long>(on.pool.shared_refs));
  std::printf("reports bit-identical across configurations: %s\n",
              identical ? "yes" : "NO");

  JsonWriter w;
  w.begin_object();
  w.key("bench").value(std::string("memory_pool"));
  w.key("requests").value(static_cast<std::int64_t>(requests.size()));
  w.key("datasets").value(static_cast<std::int64_t>(tags.size()));
  for (const auto& [name, r] : {std::pair<const char*, const RunResult&>{"pool_off", off},
                                std::pair<const char*, const RunResult&>{"pool_on", on}}) {
    w.key(name).begin_object();
    w.key("wall_ms").value(r.wall_ms);
    w.key("cache_entries").value(r.cache.entries);
    w.key("cache_bytes").value(r.cache.bytes);
    w.key("pool_entries").value(r.pool.entries);
    w.key("pool_bytes").value(r.pool.bytes);
    w.key("pool_hits").value(r.pool.hits);
    w.key("pool_misses").value(r.pool.misses);
    w.key("pool_shared_refs").value(r.pool.shared_refs);
    w.key("bytes_per_program").value(bytes_per_program(r));
    w.key("budget_high_water").value(r.budget.high_water);
    w.end_object();
  }
  w.key("bytes_per_program_reduction").value(reduction);
  w.key("reports_bit_identical").value(identical);

  // Paper-scale section: NELL and Reddit at their default bench scales.
  // 4 programs per dataset share 1 pooled copy each, so any positive
  // reduction is the expected signature of the pool working at scale.
  const std::vector<std::string> paper_tags = {"NE", "RE"};
  std::vector<ServiceRequest> paper_requests = build_requests(paper_tags);
  std::printf("paper-scale section: %zu requests over %zu datasets\n",
              paper_requests.size(), paper_tags.size());
  RunResult p_off = run_stream(paper_requests, 0);
  RunResult p_on = run_stream(paper_requests, 64);
  bool paper_identical = p_off.fingerprints == p_on.fingerprints;
  const double p_bpp_off = bytes_per_program(p_off);
  const double p_bpp_on = bytes_per_program(p_on);
  const double paper_reduction =
      p_bpp_off > 0.0 ? 1.0 - p_bpp_on / p_bpp_off : 0.0;
  std::printf("paper scale off: %.1f KiB/program, on: %.1f KiB/program "
              "(%.1f%% reduction)  # gate: >0%%\n",
              p_bpp_off / 1024.0, p_bpp_on / 1024.0, paper_reduction * 100.0);
  std::printf("paper scale reports bit-identical: %s\n",
              paper_identical ? "yes" : "NO");

  w.key("paper_scale").begin_object();
  w.key("requests").value(static_cast<std::int64_t>(paper_requests.size()));
  w.key("datasets").value(static_cast<std::int64_t>(paper_tags.size()));
  for (const auto& [name, r] :
       {std::pair<const char*, const RunResult&>{"pool_off", p_off},
        std::pair<const char*, const RunResult&>{"pool_on", p_on}}) {
    w.key(name).begin_object();
    w.key("wall_ms").value(r.wall_ms);
    w.key("cache_bytes").value(r.cache.bytes);
    w.key("pool_bytes").value(r.pool.bytes);
    w.key("pool_shared_refs").value(r.pool.shared_refs);
    w.key("bytes_per_program").value(bytes_per_program(r));
    w.key("budget_high_water").value(r.budget.high_water);
    w.end_object();
  }
  w.key("bytes_per_program_reduction").value(paper_reduction);
  w.key("reports_bit_identical").value(paper_identical);
  w.end_object();

  const bool pass = identical && reduction >= 0.30 && paper_identical &&
                    paper_reduction > 0.0;
  w.key("pass").value(pass);
  w.end_object();
  std::ofstream f(out_path);
  f << w.str() << "\n";
  std::printf("wrote %s\n", out_path);

  return pass ? 0 : 1;
}
