// Service throughput bench: replay request streams through the
// InferenceService and compare against the pre-service pattern — a
// sequential loop that compiles and executes every request from scratch.
// Scenarios:
//   1. 16-request mixed stream, warm compilation cache vs sequential
//      uncached (ISSUE 2 acceptance: >=2x, bit-identical reports).
//   2. Lone big request, serial-per-worker vs shared work-stealing pool
//      (ISSUE 3).
//   3. Repeat-heavy 32-request stream (75% repeats of 8 unique contents)
//      with result memoization on vs off (ISSUE 4 acceptance: >=2x, every
//      memoized report bit-identical to the cold-path report).
//   4. Admission-control saturation: a 16-request burst against a
//      2-worker service with queue depth 3 under each policy
//      (block/reject/shed) — every submit must resolve (report or
//      admission rejection), and accepted + refused must account for the
//      whole burst.
//   5. Similar-heavy plan reuse (ISSUE 5): 12 unique contents over 4 plan
//      shapes (each (dataset, model) pair at three pruning levels — every
//      request is a compilation-cache miss, but 8 share an already-planned
//      shape). With the PlanStore enabled those 8 route through
//      compile_with_plan and skip partition planning; gate: 4 planned + 8
//      seeded, total planner wall-clock strictly below the plan-from-
//      scratch run's, every report bit-identical.
//   6. Deadline-heavy burst (ISSUE 6): a slow head request pins the lone
//      worker while 8 one-millisecond-deadline victims queue behind it
//      (queue.delay armed so expiry at dequeue is structural, not a timing
//      race). Gate: every victim resolves as DeadlineExceededError counted
//      in expired_in_queue, and the compile-miss count proves none of them
//      ever reached the compiler. Plus the unarmed fault-site overhead
//      gate: fault_point() on a disarmed injector, measured over 20M
//      calls, must cost <1% of mean per-request service latency even at
//      10k calls per request.
//   7. Continuous-batching fusion (ISSUE 9): 32 fusion-compatible
//      requests — 8 distinct weight draws over each of 4 plan shapes, so
//      members share a BatchKey but nothing short of cross-request fusion
//      can batch them. Batching off vs on (50 ms window, K = 8). Gate:
//      every report in both modes bit-identical to the solo
//      compile+execute reference, and the fused side's mean batch
//      occupancy must exceed 1 (fusion actually happened). This scenario
//      writes its own BENCH_pr9.json.
//
// The mixed stream is the synthetic serving mix of request_stream.hpp
// (GCN over CI/CO/PU/FL plus GraphSAGE over CI/CO, cycled). Every service
// report is checked bit-identical to its reference via
// InferenceReport::deterministic_fingerprint(). Results land in
// BENCH_pr2.json (scenario 7 in BENCH_pr9.json); the exit code asserts
// every scenario's acceptance.
//
//   service_throughput [--seed S] [--reps R] [--requests N] [--out PATH]
//                      [--out-batch PATH]

#include <cstring>
#include <mutex>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "service/request_stream.hpp"
#include "util/fault_injection.hpp"
#include "util/ordered_mutex.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/strict_parse.hpp"

using namespace dynasparse;
using bench::JsonWriter;

namespace {

struct RunResult {
  double wall_ms = 0.0;
  std::vector<InferenceReport> reports;
};

/// The baseline: what callers did before the service existed — compile
/// every request, run it, drop the program.
RunResult run_sequential_uncached(const std::vector<ServiceRequest>& pool) {
  RunResult r;
  Stopwatch sw;
  for (const ServiceRequest& req : pool) {
    CompiledProgram prog = compile(*req.model, *req.dataset, req.options.config);
    InferenceReport rep = run_compiled(prog, req.options.runtime);
    rep.dataset_tag = req.dataset->spec.tag;
    r.reports.push_back(std::move(rep));
  }
  r.wall_ms = sw.elapsed_ms();
  return r;
}

RunResult run_service_warm(const std::vector<ServiceRequest>& pool,
                           InferenceService& service) {
  // Warm the compilation cache: every unique request content compiles once
  // outside the timed region (the steady-state of a serving process).
  for (const ServiceRequest& req : pool)
    service.cache().get_or_compile(*req.model, *req.dataset, req.options.config);

  RunResult r;
  Stopwatch sw;
  std::vector<RequestId> ids;
  ids.reserve(pool.size());
  for (const ServiceRequest& req : pool) ids.push_back(service.submit(req));
  for (RequestId id : ids) r.reports.push_back(service.wait(id));
  r.wall_ms = sw.elapsed_ms();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 2023;
  int reps = 3, requests = 16;
  const char* out_path = "BENCH_pr2.json";
  const char* out_batch_path = "BENCH_pr9.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = strict_stoull(argv[++i]);
    else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = strict_stoi(argv[++i]);
    else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      requests = strict_stoi(argv[++i]);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
    else if (std::strcmp(argv[i], "--out-batch") == 0 && i + 1 < argc)
      out_batch_path = argv[++i];
  }

  std::vector<StreamRequestSpec> specs = synthetic_stream(requests, seed);
  std::vector<ServiceRequest> pool;
  pool.reserve(specs.size());
  for (const StreamRequestSpec& spec : specs) pool.push_back(materialize_request(spec));
  std::printf("stream: %zu requests over the synthetic serving mix\n", pool.size());

  // Best-of-reps for both sides; fingerprints checked on every rep.
  double seq_best = -1.0, svc_best = -1.0;
  std::vector<InferenceReport> seq_reports, svc_reports;
  CacheStats cache_stats;
  bool all_identical = true;
  for (int rep = 0; rep < reps; ++rep) {
    RunResult seq = run_sequential_uncached(pool);
    ServiceOptions opts;
    opts.cache_capacity = pool.size();
    InferenceService service(opts);
    RunResult svc = run_service_warm(pool, service);
    for (std::size_t i = 0; i < pool.size(); ++i)
      if (seq.reports[i].deterministic_fingerprint() !=
          svc.reports[i].deterministic_fingerprint())
        all_identical = false;
    if (seq_best < 0.0 || seq.wall_ms < seq_best) seq_best = seq.wall_ms;
    if (svc_best < 0.0 || svc.wall_ms < svc_best) svc_best = svc.wall_ms;
    if (rep == 0) {
      seq_reports = std::move(seq.reports);
      svc_reports = std::move(svc.reports);
      cache_stats = service.cache_stats();
    }
    std::printf("rep %d: sequential %.1f ms, service (warm cache) %.1f ms\n", rep,
                seq.wall_ms, svc.wall_ms);
  }

  // ---- Lone-big-request scenario (ISSUE 3): a single large request on an
  // otherwise idle service. Before the work-stealing pool this was pinned
  // to one worker thread; with intra_op_threads=0 its parallel loops fan
  // out across the shared pool. Fingerprints must agree either way.
  double lone_serial_ms = -1.0, lone_shared_ms = -1.0;
  bool lone_identical = true;
  {
    StreamRequestSpec big_spec;
    big_spec.dataset = "PU";
    big_spec.model = GnnModelKind::kGcn;
    big_spec.seed = seed;
    ServiceRequest big = materialize_request(big_spec);
    std::uint64_t lone_fp = 0;
    for (int intra : {1, 0}) {
      ServiceOptions opts;
      opts.workers = 4;
      opts.cache_capacity = 1;
      opts.intra_op_threads = intra;
      InferenceService service(opts);
      service.cache().get_or_compile(*big.model, *big.dataset, big.options.config);
      double best = -1.0;
      for (int rep = 0; rep < reps; ++rep) {
        Stopwatch sw;
        InferenceReport rep_out = service.wait(service.submit(big));
        double ms = sw.elapsed_ms();
        if (best < 0.0 || ms < best) best = ms;
        if (lone_fp == 0)
          lone_fp = rep_out.deterministic_fingerprint();
        else if (rep_out.deterministic_fingerprint() != lone_fp)
          lone_identical = false;
      }
      (intra == 1 ? lone_serial_ms : lone_shared_ms) = best;
    }
    std::printf(
        "lone big request (PU): intra_op=1 %.1f ms, shared pool %.1f ms "
        "(%.2fx), bit-identical: %s\n",
        lone_serial_ms, lone_shared_ms, lone_serial_ms / lone_shared_ms,
        lone_identical ? "yes" : "NO");
    if (!lone_identical) all_identical = false;
  }

  // ---- Repeat-heavy memoization scenario (ISSUE 4): 32 requests over 8
  // unique contents (75% repeats), round-robin order, compilation cache
  // warm on both sides so the delta isolates result memoization. The
  // memoized side executes each unique content once and answers the other
  // 24 requests from the ResultCache; every memoized report must be
  // bit-identical (deterministic_fingerprint) to the cold-path report.
  double memo_off_best = -1.0, memo_on_best = -1.0;
  bool memo_identical = true;
  std::int64_t memo_hits = 0, memo_misses = 0;
  std::size_t memo_requests = 0;
  {
    std::vector<StreamRequestSpec> uniq = synthetic_stream(8, seed + 1);
    std::vector<ServiceRequest> uniq_pool;
    for (const StreamRequestSpec& spec : uniq)
      uniq_pool.push_back(materialize_request(spec));
    std::vector<const ServiceRequest*> stream;
    for (int round = 0; round < 4; ++round)
      for (const ServiceRequest& req : uniq_pool) stream.push_back(&req);
    memo_requests = stream.size();

    struct MemoRun {
      double wall_ms = 0.0;
      std::vector<InferenceReport> reports;
      ResultCacheStats rcs;
    };
    auto run_stream = [&](std::size_t memo_capacity) {
      ServiceOptions opts;
      opts.workers = 4;
      opts.cache_capacity = uniq_pool.size();
      opts.result_cache_capacity = memo_capacity;
      InferenceService service(opts);
      for (const ServiceRequest& req : uniq_pool)
        service.cache().get_or_compile(*req.model, *req.dataset,
                                       req.options.config);
      MemoRun r;
      Stopwatch sw;
      std::vector<RequestId> ids;
      for (const ServiceRequest* req : stream) ids.push_back(service.submit(*req));
      for (RequestId id : ids) r.reports.push_back(service.wait(id));
      r.wall_ms = sw.elapsed_ms();
      r.rcs = service.result_cache_stats();
      return r;
    };

    for (int rep = 0; rep < reps; ++rep) {
      MemoRun off = run_stream(0);
      MemoRun on = run_stream(stream.size());
      for (std::size_t i = 0; i < stream.size(); ++i)
        if (off.reports[i].deterministic_fingerprint() !=
            on.reports[i].deterministic_fingerprint())
          memo_identical = false;
      if (memo_off_best < 0.0 || off.wall_ms < memo_off_best)
        memo_off_best = off.wall_ms;
      if (memo_on_best < 0.0 || on.wall_ms < memo_on_best)
        memo_on_best = on.wall_ms;
      if (rep == 0) {
        memo_hits = on.rcs.hits;
        memo_misses = on.rcs.misses;
      }
    }
    // The synthetic roster can repeat contents within the 8 specs, so the
    // true unique count is what the result cache missed on.
    std::printf(
        "repeat-heavy stream (%zu requests, %lld unique contents): memoize "
        "off %.1f ms, on %.1f ms (%.2fx), result cache %lld hits / %lld "
        "misses, bit-identical: %s\n",
        memo_requests, static_cast<long long>(memo_misses), memo_off_best,
        memo_on_best, memo_off_best / memo_on_best,
        static_cast<long long>(memo_hits), static_cast<long long>(memo_misses),
        memo_identical ? "yes" : "NO");
  }
  double memo_speedup = memo_off_best / memo_on_best;
  bool memo_ok = memo_identical && memo_speedup >= 2.0 && memo_hits > 0;
  if (!memo_identical) all_identical = false;

  // ---- Admission-control saturation scenario (ISSUE 4): burst-submit 16
  // cheap requests against 2 workers and queue depth 3 under each policy.
  // Every submit must resolve — a report, or a clean admission rejection —
  // and the counts must cover the whole burst.
  bool admission_ok = true;
  struct AdmissionRun {
    const char* policy;
    std::size_t completed = 0, refused = 0;
    std::int64_t shed = 0, rejected = 0;
  };
  std::vector<AdmissionRun> admission_runs;
  {
    StreamRequestSpec cheap_spec;
    cheap_spec.dataset = "CI";
    cheap_spec.seed = seed + 2;
    ServiceRequest cheap = materialize_request(cheap_spec);
    constexpr std::size_t kBurst = 16;
    for (AdmissionPolicy policy :
         {AdmissionPolicy::kBlock, AdmissionPolicy::kReject,
          AdmissionPolicy::kShedOldest}) {
      ServiceOptions opts;
      opts.workers = 2;
      opts.cache_capacity = 1;
      opts.max_queue_depth = 3;
      opts.admission = policy;
      InferenceService service(opts);
      service.cache().get_or_compile(*cheap.model, *cheap.dataset,
                                     cheap.options.config);
      AdmissionRun run;
      run.policy = admission_policy_name(policy);
      std::vector<RequestId> ids;
      for (std::size_t i = 0; i < kBurst; ++i) ids.push_back(service.submit(cheap));
      for (RequestId id : ids) {
        try {
          (void)service.wait(id);
          ++run.completed;
        } catch (const AdmissionRejectedError&) {
          ++run.refused;
        }
      }
      AdmissionStats as = service.admission_stats();
      run.shed = as.shed;
      run.rejected = as.rejected;
      if (run.completed + run.refused != kBurst) admission_ok = false;
      if (policy == AdmissionPolicy::kBlock &&
          (run.refused != 0 || run.completed != kBurst))
        admission_ok = false;
      std::printf(
          "admission policy %-6s: %zu completed, %zu refused "
          "(stats: %lld rejected, %lld shed)\n",
          run.policy, run.completed, run.refused,
          static_cast<long long>(run.rejected), static_cast<long long>(run.shed));
      admission_runs.push_back(run);
    }
  }

  // ---- Similar-heavy plan-reuse scenario (ISSUE 5). `planning_ms` below
  // is the wall-clock spent inside plan_partitions: per-report
  // CompileStats on the cold side, the PlanStore's own planning counter on
  // the seeded side (seeded compiles report 0 — the planner never ran for
  // them). Comparing planner time, not whole-compile wall, keeps the gate
  // deterministic: data reorganization and sparsity profiling run per
  // request either way and would drown the delta in noise.
  double plan_off_planning_ms = -1.0, plan_on_planning_ms = -1.0;
  double plan_off_wall_ms = -1.0, plan_on_wall_ms = -1.0;
  bool plan_identical = true;
  std::int64_t plan_planned = 0, plan_seeded = 0, plan_rejected = 0;
  std::size_t plan_requests = 0, plan_shapes = 0;
  {
    struct Shape {
      const char* dataset;
      GnnModelKind model;
    };
    static const Shape kShapes[] = {{"CI", GnnModelKind::kGcn},
                                    {"CO", GnnModelKind::kGcn},
                                    {"PU", GnnModelKind::kGcn},
                                    {"CO", GnnModelKind::kSage}};
    static const double kPrunes[] = {0.0, 0.25, 0.5};
    plan_shapes = sizeof(kShapes) / sizeof(kShapes[0]);
    std::vector<ServiceRequest> similar;
    for (const Shape& s : kShapes)
      for (double prune : kPrunes) {
        StreamRequestSpec spec;
        spec.dataset = s.dataset;
        spec.model = s.model;
        spec.prune = prune;
        spec.seed = seed + 3;
        similar.push_back(materialize_request(spec));
      }
    plan_requests = similar.size();

    struct PlanRun {
      double wall_ms = 0.0;
      double planning_ms = 0.0;
      std::vector<InferenceReport> reports;
      PlanStoreStats pss;
    };
    auto run_similar = [&](std::size_t store_capacity) {
      ServiceOptions opts;
      opts.workers = 4;
      opts.cache_capacity = similar.size();
      opts.plan_store_capacity = store_capacity;
      InferenceService service(opts);
      PlanRun r;
      Stopwatch sw;
      std::vector<RequestId> ids;
      for (const ServiceRequest& req : similar) ids.push_back(service.submit(req));
      for (RequestId id : ids) r.reports.push_back(service.wait(id));
      r.wall_ms = sw.elapsed_ms();
      r.pss = service.plan_store_stats();
      for (const InferenceReport& rep : r.reports)
        r.planning_ms += rep.compile.planning_ms;
      r.planning_ms += r.pss.planning_ms;  // 0 when the store is off
      return r;
    };

    for (int rep = 0; rep < reps; ++rep) {
      PlanRun off = run_similar(0);
      PlanRun on = run_similar(similar.size());
      for (std::size_t i = 0; i < similar.size(); ++i)
        if (off.reports[i].deterministic_fingerprint() !=
            on.reports[i].deterministic_fingerprint())
          plan_identical = false;
      if (plan_off_planning_ms < 0.0 || off.planning_ms < plan_off_planning_ms)
        plan_off_planning_ms = off.planning_ms;
      if (plan_on_planning_ms < 0.0 || on.planning_ms < plan_on_planning_ms)
        plan_on_planning_ms = on.planning_ms;
      if (plan_off_wall_ms < 0.0 || off.wall_ms < plan_off_wall_ms)
        plan_off_wall_ms = off.wall_ms;
      if (plan_on_wall_ms < 0.0 || on.wall_ms < plan_on_wall_ms)
        plan_on_wall_ms = on.wall_ms;
      if (rep == 0) {
        plan_planned = on.pss.planned;
        plan_seeded = on.pss.seeded;
        plan_rejected = on.pss.rejected;
      }
    }
    std::printf(
        "similar-heavy plan reuse (%zu requests, %zu shapes): planner "
        "wall-clock %.3f ms cold vs %.3f ms seeded (%.2fx), %lld planned / "
        "%lld seeded, bit-identical: %s\n",
        plan_requests, plan_shapes, plan_off_planning_ms, plan_on_planning_ms,
        plan_off_planning_ms / plan_on_planning_ms,
        static_cast<long long>(plan_planned), static_cast<long long>(plan_seeded),
        plan_identical ? "yes" : "NO");
  }
  bool plan_ok = plan_identical &&
                 plan_planned == static_cast<std::int64_t>(plan_shapes) &&
                 plan_seeded ==
                     static_cast<std::int64_t>(plan_requests - plan_shapes) &&
                 plan_rejected == 0 &&
                 plan_on_planning_ms < plan_off_planning_ms;
  if (!plan_identical) all_identical = false;

  // ---- Deadline-heavy burst (ISSUE 6): one worker, a slow PU head with a
  // generous deadline, and 8 cheap victims whose 1 ms deadlines are long
  // gone by the time the worker frees up. queue.delay:1 stalls every
  // dequeue 2 ms, so the victims' expiry at the dequeue recheck is
  // structural rather than a race on how fast PU compiles. The cache is
  // disabled, making compile misses a census of requests that actually
  // reached the compiler: it must be exactly 1 (the head) — expired work
  // never executes.
  bool deadline_ok = true;
  std::size_t deadline_expired = 0, deadline_completed = 0;
  std::int64_t deadline_expired_in_queue = 0, deadline_compiles = 0;
  {
    constexpr std::size_t kVictims = 8;
    StreamRequestSpec head_spec;
    head_spec.dataset = "PU";
    head_spec.model = GnnModelKind::kGcn;
    head_spec.seed = seed + 4;
    ServiceRequest head = materialize_request(head_spec);
    head.deadline_ms = 60000;
    StreamRequestSpec victim_spec;
    victim_spec.dataset = "CI";
    victim_spec.seed = seed + 5;
    ServiceRequest victim = materialize_request(victim_spec);
    victim.deadline_ms = 1;
    ServiceOptions opts;
    opts.workers = 1;
    opts.cache_capacity = 0;
    opts.fault_spec = "queue.delay:1";
    {
      InferenceService service(opts);
      std::vector<RequestId> ids;
      ids.push_back(service.submit(head));
      for (std::size_t i = 0; i < kVictims; ++i)
        ids.push_back(service.submit(victim));
      for (RequestId id : ids) {
        try {
          (void)service.wait(id);
          ++deadline_completed;
        } catch (const DeadlineExceededError&) {
          ++deadline_expired;
        }
      }
      RobustnessStats rs = service.robustness_stats();
      CacheStats cs = service.cache_stats();
      deadline_expired_in_queue = rs.expired_in_queue;
      deadline_compiles = cs.misses;
      deadline_ok = deadline_completed == 1 && deadline_expired == kVictims &&
                    rs.expired_in_queue == static_cast<std::int64_t>(kVictims) &&
                    rs.expired_running == 0 && cs.misses == 1 && cs.hits == 0;
    }
    FaultInjector::global().disarm();  // service ctor armed the global
    std::printf(
        "deadline-heavy burst: %zu completed, %zu expired (%lld in queue), "
        "%lld compiles (1 = no expired request executed): %s\n",
        deadline_completed, deadline_expired,
        static_cast<long long>(deadline_expired_in_queue),
        static_cast<long long>(deadline_compiles), deadline_ok ? "ok" : "FAIL");
  }

  // ---- Unarmed fault-site overhead: every kernel launch now passes a
  // fault_point(). Disarmed, that is one relaxed atomic load and a branch;
  // gate its measured cost so the chaos layer stays free to leave in
  // production builds. 10k calls/request is an order of magnitude above
  // any request in the mix (kernel count tops out in the hundreds).
  double unarmed_ns_per_call = 0.0, unarmed_pct_per_request = 0.0;
  bool overhead_ok = true;
  {
    constexpr std::int64_t kCalls = 20000000;
    std::int64_t fired = 0;  // keeps the loop observable; stays 0 disarmed
    Stopwatch sw;
    for (std::int64_t i = 0; i < kCalls; ++i)
      if (fault_point(kFaultRuntimeKernelFault)) ++fired;
    double ms = sw.elapsed_ms();
    unarmed_ns_per_call = ms * 1e6 / static_cast<double>(kCalls);
    const double per_request_ms =
        svc_best / static_cast<double>(pool.size());
    unarmed_pct_per_request =
        (10000.0 * unarmed_ns_per_call / 1e6) / per_request_ms * 100.0;
    overhead_ok = fired == 0 && unarmed_pct_per_request < 1.0;
    std::printf(
        "unarmed fault_point: %.2f ns/call (%lldM calls), 10k calls = %.3f%% "
        "of mean request latency (%.2f ms): %s\n",
        unarmed_ns_per_call, static_cast<long long>(kCalls / 1000000),
        unarmed_pct_per_request, per_request_ms, overhead_ok ? "ok" : "FAIL");
  }

  // ---- OrderedMutex overhead: every long-lived mutex in the system is
  // rank-annotated (util/ordered_mutex.hpp). With the checker compiled
  // out (NDEBUG without DYNASPARSE_LOCK_CHECK, the release/bench
  // configuration) lock()/unlock() must inline to the std::mutex they
  // wrap — gate the extra cost per acquisition at <1% of mean request
  // latency assuming an absurd 10k acquisitions/request, same framing as
  // the unarmed fault_point above. The default ctest build runs ARMED:
  // there each acquisition does real bookkeeping, so the cost is
  // reported but not gated.
  double ordered_extra_ns_per_lock = 0.0, ordered_pct_per_request = 0.0;
  bool ordered_mutex_ok = true;
  bool ordered_mutex_armed = DYNASPARSE_LOCK_CHECK_ACTIVE != 0;
  {
    constexpr std::int64_t kLocks = 5000000;
    std::mutex plain;
    OrderedMutex ordered(LockRank::kMemoryBudget);
    std::int64_t sink = 0;  // observable work under each lock
    Stopwatch sw_plain;
    for (std::int64_t i = 0; i < kLocks; ++i) {
      plain.lock();
      ++sink;
      plain.unlock();
    }
    const double plain_ms = sw_plain.elapsed_ms();
    Stopwatch sw_ordered;
    for (std::int64_t i = 0; i < kLocks; ++i) {
      ordered.lock();
      ++sink;
      ordered.unlock();
    }
    const double ordered_ms = sw_ordered.elapsed_ms();
    ordered_extra_ns_per_lock =
        (ordered_ms - plain_ms) * 1e6 / static_cast<double>(kLocks);
    if (ordered_extra_ns_per_lock < 0.0) ordered_extra_ns_per_lock = 0.0;
    const double per_request_ms = svc_best / static_cast<double>(pool.size());
    ordered_pct_per_request =
        (10000.0 * ordered_extra_ns_per_lock / 1e6) / per_request_ms * 100.0;
    if (!ordered_mutex_armed)
      ordered_mutex_ok = sink == 2 * kLocks && ordered_pct_per_request < 1.0;
    std::printf(
        "OrderedMutex (%s): +%.2f ns/lock over std::mutex, 10k locks = "
        "%.3f%% of mean request latency: %s\n",
        ordered_mutex_armed ? "armed, report-only" : "unarmed, gated",
        ordered_extra_ns_per_lock, ordered_pct_per_request,
        ordered_mutex_ok ? "ok" : "FAIL");
  }

  // ---- Continuous-batching fusion (ISSUE 9): 8 distinct weight draws
  // over each of 4 plan shapes. Members of a shape regenerate the same
  // dataset content (equal dataset_signature; the tile pool dedups their
  // adjacency operands to pointer-equal tiles) and share layer geometry
  // (equal plan_signature) but carry different weights — different
  // CompileKeys, so neither the compilation cache nor result memoization
  // can collapse them. Only cross-request fused execution batches them.
  // Both modes warm the compilation cache first and run on one worker:
  // with several workers the unbatched side overlaps whole requests and
  // the delta measures scheduling, not fusion — one worker isolates what
  // fused execution itself buys (the shared operand stream per kernel).
  // Gates: every report in both modes bit-identical to the solo
  // compile+execute reference, and the batched side's mean occupancy > 1
  // with at least one fused request.
  double batch_off_best = -1.0, batch_on_best = -1.0;
  bool batch_identical = true;
  BatchStats batch_on_stats;
  std::size_t batch_requests_n = 0, batch_shapes_n = 0;
  constexpr std::size_t kPerShape = 8;
  constexpr std::int64_t kBatchWindowUs = 50000;
  {
    struct Shape {
      const char* dataset;
      GnnModelKind model;
    };
    static const Shape kBatchShapes[] = {{"CI", GnnModelKind::kGcn},
                                         {"CO", GnnModelKind::kGcn},
                                         {"PU", GnnModelKind::kGcn},
                                         {"CO", GnnModelKind::kSage}};
    batch_shapes_n = sizeof(kBatchShapes) / sizeof(kBatchShapes[0]);
    std::vector<ServiceRequest> roster;
    for (std::size_t s = 0; s < batch_shapes_n; ++s)
      for (std::size_t i = 0; i < kPerShape; ++i) {
        Dataset ds =
            generate_dataset(dataset_by_tag(kBatchShapes[s].dataset), 0, seed + 6);
        Rng rng(seed + 900 + 1000 * s + 31 * i);
        GnnModel model =
            build_model(kBatchShapes[s].model, ds.spec.feature_dim,
                        ds.spec.hidden_dim, ds.spec.num_classes, rng);
        model.name += "#" + std::to_string(i);
        roster.push_back(ServiceRequest::own(std::move(model), std::move(ds)));
      }
    batch_requests_n = roster.size();

    // Solo references: the pre-service compile + execute path, one request
    // at a time. Fused execution must reproduce these bit-for-bit.
    std::vector<std::uint64_t> reference;
    for (const ServiceRequest& req : roster) {
      CompiledProgram prog =
          compile(*req.model, *req.dataset, req.options.config);
      InferenceReport rep = run_compiled(prog, req.options.runtime);
      rep.dataset_tag = req.dataset->spec.tag;
      reference.push_back(rep.deterministic_fingerprint());
    }

    struct BatchRun {
      double wall_ms = 0.0;
      BatchStats bs;
      bool identical = true;
    };
    auto run_mode = [&](std::int64_t window_us, std::size_t max_batch) {
      ServiceOptions opts;
      opts.workers = 1;
      opts.cache_capacity = roster.size();
      opts.batch_window_us = window_us;
      opts.max_batch_size = max_batch;
      InferenceService service(opts);
      for (const ServiceRequest& req : roster)
        service.cache().get_or_compile(*req.model, *req.dataset,
                                       req.options.config);
      BatchRun r;
      Stopwatch sw;
      std::vector<RequestId> ids;
      ids.reserve(roster.size());
      for (const ServiceRequest& req : roster) ids.push_back(service.submit(req));
      for (std::size_t i = 0; i < ids.size(); ++i)
        if (service.wait(ids[i]).deterministic_fingerprint() != reference[i])
          r.identical = false;
      r.wall_ms = sw.elapsed_ms();
      r.bs = service.batch_stats();
      return r;
    };

    for (int rep = 0; rep < reps; ++rep) {
      BatchRun off = run_mode(0, 0);
      BatchRun on = run_mode(kBatchWindowUs, kPerShape);
      if (!off.identical || !on.identical) batch_identical = false;
      if (batch_off_best < 0.0 || off.wall_ms < batch_off_best)
        batch_off_best = off.wall_ms;
      if (batch_on_best < 0.0 || on.wall_ms < batch_on_best)
        batch_on_best = on.wall_ms;
      if (rep == 0) batch_on_stats = on.bs;
    }
    std::printf(
        "continuous batching (%zu requests, %zu shapes): off %.1f ms, on "
        "%.1f ms (%.2fx), %lld batches / %.2f mean occupancy, %lld fused "
        "requests, %lld fused kernels, bit-identical: %s\n",
        batch_requests_n, batch_shapes_n, batch_off_best, batch_on_best,
        batch_off_best / batch_on_best,
        static_cast<long long>(batch_on_stats.batches_formed),
        batch_on_stats.mean_occupancy(),
        static_cast<long long>(batch_on_stats.fused_requests),
        static_cast<long long>(batch_on_stats.fused_kernels),
        batch_identical ? "yes" : "NO");
  }
  bool batch_ok = batch_identical && batch_on_stats.fused_requests > 0 &&
                  batch_on_stats.batches_formed > 0 &&
                  batch_on_stats.mean_occupancy() > 1.0;
  if (!batch_identical) all_identical = false;

  double speedup = seq_best / svc_best;
  double seq_thru = static_cast<double>(pool.size()) / (seq_best / 1e3);
  double svc_thru = static_cast<double>(pool.size()) / (svc_best / 1e3);
  std::printf("\nsequential: %.1f ms (%.2f req/s)\nservice:    %.1f ms (%.2f req/s)\n",
              seq_best, seq_thru, svc_best, svc_thru);
  std::printf("speedup %.2fx  reports bit-identical: %s\n", speedup,
              all_identical ? "yes" : "NO");
  std::printf("cache on timed run: %lld hits, %lld misses (warm-up)\n",
              static_cast<long long>(cache_stats.hits),
              static_cast<long long>(cache_stats.misses));

  JsonWriter w;
  w.begin_object();
  w.key("bench").value(std::string("service_throughput"));
  w.key("pr").value(2);
  w.key("config").begin_object();
  w.key("requests").value(static_cast<std::int64_t>(pool.size()));
  w.key("reps").value(reps);
  w.key("seed").value(static_cast<std::int64_t>(seed));
  w.key("hardware_concurrency").value(parallel_hardware_threads());
  w.end_object();
  w.key("notes").begin_array();
  w.value(std::string("sequential = per-request compile + execute (pre-service run_inference loop)"));
  w.value(std::string("service = warm compilation cache, async submit/wait on service workers"));
  w.value(std::string("bit-identity via InferenceReport::deterministic_fingerprint on every rep"));
  w.end_array();
  w.key("sequential_ms").value(seq_best);
  w.key("service_ms").value(svc_best);
  w.key("speedup").value(speedup);
  w.key("sequential_req_per_s").value(seq_thru);
  w.key("service_req_per_s").value(svc_thru);
  w.key("lone_big_request").begin_object();
  w.key("dataset").value(std::string("PU"));
  w.key("serial_intra_op_ms").value(lone_serial_ms);
  w.key("shared_pool_ms").value(lone_shared_ms);
  w.key("speedup").value(lone_serial_ms / lone_shared_ms);
  w.key("bit_identical").value(lone_identical);
  w.end_object();
  w.key("repeat_heavy_memoization").begin_object();
  w.key("requests").value(static_cast<std::int64_t>(memo_requests));
  w.key("unique_contents").value(memo_misses);  // = result-key misses
  w.key("memoize_off_ms").value(memo_off_best);
  w.key("memoize_on_ms").value(memo_on_best);
  w.key("speedup").value(memo_speedup);
  w.key("result_cache_hits").value(memo_hits);
  w.key("result_cache_misses").value(memo_misses);
  w.key("bit_identical").value(memo_identical);
  w.end_object();
  w.key("plan_reuse").begin_object();
  w.key("requests").value(static_cast<std::int64_t>(plan_requests));
  w.key("plan_shapes").value(static_cast<std::int64_t>(plan_shapes));
  w.key("planned").value(plan_planned);
  w.key("seeded").value(plan_seeded);
  w.key("rejected").value(plan_rejected);
  w.key("cold_planning_ms").value(plan_off_planning_ms);
  w.key("seeded_planning_ms").value(plan_on_planning_ms);
  w.key("planning_speedup").value(plan_off_planning_ms / plan_on_planning_ms);
  w.key("cold_wall_ms").value(plan_off_wall_ms);
  w.key("seeded_wall_ms").value(plan_on_wall_ms);
  w.key("bit_identical").value(plan_identical);
  w.end_object();
  w.key("admission_saturation").begin_array();
  for (const AdmissionRun& run : admission_runs) {
    w.begin_object();
    w.key("policy").value(std::string(run.policy));
    w.key("burst").value(16);
    w.key("workers").value(2);
    w.key("max_queue_depth").value(3);
    w.key("completed").value(static_cast<std::int64_t>(run.completed));
    w.key("refused").value(static_cast<std::int64_t>(run.refused));
    w.key("stats_rejected").value(run.rejected);
    w.key("stats_shed").value(run.shed);
    w.end_object();
  }
  w.end_array();
  w.key("deadline_burst").begin_object();
  w.key("victims").value(8);
  w.key("completed").value(static_cast<std::int64_t>(deadline_completed));
  w.key("expired").value(static_cast<std::int64_t>(deadline_expired));
  w.key("expired_in_queue").value(deadline_expired_in_queue);
  w.key("compiles").value(deadline_compiles);
  w.key("ok").value(deadline_ok);
  w.end_object();
  w.key("unarmed_fault_point").begin_object();
  w.key("ns_per_call").value(unarmed_ns_per_call);
  w.key("pct_of_request_at_10k_calls").value(unarmed_pct_per_request);
  w.key("ok").value(overhead_ok);
  w.end_object();
  w.key("ordered_mutex").begin_object();
  w.key("armed").value(ordered_mutex_armed);
  w.key("extra_ns_per_lock").value(ordered_extra_ns_per_lock);
  w.key("pct_of_request_at_10k_locks").value(ordered_pct_per_request);
  w.key("ok").value(ordered_mutex_ok);
  w.end_object();
  w.key("reports_bit_identical").value(all_identical);
  w.key("cache_hits").value(cache_stats.hits);
  w.key("cache_misses").value(cache_stats.misses);
  w.key("requests_detail").begin_array();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    w.begin_object();
    w.key("spec").value(specs[i].to_line());
    w.key("sequential_compile_ms").value(seq_reports[i].compile.total_ms());
    w.key("simulated_latency_ms").value(svc_reports[i].latency_ms);
    w.key("fingerprint_hex").value([&] {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(
                        svc_reports[i].deterministic_fingerprint()));
      return std::string(buf);
    }());
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::ofstream f(out_path);
  f << w.str() << "\n";
  std::printf("wrote %s\n", out_path);

  // Scenario 7 gets its own artifact: the PR-9 continuous-batching gate.
  JsonWriter w9;
  w9.begin_object();
  w9.key("bench").value(std::string("service_throughput_batching"));
  w9.key("pr").value(9);
  w9.key("config").begin_object();
  w9.key("requests").value(static_cast<std::int64_t>(batch_requests_n));
  w9.key("plan_shapes").value(static_cast<std::int64_t>(batch_shapes_n));
  w9.key("per_shape").value(static_cast<std::int64_t>(kPerShape));
  w9.key("batch_window_us").value(kBatchWindowUs);
  w9.key("max_batch_size").value(static_cast<std::int64_t>(kPerShape));
  w9.key("workers").value(1);
  w9.key("reps").value(reps);
  w9.key("seed").value(static_cast<std::int64_t>(seed));
  w9.key("hardware_concurrency").value(parallel_hardware_threads());
  w9.end_object();
  w9.key("notes").begin_array();
  w9.value(std::string(
      "8 weight draws per plan shape: equal BatchKey, distinct CompileKeys — "
      "only cross-request fusion can batch them"));
  w9.value(std::string(
      "both modes warm the compilation cache; wall-clock isolates execution"));
  w9.value(std::string(
      "every report checked bit-identical to the solo compile+execute "
      "reference on every rep"));
  w9.end_array();
  w9.key("batching_off_ms").value(batch_off_best);
  w9.key("batching_on_ms").value(batch_on_best);
  w9.key("speedup").value(batch_off_best / batch_on_best);
  w9.key("batches_formed").value(batch_on_stats.batches_formed);
  w9.key("batched_requests").value(batch_on_stats.batched_requests);
  w9.key("fused_batches").value(batch_on_stats.fused_batches);
  w9.key("fused_requests").value(batch_on_stats.fused_requests);
  w9.key("fused_kernels").value(batch_on_stats.fused_kernels);
  w9.key("mean_occupancy").value(batch_on_stats.mean_occupancy());
  w9.key("bit_identical").value(batch_identical);
  w9.key("ok").value(batch_ok);
  w9.end_object();
  std::ofstream f9(out_batch_path);
  f9 << w9.str() << "\n";
  std::printf("wrote %s\n", out_batch_path);
  if (!memo_ok)
    std::printf("FAIL: memoization scenario (speedup %.2fx, hits %lld, "
                "identical %s)\n",
                memo_speedup, static_cast<long long>(memo_hits),
                memo_identical ? "yes" : "no");
  if (!admission_ok) std::printf("FAIL: admission saturation scenario\n");
  if (!deadline_ok) std::printf("FAIL: deadline-heavy burst scenario\n");
  if (!overhead_ok)
    std::printf("FAIL: unarmed fault_point overhead (%.3f%% >= 1%%)\n",
                unarmed_pct_per_request);
  if (!ordered_mutex_ok)
    std::printf("FAIL: unarmed OrderedMutex overhead (%.3f%% >= 1%%)\n",
                ordered_pct_per_request);
  if (!plan_ok)
    std::printf(
        "FAIL: plan-reuse scenario (planned %lld, seeded %lld, rejected %lld, "
        "planning %.3f -> %.3f ms, identical %s)\n",
        static_cast<long long>(plan_planned), static_cast<long long>(plan_seeded),
        static_cast<long long>(plan_rejected), plan_off_planning_ms,
        plan_on_planning_ms, plan_identical ? "yes" : "no");
  if (!batch_ok)
    std::printf(
        "FAIL: continuous-batching scenario (occupancy %.2f, fused %lld, "
        "identical %s)\n",
        batch_on_stats.mean_occupancy(),
        static_cast<long long>(batch_on_stats.fused_requests),
        batch_identical ? "yes" : "no");
  return all_identical && speedup >= 2.0 && memo_ok && admission_ok &&
                 plan_ok && deadline_ok && overhead_ok && ordered_mutex_ok &&
                 batch_ok
             ? 0
             : 1;
}
