// Service throughput bench (ISSUE 2 acceptance): replay a 16-request
// mixed-dataset stream through the InferenceService with a warm
// compilation cache and compare against the pre-service pattern — a
// sequential loop that compiles and executes every request from scratch.
//
// The stream is the synthetic serving mix of request_stream.hpp (GCN over
// CI/CO/PU/FL plus GraphSAGE over CI/CO, cycled). Every service report is
// checked bit-identical to its sequential counterpart via
// InferenceReport::deterministic_fingerprint(). Results land in
// BENCH_pr2.json.
//
//   service_throughput [--seed S] [--reps R] [--requests N] [--out PATH]

#include <cstring>
#include <fstream>
#include <vector>

#include "bench_common.hpp"
#include "service/request_stream.hpp"
#include "util/parallel.hpp"

using namespace dynasparse;
using bench::JsonWriter;

namespace {

struct RunResult {
  double wall_ms = 0.0;
  std::vector<InferenceReport> reports;
};

/// The baseline: what callers did before the service existed — compile
/// every request, run it, drop the program.
RunResult run_sequential_uncached(const std::vector<ServiceRequest>& pool) {
  RunResult r;
  Stopwatch sw;
  for (const ServiceRequest& req : pool) {
    CompiledProgram prog = compile(*req.model, *req.dataset, req.options.config);
    InferenceReport rep = run_compiled(prog, req.options.runtime);
    rep.dataset_tag = req.dataset->spec.tag;
    r.reports.push_back(std::move(rep));
  }
  r.wall_ms = sw.elapsed_ms();
  return r;
}

RunResult run_service_warm(const std::vector<ServiceRequest>& pool,
                           InferenceService& service) {
  // Warm the compilation cache: every unique request content compiles once
  // outside the timed region (the steady-state of a serving process).
  for (const ServiceRequest& req : pool)
    service.cache().get_or_compile(*req.model, *req.dataset, req.options.config);

  RunResult r;
  Stopwatch sw;
  std::vector<RequestId> ids;
  ids.reserve(pool.size());
  for (const ServiceRequest& req : pool) ids.push_back(service.submit(req));
  for (RequestId id : ids) r.reports.push_back(service.wait(id));
  r.wall_ms = sw.elapsed_ms();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 2023;
  int reps = 3, requests = 16;
  const char* out_path = "BENCH_pr2.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc)
      requests = std::atoi(argv[++i]);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }

  std::vector<StreamRequestSpec> specs = synthetic_stream(requests, seed);
  std::vector<ServiceRequest> pool;
  pool.reserve(specs.size());
  for (const StreamRequestSpec& spec : specs) pool.push_back(materialize_request(spec));
  std::printf("stream: %zu requests over the synthetic serving mix\n", pool.size());

  // Best-of-reps for both sides; fingerprints checked on every rep.
  double seq_best = -1.0, svc_best = -1.0;
  std::vector<InferenceReport> seq_reports, svc_reports;
  CacheStats cache_stats;
  bool all_identical = true;
  for (int rep = 0; rep < reps; ++rep) {
    RunResult seq = run_sequential_uncached(pool);
    ServiceOptions opts;
    opts.cache_capacity = pool.size();
    InferenceService service(opts);
    RunResult svc = run_service_warm(pool, service);
    for (std::size_t i = 0; i < pool.size(); ++i)
      if (seq.reports[i].deterministic_fingerprint() !=
          svc.reports[i].deterministic_fingerprint())
        all_identical = false;
    if (seq_best < 0.0 || seq.wall_ms < seq_best) seq_best = seq.wall_ms;
    if (svc_best < 0.0 || svc.wall_ms < svc_best) svc_best = svc.wall_ms;
    if (rep == 0) {
      seq_reports = std::move(seq.reports);
      svc_reports = std::move(svc.reports);
      cache_stats = service.cache_stats();
    }
    std::printf("rep %d: sequential %.1f ms, service (warm cache) %.1f ms\n", rep,
                seq.wall_ms, svc.wall_ms);
  }

  // ---- Lone-big-request scenario (ISSUE 3): a single large request on an
  // otherwise idle service. Before the work-stealing pool this was pinned
  // to one worker thread; with intra_op_threads=0 its parallel loops fan
  // out across the shared pool. Fingerprints must agree either way.
  double lone_serial_ms = -1.0, lone_shared_ms = -1.0;
  bool lone_identical = true;
  {
    StreamRequestSpec big_spec;
    big_spec.dataset = "PU";
    big_spec.model = GnnModelKind::kGcn;
    big_spec.seed = seed;
    ServiceRequest big = materialize_request(big_spec);
    std::uint64_t lone_fp = 0;
    for (int intra : {1, 0}) {
      ServiceOptions opts;
      opts.workers = 4;
      opts.cache_capacity = 1;
      opts.intra_op_threads = intra;
      InferenceService service(opts);
      service.cache().get_or_compile(*big.model, *big.dataset, big.options.config);
      double best = -1.0;
      for (int rep = 0; rep < reps; ++rep) {
        Stopwatch sw;
        InferenceReport rep_out = service.wait(service.submit(big));
        double ms = sw.elapsed_ms();
        if (best < 0.0 || ms < best) best = ms;
        if (lone_fp == 0)
          lone_fp = rep_out.deterministic_fingerprint();
        else if (rep_out.deterministic_fingerprint() != lone_fp)
          lone_identical = false;
      }
      (intra == 1 ? lone_serial_ms : lone_shared_ms) = best;
    }
    std::printf(
        "lone big request (PU): intra_op=1 %.1f ms, shared pool %.1f ms "
        "(%.2fx), bit-identical: %s\n",
        lone_serial_ms, lone_shared_ms, lone_serial_ms / lone_shared_ms,
        lone_identical ? "yes" : "NO");
    if (!lone_identical) all_identical = false;
  }

  double speedup = seq_best / svc_best;
  double seq_thru = static_cast<double>(pool.size()) / (seq_best / 1e3);
  double svc_thru = static_cast<double>(pool.size()) / (svc_best / 1e3);
  std::printf("\nsequential: %.1f ms (%.2f req/s)\nservice:    %.1f ms (%.2f req/s)\n",
              seq_best, seq_thru, svc_best, svc_thru);
  std::printf("speedup %.2fx  reports bit-identical: %s\n", speedup,
              all_identical ? "yes" : "NO");
  std::printf("cache on timed run: %lld hits, %lld misses (warm-up)\n",
              static_cast<long long>(cache_stats.hits),
              static_cast<long long>(cache_stats.misses));

  JsonWriter w;
  w.begin_object();
  w.key("bench").value(std::string("service_throughput"));
  w.key("pr").value(2);
  w.key("config").begin_object();
  w.key("requests").value(static_cast<std::int64_t>(pool.size()));
  w.key("reps").value(reps);
  w.key("seed").value(static_cast<std::int64_t>(seed));
  w.key("hardware_concurrency").value(parallel_hardware_threads());
  w.end_object();
  w.key("notes").begin_array();
  w.value(std::string("sequential = per-request compile + execute (pre-service run_inference loop)"));
  w.value(std::string("service = warm compilation cache, async submit/wait on service workers"));
  w.value(std::string("bit-identity via InferenceReport::deterministic_fingerprint on every rep"));
  w.end_array();
  w.key("sequential_ms").value(seq_best);
  w.key("service_ms").value(svc_best);
  w.key("speedup").value(speedup);
  w.key("sequential_req_per_s").value(seq_thru);
  w.key("service_req_per_s").value(svc_thru);
  w.key("lone_big_request").begin_object();
  w.key("dataset").value(std::string("PU"));
  w.key("serial_intra_op_ms").value(lone_serial_ms);
  w.key("shared_pool_ms").value(lone_shared_ms);
  w.key("speedup").value(lone_serial_ms / lone_shared_ms);
  w.key("bit_identical").value(lone_identical);
  w.end_object();
  w.key("reports_bit_identical").value(all_identical);
  w.key("cache_hits").value(cache_stats.hits);
  w.key("cache_misses").value(cache_stats.misses);
  w.key("requests_detail").begin_array();
  for (std::size_t i = 0; i < specs.size(); ++i) {
    w.begin_object();
    w.key("spec").value(specs[i].to_line());
    w.key("sequential_compile_ms").value(seq_reports[i].compile.total_ms());
    w.key("simulated_latency_ms").value(svc_reports[i].latency_ms);
    w.key("fingerprint_hex").value([&] {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%016llx",
                    static_cast<unsigned long long>(
                        svc_reports[i].deterministic_fingerprint()));
      return std::string(buf);
    }());
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::ofstream f(out_path);
  f << w.str() << "\n";
  std::printf("wrote %s\n", out_path);
  return all_identical && speedup >= 2.0 ? 0 : 1;
}
