// Reproduces paper Fig. 1 + Table VI: density of the graph adjacency
// matrix A per dataset, plus the per-partition density spread that
// motivates fine-grained (tile-level) kernel-to-primitive mapping.

#include <cstdio>

#include "bench_common.hpp"
#include "compiler/sparsity_prep.hpp"

using namespace dynasparse;
using namespace dynasparse::bench;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  std::printf("=== Fig. 1 / Table VI: adjacency density per dataset ===\n");
  std::printf("%-4s %10s %12s %10s %12s %12s %12s\n", "tag", "|V|", "|E|",
              "density(A)", "tile-min", "tile-max", "empty-tiles");
  for (const std::string& tag : dataset_tags()) {
    Dataset ds = load_dataset(tag, args);
    PartitionedMatrix a = PartitionedMatrix::from_csr(ds.graph.adjacency(), 512, 512,
                                                      1.0 / 3.0);
    SparsityProfile prof = profile_partitions(a);
    std::printf("%-4s %10lld %12lld %10.4f%% %11.4f%% %11.4f%% %9lld/%lld\n",
                tag.c_str(), static_cast<long long>(ds.graph.num_vertices()),
                static_cast<long long>(ds.graph.num_edges()),
                ds.graph.adjacency_density() * 100.0, prof.min_tile_density * 100.0,
                prof.max_tile_density * 100.0, static_cast<long long>(prof.empty_tiles),
                static_cast<long long>(prof.tiles));
  }
  std::printf("# paper (Table VI density of A): CI 0.08%%  CO 0.14%%  PU 0.02%%"
              "  FL 0.01%%  NE 0.0058%%  RE 0.21%%\n");
  std::printf("# note: graphs regenerate Table VI statistics synthetically at the\n"
              "# dataset's bench scale (edges scale with scale^2 to hold density).\n");
  return 0;
}
