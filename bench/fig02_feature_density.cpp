// Reproduces paper Fig. 2: density of the feature matrices through the
// layers of the GCN model — input H0, after Update() of layer 1, after
// Aggregate()+sigma of layer 1, after Update() of layer 2, after
// Aggregate() of layer 2. These densities are what the runtime system
// profiles on the fly and feeds to the dynamic K2P mapping.

#include <cstdio>

#include "bench_common.hpp"

using namespace dynasparse;
using namespace dynasparse::bench;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  std::printf("=== Fig. 2: density of GCN feature matrices per layer ===\n");
  std::printf("%-4s %10s %12s %14s %12s %14s\n", "tag", "H0", "afterUpd1",
              "afterAgg1+act", "afterUpd2", "afterAgg2");
  for (const std::string& tag : dataset_tags()) {
    Dataset ds = load_dataset(tag, args);
    GnnModel m = make_model(GnnModelKind::kGcn, ds, args.seed);
    InferenceReport rep = run_inference(m, ds, {});
    const auto& d = rep.execution.node_densities;  // Upd1, Agg1, Upd2, Agg2
    std::printf("%-4s %9.4f %12.4f %14.4f %12.4f %14.4f\n", tag.c_str(),
                ds.features.density(), d[0], d[1], d[2], d[3]);
  }
  std::printf("# paper (Fig. 2 shape): input densities vary per graph; Update with\n"
              "# dense weights densifies; Aggregate + ReLU re-sparsifies roughly by\n"
              "# half; layer-wise densities differ per dataset.\n");
  return 0;
}
