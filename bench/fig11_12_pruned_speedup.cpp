// Reproduces paper Figs. 11 & 12 and Table VIII: speedup of Dynamic over
// Static-1 (Fig. 11) and Static-2 (Fig. 12) as the weight matrices are
// pruned to increasing sparsity, for all four models and six datasets;
// Table VIII's geometric means per sparsity band close the summary.

#include <cstdio>
#include <map>

#include "bench_common.hpp"
#include "util/math_util.hpp"

using namespace dynasparse;
using namespace dynasparse::bench;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  const std::vector<double> sparsities = {0.0, 0.2, 0.4, 0.6, 0.8, 0.95, 0.99};
  // Sparsity-band buckets of Table VIII.
  std::map<std::string, std::vector<double>> band_s1, band_s2;
  auto band_of = [](double s) -> std::string {
    if (s < 0.5) return "<50%";
    if (s < 0.7) return "50-70%";
    if (s < 0.9) return "70-90%";
    return ">90%";
  };

  for (GnnModelKind kind : paper_models()) {
    std::printf("=== Figs. 11/12: %s — speedup of Dynamic vs weight sparsity ===\n",
                model_kind_name(kind));
    std::printf("%-4s %-6s", "tag", "vs");
    for (double s : sparsities) std::printf("%9.0f%%", s * 100.0);
    std::printf("\n");
    for (const std::string& tag : dataset_tags()) {
      Dataset ds = load_dataset(tag, args);
      std::vector<double> so1, so2;
      for (double s : sparsities) {
        GnnModel m = make_model(kind, ds, args.seed, s);
        CompiledProgram prog = compile(m, ds, u250_config());
        double dyn = strategy_latency_ms(prog, MappingStrategy::kDynamic);
        double s1 = strategy_latency_ms(prog, MappingStrategy::kStatic1);
        double s2 = strategy_latency_ms(prog, MappingStrategy::kStatic2);
        so1.push_back(s1 / dyn);
        so2.push_back(s2 / dyn);
        band_s1[band_of(s)].push_back(s1 / dyn);
        band_s2[band_of(s)].push_back(s2 / dyn);
      }
      std::printf("%-4s %-6s", tag.c_str(), "S1");
      for (double v : so1) std::printf("%9.2fx", v);
      std::printf("\n%-4s %-6s", tag.c_str(), "S2");
      for (double v : so2) std::printf("%9.2fx", v);
      std::printf("\n");
    }
    std::printf("\n");
  }

  std::printf("=== Table VIII: geo-mean speedup per weight-sparsity band ===\n");
  std::printf("%-10s %10s %10s\n", "band", "SO-S1", "SO-S2");
  for (const char* band : {"<50%", "50-70%", "70-90%", ">90%"}) {
    std::printf("%-10s %9.2fx %9.2fx\n", band, geometric_mean(band_s1[band]),
                geometric_mean(band_s2[band]));
  }
  std::printf("# paper Table VIII: SO-S1 2.16x / 4.36x / 10.77x / 15.96x,\n"
              "#                   SO-S2 1.38x / 1.64x /  2.11x /  5.03x\n"
              "# Reproduced claim: both speedups grow monotonically with sparsity.\n");
  return 0;
}
