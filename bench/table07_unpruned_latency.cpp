// Reproduces paper Table VII: accelerator latency (ms) of the three
// mapping strategies (Static-1, Static-2, Dynamic) on the unpruned GNN
// models across all six datasets, with the speedups SO-S1 and SO-S2 and
// their geometric means (paper: 2.13x and 1.59x on average).

#include <cstdio>

#include "bench_common.hpp"
#include "util/math_util.hpp"

using namespace dynasparse;
using namespace dynasparse::bench;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  std::printf("=== Table VII: latency (ms) on unpruned GNN models ===\n");
  std::vector<double> all_so_s1, all_so_s2;
  for (GnnModelKind kind : paper_models()) {
    std::printf("\n-- %s --\n", model_kind_name(kind));
    std::printf("%-9s", "strategy");
    for (const std::string& tag : dataset_tags()) std::printf("%12s", tag.c_str());
    std::printf("\n");
    std::vector<double> s1_row, s2_row, dyn_row;
    for (const std::string& tag : dataset_tags()) {
      Dataset ds = load_dataset(tag, args);
      GnnModel m = make_model(kind, ds, args.seed);
      CompiledProgram prog = compile(m, ds, u250_config());
      s1_row.push_back(strategy_latency_ms(prog, MappingStrategy::kStatic1));
      s2_row.push_back(strategy_latency_ms(prog, MappingStrategy::kStatic2));
      dyn_row.push_back(strategy_latency_ms(prog, MappingStrategy::kDynamic));
    }
    auto print_row = [&](const char* name, const std::vector<double>& row) {
      std::printf("%-9s", name);
      for (double v : row) std::printf("%12.4g", v);
      std::printf("\n");
    };
    print_row("S1", s1_row);
    print_row("S2", s2_row);
    print_row("Dynamic", dyn_row);
    std::printf("%-9s", "SO-S1");
    for (std::size_t i = 0; i < dyn_row.size(); ++i) {
      double so = s1_row[i] / dyn_row[i];
      all_so_s1.push_back(so);
      std::printf("%11.2fx", so);
    }
    std::printf("\n%-9s", "SO-S2");
    for (std::size_t i = 0; i < dyn_row.size(); ++i) {
      double so = s2_row[i] / dyn_row[i];
      all_so_s2.push_back(so);
      std::printf("%11.2fx", so);
    }
    std::printf("\n");
  }
  std::printf("\nGeo-mean speedup: SO-S1 %.2fx (paper 2.13x), SO-S2 %.2fx (paper 1.59x)\n",
              geometric_mean(all_so_s1), geometric_mean(all_so_s2));
  std::printf("# paper Table VII highlights: GCN/CI SO-S1 41.3x, GCN/NE SO-S1 278x,\n"
              "# SAGE SO-S2 ~1.2-2.1x, GIN SO-S2 1.25-2.31x, SGC SO-S2 1.19-1.99x.\n"
              "# Absolute ms differ (simulated substrate + scaled graphs); the\n"
              "# orderings and who-wins-where are the reproduced claims.\n");
  return 0;
}
