// Ablation (DESIGN.md design-choice index): the data-partitioning choices
// of Algorithm 9 — the load-balance factor eta and the partition-size
// bounds. Sweeps eta and a forced partition size on PubMed/GCN and
// reports latency + core load imbalance, checking the paper's rationale:
// too few tasks starve cores; too-small partitions destroy arithmetic
// intensity and multiply per-pair overheads.

#include <cstdio>

#include "bench_common.hpp"

using namespace dynasparse;
using namespace dynasparse::bench;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  Dataset ds = load_dataset("PU", args);
  GnnModel m = make_model(GnnModelKind::kGcn, ds, args.seed);

  std::printf("=== Ablation: load-balance factor eta (Algorithm 9, paper uses 4) ===\n");
  std::printf("%6s %6s %6s %12s %14s %10s\n", "eta", "N1", "N2", "tasks(U1)",
              "latency(ms)", "imbalance");
  for (int eta : {1, 2, 4, 8, 16}) {
    SimConfig cfg = u250_config();
    cfg.load_balance_eta = eta;
    CompiledProgram prog = compile(m, ds, cfg);
    InferenceReport rep = run_compiled(prog, {});
    double worst_imbalance = 1.0;
    for (const KernelExecutionReport& k : rep.execution.kernels)
      worst_imbalance = std::max(worst_imbalance, k.load_imbalance);
    std::printf("%6d %6lld %6lld %12lld %14.4f %10.3f\n", eta,
                static_cast<long long>(prog.plan.n1),
                static_cast<long long>(prog.plan.n2),
                static_cast<long long>(prog.kernels[0].scheme.num_tasks()),
                rep.latency_ms, worst_imbalance);
  }

  std::printf("\n=== Ablation: forced partition size (min = max = N) ===\n");
  std::printf("%6s %12s %14s %12s %12s\n", "N", "tasks(U1)", "latency(ms)",
              "pairs", "soft-ms");
  for (int n : {64, 128, 256, 512, 704}) {
    SimConfig cfg = u250_config();
    cfg.min_partition = n;
    cfg.onchip_tile_bytes = static_cast<std::size_t>(n) * n * 4;
    CompiledProgram prog = compile(m, ds, cfg);
    InferenceReport rep = run_compiled(prog, {});
    std::printf("%6d %12lld %14.4f %12lld %12.4f\n", n,
                static_cast<long long>(prog.kernels[0].scheme.num_tasks()),
                rep.latency_ms, static_cast<long long>(rep.execution.stats.pairs),
                rep.execution.soft_ms);
  }
  std::printf("# claims checked: eta >= 4 keeps imbalance low without collapsing\n"
              "# partition size; small partitions inflate pair counts (runtime-\n"
              "# system work) and lose arithmetic intensity.\n");
  return 0;
}
