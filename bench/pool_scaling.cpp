// Work-stealing pool scaling bench (ISSUE 3 acceptance): demonstrates
// true intra-request parallelism and emits BENCH_pr3.json.
//
// Scenario A — lone big request, strong scaling: one paper-style large
// request executed at forced host thread counts (1/2/4/8). Before the
// work-stealing pool, a single request was pinned to one thread no matter
// how many cores idled; now its chunks fan out (the pool-stats delta
// proves multi-thread participation even where wall-clock gains are
// hardware-capped). Reports must stay bit-identical at every thread
// count.
//
// Scenario B — mixed stream: one big request plus a tail of small ones
// through the InferenceService, comparing intra_op_threads=1 (the PR-2
// serial-per-worker model) against intra_op_threads=0 (requests share the
// pool). Fingerprints must match across both configurations.
//
//   pool_scaling [--smoke] [--seed S] [--reps R] [--out PATH]

#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "service/request_stream.hpp"
#include "util/parallel.hpp"
#include "util/strict_parse.hpp"

using namespace dynasparse;
using bench::JsonWriter;

namespace {

ServiceRequest big_request(bool smoke, std::uint64_t seed) {
  StreamRequestSpec spec;
  // FL at its default bench scale is the largest graph that compiles in
  // seconds; smoke mode drops to PU so CI stays fast.
  spec.dataset = smoke ? "PU" : "FL";
  spec.model = GnnModelKind::kGcn;
  spec.seed = seed;
  return materialize_request(spec);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::uint64_t seed = 2023;
  int reps = 3;
  const char* out_path = "BENCH_pr3.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc)
      seed = strict_stoull(argv[++i]);
    else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc)
      reps = strict_stoi(argv[++i]);
    else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc)
      out_path = argv[++i];
  }
  if (reps < 1) reps = 1;

  const std::vector<int> thread_counts = {1, 2, 4, 8};

  // ---- Scenario A: lone big request, strong scaling ------------------------
  ServiceRequest big = big_request(smoke, seed);
  std::printf("compiling the big request (%s)...\n", smoke ? "PU" : "FL");
  CompiledProgram prog = compile(*big.model, *big.dataset, big.options.config);

  struct Point {
    int threads = 0;
    double ms = 0.0;
    std::uint64_t fingerprint = 0;
    std::int64_t chunks = 0, stolen = 0;
  };
  std::vector<Point> scaling;
  bool fingerprints_identical = true;
  for (int threads : thread_counts) {
    RuntimeOptions opt = big.options.runtime;
    opt.host_threads = threads;
    Point p;
    p.threads = threads;
    PoolStats before = parallel_pool_stats();
    p.ms = bench::time_best_of_ms(reps, [&] {
      p.fingerprint = run_compiled(prog, opt).deterministic_fingerprint();
    });
    PoolStats after = parallel_pool_stats();
    // Per-run figures: the stats delta spans all reps while ms is
    // best-of-reps, so divide to keep the two columns comparable.
    p.chunks = (after.chunks - before.chunks) / reps;
    p.stolen = (after.chunks_stolen - before.chunks_stolen) / reps;
    if (!scaling.empty() && p.fingerprint != scaling[0].fingerprint)
      fingerprints_identical = false;
    scaling.push_back(p);
    std::printf(
        "threads %d: %8.2f ms  speedup %.2fx  pool chunks %lld (stolen %lld)\n",
        threads, p.ms, scaling[0].ms / p.ms, static_cast<long long>(p.chunks),
        static_cast<long long>(p.stolen));
  }

  // ---- Scenario B: one big + small tail through the service ----------------
  std::vector<ServiceRequest> stream;
  stream.push_back(big);
  for (const StreamRequestSpec& spec : synthetic_stream(smoke ? 4 : 8, seed))
    stream.push_back(materialize_request(spec));

  auto run_mix = [&](int intra_op) {
    ServiceOptions opts;
    opts.workers = 4;
    opts.cache_capacity = stream.size();
    opts.intra_op_threads = intra_op;
    InferenceService service(opts);
    // Warm the compilation cache (the serving steady state) so the timed
    // region measures execution overlap, not first-compile noise.
    for (const ServiceRequest& req : stream)
      service.cache().get_or_compile(*req.model, *req.dataset, req.options.config);
    Stopwatch sw;
    std::vector<RequestId> ids;
    ids.reserve(stream.size());
    for (const ServiceRequest& req : stream) ids.push_back(service.submit(req));
    std::vector<std::uint64_t> fps;
    for (RequestId id : ids)
      fps.push_back(service.wait(id).deterministic_fingerprint());
    double ms = sw.elapsed_ms();
    return std::make_pair(ms, fps);
  };

  double serial_ms = -1.0, shared_ms = -1.0;
  std::vector<std::uint64_t> serial_fps, shared_fps;
  for (int rep = 0; rep < reps; ++rep) {
    auto [ms1, fps1] = run_mix(/*intra_op=*/1);
    auto [ms0, fps0] = run_mix(/*intra_op=*/0);
    if (serial_ms < 0.0 || ms1 < serial_ms) serial_ms = ms1;
    if (shared_ms < 0.0 || ms0 < shared_ms) shared_ms = ms0;
    if (rep == 0) {
      serial_fps = fps1;
      shared_fps = fps0;
    }
    if (fps1 != serial_fps || fps0 != shared_fps) fingerprints_identical = false;
  }
  if (serial_fps != shared_fps) fingerprints_identical = false;
  std::printf(
      "\nmixed stream (%zu requests): intra_op=1 %.1f ms, shared pool %.1f ms "
      "(%.2fx)\n",
      stream.size(), serial_ms, shared_ms, serial_ms / shared_ms);
  std::printf("reports bit-identical across all configurations: %s\n",
              fingerprints_identical ? "yes" : "NO");

  // The acceptance signal that works even on hardware-capped hosts: with
  // idle workers available, a lone request's chunks must actually execute
  // on more than one thread (steals observed).
  bool fanout_observed = false;
  for (const Point& p : scaling)
    if (p.threads > 1 && p.stolen > 0) fanout_observed = true;
  std::printf("intra-request fan-out observed (chunks stolen by workers): %s\n",
              fanout_observed ? "yes" : "NO");

  PoolStats pool = parallel_pool_stats();
  JsonWriter w;
  w.begin_object();
  w.key("bench").value(std::string("pool_scaling"));
  w.key("pr").value(3);
  w.key("config").begin_object();
  w.key("smoke").value(smoke);
  w.key("reps").value(reps);
  w.key("seed").value(static_cast<std::int64_t>(seed));
  w.key("big_dataset").value(std::string(smoke ? "PU" : "FL"));
  w.key("hardware_concurrency").value(
      static_cast<std::int64_t>(std::thread::hardware_concurrency()));
  w.key("default_pool_threads").value(parallel_hardware_threads());
  w.end_object();
  w.key("notes").begin_array();
  w.value(std::string(
      "scenario A: one large compiled request executed at forced host thread "
      "counts; work-stealing pool spreads its chunks across idle workers"));
  w.value(std::string(
      "scenario B: 1 big + small tail through InferenceService; intra_op=1 is "
      "the PR-2 serial-per-worker model, intra_op=0 shares the pool"));
  w.value(std::string(
      "chunks_stolen > 0 at threads>1 demonstrates multi-thread execution of "
      "a lone request even where wall-clock scaling is hardware-capped"));
  w.end_array();
  w.key("lone_big_request").begin_array();
  for (const Point& p : scaling) {
    w.begin_object();
    w.key("threads").value(p.threads);
    w.key("ms").value(p.ms);
    w.key("speedup_vs_1").value(scaling[0].ms / p.ms);
    w.key("pool_chunks").value(p.chunks);
    w.key("pool_chunks_stolen").value(p.stolen);
    w.end_object();
  }
  w.end_array();
  w.key("mixed_stream").begin_object();
  w.key("requests").value(static_cast<std::int64_t>(stream.size()));
  w.key("serial_intra_op_ms").value(serial_ms);
  w.key("shared_pool_ms").value(shared_ms);
  w.key("speedup").value(serial_ms / shared_ms);
  w.end_object();
  w.key("reports_bit_identical").value(fingerprints_identical);
  w.key("intra_request_fanout_observed").value(fanout_observed);
  w.key("pool_totals").begin_object();
  w.key("jobs").value(pool.jobs);
  w.key("chunks").value(pool.chunks);
  w.key("chunks_stolen").value(pool.chunks_stolen);
  w.key("worker_threads").value(pool.threads);
  w.end_object();
  w.end_object();

  std::ofstream f(out_path);
  f << w.str() << "\n";
  std::printf("wrote %s\n", out_path);
  return fingerprints_identical && fanout_observed ? 0 : 1;
}
