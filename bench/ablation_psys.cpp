// Ablation (DESIGN.md design-choice index): Computation Core width psys.
// The paper implements psys = 16 and notes psys >= 8 is feasible on the
// U250 (Section VI-A). The SpDMM/SPMM crossover amax = 2/psys moves with
// the width, so the primitive mix and the dynamic strategy's advantage
// both shift. Runs GCN/CiteSeer across widths.

#include <cstdio>

#include "bench_common.hpp"

using namespace dynasparse;
using namespace dynasparse::bench;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  Dataset ds = load_dataset("CI", args);
  GnnModel m = make_model(GnnModelKind::kGcn, ds, args.seed);

  std::printf("=== Ablation: ALU array width psys (paper: 16) ===\n");
  std::printf("%6s %14s %14s %10s %8s %8s %8s %8s\n", "psys", "Dynamic(ms)",
              "Static1(ms)", "SO-S1", "GEMM", "SpDMM", "SPMM", "skip");
  for (int psys : {8, 16, 32}) {
    SimConfig cfg = u250_config();
    cfg.psys = psys;
    CompiledProgram prog = compile(m, ds, cfg);
    RuntimeOptions dyn;
    InferenceReport rd = run_compiled(prog, dyn);
    RuntimeOptions s1;
    s1.strategy = MappingStrategy::kStatic1;
    InferenceReport rs = run_compiled(prog, s1);
    const AcceleratorStats& st = rd.execution.stats;
    std::printf("%6d %14.4f %14.4f %9.2fx %8lld %8lld %8lld %8lld\n", psys,
                rd.latency_ms, rs.latency_ms, rs.latency_ms / rd.latency_ms,
                static_cast<long long>(st.pairs_gemm),
                static_cast<long long>(st.pairs_spdmm),
                static_cast<long long>(st.pairs_spmm),
                static_cast<long long>(st.pairs_skipped));
  }
  std::printf("# claims checked: wider arrays shrink the SPMM region (amax >= 2/psys\n"
              "# admits more SpDMM) and raise GEMM peak, compressing the dynamic-\n"
              "# over-static gap on compute-bound kernels.\n");
  return 0;
}
