// Ablation (DESIGN.md design-choice index): how faithful is the Analyzer's
// closed-form performance model (Table IV) to the detailed dataflow models
// of the three execution modes (systolic fill/drain, ISN bank conflicts,
// SCP row imbalance)? The K2P decisions rest on the closed forms; this
// bench quantifies the gap across the density grid and checks that the
// *choice* the closed forms imply stays optimal under the detailed costs.

#include <cstdio>

#include "core/engine.hpp"
#include "matrix/format_convert.hpp"
#include "runtime/perf_model.hpp"
#include "sim/acm_functional.hpp"
#include "util/random.hpp"

using namespace dynasparse;

namespace {
DenseMatrix random_dense(std::int64_t rows, std::int64_t cols, double density, Rng& rng) {
  DenseMatrix m(rows, cols);
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      if (rng.bernoulli(density)) m.at(r, c) = static_cast<float>(rng.normal());
  return m;
}
}  // namespace

int main() {
  const int psys = 16;
  const std::int64_t m = 256, n = 256, d = 64;
  CycleModel ideal(psys);
  GemmSystolicModel gemm_model(psys);
  SpdmmScatterGatherModel spdmm_model(psys);
  SpmmRowwiseModel spmm_model(psys);
  Rng rng(7);

  std::printf("=== Ablation: Table IV closed forms vs detailed dataflow models ===\n");
  std::printf("tile %lldx%lldx%lld, psys=%d; ratio = detailed / closed-form cycles\n\n",
              static_cast<long long>(m), static_cast<long long>(n),
              static_cast<long long>(d), psys);
  std::printf("%8s %8s | %12s %12s %12s | %10s %10s\n", "dens(X)", "dens(Y)",
              "GEMM-ratio", "SpDMM-ratio", "SPMM-ratio", "K2P-choice", "best-det");

  int agreements = 0, cases = 0;
  for (double dx : {0.01, 0.05, 0.125, 0.3, 0.6, 1.0}) {
    for (double dy : {0.05, 0.5, 1.0}) {
      DenseMatrix x = random_dense(m, n, dx, rng);
      DenseMatrix y = random_dense(n, d, dy, rng);
      CooMatrix xs = dense_to_coo(x), ys = dense_to_coo(y);
      PairShape shape{m, n, d, x.density(), y.density()};
      double amin = std::min(shape.ax, shape.ay);

      DenseMatrix z1(m, d), z2(m, d), z3(m, d);
      double det[3] = {gemm_model.run(x, y, z1).cycles,
                       spdmm_model.run(xs, y, z2).cycles,
                       spmm_model.run(xs, ys, z3).cycles};
      double closed[3] = {ideal.gemm_cycles(shape), ideal.spdmm_cycles(shape, amin),
                          ideal.spmm_cycles(shape)};
      // SpDMM detailed always routes on X; the closed form charges amin.
      // Compare against the X-view for the ratio column.
      double spdmm_closed_x = ideal.spdmm_cycles(shape, shape.ax);

      Primitive choice = choose_primitive(shape.ax, shape.ay, psys);
      int best_det = 0;
      for (int i = 1; i < 3; ++i)
        if (det[i] < det[best_det]) best_det = i;
      const char* det_names[3] = {"GEMM", "SpDMM", "SPMM"};
      ++cases;
      if ((choice == Primitive::kGemm && best_det == 0) ||
          (choice == Primitive::kSpdmm && best_det == 1) ||
          (choice == Primitive::kSpmm && best_det == 2))
        ++agreements;

      std::printf("%8.3f %8.3f | %12.3f %12.3f %12.3f | %10s %10s\n", shape.ax,
                  shape.ay, det[0] / closed[0], det[1] / spdmm_closed_x,
                  closed[2] > 0 ? det[2] / closed[2] : 0.0, primitive_name(choice),
                  det_names[best_det]);
    }
  }
  std::printf("\nK2P choice matches the detailed-model argmin in %d/%d cases.\n",
              agreements, cases);

  // End-to-end fidelity: the whole engine priced by the closed forms vs
  // by the detailed models (RuntimeOptions::detailed_timing).
  {
    Dataset ds = generate_dataset(dataset_by_tag("CO"), 1, 7);
    Rng rng2(8);
    GnnModel gcn = build_model(GnnModelKind::kGcn, ds.spec.feature_dim,
                               ds.spec.hidden_dim, ds.spec.num_classes, rng2);
    CompiledProgram prog = compile(gcn, ds, u250_config());
    RuntimeOptions analytic, detailed;
    detailed.detailed_timing = true;
    double la = execute(prog, analytic).exec_ms;
    double ld = execute(prog, detailed).exec_ms;
    std::printf("\nend-to-end (GCN/Cora): analytic %.4f ms, detailed %.4f ms "
                "(ratio %.3f)\n", la, ld, ld / la);
  }
  std::printf("# claim checked: the closed forms overshoot by bounded factors\n"
              "# (fill/drain, conflicts, imbalance) but preserve the argmin, so the\n"
              "# dynamic mapping decided on the closed forms stays near-optimal.\n");
  return 0;
}
