// Micro-benchmarks of the functional primitive kernels: the optimized
// row-span/CSR kernels (matrix_ops.hpp) against the frozen seed kernels
// (matrix_ops_ref.hpp), plus parallel_for thread scaling.
//
// Emits a machine-readable BENCH_pr1.json so every future perf PR has a
// trajectory to beat (and prints the same numbers as text). Every timed
// kernel's output is verified against the seed kernel before it is timed;
// a speedup over a wrong result is worthless.
//
//   micro_primitives [--n 1024] [--density 0.10] [--reps 3]
//                    [--max-threads 8] [--out BENCH_pr1.json] [--smoke]
//
// --smoke shrinks sizes for CI (seconds, not minutes).

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "matrix/format_convert.hpp"
#include "matrix/matrix_ops.hpp"
#include "matrix/matrix_ops_ref.hpp"
#include "util/parallel.hpp"
#include "util/random.hpp"
#include "util/strict_parse.hpp"

namespace {

using namespace dynasparse;

struct Args {
  std::int64_t n = 1024;
  double density = 0.10;
  int reps = 3;
  int max_threads = 8;
  std::string out = "BENCH_pr1.json";
  bool smoke = false;
};

Args parse(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--n") && i + 1 < argc)
      a.n = strict_stoll(argv[++i]);
    else if (!std::strcmp(argv[i], "--density") && i + 1 < argc)
      a.density = strict_stod(argv[++i]);
    else if (!std::strcmp(argv[i], "--reps") && i + 1 < argc)
      a.reps = strict_stoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--max-threads") && i + 1 < argc)
      a.max_threads = strict_stoi(argv[++i]);
    else if (!std::strcmp(argv[i], "--out") && i + 1 < argc)
      a.out = argv[++i];
    else if (!std::strcmp(argv[i], "--smoke"))
      a.smoke = true;
  }
  if (a.smoke) {
    a.n = 128;
    a.reps = 2;
  }
  return a;
}

DenseMatrix make_dense(std::int64_t n, double density, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(n, n);
  for (std::int64_t r = 0; r < n; ++r)
    for (std::int64_t c = 0; c < n; ++c)
      if (rng.bernoulli(density)) m.at(r, c) = static_cast<float>(rng.normal());
  return m;
}

struct KernelResult {
  std::string name;
  double seed_ms = 0.0;
  double opt_ms = 0.0;
  bool verified = false;
  double speedup() const { return opt_ms > 0.0 ? seed_ms / opt_ms : 0.0; }
};

KernelResult run_kernel(const std::string& name, int reps,
                        const std::function<DenseMatrix()>& seed_fn,
                        const std::function<DenseMatrix()>& opt_fn) {
  KernelResult r;
  r.name = name;
  r.verified = DenseMatrix::max_abs_diff(seed_fn(), opt_fn()) == 0.0f;
  r.seed_ms = dynasparse::bench::time_best_of_ms(reps, [&] { seed_fn(); });
  r.opt_ms = dynasparse::bench::time_best_of_ms(reps, [&] { opt_fn(); });
  std::printf("%-12s seed %9.2f ms   opt %9.2f ms   speedup %6.2fx   %s\n",
              name.c_str(), r.seed_ms, r.opt_ms, r.speedup(),
              r.verified ? "bit-equal" : "MISMATCH");
  return r;
}

struct ScalingPoint {
  int threads = 1;
  double ms = 0.0;
  double speedup = 1.0;  // vs threads=1
};

/// parallel_for scaling probe: independent fixed-cost items (a small
/// dense-tile product each), enough items to load-balance well.
std::vector<ScalingPoint> run_scaling(const Args& args) {
  const std::int64_t tile = args.smoke ? 48 : 96;
  const std::int64_t items = args.smoke ? 16 : 64;
  DenseMatrix x = make_dense(tile, 1.0, 11), y = make_dense(tile, 1.0, 12);
  auto workload = [&](int threads) {
    parallel_for(
        items,
        [&](std::int64_t) {
          DenseMatrix z(tile, tile);
          gemm_accumulate(x, y, z);
        },
        threads, /*grain=*/1);
  };
  std::vector<ScalingPoint> points;
  double base_ms = 0.0;
  for (int t = 1; t <= args.max_threads; t *= 2) {
    ScalingPoint p;
    p.threads = t;
    p.ms = dynasparse::bench::time_best_of_ms(args.reps, [&] { workload(t); });
    if (t == 1) base_ms = p.ms;
    p.speedup = p.ms > 0.0 ? base_ms / p.ms : 0.0;
    std::printf("parallel_for %2d thread%s %9.2f ms   speedup %5.2fx\n", t,
                t == 1 ? " " : "s", p.ms, p.speedup);
    points.push_back(p);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  Args args = parse(argc, argv);
  std::printf("# micro_primitives: n=%lld density=%.2f reps=%d (hw threads: %d)\n",
              static_cast<long long>(args.n), args.density, args.reps,
              parallel_hardware_threads());

  DenseMatrix xd = make_dense(args.n, args.density, 1);
  DenseMatrix yd = make_dense(args.n, 1.0, 2);
  CooMatrix xs = dense_to_coo(xd);
  CsrMatrix xcsr = coo_to_csr(xs);
  CooMatrix ys = dense_to_coo(make_dense(args.n, args.density, 3));
  CsrMatrix ycsr = coo_to_csr(ys);

  std::vector<KernelResult> kernels;
  kernels.push_back(run_kernel(
      "gemm", args.reps, [&] { return ref::gemm(xd, yd); },
      [&] { return gemm(xd, yd); }));
  kernels.push_back(run_kernel(
      "spdmm", args.reps, [&] { return ref::spdmm(xs, yd); },
      [&] { return spdmm(xcsr, yd); }));
  kernels.push_back(run_kernel(
      "spdmm_rhs", args.reps, [&] { return ref::spdmm_rhs(yd, ys); },
      [&] { return spdmm_rhs(yd, ys); }));
  kernels.push_back(run_kernel(
      "spmm", args.reps,
      [&] { return ref::spmm(xs, ys); },
      [&] { return spmm(xcsr, ycsr); }));

  std::vector<ScalingPoint> scaling = run_scaling(args);

  dynasparse::bench::JsonWriter w;
  w.begin_object();
  w.key("bench").value(std::string("micro_primitives"));
  w.key("pr").value(1);
  w.key("config").begin_object();
  w.key("n").value(static_cast<std::int64_t>(args.n));
  w.key("density").value(args.density);
  w.key("reps").value(args.reps);
  w.key("smoke").value(args.smoke);
  w.key("hardware_concurrency").value(parallel_hardware_threads());
  w.end_object();
  // Measurement contract: the seed kernels are frozen in their own TU
  // compiled at the baseline ISA a default Release build of the seed repo
  // (which shipped no build system) would produce; the optimized kernels
  // use the project's tuned flags (-march=native, contraction off). Both
  // families produce bit-identical results, verified per run.
  w.key("notes").begin_array();
  w.value(std::string("seed kernels: matrix_ops_ref.cpp at baseline -march"));
  w.value(std::string("optimized kernels: project flags (-march=native, -ffp-contract=off)"));
  w.value(std::string(
      "parallel_for scaling is bounded by hardware_concurrency of this host"));
  w.end_array();
  w.key("kernels").begin_array();
  for (const KernelResult& k : kernels) {
    w.begin_object();
    w.key("name").value(k.name);
    w.key("seed_ms").value(k.seed_ms);
    w.key("opt_ms").value(k.opt_ms);
    w.key("speedup").value(k.speedup());
    w.key("verified_bit_equal").value(k.verified);
    w.end_object();
  }
  w.end_array();
  w.key("parallel_for").begin_array();
  for (const ScalingPoint& p : scaling) {
    w.begin_object();
    w.key("threads").value(p.threads);
    w.key("ms").value(p.ms);
    w.key("speedup_vs_1").value(p.speedup);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::ofstream out(args.out);
  out << w.str() << "\n";
  std::printf("# wrote %s\n", args.out.c_str());

  for (const KernelResult& k : kernels)
    if (!k.verified) {
      std::fprintf(stderr, "kernel %s output differs from seed!\n", k.name.c_str());
      return 1;
    }
  return 0;
}
