// google-benchmark microbenches of the functional primitive kernels and
// the format-conversion substrates — host-side performance sanity of the
// building blocks (not paper artifacts; those live in the fig*/table*
// binaries).

#include <benchmark/benchmark.h>

#include "matrix/format_convert.hpp"
#include "matrix/matrix_ops.hpp"
#include "matrix/partitioned_matrix.hpp"
#include "util/random.hpp"

namespace {

using namespace dynasparse;

DenseMatrix make_dense(std::int64_t n, double density, std::uint64_t seed) {
  Rng rng(seed);
  DenseMatrix m(n, n);
  for (std::int64_t r = 0; r < n; ++r)
    for (std::int64_t c = 0; c < n; ++c)
      if (rng.bernoulli(density)) m.at(r, c) = static_cast<float>(rng.normal());
  return m;
}

void BM_Gemm(benchmark::State& state) {
  std::int64_t n = state.range(0);
  DenseMatrix x = make_dense(n, 1.0, 1), y = make_dense(n, 1.0, 2);
  for (auto _ : state) {
    DenseMatrix z = gemm(x, y);
    benchmark::DoNotOptimize(z.data().data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128);

void BM_Spdmm(benchmark::State& state) {
  std::int64_t n = state.range(0);
  double density = static_cast<double>(state.range(1)) / 100.0;
  CooMatrix x = dense_to_coo(make_dense(n, density, 3));
  DenseMatrix y = make_dense(n, 1.0, 4);
  for (auto _ : state) {
    DenseMatrix z = spdmm(x, y);
    benchmark::DoNotOptimize(z.data().data());
  }
  state.SetItemsProcessed(state.iterations() * x.nnz() * n);
}
BENCHMARK(BM_Spdmm)->Args({128, 1})->Args({128, 10})->Args({128, 50});

void BM_Spmm(benchmark::State& state) {
  std::int64_t n = state.range(0);
  double density = static_cast<double>(state.range(1)) / 100.0;
  CooMatrix x = dense_to_coo(make_dense(n, density, 5));
  CooMatrix y = dense_to_coo(make_dense(n, density, 6));
  for (auto _ : state) {
    DenseMatrix z = spmm(x, y);
    benchmark::DoNotOptimize(z.data().data());
  }
}
BENCHMARK(BM_Spmm)->Args({128, 1})->Args({128, 10});

void BM_DenseToCoo(benchmark::State& state) {
  DenseMatrix m = make_dense(state.range(0), 0.1, 7);
  for (auto _ : state) {
    CooMatrix c = dense_to_coo(m);
    benchmark::DoNotOptimize(c.entries().data());
  }
}
BENCHMARK(BM_DenseToCoo)->Arg(256)->Arg(512);

void BM_PartitionFromDense(benchmark::State& state) {
  DenseMatrix m = make_dense(512, 0.05, 8);
  for (auto _ : state) {
    PartitionedMatrix p = PartitionedMatrix::from_dense(m, state.range(0),
                                                        state.range(0), 1.0 / 3.0);
    benchmark::DoNotOptimize(&p);
  }
}
BENCHMARK(BM_PartitionFromDense)->Arg(64)->Arg(128)->Arg(256);

void BM_TileAccumulate(benchmark::State& state) {
  double density = static_cast<double>(state.range(0)) / 100.0;
  DenseMatrix xd = make_dense(256, density, 9), yd = make_dense(256, density, 10);
  Tile x = Tile::from_dense(xd, 1.0 / 3.0);
  Tile y = Tile::from_dense(yd, 1.0 / 3.0);
  for (auto _ : state) {
    DenseMatrix acc(256, 256);
    accumulate_product(x, y, acc);
    benchmark::DoNotOptimize(acc.data().data());
  }
}
BENCHMARK(BM_TileAccumulate)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

}  // namespace

BENCHMARK_MAIN();
