// Reproduces paper Fig. 13: overhead of the runtime system (soft-processor
// dynamic K2P mapping time) divided by the total execution time, on the
// unpruned GNN models — paper average 6.8%, hidden by task scheduling.

#include <cstdio>

#include "bench_common.hpp"

using namespace dynasparse;
using namespace dynasparse::bench;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  std::printf("=== Fig. 13: runtime-system overhead / total execution time ===\n");
  std::printf("%-10s", "model");
  for (const std::string& tag : dataset_tags()) std::printf("%10s", tag.c_str());
  std::printf("%12s\n", "exposed-ms");
  double sum = 0.0;
  int count = 0;
  for (GnnModelKind kind : paper_models()) {
    std::printf("%-10s", model_kind_name(kind));
    double exposed = 0.0;
    for (const std::string& tag : dataset_tags()) {
      Dataset ds = load_dataset(tag, args);
      GnnModel m = make_model(kind, ds, args.seed);
      InferenceReport rep = run_inference(m, ds, {});
      std::printf("%9.2f%%", rep.execution.runtime_overhead_ratio * 100.0);
      exposed += rep.execution.exposed_runtime_ms;
      sum += rep.execution.runtime_overhead_ratio;
      ++count;
    }
    std::printf("%12.4f\n", exposed);
  }
  std::printf("average overhead: %.2f%% (paper: 6.8%% average, hidden by overlap)\n",
              sum / count * 100.0);
  return 0;
}
