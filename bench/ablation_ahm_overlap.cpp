// Ablation bench (DESIGN.md design-choice index): how much do the two
// overlap mechanisms the paper builds — double buffering that hides the
// AHM's profiling/format/layout stream work (Section V-B3), and the
// pipelined runtime that hides K2P mapping behind the previous kernel
// (Section VI-B) — actually save? Runs GCN on every dataset with each
// mechanism toggled off.

#include <cstdio>

#include "bench_common.hpp"

using namespace dynasparse;
using namespace dynasparse::bench;

int main(int argc, char** argv) {
  BenchArgs args = parse_args(argc, argv);
  std::printf("=== Ablation: AHM double buffering and runtime overlap (GCN) ===\n");
  std::printf("%-4s %14s %14s %14s %12s %12s\n", "tag", "full (ms)", "no-AHM-hide",
              "no-K2P-hide", "AHM cost", "K2P cost");
  for (const std::string& tag : dataset_tags()) {
    Dataset ds = load_dataset(tag, args);
    GnnModel m = make_model(GnnModelKind::kGcn, ds, args.seed);
    CompiledProgram prog = compile(m, ds, u250_config());

    RuntimeOptions full;
    RuntimeOptions no_ahm;
    no_ahm.hide_ahm = false;
    RuntimeOptions no_overlap;
    no_overlap.hide_runtime = false;

    double t_full = run_compiled(prog, full).latency_ms;
    double t_no_ahm = run_compiled(prog, no_ahm).latency_ms;
    double t_no_overlap = run_compiled(prog, no_overlap).latency_ms;

    std::printf("%-4s %14.4g %14.4g %14.4g %11.1f%% %11.1f%%\n", tag.c_str(), t_full,
                t_no_ahm, t_no_overlap, (t_no_ahm / t_full - 1.0) * 100.0,
                (t_no_overlap / t_full - 1.0) * 100.0);
  }
  std::printf("# claim checked: both mechanisms individually matter; without double\n"
              "# buffering the AHM stream work would serialize with compute, and\n"
              "# without overlap the Analyzer's per-pair decisions extend latency.\n");
  return 0;
}
