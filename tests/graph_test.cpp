// Unit tests: Graph, generators, adjacency-operator normalization.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"
#include "graph/graph.hpp"
#include "graph/normalization.hpp"

namespace dynasparse {
namespace {

TEST(GraphTest, BuildsCsrByDestination) {
  // edges: 0->1, 0->2, 2->1 ; adjacency A[dst][src]
  Graph g(3, {{0, 1}, {0, 2}, {2, 1}});
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 3);
  const CsrMatrix& a = g.adjacency();
  EXPECT_TRUE(a.well_formed());
  EXPECT_EQ(g.in_degree(0), 0);
  EXPECT_EQ(g.in_degree(1), 2);  // from 0 and 2
  EXPECT_EQ(g.in_degree(2), 1);
}

TEST(GraphTest, DuplicateEdgesCollapse) {
  Graph g(2, {{0, 1}, {0, 1}, {0, 1}});
  EXPECT_EQ(g.num_edges(), 1);
}

TEST(GraphTest, OutOfRangeEdgeThrows) {
  EXPECT_THROW(Graph(2, {{0, 5}}), std::invalid_argument);
  EXPECT_THROW(Graph(2, {{-1, 0}}), std::invalid_argument);
}

TEST(GraphTest, AdjacencyDensity) {
  Graph g(10, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  EXPECT_DOUBLE_EQ(g.adjacency_density(), 4.0 / 100.0);
}

TEST(GeneratorsTest, ErdosRenyiEdgeCountAndRange) {
  Rng rng(1);
  Graph g = erdos_renyi(200, 1000, rng);
  EXPECT_EQ(g.num_vertices(), 200);
  EXPECT_EQ(g.num_edges(), 1000);
  EXPECT_TRUE(g.adjacency().well_formed());
}

TEST(GeneratorsTest, ErdosRenyiRejectsImpossible) {
  Rng rng(1);
  EXPECT_THROW(erdos_renyi(2, 100, rng), std::invalid_argument);
  EXPECT_THROW(erdos_renyi(0, 0, rng), std::invalid_argument);
}

TEST(GeneratorsTest, ErdosRenyiDeterministic) {
  Rng a(7), b(7);
  Graph ga = erdos_renyi(100, 300, a);
  Graph gb = erdos_renyi(100, 300, b);
  EXPECT_EQ(ga.adjacency().col_idx(), gb.adjacency().col_idx());
}

TEST(GeneratorsTest, PowerLawIsSkewed) {
  Rng rng(2);
  std::int64_t n = 500;
  Graph g = power_law(n, 3000, 0.7, rng);
  EXPECT_EQ(g.num_edges(), 3000);
  // Low-rank vertices should hold a disproportionate share of edges:
  // the top 10% of vertex ids receive well over 10% of in-edges.
  std::int64_t top_decile_edges = 0;
  for (std::int64_t v = 0; v < n / 10; ++v) top_decile_edges += g.in_degree(v);
  EXPECT_GT(top_decile_edges, g.num_edges() / 5);
}

TEST(GeneratorsTest, PowerLawSkewZeroIsUniformish) {
  Rng rng(3);
  std::int64_t n = 500;
  Graph g = power_law(n, 3000, 0.0, rng);
  std::int64_t top_decile_edges = 0;
  for (std::int64_t v = 0; v < n / 10; ++v) top_decile_edges += g.in_degree(v);
  // ~10% expected; allow wide slack but exclude heavy skew.
  EXPECT_LT(top_decile_edges, g.num_edges() / 5);
}

TEST(GeneratorsTest, PowerLawRejectsBadSkew) {
  Rng rng(4);
  EXPECT_THROW(power_law(10, 5, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(power_law(10, 5, -0.1, rng), std::invalid_argument);
}

TEST(GeneratorsTest, RmatProducesRequestedEdges) {
  Rng rng(5);
  Graph g = rmat(256, 2000, 0.45, 0.2, 0.2, rng);
  EXPECT_EQ(g.num_vertices(), 256);
  EXPECT_EQ(g.num_edges(), 2000);
  EXPECT_TRUE(g.adjacency().well_formed());
}

TEST(GeneratorsTest, RmatRejectsBadQuadrants) {
  Rng rng(6);
  EXPECT_THROW(rmat(16, 10, 0.6, 0.3, 0.3, rng), std::invalid_argument);
}

TEST(NormalizationTest, AddSelfLoopsInsertsDiagonal) {
  Graph g(3, {{0, 1}, {2, 1}});
  CsrMatrix sl = add_self_loops(g.adjacency(), 1.0f);
  EXPECT_TRUE(sl.well_formed());
  EXPECT_EQ(sl.nnz(), 2 + 3);
  DenseMatrix d = sl.to_dense();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(d.at(i, i), 1.0f);
}

TEST(NormalizationTest, AddSelfLoopsMergesExistingDiagonal) {
  // edge 1->1 creates a diagonal entry; adding loops must merge not dup.
  Graph g(2, {{1, 1}});
  CsrMatrix sl = add_self_loops(g.adjacency(), 0.5f);
  EXPECT_TRUE(sl.well_formed());
  EXPECT_EQ(sl.nnz(), 2);
  EXPECT_EQ(sl.to_dense().at(1, 1), 1.5f);
}

TEST(NormalizationTest, RowNormRowsSumToOne) {
  Graph g(4, {{0, 1}, {2, 1}, {3, 1}, {0, 2}});
  CsrMatrix rn = build_adjacency_operator(g, AdjKind::kRowNorm);
  DenseMatrix d = rn.to_dense();
  float row1 = d.at(1, 0) + d.at(1, 2) + d.at(1, 3);
  EXPECT_FLOAT_EQ(row1, 1.0f);
  float row2 = d.at(2, 0);
  EXPECT_FLOAT_EQ(row2, 1.0f);
  // Row 0 has no in-edges: stays zero (no NaN).
  EXPECT_EQ(d.at(0, 0), 0.0f);
}

TEST(NormalizationTest, SymNormMatchesClosedForm) {
  // Two vertices with a mutual edge: A+I degrees are 2 and 2, so every
  // entry of D^-1/2 (A+I) D^-1/2 equals 1/2.
  Graph g(2, {{0, 1}, {1, 0}});
  CsrMatrix sn = build_adjacency_operator(g, AdjKind::kSymNorm);
  DenseMatrix d = sn.to_dense();
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) EXPECT_NEAR(d.at(i, j), 0.5f, 1e-6f);
}

TEST(NormalizationTest, SymNormSymmetricForSymmetricGraph) {
  Graph g(4, {{0, 1}, {1, 0}, {2, 3}, {3, 2}, {1, 2}, {2, 1}});
  CsrMatrix sn = build_adjacency_operator(g, AdjKind::kSymNorm);
  DenseMatrix d = sn.to_dense();
  for (int i = 0; i < 4; ++i)
    for (int j = 0; j < 4; ++j) EXPECT_NEAR(d.at(i, j), d.at(j, i), 1e-6f);
}

TEST(NormalizationTest, SelfLoopEpsWeight) {
  Graph g(2, {{0, 1}});
  CsrMatrix op = build_adjacency_operator(g, AdjKind::kSelfLoopEps, 0.25);
  DenseMatrix d = op.to_dense();
  EXPECT_FLOAT_EQ(d.at(0, 0), 1.25f);
  EXPECT_FLOAT_EQ(d.at(1, 1), 1.25f);
  EXPECT_FLOAT_EQ(d.at(1, 0), 1.0f);
}

TEST(NormalizationTest, RawReturnsAdjacencyUnchanged) {
  Graph g(3, {{0, 1}, {1, 2}});
  CsrMatrix raw = build_adjacency_operator(g, AdjKind::kRaw);
  EXPECT_EQ(DenseMatrix::max_abs_diff(raw.to_dense(), g.adjacency().to_dense()), 0.0f);
}

}  // namespace
}  // namespace dynasparse
