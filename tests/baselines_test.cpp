// Unit tests: CPU/GPU framework roofline models and the HyGCN/BoostGCN
// accelerator models (Table X / Fig. 14 comparators).

#include <gtest/gtest.h>

#include "baselines/accelerator_models.hpp"
#include "baselines/platform_models.hpp"
#include "graph/dataset.hpp"
#include "model/model.hpp"

namespace dynasparse {
namespace {

Dataset co_dataset() { return generate_dataset(dataset_by_tag("CO"), 1, 17); }

GnnModel gcn_for(const Dataset& ds) {
  Rng rng(9);
  return build_model(GnnModelKind::kGcn, ds.spec.feature_dim, ds.spec.hidden_dim,
                     ds.spec.num_classes, rng);
}

TEST(PlatformModelsTest, FourFrameworkPlatforms) {
  const auto& specs = framework_platforms();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].name, "PyG-CPU");
  EXPECT_EQ(specs[2].name, "PyG-GPU");
  // Table V peaks.
  EXPECT_DOUBLE_EQ(specs[0].peak_flops, 3.7e12);
  EXPECT_DOUBLE_EQ(specs[2].peak_flops, 36.0e12);
}

TEST(PlatformModelsTest, LatencyPositiveAndFinite) {
  Dataset ds = co_dataset();
  GnnModel m = gcn_for(ds);
  for (const PlatformSpec& p : framework_platforms()) {
    double ms = platform_latency_ms(p, m, ds);
    EXPECT_GT(ms, 0.0) << p.name;
    EXPECT_LT(ms, 1e7) << p.name;
  }
}

TEST(PlatformModelsTest, GpuFasterThanCpuSameFramework) {
  Dataset ds = co_dataset();
  GnnModel m = gcn_for(ds);
  const auto& p = framework_platforms();
  EXPECT_LT(platform_latency_ms(p[2], m, ds), platform_latency_ms(p[0], m, ds));
  EXPECT_LT(platform_latency_ms(p[3], m, ds), platform_latency_ms(p[1], m, ds));
}

TEST(PlatformModelsTest, LatencyScalesWithModelSize) {
  Dataset ds = co_dataset();
  Rng rng(9);
  GnnModel small = build_model(GnnModelKind::kGcn, ds.spec.feature_dim, 16,
                               ds.spec.num_classes, rng);
  GnnModel big = build_model(GnnModelKind::kGcn, ds.spec.feature_dim, 256,
                             ds.spec.num_classes, rng);
  const PlatformSpec& cpu = framework_platforms()[0];
  EXPECT_LT(platform_latency_ms(cpu, small, ds), platform_latency_ms(cpu, big, ds));
}

TEST(AcceleratorModelsTest, SpecsMatchTableV) {
  PlatformSpec hy = hygcn_spec();
  EXPECT_DOUBLE_EQ(hy.peak_flops, 4.608e12);
  EXPECT_DOUBLE_EQ(hy.mem_bandwidth, 256.0e9);
  PlatformSpec bg = boostgcn_spec();
  EXPECT_DOUBLE_EQ(bg.peak_flops, 0.64e12);
  EXPECT_DOUBLE_EQ(bg.mem_bandwidth, 77.0e9);
  EXPECT_DOUBLE_EQ(bg.per_kernel_overhead_s, 0.0);
}

TEST(AcceleratorModelsTest, LatenciesPositive) {
  Dataset ds = co_dataset();
  GnnModel m = gcn_for(ds);
  EXPECT_GT(accelerator_latency_ms(hygcn_spec(), m, ds), 0.0);
  EXPECT_GT(accelerator_latency_ms(boostgcn_spec(), m, ds), 0.0);
}

TEST(AcceleratorModelsTest, AggregateRespectsGraphSparsity) {
  // Same |V|, 4x the edges -> strictly more aggregate time on a
  // graph-sparsity-aware baseline.
  DatasetSpec spec = dataset_by_tag("CO");
  Dataset sparse_g = generate_dataset(spec, 1, 3);
  DatasetSpec dense_spec = spec;
  dense_spec.edges = spec.edges * 4;
  Dataset dense_g = generate_dataset(dense_spec, 1, 3);
  Rng rng(4);
  GnnModel m = build_model(GnnModelKind::kSgc, spec.feature_dim, spec.hidden_dim,
                           spec.num_classes, rng);
  EXPECT_LT(platform_latency_ms(framework_platforms()[0], m, sparse_g),
            platform_latency_ms(framework_platforms()[0], m, dense_g));
}

}  // namespace
}  // namespace dynasparse
