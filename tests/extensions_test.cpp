// Tests for the extension surface: schedule timelines + Chrome-trace
// export, arbitrary-depth model building, and the Max-aggregation path
// that the IR supports beyond the four stock models.

#include <gtest/gtest.h>

#include "compiler/compiler.hpp"
#include "graph/dataset.hpp"
#include "io/trace_io.hpp"
#include "model/reference.hpp"
#include "runtime/runtime_system.hpp"
#include "runtime/scheduler.hpp"

namespace dynasparse {
namespace {

TEST(ScheduleTimelineTest, MatchesScheduleResult) {
  std::vector<double> tasks = {4.0, 3.0, 2.0, 1.0, 5.0};
  ScheduleResult r = schedule_tasks(tasks, 2);
  auto timeline = schedule_timeline(tasks, 2);
  ASSERT_EQ(timeline.size(), tasks.size());
  double makespan = 0.0;
  for (const ScheduledInterval& iv : timeline) {
    EXPECT_EQ(iv.core, r.task_core[static_cast<std::size_t>(iv.task)]);
    EXPECT_DOUBLE_EQ(iv.end_cycles - iv.start_cycles,
                     tasks[static_cast<std::size_t>(iv.task)]);
    makespan = std::max(makespan, iv.end_cycles);
  }
  EXPECT_DOUBLE_EQ(makespan, r.makespan_cycles);
}

TEST(ScheduleTimelineTest, NoOverlapWithinCore) {
  Rng rng(3);
  std::vector<double> tasks(40);
  for (double& t : tasks) t = rng.uniform(0.1, 5.0);
  auto timeline = schedule_timeline(tasks, 7);
  for (std::size_t a = 0; a < timeline.size(); ++a)
    for (std::size_t b = a + 1; b < timeline.size(); ++b) {
      if (timeline[a].core != timeline[b].core) continue;
      bool disjoint = timeline[a].end_cycles <= timeline[b].start_cycles + 1e-9 ||
                      timeline[b].end_cycles <= timeline[a].start_cycles + 1e-9;
      EXPECT_TRUE(disjoint) << "tasks " << a << " and " << b << " overlap";
    }
}

TEST(TraceIoTest, ChromeTraceWellFormed) {
  KernelTrace k1{"Update L1", schedule_timeline({10.0, 20.0, 30.0}, 2), 0.0};
  KernelTrace k2{"Aggregate L1", schedule_timeline({5.0, 5.0}, 2), 60.0};
  std::string json = schedule_to_chrome_trace({k1, k2}, u250_config());
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("Update L1 task 0"), std::string::npos);
  EXPECT_NE(json.find("Aggregate L1 task 1"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  // 5 intervals -> 5 events.
  EXPECT_EQ(std::count(json.begin(), json.end(), 'X'), 5);
}

TEST(DeepModelTest, FourLayerGcnChains) {
  Rng rng(1);
  GnnModel m = build_deep_model(GnnModelKind::kGcn, {32, 24, 16, 8, 4}, rng);
  EXPECT_EQ(m.num_layers, 4);
  EXPECT_EQ(m.kernels.size(), 8u);  // Update + Aggregate per layer
  EXPECT_EQ(m.weights.size(), 4u);
  std::string err;
  EXPECT_TRUE(validate_model(m, &err)) << err;
  // ReLU on every layer but the last.
  EXPECT_EQ(m.kernels[5].act, Activation::kRelu);
  EXPECT_EQ(m.kernels[7].act, Activation::kNone);
}

TEST(DeepModelTest, SgcHopCount) {
  Rng rng(2);
  GnnModel m = build_deep_model(GnnModelKind::kSgc, {20, 20, 20, 20, 5}, rng);
  EXPECT_EQ(m.kernels.size(), 5u);  // 4 hops + 1 Update
  EXPECT_EQ(m.weights.size(), 1u);
  std::string err;
  EXPECT_TRUE(validate_model(m, &err)) << err;
}

TEST(DeepModelTest, ValidationErrors) {
  Rng rng(3);
  EXPECT_THROW(build_deep_model(GnnModelKind::kGcn, {32}, rng), std::invalid_argument);
  EXPECT_THROW(build_deep_model(GnnModelKind::kGcn, {32, 0, 4}, rng),
               std::invalid_argument);
  EXPECT_THROW(build_deep_model(GnnModelKind::kSgc, {32, 16, 4}, rng),
               std::invalid_argument);  // interior dim must equal in_dim
}

TEST(DeepModelTest, DeepModelsRunEndToEnd) {
  DatasetSpec spec;
  spec.name = "deep";
  spec.tag = "DP";
  spec.vertices = 120;
  spec.edges = 480;
  spec.feature_dim = 24;
  spec.num_classes = 4;
  spec.h0_density = 0.3;
  spec.hidden_dim = 12;
  Dataset ds = generate_dataset(spec, 1, 7);
  for (GnnModelKind kind :
       {GnnModelKind::kGcn, GnnModelKind::kSage, GnnModelKind::kGin}) {
    Rng rng(8);
    GnnModel m = build_deep_model(kind, {24, 12, 12, 4}, rng);
    CompiledProgram prog = compile(m, ds, u250_config());
    ExecutionResult r = execute(prog, {});
    DenseMatrix expect = reference_output(m, ds.graph, ds.features);
    EXPECT_EQ(DenseMatrix::max_abs_diff(r.output.to_dense(), expect), 0.0f)
        << model_kind_name(kind);
  }
}

TEST(TimelineCollectionTest, EngineRecordsPerKernelTimelines) {
  DatasetSpec spec;
  spec.name = "tl";
  spec.tag = "TL";
  spec.vertices = 200;
  spec.edges = 800;
  spec.feature_dim = 32;
  spec.num_classes = 4;
  spec.h0_density = 0.3;
  spec.hidden_dim = 8;
  Dataset ds = generate_dataset(spec, 1, 15);
  Rng rng(16);
  GnnModel m = build_model(GnnModelKind::kGcn, 32, 8, 4, rng);
  CompiledProgram prog = compile(m, ds, u250_config());
  RuntimeOptions opt;
  opt.collect_timeline = true;
  ExecutionResult r = execute(prog, opt);
  ASSERT_EQ(r.timeline.size(), m.kernels.size());
  double offset = 0.0;
  for (std::size_t i = 0; i < r.timeline.size(); ++i) {
    EXPECT_EQ(r.timeline[i].name, r.kernels[i].name);
    EXPECT_DOUBLE_EQ(r.timeline[i].start_offset_cycles, offset);
    EXPECT_EQ(r.timeline[i].intervals.size(),
              static_cast<std::size_t>(r.kernels[i].tasks));
    offset += r.kernels[i].makespan_cycles;
  }
  // Export path produces well-formed JSON with one event per task.
  std::string json = execution_to_chrome_trace(r, prog.config);
  std::int64_t total_tasks = 0;
  for (const KernelExecutionReport& k : r.kernels) total_tasks += k.tasks;
  EXPECT_EQ(std::count(json.begin(), json.end(), 'X'), total_tasks);
}

TEST(DetailedTimingTest, FunctionalEqualAndCyclesAtLeastAnalytic) {
  DatasetSpec spec;
  spec.name = "det";
  spec.tag = "DT";
  spec.vertices = 200;
  spec.edges = 800;
  spec.feature_dim = 48;
  spec.num_classes = 6;
  spec.h0_density = 0.2;
  spec.hidden_dim = 16;
  Dataset ds = generate_dataset(spec, 1, 13);
  Rng rng(14);
  GnnModel m = build_model(GnnModelKind::kGcn, 48, 16, 6, rng);
  CompiledProgram prog = compile(m, ds, u250_config());

  RuntimeOptions analytic;
  RuntimeOptions detailed;
  detailed.detailed_timing = true;
  ExecutionResult ra = execute(prog, analytic);
  ExecutionResult rd = execute(prog, detailed);
  EXPECT_EQ(DenseMatrix::max_abs_diff(ra.output.to_dense(), rd.output.to_dense()),
            0.0f);
  // The dataflow models add fill/drain, conflicts and imbalance on top of
  // the closed forms; compute work can only grow.
  EXPECT_GE(rd.stats.compute_cycles, ra.stats.compute_cycles * 0.95);
  EXPECT_GT(rd.stats.compute_cycles, 0.0);
}

TEST(MaxAggregationTest, EngineMatchesReference) {
  // The IR supports Max aggregation (Table II); wire a custom model using
  // it and check the simulated pipeline against the reference. Inputs are
  // non-negative (ReLU'd domain) per the documented accumulator-init
  // convention.
  DatasetSpec spec;
  spec.name = "max";
  spec.tag = "MX";
  spec.vertices = 90;
  spec.edges = 360;
  spec.feature_dim = 16;
  spec.num_classes = 16;
  spec.h0_density = 0.4;
  spec.hidden_dim = 16;
  Dataset ds = generate_dataset(spec, 1, 9);

  GnnModel m;
  m.kind = GnnModelKind::kSage;
  m.name = "Max-Aggregate";
  m.num_layers = 1;
  m.in_dim = 16;
  m.hidden_dim = 16;
  m.out_dim = 16;
  KernelSpec ag;
  ag.kind = KernelKind::kAggregate;
  ag.layer_id = 1;
  ag.in_dim = 16;
  ag.out_dim = 16;
  ag.adj = AdjKind::kRaw;
  ag.op = AccumOp::kMax;
  ag.input = kFromFeatures;
  m.kernels.push_back(ag);
  std::string err;
  ASSERT_TRUE(validate_model(m, &err)) << err;

  CompiledProgram prog = compile(m, ds, u250_config());
  ExecutionResult r = execute(prog, {});
  DenseMatrix expect = reference_output(m, ds.graph, ds.features);
  EXPECT_EQ(DenseMatrix::max_abs_diff(r.output.to_dense(), expect), 0.0f);
  // Max of non-negative inputs over binary adjacency: output bounded by
  // the max input feature.
  float max_in = 0.0f, max_out = 0.0f;
  for (const CooEntry& e : ds.features.entries()) max_in = std::max(max_in, e.value);
  DenseMatrix out = r.output.to_dense();
  for (std::int64_t i = 0; i < out.rows(); ++i)
    for (std::int64_t j = 0; j < out.cols(); ++j)
      max_out = std::max(max_out, out.at(i, j));
  EXPECT_LE(max_out, max_in + 1e-6f);
}

}  // namespace
}  // namespace dynasparse
