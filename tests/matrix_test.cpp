// Unit tests: dense/COO/CSR matrices, format conversion, layout transform,
// density profiling.

#include <gtest/gtest.h>

#include "matrix/coo_matrix.hpp"
#include "matrix/csr_matrix.hpp"
#include "matrix/dense_matrix.hpp"
#include "matrix/density.hpp"
#include "matrix/format_convert.hpp"
#include "matrix/layout.hpp"
#include "test_helpers.hpp"

namespace dynasparse {
namespace {

using testing::random_coo;
using testing::random_dense;

TEST(DenseMatrixTest, ZeroInitialized) {
  DenseMatrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.nnz(), 0);
  EXPECT_DOUBLE_EQ(m.density(), 0.0);
}

TEST(DenseMatrixTest, LayoutIndependentAccess) {
  DenseMatrix rm(2, 3, Layout::kRowMajor);
  DenseMatrix cm(2, 3, Layout::kColMajor);
  rm.at(1, 2) = 5.0f;
  cm.at(1, 2) = 5.0f;
  EXPECT_EQ(rm.at(1, 2), 5.0f);
  EXPECT_EQ(cm.at(1, 2), 5.0f);
  // Physical placement differs.
  EXPECT_EQ(rm.data()[1 * 3 + 2], 5.0f);
  EXPECT_EQ(cm.data()[2 * 2 + 1], 5.0f);
}

TEST(DenseMatrixTest, WithLayoutPreservesLogicalValues) {
  Rng rng(3);
  DenseMatrix m = random_dense(7, 5, 0.6, rng);
  DenseMatrix c = m.with_layout(Layout::kColMajor);
  EXPECT_EQ(c.layout(), Layout::kColMajor);
  EXPECT_EQ(DenseMatrix::max_abs_diff(m, c), 0.0f);
}

TEST(DenseMatrixTest, TransposedIsInvolution) {
  Rng rng(4);
  DenseMatrix m = random_dense(6, 9, 0.5, rng);
  DenseMatrix tt = m.transposed().transposed();
  EXPECT_EQ(DenseMatrix::max_abs_diff(m, tt), 0.0f);
}

TEST(DenseMatrixTest, TransposedSwapsIndices) {
  DenseMatrix m(2, 3);
  m.at(0, 2) = 7.0f;
  DenseMatrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.at(2, 0), 7.0f);
}

TEST(DenseMatrixTest, NnzAndDensity) {
  DenseMatrix m(2, 2);
  m.at(0, 0) = 1.0f;
  m.at(1, 1) = -2.0f;
  EXPECT_EQ(m.nnz(), 2);
  EXPECT_DOUBLE_EQ(m.density(), 0.5);
}

TEST(DenseMatrixTest, MaxAbsDiffShapeMismatchThrows) {
  DenseMatrix a(2, 2), b(2, 3);
  EXPECT_THROW(DenseMatrix::max_abs_diff(a, b), std::invalid_argument);
}

TEST(CooMatrixTest, SortToLayoutRowMajor) {
  CooMatrix m(3, 3, Layout::kRowMajor);
  m.push(2, 0, 1.0f);
  m.push(0, 1, 2.0f);
  m.push(0, 0, 3.0f);
  m.sort_to_layout();
  ASSERT_TRUE(m.well_formed());
  EXPECT_EQ(m.entries()[0].row, 0);
  EXPECT_EQ(m.entries()[0].col, 0);
  EXPECT_EQ(m.entries()[2].row, 2);
}

TEST(CooMatrixTest, ColMajorOrder) {
  CooMatrix m(3, 3, Layout::kColMajor);
  m.push(0, 2, 1.0f);
  m.push(1, 0, 2.0f);
  m.push(0, 0, 3.0f);
  m.sort_to_layout();
  ASSERT_TRUE(m.well_formed());
  EXPECT_EQ(m.entries()[0].col, 0);
  EXPECT_EQ(m.entries()[0].row, 0);
  EXPECT_EQ(m.entries()[2].col, 2);
}

TEST(CooMatrixTest, WellFormedRejectsOutOfBounds) {
  CooMatrix m(2, 2, Layout::kRowMajor);
  m.push(2, 0, 1.0f);
  EXPECT_FALSE(m.well_formed());
}

TEST(CooMatrixTest, WellFormedRejectsDuplicates) {
  CooMatrix m(2, 2, Layout::kRowMajor);
  m.push(0, 0, 1.0f);
  m.push(0, 0, 2.0f);
  EXPECT_FALSE(m.well_formed());
}

TEST(CooMatrixTest, TransposedRoundTrip) {
  Rng rng(5);
  CooMatrix m = random_coo(8, 6, 0.3, rng);
  CooMatrix tt = m.transposed().transposed();
  EXPECT_EQ(DenseMatrix::max_abs_diff(m.to_dense(), tt.to_dense()), 0.0f);
}

TEST(CooMatrixTest, LayoutToggleKeepsValues) {
  Rng rng(6);
  CooMatrix m = random_coo(8, 6, 0.3, rng);
  CooMatrix c = toggle_layout(m);
  EXPECT_EQ(c.layout(), Layout::kColMajor);
  EXPECT_TRUE(c.well_formed());
  EXPECT_EQ(DenseMatrix::max_abs_diff(m.to_dense(), c.to_dense()), 0.0f);
}

TEST(CsrMatrixTest, RowAccess) {
  // [[1 0 2], [0 0 0], [0 3 0]]
  CsrMatrix m(3, 3, {0, 2, 2, 3}, {0, 2, 1}, {1.0f, 2.0f, 3.0f});
  EXPECT_TRUE(m.well_formed());
  EXPECT_EQ(m.row_nnz(0), 2);
  EXPECT_EQ(m.row_nnz(1), 0);
  EXPECT_EQ(m.row_nnz(2), 1);
  EXPECT_EQ(m.nnz(), 3);
}

TEST(CsrMatrixTest, WellFormedChecks) {
  CsrMatrix bad_monotone(2, 2, {0, 2, 1}, {0, 1}, {1.0f, 1.0f});
  EXPECT_FALSE(bad_monotone.well_formed());
  CsrMatrix bad_col(1, 2, {0, 1}, {5}, {1.0f});
  EXPECT_FALSE(bad_col.well_formed());
  CsrMatrix dup_col(1, 3, {0, 2}, {1, 1}, {1.0f, 1.0f});
  EXPECT_FALSE(dup_col.well_formed());
}

TEST(CsrMatrixTest, ConstructorValidatesSizes) {
  EXPECT_THROW(CsrMatrix(2, 2, {0, 1}, {0}, {1.0f}), std::invalid_argument);
  EXPECT_THROW(CsrMatrix(1, 2, {0, 2}, {0, 1}, {1.0f}), std::invalid_argument);
}

TEST(FormatConvertTest, DenseCooRoundTrip) {
  Rng rng(7);
  for (double density : {0.0, 0.1, 0.5, 1.0}) {
    DenseMatrix m = random_dense(9, 7, density, rng);
    DenseMatrix back = coo_to_dense(dense_to_coo(m));
    EXPECT_EQ(DenseMatrix::max_abs_diff(m, back), 0.0f) << "density " << density;
  }
}

TEST(FormatConvertTest, DenseToCooIsWellFormed) {
  Rng rng(8);
  DenseMatrix m = random_dense(9, 7, 0.4, rng);
  EXPECT_TRUE(dense_to_coo(m).well_formed());
  DenseMatrix cm = random_dense(9, 7, 0.4, rng, Layout::kColMajor);
  EXPECT_TRUE(dense_to_coo(cm).well_formed());
}

TEST(FormatConvertTest, DenseCsrRoundTrip) {
  Rng rng(9);
  DenseMatrix m = random_dense(11, 5, 0.3, rng);
  CsrMatrix csr = dense_to_csr(m);
  EXPECT_TRUE(csr.well_formed());
  EXPECT_EQ(DenseMatrix::max_abs_diff(m, csr.to_dense()), 0.0f);
}

TEST(FormatConvertTest, CooCsrRoundTrip) {
  Rng rng(10);
  CooMatrix m = random_coo(10, 10, 0.2, rng);
  CsrMatrix csr = coo_to_csr(m);
  EXPECT_TRUE(csr.well_formed());
  EXPECT_EQ(DenseMatrix::max_abs_diff(m.to_dense(), csr.to_dense()), 0.0f);
}

TEST(FormatConvertTest, CompactChunkMatchesPaperFigure8) {
  // Paper Fig. 8 input: [7 8 0 6 0 0 1 ...] — survivors keep order and
  // report their source positions (the column indices of the figure).
  CompactedChunk c = compact_chunk({7, 8, 0, 6, 0, 0, 1});
  EXPECT_EQ(c.values, (std::vector<float>{7, 8, 6, 1}));
  EXPECT_EQ(c.source_index, (std::vector<int>{0, 1, 3, 6}));
}

TEST(FormatConvertTest, CompactChunkAllZerosAndAllNonzero) {
  EXPECT_TRUE(compact_chunk({0, 0, 0}).values.empty());
  CompactedChunk c = compact_chunk({1, 2, 3});
  EXPECT_EQ(c.values.size(), 3u);
}

TEST(LayoutTest, MergePartialsAdds) {
  DenseMatrix a(2, 2), b(2, 2, Layout::kColMajor);
  a.at(0, 0) = 1.0f;
  b.at(0, 0) = 2.0f;
  b.at(1, 1) = 3.0f;
  DenseMatrix m = merge_partials(a, b);
  EXPECT_EQ(m.at(0, 0), 3.0f);
  EXPECT_EQ(m.at(1, 1), 3.0f);
  EXPECT_EQ(m.layout(), Layout::kRowMajor);
}

TEST(DensityTest, CountNonzeros) {
  EXPECT_EQ(count_nonzeros({0.0f, 1.0f, -2.0f, 0.0f}), 2);
  EXPECT_EQ(count_nonzeros({}), 0);
}

TEST(DensityTest, DensityFromNnz) {
  EXPECT_DOUBLE_EQ(density_from_nnz(5, 10, 10), 0.05);
  EXPECT_DOUBLE_EQ(density_from_nnz(0, 0, 10), 0.0);
}

}  // namespace
}  // namespace dynasparse
