// Stress/soak for bounded admission control (ISSUE 4) and the
// deadline/cancellation layer (ISSUE 6): randomized interleavings of
// submit / try_submit / cancel / wait / shutdown from 4+ threads against
// a bounded queue, under every admission policy, with and without result
// memoization, with random per-request deadlines. The properties under
// test:
//
//   1. Termination: every round drains or shuts down without deadlock —
//      a hang trips the ctest timeout. This is the regression net for
//      the close()/bounded-push interaction (a submit blocked on a full
//      queue must be woken by shutdown and resolve cleanly) and for the
//      abort-shutdown path (queued slots are failed, not drained).
//   2. Exact resolution: every id a submitter obtains resolves exactly
//      once through wait() — a report, an AdmissionRejectedError, a
//      cooperative abort (CancelledError / DeadlineExceededError), or a
//      shutdown failure — and the outcome counts add up to the attempts.
//   3. Correct reports: every completed request's fingerprint equals its
//      content's sequential reference (admission control, memoization,
//      and racing cancels never corrupt a result).
//
// Part of the CI TSan matrix and the forced-4-thread lane; requests are
// deliberately tiny so the randomized schedules, not the simulator,
// dominate the runtime.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <optional>
#include <random>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "service/inference_service.hpp"

namespace dynasparse {
namespace {

Dataset tiny_dataset(std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "stress";
  spec.tag = "ST" + std::to_string(seed % 100);
  spec.vertices = 100;
  spec.edges = 400;
  spec.feature_dim = 16;
  spec.num_classes = 4;
  spec.h0_density = 0.3;
  spec.hidden_dim = 8;
  spec.degree_skew = 0.5;
  return generate_dataset(spec, 1, seed);
}

ServiceRequest tiny_request(std::uint64_t seed, GnnModelKind kind) {
  Dataset ds = tiny_dataset(seed);
  Rng rng(seed + 1);
  GnnModel model = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                               ds.spec.num_classes, rng);
  return ServiceRequest::own(std::move(model), std::move(ds), {});
}

std::uint64_t reference_fingerprint(const ServiceRequest& req) {
  CompiledProgram prog = compile(*req.model, *req.dataset, req.options.config);
  InferenceReport rep = run_compiled(prog, req.options.runtime);
  rep.dataset_tag = req.dataset->spec.tag;
  return rep.deterministic_fingerprint();
}

TEST(ServiceStressTest, RandomizedSubmitWaitShutdownInterleavings) {
  const ServiceRequest req_a = tiny_request(201, GnnModelKind::kGcn);
  const ServiceRequest req_b = tiny_request(202, GnnModelKind::kSgc);
  const std::uint64_t fp_a = reference_fingerprint(req_a);
  const std::uint64_t fp_b = reference_fingerprint(req_b);

  constexpr int kSubmitters = 5;
  constexpr int kIters = 12;
  int round = 0;
  for (AdmissionPolicy policy :
       {AdmissionPolicy::kBlock, AdmissionPolicy::kReject,
        AdmissionPolicy::kShedOldest}) {
    for (int variant = 0; variant < 3; ++variant, ++round) {
      ServiceOptions opts;
      opts.workers = 2 + variant % 2;
      opts.cache_capacity = 2;
      opts.max_queue_depth = 1 + static_cast<std::size_t>(variant);
      opts.admission = policy;
      // Alternate the memoized and cold execution paths under contention.
      opts.result_cache_capacity = variant % 2 ? 8 : 0;
      InferenceService service(opts);

      std::atomic<long> attempts{0};
      std::atomic<long> completed{0};         // wait() returned a report
      std::atomic<long> admission_failed{0};  // AdmissionRejectedError
      std::atomic<long> aborted{0};           // CancelledError / DeadlineExceeded
                                              // (cancel(), expiry, or
                                              // abort-shutdown)
      std::atomic<long> shutdown_failed{0};   // other shutdown failures
      std::atomic<long> refused_entry{0};     // submit threw / try_submit nullopt
      std::atomic<long> wrong_fingerprint{0};

      std::vector<std::thread> submitters;
      for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
          std::mt19937 rng(static_cast<unsigned>(1000 * round + t));
          for (int i = 0; i < kIters; ++i) {
            const bool use_a = rng() % 2 == 0;
            ServiceRequest req = use_a ? req_a : req_b;
            // Random deadline pressure: mostly none, sometimes generous,
            // sometimes aggressive enough to expire in the queue.
            const unsigned deadline_die = rng() % 8;
            if (deadline_die == 0) req.deadline_ms = 1;
            else if (deadline_die == 1) req.deadline_ms = 50;
            ++attempts;
            std::optional<RequestId> id;
            if (rng() % 2 == 0) {
              try {
                id = service.submit(req);
              } catch (const std::runtime_error&) {
                // Shutdown won the race before enqueue; nothing to wait on
                // and no later submit can succeed.
                ++refused_entry;
                return;
              }
            } else {
              id = service.try_submit(req);
              if (!id) {
                ++refused_entry;  // full queue or shutdown; no slot leaked
                continue;
              }
            }
            if (rng() % 4 == 0) (void)service.done(*id);  // racing poll
            if (rng() % 4 == 0) {
              // Racing cancel of our own id: queued, running, or already
              // terminal — all must be safe, and never consume the slot.
              try {
                (void)service.cancel(*id);
              } catch (const std::invalid_argument&) {
                // A racing waiter cannot exist (we own the id), but a
                // racing shutdown path may not know it yet; tolerated.
              }
            }
            // An obtained id must resolve exactly once — never hang.
            try {
              InferenceReport rep = service.wait(*id);
              ++completed;
              if (rep.deterministic_fingerprint() != (use_a ? fp_a : fp_b))
                ++wrong_fingerprint;
            } catch (const AdmissionRejectedError&) {
              ++admission_failed;
            } catch (const RequestAbortedError&) {
              ++aborted;  // own cancel, deadline expiry, or abort-shutdown
            } catch (const std::runtime_error&) {
              ++shutdown_failed;
            }
          }
        });
      }

      // Even rounds: shut down under the submitters at a randomized point.
      // Odd rounds: let the burst drain; the destructor shuts down.
      if (round % 2 == 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(1 + round % 5));
        service.shutdown();
      }
      for (std::thread& t : submitters) t.join();

      const long resolved = completed.load() + admission_failed.load() +
                            aborted.load() + shutdown_failed.load() +
                            refused_entry.load();
      EXPECT_EQ(resolved, attempts.load())
          << "round " << round << " (" << admission_policy_name(policy)
          << "): some attempt neither resolved nor was refused";
      EXPECT_EQ(wrong_fingerprint.load(), 0)
          << "round " << round << ": completed request returned a wrong report";
      if (policy == AdmissionPolicy::kBlock && round % 2 != 0) {
        // No shutdown race and blocking admission: every attempt either
        // completes, aborts cooperatively (its own cancel or deadline),
        // or was a try_submit that found the queue full — nothing fails
        // after acceptance for any other reason.
        EXPECT_EQ(completed.load() + aborted.load() + refused_entry.load(),
                  attempts.load())
            << "round " << round;
        EXPECT_EQ(admission_failed.load(), 0) << "round " << round;
        EXPECT_EQ(shutdown_failed.load(), 0) << "round " << round;
      }
      AdmissionStats as = service.admission_stats();
      EXPECT_EQ(as.accepted, completed.load() + aborted.load() +
                                 shutdown_failed.load() + as.shed)
          << "round " << round
          << ": accepted requests must complete, abort, be failed by "
             "shutdown, or be shed";
      // The abort buckets agree with the service's own accounting.
      RobustnessStats rs = service.robustness_stats();
      EXPECT_EQ(rs.cancelled + rs.expired_in_queue + rs.expired_running,
                aborted.load())
          << "round " << round;
    }
  }
}

// The same randomized submit/cancel/deadline/shutdown storm, but with
// continuous batching ON (PR 9): batch formation — the collect window,
// the K cutoff, and the per-key groups — races cancels, queue-time
// expiries, and shutdown, under every admission policy. The PR-6
// invariants must hold unchanged:
//
//   - exact resolution: every obtained id resolves exactly once, and the
//     robustness counters equal the aborts waiters observed;
//   - member isolation: no batchmate observes another member's abort —
//     in rounds without a shutdown race, a request the submitter never
//     cancelled and that carried no deadline MUST complete (a foreign
//     abort leaking across a fused batch would surface exactly here);
//   - bit-identity: every completed report matches its sequential
//     reference, fused or not.
TEST(ServiceStressTest, RandomizedBatchingSoakKeepsIsolationAndAccounting) {
  const ServiceRequest req_a = tiny_request(301, GnnModelKind::kGcn);
  const ServiceRequest req_b = tiny_request(302, GnnModelKind::kSgc);
  const std::uint64_t fp_a = reference_fingerprint(req_a);
  const std::uint64_t fp_b = reference_fingerprint(req_b);

  constexpr int kSubmitters = 5;
  constexpr int kIters = 10;
  int round = 0;
  for (AdmissionPolicy policy :
       {AdmissionPolicy::kBlock, AdmissionPolicy::kReject,
        AdmissionPolicy::kShedOldest}) {
    for (int variant = 0; variant < 3; ++variant, ++round) {
      ServiceOptions opts;
      opts.workers = 2;
      opts.cache_capacity = 4;
      opts.max_queue_depth = 2 + static_cast<std::size_t>(variant);
      opts.admission = policy;
      opts.result_cache_capacity = variant % 2 ? 8 : 0;
      // Batching pressure varies by round: a pure K policy, a short
      // window, and a window+K combination.
      opts.batch_window_us = (variant == 0) ? 0 : 500;
      opts.max_batch_size = (variant == 1) ? 0 : 3;
      InferenceService service(opts);

      std::atomic<long> attempts{0}, completed{0}, admission_failed{0},
          aborted{0}, shutdown_failed{0}, refused_entry{0},
          wrong_fingerprint{0}, foreign_abort{0};

      std::vector<std::thread> submitters;
      for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
          std::mt19937 rng(static_cast<unsigned>(9000 + 1000 * round + t));
          for (int i = 0; i < kIters; ++i) {
            const bool use_a = rng() % 2 == 0;
            ServiceRequest req = use_a ? req_a : req_b;
            const unsigned deadline_die = rng() % 8;
            bool had_deadline = false;
            if (deadline_die == 0) {
              req.deadline_ms = 1;  // can expire while a batch collects
              had_deadline = true;
            } else if (deadline_die == 1) {
              req.deadline_ms = 50;
              had_deadline = true;
            }
            ++attempts;
            std::optional<RequestId> id;
            if (rng() % 2 == 0) {
              try {
                id = service.submit(req);
              } catch (const std::runtime_error&) {
                ++refused_entry;
                return;
              }
            } else {
              id = service.try_submit(req);
              if (!id) {
                ++refused_entry;
                continue;
              }
            }
            bool did_cancel = false;
            if (rng() % 4 == 0) {
              // Cancel racing batch formation: the victim may be sitting
              // in a half-collected group, running fused, or terminal.
              try {
                did_cancel = service.cancel(*id);
              } catch (const std::invalid_argument&) {
              }
            }
            try {
              InferenceReport rep = service.wait(*id);
              ++completed;
              if (rep.deterministic_fingerprint() != (use_a ? fp_a : fp_b))
                ++wrong_fingerprint;
            } catch (const AdmissionRejectedError&) {
              ++admission_failed;
            } catch (const RequestAbortedError&) {
              ++aborted;
              if (!did_cancel && !had_deadline) ++foreign_abort;
            } catch (const std::runtime_error&) {
              ++shutdown_failed;
            }
          }
        });
      }

      if (round % 2 == 0) {
        // Shut down mid-storm: close lands on half-collected groups.
        std::this_thread::sleep_for(std::chrono::milliseconds(1 + round % 5));
        service.shutdown();
      }
      for (std::thread& t : submitters) t.join();

      const long resolved = completed.load() + admission_failed.load() +
                            aborted.load() + shutdown_failed.load() +
                            refused_entry.load();
      EXPECT_EQ(resolved, attempts.load())
          << "round " << round << " (" << admission_policy_name(policy)
          << "): some attempt neither resolved nor was refused";
      EXPECT_EQ(wrong_fingerprint.load(), 0)
          << "round " << round
          << ": a fused batch member returned a wrong report";
      if (round % 2 != 0) {
        // No shutdown race: an uncancelled, deadline-free request must
        // never abort — a batchmate's cancel/expiry/fault is not allowed
        // to leak into it.
        EXPECT_EQ(foreign_abort.load(), 0)
            << "round " << round
            << ": a batch member observed another member's abort";
      }
      AdmissionStats as = service.admission_stats();
      EXPECT_EQ(as.accepted, completed.load() + aborted.load() +
                                 shutdown_failed.load() + as.shed)
          << "round " << round;
      RobustnessStats rs = service.robustness_stats();
      EXPECT_EQ(rs.cancelled + rs.expired_in_queue + rs.expired_running,
                aborted.load())
          << "round " << round;
    }
  }
}

// A dedicated canceller thread racing the workers over every in-flight
// id: cancels land on queued, running, and already-terminal slots in
// arbitrary interleavings. Invariants: cancel() never consumes a slot
// (the owner's wait() still resolves), every id resolves as a report or
// a CancelledError, completed reports stay bit-identical, and the
// service's cancelled counter equals the observed CancelledErrors.
TEST(ServiceStressTest, CancellerRacingWorkersKeepsExactAccounting) {
  const ServiceRequest req_a = tiny_request(204, GnnModelKind::kGcn);
  const ServiceRequest req_b = tiny_request(205, GnnModelKind::kSgc);
  const std::uint64_t fp_a = reference_fingerprint(req_a);
  const std::uint64_t fp_b = reference_fingerprint(req_b);

  ServiceOptions opts;
  opts.workers = 3;
  opts.cache_capacity = 4;
  InferenceService service(opts);

  std::mutex ids_mu;
  std::vector<RequestId> live_ids;  // submitted, not yet waited
  std::atomic<bool> submitting{true};
  std::atomic<long> completed{0}, cancelled{0}, wrong_fingerprint{0};

  std::thread canceller([&] {
    std::mt19937 rng(7);
    while (submitting.load()) {
      RequestId victim = 0;
      {
        std::lock_guard<std::mutex> lk(ids_mu);
        if (!live_ids.empty())
          victim = live_ids[rng() % live_ids.size()];
      }
      if (victim != 0) {
        try {
          (void)service.cancel(victim);
        } catch (const std::invalid_argument&) {
          // The owner's wait() consumed the slot between our snapshot
          // and the cancel — the documented race, must stay an error the
          // canceller can absorb.
        }
      }
      std::this_thread::yield();
    }
  });

  constexpr int kThreads = 4, kPerThread = 25;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      std::mt19937 rng(static_cast<unsigned>(100 + t));
      for (int i = 0; i < kPerThread; ++i) {
        const bool use_a = rng() % 2 == 0;
        RequestId id = service.submit(use_a ? req_a : req_b);
        {
          std::lock_guard<std::mutex> lk(ids_mu);
          live_ids.push_back(id);
        }
        if (rng() % 3 == 0) std::this_thread::yield();
        try {
          InferenceReport rep = service.wait(id);
          ++completed;
          if (rep.deterministic_fingerprint() != (use_a ? fp_a : fp_b))
            ++wrong_fingerprint;
        } catch (const CancelledError&) {
          ++cancelled;
        }
        {
          std::lock_guard<std::mutex> lk(ids_mu);
          live_ids.erase(std::find(live_ids.begin(), live_ids.end(), id));
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  submitting = false;
  canceller.join();

  EXPECT_EQ(completed.load() + cancelled.load(),
            static_cast<long>(kThreads * kPerThread));
  EXPECT_EQ(wrong_fingerprint.load(), 0);
  RobustnessStats rs = service.robustness_stats();
  EXPECT_EQ(rs.cancelled, cancelled.load());
  EXPECT_EQ(rs.expired_in_queue + rs.expired_running, 0);  // no deadlines
}

// Soak the blocking policy specifically: a deep burst through a depth-1
// queue must fully drain with every submitter backpressured, never
// refused. Exercises the pop->space_cv_ wakeup chain under contention.
TEST(ServiceStressTest, BlockingPolicyDrainsDeepBurstThroughDepthOneQueue) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.cache_capacity = 1;
  opts.max_queue_depth = 1;
  opts.admission = AdmissionPolicy::kBlock;
  opts.result_cache_capacity = 4;
  InferenceService service(opts);

  const ServiceRequest req = tiny_request(203, GnnModelKind::kGcn);
  const std::uint64_t fp = reference_fingerprint(req);
  constexpr int kThreads = 4, kPerThread = 10;
  std::atomic<long> completed{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        RequestId id = service.submit(req);
        InferenceReport rep = service.wait(id);
        EXPECT_EQ(rep.deterministic_fingerprint(), fp);
        ++completed;
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(completed.load(), kThreads * kPerThread);
  EXPECT_EQ(service.admission_stats().accepted, kThreads * kPerThread);
  EXPECT_EQ(service.admission_stats().rejected, 0);
  EXPECT_EQ(service.admission_stats().shed, 0);
}

// Regression for the submit/shutdown race behind the network listener
// (ISSUE 7 satellite): a submit racing shutdown() must ALWAYS surface a
// typed answer — a report, an AdmissionRejectedError, a cooperative
// CancelledError, or the shutdown runtime_error — and never a silently
// dropped request. This is the service-side contract the wire layer
// leans on when it maps these outcomes to RESULT/ERROR frames: if any
// path here could swallow a request, a connected client would hang
// forever on a frame that never comes.
TEST(ServiceStressTest, SubmitRacingShutdownAlwaysGetsATypedAnswer) {
  const ServiceRequest req = tiny_request(204, GnnModelKind::kGcn);
  const std::uint64_t fp = reference_fingerprint(req);

  std::atomic<long> completed{0}, rejected{0}, cancelled{0}, refused{0};
  std::atomic<long> untyped{0};  // any escape from the closed outcome set
  std::mt19937_64 seq(0x5d0ffULL);

  int round = 0;
  for (AdmissionPolicy policy :
       {AdmissionPolicy::kReject, AdmissionPolicy::kShedOldest,
        AdmissionPolicy::kBlock}) {
    for (int variant = 0; variant < 4; ++variant, ++round) {
      ServiceOptions opts;
      opts.workers = 2;
      opts.cache_capacity = 1;
      opts.max_queue_depth = 1;
      opts.admission = policy;
      opts.result_cache_capacity = variant % 2 ? 4 : 0;
      InferenceService service(opts);

      constexpr int kThreads = 4, kPerThread = 6;
      std::atomic<long> attempts{0}, resolved{0};
      std::vector<std::thread> submitters;
      for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&] {
          for (int i = 0; i < kPerThread; ++i) {
            ++attempts;
            RequestId id = 0;
            try {
              id = service.submit(req);
            } catch (const std::runtime_error&) {
              ++refused;  // "InferenceService is shutting down"
              ++resolved;
              continue;
            } catch (...) {
              ++untyped;
              ++resolved;
              continue;
            }
            try {
              InferenceReport rep = service.wait(id);
              EXPECT_EQ(rep.deterministic_fingerprint(), fp);
              ++completed;
            } catch (const AdmissionRejectedError&) {
              ++rejected;
            } catch (const CancelledError&) {
              ++cancelled;  // queued at shutdown, failed cooperatively
            } catch (const DeadlineExceededError&) {
              ++untyped;  // no deadlines configured: must not appear
            } catch (...) {
              ++untyped;
            }
            ++resolved;
          }
        });
      }
      // Shut down somewhere inside the burst; jitter the delay so the
      // close lands before, between, and after individual pushes across
      // rounds (including mid-push for blocked kBlock submitters).
      std::this_thread::sleep_for(
          std::chrono::microseconds(200 + seq() % 4000));
      service.shutdown();
      for (std::thread& t : submitters) t.join();
      EXPECT_EQ(resolved.load(), attempts.load()) << "policy round " << round;
    }
  }
  // Two deterministic rounds pin each side of the race, since a loaded
  // machine can push every jittered round onto the same side.
  {
    InferenceService service({.workers = 2});
    InferenceReport rep = service.wait(service.submit(req));
    EXPECT_EQ(rep.deterministic_fingerprint(), fp);
    ++completed;
    service.shutdown();
  }
  {
    InferenceService service({.workers = 2});
    service.shutdown();
    EXPECT_THROW((void)service.submit(req), std::runtime_error);
    ++refused;
  }
  EXPECT_EQ(untyped.load(), 0);
  EXPECT_EQ(completed.load() + rejected.load() + cancelled.load() +
                refused.load(),
            static_cast<long>(3 * 4 * 4 * 6 + 2));
  EXPECT_GT(completed.load(), 0);
  EXPECT_GT(refused.load() + cancelled.load() + rejected.load(), 0);
}

}  // namespace
}  // namespace dynasparse
