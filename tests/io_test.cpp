// Unit tests: graph/feature text I/O and report serialization.

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "io/graph_io.hpp"
#include "io/ir_io.hpp"
#include "io/report_io.hpp"
#include "model/reference.hpp"

namespace dynasparse {
namespace {

TEST(GraphIoTest, EdgeListRoundTrip) {
  Rng rng(1);
  Graph g = erdos_renyi(50, 200, rng);
  std::stringstream ss;
  write_edge_list(g, ss);
  Graph back = read_edge_list(ss);
  EXPECT_EQ(back.num_vertices(), g.num_vertices());
  EXPECT_EQ(back.num_edges(), g.num_edges());
  EXPECT_EQ(back.adjacency().col_idx(), g.adjacency().col_idx());
  EXPECT_EQ(back.adjacency().row_ptr(), g.adjacency().row_ptr());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::stringstream ss("# header\n\n3\n# edge block\n0 1\n\n2 1\n");
  Graph g = read_edge_list(ss);
  EXPECT_EQ(g.num_vertices(), 3);
  EXPECT_EQ(g.num_edges(), 2);
}

TEST(GraphIoTest, MalformedInputsThrowWithLineInfo) {
  {
    std::stringstream ss("");
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("abc\n");
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("3\n0 foo\n");
    EXPECT_THROW(read_edge_list(ss), std::runtime_error);
  }
  {
    std::stringstream ss("3\n0 9\n");  // endpoint out of range
    try {
      read_edge_list(ss);
      FAIL() << "expected throw";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
    }
  }
}

TEST(GraphIoTest, FeaturesRoundTrip) {
  Rng rng(2);
  CooMatrix f = generate_features(40, 12, 0.2, rng);
  std::stringstream ss;
  write_features(f, ss);
  CooMatrix back = read_features(ss);
  EXPECT_EQ(back.rows(), 40);
  EXPECT_EQ(back.cols(), 12);
  EXPECT_TRUE(back.well_formed());
  EXPECT_LT(DenseMatrix::max_abs_diff(back.to_dense(), f.to_dense()), 1e-5f);
}

TEST(GraphIoTest, FeaturesValidation) {
  {
    std::stringstream ss("2 2\n5 0 1.0\n");
    EXPECT_THROW(read_features(ss), std::runtime_error);
  }
  {
    std::stringstream ss("2 2\n0 0 1.0\n0 0 2.0\n");  // duplicate position
    EXPECT_THROW(read_features(ss), std::runtime_error);
  }
  {
    std::stringstream ss("2 2\n0 0 0.0\n");  // explicit zero dropped
    CooMatrix f = read_features(ss);
    EXPECT_EQ(f.nnz(), 0);
  }
}

TEST(GraphIoTest, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/path/graph.txt"), std::runtime_error);
  EXPECT_THROW(read_features_file("/nonexistent/path/features.txt"), std::runtime_error);
}

class ReportIoTest : public ::testing::Test {
 protected:
  InferenceReport make_report() {
    DatasetSpec spec;
    spec.name = "io";
    spec.tag = "IO";
    spec.vertices = 100;
    spec.edges = 400;
    spec.feature_dim = 16;
    spec.num_classes = 4;
    spec.h0_density = 0.3;
    spec.hidden_dim = 8;
    Dataset ds = generate_dataset(spec, 1, 3);
    Rng rng(4);
    GnnModel m = build_model(GnnModelKind::kGcn, 16, 8, 4, rng);
    return run_inference(m, ds, {});
  }
};

TEST_F(ReportIoTest, CsvHasHeaderKernelsAndTotal) {
  InferenceReport rep = make_report();
  std::string csv = report_to_csv(rep);
  EXPECT_NE(csv.find("kernel,makespan_cycles"), std::string::npos);
  EXPECT_NE(csv.find("Update L1"), std::string::npos);
  EXPECT_NE(csv.find("TOTAL"), std::string::npos);
  // One line per kernel + header + total.
  std::size_t lines = static_cast<std::size_t>(std::count(csv.begin(), csv.end(), '\n'));
  EXPECT_EQ(lines, rep.execution.kernels.size() + 2);
}

TEST_F(ReportIoTest, JsonWellFormedFields) {
  InferenceReport rep = make_report();
  std::string json = report_to_json(rep);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"model\":\"GCN\""), std::string::npos);
  EXPECT_NE(json.find("\"strategy\":\"Dynamic\""), std::string::npos);
  EXPECT_NE(json.find("\"kernels\":["), std::string::npos);
  EXPECT_NE(json.find("\"latency_ms\":"), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

class IrIoTest : public ::testing::Test {
 protected:
  CompiledProgram make_program(GnnModelKind kind = GnnModelKind::kSage) {
    DatasetSpec spec;
    spec.name = "ir";
    spec.tag = "IR";
    spec.vertices = 300;
    spec.edges = 1200;
    spec.feature_dim = 48;
    spec.num_classes = 6;
    spec.h0_density = 0.2;
    spec.hidden_dim = 16;
    Dataset ds = generate_dataset(spec, 1, 11);
    Rng rng(12);
    GnnModel m = build_model(kind, 48, 16, 6, rng);
    return compile(m, ds, u250_config());
  }
};

TEST_F(IrIoTest, SnapshotRoundTripsExactly) {
  for (GnnModelKind kind : paper_models()) {
    CompiledProgram prog = make_program(kind);
    IrSnapshot snap = snapshot_of(prog);
    std::stringstream ss;
    write_ir(snap, ss);
    IrSnapshot back = read_ir(ss);
    EXPECT_TRUE(snap == back) << model_kind_name(kind);
  }
}

TEST_F(IrIoTest, SnapshotCapturesPlanAndSchemes) {
  CompiledProgram prog = make_program();
  IrSnapshot snap = snapshot_of(prog);
  EXPECT_EQ(snap.plan.n1, prog.plan.n1);
  ASSERT_EQ(snap.kernels.size(), prog.kernels.size());
  EXPECT_EQ(snap.kernels[0].scheme.num_tasks(), prog.kernels[0].scheme.num_tasks());
}

TEST_F(IrIoTest, DetectsChangedSnapshot) {
  CompiledProgram prog = make_program();
  IrSnapshot a = snapshot_of(prog);
  IrSnapshot b = a;
  b.kernels[1].scheme.inner_steps += 1;
  EXPECT_FALSE(a == b);
  IrSnapshot c = a;
  c.plan.n2 /= 2;
  EXPECT_FALSE(a == c);
}

TEST_F(IrIoTest, SnapshotReuseAcrossSparsityChange) {
  // The paper's reuse scenario: the plan survives a sparsity change of
  // the same-shaped model. Prune the weights, recompile with the stored
  // plan, and verify the program still executes correctly with an
  // identical tiling and no re-planning.
  DatasetSpec spec;
  spec.name = "reuse";
  spec.tag = "RU";
  spec.vertices = 300;
  spec.edges = 1200;
  spec.feature_dim = 48;
  spec.num_classes = 6;
  spec.h0_density = 0.2;
  spec.hidden_dim = 16;
  Dataset ds = generate_dataset(spec, 1, 11);
  Rng rng(12);
  GnnModel m = build_model(GnnModelKind::kGcn, 48, 16, 6, rng);
  CompiledProgram first = compile(m, ds, u250_config());

  // Persist + reload the IR artifact.
  std::stringstream ss;
  write_ir(snapshot_of(first), ss);
  IrSnapshot stored = read_ir(ss);

  prune_model(m, 0.9);
  CompiledProgram again = compile_with_plan(m, ds, u250_config(), stored.plan);
  EXPECT_EQ(again.plan.n1, first.plan.n1);
  EXPECT_EQ(again.plan.n2, first.plan.n2);
  EXPECT_TRUE(snapshot_of(again).plan.n1 == stored.plan.n1);

  ExecutionResult r = execute(again, {});
  DenseMatrix expect = reference_output(m, ds.graph, ds.features);
  EXPECT_EQ(DenseMatrix::max_abs_diff(r.output.to_dense(), expect), 0.0f);
}

TEST_F(IrIoTest, CompileWithPlanValidatesInputs) {
  CompiledProgram prog = make_program();
  DatasetSpec spec;
  spec.name = "bad";
  spec.tag = "BD";
  spec.vertices = 50;
  spec.edges = 100;
  spec.feature_dim = 48;
  spec.num_classes = 6;
  spec.h0_density = 0.2;
  spec.hidden_dim = 16;
  Dataset ds = generate_dataset(spec, 1, 3);
  Rng rng(4);
  GnnModel m = build_model(GnnModelKind::kSage, 48, 16, 6, rng);
  PartitionPlan empty;
  EXPECT_THROW(compile_with_plan(m, ds, u250_config(), empty), std::invalid_argument);
  PartitionPlan misaligned = prog.plan;
  misaligned.n1 = 100;  // not a psys multiple
  EXPECT_THROW(compile_with_plan(m, ds, u250_config(), misaligned),
               std::invalid_argument);
}

TEST_F(IrIoTest, MalformedSnapshotsRejected) {
  {
    std::stringstream ss("not-an-ir\n");
    EXPECT_THROW(read_ir(ss), std::runtime_error);
  }
  {
    std::stringstream ss("dynasparse-ir-v1\nplan 0 64 720\n");
    EXPECT_THROW(read_ir(ss), std::runtime_error);
  }
  {
    std::stringstream ss("dynasparse-ir-v1\nplan 64 64 720\nkernels 2\n");
    EXPECT_THROW(read_ir(ss), std::runtime_error);  // truncated
  }
  {
    // Enum out of range.
    std::stringstream ss(
        "dynasparse-ir-v1\nplan 64 64 720\nkernels 1\n"
        "kernel 0 10 20 9 1 4 4 -1 0 0 0 -1 -1 0\nscheme 64 64 1 1 1\n");
    EXPECT_THROW(read_ir(ss), std::runtime_error);
  }
}

}  // namespace
}  // namespace dynasparse
