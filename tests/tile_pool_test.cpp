// TilePool tests: the dataset-keyed shared operand pool behind
// compilation (src/matrix/tile_pool.hpp). The contract under test:
//
//   - sharing: two programs compiled from the same dataset under the
//     same partition geometry hold the SAME PartitionedMatrix objects
//     (pointer equality), and the pool accounts those bytes once;
//   - determinism: a pooled compile produces a report bit-identical to
//     a private (pool-off) compile — equal keys imply bit-identical
//     tiles, so sharing must be invisible to results;
//   - refcount-aware eviction: an entry referenced by a live program
//     survives shrink (pinned_skips), and leaves only once unreferenced;
//   - in-flight dedup + failure semantics mirroring KeyedFutureCache:
//     one build per key under concurrency, failed builds leave no
//     residue, an aborted leader hands the fill to a joiner;
//   - chaos: pool eviction racing plan_store.disk_read faults neither
//     crashes nor changes completed results (CI chaos lane).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "compiler/signature.hpp"
#include "matrix/tile_pool.hpp"
#include "service/inference_service.hpp"
#include "util/cancellation.hpp"
#include "util/fault_injection.hpp"

namespace dynasparse {
namespace {

Dataset pool_dataset(std::uint64_t seed, const std::string& tag = "TP") {
  DatasetSpec spec;
  spec.name = "tilepool";
  spec.tag = tag + std::to_string(seed % 100);
  spec.vertices = 150;
  spec.edges = 600;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  spec.h0_density = 0.3;
  spec.hidden_dim = 8;
  spec.degree_skew = 0.5;
  return generate_dataset(spec, 1, seed);
}

GnnModel pool_model(const Dataset& ds, GnnModelKind kind, std::uint64_t seed) {
  Rng rng(seed);
  return build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                     ds.spec.num_classes, rng);
}

/// A small PartitionedMatrix to feed the pool directly in unit tests.
PartitionedMatrix tiny_partitioned(std::int64_t n = 8) {
  DenseMatrix m(n, n);
  for (std::int64_t i = 0; i < n; ++i) m.at(i, i) = static_cast<float>(i + 1);
  return PartitionedMatrix::from_dense(m, 4, 4, 0.5);
}

TEST(TilePoolTest, ProgramsFromOneDatasetShareOperands) {
  TilePool pool(16);
  Dataset ds = pool_dataset(7);
  // Same model kind, different weights: identical computation-graph
  // shapes, so both compiles plan the same geometry over the same
  // dataset — exactly the duplication the pool exists to collapse.
  GnnModel a = pool_model(ds, GnnModelKind::kGcn, 1);
  GnnModel b = pool_model(ds, GnnModelKind::kGcn, 2);
  EngineOptions eo;
  OperandSource src{&pool, dataset_signature(ds)};

  CompiledProgram pa = compile(a, ds, eo.config, {}, src);
  CompiledProgram pb = compile(b, ds, eo.config, {}, src);

  EXPECT_TRUE(pa.operands_pooled);
  EXPECT_TRUE(pb.operands_pooled);
  ASSERT_TRUE(pa.h0 && pb.h0);
  EXPECT_EQ(pa.h0.get(), pb.h0.get());  // literally the same tiles
  ASSERT_EQ(pa.adjacency.size(), pb.adjacency.size());
  for (const auto& [key, adj] : pa.adjacency) {
    auto it = pb.adjacency.find(key);
    ASSERT_NE(it, pb.adjacency.end());
    EXPECT_EQ(adj.get(), it->second.get());
  }

  TilePoolStats s = pool.stats();
  EXPECT_GT(s.hits, 0);                     // second compile reused
  EXPECT_EQ(s.entries, s.misses);           // every build resident once
  EXPECT_GT(s.shared_refs, 0);              // programs pin the entries
  EXPECT_GT(s.bytes, 0);

  // Pooled operands are the pool tier's bytes, not the program's:
  // footprints must not double-charge the shared copy.
  EXPECT_GT(pa.operand_bytes, 0u);
  CompiledProgram priv = compile(a, ds, eo.config);
  EXPECT_FALSE(priv.operands_pooled);
  EXPECT_EQ(priv.approx_footprint_bytes(),
            pa.approx_footprint_bytes() + pa.operand_bytes);
}

TEST(TilePoolTest, PooledCompileBitIdenticalToPrivate) {
  TilePool pool(16);
  EngineOptions eo;
  for (std::uint64_t seed : {3, 4}) {
    Dataset ds = pool_dataset(seed);
    OperandSource src{&pool, dataset_signature(ds)};
    for (GnnModelKind kind : {GnnModelKind::kGcn, GnnModelKind::kSage}) {
      GnnModel model = pool_model(ds, kind, seed + 10);
      CompiledProgram pooled = compile(model, ds, eo.config, {}, src);
      CompiledProgram private_ = compile(model, ds, eo.config);
      InferenceReport rp = run_compiled(pooled, eo.runtime);
      InferenceReport rq = run_compiled(private_, eo.runtime);
      EXPECT_EQ(rp.deterministic_fingerprint(), rq.deterministic_fingerprint())
          << "seed " << seed;
    }
  }
}

TEST(TilePoolTest, CapacityZeroBuildsPrivately) {
  TilePool pool(0);
  TilePool::Key key{1, 2, 3};
  auto a = pool.get_or_build(key, [] { return tiny_partitioned(); });
  auto b = pool.get_or_build(key, [] { return tiny_partitioned(); });
  ASSERT_TRUE(a && b);
  EXPECT_NE(a.get(), b.get());  // no sharing with the pool off
  TilePoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(s.bytes, 0);
}

TEST(TilePoolTest, PinnedEntriesSurviveShrinkUntilReleased) {
  TilePool pool(16);
  TilePool::Key pinned_key{1, 1, 1};
  auto pinned = pool.get_or_build(pinned_key, [] { return tiny_partitioned(); });
  auto loose = pool.get_or_build(TilePool::Key{1, 1, 2},
                                 [] { return tiny_partitioned(); });
  loose.reset();  // only the pool's copy remains

  pool.shrink_to_bytes(0);
  TilePoolStats s = pool.stats();
  EXPECT_EQ(s.entries, 1);         // the pinned entry survived
  EXPECT_EQ(s.evictions, 1);       // the loose one did not
  EXPECT_GT(s.pinned_skips, 0);
  // The survivor is still servable — and still the same object.
  auto again = pool.get_or_build(pinned_key, [] {
    ADD_FAILURE() << "pinned entry must not rebuild";
    return tiny_partitioned();
  });
  EXPECT_EQ(again.get(), pinned.get());

  again.reset();
  pinned.reset();
  pool.shrink_to_bytes(0);
  s = pool.stats();
  EXPECT_EQ(s.entries, 0);  // unpinned now: eviction proceeds
  EXPECT_EQ(s.bytes, 0);
}

TEST(TilePoolTest, ConcurrentBuildersDedupeToOneBuild) {
  TilePool pool(16);
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const PartitionedMatrix>> got(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      got[static_cast<std::size_t>(t)] =
          pool.get_or_build(TilePool::Key{9, 9, 9}, [&] {
            ++builds;
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
            return tiny_partitioned();
          });
    });
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(builds.load(), 1);
  for (int t = 1; t < kThreads; ++t)
    EXPECT_EQ(got[static_cast<std::size_t>(t)].get(), got[0].get());
  TilePoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 1);
  EXPECT_EQ(s.hits, kThreads - 1);
}

TEST(TilePoolTest, FailedBuildLeavesNoResidueAndSurfacesToJoiners) {
  TilePool pool(16);
  TilePool::Key key{5, 5, 5};
  EXPECT_THROW(pool.get_or_build(
                   key, []() -> PartitionedMatrix {
                     throw std::runtime_error("synthetic build failure");
                   }),
               std::runtime_error);
  TilePoolStats s = pool.stats();
  EXPECT_EQ(s.entries, 0);  // no poisoned entry left behind
  EXPECT_EQ(s.bytes, 0);
  // The key is buildable again by the next caller.
  auto ok = pool.get_or_build(key, [] { return tiny_partitioned(); });
  ASSERT_TRUE(ok);
  EXPECT_EQ(pool.stats().entries, 1);
}

TEST(TilePoolTest, AbortedLeaderHandsOffToJoiner) {
  TilePool pool(16);
  TilePool::Key key{6, 6, 6};
  std::atomic<bool> leader_building{false};
  std::thread leader([&] {
    EXPECT_THROW(pool.get_or_build(key,
                                   [&]() -> PartitionedMatrix {
                                     leader_building = true;
                                     std::this_thread::sleep_for(
                                         std::chrono::milliseconds(100));
                                     throw RequestAbortedError("cancelled");
                                   }),
                 RequestAbortedError);
  });
  while (!leader_building)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // Joins the in-flight build; when the leader aborts, this caller must
  // retry as the new leader rather than inherit the abort.
  auto value = pool.get_or_build(key, [] { return tiny_partitioned(); });
  leader.join();
  ASSERT_TRUE(value);
  TilePoolStats s = pool.stats();
  EXPECT_EQ(s.misses, 2);  // leader's miss + the joiner's retry-as-leader
  EXPECT_EQ(s.entries, 1);
  // The handoff is observable unless the joiner lost the race and
  // arrived after the erase (then it was a plain miss).
  EXPECT_LE(s.aborted_retries, 1);
}

TEST(TilePoolTest, EvictionRacesDiskReadFaultsWithoutDamage) {
  // CI chaos lane: plan-store disk reads failing mid-stream while an
  // antagonist thread keeps flushing the pool. All requests must
  // resolve; completed reports must match the fault-free references.
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "dynasparse_tile_pool_chaos";
  fs::remove_all(dir);

  std::vector<ServiceRequest> requests;
  std::vector<std::uint64_t> expected;
  {
    FaultPauseScope pause;  // references computed fault-free
    for (std::uint64_t seed : {21, 22, 23}) {
      for (GnnModelKind kind : {GnnModelKind::kGcn, GnnModelKind::kSage}) {
        Dataset ds = pool_dataset(seed, "CH");
        GnnModel model = pool_model(ds, kind, seed + 5);
        EngineOptions eo;
        CompiledProgram prog = compile(model, ds, eo.config);
        InferenceReport ref = run_compiled(prog, eo.runtime);
        ref.dataset_tag = ds.spec.tag;  // the service stamps it; match
        expected.push_back(ref.deterministic_fingerprint());
        requests.push_back(
            ServiceRequest::own(std::move(model), std::move(ds), eo));
      }
    }
  }

  ServiceOptions opts;
  opts.workers = 4;
  opts.cache_capacity = 4;
  opts.tile_pool_capacity = 8;
  opts.plan_store_capacity = 8;
  opts.plan_store_dir = dir.string();
  opts.fault_spec = "plan_store.disk_read:0.5,seed:11";
  {
    InferenceService service(opts);
    std::atomic<bool> stop{false};
    std::thread antagonist([&] {
      while (!stop) {
        service.tile_pool().shrink_to_bytes(0);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
    for (int round = 0; round < 3; ++round) {
      std::vector<RequestId> ids;
      ids.reserve(requests.size());
      for (const ServiceRequest& req : requests) ids.push_back(service.submit(req));
      for (std::size_t i = 0; i < ids.size(); ++i) {
        InferenceReport rep = service.wait(ids[i]);  // disk faults degrade, not fail
        EXPECT_EQ(rep.deterministic_fingerprint(), expected[i])
            << "round " << round << " request " << i;
      }
    }
    stop = true;
    antagonist.join();
    service.shutdown();
  }
  FaultInjector::global().disarm();
  fs::remove_all(dir);
}

}  // namespace
}  // namespace dynasparse
