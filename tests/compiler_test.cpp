// Unit tests: IR, computation graph, Algorithm 9 partition planner,
// Algorithms 2-4 execution scheme, compile driver.

#include <gtest/gtest.h>

#include "compiler/compiler.hpp"
#include "graph/generators.hpp"
#include "util/math_util.hpp"

namespace dynasparse {
namespace {

Dataset small_dataset(std::uint64_t seed = 1) {
  DatasetSpec spec;
  spec.name = "toy";
  spec.tag = "TOY";
  spec.vertices = 200;
  spec.edges = 800;
  spec.feature_dim = 48;
  spec.num_classes = 5;
  spec.h0_density = 0.3;
  spec.hidden_dim = 16;
  return generate_dataset(spec, 1, seed);
}

GnnModel small_model(GnnModelKind kind, const Dataset& ds, std::uint64_t seed = 2) {
  Rng rng(seed);
  return build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                     ds.spec.num_classes, rng);
}

TEST(IrTest, DenseMacs) {
  KernelIR ir;
  ir.num_vertices = 10;
  ir.spec.kind = KernelKind::kAggregate;
  ir.spec.in_dim = 4;
  ir.spec.out_dim = 4;
  EXPECT_DOUBLE_EQ(ir.dense_macs(), 10.0 * 10.0 * 4.0);
  ir.spec.kind = KernelKind::kUpdate;
  ir.spec.in_dim = 6;
  EXPECT_DOUBLE_EQ(ir.dense_macs(), 10.0 * 6.0 * 4.0);
}

TEST(ComputationGraphTest, NodePerKernel) {
  Dataset ds = small_dataset();
  GnnModel m = small_model(GnnModelKind::kSage, ds);
  auto nodes = build_computation_graph(m, ds.graph);
  EXPECT_EQ(nodes.size(), m.kernels.size());
  EXPECT_TRUE(validate_computation_graph(nodes));
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i].node_id, static_cast<int>(i));
    EXPECT_EQ(nodes[i].num_vertices, ds.graph.num_vertices());
  }
}

TEST(ComputationGraphTest, DetectsForwardReference) {
  Dataset ds = small_dataset();
  GnnModel m = small_model(GnnModelKind::kGcn, ds);
  auto nodes = build_computation_graph(m, ds.graph);
  nodes[1].spec.input = 5;
  EXPECT_FALSE(validate_computation_graph(nodes));
}

TEST(PartitionPlannerTest, SizesAlignedAndBounded) {
  SimConfig cfg = u250_config();
  std::vector<KernelWorkload> ks = {
      {KernelKind::kUpdate, 5000, 64},
      {KernelKind::kAggregate, 5000, 64},
  };
  PartitionPlan plan = plan_partitions(ks, cfg);
  EXPECT_EQ(plan.n1 % cfg.psys, 0);
  EXPECT_EQ(plan.n2 % cfg.psys, 0);
  EXPECT_GE(plan.n1, cfg.psys);
  EXPECT_GE(plan.n2, cfg.psys);
  EXPECT_LE(plan.n1, plan.n_max);
  EXPECT_LE(plan.n2, plan.n_max);
}

TEST(PartitionPlannerTest, LoadBalanceConstraintHolds) {
  SimConfig cfg = u250_config();
  std::int64_t min_tasks = static_cast<std::int64_t>(cfg.load_balance_eta) * cfg.num_cores;
  std::vector<KernelWorkload> ks = {
      {KernelKind::kUpdate, 20000, 128},
      {KernelKind::kAggregate, 20000, 128},
      {KernelKind::kUpdate, 20000, 16},
  };
  PartitionPlan plan = plan_partitions(ks, cfg);
  for (const KernelWorkload& k : ks) {
    if (tasks_for(k, cfg.psys, cfg.psys) < min_tasks) continue;  // too small
    EXPECT_GE(tasks_for(k, plan.n1, plan.n2), min_tasks)
        << "n1=" << plan.n1 << " n2=" << plan.n2;
  }
}

TEST(PartitionPlannerTest, TinyKernelDoesNotConstrain) {
  SimConfig cfg = u250_config();
  std::vector<KernelWorkload> ks = {{KernelKind::kUpdate, 8, 4}};
  PartitionPlan plan = plan_partitions(ks, cfg);
  // A kernel that can never reach eta*NCC tasks places no constraint, so
  // locality is maximized (the whole kernel is one task either way).
  EXPECT_EQ(plan.n2, plan.n_max);
  EXPECT_EQ(plan.n1, plan.n_max);
}

TEST(PartitionPlannerTest, SmallKernelShrinksN1) {
  SimConfig cfg = u250_config();
  // 5000 x 8 output: reaching 28 tasks requires grid_i >= 28, N1 <= 178.
  std::vector<KernelWorkload> ks = {{KernelKind::kUpdate, 5000, 8},
                                    {KernelKind::kAggregate, 5000, 8}};
  PartitionPlan plan = plan_partitions(ks, cfg);
  std::int64_t min_tasks = cfg.load_balance_eta * cfg.num_cores;
  EXPECT_GE(tasks_for(ks[0], plan.n1, plan.n2), min_tasks);
  EXPECT_LE(plan.n1, 178);
  EXPECT_GE(plan.n1, cfg.min_partition);
}

TEST(PartitionPlannerTest, LargeWorkloadMaximizesLocality) {
  SimConfig cfg = u250_config();
  // Huge kernels: constraint satisfied even at Nmax, so planner keeps Nmax.
  std::vector<KernelWorkload> ks = {
      {KernelKind::kUpdate, 1000000, 1024},
      {KernelKind::kAggregate, 1000000, 1024},
  };
  PartitionPlan plan = plan_partitions(ks, cfg);
  EXPECT_EQ(plan.n1, plan.n_max);
  EXPECT_EQ(plan.n2, plan.n_max);
}

TEST(PartitionPlannerTest, EmptyKernelListThrows) {
  SimConfig cfg = u250_config();
  EXPECT_THROW(plan_partitions({}, cfg), std::invalid_argument);
}

TEST(ExecutionSchemeTest, AggregateLoopBounds) {
  KernelIR ir;
  ir.num_vertices = 1000;
  ir.spec.kind = KernelKind::kAggregate;
  ir.spec.in_dim = 100;
  ir.spec.out_dim = 100;
  attach_scheme(ir, 128, 32);
  EXPECT_EQ(ir.scheme.grid_i, ceil_div(1000, 128));
  EXPECT_EQ(ir.scheme.grid_k, ceil_div(100, 32));
  EXPECT_EQ(ir.scheme.inner_steps, ceil_div(1000, 128));  // A blocks
  EXPECT_EQ(ir.scheme.num_tasks(), ir.scheme.grid_i * ir.scheme.grid_k);
}

TEST(ExecutionSchemeTest, UpdateLoopBounds) {
  KernelIR ir;
  ir.num_vertices = 1000;
  ir.spec.kind = KernelKind::kUpdate;
  ir.spec.in_dim = 300;
  ir.spec.out_dim = 100;
  attach_scheme(ir, 128, 32);
  EXPECT_EQ(ir.scheme.inner_steps, ceil_div(300, 32));  // W blocks
  EXPECT_EQ(ir.scheme.grid_k, ceil_div(100, 32));
}

TEST(ExecutionSchemeTest, TaskListCoversGridExactlyOnce) {
  KernelIR ir;
  ir.node_id = 3;
  ir.num_vertices = 100;
  ir.spec.kind = KernelKind::kUpdate;
  ir.spec.in_dim = 64;
  ir.spec.out_dim = 48;
  attach_scheme(ir, 32, 16);
  auto tasks = generate_tasks(ir);
  ASSERT_EQ(static_cast<std::int64_t>(tasks.size()), ir.scheme.num_tasks());
  std::vector<int> seen(static_cast<std::size_t>(ir.scheme.num_tasks()), 0);
  for (const Task& t : tasks) {
    EXPECT_EQ(t.kernel_id, 3);
    EXPECT_EQ(t.inner_steps, ir.scheme.inner_steps);
    ++seen[static_cast<std::size_t>(t.out_gi * ir.scheme.grid_k + t.out_gk)];
  }
  for (int s : seen) EXPECT_EQ(s, 1);
}

TEST(CompileTest, ProducesConsistentProgram) {
  Dataset ds = small_dataset();
  GnnModel m = small_model(GnnModelKind::kGcn, ds);
  CompiledProgram prog = compile(m, ds, u250_config());
  EXPECT_EQ(prog.kernels.size(), m.kernels.size());
  // Operands partitioned with plan sizes.
  EXPECT_EQ(prog.h0->tile_rows(), prog.plan.n1);
  EXPECT_EQ(prog.h0->tile_cols(), prog.plan.n2);
  ASSERT_EQ(prog.weights.size(), m.weights.size());
  EXPECT_EQ(prog.weights[0].tile_rows(), prog.plan.n2);
  // One adjacency operator (GCN uses only sym-norm).
  EXPECT_EQ(prog.adjacency.size(), 1u);
  const PartitionedMatrix& adj = prog.adjacency_for(m.kernels[1]);
  EXPECT_EQ(adj.rows(), ds.graph.num_vertices());
  EXPECT_EQ(adj.tile_rows(), prog.plan.n1);
  EXPECT_EQ(adj.tile_cols(), prog.plan.n1);
}

TEST(CompileTest, SchemesAttachedToAllKernels) {
  Dataset ds = small_dataset();
  GnnModel m = small_model(GnnModelKind::kSage, ds);
  CompiledProgram prog = compile(m, ds, u250_config());
  for (const KernelIR& k : prog.kernels) {
    EXPECT_GT(k.scheme.num_tasks(), 0) << k.describe();
    EXPECT_GT(k.scheme.inner_steps, 0);
    EXPECT_EQ(k.scheme.n1, prog.plan.n1);
  }
}

TEST(CompileTest, SparsityProfilesRecorded) {
  Dataset ds = small_dataset();
  GnnModel m = small_model(GnnModelKind::kGcn, ds);
  CompiledProgram prog = compile(m, ds, u250_config());
  EXPECT_GT(prog.h0_profile.tiles, 0);
  EXPECT_NEAR(prog.h0_profile.overall_density, 0.3, 0.05);
  ASSERT_EQ(prog.weight_profiles.size(), 2u);
  EXPECT_GT(prog.weight_profiles[0].overall_density, 0.99);  // unpruned
}

TEST(CompileTest, StatsTimed) {
  Dataset ds = small_dataset();
  GnnModel m = small_model(GnnModelKind::kGcn, ds);
  CompiledProgram prog = compile(m, ds, u250_config());
  EXPECT_GE(prog.stats.partition_ms, 0.0);
  EXPECT_GT(prog.stats.total_ms(), 0.0);
}

TEST(CompileTest, MismatchedFeatureDimThrows) {
  Dataset ds = small_dataset();
  Rng rng(9);
  GnnModel m = build_model(GnnModelKind::kGcn, 17, 8, 4, rng);  // wrong in_dim
  EXPECT_THROW(compile(m, ds, u250_config()), std::invalid_argument);
}

TEST(CompileTest, GinUsesEpsilonOperator) {
  // Hand-built graph with no self loops so the diagonal is exactly 1+eps.
  Dataset ds;
  ds.spec.name = "gin";
  ds.spec.tag = "GN";
  ds.spec.vertices = 100;
  ds.spec.feature_dim = 24;
  ds.spec.num_classes = 4;
  ds.spec.hidden_dim = 8;
  std::vector<Edge> edges;
  for (std::int64_t v = 0; v + 1 < 100; ++v) edges.push_back({v, v + 1});
  ds.graph = Graph(100, edges);
  ds.spec.edges = ds.graph.num_edges();
  Rng rng(3);
  ds.features = generate_features(100, 24, 0.5, rng);
  GnnModel m = build_model(GnnModelKind::kGin, 24, 8, 4, rng);
  CompiledProgram prog = compile(m, ds, u250_config());
  ASSERT_EQ(prog.adjacency.size(), 1u);
  const PartitionedMatrix& adj = prog.adjacency_for(m.kernels[0]);
  DenseMatrix d = adj.to_dense();
  EXPECT_NEAR(d.at(0, 0), 1.1f, 1e-5f);
  EXPECT_NEAR(d.at(1, 0), 1.0f, 1e-6f);  // plain edge weight
}

}  // namespace
}  // namespace dynasparse
