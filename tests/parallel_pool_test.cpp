// Multi-job work-stealing pool tests (util/parallel.hpp): concurrent
// top-level jobs, nested parallel_for as stealable work, per-thread
// concurrency caps, cross-thread-count bit-identity of full inference
// reports, and exception routing. Thread counts are forced explicitly so
// the pool's multi-worker schedules are exercised even on a 1-vCPU host;
// this suite is part of the CI ThreadSanitizer job.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "graph/dataset.hpp"
#include "model/model.hpp"
#include "util/parallel.hpp"

namespace dynasparse {
namespace {

TEST(WorkStealingPoolTest, ConcurrentTopLevelJobsAllComplete) {
  // The PR-1 pool serialized concurrent callers on a single job slot;
  // the work-stealing pool must run many top-level jobs at once, each
  // covering its index space exactly once.
  constexpr int kJobs = 4;
  constexpr std::int64_t kN = 4096;
  std::vector<std::vector<std::atomic<int>>> hits(kJobs);
  for (auto& h : hits) {
    std::vector<std::atomic<int>> v(kN);
    for (auto& x : v) x = 0;
    h = std::move(v);
  }
  std::vector<std::thread> submitters;
  for (int j = 0; j < kJobs; ++j) {
    submitters.emplace_back([&, j] {
      parallel_for(
          kN, [&, j](std::int64_t i) { ++hits[j][static_cast<std::size_t>(i)]; },
          4);
    });
  }
  for (std::thread& t : submitters) t.join();
  for (int j = 0; j < kJobs; ++j)
    for (std::int64_t i = 0; i < kN; ++i)
      ASSERT_EQ(hits[j][static_cast<std::size_t>(i)].load(), 1)
          << "job " << j << " index " << i;
}

TEST(WorkStealingPoolTest, NestedParallelForIsExactUnderConcurrentJobs) {
  // Nested calls are stealable jobs now, not forced-inline loops; totals
  // must stay exact with two submitters nesting concurrently.
  constexpr int kSubmitters = 2;
  std::atomic<std::int64_t> total{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < kSubmitters; ++s) {
    submitters.emplace_back([&] {
      parallel_for(
          32,
          [&](std::int64_t) {
            parallel_for(
                64, [&](std::int64_t) { total.fetch_add(1); }, 4);
          },
          4);
    });
  }
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(total.load(), kSubmitters * 32 * 64);
}

TEST(WorkStealingPoolTest, LoneJobFansOutAcrossWorkerThreads) {
  // One big job, idle workers available: chunks must execute on more than
  // one thread. Item 0 (run by the submitter, which walks chunks in
  // ascending order) blocks until other items have run — which can only
  // happen if workers stole them.
  std::atomic<std::int64_t> others{0};
  std::atomic<bool> timed_out{false};
  std::mutex mu;
  std::set<std::thread::id> tids;
  parallel_for(
      256,
      [&](std::int64_t i) {
        {
          std::lock_guard<std::mutex> lk(mu);
          tids.insert(std::this_thread::get_id());
        }
        if (i == 0) {
          auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
          while (others.load() < 32) {
            if (std::chrono::steady_clock::now() > deadline) {
              timed_out = true;
              break;
            }
            std::this_thread::yield();
          }
        } else {
          others.fetch_add(1);
        }
      },
      4, /*grain=*/1);
  EXPECT_FALSE(timed_out.load()) << "no worker stole chunks from the lone job";
  EXPECT_GT(tids.size(), 1u);
  EXPECT_GT(parallel_pool_stats().chunks_stolen, 0);
}

TEST(WorkStealingPoolTest, MaxThreadsScopeOfOneRunsInline) {
  std::mutex mu;
  std::set<std::thread::id> tids;
  ParallelMaxThreadsScope serial(1);
  parallel_for(
      512,
      [&](std::int64_t) {
        std::lock_guard<std::mutex> lk(mu);
        tids.insert(std::this_thread::get_id());
      },
      8);
  EXPECT_EQ(tids.size(), 1u);
  EXPECT_EQ(*tids.begin(), std::this_thread::get_id());
}

TEST(WorkStealingPoolTest, InlineScopeAppliesToNestedCallsToo) {
  // The cap is inherited by whatever thread runs a capped job's chunks,
  // so a request bounded to one thread stays on one thread even when its
  // body nests further parallel calls.
  std::mutex mu;
  std::set<std::thread::id> tids;
  ParallelInlineScope scope;
  parallel_for(16, [&](std::int64_t) {
    parallel_for(64, [&](std::int64_t) {
      std::lock_guard<std::mutex> lk(mu);
      tids.insert(std::this_thread::get_id());
    }, 8);
  }, 8);
  EXPECT_EQ(tids.size(), 1u);
}

TEST(WorkStealingPoolTest, CapBoundsConcurrentThreadsAcrossNesting) {
  // The cap bounds the scope's *concurrent* fan-out as a whole, not each
  // job separately: nested parallel calls inside a capped job's chunks
  // must not multiply the budget (N executors each submitting an N-slot
  // nested job would give ~N^2 concurrent threads). Executor slots churn
  // per chunk, so distinct thread ids over the run may exceed the cap —
  // the invariant is the high-water mark of simultaneous executors.
  std::atomic<int> active{0}, high_water{0};
  ParallelMaxThreadsScope budget(2);
  parallel_for(
      64,
      [&](std::int64_t) {
        parallel_for(
            32,
            [&](std::int64_t) {
              int cur = active.fetch_add(1) + 1;
              int seen = high_water.load();
              while (cur > seen && !high_water.compare_exchange_weak(seen, cur)) {
              }
              std::this_thread::yield();
              active.fetch_sub(1);
            },
            8);
      },
      8);
  EXPECT_LE(high_water.load(), 2);
}

TEST(WorkStealingPoolTest, TighterEnclosingCapWins) {
  std::mutex mu;
  std::set<std::thread::id> tids;
  ParallelMaxThreadsScope outer(1);
  {
    // An inner scope cannot widen the budget the outer scope imposed.
    ParallelMaxThreadsScope inner(8);
    parallel_for(
        256,
        [&](std::int64_t) {
          std::lock_guard<std::mutex> lk(mu);
          tids.insert(std::this_thread::get_id());
        },
        8);
  }
  EXPECT_EQ(tids.size(), 1u);
}

TEST(WorkStealingPoolTest, ZeroCapMeansUncappedNotSerial) {
  // 0 follows the API-wide "0 = default/uncapped" convention: the scope
  // is a no-op, it neither serializes nor widens an enclosing cap.
  std::mutex mu;
  std::set<std::thread::id> tids;
  {
    ParallelMaxThreadsScope outer(1);
    ParallelMaxThreadsScope noop(0);
    parallel_for(
        256,
        [&](std::int64_t) {
          std::lock_guard<std::mutex> lk(mu);
          tids.insert(std::this_thread::get_id());
        },
        8);
  }
  EXPECT_EQ(tids.size(), 1u);  // outer cap still in force

  // Alone, scope(0) leaves fan-out fully available: item 0 blocks until
  // stolen chunks run elsewhere, exactly as with no scope at all.
  std::atomic<std::int64_t> others{0};
  std::atomic<bool> timed_out{false};
  ParallelMaxThreadsScope uncapped(0);
  parallel_for(
      256,
      [&](std::int64_t i) {
        if (i == 0) {
          auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
          while (others.load() < 32) {
            if (std::chrono::steady_clock::now() > deadline) {
              timed_out = true;
              break;
            }
            std::this_thread::yield();
          }
        } else {
          others.fetch_add(1);
        }
      },
      4, /*grain=*/1);
  EXPECT_FALSE(timed_out.load());
}

TEST(WorkStealingPoolTest, ExceptionsRouteToTheirOwnSubmitter) {
  // Two concurrent jobs, one poisoned: only its submitter sees the throw,
  // and the healthy job still covers every index.
  std::atomic<std::int64_t> healthy{0};
  std::atomic<bool> threw_in_healthy{false}, threw_in_poisoned{false};
  std::thread poisoned([&] {
    try {
      parallel_for(
          2048,
          [](std::int64_t i) {
            if (i == 100) throw std::runtime_error("poison");
          },
          4);
    } catch (const std::runtime_error&) {
      threw_in_poisoned = true;
    }
  });
  std::thread ok([&] {
    try {
      parallel_for(
          2048, [&](std::int64_t) { healthy.fetch_add(1); }, 4);
    } catch (...) {
      threw_in_healthy = true;
    }
  });
  poisoned.join();
  ok.join();
  EXPECT_TRUE(threw_in_poisoned.load());
  EXPECT_FALSE(threw_in_healthy.load());
  EXPECT_EQ(healthy.load(), 2048);
}

TEST(WorkStealingPoolTest, ReduceBitIdenticalAcrossThreadCountsUnderLoad) {
  // Determinism is by construction — chunk boundaries and combine order
  // depend only on (n, grain) — and must hold while other jobs contend
  // for the same workers.
  auto reduce_at = [](int threads) {
    return parallel_reduce<double>(
        10000, 0.0, [](std::int64_t i, double& acc) { acc += 1.0 / (1.0 + i); },
        [](double& into, const double& from) { into += from; }, threads);
  };
  const double serial = reduce_at(1);
  std::atomic<bool> stop{false};
  std::thread noise([&] {
    while (!stop.load())
      parallel_for(512, [](std::int64_t) {}, 2);
  });
  for (int rep = 0; rep < 10; ++rep)
    for (int threads : {2, 4, 8}) EXPECT_EQ(serial, reduce_at(threads));
  stop = true;
  noise.join();
}

/// Full-pipeline determinism: the fingerprint hashes every
/// simulation-deterministic report field including output matrix bits.
TEST(WorkStealingPoolTest, InferenceFingerprintBitIdenticalAcrossThreadCounts) {
  DatasetSpec spec;
  spec.name = "pool";
  spec.tag = "PL";
  spec.vertices = 220;
  spec.edges = 880;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  spec.h0_density = 0.3;
  spec.hidden_dim = 12;
  spec.degree_skew = 0.5;
  Dataset ds = generate_dataset(spec, 1, 7);
  Rng rng(11);
  GnnModel model = build_model(GnnModelKind::kGcn, ds.spec.feature_dim,
                               ds.spec.hidden_dim, ds.spec.num_classes, rng);
  CompiledProgram prog = compile(model, ds, u250_config());

  auto fingerprint_at = [&](int threads) {
    RuntimeOptions opt;
    opt.host_threads = threads;
    return run_compiled(prog, opt).deterministic_fingerprint();
  };
  const std::uint64_t golden = fingerprint_at(1);
  EXPECT_EQ(golden, fingerprint_at(2));
  EXPECT_EQ(golden, fingerprint_at(4));
}

}  // namespace
}  // namespace dynasparse
