// The lock-order checker must actually catch the bugs it exists for: a
// seeded rank inversion (with both stacks' chains in the report), a
// cycle across three ranks in the observed acquisition graph, and
// same-rank reentrancy. Runs with the checker armed (the default build);
// skips when compiled out so a DYNASPARSE_LOCK_ORDER_CHECK=OFF bench
// build still passes ctest.

#include "util/ordered_mutex.hpp"

#include <gtest/gtest.h>

#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace dynasparse {
namespace {

struct Captured {
  LockOrderViolation::Kind kind;
  std::string report;
};

std::vector<Captured>& captured() {
  static std::vector<Captured> v;
  return v;
}

void recording_handler(const LockOrderViolation& v) {
  captured().push_back({v.kind, v.report});
}

struct ViolationError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void throwing_handler(const LockOrderViolation& v) {
  captured().push_back({v.kind, v.report});
  throw ViolationError(v.report);
}

class LockOrderTest : public ::testing::Test {
 protected:
  void SetUp() override {
#if !DYNASPARSE_LOCK_CHECK_ACTIVE
    GTEST_SKIP() << "lock-order checker compiled out (NDEBUG without "
                    "DYNASPARSE_LOCK_CHECK)";
#endif
    captured().clear();
    reset_lock_order_graph();
  }

  void TearDown() override {
    set_lock_order_handler(nullptr);  // restore default
    reset_lock_order_graph();
    captured().clear();
  }
};

TEST_F(LockOrderTest, OrderedAcquisitionIsClean) {
  set_lock_order_handler(&recording_handler);
  OrderedMutex low(LockRank::kServiceSlots);
  OrderedMutex high(LockRank::kMemoryBudget);
  {
    std::lock_guard<OrderedMutex> a(low);
    std::lock_guard<OrderedMutex> b(high);
  }
  // Repeat to prove the recorded edge itself is not a violation.
  {
    std::lock_guard<OrderedMutex> a(low);
    std::lock_guard<OrderedMutex> b(high);
  }
  EXPECT_TRUE(captured().empty());
}

TEST_F(LockOrderTest, SeededInversionIsDetectedAndRefused) {
  set_lock_order_handler(&throwing_handler);
  OrderedMutex low(LockRank::kServiceSlots);
  OrderedMutex high(LockRank::kMemoryBudget);
  std::lock_guard<OrderedMutex> a(high);
  EXPECT_THROW(low.lock(), ViolationError);
  ASSERT_EQ(captured().size(), 1u);
  EXPECT_EQ(captured()[0].kind, LockOrderViolation::Kind::kRankOrder);
  EXPECT_NE(captured()[0].report.find("kServiceSlots"), std::string::npos);
  EXPECT_NE(captured()[0].report.find("kMemoryBudget"), std::string::npos);
}

TEST_F(LockOrderTest, InversionReportCarriesBothThreadsChains) {
  OrderedMutex slots(LockRank::kServiceSlots);
  OrderedMutex budget(LockRank::kMemoryBudget);

  // Thread 1 records the legal order slots -> budget (and its chain).
  std::thread t1([&] {
    std::lock_guard<OrderedMutex> a(slots);
    std::lock_guard<OrderedMutex> b(budget);
  });
  t1.join();

  // Thread 2 inverts it; the report must show thread 1's recorded chain
  // as the opposite-order stack, not just this thread's.
  set_lock_order_handler(&throwing_handler);
  std::thread t2([&] {
    std::lock_guard<OrderedMutex> a(budget);
    EXPECT_THROW(slots.lock(), ViolationError);
  });
  t2.join();

  ASSERT_EQ(captured().size(), 1u);
  const std::string& report = captured()[0].report;
  EXPECT_NE(report.find("this thread"), std::string::npos);
  EXPECT_NE(report.find("opposite order recorded by thread"), std::string::npos);
  EXPECT_NE(report.find("kServiceSlots(210) -> ACQUIRING kMemoryBudget(600)"),
            std::string::npos);
  EXPECT_NE(report.find("kMemoryBudget(600) -> ACQUIRING kServiceSlots(210)"),
            std::string::npos);
}

TEST_F(LockOrderTest, ThreeRankCycleIsDetected) {
  // A -> B and B -> C are each locally legal; the closing C -> A edge
  // creates a cycle through the observed acquisition graph that no
  // single thread's held stack exhibits in full.
  set_lock_order_handler(&recording_handler);
  OrderedMutex a(LockRank::kServiceWorkers);
  OrderedMutex b(LockRank::kResultCache);
  OrderedMutex c(LockRank::kMemoryBudget);
  {
    std::lock_guard<OrderedMutex> la(a);
    std::lock_guard<OrderedMutex> lb(b);
  }
  {
    std::lock_guard<OrderedMutex> lb(b);
    std::lock_guard<OrderedMutex> lc(c);
  }
  {
    std::lock_guard<OrderedMutex> lc(c);
    std::lock_guard<OrderedMutex> la(a);  // recording handler: not refused
  }

  bool saw_cycle = false;
  for (const Captured& v : captured()) {
    if (v.kind != LockOrderViolation::Kind::kCycle) continue;
    saw_cycle = true;
    EXPECT_NE(v.report.find("cycle"), std::string::npos);
    EXPECT_NE(v.report.find("kServiceWorkers"), std::string::npos);
    EXPECT_NE(v.report.find("kResultCache"), std::string::npos);
    EXPECT_NE(v.report.find("kMemoryBudget"), std::string::npos);
  }
  EXPECT_TRUE(saw_cycle) << "no cycle violation was reported";
  // The closing edge is also a plain rank inversion; both fire.
  bool saw_rank = false;
  for (const Captured& v : captured())
    saw_rank |= v.kind == LockOrderViolation::Kind::kRankOrder;
  EXPECT_TRUE(saw_rank);
}

TEST_F(LockOrderTest, SameRankReentrancyIsDetected) {
  set_lock_order_handler(&throwing_handler);
  OrderedMutex mu(LockRank::kTilePool);
  std::lock_guard<OrderedMutex> a(mu);
  EXPECT_THROW(mu.lock(), ViolationError);
  ASSERT_EQ(captured().size(), 1u);
  EXPECT_NE(captured()[0].report.find("re-acquiring"), std::string::npos);
}

TEST_F(LockOrderTest, SameRankDistinctMutexesAlsoRefused) {
  // Two locks of the same rank can never be nested: the hierarchy gives
  // them no relative order, so either nesting direction can deadlock
  // against the other.
  set_lock_order_handler(&throwing_handler);
  OrderedMutex m1(LockRank::kTilePool);
  OrderedMutex m2(LockRank::kTilePool);
  std::lock_guard<OrderedMutex> a(m1);
  EXPECT_THROW(m2.lock(), ViolationError);
}

TEST_F(LockOrderTest, RefusedLockIsNotHeldAndNotRecorded) {
  set_lock_order_handler(&throwing_handler);
  OrderedMutex low(LockRank::kServiceSlots);
  OrderedMutex high(LockRank::kMemoryBudget);
  {
    std::lock_guard<OrderedMutex> a(high);
    EXPECT_THROW(low.lock(), ViolationError);
  }
  // `low` was refused above, so it must be free now — and `high` must
  // have been released by the guard. The refused acquisition must not
  // have entered the graph either: locking the LEGAL order afterwards
  // has to be completely clean, not a "cycle" against the refused edge.
  captured().clear();
  {
    std::lock_guard<OrderedMutex> a(low);
    std::lock_guard<OrderedMutex> b(high);
  }
  EXPECT_TRUE(captured().empty());
}

TEST_F(LockOrderTest, CondVarWaitKeepsCheckerConsistent) {
  // A cv wait releases and reacquires the mutex through the native
  // handle; afterwards the held stack must still be coherent — ordered
  // acquisitions keep working, inversions are still caught.
  set_lock_order_handler(&recording_handler);
  OrderedMutex mu(LockRank::kWorkQueue);
  OrderedCondVar cv;
  bool ready = false;

  std::thread waker([&] {
    std::lock_guard<OrderedMutex> lk(mu);
    ready = true;
    cv.notify_one();
  });
  {
    std::unique_lock<OrderedMutex> lk(mu);
    cv.wait(lk, [&] { return ready; });
  }
  waker.join();
  EXPECT_TRUE(captured().empty());

  OrderedMutex budget(LockRank::kMemoryBudget);
  {
    std::lock_guard<OrderedMutex> a(mu);
    std::lock_guard<OrderedMutex> b(budget);
  }
  EXPECT_TRUE(captured().empty());
}

}  // namespace
}  // namespace dynasparse
