// Fixture service file: one bare runtime_error construction (flagged),
// one waived by annotation, one unregistered fault site, one
// non-registry identifier argument — plus legal uses that must stay
// quiet.
#include <stdexcept>

#include "util/fault_injection.hpp"

namespace fixture {

void bad_throw() { throw std::runtime_error("boom"); }

void waived_throw() {
  throw std::runtime_error("legacy");  // dynasparse-lint: allow(error-taxonomy)
}

bool bad_site() { return fault_point("unknown.site"); }

bool bad_ident(const char* some_flag) { return fault_point(some_flag); }

bool good_literal() { return fault_point("demo.site"); }

bool good_ident() { return fault_point(kFaultDemoSite); }

// A comment mentioning throw std::runtime_error("in prose") is not code.
const char* not_code() { return "throw std::runtime_error(\"in a string\")"; }

}  // namespace fixture
