// Fixture registry: the only declared site is "demo.site". Everything
// else a fixture file names must be flagged by [fault-site].
#pragma once

namespace fixture {

inline constexpr const char* kFaultDemoSite = "demo.site";

inline bool fault_point(const char* site) { return site != nullptr; }

}  // namespace fixture
