// Fixture net file with zero findings: deriving from std::runtime_error
// and inheriting its constructors is how taxonomy types are DEFINED —
// the [error-taxonomy] rule must not flag either form.
#include <stdexcept>

namespace fixture {

struct FixtureError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

void ok_throw() { throw FixtureError("typed"); }

}  // namespace fixture
