// Fixture hashers: GoodStruct is pinned by a static_assert, BadStruct
// and BadElem are hashed without one — [signature-tripwire] must flag
// exactly those two.
#include <cstdint>
#include <vector>

namespace fixture {

struct GoodStruct { std::int64_t a; };
struct BadStruct { std::int64_t a; };
struct BadElem { std::int64_t a; };

static_assert(sizeof(GoodStruct) == 8, "GoodStruct changed: update hash");

std::uint64_t hash_good(const GoodStruct& s) { return static_cast<std::uint64_t>(s.a); }

std::uint64_t hash_bad(const BadStruct& s) { return static_cast<std::uint64_t>(s.a); }

std::uint64_t hash_vec(const std::vector<BadElem>& v) {
  std::uint64_t h = 0;
  for (const BadElem& e : v) h ^= static_cast<std::uint64_t>(e.a);
  return h;
}

}  // namespace fixture
