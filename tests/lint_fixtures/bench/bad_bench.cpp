// Fixture bench: raw getenv and std::stoi must be flagged; the
// annotated atoi, the string literal, and the comment must not.
#include <cstdlib>
#include <string>

namespace fixture {

int bad_env() { return std::getenv("KNOB") != nullptr; }

int bad_parse(const std::string& v) { return std::stoi(v); }

int waived(const char* v) {
  return std::atoi(v);  // dynasparse-lint: allow(raw-parse)
}

// atoi in a comment is fine.
const char* in_string() { return "atoi"; }

}  // namespace fixture
