// Loopback end-to-end tests for the network front-end (net/server.hpp +
// net/client.hpp over real TCP sockets):
//
//   - N concurrent clients observe bit-identical deterministic
//     fingerprints to a direct InferenceService::run_batch of the same
//     specs — the wire adds transport, never changes results;
//   - an abrupt client disconnect mid-request drives
//     InferenceService::cancel: RobustnessStats.cancelled advances and
//     every slot is still consumed (server stop + service shutdown
//     return instead of hanging on a leak);
//   - wire error codes round-trip 1:1 with the service taxonomy:
//     a networked caller catches exactly the exception type a local
//     wait() would have thrown;
//   - a slow-loris connection (partial frame, no progress) times out and
//     is told why, without stalling the healthy connection next to it.

#include <gtest/gtest.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "net/client.hpp"
#include "net/server.hpp"
#include "net/wire.hpp"
#include "service/request_stream.hpp"
#include "util/fault_injection.hpp"

namespace dynasparse {
namespace {

using namespace std::chrono_literals;

/// Disarm the global injector on scope exit — chaos-style tests must not
/// leak armed sites into neighbors.
struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::global().disarm(); }
};

StreamRequestSpec spec_of(const char* dataset, GnnModelKind model,
                          std::uint64_t seed) {
  StreamRequestSpec spec;
  spec.dataset = dataset;
  spec.model = model;
  spec.seed = seed;
  return spec;
}

/// The mixed workload both sides of the bit-identity test run.
std::vector<StreamRequestSpec> loopback_specs() {
  return {
      spec_of("CI", GnnModelKind::kGcn, 2023),
      spec_of("CO", GnnModelKind::kGcn, 2023),
      spec_of("PU", GnnModelKind::kGcn, 2023),
      spec_of("CI", GnnModelKind::kSage, 7),
      spec_of("CO", GnnModelKind::kSage, 7),
  };
}

/// Per-recv client timeout: generous, because sanitizer lanes slow
/// execution 10-20x and a client's first RESULT can sit behind a full
/// queue of real requests. Tests that want a *hang* to fail rely on the
/// ctest harness timeout, not this.
constexpr std::int64_t kClientTimeoutMs = 120000;

/// Poll `pred` for up to `budget`, returning whether it became true.
template <typename Pred>
bool eventually(Pred pred, std::chrono::milliseconds budget = 30000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(5ms);
  }
  return pred();
}

/// Raw TCP connect for tests that need to misbehave below NetClient.
int raw_connect(std::uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  return fd;
}

/// Read frames off a raw socket until EOF/timeout; returns them decoded.
std::vector<WireFrame> raw_read_frames(int fd) {
  std::vector<std::uint8_t> buf;
  std::vector<WireFrame> frames;
  while (true) {
    std::uint8_t chunk[1024];
    ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;  // EOF, timeout, or reset — the caller asserts on
                        // what it already got
    buf.insert(buf.end(), chunk, chunk + n);
    WireFrame f;
    std::size_t consumed = 0;
    try {
      while (try_extract_frame(buf.data(), buf.size(), f, consumed)) {
        frames.push_back(f);
        buf.erase(buf.begin(), buf.begin() + static_cast<std::ptrdiff_t>(consumed));
      }
    } catch (const WireProtocolError&) {
      ADD_FAILURE() << "server sent malformed bytes";
      break;
    }
  }
  return frames;
}

TEST(NetService, ConcurrentClientsMatchDirectRunBatchBitForBit) {
  // Ground truth: the same specs through a local service, no network.
  const std::vector<StreamRequestSpec> specs = loopback_specs();
  std::vector<std::uint64_t> expected;
  {
    InferenceService local(ServiceOptions{});
    std::vector<ServiceRequest> reqs;
    for (const StreamRequestSpec& s : specs) reqs.push_back(materialize_request(s));
    for (const InferenceReport& rep : local.run_batch(std::move(reqs)))
      expected.push_back(rep.deterministic_fingerprint());
  }

  InferenceService service(ServiceOptions{});
  NetServer server(service);
  server.start();

  constexpr int kClients = 3;
  std::vector<std::vector<std::uint64_t>> got(kClients);
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      NetClient client("127.0.0.1", server.port(), kClientTimeoutMs);
      // Pipelined: submit everything, then await by correlation id —
      // out-of-order completion on the server is invisible here.
      std::vector<std::uint64_t> corrs;
      for (const StreamRequestSpec& s : specs) corrs.push_back(client.submit(s));
      for (std::uint64_t corr : corrs) {
        NetClient::Outcome out = client.await(corr);
        ASSERT_TRUE(out.ok) << out.error.message;
        got[static_cast<std::size_t>(c)].push_back(out.result.fingerprint);
        EXPECT_GT(out.result.server_ms, 0.0);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c)
    EXPECT_EQ(got[static_cast<std::size_t>(c)], expected) << "client " << c;

  NetServerStats ns = server.stats();
  EXPECT_EQ(ns.accepted, kClients);
  EXPECT_EQ(ns.submits, static_cast<std::int64_t>(specs.size()) * kClients);
  EXPECT_EQ(ns.results, ns.submits);
  EXPECT_EQ(ns.errors_sent, 0);
  EXPECT_EQ(ns.protocol_errors, 0);
  server.stop();
}

TEST(NetService, DisconnectMidRequestCancelsInFlightAndLeaksNoSlot) {
  // One worker serializes execution, so requests behind the head stay
  // queued — guaranteed in flight when the client vanishes.
  ServiceOptions opts;
  opts.workers = 1;
  InferenceService service(opts);
  NetServer server(service);
  server.start();

  const std::int64_t cancelled_before = service.robustness_stats().cancelled;
  {
    NetClient client("127.0.0.1", server.port(), kClientTimeoutMs);
    // Distinct seeds: no compilation-cache hit can make these instant.
    client.submit(spec_of("CI", GnnModelKind::kGcn, 101));
    client.submit(spec_of("CO", GnnModelKind::kGcn, 102));
    client.submit(spec_of("PU", GnnModelKind::kGcn, 103));
    // Destroying the client closes the socket with everything in flight.
  }
  EXPECT_TRUE(eventually([&] {
    return server.stats().disconnect_cancels >= 1 &&
           service.robustness_stats().cancelled > cancelled_before;
  })) << "disconnect did not drive cancel(id)";

  // No slot leak: the server consumed every orphaned slot via wait(), so
  // both teardowns return instead of hanging on an unconsumed slot (the
  // test harness timeout is the enforcement).
  server.stop();
  service.shutdown();
  EXPECT_EQ(server.stats().submits, 3);
  EXPECT_GT(service.robustness_stats().cancelled, cancelled_before);
}

TEST(NetService, CancelledErrorRoundTripsOverTheWire) {
  ServiceOptions opts;
  opts.workers = 1;
  InferenceService service(opts);
  NetServer server(service);
  server.start();
  NetClient client("127.0.0.1", server.port(), kClientTimeoutMs);

  // Head request occupies the only worker; the target stays queued, so
  // CANCEL always wins its race.
  const std::uint64_t head = client.submit(spec_of("CI", GnnModelKind::kGcn, 201));
  const std::uint64_t target = client.submit(spec_of("CO", GnnModelKind::kGcn, 202));
  EXPECT_TRUE(client.cancel(target));
  NetClient::Outcome out = client.await(target);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.error.code, WireErrorCode::kCancelled);
  EXPECT_THROW(out.rethrow(), CancelledError);
  EXPECT_TRUE(client.await(head).ok);  // the neighbor is untouched
  server.stop();
}

TEST(NetService, DeadlineExceededRoundTripsOverTheWire) {
  ServiceOptions opts;
  opts.workers = 1;
  InferenceService service(opts);
  NetServer server(service);
  server.start();
  NetClient client("127.0.0.1", server.port(), kClientTimeoutMs);

  const std::uint64_t head = client.submit(spec_of("CI", GnnModelKind::kGcn, 301));
  StreamRequestSpec doomed = spec_of("CO", GnnModelKind::kGcn, 302);
  doomed.deadline_ms = 1;  // expires while queued behind the head
  const std::uint64_t target = client.submit(doomed);
  NetClient::Outcome out = client.await(target);
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.error.code, WireErrorCode::kDeadlineExceeded);
  EXPECT_THROW(out.rethrow(), DeadlineExceededError);
  EXPECT_TRUE(client.await(head).ok);
  server.stop();
}

TEST(NetService, AdmissionRejectedRoundTripsOverTheWire) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.max_queue_depth = 1;
  opts.admission = AdmissionPolicy::kReject;
  InferenceService service(opts);
  NetServer server(service);
  server.start();
  NetClient client("127.0.0.1", server.port(), kClientTimeoutMs);

  // Burst-submit one identical spec: after the first SUBMIT the server's
  // materialization memo makes the rest near-free for the loop thread,
  // while the single worker still pays a full execute per request — so
  // with a depth-1 queue at least one of 8 must be refused, and the
  // refusal is typed, end to end.
  std::vector<std::uint64_t> corrs;
  for (int s = 0; s < 8; ++s)
    corrs.push_back(client.submit(spec_of("CI", GnnModelKind::kGcn, 400)));
  int completed = 0, rejected = 0;
  for (std::uint64_t corr : corrs) {
    NetClient::Outcome out = client.await(corr);
    if (out.ok) {
      ++completed;
      continue;
    }
    ASSERT_EQ(out.error.code, WireErrorCode::kAdmissionRejected)
        << out.error.message;
    EXPECT_THROW(out.rethrow(), AdmissionRejectedError);
    ++rejected;
  }
  EXPECT_GT(completed, 0);
  EXPECT_GT(rejected, 0);
  server.stop();
}

TEST(NetService, ExecutionErrorRoundTripsOverTheWire) {
  DisarmGuard guard;
  ServiceOptions opts;
  opts.fault_spec = "runtime.kernel_fault:1,seed:9";  // every execute fails
  InferenceService service(opts);
  NetServer server(service);
  server.start();
  NetClient client("127.0.0.1", server.port(), kClientTimeoutMs);
  NetClient::Outcome out =
      client.await(client.submit(spec_of("CI", GnnModelKind::kGcn, 501)));
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.error.code, WireErrorCode::kExecutionError);
  EXPECT_THROW(out.rethrow(), ExecutionError);
  server.stop();
}

TEST(NetService, UnknownAndInvalidRequestsAreTyped) {
  InferenceService service(ServiceOptions{});
  NetServer server(service);
  server.start();
  NetClient client("127.0.0.1", server.port(), kClientTimeoutMs);

  // POLL/CANCEL for a correlation id that never existed.
  EXPECT_THROW(client.poll_state(999), std::invalid_argument);
  EXPECT_THROW(client.cancel(999), std::invalid_argument);

  // Well-formed frame, unusable request: a dataset tag that passes the
  // charset check but names nothing.
  NetClient::Outcome out =
      client.await(client.submit(spec_of("no-such-dataset", GnnModelKind::kGcn, 1)));
  ASSERT_FALSE(out.ok);
  EXPECT_EQ(out.error.code, WireErrorCode::kInvalidRequest);
  EXPECT_THROW(out.rethrow(), std::invalid_argument);

  // And the conversation survives both: this connection still serves.
  EXPECT_TRUE(client.await(client.submit(spec_of("CI", GnnModelKind::kGcn, 1))).ok);
  std::string stats = client.stats();
  EXPECT_NE(stats.find("submits="), std::string::npos);
  // The memory-budget and tile-pool gauges ride the same STATS reply, so a
  // wire client can watch residency without a side channel. Numbers are
  // load-dependent; presence is the contract.
  for (const char* key :
       {"budget_limit=", "budget_bytes=", "budget_high_water=", "pool_entries=",
        "pool_bytes=", "pool_shared_refs="})
    EXPECT_NE(stats.find(key), std::string::npos) << key;
  server.stop();
}

TEST(NetService, PollReportsLifecycleStates) {
  ServiceOptions opts;
  opts.workers = 1;
  InferenceService service(opts);
  NetServer server(service);
  server.start();
  NetClient client("127.0.0.1", server.port(), kClientTimeoutMs);
  client.submit(spec_of("CI", GnnModelKind::kGcn, 601));  // occupies the worker
  const std::uint64_t corr = client.submit(spec_of("CO", GnnModelKind::kGcn, 602));
  const std::uint8_t state = client.poll_state(corr);
  EXPECT_LE(state, 3);  // a valid lifecycle state, most likely 0 (queued)
  // Both requests resolve; their states were observable along the way.
  EXPECT_TRUE(client.await_any().ok);
  EXPECT_TRUE(client.await_any().ok);
  server.stop();
}

TEST(NetService, SlowLorisTimesOutWithoutStallingOthers) {
  InferenceService service(ServiceOptions{});
  NetServerOptions net;
  net.frame_timeout_ms = 200;
  NetServer server(service, net);
  server.start();

  // The attacker: half a SUBMIT frame, then silence.
  int loris = raw_connect(server.port());
  const std::vector<std::uint8_t> frame =
      encode_submit(1, spec_of("CI", GnnModelKind::kGcn, 1));
  ASSERT_EQ(::send(loris, frame.data(), 12, MSG_NOSIGNAL), 12);

  // The healthy neighbor completes while the loris stalls.
  NetClient client("127.0.0.1", server.port(), kClientTimeoutMs);
  EXPECT_TRUE(client.await(client.submit(spec_of("CI", GnnModelKind::kGcn, 701))).ok);

  EXPECT_TRUE(eventually([&] { return server.stats().timeouts >= 1; }))
      << "slow-loris connection was never timed out";
  // The loris is told why before the close: a kProtocol ERROR, then EOF.
  std::vector<WireFrame> frames = raw_read_frames(loris);
  ASSERT_EQ(frames.size(), 1u);
  WireError err = decode_error(frames[0]);
  EXPECT_EQ(err.code, WireErrorCode::kProtocol);
  EXPECT_NE(err.message.find("timeout"), std::string::npos);
  ::close(loris);
  server.stop();
}

TEST(NetService, HostileLengthPrefixGetsTypedAnswerThenClose) {
  InferenceService service(ServiceOptions{});
  NetServer server(service);
  server.start();

  int fd = raw_connect(server.port());
  std::uint8_t hostile[8];
  const std::uint64_t huge = std::uint64_t{1} << 63;
  for (int i = 0; i < 8; ++i)
    hostile[i] = static_cast<std::uint8_t>(huge >> (8 * i));
  ASSERT_EQ(::send(fd, hostile, sizeof hostile, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof hostile));

  std::vector<WireFrame> frames = raw_read_frames(fd);
  ASSERT_EQ(frames.size(), 1u);
  WireError err = decode_error(frames[0]);
  EXPECT_EQ(err.code, WireErrorCode::kProtocol);
  ::close(fd);
  EXPECT_TRUE(eventually([&] { return server.stats().protocol_errors >= 1; }));
  server.stop();
}

TEST(NetService, ServerStopWithLiveConnectionsDeliversShutdownErrors) {
  ServiceOptions opts;
  opts.workers = 1;
  InferenceService service(opts);
  NetServer server(service);
  server.start();
  NetClient client("127.0.0.1", server.port(), kClientTimeoutMs);
  // Several requests in flight when the server goes down: each resolves
  // to SOME terminal frame (kShuttingDown or kCancelled once the stop
  // cancels it, a RESULT if it won the race) — never silence.
  std::vector<std::uint64_t> corrs;
  for (std::uint64_t s = 0; s < 3; ++s)
    corrs.push_back(client.submit(spec_of("CI", GnnModelKind::kGcn, 800 + s)));
  std::thread stopper([&] { server.stop(); });
  int resolved = 0;
  try {
    for (std::size_t i = 0; i < corrs.size(); ++i) {
      NetClient::Outcome out = client.await_any();
      if (!out.ok)
        EXPECT_TRUE(out.error.code == WireErrorCode::kShuttingDown ||
                    out.error.code == WireErrorCode::kCancelled)
            << wire_error_name(out.error.code);
      ++resolved;
    }
  } catch (const NetError&) {
    // EOF once the server closes the socket — acceptable only after at
    // least the already-completed answers arrived; resolution is checked
    // below via server accounting instead.
  }
  stopper.join();
  NetServerStats ns = server.stats();
  EXPECT_EQ(ns.results + ns.errors_sent + ns.disconnect_cancels >= ns.submits,
            true);
  (void)resolved;
  service.shutdown();
}

}  // namespace
}  // namespace dynasparse
