// Unit tests: the Engine façade and report rendering.

#include <gtest/gtest.h>

#include "core/engine.hpp"

namespace dynasparse {
namespace {

Dataset tiny_dataset(std::uint64_t seed = 3) {
  DatasetSpec spec;
  spec.name = "tiny";
  spec.tag = "TY";
  spec.vertices = 120;
  spec.edges = 480;
  spec.feature_dim = 32;
  spec.num_classes = 4;
  spec.h0_density = 0.25;
  spec.hidden_dim = 8;
  return generate_dataset(spec, 1, seed);
}

TEST(EngineTest, RunInferenceEndToEnd) {
  Dataset ds = tiny_dataset();
  Rng rng(5);
  GnnModel m = build_model(GnnModelKind::kGcn, ds.spec.feature_dim, ds.spec.hidden_dim,
                           ds.spec.num_classes, rng);
  InferenceReport rep = run_inference(m, ds, {});
  EXPECT_EQ(rep.model_name, "GCN");
  EXPECT_EQ(rep.dataset_tag, "TY");
  EXPECT_GT(rep.latency_ms, 0.0);
  EXPECT_GT(rep.end_to_end_ms, rep.latency_ms);       // adds preprocessing
  EXPECT_GT(rep.data_movement_ms, 0.0);
  EXPECT_EQ(rep.execution.kernels.size(), m.kernels.size());
}

TEST(EngineTest, RunCompiledReusesCompilation) {
  Dataset ds = tiny_dataset();
  Rng rng(5);
  GnnModel m = build_model(GnnModelKind::kSgc, ds.spec.feature_dim, ds.spec.hidden_dim,
                           ds.spec.num_classes, rng);
  CompiledProgram prog = compile(m, ds, u250_config());
  RuntimeOptions dyn;
  RuntimeOptions s1;
  s1.strategy = MappingStrategy::kStatic1;
  InferenceReport a = run_compiled(prog, dyn);
  InferenceReport b = run_compiled(prog, s1);
  EXPECT_EQ(a.strategy, MappingStrategy::kDynamic);
  EXPECT_EQ(b.strategy, MappingStrategy::kStatic1);
  // Same compile stats object propagated.
  EXPECT_DOUBLE_EQ(a.compile.total_ms(), b.compile.total_ms());
}

TEST(EngineTest, DynamicBeatsOrTiesStaticLatency) {
  Dataset ds = tiny_dataset();
  for (GnnModelKind kind : paper_models()) {
    Rng rng(6);
    GnnModel m = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                             ds.spec.num_classes, rng);
    CompiledProgram prog = compile(m, ds, u250_config());
    RuntimeOptions opt;
    double dyn = run_compiled(prog, opt).execution.exec_ms;
    opt.strategy = MappingStrategy::kStatic1;
    double s1 = run_compiled(prog, opt).execution.exec_ms;
    opt.strategy = MappingStrategy::kStatic2;
    double s2 = run_compiled(prog, opt).execution.exec_ms;
    // Scheduling noise aside, dynamic should essentially win or tie.
    EXPECT_LE(dyn, std::max(s1, s2) * 1.001) << model_kind_name(kind);
  }
}

TEST(EngineTest, SummaryAndKernelTableRender) {
  Dataset ds = tiny_dataset();
  Rng rng(5);
  GnnModel m = build_model(GnnModelKind::kGcn, ds.spec.feature_dim, ds.spec.hidden_dim,
                           ds.spec.num_classes, rng);
  InferenceReport rep = run_inference(m, ds, {});
  std::string s = rep.summary();
  EXPECT_NE(s.find("GCN"), std::string::npos);
  EXPECT_NE(s.find("Dynamic"), std::string::npos);
  std::string t = rep.kernel_table();
  EXPECT_NE(t.find("Update L1"), std::string::npos);
  EXPECT_NE(t.find("Aggregate L2"), std::string::npos);
}

TEST(EngineTest, CustomConfigRespected) {
  Dataset ds = tiny_dataset();
  Rng rng(5);
  GnnModel m = build_model(GnnModelKind::kGcn, ds.spec.feature_dim, ds.spec.hidden_dim,
                           ds.spec.num_classes, rng);
  EngineOptions narrow;  // quarter-width ALU arrays, same cores/bandwidth
  narrow.config.psys = 4;
  narrow.config.min_partition = 64;
  InferenceReport rep_narrow = run_inference(m, ds, narrow);
  InferenceReport rep_full = run_inference(m, ds, {});
  // Every primitive's MAC rate shrinks with psys, so compute work rises
  // strictly; end-to-end cycles can only stay equal if memory-bound.
  EXPECT_GT(rep_narrow.execution.stats.compute_cycles,
            rep_full.execution.stats.compute_cycles);
  EXPECT_GE(rep_narrow.execution.exec_cycles, rep_full.execution.exec_cycles * 0.999);
}

}  // namespace
}  // namespace dynasparse
