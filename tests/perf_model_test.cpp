// Property tests of the Analyzer's performance model: the closed-form
// regions of Section VI-A are total, disjoint, and actually optimal
// against the Table IV cycle formulas.

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/perf_model.hpp"

namespace dynasparse {
namespace {

TEST(PerfModelTest, PaperThresholds) {
  const int psys = 16;
  EXPECT_EQ(choose_primitive(0.6, 0.9, psys), Primitive::kGemm);
  EXPECT_EQ(choose_primitive(0.5, 0.5, psys), Primitive::kGemm);   // boundary
  EXPECT_EQ(choose_primitive(0.1, 0.9, psys), Primitive::kSpdmm);
  EXPECT_EQ(choose_primitive(0.1, 2.0 / 16.0, psys), Primitive::kSpdmm);  // boundary
  EXPECT_EQ(choose_primitive(0.05, 0.1, psys), Primitive::kSpmm);
  EXPECT_EQ(choose_primitive(0.0, 0.5, psys), Primitive::kSkip);
  EXPECT_EQ(choose_primitive(0.0, 0.0, psys), Primitive::kSkip);
}

TEST(PerfModelTest, SymmetricInOperands) {
  const int psys = 16;
  for (double ax : {0.01, 0.2, 0.7})
    for (double ay : {0.05, 0.4, 0.95})
      EXPECT_EQ(choose_primitive(ax, ay, psys), choose_primitive(ay, ax, psys));
}

// Density grid sweep: the choice must minimize the modelled cycles.
class OptimalitySweep
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(OptimalitySweep, ChosenPrimitiveMinimizesModelCycles) {
  auto [ax, ay, psys] = GetParam();
  CycleModel cm(psys);
  PairShape s{256, 256, 64, ax, ay};
  double amin = std::min(ax, ay);
  if (amin <= 0.0) {
    EXPECT_EQ(choose_primitive(ax, ay, psys), Primitive::kSkip);
    return;
  }
  double g = cm.gemm_cycles(s);
  double sd = cm.spdmm_cycles(s, amin);
  double sp = cm.spmm_cycles(s);
  double best = std::min({g, sd, sp});
  Primitive chosen = choose_primitive(ax, ay, psys);
  double chosen_cost = cm.pair_cycles(chosen, s, amin);
  EXPECT_LE(chosen_cost, best + 1e-9)
      << "ax=" << ax << " ay=" << ay << " psys=" << psys << " chose "
      << primitive_name(chosen);
}

INSTANTIATE_TEST_SUITE_P(
    DensityGrid, OptimalitySweep,
    ::testing::Combine(
        ::testing::Values(0.0, 0.01, 0.05, 0.124, 0.125, 0.126, 0.3, 0.5, 0.51, 0.8, 1.0),
        ::testing::Values(0.0, 0.01, 0.05, 0.124, 0.125, 0.126, 0.3, 0.5, 0.51, 0.8, 1.0),
        ::testing::Values(8, 16, 32)));

TEST(PerfModelTest, RegionsPartitionTheDomain) {
  // Fine sweep: exactly one region claims every point (choose_primitive is
  // a total function returning one of the four labels; degenerate skip
  // only at amin == 0).
  for (int i = 0; i <= 100; ++i)
    for (int j = i; j <= 100; ++j) {
      double amin = i / 100.0, amax = j / 100.0;
      Primitive p = choose_primitive(amin, amax, 16);
      if (amin == 0.0) {
        EXPECT_EQ(p, Primitive::kSkip);
      } else if (amin >= 0.5) {
        EXPECT_EQ(p, Primitive::kGemm);
      } else if (amax >= 2.0 / 16.0) {
        EXPECT_EQ(p, Primitive::kSpdmm);
      } else {
        EXPECT_EQ(p, Primitive::kSpmm);
      }
    }
}

TEST(PerfModelTest, PredictedCyclesUsesChosenPrimitive) {
  CycleModel cm(16);
  PairShape dense{128, 128, 128, 0.9, 0.9};
  EXPECT_DOUBLE_EQ(predicted_cycles(cm, dense), cm.gemm_cycles(dense));
  PairShape sparse{128, 128, 128, 0.01, 0.02};
  EXPECT_DOUBLE_EQ(predicted_cycles(cm, sparse), cm.spmm_cycles(sparse));
  PairShape empty{128, 128, 128, 0.0, 0.9};
  EXPECT_DOUBLE_EQ(predicted_cycles(cm, empty), 0.0);
}

}  // namespace
}  // namespace dynasparse
