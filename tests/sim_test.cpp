// Unit tests: cycle model (Table IV), memory model, AHM timing models,
// compute-core task pricing.

#include <gtest/gtest.h>

#include "sim/compute_core.hpp"
#include "sim/cycle_model.hpp"
#include "sim/format_transform.hpp"
#include "sim/layout_transform.hpp"
#include "sim/memory_model.hpp"
#include "sim/sparsity_profiler.hpp"

namespace dynasparse {
namespace {

TEST(CycleModelTest, TableIVFormulas) {
  CycleModel cm(16);
  PairShape s{512, 512, 128, 0.25, 0.8};
  double mnd = 512.0 * 512.0 * 128.0;
  EXPECT_DOUBLE_EQ(cm.gemm_cycles(s), mnd / 256.0);
  EXPECT_DOUBLE_EQ(cm.spdmm_cycles(s, 0.25), 2.0 * 0.25 * mnd / 256.0);
  EXPECT_DOUBLE_EQ(cm.spmm_cycles(s), 0.25 * 0.8 * mnd / 16.0);
}

TEST(CycleModelTest, MacsPerCycle) {
  CycleModel cm(16);
  EXPECT_DOUBLE_EQ(cm.macs_per_cycle(Primitive::kGemm), 256.0);
  EXPECT_DOUBLE_EQ(cm.macs_per_cycle(Primitive::kSpdmm), 128.0);
  EXPECT_DOUBLE_EQ(cm.macs_per_cycle(Primitive::kSpmm), 16.0);
  EXPECT_DOUBLE_EQ(cm.macs_per_cycle(Primitive::kSkip), 0.0);
}

TEST(CycleModelTest, PairCyclesDispatch) {
  CycleModel cm(8);
  PairShape s{8, 8, 8, 0.5, 0.5};
  EXPECT_DOUBLE_EQ(cm.pair_cycles(Primitive::kSkip, s, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(cm.pair_cycles(Primitive::kGemm, s, 0.5), cm.gemm_cycles(s));
  EXPECT_DOUBLE_EQ(cm.pair_cycles(Primitive::kSpdmm, s, 0.3), cm.spdmm_cycles(s, 0.3));
  EXPECT_DOUBLE_EQ(cm.pair_cycles(Primitive::kSpmm, s, 0.5), cm.spmm_cycles(s));
}

TEST(CycleModelTest, CrossoverAtHalfDensity) {
  // At amin = 1/2 GEMM and SpDMM cost the same; below, SpDMM wins.
  CycleModel cm(16);
  PairShape s{64, 64, 64, 0.5, 1.0};
  EXPECT_DOUBLE_EQ(cm.gemm_cycles(s), cm.spdmm_cycles(s, 0.5));
  EXPECT_LT(cm.spdmm_cycles(s, 0.49), cm.gemm_cycles(s));
}

TEST(CycleModelTest, CrossoverAtTwoOverPsys) {
  // At amax = 2/psys (with the sparse operand in BufferU at amin), SpDMM
  // and SPMM tie: 2*amin*mnd/psys^2 == amin*(2/psys)*mnd/psys.
  CycleModel cm(16);
  double amin = 0.1, amax = 2.0 / 16.0;
  PairShape s{64, 64, 64, amin, amax};
  EXPECT_NEAR(cm.spdmm_cycles(s, amin), cm.spmm_cycles(s), 1e-9);
}

TEST(CycleModelTest, InvalidPsysThrows) {
  EXPECT_THROW(CycleModel(0), std::invalid_argument);
}

TEST(MemoryModelTest, RatesFromConfig) {
  SimConfig cfg = u250_config();
  MemoryModel mm(cfg);
  EXPECT_NEAR(mm.bytes_per_cycle_total(), 308.0, 1e-9);
  EXPECT_NEAR(mm.bytes_per_cycle_per_core(), 308.0 / 7.0, 1e-9);
  EXPECT_NEAR(mm.core_transfer_cycles(4400), 4400.0 / (308.0 / 7.0), 1e-6);
}

TEST(SparsityProfilerTest, StreamCycles) {
  EXPECT_DOUBLE_EQ(profile_stream_cycles(0, 16), 0.0);
  EXPECT_DOUBLE_EQ(profile_stream_cycles(160, 16), 10.0 + 4.0);
  EXPECT_DOUBLE_EQ(profile_stream_cycles(161, 16), 11.0 + 4.0);
  EXPECT_THROW(profile_stream_cycles(10, 0), std::invalid_argument);
}

TEST(FormatTransformTest, D2SAndS2DThroughput) {
  // n elements/cycle + log(n) pipeline stages (paper Fig. 8: a D2S of
  // n = 16 matches one DDR4 channel).
  EXPECT_DOUBLE_EQ(d2s_cycles(1600, 16), 100.0 + 4.0);
  EXPECT_DOUBLE_EQ(s2d_cycles(1600, 16), 100.0 + 4.0);
  EXPECT_DOUBLE_EQ(d2s_cycles(0, 16), 0.0);
}

TEST(LayoutTransformTest, StreamingPermutationCost) {
  double c = layout_transform_cycles(32, 32, 16);
  EXPECT_DOUBLE_EQ(c, 1024.0 / 16.0 + 8.0);
  EXPECT_DOUBLE_EQ(layout_transform_cycles(0, 16, 16), 0.0);
}

TEST(ComputeCoreTest, ComputeBoundTask) {
  SimConfig cfg = u250_config();
  ComputeCoreModel core(cfg);
  // One dense GEMM pair, tiny loads: compute dominates.
  PairWork w;
  w.shape = PairShape{512, 512, 512, 1.0, 1.0};
  w.prim = Primitive::kGemm;
  w.load_bytes = 100;
  TaskTiming t = core.time_task({w}, 100, 512 * 512, /*hide_ahm=*/true);
  EXPECT_DOUBLE_EQ(t.compute_cycles, 512.0 * 512.0 * 512.0 / 256.0);
  EXPECT_DOUBLE_EQ(t.total_cycles, t.compute_cycles);
  EXPECT_GT(t.compute_cycles, t.memory_cycles);
}

TEST(ComputeCoreTest, MemoryBoundTask) {
  SimConfig cfg = u250_config();
  ComputeCoreModel core(cfg);
  // Tiny compute, huge transfer: memory dominates.
  PairWork w;
  w.shape = PairShape{16, 16, 16, 0.01, 0.01};
  w.prim = Primitive::kSpmm;
  w.load_bytes = 10'000'000;
  TaskTiming t = core.time_task({w}, 0, 16 * 16, true);
  EXPECT_GT(t.memory_cycles, t.compute_cycles);
  EXPECT_DOUBLE_EQ(t.total_cycles, t.memory_cycles);
}

TEST(ComputeCoreTest, SkippedPairsAreFree) {
  SimConfig cfg = u250_config();
  ComputeCoreModel core(cfg);
  PairWork skip;
  skip.shape = PairShape{512, 512, 512, 0.0, 1.0};
  skip.prim = Primitive::kSkip;
  skip.load_bytes = 999999;  // must not be counted
  TaskTiming t = core.time_task({skip, skip}, 0, 0, true);
  EXPECT_DOUBLE_EQ(t.compute_cycles, 0.0);
  EXPECT_DOUBLE_EQ(t.memory_cycles, 0.0);
  EXPECT_EQ(t.skipped_pairs, 2);
}

TEST(ComputeCoreTest, ModeSwitchCharged) {
  SimConfig cfg = u250_config();
  ComputeCoreModel core(cfg);
  PairWork g, s;
  g.shape = PairShape{16, 16, 16, 1.0, 1.0};
  g.prim = Primitive::kGemm;
  s.shape = PairShape{16, 16, 16, 0.1, 1.0};
  s.prim = Primitive::kSpdmm;
  s.alpha_spdmm = 0.1;
  TaskTiming same = core.time_task({g, g, g}, 0, 0, true);
  EXPECT_EQ(same.mode_switches, 0);
  TaskTiming alt = core.time_task({g, s, g}, 0, 0, true);
  EXPECT_EQ(alt.mode_switches, 2);
  EXPECT_DOUBLE_EQ(alt.compute_cycles,
                   2 * core.cycles().gemm_cycles(g.shape) +
                       core.cycles().spdmm_cycles(s.shape, 0.1) + 2.0);
}

TEST(ComputeCoreTest, AhmHiddenVsExposed) {
  SimConfig cfg = u250_config();
  ComputeCoreModel core(cfg);
  PairWork w;
  w.shape = PairShape{64, 64, 64, 1.0, 1.0};
  w.prim = Primitive::kGemm;
  w.load_bytes = 64 * 64 * 8;
  w.ahm_cycles = 500.0;
  TaskTiming hidden = core.time_task({w}, 1000, 64 * 64, true);
  TaskTiming exposed = core.time_task({w}, 1000, 64 * 64, false);
  EXPECT_GT(exposed.total_cycles, hidden.total_cycles);
  EXPECT_DOUBLE_EQ(exposed.total_cycles,
                   exposed.compute_cycles + exposed.memory_cycles + exposed.ahm_cycles);
}

TEST(ComputeCoreTest, ProfilerAlwaysAccounted) {
  SimConfig cfg = u250_config();
  ComputeCoreModel core(cfg);
  TaskTiming t = core.time_task({}, 0, 256, true);
  EXPECT_GT(t.ahm_cycles, 0.0);  // result stream profiling
}

}  // namespace
}  // namespace dynasparse
