// Cross-configuration property sweeps of the whole engine: invariants
// that must hold for any sane hardware configuration — functional results
// never depend on the config, compute work scales with ALU width, more
// cores never hurt, and every strategy agrees numerically.

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "model/reference.hpp"

namespace dynasparse {
namespace {

Dataset sweep_dataset(std::uint64_t seed = 21) {
  DatasetSpec spec;
  spec.name = "sweep";
  spec.tag = "SW";
  spec.vertices = 260;
  spec.edges = 1100;
  spec.feature_dim = 40;
  spec.num_classes = 5;
  spec.h0_density = 0.15;
  spec.hidden_dim = 12;
  return generate_dataset(spec, 1, seed);
}

class ConfigSweep
    : public ::testing::TestWithParam<std::tuple<GnnModelKind, int, int>> {};

TEST_P(ConfigSweep, FunctionalResultIndependentOfHardwareConfig) {
  auto [kind, psys, cores] = GetParam();
  Dataset ds = sweep_dataset();
  Rng rng(22);
  GnnModel m = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                           ds.spec.num_classes, rng);
  DenseMatrix expect = reference_output(m, ds.graph, ds.features);

  EngineOptions opt;
  opt.config.psys = psys;
  opt.config.num_cores = cores;
  InferenceReport rep = run_inference(m, ds, opt);
  EXPECT_EQ(DenseMatrix::max_abs_diff(rep.execution.output.to_dense(), expect), 0.0f)
      << model_kind_name(kind) << " psys=" << psys << " cores=" << cores;
  EXPECT_GT(rep.latency_ms, 0.0);
}

TEST_P(ConfigSweep, StrategiesAgreeNumericallyUnderEveryConfig) {
  auto [kind, psys, cores] = GetParam();
  Dataset ds = sweep_dataset(23);
  Rng rng(24);
  GnnModel m = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                           ds.spec.num_classes, rng);
  EngineOptions opt;
  opt.config.psys = psys;
  opt.config.num_cores = cores;
  CompiledProgram prog = compile(m, ds, opt.config);
  RuntimeOptions r1, r2;
  r1.strategy = MappingStrategy::kStatic1;
  r2.strategy = MappingStrategy::kDynamic;
  DenseMatrix a = execute(prog, r1).output.to_dense();
  DenseMatrix b = execute(prog, r2).output.to_dense();
  EXPECT_EQ(DenseMatrix::max_abs_diff(a, b), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    HardwareGrid, ConfigSweep,
    ::testing::Combine(::testing::Values(GnnModelKind::kGcn, GnnModelKind::kSage,
                                         GnnModelKind::kGin, GnnModelKind::kSgc),
                       ::testing::Values(8, 16),
                       ::testing::Values(1, 7)));

TEST(ConfigScalingTest, MoreCoresNeverSlower) {
  Dataset ds = sweep_dataset(25);
  Rng rng(26);
  GnnModel m = build_model(GnnModelKind::kGcn, ds.spec.feature_dim,
                           ds.spec.hidden_dim, ds.spec.num_classes, rng);
  double prev = 1e300;
  for (int cores : {1, 2, 4, 7, 14}) {
    EngineOptions opt;
    opt.config.num_cores = cores;
    // Same compiled tiling across the sweep would be ideal, but the
    // planner reacts to core count; the invariant still holds because
    // both the bandwidth share and the parallelism scale together.
    InferenceReport rep = run_inference(m, ds, opt);
    EXPECT_LE(rep.execution.exec_cycles, prev * 1.05) << cores << " cores";
    prev = rep.execution.exec_cycles;
  }
}

TEST(ConfigScalingTest, NarrowerAluStrictlyMoreComputeCycles) {
  Dataset ds = sweep_dataset(27);
  Rng rng(28);
  GnnModel m = build_model(GnnModelKind::kGin, ds.spec.feature_dim,
                           ds.spec.hidden_dim, ds.spec.num_classes, rng);
  double prev_compute = 0.0;
  for (int psys : {32, 16, 8}) {
    EngineOptions opt;
    opt.config.psys = psys;
    InferenceReport rep = run_inference(m, ds, opt);
    EXPECT_GT(rep.execution.stats.compute_cycles, prev_compute) << "psys=" << psys;
    prev_compute = rep.execution.stats.compute_cycles;
  }
}

TEST(ConfigScalingTest, BandwidthScalesMemoryCycles) {
  Dataset ds = sweep_dataset(29);
  Rng rng(30);
  GnnModel m = build_model(GnnModelKind::kGcn, ds.spec.feature_dim,
                           ds.spec.hidden_dim, ds.spec.num_classes, rng);
  EngineOptions slow, fast;
  slow.config.ddr_bandwidth_bytes_per_s = 77.0e9 / 4.0;
  fast.config.ddr_bandwidth_bytes_per_s = 77.0e9 * 4.0;
  double mem_slow = run_inference(m, ds, slow).execution.stats.memory_cycles;
  double mem_fast = run_inference(m, ds, fast).execution.stats.memory_cycles;
  EXPECT_NEAR(mem_slow / mem_fast, 16.0, 0.01);  // linear in 1/BW
}

TEST(ConfigScalingTest, DatasetScaleShrinksWork) {
  DatasetSpec spec = dataset_by_tag("PU");
  Rng rng(31);
  double prev = 1e300;
  for (int scale : {4, 2, 1}) {
    Dataset ds = generate_dataset(spec, scale, 32);
    GnnModel m = build_model(GnnModelKind::kGcn, ds.spec.feature_dim,
                             ds.spec.hidden_dim, ds.spec.num_classes, rng);
    InferenceReport rep = run_inference(m, ds, {});
    // Larger graphs (smaller scale divisor) -> strictly more cycles.
    EXPECT_LT(rep.execution.exec_cycles, prev * 1e9);  // sanity bound
    if (prev < 1e299) {
      EXPECT_GT(rep.execution.exec_cycles, prev);
    }
    prev = rep.execution.exec_cycles;
  }
}

}  // namespace
}  // namespace dynasparse
