// Chaos tests: the service under deterministic fault injection
// (util/fault_injection.hpp). Each scenario arms one or more sites and
// asserts the robustness contract:
//
//   - no hangs, no crashes: every submitted id resolves through wait();
//   - typed errors only: a non-completed request surfaces as exactly one
//     of CancelledError / DeadlineExceededError / AdmissionRejectedError
//     / ExecutionError — wait()'s closed throw-set survives chaos;
//   - graceful degradation: optional tiers (the plan store's disk tier)
//     absorb their faults and fall back to the cold path, counting
//     disk_errors, instead of failing requests;
//   - determinism under chaos: a request that completes returns a report
//     bit-identical to a fault-free run (references computed under
//     FaultPauseScope), and a chaos run reproduces from its seed.
//
// The injector is process-global (DYNASPARSE_FAULT_SPEC / the service's
// fault_spec option both arm it), so every test disarms on exit.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "service/inference_service.hpp"
#include "service/request_stream.hpp"
#include "util/fault_injection.hpp"

namespace dynasparse {
namespace {

/// Small synthetic dataset so each request costs milliseconds.
Dataset chaos_dataset(std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "chaos";
  spec.tag = "CH" + std::to_string(seed % 100);
  spec.vertices = 150;
  spec.edges = 600;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  spec.h0_density = 0.3;
  spec.hidden_dim = 8;
  spec.degree_skew = 0.5;
  return generate_dataset(spec, 1, seed);
}

ServiceRequest chaos_request(std::uint64_t seed, GnnModelKind kind) {
  Dataset ds = chaos_dataset(seed);
  Rng rng(seed + 1);
  GnnModel model = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                               ds.spec.num_classes, rng);
  return ServiceRequest::own(std::move(model), std::move(ds));
}

/// Fault-free reference fingerprint, computed with injection suspended so
/// it can run in the middle of an armed chaos test.
std::uint64_t reference_fingerprint(const ServiceRequest& req) {
  FaultPauseScope pause;
  CompiledProgram prog = compile(*req.model, *req.dataset, req.options.config);
  InferenceReport rep = run_compiled(prog, req.options.runtime);
  rep.dataset_tag = req.dataset->spec.tag;  // the service stamps this too
  return rep.deterministic_fingerprint();
}

/// RAII disarm so a failing assertion can't leak an armed injector into
/// the next test in this binary.
struct DisarmGuard {
  ~DisarmGuard() { FaultInjector::global().disarm(); }
};

std::string fresh_dir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "chaos_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(ChaosTest, PlanStoreDiskFaultsDegradeWithoutFailingRequests) {
  DisarmGuard guard;
  // Every disk read AND write fails. The disk tier is optional by
  // contract: requests must still complete (cold path), bit-identical,
  // with disk_errors counting every absorbed fault.
  // References first, while the injector is still unarmed (the service
  // constructor arms it from fault_spec).
  std::vector<std::pair<ServiceRequest, std::uint64_t>> work;
  for (std::uint64_t seed : {201, 202, 203, 204})
    for (GnnModelKind kind : {GnnModelKind::kGcn, GnnModelKind::kSage}) {
      ServiceRequest req = chaos_request(seed, kind);
      std::uint64_t fp = reference_fingerprint(req);
      work.emplace_back(std::move(req), fp);
    }

  ServiceOptions opts;
  opts.workers = 2;
  opts.cache_capacity = 2;  // small: force evictions + recompiles
  opts.plan_store_capacity = 8;
  opts.plan_store_dir = fresh_dir("disk_faults");
  opts.fault_spec = "plan_store.disk_read:1,plan_store.disk_write:1";
  InferenceService service(opts);

  std::map<RequestId, std::uint64_t> expect;
  std::vector<RequestId> ids;
  for (auto& [req, fp] : work) {
    RequestId id = service.submit(req);
    ids.push_back(id);
    expect[id] = fp;
  }
  for (RequestId id : ids) {
    InferenceReport rep;
    ASSERT_NO_THROW(rep = service.wait(id)) << "disk faults must degrade";
    EXPECT_EQ(rep.deterministic_fingerprint(), expect[id]);
  }
  PlanStoreStats pss = service.plan_store_stats();
  EXPECT_GT(pss.disk_errors, 0);  // the degradation was exercised, not idle
  EXPECT_EQ(pss.disk_hits, 0);    // nothing was ever trusted from disk
  FaultSiteStats w =
      FaultInjector::global().site_stats(kFaultPlanStoreDiskWrite);
  EXPECT_GT(w.injected, 0);
}

TEST(ChaosTest, CompileAllocFaultIsTypedAndCountBounded) {
  DisarmGuard guard;
  // compile.alloc at probability 1 with a budget of 2: the first two
  // compile attempts throw bad_alloc (surfacing as ExecutionError — a
  // real failure, not degradable), later attempts succeed and stay
  // bit-identical. The count budget is what lets one spec cover both the
  // failing and the recovered phase deterministically.
  ServiceRequest req = chaos_request(211, GnnModelKind::kGcn);
  const std::uint64_t fp = reference_fingerprint(req);

  ServiceOptions opts;
  opts.workers = 1;  // serialize: the count budget maps 1:1 onto requests
  opts.cache_capacity = 4;
  opts.fault_spec = "compile.alloc:1:2";
  InferenceService service(opts);

  EXPECT_THROW((void)service.wait(service.submit(req)), ExecutionError);
  EXPECT_THROW((void)service.wait(service.submit(req)), ExecutionError);
  InferenceReport rep;
  ASSERT_NO_THROW(rep = service.wait(service.submit(req)));
  EXPECT_EQ(rep.deterministic_fingerprint(), fp);
  EXPECT_EQ(service.robustness_stats().execution_failures, 2);
  // The failed compiles were not cached as poison: the success above
  // re-ran the factory (erase-before-publish in keyed_future_cache).
  EXPECT_EQ(service.cache_stats().misses, 3);
}

TEST(ChaosTest, KernelFaultsAreIsolatedPerRequest) {
  DisarmGuard guard;
  // runtime.kernel_fault fires per *kernel*, so even a small per-draw
  // probability kills a meaningful fraction of requests. Each failure
  // must be isolated to its own request — neighbors complete
  // bit-identically — and be typed as ExecutionError.
  std::vector<std::pair<ServiceRequest, std::uint64_t>> work;
  for (int i = 0; i < 12; ++i) {
    ServiceRequest req =
        chaos_request(221 + static_cast<std::uint64_t>(i % 3),
                      i % 2 == 0 ? GnnModelKind::kGcn : GnnModelKind::kSgc);
    std::uint64_t fp = reference_fingerprint(req);
    work.emplace_back(std::move(req), fp);
  }

  ServiceOptions opts;
  opts.workers = 2;
  opts.cache_capacity = 8;
  opts.fault_spec = "runtime.kernel_fault:0.05,seed:17";
  InferenceService service(opts);

  std::map<RequestId, std::uint64_t> expect;
  std::vector<RequestId> ids;
  for (auto& [req, fp] : work) {
    RequestId id = service.submit(req);
    ids.push_back(id);
    expect[id] = fp;
  }
  int completed = 0, failed = 0;
  for (RequestId id : ids) {
    try {
      InferenceReport rep = service.wait(id);
      EXPECT_EQ(rep.deterministic_fingerprint(), expect[id]);
      ++completed;
    } catch (const ExecutionError& e) {
      EXPECT_NE(std::string(e.what()).find("injected kernel fault"),
                std::string::npos);
      ++failed;
    }
  }
  EXPECT_EQ(completed + failed, static_cast<int>(ids.size()));
  EXPECT_EQ(service.robustness_stats().execution_failures, failed);
  // Both outcomes occur under this seed (deterministic draw sequence).
  EXPECT_GT(failed, 0);
  EXPECT_GT(completed, 0);
}

/// Fusion-compatible roster for the batching chaos scenarios: one
/// dataset content (equal BatchKey) with a different weight draw per
/// member, so the members fuse yet carry distinct CompileKeys.
std::vector<std::pair<ServiceRequest, std::uint64_t>> fusion_roster(
    std::size_t n, std::uint64_t dataset_seed) {
  std::vector<std::pair<ServiceRequest, std::uint64_t>> work;
  for (std::size_t i = 0; i < n; ++i) {
    Dataset ds = chaos_dataset(dataset_seed);
    Rng rng(5000 + 17 * i);
    GnnModel model = build_model(GnnModelKind::kGcn, ds.spec.feature_dim,
                                 ds.spec.hidden_dim, ds.spec.num_classes, rng);
    model.name += "#" + std::to_string(i);
    ServiceRequest req = ServiceRequest::own(std::move(model), std::move(ds));
    std::uint64_t fp = reference_fingerprint(req);
    work.emplace_back(std::move(req), fp);
  }
  return work;
}

TEST(ChaosTest, KernelFaultsInsideFusedBatchesStayMemberIsolated) {
  DisarmGuard guard;
  // runtime.kernel_fault + queue.delay against a *batching* service: the
  // fault draw lands on one member of a fused batch (the per-member draw
  // happens at each member's kernel boundary, exactly as solo), and must
  // fail only that member — surviving batchmates complete bit-identical
  // to their fault-free references, and every failure is typed
  // ExecutionError. queue.delay stalls whole batches, exercising the
  // collect path under injected latency.
  std::vector<std::pair<ServiceRequest, std::uint64_t>> work =
      fusion_roster(16, 321);

  ServiceOptions opts;
  opts.workers = 2;
  opts.cache_capacity = 16;
  opts.batch_window_us = 2'000'000;  // backstop; the K cutoff releases
  opts.max_batch_size = 4;
  opts.fault_spec = "runtime.kernel_fault:0.05,queue.delay:0.25,seed:17";
  InferenceService service(opts);

  std::map<RequestId, std::uint64_t> expect;
  std::vector<RequestId> ids;
  for (auto& [req, fp] : work) {
    RequestId id = service.submit(req);
    ids.push_back(id);
    expect[id] = fp;
  }
  int completed = 0, failed = 0;
  for (RequestId id : ids) {
    try {
      InferenceReport rep = service.wait(id);
      EXPECT_EQ(rep.deterministic_fingerprint(), expect[id])
          << "a surviving batchmate must stay bit-identical";
      ++completed;
    } catch (const ExecutionError& e) {
      EXPECT_NE(std::string(e.what()).find("injected kernel fault"),
                std::string::npos);
      ++failed;
    }
  }
  EXPECT_EQ(completed + failed, static_cast<int>(ids.size()));
  EXPECT_EQ(service.robustness_stats().execution_failures, failed);
  EXPECT_GT(failed, 0);
  EXPECT_GT(completed, 0);
  // Batching must actually have been in play for the isolation claim to
  // mean anything.
  EXPECT_GT(service.batch_stats().fused_requests, 0);
  service.shutdown();
}

TEST(ChaosTest, BatchedChaosRunReproducesFromItsSeed) {
  DisarmGuard guard;
  // One worker + one deterministic batch membership (a single group
  // released by its K cutoff) => the per-member fault draws happen in
  // member order, so the same spec reproduces the same outcome vector.
  auto run_once = [&] {
    ServiceOptions opts;
    opts.workers = 1;
    opts.cache_capacity = 0;  // every member compiles: no cross-run state
    opts.batch_window_us = 2'000'000;
    opts.max_batch_size = 8;
    opts.fault_spec = "runtime.kernel_fault:0.08,seed:29";
    InferenceService service(opts);
    std::vector<std::pair<ServiceRequest, std::uint64_t>> work =
        fusion_roster(8, 322);
    std::vector<RequestId> ids;
    for (auto& [req, fp] : work) ids.push_back(service.submit(req));
    std::vector<bool> ok;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      try {
        InferenceReport rep = service.wait(ids[i]);
        EXPECT_EQ(rep.deterministic_fingerprint(), work[i].second);
        ok.push_back(true);
      } catch (const ExecutionError&) {
        ok.push_back(false);
      }
    }
    EXPECT_EQ(service.batch_stats().fused_requests, 8);
    service.shutdown();
    return ok;
  };
  std::vector<bool> first = run_once();
  std::vector<bool> second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

TEST(ChaosTest, EverySiteArmedMixedStreamKeepsTheContract) {
  DisarmGuard guard;
  // The full chaos mix: every known site armed at 0.3 over a mixed
  // stream with memoization, plan store, bounded queue, and deadlines in
  // play. The service must neither hang nor crash; every id resolves as
  // a completed bit-identical report or one typed error.
  std::string spec;
  for (const std::string& site : fault_site_names())
    spec += site + ":0.3,";
  spec += "seed:23";

  // References first (injector unarmed until the service constructor).
  // Deadlines generous enough that they only fire when queue.delay
  // stalls pile up — the expiry path under chaos, not a guaranteed kill.
  std::vector<StreamRequestSpec> stream = synthetic_stream(36, 2023);
  std::vector<std::pair<ServiceRequest, std::uint64_t>> work;
  for (std::size_t i = 0; i < stream.size(); ++i) {
    ServiceRequest req = materialize_request(stream[i]);
    if (i % 3 == 0) req.deadline_ms = 200;
    std::uint64_t fp = reference_fingerprint(req);
    work.emplace_back(std::move(req), fp);
  }

  ServiceOptions opts;
  opts.workers = 4;
  opts.cache_capacity = 4;
  opts.result_cache_capacity = 8;
  opts.plan_store_capacity = 8;
  opts.plan_store_dir = fresh_dir("mixed");
  opts.max_queue_depth = 16;
  opts.admission = AdmissionPolicy::kReject;
  opts.fault_spec = spec;
  InferenceService service(opts);

  std::map<RequestId, std::uint64_t> expect;
  std::vector<RequestId> ids;
  for (auto& [req, fp] : work) {
    RequestId id = service.submit(req);
    ids.push_back(id);
    expect[id] = fp;
  }

  int completed = 0, cancelled = 0, expired = 0, rejected = 0, failed = 0;
  for (RequestId id : ids) {
    try {
      InferenceReport rep = service.wait(id);
      EXPECT_EQ(rep.deterministic_fingerprint(), expect[id])
          << "chaos must never corrupt a completed result";
      ++completed;
    } catch (const DeadlineExceededError&) {
      ++expired;
    } catch (const CancelledError&) {
      ++cancelled;
    } catch (const AdmissionRejectedError&) {
      ++rejected;
    } catch (const ExecutionError&) {
      ++failed;
    }
    // Anything else escapes and fails the test: the taxonomy is closed.
  }
  EXPECT_EQ(completed + cancelled + expired + rejected + failed,
            static_cast<int>(ids.size()));
  // The chaos actually happened: sites were evaluated...
  std::int64_t evaluations = 0, injected = 0;
  for (const auto& [site, st] : FaultInjector::global().all_stats()) {
    evaluations += st.evaluations;
    injected += st.injected;
  }
  EXPECT_GT(evaluations, 0);
  EXPECT_GT(injected, 0);
  // No `completed > 0` assertion on the storm itself: with every site at
  // 0.3 a request's survival odds are (1 - 0.3)^kernels per attempt, and
  // under sanitizer slowdown the 200ms deadlines expire the rest — zero
  // completions is a legitimate outcome, not a service defect. Liveness
  // is asserted deterministically below instead.

  // The service survives the storm: with injection paused, a fresh
  // request completes normally.
  {
    FaultPauseScope pause;
    ServiceRequest fresh = chaos_request(231, GnnModelKind::kGcn);
    std::uint64_t fp = reference_fingerprint(fresh);
    InferenceReport rep;
    ASSERT_NO_THROW(rep = service.wait(service.submit(fresh)));
    EXPECT_EQ(rep.deterministic_fingerprint(), fp);
  }
}

TEST(ChaosTest, NetFaultsKillConnectionsNotTheContract) {
  DisarmGuard guard;
  // net.accept drops fresh connections at the door, net.read kills
  // established ones mid-conversation. Clients observe transport
  // failures (NetError) — never malformed frames — and every response
  // that does arrive is bit-identical to a fault-free run or one typed
  // wire error. The server itself must survive arbitrarily many dead
  // connections.
  const std::vector<StreamRequestSpec> specs = {
      [] { StreamRequestSpec s; s.dataset = "CI"; s.seed = 61; return s; }(),
      [] { StreamRequestSpec s; s.dataset = "CO"; s.seed = 62; return s; }(),
      [] { StreamRequestSpec s; s.dataset = "PU"; s.seed = 63; return s; }(),
  };
  // References before arming: the same content through run_batch.
  std::map<std::string, std::uint64_t> expect;
  {
    InferenceService local(ServiceOptions{});
    std::vector<ServiceRequest> reqs;
    for (const StreamRequestSpec& s : specs) reqs.push_back(materialize_request(s));
    std::vector<InferenceReport> reps = local.run_batch(std::move(reqs));
    for (std::size_t i = 0; i < specs.size(); ++i)
      expect[specs[i].to_line()] = reps[i].deterministic_fingerprint();
  }

  InferenceService service(ServiceOptions{});
  NetServer server(service);
  server.start();
  FaultInjector::global().arm(
      parse_fault_spec("net.accept:0.25,net.read:0.15,seed:31"));

  constexpr int kClients = 3, kRounds = 6;
  std::atomic<int> completed{0}, transport_failures{0}, wire_errors{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&] {
      for (int round = 0; round < kRounds; ++round) {
        const StreamRequestSpec& spec =
            specs[static_cast<std::size_t>(round) % specs.size()];
        try {
          NetClient client("127.0.0.1", server.port(), 15000);
          NetClient::Outcome out = client.await(client.submit(spec));
          if (out.ok) {
            if (out.result.fingerprint != expect[spec.to_line()])
              ++mismatches;
            ++completed;
          } else {
            ++wire_errors;  // typed — decode_error validated the code
          }
        } catch (const NetError&) {
          ++transport_failures;  // the chaos did its job; try again
        }
        // WireProtocolError or an unexpected exception type escapes the
        // thread and aborts the test: chaos must never corrupt framing.
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(mismatches, 0) << "a surviving response was not bit-identical";
  EXPECT_EQ(completed + transport_failures + wire_errors, kClients * kRounds);
  // The storm actually happened, through both sites' own draws.
  const FaultSiteStats accept_stats =
      FaultInjector::global().site_stats(kFaultNetAccept);
  const FaultSiteStats read_stats =
      FaultInjector::global().site_stats(kFaultNetRead);
  EXPECT_GT(accept_stats.evaluations + read_stats.evaluations, 0);
  EXPECT_GT(accept_stats.injected + read_stats.injected, 0)
      << "seed 31 must fire at least once over " << kClients * kRounds
      << " connections";
  EXPECT_GT(completed.load(), 0) << "some connections must survive p=0.25";

  // Dead connections cancelled their in-flight work instead of leaking
  // it; the server and service survive the storm and still serve.
  FaultInjector::global().disarm();
  NetClient fresh("127.0.0.1", server.port());
  NetClient::Outcome out = fresh.await(fresh.submit(specs[0]));
  ASSERT_TRUE(out.ok);
  EXPECT_EQ(out.result.fingerprint, expect[specs[0].to_line()]);
  server.stop();
  service.shutdown();
}

TEST(ChaosTest, NetAcceptChaosReproducesFromItsSeed) {
  DisarmGuard guard;
  // One sequential client, one accept per connection attempt: the k-th
  // connection lives or dies by the k-th net.accept draw, which the
  // per-site seeded RNG fixes. Same seed, same kill pattern.
  InferenceService service(ServiceOptions{});
  NetServer server(service);
  server.start();
  StreamRequestSpec spec;
  spec.dataset = "CI";
  spec.seed = 71;

  auto run_once = [&] {
    // arm() resets the site RNGs: each run replays the same draws.
    FaultInjector::global().arm(parse_fault_spec("net.accept:0.5,seed:13"));
    std::vector<bool> survived;
    for (int i = 0; i < 10; ++i) {
      try {
        NetClient client("127.0.0.1", server.port());
        survived.push_back(client.await(client.submit(spec)).ok);
      } catch (const NetError&) {
        survived.push_back(false);
      }
    }
    return survived;
  };
  std::vector<bool> first = run_once();
  std::vector<bool> second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
  server.stop();
}

TEST(ChaosTest, ChaosRunReproducesFromItsSeed) {
  DisarmGuard guard;
  // Same spec + same single-worker request sequence => the same
  // per-request outcome sequence, by the per-site seeded RNG contract.
  auto run_once = [&] {
    ServiceOptions opts;
    opts.workers = 1;  // serialize so draws map 1:1 onto requests
    opts.cache_capacity = 0;  // no caching: every request compiles + runs
    opts.fault_spec = "runtime.kernel_fault:0.05,seed:5";
    InferenceService service(opts);
    std::vector<bool> ok;
    for (int i = 0; i < 10; ++i) {
      ServiceRequest req = chaos_request(241, GnnModelKind::kSgc);
      try {
        (void)service.wait(service.submit(req));
        ok.push_back(true);
      } catch (const ExecutionError&) {
        ok.push_back(false);
      }
    }
    return ok;
  };
  std::vector<bool> first = run_once();
  std::vector<bool> second = run_once();
  EXPECT_EQ(first, second);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), false), 0);
}

}  // namespace
}  // namespace dynasparse
