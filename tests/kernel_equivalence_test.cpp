// Regression tests: the optimized row-span/CSR kernels (matrix_ops.hpp)
// must reproduce the frozen seed kernels (matrix_ops_ref.hpp) exactly.
//
// The optimized kernels keep the seed's k-ordered accumulation, so for the
// matrix_ops family the contract is bit-identical output (memcmp). The
// tile-product fast path (accumulate_product with kSum) additionally drops
// the generic path's skip of zero-valued *products*; adding exact 0.0f
// terms can only flip the sign of a zero output, so there the contract is
// IEEE equality (==), which the engine-level tests (max_abs_diff == 0)
// also rely on.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "matrix/format_convert.hpp"
#include "matrix/matrix_ops.hpp"
#include "matrix/matrix_ops_ref.hpp"
#include "matrix/partitioned_matrix.hpp"
#include "test_helpers.hpp"

namespace dynasparse {
namespace {

using testing::random_coo;
using testing::random_dense;

struct Shape {
  std::int64_t m, n, d;
};

const std::vector<Shape> kShapes = {
    {1, 1, 1}, {7, 5, 3}, {17, 33, 9}, {64, 64, 64}, {31, 2, 57}};
const std::vector<double> kDensities = {0.0, 0.01, 0.3, 1.0};

void expect_bitwise_equal(const DenseMatrix& a, const DenseMatrix& b,
                          const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  ASSERT_EQ(a.layout(), b.layout()) << what;
  EXPECT_EQ(std::memcmp(a.data().data(), b.data().data(),
                        a.data().size() * sizeof(float)),
            0)
      << what << ": output not bit-identical to the seed kernel";
}

TEST(KernelEquivalence, GemmMatchesSeedBitwise) {
  Rng rng(101);
  for (const Shape& s : kShapes)
    for (double dx : kDensities)
      for (Layout lx : {Layout::kRowMajor, Layout::kColMajor})
        for (Layout ly : {Layout::kRowMajor, Layout::kColMajor}) {
          DenseMatrix x = random_dense(s.m, s.n, dx, rng, lx);
          DenseMatrix y = random_dense(s.n, s.d, 0.6, rng, ly);
          expect_bitwise_equal(ref::gemm(x, y), gemm(x, y), "gemm");
        }
}

TEST(KernelEquivalence, SpdmmMatchesSeedBitwise) {
  Rng rng(202);
  for (const Shape& s : kShapes)
    for (double dx : kDensities)
      for (Layout ly : {Layout::kRowMajor, Layout::kColMajor}) {
        CooMatrix x = random_coo(s.m, s.n, dx, rng);
        DenseMatrix y = random_dense(s.n, s.d, 0.8, rng, ly);
        expect_bitwise_equal(ref::spdmm(x, y), spdmm(x, y), "spdmm(coo)");
        // The CSR-first overload iterates the same nonzeros in the same
        // order, so it is bit-identical too.
        expect_bitwise_equal(ref::spdmm(x, y), spdmm(coo_to_csr(x), y),
                             "spdmm(csr)");
      }
}

TEST(KernelEquivalence, SpdmmColMajorOperandMatchesSeed) {
  Rng rng(2021);
  CooMatrix x = random_coo(23, 31, 0.2, rng);
  CooMatrix xc = x.with_layout(Layout::kColMajor);
  DenseMatrix y = random_dense(31, 13, 0.9, rng);
  expect_bitwise_equal(ref::spdmm(xc, y), spdmm(xc, y), "spdmm(col-major coo)");
}

TEST(KernelEquivalence, SpdmmRhsMatchesSeedBitwise) {
  Rng rng(303);
  for (const Shape& s : kShapes)
    for (double dy : kDensities)
      for (Layout lx : {Layout::kRowMajor, Layout::kColMajor}) {
        DenseMatrix x = random_dense(s.m, s.n, 0.8, rng, lx);
        CooMatrix y = random_coo(s.n, s.d, dy, rng);
        expect_bitwise_equal(ref::spdmm_rhs(x, y), spdmm_rhs(x, y), "spdmm_rhs");
      }
}

TEST(KernelEquivalence, SpmmMatchesSeedBitwise) {
  Rng rng(404);
  for (const Shape& s : kShapes)
    for (double dx : kDensities)
      for (double dy : kDensities) {
        CooMatrix x = random_coo(s.m, s.n, dx, rng);
        CooMatrix y = random_coo(s.n, s.d, dy, rng);
        expect_bitwise_equal(ref::spmm(x, y), spmm(x, y), "spmm(coo)");
        expect_bitwise_equal(ref::spmm(x, y), spmm(coo_to_csr(x), coo_to_csr(y)),
                             "spmm(csr)");
      }
}

TEST(KernelEquivalence, CsrSpdmmMatchesSeedBitwise) {
  Rng rng(505);
  CsrMatrix x = dense_to_csr(random_dense(40, 28, 0.15, rng));
  DenseMatrix y = random_dense(28, 19, 0.7, rng);
  expect_bitwise_equal(ref::csr_spdmm(x, y), csr_spdmm(x, y), "csr_spdmm");
}

TEST(KernelEquivalence, AccumulateIntoNonzeroOutputMatchesSeed) {
  // z += x*y with a pre-populated accumulator (the runtime's inner-step
  // accumulation pattern).
  Rng rng(606);
  DenseMatrix x = random_dense(12, 20, 0.4, rng);
  DenseMatrix y = random_dense(20, 8, 0.7, rng);
  DenseMatrix z_ref = random_dense(12, 8, 0.5, rng);
  DenseMatrix z_opt = z_ref;
  ref::gemm_accumulate(x, y, z_ref);
  gemm_accumulate(x, y, z_opt);
  expect_bitwise_equal(z_ref, z_opt, "gemm_accumulate");

  CooMatrix xs = dense_to_coo(x);
  ref::spdmm_accumulate(xs, y, z_ref);
  spdmm_accumulate(xs, y, z_opt);
  expect_bitwise_equal(z_ref, z_opt, "spdmm_accumulate");
}

// ---- tile products (accumulate_product kSum fast path) -------------------

void expect_ieee_equal(const DenseMatrix& a, const DenseMatrix& b, const char* what) {
  ASSERT_TRUE(a.same_shape(b)) << what;
  for (std::int64_t r = 0; r < a.rows(); ++r)
    for (std::int64_t c = 0; c < a.cols(); ++c)
      ASSERT_EQ(a.at(r, c), b.at(r, c)) << what << " at (" << r << "," << c << ")";
}

TEST(KernelEquivalence, TileProductMatchesSeedKernels) {
  Rng rng(707);
  for (double dx : kDensities)
    for (double dy : kDensities) {
      DenseMatrix xd = random_dense(24, 18, dx, rng);
      DenseMatrix yd = random_dense(18, 10, dy, rng);
      // Threshold 1.0 forces COO storage, 0.0 forces dense, so the two
      // tiles per operand hit all four fast paths.
      for (const Tile& x : {Tile::from_dense(xd, 0.0), Tile::from_dense(xd, 1.0)})
        for (const Tile& y : {Tile::from_dense(yd, 0.0), Tile::from_dense(yd, 1.0)}) {
          DenseMatrix z(24, 10);
          accumulate_product(x, y, z);
          expect_ieee_equal(ref::gemm(xd, yd), z, "accumulate_product");
        }
    }
}

TEST(KernelEquivalence, TileProductMaxMinUnchanged) {
  // kMax/kMin keep the generic (zero-product-skipping) semantics.
  Rng rng(808);
  DenseMatrix xd = random_dense(9, 7, 0.5, rng);
  DenseMatrix yd = random_dense(7, 5, 0.5, rng);
  Tile xs = Tile::from_dense(xd, 0.0), ys_t = Tile::from_dense(yd, 0.0);
  Tile xden = Tile::from_dense(xd, 1.0), yden = Tile::from_dense(yd, 1.0);
  for (AccumOp op : {AccumOp::kMax, AccumOp::kMin}) {
    DenseMatrix za(9, 5), zb(9, 5);
    accumulate_product(xden, yden, za, op);
    accumulate_product(xs, ys_t, zb, op);
    expect_ieee_equal(za, zb, "accumulate_product max/min");
  }
}

}  // namespace
}  // namespace dynasparse
