// Golden-report regression layer: frozen InferenceReport values for a
// small fixed-seed dataset/model sweep. Every number the simulator
// produces is deterministic (thread-count-invariant reductions, no FMA
// contraction — see CMakeLists.txt), so regressions in compiler,
// runtime, or cycle-model numerics change these values and fail loudly.
//
// Regenerating after an *intentional* semantics change:
//
//   cd build && DYNASPARSE_GOLDEN_REGEN=1 ./golden_report_test \
//       --gtest_filter='*RegenerateTable*'
//
// prints the kGolden table rows; paste them over the array below and
// explain the semantic change in the commit message. The regeneration
// test is skipped (not run) in normal CI.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "service/inference_service.hpp"
#include "util/strict_parse.hpp"

namespace dynasparse {
namespace {

struct GoldenCase {
  const char* dataset;  // "GA" or "GB"
  GnnModelKind kind;
  double prune;  // weight sparsity applied after build
};

Dataset golden_dataset(const char* tag) {
  DatasetSpec spec;
  spec.name = "golden";
  spec.tag = tag;
  spec.degree_skew = 0.5;
  if (std::string(tag) == "GA") {
    spec.vertices = 140;
    spec.edges = 560;
    spec.feature_dim = 24;
    spec.num_classes = 5;
    spec.h0_density = 0.3;
    spec.hidden_dim = 8;
    return generate_dataset(spec, 1, 17);
  }
  spec.vertices = 96;
  spec.edges = 700;
  spec.feature_dim = 32;
  spec.num_classes = 6;
  spec.h0_density = 0.8;
  spec.hidden_dim = 12;
  spec.degree_skew = 0.2;
  return generate_dataset(spec, 1, 18);
}

const std::vector<GoldenCase>& golden_cases() {
  static const std::vector<GoldenCase> cases = [] {
    std::vector<GoldenCase> c;
    for (const char* tag : {"GA", "GB"})
      for (GnnModelKind kind : paper_models()) c.push_back({tag, kind, 0.0});
    // Pruned variants exercise the skip/SpDMM paths.
    c.push_back({"GA", GnnModelKind::kGcn, 0.9});
    c.push_back({"GB", GnnModelKind::kSage, 0.9});
    return c;
  }();
  return cases;
}

std::pair<GnnModel, Dataset> case_inputs(const GoldenCase& gc) {
  Dataset ds = golden_dataset(gc.dataset);
  Rng rng(19);
  GnnModel model = build_model(gc.kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                               ds.spec.num_classes, rng);
  if (gc.prune > 0.0) prune_model(model, gc.prune);
  return {std::move(model), std::move(ds)};
}

InferenceReport run_case(const GoldenCase& gc) {
  auto [model, ds] = case_inputs(gc);
  CompiledProgram prog = compile(model, ds, u250_config());
  InferenceReport rep = run_compiled(prog, {});
  rep.dataset_tag = ds.spec.tag;
  return rep;
}

/// One frozen row. exec_cycles / output_nnz / the count fields are the
/// human-readable headline; the fingerprint freezes *every* deterministic
/// report field (per-kernel stats included — see
/// InferenceReport::deterministic_fingerprint).
struct GoldenRow {
  double exec_cycles;
  std::int64_t tasks;
  std::int64_t pairs;
  std::int64_t pairs_skipped;
  std::int64_t output_nnz;
  std::uint64_t fingerprint;
};

// ---- FROZEN VALUES (regenerate per the header instructions) -------------
const GoldenRow kGolden[] = {
    {187.45941558441558, 4, 4, 0, 700, 16800478736757906918ull},
    {371.09577922077921, 6, 6, 0, 700, 10103832946394064924ull},
    {368.70616883116878, 6, 6, 0, 700, 16639488805932621039ull},
    {326.25, 3, 3, 0, 700, 15169635246044369835ull},
    {287.28713474025972, 4, 4, 0, 576, 13114206613529425919ull},
    {579.00162337662346, 6, 6, 0, 576, 6302265072700702757ull},
    {493.37134740259739, 6, 6, 0, 576, 9420044341221884149ull},
    {467, 3, 3, 0, 576, 5870711459366799160ull},
    {174.37662337662337, 4, 4, 0, 244, 6641300682132939922ull},
    {398.72889610389609, 6, 6, 0, 576, 14183135782468712611ull},
};
// -------------------------------------------------------------------------

void print_row(const InferenceReport& rep) {
  std::printf("    {%.17g, %lld, %lld, %lld, %lld, %lluull},\n",
              rep.execution.exec_cycles,
              static_cast<long long>(rep.execution.stats.tasks),
              static_cast<long long>(rep.execution.stats.pairs),
              static_cast<long long>(rep.execution.stats.pairs_skipped),
              static_cast<long long>(rep.execution.output.total_nnz()),
              static_cast<unsigned long long>(rep.deterministic_fingerprint()));
}

TEST(GoldenReportTest, SweepMatchesFrozenValues) {
  const auto& cases = golden_cases();
  ASSERT_EQ(sizeof(kGolden) / sizeof(kGolden[0]), cases.size())
      << "golden table out of date — regenerate (see file header)";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const GoldenCase& gc = cases[i];
    InferenceReport rep = run_case(gc);
    const GoldenRow& want = kGolden[i];
    std::string label = std::string(model_kind_name(gc.kind)) + " on " + gc.dataset +
                        " prune=" + std::to_string(gc.prune);
    EXPECT_EQ(rep.execution.exec_cycles, want.exec_cycles) << label;
    EXPECT_EQ(rep.execution.stats.tasks, want.tasks) << label;
    EXPECT_EQ(rep.execution.stats.pairs, want.pairs) << label;
    EXPECT_EQ(rep.execution.stats.pairs_skipped, want.pairs_skipped) << label;
    EXPECT_EQ(rep.execution.output.total_nnz(), want.output_nnz) << label;
    if (rep.deterministic_fingerprint() != want.fingerprint) {
      ADD_FAILURE() << label
                    << ": report fingerprint changed — a deterministic field "
                       "regressed. If intentional, regenerate this row as:\n"
                    << "  (row " << i << ")";
      print_row(rep);
    }
  }
}

// ISSUE 4 property: across the full 10-config sweep, a memoized repeat —
// an independently rebuilt but content-identical request whose ResultKey
// matches a cached entry — returns a report whose
// deterministic_fingerprint() is bit-identical to a fresh (service-free)
// execution. This is the determinism contract that makes result
// memoization sound: equal ResultKeys imply equal deterministic fields,
// so skipping execution can never change an answer.
TEST(GoldenReportTest, MemoizedSweepBitIdenticalToFreshExecution) {
  const auto& cases = golden_cases();
  ServiceOptions opts;
  opts.workers = 2;
  opts.cache_capacity = cases.size();
  opts.result_cache_capacity = cases.size();
  InferenceService service(opts);

  for (std::size_t i = 0; i < cases.size(); ++i) {
    const GoldenCase& gc = cases[i];
    const InferenceReport fresh = run_case(gc);

    auto [model, ds] = case_inputs(gc);
    const InferenceReport cold = service.run_one(model, ds, {});
    auto [model2, ds2] = case_inputs(gc);  // rebuilt from scratch
    const InferenceReport memo = service.run_one(model2, ds2, {});

    EXPECT_EQ(cold.deterministic_fingerprint(), fresh.deterministic_fingerprint())
        << "case " << i << ": service cold path diverged from direct execution";
    EXPECT_EQ(memo.deterministic_fingerprint(), fresh.deterministic_fingerprint())
        << "case " << i << ": memoized report diverged from fresh execution";
  }
  // Exactly one execution per case; every repeat was a result-cache hit.
  ResultCacheStats rcs = service.result_cache_stats();
  EXPECT_EQ(rcs.misses, static_cast<std::int64_t>(cases.size()));
  EXPECT_EQ(rcs.hits, static_cast<std::int64_t>(cases.size()));
}

// Regeneration path: skipped unless DYNASPARSE_GOLDEN_REGEN is set.
TEST(GoldenReportTest, RegenerateTable) {
  if (env_text("DYNASPARSE_GOLDEN_REGEN") == nullptr)
    GTEST_SKIP() << "set DYNASPARSE_GOLDEN_REGEN=1 to print the golden table";
  std::printf("const GoldenRow kGolden[] = {\n");
  for (const GoldenCase& gc : golden_cases()) print_row(run_case(gc));
  std::printf("};\n");
}

}  // namespace
}  // namespace dynasparse
