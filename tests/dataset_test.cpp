// Unit tests: dataset registry (paper Table VI) and synthetic generation.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/dataset.hpp"

namespace dynasparse {
namespace {

TEST(DatasetRegistryTest, SixPaperDatasetsInOrder) {
  const auto& specs = paper_datasets();
  ASSERT_EQ(specs.size(), 6u);
  EXPECT_EQ(specs[0].tag, "CI");
  EXPECT_EQ(specs[1].tag, "CO");
  EXPECT_EQ(specs[2].tag, "PU");
  EXPECT_EQ(specs[3].tag, "FL");
  EXPECT_EQ(specs[4].tag, "NE");
  EXPECT_EQ(specs[5].tag, "RE");
}

TEST(DatasetRegistryTest, TableVIStatistics) {
  DatasetSpec ci = dataset_by_tag("CI");
  EXPECT_EQ(ci.vertices, 3327);
  EXPECT_EQ(ci.edges, 4732);
  EXPECT_EQ(ci.feature_dim, 3703);
  EXPECT_EQ(ci.num_classes, 6);
  EXPECT_NEAR(ci.h0_density, 0.0085, 1e-9);
  EXPECT_EQ(ci.hidden_dim, 16);

  DatasetSpec re = dataset_by_tag("RE");
  EXPECT_EQ(re.vertices, 232965);
  EXPECT_EQ(re.num_classes, 41);
  EXPECT_DOUBLE_EQ(re.h0_density, 1.0);
  EXPECT_EQ(re.hidden_dim, 128);
}

TEST(DatasetRegistryTest, UnknownTagThrows) {
  EXPECT_THROW(dataset_by_tag("XX"), std::invalid_argument);
}

TEST(DatasetRegistryTest, AdjacencyDensityOrderMatchesTableVI) {
  // |E| / |V|^2 of the registry specs reproduces Table VI's density
  // ordering (Table VI counts each citation edge in both directions, so
  // we check order of magnitude and relative ordering, not equality).
  auto density = [](const char* tag) {
    DatasetSpec s = dataset_by_tag(tag);
    return static_cast<double>(s.edges) /
           (static_cast<double>(s.vertices) * static_cast<double>(s.vertices));
  };
  EXPECT_NEAR(density("NE"), 0.000058, 0.00001);  // paper: 0.0058%
  EXPECT_NEAR(density("RE"), 0.0021, 0.0004);     // paper: 0.21%
  EXPECT_GT(density("CO"), density("CI"));
  EXPECT_GT(density("CI"), density("PU"));
  EXPECT_GT(density("PU"), density("NE"));
}

TEST(GenerateFeaturesTest, DensityOnTarget) {
  Rng rng(1);
  CooMatrix f = generate_features(2000, 100, 0.1, rng);
  EXPECT_NEAR(f.density(), 0.1, 0.01);
  EXPECT_TRUE(f.well_formed());
}

TEST(GenerateFeaturesTest, FullyDense) {
  Rng rng(2);
  CooMatrix f = generate_features(50, 20, 1.0, rng);
  EXPECT_DOUBLE_EQ(f.density(), 1.0);
}

TEST(GenerateFeaturesTest, ZeroDensity) {
  Rng rng(3);
  CooMatrix f = generate_features(50, 20, 0.0, rng);
  EXPECT_EQ(f.nnz(), 0);
}

TEST(GenerateFeaturesTest, ValuesPositive) {
  Rng rng(4);
  CooMatrix f = generate_features(100, 50, 0.2, rng);
  for (const CooEntry& e : f.entries()) {
    EXPECT_GE(e.value, 0.5f);
    EXPECT_LT(e.value, 1.5f);
  }
}

TEST(GenerateDatasetTest, ScaleOnePreservesTableVI) {
  Dataset ds = generate_dataset(dataset_by_tag("CO"), 1, 99);
  EXPECT_EQ(ds.spec.vertices, 2708);
  EXPECT_EQ(ds.graph.num_vertices(), 2708);
  // Duplicate rejection can undershoot |E| very slightly.
  EXPECT_NEAR(static_cast<double>(ds.graph.num_edges()), 5429.0, 5429.0 * 0.01);
  EXPECT_NEAR(ds.features.density(), 0.0127, 0.002);
}

TEST(GenerateDatasetTest, ScalingPreservesAdjacencyDensity) {
  DatasetSpec spec = dataset_by_tag("PU");
  Dataset full = generate_dataset(spec, 1, 7);
  Dataset half = generate_dataset(spec, 2, 7);
  EXPECT_NEAR(half.graph.adjacency_density(), full.graph.adjacency_density(),
              full.graph.adjacency_density() * 0.25);
  EXPECT_EQ(half.spec.vertices, spec.vertices / 2);
}

TEST(GenerateDatasetTest, DefaultBenchScaleUsed) {
  Dataset ne = generate_dataset(dataset_by_tag("NE"), 0, 7);
  EXPECT_EQ(ne.spec.vertices, 65755 / 8);
  EXPECT_EQ(ne.spec.feature_dim, 61278);  // feature dim never scaled
}

TEST(GenerateDatasetTest, Deterministic) {
  Dataset a = generate_dataset(dataset_by_tag("CO"), 1, 42);
  Dataset b = generate_dataset(dataset_by_tag("CO"), 1, 42);
  EXPECT_EQ(a.graph.num_edges(), b.graph.num_edges());
  EXPECT_EQ(a.features.nnz(), b.features.nnz());
  EXPECT_EQ(a.graph.adjacency().col_idx(), b.graph.adjacency().col_idx());
}

TEST(GenerateDatasetTest, SeedChangesGraph) {
  Dataset a = generate_dataset(dataset_by_tag("CO"), 1, 1);
  Dataset b = generate_dataset(dataset_by_tag("CO"), 1, 2);
  EXPECT_NE(a.graph.adjacency().col_idx(), b.graph.adjacency().col_idx());
}

}  // namespace
}  // namespace dynasparse
