// End-to-end integration tests on (scaled) paper datasets: the evaluation
// claims' *shapes* must hold — Dynamic >= Static per configuration, GCN's
// big win over Static-1 on sparse-feature graphs, speedup growth with
// weight sparsity, runtime overhead small and hidden.

#include <gtest/gtest.h>

#include "baselines/accelerator_models.hpp"
#include "baselines/platform_models.hpp"
#include "core/engine.hpp"
#include "model/reference.hpp"
#include "util/math_util.hpp"

namespace dynasparse {
namespace {

constexpr std::uint64_t kSeed = 2023;

Dataset scaled(const char* tag, int extra_scale) {
  DatasetSpec spec = dataset_by_tag(tag);
  return generate_dataset(spec, std::max(spec.bench_scale, extra_scale), kSeed);
}

GnnModel model_for(GnnModelKind kind, const Dataset& ds, double weight_sparsity = 0.0) {
  Rng rng(kSeed + static_cast<std::uint64_t>(kind));
  GnnModel m = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                           ds.spec.num_classes, rng);
  if (weight_sparsity > 0.0) prune_model(m, weight_sparsity);
  return m;
}

double latency_under(const CompiledProgram& prog, MappingStrategy s) {
  RuntimeOptions opt;
  opt.strategy = s;
  return run_compiled(prog, opt).latency_ms;
}

TEST(IntegrationTest, CiteSeerGcnStrategyOrdering) {
  // Paper Table VII row CI/GCN: S1 ~400x slower than Dynamic (H0 is very
  // sparse and S1 runs Update as dense GEMM); S2 close to Dynamic.
  Dataset ds = scaled("CI", 2);
  GnnModel m = model_for(GnnModelKind::kGcn, ds);
  CompiledProgram prog = compile(m, ds, u250_config());
  double dyn = latency_under(prog, MappingStrategy::kDynamic);
  double s1 = latency_under(prog, MappingStrategy::kStatic1);
  double s2 = latency_under(prog, MappingStrategy::kStatic2);
  EXPECT_GT(s1 / dyn, 5.0);    // large S1 win (paper: 41x)
  EXPECT_GE(s2 / dyn, 0.999);  // modest S2 win or tie (paper: 1.15x; on
                               // this tiny graph the dense Update L2 where
                               // Dynamic beats S2 is memory-bound)
  EXPECT_LT(s2 / dyn, 5.0);
}

TEST(IntegrationTest, DynamicWinsOrTiesEverywhereUnpruned) {
  // The Table VII property: SO-S1 >= 1 and SO-S2 >= 1 in every cell.
  for (const char* tag : {"CI", "CO", "PU"}) {
    Dataset ds = scaled(tag, 2);
    for (GnnModelKind kind : paper_models()) {
      GnnModel m = model_for(kind, ds);
      CompiledProgram prog = compile(m, ds, u250_config());
      double dyn = latency_under(prog, MappingStrategy::kDynamic);
      double s1 = latency_under(prog, MappingStrategy::kStatic1);
      double s2 = latency_under(prog, MappingStrategy::kStatic2);
      EXPECT_GE(s1 / dyn, 0.999) << tag << " " << model_kind_name(kind);
      EXPECT_GE(s2 / dyn, 0.999) << tag << " " << model_kind_name(kind);
    }
  }
}

TEST(IntegrationTest, SpeedupGrowsWithWeightSparsity) {
  // Figs. 11/12: pruning the weights strictly helps Dynamic vs statics.
  Dataset ds = scaled("PU", 2);
  double prev_so_s1 = 0.0;
  for (double sparsity : {0.0, 0.7, 0.95}) {
    GnnModel m = model_for(GnnModelKind::kGcn, ds, sparsity);
    CompiledProgram prog = compile(m, ds, u250_config());
    double dyn = latency_under(prog, MappingStrategy::kDynamic);
    double s1 = latency_under(prog, MappingStrategy::kStatic1);
    double so_s1 = s1 / dyn;
    EXPECT_GE(so_s1, prev_so_s1 * 0.9) << "sparsity " << sparsity;
    prev_so_s1 = so_s1;
  }
  EXPECT_GT(prev_so_s1, 1.5);  // by 95% sparsity the win is clear
}

TEST(IntegrationTest, RuntimeOverheadSmallAndHidden) {
  // Fig. 13: the K2P cost is measured as a ratio of execution time and is
  // hidden by overlap (paper: 6.8% average on its board). On the tiny
  // citation graphs the simulated execution is so short that the ratio
  // inflates; the hidden-ness and the big-graph smallness are the claims.
  Dataset co = scaled("CO", 1);
  GnnModel m_co = model_for(GnnModelKind::kGcn, co);
  InferenceReport rep_co = run_compiled(compile(m_co, co, u250_config()), {});
  EXPECT_DOUBLE_EQ(rep_co.execution.exposed_runtime_ms, 0.0);
  EXPECT_GT(rep_co.execution.runtime_overhead_ratio, 0.0);

  Dataset fl = scaled("FL", 4);
  GnnModel m_fl = model_for(GnnModelKind::kGcn, fl);
  InferenceReport rep_fl = run_compiled(compile(m_fl, fl, u250_config()), {});
  // Larger graphs amortize the per-pair analysis: ratio drops well under
  // the small-graph one and lands in the paper's ballpark.
  EXPECT_LT(rep_fl.execution.runtime_overhead_ratio,
            rep_co.execution.runtime_overhead_ratio);
  EXPECT_LT(rep_fl.execution.runtime_overhead_ratio, 0.30);
}

TEST(IntegrationTest, FunctionalCorrectOnPaperDatasetGcn) {
  Dataset ds = scaled("CO", 1);
  GnnModel m = model_for(GnnModelKind::kGcn, ds);
  InferenceReport rep = run_inference(m, ds, {});
  DenseMatrix expect = reference_output(m, ds.graph, ds.features);
  EXPECT_LT(DenseMatrix::max_abs_diff(rep.execution.output.to_dense(), expect), 1e-4f);
}

TEST(IntegrationTest, FeatureDensityEvolutionTracked) {
  // Fig. 2's phenomenon: post-Update densities differ from H0's, and the
  // engine reports one density per kernel for the runtime to consume.
  Dataset ds = scaled("CI", 2);
  GnnModel m = model_for(GnnModelKind::kGcn, ds);
  InferenceReport rep = run_inference(m, ds, {});
  const auto& dens = rep.execution.node_densities;
  ASSERT_EQ(dens.size(), 4u);
  // H0 of CiteSeer is ~0.85% dense; after Update with dense weights the
  // feature matrix densifies dramatically.
  EXPECT_GT(dens[0], ds.features.density() * 5);
}

TEST(IntegrationTest, DynasparseBeatsModeledBaselinesOnSparseGraphs) {
  // Table X / Fig. 14 shape: despite lower peak FLOPS, sparsity
  // exploitation wins on feature-sparse graphs.
  Dataset ds = scaled("CI", 2);
  GnnModel m = model_for(GnnModelKind::kGcn, ds);
  CompiledProgram prog = compile(m, ds, u250_config());
  double dyn = latency_under(prog, MappingStrategy::kDynamic);
  EXPECT_LT(dyn, platform_latency_ms(framework_platforms()[0], m, ds));  // PyG-CPU
  EXPECT_LT(dyn, accelerator_latency_ms(boostgcn_spec(), m, ds));
}

TEST(IntegrationTest, CompileStatsPopulatedOnPaperDataset) {
  Dataset ds = scaled("PU", 2);
  GnnModel m = model_for(GnnModelKind::kSgc, ds);
  CompiledProgram prog = compile(m, ds, u250_config());
  EXPECT_GT(prog.stats.total_ms(), 0.0);
  EXPECT_GT(prog.stats.partition_ms, 0.0);
}

}  // namespace
}  // namespace dynasparse
