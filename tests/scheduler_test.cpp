// Unit + property tests: greedy list scheduling (paper Algorithm 8).

#include <gtest/gtest.h>

#include <numeric>

#include "runtime/scheduler.hpp"
#include "util/random.hpp"

namespace dynasparse {
namespace {

TEST(SchedulerTest, SingleCoreSerializes) {
  ScheduleResult r = schedule_tasks({1.0, 2.0, 3.0}, 1);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 6.0);
  EXPECT_DOUBLE_EQ(r.core_busy_cycles[0], 6.0);
}

TEST(SchedulerTest, PerfectSplit) {
  ScheduleResult r = schedule_tasks({1.0, 1.0, 1.0, 1.0}, 2);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 2.0);
  EXPECT_DOUBLE_EQ(r.load_imbalance(), 1.0);
}

TEST(SchedulerTest, GreedyAssignsToEarliestIdle) {
  // Tasks 4,3,2,1 on 2 cores: c0 gets 4, c1 gets 3, then c1 (free at 3)
  // gets 2 -> busy 5, then c0 (free at 4) gets 1 -> busy 5. Makespan 5.
  ScheduleResult r = schedule_tasks({4.0, 3.0, 2.0, 1.0}, 2);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 5.0);
  EXPECT_EQ(r.task_core[0], 0);
  EXPECT_EQ(r.task_core[1], 1);
  EXPECT_EQ(r.task_core[2], 1);
  EXPECT_EQ(r.task_core[3], 0);
}

TEST(SchedulerTest, EmptyTaskList) {
  ScheduleResult r = schedule_tasks({}, 4);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 0.0);
  EXPECT_DOUBLE_EQ(r.load_imbalance(), 1.0);
}

TEST(SchedulerTest, ZeroCoresThrows) {
  EXPECT_THROW(schedule_tasks({1.0}, 0), std::invalid_argument);
}

TEST(SchedulerTest, MoreCoresThanTasks) {
  ScheduleResult r = schedule_tasks({5.0, 1.0}, 7);
  EXPECT_DOUBLE_EQ(r.makespan_cycles, 5.0);
}

class SchedulerProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SchedulerProperty, ConservationAndBounds) {
  auto [num_tasks, num_cores] = GetParam();
  Rng rng(static_cast<std::uint64_t>(num_tasks * 100 + num_cores));
  std::vector<double> tasks(static_cast<std::size_t>(num_tasks));
  for (double& t : tasks) t = rng.uniform(0.1, 10.0);
  ScheduleResult r = schedule_tasks(tasks, num_cores);

  // Conservation: every task assigned exactly once; busy sums == work sum.
  double total = std::accumulate(tasks.begin(), tasks.end(), 0.0);
  double busy = std::accumulate(r.core_busy_cycles.begin(), r.core_busy_cycles.end(), 0.0);
  EXPECT_NEAR(busy, total, 1e-9);
  for (int c : r.task_core) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, num_cores);
  }

  // Classic list-scheduling bounds: LB = max(total/m, max task),
  // UB = total/m + max task (Graham).
  double max_task = *std::max_element(tasks.begin(), tasks.end());
  double lb = std::max(total / num_cores, max_task);
  EXPECT_GE(r.makespan_cycles, lb - 1e-9);
  EXPECT_LE(r.makespan_cycles, total / num_cores + max_task + 1e-9);

  // Makespan >= every core's busy time.
  for (double b : r.core_busy_cycles) EXPECT_LE(b, r.makespan_cycles + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SchedulerProperty,
                         ::testing::Combine(::testing::Values(1, 7, 28, 100, 500),
                                            ::testing::Values(1, 2, 7, 16)));

TEST(SchedulerTest, EtaTimesCoresTasksBalanceWell) {
  // The paper picks eta = 4 so that eta*NCC tasks keep imbalance low even
  // with heterogeneous task sizes.
  Rng rng(7);
  std::vector<double> tasks(28);  // eta=4 * NCC=7
  for (double& t : tasks) t = rng.uniform(0.5, 1.5);
  ScheduleResult r = schedule_tasks(tasks, 7);
  EXPECT_LT(r.load_imbalance(), 1.5);
}

}  // namespace
}  // namespace dynasparse
