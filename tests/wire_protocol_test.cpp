// Wire-protocol codec tests (src/net/wire.hpp): round-trips for every
// frame type, truncation sweeps (every proper prefix of a valid frame is
// "need more bytes", never garbage), hostile length prefixes rejected
// before any allocation, and seeded random-corruption fuzz — run under
// ASan in CI, where an out-of-bounds read in the decoder would be fatal
// rather than flaky.

#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "net/wire.hpp"
#include "service/inference_service.hpp"
#include "util/cancellation.hpp"

namespace dynasparse {
namespace {

StreamRequestSpec sample_spec() {
  StreamRequestSpec spec;
  spec.dataset = "synth-rmat_16";
  spec.scale = 256;
  spec.model = GnnModelKind::kSage;
  spec.hidden = 64;
  spec.prune = 0.25;
  spec.strategy = MappingStrategy::kDynamic;
  spec.seed = 77;
  spec.repeat = 1;
  spec.deadline_ms = 1500;
  return spec;
}

/// Extract exactly one frame from a complete encoded buffer.
WireFrame extract_one(const std::vector<std::uint8_t>& bytes) {
  WireFrame f;
  std::size_t consumed = 0;
  EXPECT_TRUE(try_extract_frame(bytes.data(), bytes.size(), f, consumed));
  EXPECT_EQ(consumed, bytes.size());
  return f;
}

/// Patch the u64 length prefix of an otherwise valid frame.
std::vector<std::uint8_t> with_length_prefix(std::vector<std::uint8_t> bytes,
                                             std::uint64_t payload_len) {
  for (int i = 0; i < 8; ++i)
    bytes[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload_len >> (8 * i));
  return bytes;
}

// ---- round-trips, every frame type -----------------------------------------

TEST(WireCodec, SubmitRoundTrip) {
  const StreamRequestSpec spec = sample_spec();
  WireFrame f = extract_one(encode_submit(42, spec));
  EXPECT_EQ(f.type, FrameType::kSubmit);
  EXPECT_EQ(f.corr, 42u);
  StreamRequestSpec back = decode_submit(f);
  EXPECT_EQ(back.dataset, spec.dataset);
  EXPECT_EQ(back.scale, spec.scale);
  EXPECT_EQ(back.model, spec.model);
  EXPECT_EQ(back.hidden, spec.hidden);
  EXPECT_DOUBLE_EQ(back.prune, spec.prune);
  EXPECT_EQ(back.strategy, spec.strategy);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.repeat, 1);
  EXPECT_EQ(back.deadline_ms, spec.deadline_ms);
  // The spec's canonical text form is the materialization key — equality
  // there means the server regenerates bit-identical content.
  EXPECT_EQ(back.to_line(), spec.to_line());
}

TEST(WireCodec, SubmitRoundTripsEveryModelAndStrategy) {
  for (GnnModelKind m : {GnnModelKind::kGcn, GnnModelKind::kSage,
                         GnnModelKind::kGin, GnnModelKind::kSgc}) {
    for (MappingStrategy s : {MappingStrategy::kStatic1,
                              MappingStrategy::kStatic2,
                              MappingStrategy::kDynamic}) {
      StreamRequestSpec spec = sample_spec();
      spec.model = m;
      spec.strategy = s;
      StreamRequestSpec back = decode_submit(extract_one(encode_submit(1, spec)));
      EXPECT_EQ(back.model, m);
      EXPECT_EQ(back.strategy, s);
    }
  }
}

TEST(WireCodec, EmptyBodiedRequestsRoundTrip) {
  for (const auto& bytes :
       {encode_poll(7), encode_cancel(8), encode_stats(9)}) {
    WireFrame f = extract_one(bytes);
    EXPECT_NO_THROW(decode_empty(f));
  }
  EXPECT_EQ(extract_one(encode_poll(7)).type, FrameType::kPoll);
  EXPECT_EQ(extract_one(encode_cancel(8)).type, FrameType::kCancel);
  EXPECT_EQ(extract_one(encode_stats(9)).type, FrameType::kStats);
}

TEST(WireCodec, ResultRoundTrip) {
  WireResult result;
  result.fingerprint = 0xDEADBEEFCAFEF00Dull;
  result.sim_latency_ms = 3.25;
  result.server_ms = 17.75;
  WireResult back = decode_result(extract_one(encode_result(5, result)));
  EXPECT_EQ(back.fingerprint, result.fingerprint);
  EXPECT_DOUBLE_EQ(back.sim_latency_ms, result.sim_latency_ms);
  EXPECT_DOUBLE_EQ(back.server_ms, result.server_ms);
}

TEST(WireCodec, ErrorRoundTripEveryCode) {
  for (WireErrorCode code :
       {WireErrorCode::kProtocol, WireErrorCode::kCancelled,
        WireErrorCode::kDeadlineExceeded, WireErrorCode::kAdmissionRejected,
        WireErrorCode::kExecutionError, WireErrorCode::kShuttingDown,
        WireErrorCode::kUnknownRequest, WireErrorCode::kInvalidRequest}) {
    WireError back = decode_error(
        extract_one(encode_error(11, code, wire_error_name(code))));
    EXPECT_EQ(back.code, code);
    EXPECT_EQ(back.message, wire_error_name(code));
  }
}

TEST(WireCodec, ErrorMessageTruncatedAtBound) {
  const std::string huge(10000, 'x');
  WireError back = decode_error(
      extract_one(encode_error(1, WireErrorCode::kExecutionError, huge)));
  EXPECT_EQ(back.message.size(), kMaxErrorMessageBytes);
}

TEST(WireCodec, StateAndStatsReplyRoundTrip) {
  EXPECT_EQ(decode_state(extract_one(encode_state(3, 2))), 2);
  const std::string text = "submits=12 results=11 errors=1";
  EXPECT_EQ(decode_stats_reply(extract_one(encode_stats_reply(4, text))), text);
}

TEST(WireCodec, RethrowMapsCodesToTaxonomyTypes) {
  EXPECT_THROW(rethrow_wire_error(WireErrorCode::kCancelled, "m"),
               CancelledError);
  EXPECT_THROW(rethrow_wire_error(WireErrorCode::kDeadlineExceeded, "m"),
               DeadlineExceededError);
  EXPECT_THROW(rethrow_wire_error(WireErrorCode::kAdmissionRejected, "m"),
               AdmissionRejectedError);
  EXPECT_THROW(rethrow_wire_error(WireErrorCode::kExecutionError, "m"),
               ExecutionError);
  EXPECT_THROW(rethrow_wire_error(WireErrorCode::kShuttingDown, "m"),
               std::runtime_error);
  EXPECT_THROW(rethrow_wire_error(WireErrorCode::kUnknownRequest, "m"),
               std::invalid_argument);
  EXPECT_THROW(rethrow_wire_error(WireErrorCode::kInvalidRequest, "m"),
               std::invalid_argument);
  EXPECT_THROW(rethrow_wire_error(WireErrorCode::kProtocol, "m"),
               WireProtocolError);
}

// ---- truncation sweeps -----------------------------------------------------

TEST(WireCodec, EveryPrefixOfAValidFrameIsIncompleteNotGarbage) {
  const std::vector<std::vector<std::uint8_t>> frames = {
      encode_submit(1, sample_spec()),
      encode_poll(2),
      encode_result(3, WireResult{1, 2.0, 3.0}),
      encode_error(4, WireErrorCode::kCancelled, "cancelled by test"),
      encode_state(5, 1),
      encode_stats_reply(6, "a=1 b=2"),
  };
  for (const auto& frame : frames) {
    for (std::size_t len = 0; len < frame.size(); ++len) {
      WireFrame out;
      std::size_t consumed = 99;
      // A prefix of well-formed bytes must never throw and never consume:
      // the codec just asks for more.
      EXPECT_FALSE(try_extract_frame(frame.data(), len, out, consumed))
          << "prefix of " << len << "/" << frame.size() << " bytes";
    }
  }
}

TEST(WireCodec, BackToBackFramesExtractInOrder) {
  std::vector<std::uint8_t> stream = encode_poll(10);
  const std::vector<std::uint8_t> second = encode_cancel(11);
  stream.insert(stream.end(), second.begin(), second.end());
  WireFrame f;
  std::size_t consumed = 0;
  ASSERT_TRUE(try_extract_frame(stream.data(), stream.size(), f, consumed));
  EXPECT_EQ(f.type, FrameType::kPoll);
  stream.erase(stream.begin(), stream.begin() + static_cast<std::ptrdiff_t>(consumed));
  ASSERT_TRUE(try_extract_frame(stream.data(), stream.size(), f, consumed));
  EXPECT_EQ(f.type, FrameType::kCancel);
  EXPECT_EQ(consumed, stream.size());
}

// ---- hostile length prefixes: rejected before allocation -------------------

TEST(WireCodec, HostileLengthPrefixesThrowBeforeAllocation) {
  const std::vector<std::uint8_t> valid = encode_poll(1);
  // 2^63, "negative" lengths as unsigned, SIZE_MAX, just-over-bound: all
  // must throw from the 8 prefix bytes alone — the body is never touched,
  // so nothing is allocated (the ASan lane would catch a read past the
  // 8-byte buffer passed here).
  for (std::uint64_t hostile :
       {std::uint64_t{1} << 63, ~std::uint64_t{0},
        static_cast<std::uint64_t>(-42), kMaxFramePayload + 1}) {
    std::vector<std::uint8_t> prefix_only = with_length_prefix(valid, hostile);
    prefix_only.resize(kFrameLenBytes);
    WireFrame out;
    std::size_t consumed = 0;
    EXPECT_THROW(
        try_extract_frame(prefix_only.data(), prefix_only.size(), out, consumed),
        WireProtocolError)
        << "hostile length " << hostile;
  }
  // Too-short payloads (0 can't even hold the version/type/corr header).
  for (std::uint64_t tiny = 0; tiny < kFrameHeaderBytes; ++tiny) {
    std::vector<std::uint8_t> bytes = with_length_prefix(valid, tiny);
    WireFrame out;
    std::size_t consumed = 0;
    EXPECT_THROW(try_extract_frame(bytes.data(), bytes.size(), out, consumed),
                 WireProtocolError)
        << "tiny length " << tiny;
  }
}

TEST(WireCodec, BadVersionAndUnknownTypeThrow) {
  std::vector<std::uint8_t> bytes = encode_poll(1);
  bytes[kFrameLenBytes] = kWireVersion + 1;  // version byte
  WireFrame out;
  std::size_t consumed = 0;
  EXPECT_THROW(try_extract_frame(bytes.data(), bytes.size(), out, consumed),
               WireProtocolError);
  bytes = encode_poll(1);
  bytes[kFrameLenBytes + 1] = 0x7F;  // type byte nobody defines
  EXPECT_THROW(try_extract_frame(bytes.data(), bytes.size(), out, consumed),
               WireProtocolError);
}

// ---- body validation -------------------------------------------------------

TEST(WireCodec, TrailingBytesInBodyAreRejected) {
  // Grow a POLL body by one byte (and fix the prefix): the decoder must
  // reject the slack, not shrug it off.
  std::vector<std::uint8_t> bytes = encode_poll(1);
  bytes.push_back(0);
  bytes = with_length_prefix(std::move(bytes), kFrameHeaderBytes + 1);
  WireFrame f;
  std::size_t consumed = 0;
  ASSERT_TRUE(try_extract_frame(bytes.data(), bytes.size(), f, consumed));
  EXPECT_THROW(decode_empty(f), WireProtocolError);
}

TEST(WireCodec, SubmitRejectsHostileFieldValues) {
  // Hostile tag charset: encode manually via a valid frame, then corrupt
  // the first tag byte to a space.
  std::vector<std::uint8_t> bytes = encode_submit(1, sample_spec());
  bytes[kFrameLenBytes + kFrameHeaderBytes + 1] = ' ';
  WireFrame f = extract_one(bytes);
  EXPECT_THROW(decode_submit(f), WireProtocolError);

  // Declared tag length larger than the cap dies before the string
  // allocates (str() checks cap first).
  bytes = encode_submit(1, sample_spec());
  bytes[kFrameLenBytes + kFrameHeaderBytes] = 255;
  f = extract_one(bytes);
  EXPECT_THROW(decode_submit(f), WireProtocolError);

  // Out-of-range numeric fields are caught by the encoder's caller-side
  // contract checks in decode_submit; craft them through a valid frame
  // with a patched prune (NaN).
  bytes = encode_submit(1, sample_spec());
  // prune is the f64 right after tag(1+13) + model(1) + strategy(1) + scale(4)
  // + hidden(8); patch all 8 bytes to an all-ones NaN pattern.
  const std::size_t prune_off = kFrameLenBytes + kFrameHeaderBytes +
                                (1 + sample_spec().dataset.size()) + 1 + 1 + 4 + 8;
  for (std::size_t i = 0; i < 8; ++i) bytes[prune_off + i] = 0xFF;
  f = extract_one(bytes);
  EXPECT_THROW(decode_submit(f), WireProtocolError);
}

TEST(WireCodec, SubmitEncoderRejectsUnsendableSpecs) {
  StreamRequestSpec spec = sample_spec();
  spec.repeat = 2;
  EXPECT_THROW(encode_submit(1, spec), std::invalid_argument);
  spec = sample_spec();
  spec.dataset.clear();
  EXPECT_THROW(encode_submit(1, spec), std::invalid_argument);
  spec = sample_spec();
  spec.dataset.assign(kMaxDatasetTagBytes + 1, 'a');
  EXPECT_THROW(encode_submit(1, spec), std::invalid_argument);
}

// ---- seeded corruption fuzz ------------------------------------------------

TEST(WireCodec, RandomCorruptionNeverEscapesTheProtocolErrorType) {
  std::mt19937_64 rng(20230807);
  const std::vector<std::vector<std::uint8_t>> seeds = {
      encode_submit(1, sample_spec()),
      encode_result(2, WireResult{99, 1.0, 2.0}),
      encode_error(3, WireErrorCode::kDeadlineExceeded, "late"),
      encode_stats_reply(4, "k=v"),
      encode_state(5, 1),
      encode_poll(6),
  };
  int extracted = 0, rejected = 0;
  for (int iter = 0; iter < 4000; ++iter) {
    std::vector<std::uint8_t> bytes = seeds[iter % seeds.size()];
    const int flips = 1 + static_cast<int>(rng() % 8);
    for (int k = 0; k < flips; ++k)
      bytes[rng() % bytes.size()] = static_cast<std::uint8_t>(rng());
    WireFrame f;
    std::size_t consumed = 0;
    // The only acceptable outcomes: a clean extraction (+ decode that
    // either succeeds or throws WireProtocolError), "need more bytes",
    // or WireProtocolError. Anything else — a crash, an OOB read under
    // ASan, a std::bad_alloc from a hostile length — fails the test.
    try {
      if (!try_extract_frame(bytes.data(), bytes.size(), f, consumed)) continue;
      ++extracted;
      try {
        switch (f.type) {
          case FrameType::kSubmit: (void)decode_submit(f); break;
          case FrameType::kResult: (void)decode_result(f); break;
          case FrameType::kError: (void)decode_error(f); break;
          case FrameType::kState: (void)decode_state(f); break;
          case FrameType::kStatsReply: (void)decode_stats_reply(f); break;
          default: decode_empty(f); break;
        }
      } catch (const WireProtocolError&) {
      }
    } catch (const WireProtocolError&) {
      ++rejected;
    }
  }
  // The sweep must actually exercise both paths.
  EXPECT_GT(extracted, 0);
  EXPECT_GT(rejected, 0);
}

/// Pure random bytes: the extractor must never read past `size` (ASan)
/// and must only ever say false / frame / WireProtocolError.
TEST(WireCodec, RandomBytesAreHandledWithoutOverread) {
  std::mt19937_64 rng(424242);
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes(rng() % 64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    WireFrame f;
    std::size_t consumed = 0;
    try {
      (void)try_extract_frame(bytes.data(), bytes.size(), f, consumed);
    } catch (const WireProtocolError&) {
    }
  }
}

}  // namespace
}  // namespace dynasparse
