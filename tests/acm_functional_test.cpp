// Unit + property tests: detailed ACM execution-mode models (paper
// Section V-B1) — functional equivalence with the host kernels and cycle
// counts bounded below by the Table IV ideals.

#include <gtest/gtest.h>

#include "matrix/format_convert.hpp"
#include "matrix/matrix_ops.hpp"
#include "sim/acm_functional.hpp"
#include "sim/cycle_model.hpp"
#include "sim/shuffle_network.hpp"
#include "test_helpers.hpp"

namespace dynasparse {
namespace {

using testing::random_dense;

TEST(ShuffleNetworkTest, GeometryValidation) {
  EXPECT_THROW(ShuffleNetwork(0), std::invalid_argument);
  EXPECT_THROW(ShuffleNetwork(12), std::invalid_argument);
  ShuffleNetwork n(16);
  EXPECT_EQ(n.ports(), 16);
  EXPECT_EQ(n.stages(), 4);
}

TEST(ShuffleNetworkTest, ConflictFreeWaveIsOneCycle) {
  ShuffleNetwork n(8);
  EXPECT_EQ(n.route_wave({0, 1, 2, 3, 4, 5, 6, 7}), 1);
  EXPECT_EQ(n.route_wave({3}), 1);
  EXPECT_EQ(n.route_wave({}), 0);
}

TEST(ShuffleNetworkTest, ConflictsSerialize) {
  ShuffleNetwork n(8);
  EXPECT_EQ(n.route_wave({5, 5}), 2);
  EXPECT_EQ(n.route_wave({5, 5, 5, 5}), 4);
  EXPECT_EQ(n.route_wave({1, 2, 2, 3}), 2);
}

TEST(ShuffleNetworkTest, WaveValidation) {
  ShuffleNetwork n(4);
  EXPECT_THROW(n.route_wave({0, 1, 2, 3, 0}), std::invalid_argument);
  EXPECT_THROW(n.route_wave({7}), std::invalid_argument);
}

TEST(ShuffleNetworkTest, StreamIncludesFill) {
  ShuffleNetwork n(8);
  // 16 conflict-free packets in waves of 4 -> 4 waves + 3 fill stages.
  std::vector<int> dests;
  for (int i = 0; i < 16; ++i) dests.push_back(i % 4);
  // Waves of width 4 all target ports 0..3 once each -> 1 cycle per wave.
  EXPECT_DOUBLE_EQ(n.stream_cycles(dests, 4), 3.0 + 4.0);
}

TEST(GemmSystolicTest, FunctionalMatchesGemm) {
  Rng rng(1);
  DenseMatrix x = random_dense(20, 30, 0.7, rng);
  DenseMatrix y = random_dense(30, 10, 0.7, rng);
  DenseMatrix z(20, 10);
  GemmSystolicModel model(8);
  DetailedTiming t = model.run(x, y, z);
  EXPECT_EQ(DenseMatrix::max_abs_diff(z, gemm(x, y)), 0.0f);
  EXPECT_EQ(t.macs, 20 * 30 * 10);
}

TEST(GemmSystolicTest, CyclesAboveIdealByFillDrain) {
  GemmSystolicModel model(16);
  Rng rng(2);
  DenseMatrix x = random_dense(64, 64, 1.0, rng);
  DenseMatrix y = random_dense(64, 64, 1.0, rng);
  DenseMatrix z(64, 64);
  DetailedTiming t = model.run(x, y, z);
  CycleModel ideal(16);
  double ideal_cycles = ideal.gemm_cycles(PairShape{64, 64, 64, 1.0, 1.0});
  EXPECT_GE(t.cycles, ideal_cycles);
  // 4x4 = 16 passes, each 64 + 32 cycles.
  EXPECT_DOUBLE_EQ(t.cycles, 16.0 * (64.0 + 32.0));
  EXPECT_GT(t.utilization, 0.4);
  EXPECT_LE(t.utilization, 1.0);
}

TEST(SpdmmScatterGatherTest, FunctionalMatchesSpdmm) {
  Rng rng(3);
  DenseMatrix xd = random_dense(40, 40, 0.1, rng);
  DenseMatrix y = random_dense(40, 24, 0.9, rng);
  CooMatrix xs = dense_to_coo(xd);
  DenseMatrix z(40, 24);
  SpdmmScatterGatherModel model(16);
  DetailedTiming t = model.run(xs, y, z);
  EXPECT_EQ(DenseMatrix::max_abs_diff(z, spdmm(xs, y)), 0.0f);
  EXPECT_EQ(t.macs, xs.nnz() * 24);
}

TEST(SpdmmScatterGatherTest, PsysValidation) {
  EXPECT_THROW(SpdmmScatterGatherModel(1), std::invalid_argument);
  EXPECT_THROW(SpdmmScatterGatherModel(12), std::invalid_argument);
}

TEST(SpdmmScatterGatherTest, BankConflictsCostCycles) {
  // All nonzeros in one column -> every wave hits one bank.
  CooMatrix hot(64, 64, Layout::kRowMajor);
  for (int r = 0; r < 64; ++r) hot.push(r, 5, 1.0f);
  CooMatrix spread(64, 64, Layout::kRowMajor);
  for (int r = 0; r < 64; ++r) spread.push(r, r, 1.0f);
  Rng rng(4);
  DenseMatrix y = random_dense(64, 16, 1.0, rng);
  SpdmmScatterGatherModel model(16);
  DenseMatrix z1(64, 16), z2(64, 16);
  DetailedTiming t_hot = model.run(hot, y, z1);
  DetailedTiming t_spread = model.run(spread, y, z2);
  EXPECT_GT(t_hot.conflicts, 0);
  EXPECT_GT(t_hot.cycles, t_spread.cycles);
}

TEST(SpmmRowwiseTest, FunctionalMatchesSpmm) {
  Rng rng(5);
  DenseMatrix xd = random_dense(30, 30, 0.15, rng);
  DenseMatrix yd = random_dense(30, 30, 0.15, rng);
  CooMatrix xs = dense_to_coo(xd), ys = dense_to_coo(yd);
  DenseMatrix z(30, 30);
  SpmmRowwiseModel model(16);
  DetailedTiming t = model.run(xs, ys, z);
  EXPECT_EQ(DenseMatrix::max_abs_diff(z, spmm(xs, ys)), 0.0f);
  EXPECT_GT(t.macs, 0);
}

TEST(SpmmRowwiseTest, ImbalanceRaisesCycles) {
  // All X nonzeros in rows congruent to 0 mod psys -> one SCP does all
  // the work; cycles == total macs, not macs / psys.
  CooMatrix x(32, 32, Layout::kRowMajor);
  for (int c = 0; c < 32; ++c) x.push(0, c, 1.0f);
  for (int c = 0; c < 32; ++c) x.push(16, c, 1.0f);
  Rng rng(6);
  DenseMatrix yd = random_dense(32, 8, 0.5, rng);
  CooMatrix ys = dense_to_coo(yd);
  SpmmRowwiseModel model(16);
  DenseMatrix z(32, 8);
  DetailedTiming t = model.run(x, ys, z);
  EXPECT_DOUBLE_EQ(t.cycles, static_cast<double>(t.macs));  // rows 0,16 -> SCP 0
  EXPECT_GT(t.conflicts, 0);
}

// ---- Property sweep: all three detailed modes agree with the reference
// and sit at or above the Table IV ideal cycle count. ----------------------
class DetailedModeSweep
    : public ::testing::TestWithParam<std::tuple<double, double, int>> {};

TEST_P(DetailedModeSweep, FunctionalEqualAndCyclesAboveIdeal) {
  auto [dx, dy, psys] = GetParam();
  Rng rng(static_cast<std::uint64_t>(dx * 100 + dy * 10 + psys));
  const std::int64_t m = 48, n = 48, d = 32;
  DenseMatrix x = random_dense(m, n, dx, rng);
  DenseMatrix y = random_dense(n, d, dy, rng);
  CooMatrix xs = dense_to_coo(x), ys = dense_to_coo(y);
  DenseMatrix expect = gemm(x, y);
  CycleModel ideal(psys);
  PairShape shape{m, n, d, x.density(), y.density()};

  DenseMatrix zg(m, d), zs(m, d), zp(m, d);
  DetailedTiming tg = GemmSystolicModel(psys).run(x, y, zg);
  DetailedTiming ts = SpdmmScatterGatherModel(psys).run(xs, y, zs);
  DetailedTiming tp = SpmmRowwiseModel(psys).run(xs, ys, zp);

  EXPECT_EQ(DenseMatrix::max_abs_diff(zg, expect), 0.0f);
  EXPECT_EQ(DenseMatrix::max_abs_diff(zs, expect), 0.0f);
  EXPECT_EQ(DenseMatrix::max_abs_diff(zp, expect), 0.0f);

  EXPECT_GE(tg.cycles + 1e-9, ideal.gemm_cycles(shape));
  EXPECT_GE(ts.cycles + 1e-9, ideal.spdmm_cycles(shape, shape.ax) - psys);
  EXPECT_GE(tp.cycles + 1e-9, ideal.spmm_cycles(shape) - psys);
}

INSTANTIATE_TEST_SUITE_P(
    DensityGrid, DetailedModeSweep,
    ::testing::Combine(::testing::Values(0.02, 0.1, 0.5, 0.9),
                       ::testing::Values(0.02, 0.1, 0.5, 0.9),
                       ::testing::Values(8, 16)));

}  // namespace
}  // namespace dynasparse
