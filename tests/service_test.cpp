// InferenceService tests: batched results bit-identical to sequential
// runs, compilation-cache accounting (hits, in-flight dedup, LRU
// eviction), failure isolation, race-freedom under concurrent
// submitters, result memoization (ResultKey sensitivity, hits that skip
// execution, LRU by count and by bytes), and bounded admission control
// (reject fail-fast, try_submit, shed-oldest). The concurrency tests
// force >1 worker regardless of the host's core count and are part of
// the CI ThreadSanitizer job; the randomized interleaving soak lives in
// tests/service_stress_test.cpp.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <sstream>
#include <thread>

#include "core/engine.hpp"
#include "service/inference_service.hpp"
#include "service/request_stream.hpp"
#include "util/fault_injection.hpp"
#include "util/parallel.hpp"

namespace dynasparse {
namespace {

/// Small synthetic dataset so each request costs milliseconds.
Dataset small_dataset(std::uint64_t seed, std::int64_t vertices = 150,
                      double h0_density = 0.3) {
  DatasetSpec spec;
  spec.name = "svc";
  spec.tag = "SV" + std::to_string(seed % 100);
  spec.vertices = vertices;
  spec.edges = vertices * 4;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  spec.h0_density = h0_density;
  spec.hidden_dim = 8;
  spec.degree_skew = 0.5;
  return generate_dataset(spec, 1, seed);
}

ServiceRequest make_request(std::uint64_t seed, GnnModelKind kind,
                            MappingStrategy strategy = MappingStrategy::kDynamic) {
  Dataset ds = small_dataset(seed);
  Rng rng(seed + 1);
  GnnModel model = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                               ds.spec.num_classes, rng);
  EngineOptions options;
  options.runtime.strategy = strategy;
  return ServiceRequest::own(std::move(model), std::move(ds), options);
}

/// The pre-service reference: compile + execute on the calling thread.
InferenceReport sequential_reference(const ServiceRequest& req) {
  CompiledProgram prog = compile(*req.model, *req.dataset, req.options.config);
  InferenceReport rep = run_compiled(prog, req.options.runtime);
  rep.dataset_tag = req.dataset->spec.tag;
  return rep;
}

TEST(ServiceTest, BatchBitIdenticalToSequential) {
  std::vector<ServiceRequest> requests;
  for (std::uint64_t seed : {11, 12, 13}) {
    requests.push_back(make_request(seed, GnnModelKind::kGcn));
    requests.push_back(make_request(seed, GnnModelKind::kSage));
    requests.push_back(make_request(seed, GnnModelKind::kGin, MappingStrategy::kStatic1));
  }

  std::vector<InferenceReport> expected;
  for (const ServiceRequest& req : requests) expected.push_back(sequential_reference(req));

  ServiceOptions opts;
  opts.workers = 4;  // force multi-worker even on a 1-core host
  opts.cache_capacity = 16;
  InferenceService service(opts);
  std::vector<InferenceReport> got = service.run_batch(requests);

  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].deterministic_fingerprint(), expected[i].deterministic_fingerprint())
        << "request " << i;
    // Spot-check the headline fields behind the fingerprint.
    EXPECT_EQ(got[i].latency_ms, expected[i].latency_ms) << "request " << i;
    EXPECT_EQ(got[i].execution.exec_cycles, expected[i].execution.exec_cycles);
    EXPECT_EQ(got[i].execution.stats.pairs, expected[i].execution.stats.pairs);
    EXPECT_EQ(DenseMatrix::max_abs_diff(got[i].execution.output.to_dense(),
                                        expected[i].execution.output.to_dense()),
              0.0f);
  }
}

TEST(ServiceTest, CacheCountsHitsAcrossContentIdenticalRequests) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.cache_capacity = 8;
  InferenceService service(opts);

  // Three unique contents, each materialized independently three times:
  // content hashing must collapse them to three compilations.
  std::vector<ServiceRequest> requests;
  for (int repeat = 0; repeat < 3; ++repeat)
    for (std::uint64_t seed : {21, 22, 23})
      requests.push_back(make_request(seed, GnnModelKind::kGcn));
  service.run_batch(requests);

  CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.hits, 6);
  EXPECT_EQ(stats.entries, 3);
  EXPECT_EQ(stats.evictions, 0);

  // A second batch of the same contents is all hits.
  std::vector<ServiceRequest> again;
  for (std::uint64_t seed : {21, 22, 23})
    again.push_back(make_request(seed, GnnModelKind::kGcn));
  service.run_batch(again);
  stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.hits, 9);
}

TEST(ServiceTest, InFlightCompilationsDeduplicate) {
  ServiceOptions opts;
  opts.workers = 4;
  opts.cache_capacity = 8;
  InferenceService service(opts);

  // Four identical requests hit a cold cache at once: exactly one compile.
  std::vector<ServiceRequest> requests;
  for (int i = 0; i < 4; ++i) requests.push_back(make_request(31, GnnModelKind::kSage));
  std::vector<InferenceReport> reports = service.run_batch(requests);

  CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 3);
  for (const InferenceReport& rep : reports)
    EXPECT_EQ(rep.deterministic_fingerprint(), reports[0].deterministic_fingerprint());
}

TEST(ServiceTest, LruEvictsLeastRecentlyUsed) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.cache_capacity = 2;
  InferenceService service(opts);

  auto run_seed = [&](std::uint64_t seed) {
    std::vector<ServiceRequest> one;
    one.push_back(make_request(seed, GnnModelKind::kGcn));
    service.run_batch(std::move(one));
  };
  run_seed(41);  // cache: {41}
  run_seed(42);  // cache: {41, 42}
  run_seed(43);  // evicts 41 -> {42, 43}
  CacheStats stats = service.cache_stats();
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.entries, 2);

  run_seed(41);  // miss again: 41 was evicted
  EXPECT_EQ(service.cache_stats().misses, 4);
  run_seed(43);  // still resident: hit
  EXPECT_EQ(service.cache_stats().hits, 1);
}

TEST(ServiceTest, ConcurrentSubmittersAreRaceFree) {
  ServiceOptions opts;
  opts.workers = 4;
  opts.cache_capacity = 4;
  InferenceService service(opts);

  // Expected fingerprints for the two request contents.
  ServiceRequest a = make_request(51, GnnModelKind::kGcn);
  ServiceRequest b = make_request(52, GnnModelKind::kGin);
  const std::uint64_t fp_a = sequential_reference(a).deterministic_fingerprint();
  const std::uint64_t fp_b = sequential_reference(b).deterministic_fingerprint();

  constexpr int kSubmitters = 4, kPerThread = 4;
  std::vector<std::thread> submitters;
  std::vector<std::uint64_t> fingerprints(kSubmitters * kPerThread, 0);
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        bool use_a = (t + i) % 2 == 0;
        RequestId id = service.submit(use_a ? a : b);
        while (!service.done(id)) std::this_thread::yield();
        InferenceReport rep = service.wait(id);
        fingerprints[static_cast<std::size_t>(t * kPerThread + i)] =
            rep.deterministic_fingerprint();
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  for (int t = 0; t < kSubmitters; ++t)
    for (int i = 0; i < kPerThread; ++i) {
      bool use_a = (t + i) % 2 == 0;
      EXPECT_EQ(fingerprints[static_cast<std::size_t>(t * kPerThread + i)],
                use_a ? fp_a : fp_b)
          << "submitter " << t << " request " << i;
    }
  // Two unique contents -> exactly two compilations, whatever the
  // interleaving.
  EXPECT_EQ(service.cache_stats().misses, 2);
}

TEST(ServiceTest, FailedRequestPropagatesAndServiceKeepsServing) {
  ServiceOptions opts;
  opts.workers = 2;
  InferenceService service(opts);

  // Model whose in_dim disagrees with the dataset: compile() throws.
  Dataset ds = small_dataset(61);
  Rng rng(62);
  GnnModel bad = build_model(GnnModelKind::kGcn, ds.spec.feature_dim + 1,
                             ds.spec.hidden_dim, ds.spec.num_classes, rng);
  RequestId bad_id = service.submit(ServiceRequest::own(std::move(bad), ds));
  // Asynchronous failures surface through the closed taxonomy: the
  // worker wraps the compile error (std::invalid_argument here) in
  // ExecutionError so wait()'s throw-set stays enumerable.
  EXPECT_THROW(service.wait(bad_id), ExecutionError);

  // The failure is isolated: the next request succeeds.
  RequestId good_id = service.submit(make_request(61, GnnModelKind::kGcn));
  EXPECT_NO_THROW(service.wait(good_id));

  // run_batch surfaces the failure after completing the good requests.
  std::vector<ServiceRequest> mixed;
  mixed.push_back(make_request(63, GnnModelKind::kGcn));
  Rng rng2(64);
  GnnModel bad2 = build_model(GnnModelKind::kGcn, ds.spec.feature_dim + 2,
                              ds.spec.hidden_dim, ds.spec.num_classes, rng2);
  mixed.push_back(ServiceRequest::own(std::move(bad2), small_dataset(61)));
  EXPECT_THROW(service.run_batch(std::move(mixed)), ExecutionError);
  EXPECT_EQ(service.robustness_stats().execution_failures, 2);

  // The synchronous run_one path stays unwrapped: the caller holds the
  // stack, so the original exception type is the most useful one.
  Rng rng3(65);
  GnnModel bad3 = build_model(GnnModelKind::kGcn, ds.spec.feature_dim + 3,
                              ds.spec.hidden_dim, ds.spec.num_classes, rng3);
  EXPECT_THROW(service.run_one(bad3, small_dataset(61)), std::invalid_argument);
}

TEST(ServiceTest, RequestLifecycleAndValidation) {
  ServiceOptions opts;
  opts.workers = 1;
  InferenceService service(opts);

  EXPECT_THROW(service.submit(ServiceRequest{}), std::invalid_argument);
  EXPECT_THROW(service.state(999), std::invalid_argument);

  RequestId id = service.submit(make_request(71, GnnModelKind::kSgc));
  (void)service.wait(id);
  // A consumed id is unknown afterwards.
  EXPECT_THROW(service.state(id), std::invalid_argument);
  EXPECT_THROW(service.wait(id), std::invalid_argument);
}

TEST(ServiceTest, RunInferenceRoutesThroughProcessCache) {
  Dataset ds = small_dataset(81);
  Rng rng(82);
  GnnModel model = build_model(GnnModelKind::kGcn, ds.spec.feature_dim,
                               ds.spec.hidden_dim, ds.spec.num_classes, rng);
  CacheStats before = InferenceService::process_default().cache_stats();
  InferenceReport first = run_inference(model, ds, {});
  InferenceReport second = run_inference(model, ds, {});
  CacheStats after = InferenceService::process_default().cache_stats();

  EXPECT_EQ(first.deterministic_fingerprint(), second.deterministic_fingerprint());
  if (InferenceService::process_default().cache().capacity() > 0) {
    EXPECT_EQ(after.misses - before.misses, 1);
    EXPECT_GE(after.hits - before.hits, 1);
  }
}

TEST(ServiceTest, SignatureSensitivity) {
  ServiceRequest base = make_request(91, GnnModelKind::kGcn);
  CompileKey key = make_compile_key(*base.model, *base.dataset,
                                    base.options.config);

  // Same content rebuilt from scratch: identical key.
  ServiceRequest rebuilt = make_request(91, GnnModelKind::kGcn);
  EXPECT_EQ(key, make_compile_key(*rebuilt.model, *rebuilt.dataset,
                                  rebuilt.options.config));

  // One weight bit changes the model signature.
  GnnModel tweaked = *base.model;
  tweaked.weights[0].at(0, 0) += 1.0f;
  EXPECT_NE(key.model, model_signature(tweaked));

  // One feature nonzero changes the dataset signature.
  Dataset ds2 = *base.dataset;
  ds2.features.entries()[0].value += 1.0f;
  EXPECT_NE(key.dataset, dataset_signature(ds2));

  // Any config field change changes the config signature.
  SimConfig cfg = base.options.config;
  cfg.psys *= 2;
  EXPECT_NE(key.config, config_signature(cfg));
}

TEST(ServiceTest, RuntimeOptionsSignatureFlipsOnEveryField) {
  // Property: flipping any single RuntimeOptions field changes
  // runtime_options_signature — the keep-in-sync discipline that makes a
  // ResultKey safe to memoize under. Every mutation below is one field.
  const RuntimeOptions base;
  const std::uint64_t sig = runtime_options_signature(base);

  std::vector<RuntimeOptions> flipped;
  {
    RuntimeOptions r = base;
    r.strategy = MappingStrategy::kStatic1;
    flipped.push_back(r);
  }
  {
    RuntimeOptions r = base;
    r.hide_ahm = !r.hide_ahm;
    flipped.push_back(r);
  }
  {
    RuntimeOptions r = base;
    r.hide_runtime = !r.hide_runtime;
    flipped.push_back(r);
  }
  {
    RuntimeOptions r = base;
    r.host_threads = r.host_threads + 3;
    flipped.push_back(r);
  }
  {
    RuntimeOptions r = base;
    r.detailed_timing = !r.detailed_timing;
    flipped.push_back(r);
  }
  {
    RuntimeOptions r = base;
    r.collect_timeline = !r.collect_timeline;
    flipped.push_back(r);
  }
  {
    RuntimeOptions r = base;
    r.functional = !r.functional;
    flipped.push_back(r);
  }
  for (std::size_t i = 0; i < flipped.size(); ++i)
    EXPECT_NE(runtime_options_signature(flipped[i]), sig)
        << "flipped field " << i << " did not change the signature";

  // Pairwise distinct too (no two single-field flips collide), and the
  // full ResultKey separates equal compile content under different
  // runtime options.
  for (std::size_t i = 0; i < flipped.size(); ++i)
    for (std::size_t j = i + 1; j < flipped.size(); ++j)
      EXPECT_NE(runtime_options_signature(flipped[i]),
                runtime_options_signature(flipped[j]))
          << i << " vs " << j;
  CompileKey ck{1, 2, 3};
  EXPECT_NE(make_result_key(ck, base), make_result_key(ck, flipped[0]));
  EXPECT_EQ(make_result_key(ck, base), make_result_key(ck, RuntimeOptions{}));
}

TEST(ServiceTest, MemoizedRepeatSkipsExecutionAndIsBitIdentical) {
  ServiceOptions opts;
  opts.workers = 2;
  opts.cache_capacity = 4;
  opts.result_cache_capacity = 4;
  InferenceService service(opts);

  // Independently materialized identical content: the repeat must hit the
  // result cache, skip compile AND execute, and return a report whose
  // deterministic fingerprint is bit-identical to the cold run.
  ServiceRequest first = make_request(101, GnnModelKind::kGcn);
  ServiceRequest repeat = make_request(101, GnnModelKind::kGcn);
  InferenceReport cold = service.wait(service.submit(first));
  InferenceReport memo = service.wait(service.submit(repeat));
  EXPECT_EQ(memo.deterministic_fingerprint(), cold.deterministic_fingerprint());

  ResultCacheStats rcs = service.result_cache_stats();
  EXPECT_EQ(rcs.misses, 1);
  EXPECT_EQ(rcs.hits, 1);
  EXPECT_EQ(rcs.entries, 1);
  EXPECT_GT(rcs.bytes, 0);
  // The repeat never reached the compilation cache.
  EXPECT_EQ(service.cache_stats().misses, 1);
  EXPECT_EQ(service.cache_stats().hits, 0);

  // Different runtime options over the same compile content: result-cache
  // miss (new ResultKey) but compilation-cache hit (same CompileKey).
  ServiceRequest other = make_request(101, GnnModelKind::kGcn);
  other.options.runtime.strategy = MappingStrategy::kStatic1;
  (void)service.wait(service.submit(other));
  rcs = service.result_cache_stats();
  EXPECT_EQ(rcs.misses, 2);
  EXPECT_EQ(rcs.entries, 2);
  EXPECT_EQ(service.cache_stats().hits, 1);
}

TEST(ServiceTest, ResultCacheEvictsByCountAndBytes) {
  // Count bound: capacity 2, three distinct contents -> one eviction, the
  // LRU entry re-misses.
  {
    ResultCache cache(2, 0);
    auto run = [&](std::uint64_t key_seed) {
      ResultKey key{{key_seed, 1, 1}, 7};
      return cache.get_or_run(key, [] {
        InferenceReport rep;
        rep.model_name = "r";
        return rep;
      });
    };
    run(1), run(2), run(3);
    ResultCacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 3);
    EXPECT_EQ(s.evictions, 1);
    EXPECT_EQ(s.entries, 2);
    run(1);  // was evicted
    EXPECT_EQ(cache.stats().misses, 4);
    run(3);  // still resident
    EXPECT_EQ(cache.stats().hits, 1);
  }
  // Byte bound: entries far under the count bound still evict once the
  // approximate resident bytes exceed the cap.
  {
    InferenceReport sample;
    sample.model_name = "r";
    const std::size_t one = sample.approx_footprint_bytes();
    ResultCache cache(100, 2 * one + one / 2);  // room for ~2.5 reports
    for (std::uint64_t k = 1; k <= 4; ++k)
      cache.get_or_run(ResultKey{{k, 1, 1}, 7}, [&] { return sample; });
    ResultCacheStats s = cache.stats();
    EXPECT_EQ(s.misses, 4);
    EXPECT_EQ(s.evictions, 2);
    EXPECT_EQ(s.entries, 2);
    EXPECT_LE(s.bytes, static_cast<std::int64_t>(2 * one + one / 2));
  }
  // A lone report heavier than the byte bound is dropped by its own
  // insertion without flushing resident entries as collateral.
  {
    InferenceReport small;
    small.model_name = "r";
    const std::size_t one = small.approx_footprint_bytes();
    InferenceReport huge = small;
    huge.model_name.assign(4 * one, 'x');  // footprint >> byte bound
    ResultCache cache(100, 2 * one);
    cache.get_or_run(ResultKey{{1, 1, 1}, 7}, [&] { return small; });
    cache.get_or_run(ResultKey{{2, 1, 1}, 7}, [&] { return huge; });
    ResultCacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1);  // only the oversized newcomer
    EXPECT_EQ(s.entries, 1);    // the small report survived
    cache.get_or_run(ResultKey{{1, 1, 1}, 7}, [&] { return small; });
    EXPECT_EQ(cache.stats().hits, 1);  // still resident
  }
}

TEST(ServiceTest, AdmissionRejectFailsFastAndShedFailsOldest) {
  // Deterministic single-worker setup: park the worker on a slow-ish
  // request, fill the depth-1 queue, then probe each admission outcome.
  ServiceOptions opts;
  opts.workers = 1;
  opts.cache_capacity = 2;
  opts.max_queue_depth = 1;
  opts.admission = AdmissionPolicy::kReject;
  InferenceService service(opts);

  ServiceRequest busy = make_request(111, GnnModelKind::kGin);
  ServiceRequest queued = make_request(112, GnnModelKind::kGcn);
  RequestId running = service.submit(busy);
  // Fill the queue. The worker may already have popped `running` (or even
  // both); submit until one genuinely parks in the queue or a reject
  // proves the queue was full.
  RequestId parked = service.submit(queued);
  RequestId rejected = service.submit(queued);
  // With one worker and a depth-1 queue, three instant submits cannot all
  // be admitted... but the worker races; accept either outcome for the
  // middle one and require the *system* invariants instead: every id
  // resolves, and any rejection carries AdmissionRejectedError.
  int completed = 0, refused = 0;
  for (RequestId id : {running, parked, rejected}) {
    try {
      (void)service.wait(id);
      ++completed;
    } catch (const AdmissionRejectedError&) {
      ++refused;
    }
  }
  EXPECT_EQ(completed + refused, 3);
  EXPECT_EQ(service.admission_stats().rejected, refused);
  EXPECT_EQ(service.admission_stats().accepted, completed);

  // try_submit: non-blocking, returns nullopt instead of failing a slot.
  ServiceOptions t_opts;
  t_opts.workers = 1;
  t_opts.cache_capacity = 2;
  t_opts.max_queue_depth = 1;
  t_opts.admission = AdmissionPolicy::kBlock;
  {
    InferenceService t_service(t_opts);
    std::vector<RequestId> ids;
    int nullopts = 0;
    for (int i = 0; i < 6; ++i) {
      std::optional<RequestId> id = t_service.try_submit(queued);
      if (id)
        ids.push_back(*id);
      else
        ++nullopts;
    }
    for (RequestId id : ids) EXPECT_NO_THROW((void)t_service.wait(id));
    EXPECT_EQ(t_service.admission_stats().rejected, nullopts);
  }

  // Shed-oldest: freshest traffic wins. Park the worker, overfill the
  // queue, and check that shed slots fail with AdmissionRejectedError
  // while the service's shed counter matches.
  ServiceOptions s_opts;
  s_opts.workers = 1;
  s_opts.cache_capacity = 2;
  s_opts.max_queue_depth = 2;
  s_opts.admission = AdmissionPolicy::kShedOldest;
  InferenceService s_service(s_opts);
  std::vector<RequestId> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(s_service.submit(queued));
  int s_completed = 0, s_shed = 0;
  for (RequestId id : ids) {
    try {
      (void)s_service.wait(id);
      ++s_completed;
    } catch (const AdmissionRejectedError&) {
      ++s_shed;
    }
  }
  EXPECT_EQ(s_completed + s_shed, 8);
  EXPECT_EQ(s_service.admission_stats().shed, s_shed);
  EXPECT_EQ(s_service.admission_stats().accepted, 8);  // all were enqueued
  // The newest submission is never shed by construction: it is admitted
  // by the push that sheds others and can only leave the queue by
  // running.
  EXPECT_GE(s_completed, 1);
}

TEST(ServiceTest, OptionsValidatedAndEffectiveWorkersSurfaced) {
  ServiceOptions bad;
  bad.workers = -1;
  EXPECT_THROW(InferenceService{bad}, std::invalid_argument);
  bad.workers = 0;
  bad.intra_op_threads = -3;
  EXPECT_THROW(InferenceService{bad}, std::invalid_argument);

  // workers = 0 resolves to a visible effective count instead of a
  // hidden cap applied at spawn time.
  InferenceService auto_sized{ServiceOptions{}};
  EXPECT_GE(auto_sized.options().workers, 1);
  EXPECT_EQ(auto_sized.options().workers,
            std::min(parallel_hardware_threads(), 16));

  ServiceOptions explicit_opts;
  explicit_opts.workers = 5;
  explicit_opts.intra_op_threads = 2;
  InferenceService sized(explicit_opts);
  EXPECT_EQ(sized.options().workers, 5);
  EXPECT_EQ(sized.options().intra_op_threads, 2);
}

TEST(ServiceTest, IntraOpParallelismIsBitIdenticalToSerial) {
  // The same request executed serially per worker (intra_op_threads = 1,
  // the pre-work-stealing behavior) and fanned out on the shared pool
  // must produce identical reports: every parallel primitive is
  // thread-count-invariant.
  ServiceRequest req = make_request(95, GnnModelKind::kGcn);
  const std::uint64_t expected = sequential_reference(req).deterministic_fingerprint();
  for (int intra : {1, 0, 3}) {
    ServiceOptions opts;
    opts.workers = 2;
    opts.intra_op_threads = intra;
    InferenceService service(opts);
    RequestId id = service.submit(req);
    EXPECT_EQ(service.wait(id).deterministic_fingerprint(), expected)
        << "intra_op_threads=" << intra;
  }
}

// Regression for the shutdown race: submit() used to be able to return a
// valid RequestId after shutdown had closed the queue — the job was
// silently dropped (BlockingQueue::push returns false once closed), the
// slot stayed kQueued forever, and wait(id) deadlocked. Now a racing
// submit either throws std::runtime_error or returns an id that wait()
// always resolves; this test hangs (and trips the ctest timeout) if the
// bug comes back.
TEST(ServiceTest, SubmitRacingShutdownNeverHangsAWaiter) {
  for (int round = 0; round < 12; ++round) {
    ServiceOptions opts;
    opts.workers = 2;
    opts.cache_capacity = 2;
    InferenceService service(opts);

    // Both submitters share one cheap request content (compiles once).
    ServiceRequest req = make_request(97, GnnModelKind::kSgc);
    std::atomic<int> resolved{0}, rejected{0};
    std::vector<std::thread> submitters;
    for (int t = 0; t < 2; ++t) {
      submitters.emplace_back([&] {
        for (int i = 0; i < 50; ++i) {
          RequestId id;
          try {
            id = service.submit(req);
          } catch (const std::runtime_error&) {
            ++rejected;  // shutdown won the race before enqueue
            return;
          }
          // A returned id must always resolve: either a report, or
          // shutdown failing the slot — never a hang.
          try {
            (void)service.wait(id);
          } catch (const std::runtime_error&) {
          }
          ++resolved;
        }
      });
    }
    // Let the submitters get going, then shut the service down under
    // them (the object stays alive; the destructor's teardown runs
    // concurrently with live submit/wait calls).
    std::this_thread::sleep_for(std::chrono::milliseconds(2 + round % 5));
    service.shutdown();
    for (std::thread& t : submitters) t.join();
    EXPECT_GT(resolved.load() + rejected.load(), 0);
  }
}

/// A request heavy enough (milliseconds of compile + execute) that a
/// test can deterministically act while it is queued behind or running.
ServiceRequest make_slow_request(std::uint64_t seed) {
  Dataset ds = small_dataset(seed, /*vertices=*/2500, /*h0_density=*/0.4);
  Rng rng(seed + 1);
  GnnModel model = build_model(GnnModelKind::kGin, ds.spec.feature_dim,
                               ds.spec.hidden_dim, ds.spec.num_classes, rng);
  return ServiceRequest::own(std::move(model), std::move(ds));
}

TEST(ServiceTest, CancelQueuedRunningTerminalAndUnknown) {
  ServiceOptions opts;
  opts.workers = 1;
  opts.cache_capacity = 4;
  InferenceService service(opts);

  // Unknown id: invalid_argument, same contract as state()/wait().
  EXPECT_THROW(service.cancel(999999), std::invalid_argument);

  // Terminal: cancel() never un-completes a result.
  RequestId done_id = service.submit(make_request(121, GnnModelKind::kSgc));
  while (!service.done(done_id)) std::this_thread::yield();
  EXPECT_FALSE(service.cancel(done_id));
  EXPECT_NO_THROW((void)service.wait(done_id));
  // cancel() does not consume the slot: wait() above still got the report.

  // Queued: park the single worker on a slow head, cancel the request
  // behind it. The worker may race past us, so accept either outcome but
  // require consistency: cancel()==true must mean wait() throws
  // CancelledError, and false must mean a normal report.
  RequestId head = service.submit(make_slow_request(122));
  RequestId parked = service.submit(make_request(123, GnnModelKind::kGcn));
  bool cancelled = service.cancel(parked);
  if (cancelled) {
    EXPECT_THROW(service.wait(parked), CancelledError);
    EXPECT_GE(service.robustness_stats().cancelled, 1);
  } else {
    EXPECT_NO_THROW((void)service.wait(parked));
  }
  EXPECT_NO_THROW((void)service.wait(head));

  // Running: cancel the slow head itself mid-execution. Cooperative
  // checks abort it at the next stage/kernel boundary, and a request
  // that slips to completion first is discarded at publish time — so
  // cancel()==true is a hard promise of CancelledError. false means the
  // worker published the report before cancel() got the lock.
  RequestId running = service.submit(make_slow_request(124));
  while (service.state(running) == RequestState::kQueued)
    std::this_thread::yield();
  const std::int64_t cancelled_before = service.robustness_stats().cancelled;
  bool aborted = service.cancel(running);
  if (aborted) {
    EXPECT_THROW(service.wait(running), CancelledError);
    EXPECT_EQ(service.robustness_stats().cancelled, cancelled_before + 1);
  } else {
    EXPECT_NO_THROW((void)service.wait(running));
  }
}

TEST(ServiceTest, DeadlineExpiredInQueueNeverReachesCompiler) {
  // Requests carry a 1 ms default deadline while the queue.delay chaos
  // site (armed at probability 1) stalls every dequeue 2 ms between pop
  // and the deadline recheck — so each victim is deterministically
  // expired when rechecked, independent of scheduler timing. The worker
  // must fail those slots BEFORE compiling: one compile miss total (the
  // generous-deadline head), and expired_in_queue counts every victim.
  ServiceOptions opts;
  opts.workers = 1;
  opts.cache_capacity = 8;
  opts.default_deadline_ms = 1;
  opts.fault_spec = "queue.delay:1";
  {
    InferenceService service(opts);

    ServiceRequest head = make_slow_request(131);
    head.deadline_ms = 60'000;  // per-request value wins over the default
    RequestId head_id = service.submit(head);

    constexpr int kVictims = 4;
    std::vector<RequestId> victims;
    for (int i = 0; i < kVictims; ++i)
      victims.push_back(service.submit(make_request(132, GnnModelKind::kGcn)));

    EXPECT_NO_THROW((void)service.wait(head_id));
    for (RequestId id : victims)
      EXPECT_THROW(service.wait(id), DeadlineExceededError);

    RobustnessStats rs = service.robustness_stats();
    EXPECT_EQ(rs.expired_in_queue, kVictims);
    EXPECT_EQ(rs.expired_running, 0);
    // The victims' content (seed 132) was never compiled: only the head's.
    EXPECT_EQ(service.cache_stats().misses, 1);
    EXPECT_EQ(service.cache_stats().hits, 0);

    // The service keeps serving after expiries, and a request with no
    // deadline pressure completes normally.
    ServiceRequest fresh = make_request(132, GnnModelKind::kGcn);
    fresh.deadline_ms = 60'000;
    EXPECT_NO_THROW((void)service.wait(service.submit(fresh)));
  }
  // The injector is process-global; don't leak the armed site into later
  // tests in this binary.
  FaultInjector::global().disarm();
}

TEST(ServiceTest, DeadlineExpiryMidExecutionAborts) {
  // A slow request with a deadline shorter than its own execution: it is
  // dequeued promptly (idle worker) and expires mid-flight, aborting at a
  // stage/kernel boundary. Under scheduler noise the deadline can instead
  // pass while still queued — either way it must surface as
  // DeadlineExceededError and exactly one expiry counter must advance.
  ServiceOptions opts;
  opts.workers = 1;
  InferenceService service(opts);

  ServiceRequest req = make_slow_request(141);
  req.deadline_ms = 1;
  RequestId id = service.submit(req);
  EXPECT_THROW(service.wait(id), DeadlineExceededError);
  RobustnessStats rs = service.robustness_stats();
  EXPECT_EQ(rs.expired_in_queue + rs.expired_running, 1);
}

TEST(ServiceTest, NegativeDeadlinesRejected) {
  ServiceOptions bad;
  bad.default_deadline_ms = -5;
  EXPECT_THROW(InferenceService{bad}, std::invalid_argument);

  ServiceOptions opts;
  opts.workers = 1;
  InferenceService service(opts);
  ServiceRequest req = make_request(151, GnnModelKind::kGcn);
  req.deadline_ms = -1;
  EXPECT_THROW(service.submit(req), std::invalid_argument);
  EXPECT_THROW(service.try_submit(req), std::invalid_argument);
  // The rejection happened before a slot existed: nothing to wait on,
  // and the service still serves.
  req.deadline_ms = 0;
  EXPECT_NO_THROW((void)service.wait(service.submit(req)));
}

TEST(ServiceTest, ShutdownAbortsInFlightWork) {
  // shutdown() must not drain a long queue: queued slots fail with
  // CancelledError, the running request aborts at its next cooperative
  // check, and every waiter resolves promptly.
  ServiceOptions opts;
  opts.workers = 1;
  opts.cache_capacity = 4;
  InferenceService service(opts);

  std::vector<RequestId> ids;
  ids.push_back(service.submit(make_slow_request(161)));
  for (int i = 0; i < 6; ++i)
    ids.push_back(service.submit(make_request(162, GnnModelKind::kGcn)));
  service.shutdown();

  int completed = 0, cancelled = 0;
  for (RequestId id : ids) {
    try {
      (void)service.wait(id);
      ++completed;
    } catch (const CancelledError&) {
      ++cancelled;
    }
  }
  EXPECT_EQ(completed + cancelled, static_cast<int>(ids.size()));
  // The worker was parked on the slow head when shutdown fired, so the
  // queued tail (most of the batch) must have been aborted, not drained.
  EXPECT_GE(cancelled, 1);
  EXPECT_EQ(service.robustness_stats().cancelled, cancelled);
}

TEST(ServiceTest, RequestStreamRoundTrip) {
  std::string text =
      "# serving workload\n"
      "dataset=CI model=gcn seed=5\n"
      "dataset=CO model=sage prune=0.5 repeat=3  # popular\n"
      "\n"
      "dataset=PU model=sgc strategy=static2 hidden=32 scale=2\n"
      "dataset=CI model=gcn deadline_ms=250\n";
  std::istringstream in(text);
  std::vector<StreamRequestSpec> specs = parse_request_stream(in);
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[1].repeat, 3);
  EXPECT_EQ(specs[2].strategy, MappingStrategy::kStatic2);
  EXPECT_EQ(specs[3].deadline_ms, 250);
  EXPECT_EQ(materialize_request(specs[3]).deadline_ms, 250);
  EXPECT_EQ(expand_stream(specs).size(), 6u);

  // to_line -> parse is a fixpoint.
  std::ostringstream out;
  for (const StreamRequestSpec& s : specs) out << s.to_line() << "\n";
  std::istringstream in2(out.str());
  std::vector<StreamRequestSpec> reparsed = parse_request_stream(in2);
  ASSERT_EQ(reparsed.size(), specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i)
    EXPECT_EQ(reparsed[i].to_line(), specs[i].to_line());

  std::istringstream bad("dataset=CI model=nope\n");
  EXPECT_THROW(parse_request_stream(bad), std::runtime_error);
  // Numeric values must be fully consumed ("4x2" is not scale 4).
  std::istringstream bad_num("dataset=CI scale=4x2\n");
  EXPECT_THROW(parse_request_stream(bad_num), std::runtime_error);
  std::istringstream bad_deadline("dataset=CI deadline_ms=-3\n");
  EXPECT_THROW(parse_request_stream(bad_deadline), std::runtime_error);
}

}  // namespace
}  // namespace dynasparse
