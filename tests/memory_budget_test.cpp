// MemoryBudget tests (util/memory_budget.hpp) plus the byte-edge cases
// of KeyedFutureCache's budget integration:
//
//   - waterfill: under-share tiers keep their bytes, slack re-splits by
//     weight, and shrinkers run in REVERSE registration order;
//   - track-only (limit 0): charges recorded, nothing ever shrinks;
//   - convergence: rebalance terminates without progress (pinned tiers)
//     instead of spinning;
//   - cache byte edges: zero-byte entries, a lone value heavier than the
//     hard cap admitted-then-dropped without collateral evictions (the
//     contract keyed_future_cache.hpp pins to this file), in-flight
//     fills racing shrink/clear under a shared tier;
//   - the service-level invariant: after a randomized multi-dataset soak
//     quiesces, the sum over every tier (plans + compile + pool +
//     results) is at most ServiceOptions::memory_budget_bytes.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "service/inference_service.hpp"
#include "util/keyed_future_cache.hpp"
#include "util/memory_budget.hpp"

namespace dynasparse {
namespace {

/// A payload whose "size" is just a number the weigher reads back.
struct Blob {
  std::size_t size = 0;
};
std::size_t weigh_blob(const Blob& b) { return b.size; }

using BlobCache = KeyedFutureCache<int, Blob>;

auto make_blob(std::size_t size) {
  return [size] { return std::make_shared<const Blob>(Blob{size}); };
}

TEST(MemoryBudgetTest, TrackOnlyRecordsWithoutShrinking) {
  MemoryBudget budget(0);  // limit 0 = track-only
  auto tier = budget.register_tier("t", 1.0);
  bool shrunk = false;
  tier->set_shrinker([&](std::size_t) { shrunk = true; });

  EXPECT_FALSE(tier->charge(1 << 20));  // never signals over-limit
  budget.rebalance();                   // and rebalance is a no-op
  EXPECT_FALSE(shrunk);

  MemoryBudgetStats s = budget.stats();
  EXPECT_EQ(s.limit_bytes, 0u);
  EXPECT_EQ(s.bytes, 1 << 20);
  EXPECT_EQ(s.high_water, 1 << 20);
  EXPECT_EQ(s.rebalances, 0);

  tier->credit(1 << 20);
  s = budget.stats();
  EXPECT_EQ(s.bytes, 0);
  EXPECT_EQ(s.high_water, 1 << 20);  // high water survives the credit
}

TEST(MemoryBudgetTest, ChargeSignalsWhenTheSumCrossesTheLimit) {
  MemoryBudget budget(100);
  auto a = budget.register_tier("a", 1.0);
  auto b = budget.register_tier("b", 1.0);
  EXPECT_FALSE(a->charge(50));  // 50 <= 100
  EXPECT_TRUE(b->charge(60));   // 110 > 100: caller should rebalance
  b->credit(60);
  EXPECT_EQ(budget.total_bytes(), 50);
  EXPECT_FALSE(b->charge(50));  // exactly at the limit is within it
}

TEST(MemoryBudgetTest, WaterfillKeepsUnderShareTiersWhole) {
  MemoryBudget budget(1000);
  auto small = budget.register_tier("small", 1.0);
  auto big = budget.register_tier("big", 1.0);
  std::vector<std::pair<std::string, std::size_t>> calls;
  small->set_shrinker([&](std::size_t target) {
    calls.emplace_back("small", target);
  });
  big->set_shrinker([&](std::size_t target) {
    calls.emplace_back("big", target);
    // Model a real cache: evict down to the target.
    big->credit(static_cast<std::size_t>(big->bytes()) - target);
  });

  small->charge(100);       // well under its 500-byte fair share
  big->charge(2000);        // the whole overage is big's
  budget.rebalance();

  // small keeps its 100 bytes untouched; big is asked to fit in the
  // rest of the limit, not in a blind limit/2 split.
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0].first, "big");
  EXPECT_EQ(calls[0].second, 900u);
  EXPECT_LE(budget.total_bytes(), 1000);
  EXPECT_EQ(small->bytes(), 100);

  MemoryBudgetStats s = budget.stats();
  EXPECT_GT(s.rebalances, 0);
  ASSERT_EQ(s.tiers.size(), 2u);
  EXPECT_EQ(s.tiers[0].name, "small");
  EXPECT_EQ(s.tiers[0].shrinks, 0);
  EXPECT_EQ(s.tiers[1].shrinks, 1);
}

TEST(MemoryBudgetTest, ShrinkersRunInReverseRegistrationOrder) {
  // The service registers the TilePool FIRST: program caches registered
  // after it must release their operand references before the pool is
  // asked to free the (then unpinned) tiles.
  MemoryBudget budget(100);
  std::vector<std::string> order;
  auto first = budget.register_tier("pool", 1.0);
  auto second = budget.register_tier("programs", 1.0);
  first->set_shrinker([&](std::size_t target) {
    order.push_back("pool");
    first->credit(static_cast<std::size_t>(first->bytes()) - target);
  });
  second->set_shrinker([&](std::size_t target) {
    order.push_back("programs");
    second->credit(static_cast<std::size_t>(second->bytes()) - target);
  });
  first->charge(300);
  second->charge(300);
  budget.rebalance();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], "programs");  // registered last, shrinks first
  EXPECT_EQ(order[1], "pool");
  EXPECT_LE(budget.total_bytes(), 100);
}

TEST(MemoryBudgetTest, RebalanceTerminatesWithoutProgress) {
  // A tier whose bytes are all pinned cannot meet its target. rebalance
  // must stop (bounded passes), not spin until the heat death.
  MemoryBudget budget(100);
  auto pinned = budget.register_tier("pinned", 1.0);
  std::atomic<int> shrinks{0};
  pinned->set_shrinker([&](std::size_t) { ++shrinks; });  // frees nothing
  pinned->charge(500);
  budget.rebalance();
  EXPECT_GE(shrinks.load(), 1);
  EXPECT_LE(shrinks.load(), 3);
  EXPECT_EQ(budget.total_bytes(), 500);  // honest: still over, all pinned
}

TEST(BudgetCacheTest, ZeroByteEntriesAreCountBounded) {
  MemoryBudget budget(1000);
  auto tier = budget.register_tier("cache", 1.0);
  BlobCache cache(2, 0, weigh_blob, tier);
  for (int k = 0; k < 3; ++k) (void)cache.get_or_make(k, make_blob(0));
  KeyedCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 2);  // the count bound still evicts
  EXPECT_EQ(s.evictions, 1);
  EXPECT_EQ(s.bytes, 0);
  EXPECT_EQ(tier->bytes(), 0);  // zero-byte entries charge nothing
}

TEST(BudgetCacheTest, OversizeValueAdmittedThenDroppedWithoutCollateral) {
  BlobCache cache(8, 100, weigh_blob);
  auto small = cache.get_or_make(1, make_blob(10));
  auto huge = cache.get_or_make(2, make_blob(150));  // > max_bytes alone
  ASSERT_TRUE(huge);
  EXPECT_EQ(huge->size, 150u);  // the caller still gets its value

  KeyedCacheStats s = cache.stats();
  EXPECT_EQ(s.entries, 1);   // the oversize value never became resident
  EXPECT_EQ(s.evictions, 1); // dropped by its own insertion...
  EXPECT_EQ(s.bytes, 10);
  EXPECT_TRUE(cache.peek(1));   // ...with no collateral: the small
  EXPECT_FALSE(cache.peek(2));  // entry was not flushed to make room
}

TEST(BudgetCacheTest, SharedBudgetLimitIsTheHardCapWithoutPrivateBytes) {
  // max_bytes 0 + a tier: the budget's limit bounds a single value.
  MemoryBudget budget(100);
  auto tier = budget.register_tier("cache", 1.0);
  BlobCache cache(8, 0, weigh_blob, tier);
  auto huge = cache.get_or_make(1, make_blob(150));
  ASSERT_TRUE(huge);
  EXPECT_EQ(cache.stats().entries, 0);
  EXPECT_EQ(tier->bytes(), 0);  // never charged: transient, not resident
  // A value under the limit is resident and charged normally.
  (void)cache.get_or_make(2, make_blob(60));
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_EQ(tier->bytes(), 60);
}

TEST(BudgetCacheTest, InFlightFillsRaceShrinkAndClearSafely) {
  MemoryBudget budget(4096);
  auto tier = budget.register_tier("cache", 1.0);
  auto cache = std::make_shared<BlobCache>(16, 0, weigh_blob, tier);
  budget.bind_shrinker("cache",
                       [cache](std::size_t t) { cache->shrink_to_bytes(t); });

  std::atomic<bool> stop{false};
  std::thread antagonist([&] {
    while (!stop) {
      cache->shrink_to_bytes(0);
      cache->clear();
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  });
  std::vector<std::thread> fillers;
  for (int t = 0; t < 4; ++t)
    fillers.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        int key = (t * 200 + i) % 24;
        auto v = cache->get_or_make(key, [&] {
          std::this_thread::sleep_for(std::chrono::microseconds(20));
          return std::make_shared<const Blob>(
              Blob{static_cast<std::size_t>(key % 7) * 64});
        });
        ASSERT_TRUE(v);
      }
    });
  for (std::thread& th : fillers) th.join();
  stop = true;
  antagonist.join();

  // Quiesced accounting must be exact: what the cache thinks it holds is
  // what the tier was charged, and a final clear returns both to zero.
  KeyedCacheStats s = cache->stats();
  EXPECT_EQ(s.bytes, tier->bytes());
  cache->clear();
  EXPECT_EQ(cache->stats().bytes, 0);
  EXPECT_EQ(tier->bytes(), 0);
}

// ---- the end-to-end invariant --------------------------------------------

Dataset soak_dataset(std::uint64_t seed) {
  DatasetSpec spec;
  spec.name = "soak";
  spec.tag = "MB" + std::to_string(seed % 100);
  spec.vertices = 150;
  spec.edges = 600;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  spec.h0_density = 0.3;
  spec.hidden_dim = 8;
  spec.degree_skew = 0.5;
  return generate_dataset(spec, 1, seed);
}

TEST(MemoryBudgetTest, ServiceSoakQuiescesUnderTheBudget) {
  // Randomized request stream over 3 datasets x 2 model kinds with a
  // budget small enough to force cross-tier pressure. Two invariants:
  // every report stays bit-identical to its uncached reference (sharing
  // and eviction are invisible to results), and once the stream
  // quiesces the sum across every tier is within the budget.
  std::vector<ServiceRequest> requests;
  std::vector<std::uint64_t> expected;
  for (std::uint64_t seed : {31, 32, 33}) {
    for (GnnModelKind kind : {GnnModelKind::kGcn, GnnModelKind::kSage}) {
      Dataset ds = soak_dataset(seed);
      Rng rng(seed + 7);
      GnnModel model = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                                   ds.spec.num_classes, rng);
      EngineOptions eo;
      CompiledProgram prog = compile(model, ds, eo.config);
      InferenceReport ref = run_compiled(prog, eo.runtime);
      ref.dataset_tag = ds.spec.tag;  // the service stamps it; match
      expected.push_back(ref.deterministic_fingerprint());
      requests.push_back(ServiceRequest::own(std::move(model), std::move(ds), eo));
    }
  }

  constexpr std::size_t kBudget = 1u << 20;  // 1 MiB: a handful of programs
  ServiceOptions opts;
  opts.workers = 4;
  opts.cache_capacity = 16;
  opts.tile_pool_capacity = 16;
  opts.result_cache_capacity = 8;
  opts.memory_budget_bytes = kBudget;
  InferenceService service(opts);

  Rng order_rng(2023);
  for (int round = 0; round < 4; ++round) {
    std::vector<std::size_t> order(requests.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1],
                order[static_cast<std::size_t>(order_rng.uniform_int(
                    0, static_cast<std::int64_t>(i) - 1))]);
    std::vector<std::pair<std::size_t, RequestId>> ids;
    ids.reserve(order.size());
    for (std::size_t i : order) ids.emplace_back(i, service.submit(requests[i]));
    for (const auto& [i, id] : ids)
      EXPECT_EQ(service.wait(id).deterministic_fingerprint(), expected[i])
          << "round " << round << " request " << i;
  }

  // Quiesce: nothing in flight. A final rebalance collects references
  // released by the last completions, then the invariant must hold.
  service.memory_budget().rebalance();
  MemoryBudgetStats ms = service.memory_budget_stats();
  EXPECT_EQ(ms.limit_bytes, kBudget);
  EXPECT_LE(ms.bytes, static_cast<std::int64_t>(kBudget));
  std::int64_t tier_sum = 0;
  for (const MemoryTierStats& t : ms.tiers) tier_sum += t.bytes;
  EXPECT_EQ(tier_sum, ms.bytes);  // the sum is really the sum
  EXPECT_GE(ms.high_water, ms.bytes);
  EXPECT_GT(ms.high_water, 0);
  // The pool was actually exercised (operands shared across programs).
  TilePoolStats ps = service.tile_pool_stats();
  EXPECT_GT(ps.hits + ps.misses, 0);
}

}  // namespace
}  // namespace dynasparse
