// Unit + property tests: the three computation primitives are numerically
// identical (the paper's core premise — primitives differ only in which
// zeros they skip).

#include <gtest/gtest.h>

#include <tuple>

#include "matrix/format_convert.hpp"
#include "matrix/matrix_ops.hpp"
#include "test_helpers.hpp"

namespace dynasparse {
namespace {

using testing::random_dense;

TEST(MatrixOpsTest, GemmKnownValues) {
  DenseMatrix x(2, 2), y(2, 2);
  x.at(0, 0) = 1;
  x.at(0, 1) = 2;
  x.at(1, 0) = 3;
  x.at(1, 1) = 4;
  y.at(0, 0) = 5;
  y.at(0, 1) = 6;
  y.at(1, 0) = 7;
  y.at(1, 1) = 8;
  DenseMatrix z = gemm(x, y);
  EXPECT_EQ(z.at(0, 0), 19);
  EXPECT_EQ(z.at(0, 1), 22);
  EXPECT_EQ(z.at(1, 0), 43);
  EXPECT_EQ(z.at(1, 1), 50);
}

TEST(MatrixOpsTest, ShapeMismatchThrows) {
  DenseMatrix x(2, 3), y(2, 2);
  EXPECT_THROW(gemm(x, y), std::invalid_argument);
}

TEST(MatrixOpsTest, IdentityIsNeutral) {
  Rng rng(1);
  DenseMatrix x = random_dense(5, 5, 0.7, rng);
  DenseMatrix eye(5, 5);
  for (int i = 0; i < 5; ++i) eye.at(i, i) = 1.0f;
  EXPECT_EQ(DenseMatrix::max_abs_diff(gemm(x, eye), x), 0.0f);
  EXPECT_EQ(DenseMatrix::max_abs_diff(gemm(eye, x), x), 0.0f);
}

TEST(MatrixOpsTest, EmptyOperandGivesZero) {
  DenseMatrix x(3, 3), y(3, 4);
  y.fill(2.0f);
  DenseMatrix z = gemm(x, y);
  EXPECT_EQ(z.nnz(), 0);
  DenseMatrix zs = spdmm(dense_to_coo(x), y);
  EXPECT_EQ(zs.nnz(), 0);
}

// ---- Property: GEMM == SpDMM == SpDMM_rhs == SPMM across the density grid
struct PrimitiveEquivalenceParam {
  std::int64_t m, n, d;
  double ax, ay;
};

class PrimitiveEquivalence : public ::testing::TestWithParam<PrimitiveEquivalenceParam> {};

TEST_P(PrimitiveEquivalence, AllPrimitivesAgreeBitExactly) {
  const auto& p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.m * 131 + p.n * 31 + p.d * 7 +
                                     static_cast<std::uint64_t>(p.ax * 100) * 3 +
                                     static_cast<std::uint64_t>(p.ay * 100)));
  DenseMatrix xd = random_dense(p.m, p.n, p.ax, rng);
  DenseMatrix yd = random_dense(p.n, p.d, p.ay, rng);
  CooMatrix xs = dense_to_coo(xd);
  CooMatrix ys = dense_to_coo(yd);

  DenseMatrix z_gemm = gemm(xd, yd);
  DenseMatrix z_spdmm = spdmm(xs, yd);
  DenseMatrix z_spdmm_rhs = spdmm_rhs(xd, ys);
  DenseMatrix z_spmm = spmm(xs, ys);
  DenseMatrix z_csr = csr_spdmm(coo_to_csr(xs), yd);

  EXPECT_EQ(DenseMatrix::max_abs_diff(z_gemm, z_spdmm), 0.0f);
  EXPECT_EQ(DenseMatrix::max_abs_diff(z_gemm, z_spdmm_rhs), 0.0f);
  EXPECT_EQ(DenseMatrix::max_abs_diff(z_gemm, z_spmm), 0.0f);
  EXPECT_EQ(DenseMatrix::max_abs_diff(z_gemm, z_csr), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    DensityGrid, PrimitiveEquivalence,
    ::testing::Values(
        PrimitiveEquivalenceParam{8, 8, 8, 0.05, 0.05},
        PrimitiveEquivalenceParam{8, 8, 8, 0.05, 0.9},
        PrimitiveEquivalenceParam{8, 8, 8, 0.9, 0.05},
        PrimitiveEquivalenceParam{8, 8, 8, 0.9, 0.9},
        PrimitiveEquivalenceParam{16, 8, 4, 0.3, 0.3},
        PrimitiveEquivalenceParam{4, 32, 6, 0.5, 0.1},
        PrimitiveEquivalenceParam{33, 17, 9, 0.2, 0.6},
        PrimitiveEquivalenceParam{1, 64, 1, 0.5, 0.5},
        PrimitiveEquivalenceParam{64, 1, 64, 0.4, 0.4},
        PrimitiveEquivalenceParam{12, 12, 12, 0.0, 0.5},
        PrimitiveEquivalenceParam{12, 12, 12, 1.0, 1.0}));

// ---- Column-major sparse operand: SpDMM accepts either layout ----------
TEST(MatrixOpsTest, SpdmmColumnMajorSparseOperand) {
  Rng rng(12);
  DenseMatrix xd = random_dense(9, 9, 0.3, rng);
  DenseMatrix yd = random_dense(9, 5, 0.8, rng);
  CooMatrix xcol = dense_to_coo(xd).with_layout(Layout::kColMajor);
  // Column-major entry order changes the floating-point accumulation
  // order, so compare with a tolerance.
  DenseMatrix z1 = gemm(xd, yd);
  DenseMatrix z2 = spdmm(xcol, yd);
  EXPECT_LT(DenseMatrix::max_abs_diff(z1, z2), 1e-4f);
}

TEST(MatrixOpsTest, AccumulateAddsOntoExisting) {
  Rng rng(13);
  DenseMatrix x = random_dense(4, 4, 0.5, rng);
  DenseMatrix y = random_dense(4, 4, 0.5, rng);
  DenseMatrix z(4, 4);
  z.fill(1.0f);
  gemm_accumulate(x, y, z);
  DenseMatrix expect = gemm(x, y);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(z.at(r, c), expect.at(r, c) + 1.0f);
}

TEST(MatrixOpsTest, AccumulateOutputShapeChecked) {
  DenseMatrix x(2, 2), y(2, 2), z(3, 2);
  EXPECT_THROW(gemm_accumulate(x, y, z), std::invalid_argument);
}

}  // namespace
}  // namespace dynasparse
