// Unit tests: model construction (GCN/SAGE/GIN/SGC kernel sequences per
// paper Fig. 10), weights, activations, reference inference.

#include <gtest/gtest.h>

#include "graph/dataset.hpp"
#include "graph/generators.hpp"
#include "model/activation.hpp"
#include "model/model.hpp"
#include "model/reference.hpp"
#include "model/weights.hpp"

namespace dynasparse {
namespace {

GnnModel make(GnnModelKind kind, std::int64_t in = 12, std::int64_t hid = 8,
              std::int64_t out = 4, std::uint64_t seed = 1) {
  Rng rng(seed);
  return build_model(kind, in, hid, out, rng);
}

TEST(ActivationTest, Relu) {
  EXPECT_EQ(apply_activation(Activation::kRelu, 2.0f), 2.0f);
  EXPECT_EQ(apply_activation(Activation::kRelu, -2.0f), 0.0f);
  EXPECT_EQ(apply_activation(Activation::kRelu, 0.0f), 0.0f);
}

TEST(ActivationTest, PRelu) {
  EXPECT_EQ(apply_activation(Activation::kPRelu, 2.0f, 0.1f), 2.0f);
  EXPECT_FLOAT_EQ(apply_activation(Activation::kPRelu, -2.0f, 0.1f), -0.2f);
}

TEST(ActivationTest, PreservesStructuralZero) {
  for (Activation a : {Activation::kNone, Activation::kRelu, Activation::kPRelu})
    EXPECT_EQ(apply_activation(a, 0.0f), 0.0f);
}

TEST(WeightsTest, XavierBoundsAndShape) {
  Rng rng(1);
  DenseMatrix w = xavier_uniform(100, 50, rng);
  EXPECT_EQ(w.rows(), 100);
  EXPECT_EQ(w.cols(), 50);
  double bound = std::sqrt(6.0 / 150.0);
  for (float v : w.data()) {
    EXPECT_GE(v, -bound);
    EXPECT_LE(v, bound);
  }
  EXPECT_GT(w.density(), 0.99);  // continuous draw: zeros measure-null
}

TEST(ModelStructureTest, GcnKernelSequence) {
  GnnModel m = make(GnnModelKind::kGcn);
  // Per layer: Update then Aggregate -> 4 kernels, 2 weights.
  ASSERT_EQ(m.kernels.size(), 4u);
  EXPECT_EQ(m.weights.size(), 2u);
  EXPECT_EQ(m.kernels[0].kind, KernelKind::kUpdate);
  EXPECT_EQ(m.kernels[1].kind, KernelKind::kAggregate);
  EXPECT_EQ(m.kernels[1].adj, AdjKind::kSymNorm);
  EXPECT_EQ(m.kernels[1].act, Activation::kRelu);
  EXPECT_EQ(m.kernels[3].act, Activation::kNone);  // no ReLU on output
  EXPECT_EQ(m.kernels[0].input, kFromFeatures);
  std::string err;
  EXPECT_TRUE(validate_model(m, &err)) << err;
}

TEST(ModelStructureTest, SageKernelSequenceBranches) {
  GnnModel m = make(GnnModelKind::kSage);
  // Per layer: self-Update, mean-Aggregate, neigh-Update(+combine).
  ASSERT_EQ(m.kernels.size(), 6u);
  EXPECT_EQ(m.weights.size(), 4u);
  EXPECT_EQ(m.kernels[1].adj, AdjKind::kRowNorm);
  EXPECT_EQ(m.kernels[2].add_input, 0);  // combine with self path
  EXPECT_EQ(m.kernels[0].input, kFromFeatures);
  EXPECT_EQ(m.kernels[1].input, kFromFeatures);  // branch: same input
  std::string err;
  EXPECT_TRUE(validate_model(m, &err)) << err;
}

TEST(ModelStructureTest, GinKernelSequenceHasMlp) {
  GnnModel m = make(GnnModelKind::kGin);
  // Per layer: Aggregate (A + (1+eps)I) then 2-layer MLP -> 6 kernels.
  ASSERT_EQ(m.kernels.size(), 6u);
  EXPECT_EQ(m.weights.size(), 4u);
  EXPECT_EQ(m.kernels[0].adj, AdjKind::kSelfLoopEps);
  EXPECT_GT(m.kernels[0].epsilon, 0.0);
  EXPECT_EQ(m.kernels[1].act, Activation::kRelu);  // MLP inner ReLU
  std::string err;
  EXPECT_TRUE(validate_model(m, &err)) << err;
}

TEST(ModelStructureTest, SgcKernelSequence) {
  GnnModel m = make(GnnModelKind::kSgc);
  // K=2 hops then one Update: Aggregate, Aggregate, Update (Fig. 10).
  ASSERT_EQ(m.kernels.size(), 3u);
  EXPECT_EQ(m.weights.size(), 1u);
  EXPECT_EQ(m.kernels[0].kind, KernelKind::kAggregate);
  EXPECT_EQ(m.kernels[1].kind, KernelKind::kAggregate);
  EXPECT_EQ(m.kernels[2].kind, KernelKind::kUpdate);
  EXPECT_EQ(m.kernels[2].in_dim, m.in_dim);  // hops preserve feature dim
  std::string err;
  EXPECT_TRUE(validate_model(m, &err)) << err;
}

TEST(ModelStructureTest, AllModelsValidateAcrossDims) {
  for (GnnModelKind kind : paper_models())
    for (std::int64_t in : {3, 16, 100})
      for (std::int64_t hid : {4, 16}) {
        GnnModel m = make(kind, in, hid, 5);
        std::string err;
        EXPECT_TRUE(validate_model(m, &err))
            << model_kind_name(kind) << " in=" << in << ": " << err;
      }
}

TEST(ModelStructureTest, ValidateCatchesBrokenGraph) {
  GnnModel m = make(GnnModelKind::kGcn);
  m.kernels[2].input = 3;  // forward reference
  EXPECT_FALSE(validate_model(m));
  m = make(GnnModelKind::kGcn);
  m.kernels[0].weight_index = 9;
  EXPECT_FALSE(validate_model(m));
  m = make(GnnModelKind::kGcn);
  m.kernels[1].in_dim = 999;
  EXPECT_FALSE(validate_model(m));
}

TEST(ModelStructureTest, WeightDensityUnprunedIsFull) {
  GnnModel m = make(GnnModelKind::kGin);
  EXPECT_GT(m.weight_density(), 0.99);
  EXPECT_EQ(m.total_weight_elems(),
            12 * 8 + 8 * 8 + 8 * 4 + 4 * 4);  // GIN MLP shapes
}

TEST(ReferenceInferenceTest, GcnShapes) {
  Rng rng(3);
  Graph g = erdos_renyi(30, 90, rng);
  GnnModel m = make(GnnModelKind::kGcn, 12, 8, 4);
  CooMatrix h0 = generate_features(30, 12, 0.5, rng);
  auto outs = reference_inference(m, g, h0);
  ASSERT_EQ(outs.size(), 4u);
  EXPECT_EQ(outs.back().rows(), 30);
  EXPECT_EQ(outs.back().cols(), 4);
}

TEST(ReferenceInferenceTest, ReluLayersAreNonNegative) {
  Rng rng(4);
  Graph g = erdos_renyi(30, 90, rng);
  GnnModel m = make(GnnModelKind::kGcn, 12, 8, 4);
  CooMatrix h0 = generate_features(30, 12, 0.5, rng);
  auto outs = reference_inference(m, g, h0);
  for (std::int64_t r = 0; r < outs[1].rows(); ++r)
    for (std::int64_t c = 0; c < outs[1].cols(); ++c)
      EXPECT_GE(outs[1].at(r, c), 0.0f);
}

TEST(ReferenceInferenceTest, SgcIsLinearBeforeUpdate) {
  // SGC has no activation between hops: doubling H0 doubles the output.
  Rng rng(5);
  Graph g = erdos_renyi(20, 60, rng);
  GnnModel m = make(GnnModelKind::kSgc, 6, 6, 3);
  CooMatrix h0 = generate_features(20, 6, 0.5, rng);
  CooMatrix h0x2 = h0;
  for (CooEntry& e : h0x2.entries()) e.value *= 2.0f;
  DenseMatrix y1 = reference_output(m, g, h0);
  DenseMatrix y2 = reference_output(m, g, h0x2);
  for (std::int64_t r = 0; r < y1.rows(); ++r)
    for (std::int64_t c = 0; c < y1.cols(); ++c)
      EXPECT_NEAR(y2.at(r, c), 2.0f * y1.at(r, c), 1e-4f);
}

TEST(ReferenceInferenceTest, ShapeMismatchThrows) {
  Rng rng(6);
  Graph g = erdos_renyi(10, 20, rng);
  GnnModel m = make(GnnModelKind::kGcn, 12, 8, 4);
  CooMatrix wrong = generate_features(10, 99, 0.5, rng);
  EXPECT_THROW(reference_inference(m, g, wrong), std::invalid_argument);
}

TEST(ReferenceInferenceTest, IsolatedVertexGetsZeroEmbedding) {
  // Vertex 3 has no in-edges and (with kRowNorm SAGE aggregation) only
  // its self path contributes.
  Rng rng(7);
  Graph g(4, {{0, 1}, {1, 2}});
  GnnModel m = make(GnnModelKind::kGcn, 4, 4, 2);
  CooMatrix h0(4, 4, Layout::kRowMajor);
  h0.push(0, 0, 1.0f);  // only vertex 0 has features
  DenseMatrix out = reference_output(m, g, h0);
  // GCN sym-norm keeps self loops, so vertex 3 sees only its own (zero)
  // features -> zero embedding.
  for (std::int64_t c = 0; c < out.cols(); ++c) EXPECT_EQ(out.at(3, c), 0.0f);
}

}  // namespace
}  // namespace dynasparse
