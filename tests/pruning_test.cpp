// Unit + parameterized tests: magnitude pruning (paper Figs. 11/12 input).

#include <gtest/gtest.h>

#include <cmath>

#include "model/model.hpp"
#include "model/pruning.hpp"
#include "test_helpers.hpp"

namespace dynasparse {
namespace {

using testing::random_dense;

TEST(PruningTest, ZeroSparsityIsNoop) {
  Rng rng(1);
  DenseMatrix w = random_dense(20, 20, 1.0, rng);
  DenseMatrix before = w;
  magnitude_prune(w, 0.0);
  EXPECT_EQ(DenseMatrix::max_abs_diff(w, before), 0.0f);
}

TEST(PruningTest, FullSparsityEmptiesMatrix) {
  Rng rng(2);
  DenseMatrix w = random_dense(10, 10, 1.0, rng);
  magnitude_prune(w, 1.0);
  EXPECT_EQ(w.nnz(), 0);
}

TEST(PruningTest, RemovesSmallestMagnitudes) {
  DenseMatrix w(1, 4);
  w.at(0, 0) = 0.1f;
  w.at(0, 1) = -5.0f;
  w.at(0, 2) = 0.2f;
  w.at(0, 3) = 3.0f;
  magnitude_prune(w, 0.5);
  EXPECT_EQ(w.at(0, 0), 0.0f);
  EXPECT_EQ(w.at(0, 2), 0.0f);
  EXPECT_EQ(w.at(0, 1), -5.0f);
  EXPECT_EQ(w.at(0, 3), 3.0f);
}

TEST(PruningTest, CountsExistingZeros) {
  DenseMatrix w(1, 4);
  w.at(0, 1) = 1.0f;
  w.at(0, 3) = 2.0f;  // already 50% sparse
  magnitude_prune(w, 0.5);
  EXPECT_EQ(w.nnz(), 2);  // nothing more to remove
}

TEST(PruningTest, OutOfRangeThrows) {
  DenseMatrix w(2, 2);
  EXPECT_THROW(magnitude_prune(w, -0.1), std::invalid_argument);
  EXPECT_THROW(magnitude_prune(w, 1.1), std::invalid_argument);
}

class PruningSweep : public ::testing::TestWithParam<double> {};

TEST_P(PruningSweep, RealizedSparsityOnTarget) {
  double target = GetParam();
  Rng rng(42);
  DenseMatrix w = random_dense(64, 64, 1.0, rng);
  magnitude_prune(w, target);
  EXPECT_NEAR(sparsity_of(w), target, 1.0 / (64.0 * 64.0) + 1e-9);
}

TEST_P(PruningSweep, SurvivorsDominateRemoved) {
  double target = GetParam();
  if (target == 0.0 || target == 1.0) GTEST_SKIP();
  Rng rng(43);
  DenseMatrix w = random_dense(32, 32, 1.0, rng);
  DenseMatrix before = w;
  magnitude_prune(w, target);
  // Every surviving |w| must be >= every removed |w|.
  float min_kept = 1e30f, max_removed = 0.0f;
  for (std::int64_t i = 0; i < w.size(); ++i) {
    float now = w.data()[static_cast<std::size_t>(i)];
    float orig = before.data()[static_cast<std::size_t>(i)];
    if (now != 0.0f)
      min_kept = std::min(min_kept, std::fabs(now));
    else if (orig != 0.0f)
      max_removed = std::max(max_removed, std::fabs(orig));
  }
  EXPECT_GE(min_kept, max_removed);
}

INSTANTIATE_TEST_SUITE_P(SparsityGrid, PruningSweep,
                         ::testing::Values(0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 1.0));

TEST(PruneModelTest, AllWeightsPruned) {
  Rng rng(3);
  GnnModel m = build_model(GnnModelKind::kGin, 32, 16, 8, rng);
  prune_model(m, 0.8);
  for (const DenseMatrix& w : m.weights)
    EXPECT_NEAR(sparsity_of(w), 0.8, 0.02) << "matrix " << w.rows() << "x" << w.cols();
  EXPECT_NEAR(m.weight_density(), 0.2, 0.02);
}

TEST(PruneModelTest, Deterministic) {
  Rng rng1(4), rng2(4);
  GnnModel a = build_model(GnnModelKind::kGcn, 32, 16, 8, rng1);
  GnnModel b = build_model(GnnModelKind::kGcn, 32, 16, 8, rng2);
  prune_model(a, 0.6);
  prune_model(b, 0.6);
  for (std::size_t i = 0; i < a.weights.size(); ++i)
    EXPECT_EQ(DenseMatrix::max_abs_diff(a.weights[i], b.weights[i]), 0.0f);
}

}  // namespace
}  // namespace dynasparse
