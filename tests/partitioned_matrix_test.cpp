// Unit tests: Tile and PartitionedMatrix — per-partition format choice,
// density bookkeeping, tiled reconstruction, elementwise ops.

#include <gtest/gtest.h>

#include "matrix/format_convert.hpp"
#include "matrix/matrix_ops.hpp"
#include "matrix/partitioned_matrix.hpp"
#include "test_helpers.hpp"

namespace dynasparse {
namespace {

using testing::random_dense;

constexpr double kThr = 1.0 / 3.0;

TEST(TileTest, FromDenseChoosesFormatByThreshold) {
  Rng rng(1);
  DenseMatrix sparse_block = random_dense(16, 16, 0.1, rng);
  DenseMatrix dense_block = random_dense(16, 16, 0.9, rng);
  Tile ts = Tile::from_dense(sparse_block, kThr);
  Tile td = Tile::from_dense(dense_block, kThr);
  EXPECT_EQ(ts.format, TileFormat::kCoo);
  EXPECT_EQ(td.format, TileFormat::kDense);
}

TEST(TileTest, EmptyBlockBecomesEmptyTile) {
  Tile t = Tile::from_dense(DenseMatrix(8, 8), kThr);
  EXPECT_EQ(t.format, TileFormat::kEmpty);
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.nnz, 0);
  EXPECT_EQ(t.ddr_bytes(u250_config()), 0u);
}

TEST(TileTest, DdrBytesByFormat) {
  SimConfig cfg = u250_config();
  Rng rng(2);
  DenseMatrix block = random_dense(10, 10, 0.9, rng);
  Tile dense_tile = Tile::from_dense(block, kThr);
  EXPECT_EQ(dense_tile.ddr_bytes(cfg), 10u * 10u * 4u);
  Tile coo_tile = Tile::from_coo(dense_to_coo(block), 1.0);  // force COO
  EXPECT_EQ(coo_tile.ddr_bytes(cfg),
            static_cast<std::size_t>(coo_tile.nnz) * 12u);
}

TEST(TileTest, RoundTripConversions) {
  Rng rng(3);
  DenseMatrix block = random_dense(12, 9, 0.25, rng);
  Tile t = Tile::from_dense(block, kThr);
  EXPECT_EQ(DenseMatrix::max_abs_diff(t.to_dense(), block), 0.0f);
  EXPECT_EQ(DenseMatrix::max_abs_diff(t.to_coo().to_dense(), block), 0.0f);
}

TEST(TileTest, FromCooDensifiesWhenDense) {
  Rng rng(4);
  DenseMatrix block = random_dense(8, 8, 0.95, rng);
  Tile t = Tile::from_coo(dense_to_coo(block), kThr);
  EXPECT_EQ(t.format, TileFormat::kDense);
  EXPECT_EQ(DenseMatrix::max_abs_diff(t.to_dense(), block), 0.0f);
}

TEST(AccumulateProductTest, AllFormatCombinationsAgree) {
  Rng rng(5);
  DenseMatrix xd = random_dense(8, 8, 0.4, rng);
  DenseMatrix yd = random_dense(8, 8, 0.4, rng);
  DenseMatrix expect = gemm(xd, yd);
  Tile x_dense = Tile::from_dense(xd, 0.0);  // force dense
  Tile x_coo = Tile::from_coo(dense_to_coo(xd), 1.0);
  Tile y_dense = Tile::from_dense(yd, 0.0);
  Tile y_coo = Tile::from_coo(dense_to_coo(yd), 1.0);
  for (const Tile* x : {&x_dense, &x_coo})
    for (const Tile* y : {&y_dense, &y_coo}) {
      DenseMatrix z(8, 8);
      accumulate_product(*x, *y, z);
      EXPECT_EQ(DenseMatrix::max_abs_diff(z, expect), 0.0f)
          << "x fmt " << static_cast<int>(x->format) << " y fmt "
          << static_cast<int>(y->format);
    }
}

TEST(AccumulateProductTest, MaxReduceMatchesScalarDefinition) {
  Rng rng(6);
  // Non-negative inputs: accumulator init 0 matches scalar max over
  // contributions.
  DenseMatrix xd = random_dense(6, 6, 0.5, rng);
  DenseMatrix yd = random_dense(6, 6, 0.5, rng);
  for (float& v : xd.data()) v = std::abs(v);
  for (float& v : yd.data()) v = std::abs(v);
  Tile x = Tile::from_dense(xd, 0.0);
  Tile y = Tile::from_dense(yd, 0.0);
  DenseMatrix z(6, 6);
  accumulate_product(x, y, z, AccumOp::kMax);
  for (int i = 0; i < 6; ++i)
    for (int j = 0; j < 6; ++j) {
      float expect = 0.0f;
      for (int k = 0; k < 6; ++k) expect = std::max(expect, xd.at(i, k) * yd.at(k, j));
      EXPECT_FLOAT_EQ(z.at(i, j), expect);
    }
}

TEST(AccumulateProductTest, ShapeMismatchThrows) {
  Tile x = Tile::zero(4, 4), y = Tile::zero(5, 4);
  DenseMatrix z(4, 4);
  EXPECT_THROW(accumulate_product(x, y, z), std::invalid_argument);
}

TEST(PartitionedMatrixTest, GridGeometryWithEdgeTiles) {
  PartitionedMatrix m(100, 70, 32, 32);
  EXPECT_EQ(m.grid_rows(), 4);
  EXPECT_EQ(m.grid_cols(), 3);
  EXPECT_EQ(m.tile_row_count(0), 32);
  EXPECT_EQ(m.tile_row_count(3), 4);   // 100 - 3*32
  EXPECT_EQ(m.tile_col_count(2), 6);   // 70 - 2*32
  EXPECT_EQ(m.tile(3, 2).rows, 4);
  EXPECT_EQ(m.tile(3, 2).cols, 6);
}

TEST(PartitionedMatrixTest, FromDenseRoundTrip) {
  Rng rng(7);
  DenseMatrix m = random_dense(50, 33, 0.3, rng);
  PartitionedMatrix p = PartitionedMatrix::from_dense(m, 16, 8, kThr);
  EXPECT_EQ(DenseMatrix::max_abs_diff(p.to_dense(), m), 0.0f);
  EXPECT_EQ(p.total_nnz(), m.nnz());
}

TEST(PartitionedMatrixTest, FromCooRoundTrip) {
  Rng rng(8);
  CooMatrix m = testing::random_coo(41, 29, 0.15, rng);
  PartitionedMatrix p = PartitionedMatrix::from_coo(m, 16, 16, kThr);
  EXPECT_EQ(DenseMatrix::max_abs_diff(p.to_dense(), m.to_dense()), 0.0f);
}

TEST(PartitionedMatrixTest, FromCsrRoundTrip) {
  Rng rng(9);
  DenseMatrix m = random_dense(30, 30, 0.2, rng);
  PartitionedMatrix p = PartitionedMatrix::from_csr(dense_to_csr(m), 8, 8, kThr);
  EXPECT_EQ(DenseMatrix::max_abs_diff(p.to_dense(), m), 0.0f);
}

TEST(PartitionedMatrixTest, PerTileDensityVaries) {
  // Block-diagonal-ish matrix: on-diagonal tiles dense, off empty.
  DenseMatrix m(32, 32);
  for (int i = 0; i < 16; ++i)
    for (int j = 0; j < 16; ++j) m.at(i, j) = 1.0f;
  PartitionedMatrix p = PartitionedMatrix::from_dense(m, 16, 16, kThr);
  EXPECT_DOUBLE_EQ(p.tile(0, 0).density(), 1.0);
  EXPECT_TRUE(p.tile(1, 1).empty());
  auto map = p.tile_density_map();
  ASSERT_EQ(map.size(), 4u);
  EXPECT_DOUBLE_EQ(map[0], 1.0);
  EXPECT_DOUBLE_EQ(map[3], 0.0);
}

TEST(PartitionedMatrixTest, ApplyElementwiseReluResparsifies) {
  Rng rng(10);
  DenseMatrix m = random_dense(32, 32, 1.0, rng);  // dense, mixed signs
  PartitionedMatrix p = PartitionedMatrix::from_dense(m, 16, 16, kThr);
  double before = p.density();
  p.apply_elementwise([](float v) { return v > 0 ? v : 0.0f; }, kThr);
  double after = p.density();
  EXPECT_LT(after, before);
  EXPECT_NEAR(after, 0.5, 0.12);  // N(0,1) is sign-symmetric
  // Functional check against dense ReLU.
  for (float& v : m.data()) v = v > 0 ? v : 0.0f;
  EXPECT_EQ(DenseMatrix::max_abs_diff(p.to_dense(), m), 0.0f);
}

TEST(PartitionedMatrixTest, ApplyElementwiseOnCooTiles) {
  Rng rng(11);
  DenseMatrix m = random_dense(32, 32, 0.05, rng);
  PartitionedMatrix p = PartitionedMatrix::from_dense(m, 16, 16, kThr);
  p.apply_elementwise([](float v) { return 2.0f * v; }, kThr);
  for (float& v : m.data()) v *= 2.0f;
  EXPECT_EQ(DenseMatrix::max_abs_diff(p.to_dense(), m), 0.0f);
}

TEST(PartitionedMatrixTest, AddInplaceMatchesDenseAdd) {
  Rng rng(12);
  DenseMatrix a = random_dense(40, 24, 0.3, rng);
  DenseMatrix b = random_dense(40, 24, 0.3, rng);
  PartitionedMatrix pa = PartitionedMatrix::from_dense(a, 16, 8, kThr);
  PartitionedMatrix pb = PartitionedMatrix::from_dense(b, 16, 8, kThr);
  pa.add_inplace(pb, kThr);
  for (std::int64_t r = 0; r < a.rows(); ++r)
    for (std::int64_t c = 0; c < a.cols(); ++c) a.at(r, c) += b.at(r, c);
  EXPECT_EQ(DenseMatrix::max_abs_diff(pa.to_dense(), a), 0.0f);
}

TEST(PartitionedMatrixTest, AddInplaceTilingMismatchThrows) {
  PartitionedMatrix a(32, 32, 16, 16), b(32, 32, 8, 8);
  EXPECT_THROW(a.add_inplace(b, kThr), std::invalid_argument);
}

TEST(PartitionedMatrixTest, SetTileShapeChecked) {
  PartitionedMatrix p(32, 32, 16, 16);
  EXPECT_THROW(p.set_tile_from_dense(0, 0, DenseMatrix(8, 8), kThr),
               std::invalid_argument);
}

TEST(PartitionedMatrixTest, DdrBytesSumOverTiles) {
  SimConfig cfg = u250_config();
  Rng rng(13);
  DenseMatrix m = random_dense(32, 32, 0.05, rng);
  PartitionedMatrix p = PartitionedMatrix::from_dense(m, 16, 16, kThr);
  std::size_t expect = 0;
  for (std::int64_t i = 0; i < p.grid_rows(); ++i)
    for (std::int64_t j = 0; j < p.grid_cols(); ++j)
      expect += p.tile(i, j).ddr_bytes(cfg);
  EXPECT_EQ(p.ddr_bytes(cfg), expect);
  EXPECT_GT(expect, 0u);
}

}  // namespace
}  // namespace dynasparse
