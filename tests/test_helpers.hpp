#pragma once
// Shared fixtures/helpers for the Dynasparse test suite.

#include <cstdint>

#include "matrix/coo_matrix.hpp"
#include "matrix/dense_matrix.hpp"
#include "util/random.hpp"

namespace dynasparse::testing {

/// Random dense matrix with the given density: each element nonzero with
/// probability `density`, value ~ N(0, 1).
inline DenseMatrix random_dense(std::int64_t rows, std::int64_t cols, double density,
                                Rng& rng, Layout layout = Layout::kRowMajor) {
  DenseMatrix m(rows, cols, layout);
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      if (rng.bernoulli(density)) {
        float v = 0.0f;
        while (v == 0.0f) v = static_cast<float>(rng.normal());
        m.at(r, c) = v;
      }
  return m;
}

/// Random COO matrix (row-major sorted) with approximately `density`.
inline CooMatrix random_coo(std::int64_t rows, std::int64_t cols, double density,
                            Rng& rng) {
  CooMatrix m(rows, cols, Layout::kRowMajor);
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t c = 0; c < cols; ++c)
      if (rng.bernoulli(density)) {
        float v = 0.0f;
        while (v == 0.0f) v = static_cast<float>(rng.normal());
        m.push(r, c, v);
      }
  return m;
}

}  // namespace dynasparse::testing
