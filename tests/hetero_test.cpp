// Unit tests: heterogeneous CPU/GPU/FPGA planner (paper Section IX
// future-work extension).

#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "hetero/hetero_planner.hpp"

namespace dynasparse {
namespace {

struct HeteroSetup {
  Dataset ds;
  GnnModel model;
  CompiledProgram prog;
  ExecutionResult run;
};

HeteroSetup make_setup(GnnModelKind kind, double h0_density = 0.02) {
  DatasetSpec spec;
  spec.name = "het";
  spec.tag = "HT";
  spec.vertices = 2000;
  spec.edges = 12000;
  spec.feature_dim = 256;
  spec.num_classes = 8;
  spec.h0_density = h0_density;
  spec.hidden_dim = 64;
  Dataset ds = generate_dataset(spec, 1, 5);
  Rng rng(6);
  GnnModel model = build_model(kind, 256, 64, 8, rng);
  CompiledProgram prog = compile(model, ds, u250_config());
  ExecutionResult run = execute(prog, {});
  return HeteroSetup{std::move(ds), std::move(model), std::move(prog), std::move(run)};
}

TEST(HeteroPlannerTest, LatencyMatrixShape) {
  HeteroSetup s = make_setup(GnnModelKind::kGcn);
  auto lat = hetero_latency_matrix(s.prog, s.run);
  ASSERT_EQ(lat.size(), s.prog.kernels.size());
  for (const auto& row : lat)
    for (double ms : row) EXPECT_GT(ms, 0.0);
}

TEST(HeteroPlannerTest, PlanCoversAllKernels) {
  HeteroSetup s = make_setup(GnnModelKind::kSage);
  HeteroPlan plan = plan_heterogeneous(s.prog, s.run);
  ASSERT_EQ(plan.assignment.size(), s.prog.kernels.size());
  ASSERT_EQ(plan.kernel_ms.size(), s.prog.kernels.size());
  EXPECT_GT(plan.total_ms, 0.0);
  EXPECT_GT(plan.fpga_only_ms, 0.0);
}

TEST(HeteroPlannerTest, NeverWorseThanFpgaOnly) {
  // FPGA-everywhere is a feasible assignment with zero transfers, so the
  // DP optimum can only match or beat it.
  for (GnnModelKind kind : paper_models()) {
    HeteroSetup s = make_setup(kind);
    HeteroPlan plan = plan_heterogeneous(s.prog, s.run);
    EXPECT_LE(plan.total_ms, plan.fpga_only_ms + 1e-9) << model_kind_name(kind);
    EXPECT_GE(plan.speedup_vs_fpga_only(), 1.0 - 1e-9);
  }
}

TEST(HeteroPlannerTest, ExpensiveTransfersForceSingleDevice) {
  HeteroSetup s = make_setup(GnnModelKind::kGcn);
  HeteroOptions expensive;
  expensive.pcie_bytes_per_s = 1.0;          // absurdly slow link
  expensive.transfer_latency_s = 10.0;       // and huge setup cost
  HeteroPlan plan = plan_heterogeneous(s.prog, s.run, expensive);
  for (std::size_t i = 1; i < plan.assignment.size(); ++i)
    EXPECT_EQ(plan.assignment[i], plan.assignment[0]);
  EXPECT_DOUBLE_EQ(plan.transfer_ms, 0.0);
}

TEST(HeteroPlannerTest, FreeTransfersPickPerKernelArgmin) {
  HeteroSetup s = make_setup(GnnModelKind::kGin);
  HeteroOptions free;
  free.pcie_bytes_per_s = 1e18;
  free.transfer_latency_s = 0.0;
  HeteroPlan plan = plan_heterogeneous(s.prog, s.run, free);
  auto lat = hetero_latency_matrix(s.prog, s.run);
  for (std::size_t i = 0; i < plan.assignment.size(); ++i) {
    int chosen = static_cast<int>(plan.assignment[i]);
    for (int d = 0; d < kNumDevices; ++d)
      EXPECT_LE(lat[i][static_cast<std::size_t>(chosen)],
                lat[i][static_cast<std::size_t>(d)] + 1e-12)
          << "kernel " << i;
  }
}

TEST(HeteroPlannerTest, DescribeListsDevicesAndTotals) {
  HeteroSetup s = make_setup(GnnModelKind::kGcn);
  HeteroPlan plan = plan_heterogeneous(s.prog, s.run);
  std::string d = plan.describe();
  EXPECT_NE(d.find("hetero plan:"), std::string::npos);
  EXPECT_NE(d.find("speedup"), std::string::npos);
}

TEST(HeteroPlannerTest, EmptyProgramYieldsEmptyPlan) {
  CompiledProgram prog;
  ExecutionResult run;
  HeteroPlan plan = plan_heterogeneous(prog, run);
  EXPECT_TRUE(plan.assignment.empty());
  EXPECT_DOUBLE_EQ(plan.total_ms, 0.0);
}

TEST(DeviceNameTest, AllNamed) {
  EXPECT_STREQ(device_name(DeviceKind::kCpu), "CPU");
  EXPECT_STREQ(device_name(DeviceKind::kGpu), "GPU");
  EXPECT_STREQ(device_name(DeviceKind::kFpga), "FPGA");
}

}  // namespace
}  // namespace dynasparse
