// Randomized end-to-end regression sweep: many seeds x models over
// randomly-shaped graphs, checking the full pipeline invariants each
// time — engine output equals the reference bit-for-bit, report
// accounting is internally consistent, and dynamic mapping never loses
// to the statics on modelled compute.

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.hpp"
#include "io/graph_io.hpp"
#include "io/ir_io.hpp"
#include "model/reference.hpp"

namespace dynasparse {
namespace {

struct FuzzCase {
  std::uint64_t seed;
  GnnModelKind kind;
};

class FuzzSweep : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(FuzzSweep, PipelineInvariantsHold) {
  const FuzzCase& fc = GetParam();
  Rng shape_rng(fc.seed * 7919);

  DatasetSpec spec;
  spec.name = "fuzz";
  spec.tag = "FZ";
  spec.vertices = shape_rng.uniform_int(40, 400);
  spec.edges = shape_rng.uniform_int(spec.vertices, spec.vertices * 6);
  spec.feature_dim = shape_rng.uniform_int(4, 96);
  spec.num_classes = shape_rng.uniform_int(2, 12);
  spec.h0_density = shape_rng.uniform(0.01, 0.9);
  spec.hidden_dim = shape_rng.uniform_int(4, 48);
  spec.degree_skew = shape_rng.uniform(0.0, 0.8);
  Dataset ds = generate_dataset(spec, 1, fc.seed);

  Rng rng(fc.seed + 1);
  GnnModel m = build_model(fc.kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                           ds.spec.num_classes, rng);
  double sparsity = shape_rng.uniform(0.0, 0.95);
  prune_model(m, sparsity);

  CompiledProgram prog = compile(m, ds, u250_config());
  ExecutionResult dyn = execute(prog, {});

  // 1. Functional equality with the naive reference.
  DenseMatrix expect = reference_output(m, ds.graph, ds.features);
  ASSERT_EQ(DenseMatrix::max_abs_diff(dyn.output.to_dense(), expect), 0.0f)
      << model_kind_name(fc.kind) << " seed " << fc.seed;

  // 2. Report self-consistency.
  double sum = 0.0;
  for (const KernelExecutionReport& k : dyn.kernels) {
    EXPECT_EQ(k.pairs, k.pairs_gemm + k.pairs_spdmm + k.pairs_spmm + k.pairs_skipped);
    EXPECT_GE(k.makespan_cycles, 0.0);
    sum += k.makespan_cycles;
  }
  EXPECT_DOUBLE_EQ(dyn.exec_cycles, sum);
  EXPECT_GE(dyn.latency_ms, dyn.exec_ms);

  // 3. Dynamic compute never exceeds either static strategy's (up to the
  // one-cycle mode switches).
  RuntimeOptions opt;
  opt.functional = true;
  opt.strategy = MappingStrategy::kStatic1;
  double s1 = execute(prog, opt).stats.compute_cycles;
  opt.strategy = MappingStrategy::kStatic2;
  double s2 = execute(prog, opt).stats.compute_cycles;
  double slack = static_cast<double>(dyn.stats.pairs) + 1.0;
  EXPECT_LE(dyn.stats.compute_cycles, std::min(s1, s2) + slack);
}

std::vector<FuzzCase> fuzz_cases() {
  std::vector<FuzzCase> cases;
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    for (GnnModelKind kind : paper_models()) cases.push_back({seed, kind});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSweep, ::testing::ValuesIn(fuzz_cases()),
                         [](const auto& info) {
                           return std::string(model_kind_name(info.param.kind)) +
                                  "_seed" + std::to_string(info.param.seed);
                         });

// ---- I/O round-trip fuzzing ---------------------------------------------
// write -> read -> write must be a fixpoint (the second write emits the
// same bytes), and the re-read structures must equal the originals. Runs
// over randomly shaped graphs / features / compiled IR.

Dataset random_io_dataset(std::uint64_t seed) {
  Rng shape_rng(seed * 104729);
  DatasetSpec spec;
  spec.name = "iofuzz";
  spec.tag = "IO";
  spec.vertices = shape_rng.uniform_int(1, 300);
  spec.edges = shape_rng.uniform_int(1, spec.vertices * 5);
  spec.feature_dim = shape_rng.uniform_int(1, 64);
  spec.num_classes = shape_rng.uniform_int(2, 9);
  spec.h0_density = shape_rng.uniform(0.0, 0.9);
  spec.hidden_dim = shape_rng.uniform_int(2, 24);
  spec.degree_skew = shape_rng.uniform(0.0, 0.8);
  return generate_dataset(spec, 1, seed);
}

class IoRoundTripFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(IoRoundTripFuzz, EdgeListWriteReadWriteFixpoint) {
  Dataset ds = random_io_dataset(GetParam());
  std::ostringstream first;
  write_edge_list(ds.graph, first);
  std::istringstream in(first.str());
  Graph back = read_edge_list(in);

  ASSERT_EQ(back.num_vertices(), ds.graph.num_vertices());
  ASSERT_EQ(back.num_edges(), ds.graph.num_edges());
  const CsrMatrix& a = ds.graph.adjacency();
  const CsrMatrix& b = back.adjacency();
  EXPECT_EQ(a.row_ptr(), b.row_ptr());
  EXPECT_EQ(a.col_idx(), b.col_idx());
  EXPECT_EQ(a.values(), b.values());

  std::ostringstream second;
  write_edge_list(back, second);
  EXPECT_EQ(first.str(), second.str()) << "seed " << GetParam();
}

TEST_P(IoRoundTripFuzz, FeaturesWriteReadWriteFixpoint) {
  Dataset ds = random_io_dataset(GetParam() + 7);
  std::ostringstream first;
  write_features(ds.features, first);
  std::istringstream in(first.str());
  CooMatrix back = read_features(in);

  ASSERT_EQ(back.rows(), ds.features.rows());
  ASSERT_EQ(back.cols(), ds.features.cols());
  ASSERT_EQ(back.nnz(), ds.features.nnz());
  for (std::int64_t i = 0; i < back.nnz(); ++i) {
    const CooEntry& x = ds.features.entries()[static_cast<std::size_t>(i)];
    const CooEntry& y = back.entries()[static_cast<std::size_t>(i)];
    ASSERT_EQ(x.row, y.row);
    ASSERT_EQ(x.col, y.col);
    ASSERT_EQ(x.value, y.value) << "entry " << i;
  }

  std::ostringstream second;
  write_features(back, second);
  EXPECT_EQ(first.str(), second.str()) << "seed " << GetParam();
}

TEST_P(IoRoundTripFuzz, IrSnapshotWriteReadWriteFixpoint) {
  std::uint64_t seed = GetParam();
  Dataset ds = random_io_dataset(seed + 13);
  Rng rng(seed + 14);
  GnnModelKind kind = paper_models()[static_cast<std::size_t>(seed) % 4];
  GnnModel m = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                           ds.spec.num_classes, rng);
  CompiledProgram prog = compile(m, ds, u250_config());
  IrSnapshot snap = snapshot_of(prog);

  std::ostringstream first;
  write_ir(snap, first);
  std::istringstream in(first.str());
  IrSnapshot back = read_ir(in);
  EXPECT_TRUE(snap == back) << "seed " << seed;

  std::ostringstream second;
  write_ir(back, second);
  EXPECT_EQ(first.str(), second.str()) << "seed " << seed;
}

// read_ir must treat its input as hostile: truncated or corrupted
// snapshots throw std::runtime_error with a line number — never crash,
// never allocate from an unvalidated count (a `kernels 99999999999` line
// must be a parse error, not a bad_alloc/OOM).

/// A valid serialized snapshot to mutate.
std::string serialized_snapshot(std::uint64_t seed) {
  Dataset ds = random_io_dataset(seed + 13);
  Rng rng(seed + 14);
  GnnModelKind kind = paper_models()[static_cast<std::size_t>(seed) % 4];
  GnnModel m = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                           ds.spec.num_classes, rng);
  CompiledProgram prog = compile(m, ds, u250_config());
  std::ostringstream os;
  write_ir(snapshot_of(prog), os);
  return os.str();
}

TEST_P(IoRoundTripFuzz, TruncatedIrSnapshotsThrowNeverCrash) {
  const std::string full = serialized_snapshot(GetParam());
  // Any prefix missing at least the final line must fail cleanly: either
  // a cut line loses required fields, or a later required line is absent.
  // (Cutting *within* the final line can still parse — "steps 12" ->
  // "steps 1" — so the sweep stops at its start. Sampled stride + the
  // empty prefix keep the sweep fast.)
  const std::size_t last_line = full.rfind("scheme");
  ASSERT_NE(last_line, std::string::npos);
  for (std::size_t len = 0; len <= last_line; len += 7) {
    std::istringstream in(full.substr(0, len));
    EXPECT_THROW(read_ir(in), std::runtime_error) << "prefix length " << len;
  }
}

TEST_P(IoRoundTripFuzz, HostileKernelCountsAreParseErrorsNotOoms) {
  const std::string full = serialized_snapshot(GetParam());
  const std::string counts[] = {"99999999999", "-3", "1048577", "two"};
  for (const std::string& count : counts) {
    // Rewrite the `kernels N` line, keeping the rest of the snapshot.
    std::istringstream lines(full);
    std::ostringstream mutated;
    std::string line;
    while (std::getline(lines, line)) {
      if (line.rfind("kernels ", 0) == 0) line = "kernels " + count;
      mutated << line << '\n';
    }
    std::istringstream in(mutated.str());
    EXPECT_THROW(read_ir(in), std::runtime_error) << "count " << count;
  }
}

TEST_P(IoRoundTripFuzz, RandomlyCorruptedIrSnapshotsNeverCrash) {
  const std::string full = serialized_snapshot(GetParam());
  Rng rng(GetParam() * 31 + 7);
  for (int trial = 0; trial < 64; ++trial) {
    std::string corrupt = full;
    // Flip 1-4 characters to arbitrary printable bytes (newlines
    // included, so lines can merge or split).
    int flips = 1 + static_cast<int>(rng.uniform_int(0, 3));
    for (int f = 0; f < flips; ++f) {
      std::size_t pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(corrupt.size()) - 1));
      corrupt[pos] = static_cast<char>(rng.uniform_int(9, 126));
    }
    std::istringstream in(corrupt);
    try {
      IrSnapshot snap = read_ir(in);  // a benign flip may still parse...
      EXPECT_LE(snap.kernels.size(), 1u << 20);  // ...but never oversized
    } catch (const std::runtime_error&) {
      // Expected for most mutations; anything else (bad_alloc, UB caught
      // by sanitizers, uncaught stoi exceptions) fails the test.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IoRoundTripFuzz,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace dynasparse
