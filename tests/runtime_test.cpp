// Integration-grade unit tests of the runtime system: functional
// correctness against the naive reference, timing structure, strategy
// behaviour, runtime-overhead accounting.

#include <gtest/gtest.h>

#include "compiler/compiler.hpp"
#include "graph/generators.hpp"
#include "model/reference.hpp"
#include "runtime/runtime_system.hpp"

namespace dynasparse {
namespace {

struct TestSetup {
  Dataset ds;
  GnnModel model;
  CompiledProgram prog;
};

TestSetup make_setup(GnnModelKind kind, double h0_density = 0.3,
                     std::uint64_t seed = 11) {
  DatasetSpec spec;
  spec.name = "toy";
  spec.tag = "TOY";
  spec.vertices = 150;
  spec.edges = 600;
  spec.feature_dim = 40;
  spec.num_classes = 5;
  spec.h0_density = h0_density;
  spec.hidden_dim = 12;
  Dataset ds = generate_dataset(spec, 1, seed);
  Rng rng(seed + 1);
  GnnModel model =
      build_model(kind, spec.feature_dim, spec.hidden_dim, spec.num_classes, rng);
  CompiledProgram prog = compile(model, ds, u250_config());
  return TestSetup{std::move(ds), std::move(model), std::move(prog)};
}

class RuntimeFunctional : public ::testing::TestWithParam<GnnModelKind> {};

TEST_P(RuntimeFunctional, MatchesReferenceBitExactly) {
  TestSetup s = make_setup(GetParam());
  RuntimeOptions opt;
  ExecutionResult r = execute(s.prog, opt);
  DenseMatrix expect = reference_output(s.model, s.ds.graph, s.ds.features);
  EXPECT_EQ(DenseMatrix::max_abs_diff(r.output.to_dense(), expect), 0.0f)
      << model_kind_name(GetParam());
}

TEST_P(RuntimeFunctional, AllStrategiesProduceIdenticalValues) {
  TestSetup s = make_setup(GetParam());
  RuntimeOptions opt;
  opt.strategy = MappingStrategy::kDynamic;
  DenseMatrix dyn = execute(s.prog, opt).output.to_dense();
  opt.strategy = MappingStrategy::kStatic1;
  DenseMatrix s1 = execute(s.prog, opt).output.to_dense();
  opt.strategy = MappingStrategy::kStatic2;
  DenseMatrix s2 = execute(s.prog, opt).output.to_dense();
  EXPECT_EQ(DenseMatrix::max_abs_diff(dyn, s1), 0.0f);
  EXPECT_EQ(DenseMatrix::max_abs_diff(dyn, s2), 0.0f);
}

TEST_P(RuntimeFunctional, SingleThreadMatchesParallel) {
  TestSetup s = make_setup(GetParam());
  RuntimeOptions opt;
  opt.host_threads = 1;
  DenseMatrix serial = execute(s.prog, opt).output.to_dense();
  opt.host_threads = 8;
  DenseMatrix parallel = execute(s.prog, opt).output.to_dense();
  EXPECT_EQ(DenseMatrix::max_abs_diff(serial, parallel), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(AllModels, RuntimeFunctional,
                         ::testing::Values(GnnModelKind::kGcn, GnnModelKind::kSage,
                                           GnnModelKind::kGin, GnnModelKind::kSgc),
                         [](const auto& info) { return model_kind_name(info.param); });

TEST(RuntimeTimingTest, ReportStructure) {
  TestSetup s = make_setup(GnnModelKind::kGcn);
  ExecutionResult r = execute(s.prog, {});
  ASSERT_EQ(r.kernels.size(), s.model.kernels.size());
  double sum = 0.0;
  for (const KernelExecutionReport& k : r.kernels) {
    EXPECT_GT(k.makespan_cycles, 0.0) << k.name;
    EXPECT_GT(k.tasks, 0);
    EXPECT_EQ(k.pairs, k.pairs_gemm + k.pairs_spdmm + k.pairs_spmm + k.pairs_skipped);
    EXPECT_GE(k.load_imbalance, 1.0);
    sum += k.makespan_cycles;
  }
  EXPECT_DOUBLE_EQ(r.exec_cycles, sum);
  EXPECT_NEAR(r.exec_ms, u250_config().cycles_to_ms(sum), 1e-12);
  EXPECT_GT(r.latency_ms, 0.0);
}

TEST(RuntimeTimingTest, DynamicComputeNeverExceedsStatic) {
  for (GnnModelKind kind : paper_models()) {
    TestSetup s = make_setup(kind);
    RuntimeOptions opt;
    opt.strategy = MappingStrategy::kDynamic;
    double dyn = execute(s.prog, opt).stats.compute_cycles;
    opt.strategy = MappingStrategy::kStatic1;
    double s1 = execute(s.prog, opt).stats.compute_cycles;
    opt.strategy = MappingStrategy::kStatic2;
    double s2 = execute(s.prog, opt).stats.compute_cycles;
    // Mode switches add up to one cycle per pair; allow that slack.
    double slack = static_cast<double>(execute(s.prog, opt).stats.pairs) + 1.0;
    EXPECT_LE(dyn, std::min(s1, s2) + slack) << model_kind_name(kind);
  }
}

TEST(RuntimeTimingTest, DynamicSkipsEmptyPairs) {
  // Features nearly empty and partitions forced small so whole H0
  // partitions are zero — Dynamic skips them outright (Algorithm 7
  // lines 6-7) and the statics cannot.
  DatasetSpec spec;
  spec.name = "toy";
  spec.tag = "TOY";
  spec.vertices = 150;
  spec.edges = 600;
  spec.feature_dim = 40;
  spec.num_classes = 5;
  spec.h0_density = 0.0005;
  spec.hidden_dim = 12;
  Dataset ds = generate_dataset(spec, 1, 11);
  Rng rng(12);
  GnnModel model = build_model(GnnModelKind::kGcn, 40, 12, 5, rng);
  SimConfig cfg = u250_config();
  cfg.min_partition = 16;
  cfg.onchip_tile_bytes = 16 * 16 * 4;  // Nmax = 16 -> many tiny tiles
  CompiledProgram prog = compile(model, ds, cfg);
  RuntimeOptions opt;
  opt.strategy = MappingStrategy::kDynamic;
  ExecutionResult r = execute(prog, opt);
  EXPECT_GT(r.stats.pairs_skipped, 0);
  opt.strategy = MappingStrategy::kStatic1;
  ExecutionResult rs = execute(prog, opt);
  EXPECT_EQ(rs.stats.pairs_skipped, 0);  // statics never skip
}

TEST(RuntimeTimingTest, Static1UsesOnlySpdmmAndGemm) {
  TestSetup s = make_setup(GnnModelKind::kGcn);
  RuntimeOptions opt;
  opt.strategy = MappingStrategy::kStatic1;
  ExecutionResult r = execute(s.prog, opt);
  EXPECT_EQ(r.stats.pairs_spmm, 0);
  EXPECT_GT(r.stats.pairs_gemm, 0);
  EXPECT_GT(r.stats.pairs_spdmm, 0);
}

TEST(RuntimeTimingTest, Static2UsesOnlySpdmm) {
  TestSetup s = make_setup(GnnModelKind::kGcn);
  RuntimeOptions opt;
  opt.strategy = MappingStrategy::kStatic2;
  ExecutionResult r = execute(s.prog, opt);
  EXPECT_EQ(r.stats.pairs_spmm, 0);
  EXPECT_EQ(r.stats.pairs_gemm, 0);
  EXPECT_EQ(r.stats.pairs_skipped, 0);
  EXPECT_EQ(r.stats.pairs_spdmm, r.stats.pairs);
}

TEST(RuntimeTimingTest, SoftOverheadOnlyForDynamicK2P) {
  TestSetup s = make_setup(GnnModelKind::kGcn);
  RuntimeOptions opt;
  opt.strategy = MappingStrategy::kDynamic;
  double dyn_soft = execute(s.prog, opt).soft_ms;
  opt.strategy = MappingStrategy::kStatic1;
  double s1_soft = execute(s.prog, opt).soft_ms;
  EXPECT_GT(dyn_soft, s1_soft);  // statics pay dispatch only
  EXPECT_GT(s1_soft, 0.0);
}

TEST(RuntimeTimingTest, RuntimeOverheadMostlyHidden) {
  TestSetup s = make_setup(GnnModelKind::kGcn);
  RuntimeOptions opt;
  ExecutionResult r = execute(s.prog, opt);
  // Paper accounting: runtime system fully hidden by overlap.
  EXPECT_DOUBLE_EQ(r.exposed_runtime_ms, 0.0);
  EXPECT_GT(r.soft_ms, 0.0);  // ...but its cost is still measured (Fig. 13)
  RuntimeOptions exposed = opt;
  exposed.hide_runtime = false;
  ExecutionResult re = execute(s.prog, exposed);
  EXPECT_NEAR(re.exposed_runtime_ms, re.soft_ms, 1e-12);
  EXPECT_GT(re.latency_ms, r.latency_ms);
}

TEST(RuntimeTimingTest, AhmAblationIncreasesLatency) {
  TestSetup s = make_setup(GnnModelKind::kGcn);
  RuntimeOptions hidden;
  RuntimeOptions exposed;
  exposed.hide_ahm = false;
  double lat_hidden = execute(s.prog, hidden).exec_ms;
  double lat_exposed = execute(s.prog, exposed).exec_ms;
  EXPECT_GT(lat_exposed, lat_hidden);
}

TEST(RuntimeTimingTest, OutputDensitiesTracked) {
  TestSetup s = make_setup(GnnModelKind::kGcn);
  ExecutionResult r = execute(s.prog, {});
  ASSERT_EQ(r.node_densities.size(), s.model.kernels.size());
  for (double d : r.node_densities) {
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
  // The kernel reports carry the same values.
  for (std::size_t i = 0; i < r.kernels.size(); ++i)
    EXPECT_DOUBLE_EQ(r.kernels[i].output_density, r.node_densities[i]);
}

TEST(RuntimeTimingTest, DeterministicAcrossRuns) {
  TestSetup s = make_setup(GnnModelKind::kSage);
  ExecutionResult a = execute(s.prog, {});
  ExecutionResult b = execute(s.prog, {});
  EXPECT_DOUBLE_EQ(a.exec_cycles, b.exec_cycles);
  EXPECT_DOUBLE_EQ(a.latency_ms, b.latency_ms);
  EXPECT_EQ(DenseMatrix::max_abs_diff(a.output.to_dense(), b.output.to_dense()), 0.0f);
}

}  // namespace
}  // namespace dynasparse
