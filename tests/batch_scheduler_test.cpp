// Continuous cross-request batching: the BatchScheduler's collection
// policy (window/K cutoffs, per-key grouping, close-time flush) tested
// directly against a plain job type, and the end-to-end contract tested
// through the service — a request executed as a fused batch member
// produces an InferenceReport whose deterministic_fingerprint() is
// bit-identical to the same request executed solo, across models,
// datasets and batch sizes, with the fusion counters proving batching
// actually happened (these are not vacuous passthrough runs).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "service/batch_scheduler.hpp"
#include "service/inference_service.hpp"
#include "util/blocking_queue.hpp"
#include "util/random.hpp"

namespace dynasparse {
namespace {

// ---------------------------------------------------------------------
// Scheduler policy semantics, against a plain job type.
// ---------------------------------------------------------------------

struct FakeJob {
  int key = 0;
  int seq = 0;
};

BatchKey fake_key(const FakeJob& j) {
  return BatchKey{static_cast<std::uint64_t>(j.key), 42};
}

TEST(BatchSchedulerPolicy, DisabledPolicyIsPurePassthrough) {
  BlockingQueue<FakeJob> q(0);
  BatchScheduler<FakeJob> sched(q, BatchPolicy{}, fake_key);
  ASSERT_FALSE(BatchPolicy{}.enabled());
  ASSERT_TRUE(q.push(FakeJob{1, 0}));
  ASSERT_TRUE(q.push(FakeJob{1, 1}));
  std::vector<FakeJob> out;
  ASSERT_TRUE(sched.next_batch(out));
  ASSERT_EQ(out.size(), 1u);  // one at a time, even with same-key jobs queued
  EXPECT_EQ(out[0].seq, 0);
  ASSERT_TRUE(sched.next_batch(out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].seq, 1);
  q.close();
  EXPECT_FALSE(sched.next_batch(out));
}

TEST(BatchSchedulerPolicy, KCutoffReleasesWithoutWaitingForWindow) {
  BlockingQueue<FakeJob> q(0);
  // A window long enough that a timing-based release would hang the test:
  // only the K cutoff can explain a prompt return.
  BatchScheduler<FakeJob> sched(q, BatchPolicy{60'000'000, 3}, fake_key);
  for (int i = 0; i < 3; ++i)
    ASSERT_TRUE(q.push(FakeJob{7, i}));
  std::vector<FakeJob> out;
  ASSERT_TRUE(sched.next_batch(out));
  ASSERT_EQ(out.size(), 3u);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(out[i].seq, i);  // arrival order
}

TEST(BatchSchedulerPolicy, WindowExpiryReleasesAPartialGroup) {
  BlockingQueue<FakeJob> q(0);
  // K never reached (max 100): only the 5 ms window can release.
  BatchScheduler<FakeJob> sched(q, BatchPolicy{5'000, 100}, fake_key);
  ASSERT_TRUE(q.push(FakeJob{3, 0}));
  ASSERT_TRUE(q.push(FakeJob{3, 1}));
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<FakeJob> out;
  ASSERT_TRUE(sched.next_batch(out));
  ASSERT_EQ(out.size(), 2u);
  // The release must have waited for the window (minus scheduling slop,
  // generous upper bound for loaded CI machines).
  const double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
  EXPECT_GE(ms, 3.0);
  EXPECT_LT(ms, 4000.0);
}

TEST(BatchSchedulerPolicy, ZeroWindowBatchesOnlyWhatIsAlreadyQueued) {
  BlockingQueue<FakeJob> q(0);
  BatchScheduler<FakeJob> sched(q, BatchPolicy{0, 100}, fake_key);
  for (int i = 0; i < 4; ++i)
    ASSERT_TRUE(q.push(FakeJob{9, i}));
  std::vector<FakeJob> out;
  // Everything queued fuses; nothing waits for more.
  ASSERT_TRUE(sched.next_batch(out));
  EXPECT_EQ(out.size(), 4u);
  // A lone job released immediately as a singleton batch.
  ASSERT_TRUE(q.push(FakeJob{9, 4}));
  ASSERT_TRUE(sched.next_batch(out));
  EXPECT_EQ(out.size(), 1u);
}

TEST(BatchSchedulerPolicy, GroupsByKeyNeverMixing) {
  BlockingQueue<FakeJob> q(0);
  BatchScheduler<FakeJob> sched(q, BatchPolicy{60'000'000, 2}, fake_key);
  // Interleaved keys: A B A B. Key A reaches K=2 first.
  ASSERT_TRUE(q.push(FakeJob{1, 0}));
  ASSERT_TRUE(q.push(FakeJob{2, 1}));
  ASSERT_TRUE(q.push(FakeJob{1, 2}));
  ASSERT_TRUE(q.push(FakeJob{2, 3}));
  std::vector<FakeJob> out;
  ASSERT_TRUE(sched.next_batch(out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, 1);
  EXPECT_EQ(out[1].key, 1);
  ASSERT_TRUE(sched.next_batch(out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, 2);
  EXPECT_EQ(out[1].key, 2);
}

TEST(BatchSchedulerPolicy, CloseFlushesPendingGroupsOnePerCall) {
  BlockingQueue<FakeJob> q(0);
  BatchScheduler<FakeJob> sched(q, BatchPolicy{60'000'000, 100}, fake_key);
  ASSERT_TRUE(q.push(FakeJob{1, 0}));
  ASSERT_TRUE(q.push(FakeJob{2, 1}));
  ASSERT_TRUE(q.push(FakeJob{1, 2}));
  q.close();
  std::vector<FakeJob> out;
  // Oldest group (key 1) first, then key 2, then end-of-stream.
  ASSERT_TRUE(sched.next_batch(out));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].key, 1);
  ASSERT_TRUE(sched.next_batch(out));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].key, 2);
  EXPECT_FALSE(sched.next_batch(out));
}

// ---------------------------------------------------------------------
// End-to-end: fused execution is bit-identical to solo execution.
// ---------------------------------------------------------------------

Dataset batch_dataset(std::uint64_t seed, const std::string& tag) {
  DatasetSpec spec;
  spec.name = "batch";
  spec.tag = tag;
  spec.vertices = 150;
  spec.edges = 600;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  spec.h0_density = 0.3;
  spec.hidden_dim = 8;
  spec.degree_skew = 0.5;
  return generate_dataset(spec, 1, seed);
}

/// A fusion-compatible roster: same dataset content and layer shapes
/// (equal BatchKey) but a different weight draw per member — different
/// CompileKeys, so this exercises genuine cross-request fusion, not
/// result memoization.
std::vector<ServiceRequest> compatible_requests(std::size_t n, GnnModelKind kind,
                                                std::uint64_t dataset_seed,
                                                const std::string& tag) {
  std::vector<ServiceRequest> reqs;
  for (std::size_t i = 0; i < n; ++i) {
    Dataset ds = batch_dataset(dataset_seed, tag);
    Rng rng(1000 + 31 * i);
    GnnModel model = build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                                 ds.spec.num_classes, rng);
    model.name += "#" + std::to_string(i);
    reqs.push_back(ServiceRequest::own(std::move(model), std::move(ds)));
  }
  return reqs;
}

std::uint64_t solo_fingerprint(const ServiceRequest& req) {
  CompiledProgram prog = compile(*req.model, *req.dataset, req.options.config);
  InferenceReport rep = run_compiled(prog, req.options.runtime);
  rep.dataset_tag = req.dataset->spec.tag;
  return rep.deterministic_fingerprint();
}

TEST(BatchServiceFusion, FusedReportsAreBitIdenticalToSoloAcrossSweep) {
  const GnnModelKind kinds[] = {GnnModelKind::kGcn, GnnModelKind::kSage};
  const std::size_t batch_sizes[] = {2, 3, 5};
  std::uint64_t dataset_seed = 77;
  for (GnnModelKind kind : kinds) {
    for (std::size_t k : batch_sizes) {
      ++dataset_seed;
      std::vector<ServiceRequest> reqs =
          compatible_requests(k, kind, dataset_seed, "BT");
      std::vector<std::uint64_t> expected;
      for (const ServiceRequest& r : reqs)
        expected.push_back(solo_fingerprint(r));

      ServiceOptions opts;
      opts.workers = 2;
      // K = the roster size releases the batch the moment the last
      // member arrives; the long window is only the backstop.
      opts.batch_window_us = 3'000'000;
      opts.max_batch_size = k;
      InferenceService svc(opts);
      std::vector<RequestId> ids;
      for (ServiceRequest& r : reqs) ids.push_back(svc.submit(std::move(r)));
      for (std::size_t i = 0; i < ids.size(); ++i) {
        InferenceReport rep = svc.wait(ids[i]);
        EXPECT_EQ(rep.deterministic_fingerprint(), expected[i])
            << "kind=" << static_cast<int>(kind) << " k=" << k
            << " member=" << i;
      }
      const BatchStats bs = svc.batch_stats();
      EXPECT_EQ(bs.batched_requests, static_cast<std::int64_t>(k));
      EXPECT_EQ(bs.fused_requests, static_cast<std::int64_t>(k))
          << "expected the whole roster to execute as one fused batch";
      EXPECT_GT(bs.fused_kernels, 0)
          << "no kernel ran as a shared-operand sweep: fusion was vacuous";
      EXPECT_GT(bs.mean_occupancy(), 1.0);
      svc.shutdown();
    }
  }
}

TEST(BatchServiceFusion, MixedDatasetsGroupSeparatelyAndStayCorrect) {
  // Two incompatible populations (different dataset content) interleaved:
  // the scheduler must group them apart; every report still matches its
  // solo reference exactly.
  std::vector<ServiceRequest> a = compatible_requests(2, GnnModelKind::kGcn, 5, "DA");
  std::vector<ServiceRequest> b = compatible_requests(2, GnnModelKind::kGcn, 6, "DB");
  std::vector<ServiceRequest> interleaved;
  interleaved.push_back(std::move(a[0]));
  interleaved.push_back(std::move(b[0]));
  interleaved.push_back(std::move(a[1]));
  interleaved.push_back(std::move(b[1]));
  std::vector<std::uint64_t> expected;
  for (const ServiceRequest& r : interleaved)
    expected.push_back(solo_fingerprint(r));

  ServiceOptions opts;
  opts.workers = 2;
  opts.batch_window_us = 3'000'000;
  opts.max_batch_size = 2;
  InferenceService svc(opts);
  std::vector<RequestId> ids;
  for (ServiceRequest& r : interleaved) ids.push_back(svc.submit(std::move(r)));
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(svc.wait(ids[i]).deterministic_fingerprint(), expected[i])
        << "member=" << i;
  const BatchStats bs = svc.batch_stats();
  EXPECT_EQ(bs.batched_requests, 4);
  EXPECT_EQ(bs.fused_batches, 2);  // one 2-batch per dataset, never mixed
  svc.shutdown();
}

TEST(BatchServiceFusion, SingleRequestDegeneratePathMatchesSolo) {
  std::vector<ServiceRequest> reqs =
      compatible_requests(1, GnnModelKind::kGcn, 11, "SG");
  const std::uint64_t expected = solo_fingerprint(reqs[0]);
  ServiceOptions opts;
  opts.workers = 1;
  opts.batch_window_us = 5'000;  // batching ON, but only one request ever
  InferenceService svc(opts);
  RequestId id = svc.submit(std::move(reqs[0]));
  EXPECT_EQ(svc.wait(id).deterministic_fingerprint(), expected);
  const BatchStats bs = svc.batch_stats();
  EXPECT_EQ(bs.batches_formed, 1);
  EXPECT_EQ(bs.batched_requests, 1);
  EXPECT_EQ(bs.fused_batches, 0);
  EXPECT_EQ(bs.fused_requests, 0);
  EXPECT_EQ(bs.fused_kernels, 0);
  svc.shutdown();
}

TEST(BatchServiceFusion, UnbatchedDefaultsKeepCountersZero) {
  std::vector<ServiceRequest> reqs =
      compatible_requests(3, GnnModelKind::kGcn, 21, "UB");
  std::vector<std::uint64_t> expected;
  for (const ServiceRequest& r : reqs) expected.push_back(solo_fingerprint(r));
  ServiceOptions opts;
  opts.workers = 2;  // defaults: batch_window_us = 0, max_batch_size = 0
  InferenceService svc(opts);
  std::vector<RequestId> ids;
  for (ServiceRequest& r : reqs) ids.push_back(svc.submit(std::move(r)));
  for (std::size_t i = 0; i < ids.size(); ++i)
    EXPECT_EQ(svc.wait(ids[i]).deterministic_fingerprint(), expected[i]);
  const BatchStats bs = svc.batch_stats();
  EXPECT_EQ(bs.batches_formed, 0);
  EXPECT_EQ(bs.batched_requests, 0);
  EXPECT_EQ(bs.fused_kernels, 0);
  svc.shutdown();
}

TEST(BatchServiceFusion, NegativeWindowIsRejected) {
  ServiceOptions opts;
  opts.batch_window_us = -1;
  EXPECT_THROW(InferenceService svc(opts), std::invalid_argument);
}

}  // namespace
}  // namespace dynasparse
