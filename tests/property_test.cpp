// Cross-module property tests: invariants that must hold over randomized
// inputs (parameterized sweeps), beyond what the per-module unit tests pin.

#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/compiler.hpp"
#include "graph/generators.hpp"
#include "matrix/format_convert.hpp"
#include "matrix/matrix_ops.hpp"
#include "matrix/partitioned_matrix.hpp"
#include "model/reference.hpp"
#include "runtime/runtime_system.hpp"
#include "test_helpers.hpp"

namespace dynasparse {
namespace {

using testing::random_dense;

// ---- Tiled matmul == untiled matmul over random tilings ----------------
struct TilingParam {
  std::int64_t rows, inner, cols, tr, tc;
  double dx, dy;
};

class TiledMatmulProperty : public ::testing::TestWithParam<TilingParam> {};

TEST_P(TiledMatmulProperty, TiledAccumulationMatchesGemm) {
  const TilingParam& p = GetParam();
  Rng rng(static_cast<std::uint64_t>(p.rows * 7 + p.inner * 3 + p.tr));
  DenseMatrix x = random_dense(p.rows, p.inner, p.dx, rng);
  DenseMatrix y = random_dense(p.inner, p.cols, p.dy, rng);
  PartitionedMatrix px = PartitionedMatrix::from_dense(x, p.tr, p.tc, 1.0 / 3.0);
  PartitionedMatrix py = PartitionedMatrix::from_dense(y, p.tc, p.tc, 1.0 / 3.0);
  DenseMatrix expect = gemm(x, y);

  // Emulate the execution scheme: per output tile accumulate over the
  // inner tile dimension.
  PartitionedMatrix out(p.rows, p.cols, p.tr, p.tc);
  for (std::int64_t gi = 0; gi < out.grid_rows(); ++gi)
    for (std::int64_t gk = 0; gk < out.grid_cols(); ++gk) {
      DenseMatrix acc(out.tile_row_count(gi), out.tile_col_count(gk));
      for (std::int64_t j = 0; j < px.grid_cols(); ++j)
        accumulate_product(px.tile(gi, j), py.tile(j, gk), acc);
      out.set_tile_from_dense(gi, gk, std::move(acc), 1.0 / 3.0);
    }
  EXPECT_EQ(DenseMatrix::max_abs_diff(out.to_dense(), expect), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    Tilings, TiledMatmulProperty,
    ::testing::Values(TilingParam{40, 40, 40, 16, 16, 0.3, 0.3},
                      TilingParam{33, 47, 29, 16, 8, 0.1, 0.9},
                      TilingParam{64, 16, 64, 32, 16, 0.5, 0.05},
                      TilingParam{17, 90, 5, 8, 8, 0.02, 0.02},
                      TilingParam{100, 30, 100, 64, 32, 0.9, 0.9},
                      TilingParam{16, 16, 16, 16, 16, 1.0, 1.0}));

// ---- Engine == reference across models x densities x graph shapes ------
struct EngineParam {
  GnnModelKind kind;
  double h0_density;
  double skew;
};

class EngineEquivalence : public ::testing::TestWithParam<EngineParam> {};

TEST_P(EngineEquivalence, FunctionalMatchesReference) {
  const EngineParam& p = GetParam();
  DatasetSpec spec;
  spec.name = "prop";
  spec.tag = "PR";
  spec.vertices = 173;
  spec.edges = 700;
  spec.feature_dim = 37;
  spec.num_classes = 6;
  spec.h0_density = p.h0_density;
  spec.hidden_dim = 10;
  spec.degree_skew = p.skew;
  Dataset ds = generate_dataset(spec, 1, 31);
  Rng rng(32);
  GnnModel m = build_model(p.kind, spec.feature_dim, spec.hidden_dim,
                           spec.num_classes, rng);
  CompiledProgram prog = compile(m, ds, u250_config());
  ExecutionResult r = execute(prog, {});
  DenseMatrix expect = reference_output(m, ds.graph, ds.features);
  EXPECT_EQ(DenseMatrix::max_abs_diff(r.output.to_dense(), expect), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(
    ModelDensityGrid, EngineEquivalence,
    ::testing::Values(EngineParam{GnnModelKind::kGcn, 0.01, 0.0},
                      EngineParam{GnnModelKind::kGcn, 0.5, 0.7},
                      EngineParam{GnnModelKind::kGcn, 1.0, 0.5},
                      EngineParam{GnnModelKind::kSage, 0.05, 0.6},
                      EngineParam{GnnModelKind::kSage, 0.8, 0.0},
                      EngineParam{GnnModelKind::kGin, 0.1, 0.6},
                      EngineParam{GnnModelKind::kGin, 0.9, 0.3},
                      EngineParam{GnnModelKind::kSgc, 0.02, 0.7},
                      EngineParam{GnnModelKind::kSgc, 0.6, 0.0}));

// ---- Latency monotone in weight sparsity under Dynamic ------------------
TEST(PruningLatencyProperty, DynamicLatencyNonIncreasingWithSparsity) {
  DatasetSpec spec;
  spec.name = "prop";
  spec.tag = "PR";
  spec.vertices = 300;
  spec.edges = 1500;
  spec.feature_dim = 64;
  spec.num_classes = 8;
  spec.h0_density = 0.4;
  spec.hidden_dim = 32;
  Dataset ds = generate_dataset(spec, 1, 41);
  double prev = 1e100;
  for (double sparsity : {0.0, 0.5, 0.9, 0.99}) {
    Rng rng(42);
    GnnModel m = build_model(GnnModelKind::kGcn, spec.feature_dim, spec.hidden_dim,
                             spec.num_classes, rng);
    prune_model(m, sparsity);
    CompiledProgram prog = compile(m, ds, u250_config());
    double compute = execute(prog, {}).stats.compute_cycles;
    EXPECT_LE(compute, prev * 1.001) << "sparsity " << sparsity;
    prev = compute;
  }
}

// ---- Density profiling consistency through a whole run ------------------
TEST(DensityPropagationProperty, ProfiledDensitiesMatchRecount) {
  DatasetSpec spec;
  spec.name = "prop";
  spec.tag = "PR";
  spec.vertices = 200;
  spec.edges = 900;
  spec.feature_dim = 50;
  spec.num_classes = 5;
  spec.h0_density = 0.3;
  spec.hidden_dim = 12;
  Dataset ds = generate_dataset(spec, 1, 51);
  Rng rng(52);
  GnnModel m = build_model(GnnModelKind::kGcn, spec.feature_dim, spec.hidden_dim,
                           spec.num_classes, rng);
  CompiledProgram prog = compile(m, ds, u250_config());
  ExecutionResult r = execute(prog, {});
  // The reported output density must equal a from-scratch recount of the
  // reassembled matrix.
  DenseMatrix out = r.output.to_dense();
  EXPECT_NEAR(r.node_densities.back(), out.density(), 1e-12);
}

// ---- Scheduler invariants over randomized task sets ----------------------
// schedule_tasks is greedy list scheduling; whatever the durations, the
// makespan is bounded below by the longest task and by perfect balance
// (sum / cores), and the reconstructed timeline must agree with the
// assignment and never overlap two tasks on one core.
struct ScheduleParam {
  std::int64_t n;
  int cores;
  std::uint64_t seed;
};

class ScheduleProperty : public ::testing::TestWithParam<ScheduleParam> {};

TEST_P(ScheduleProperty, GreedyBoundsAndTimelineConsistency) {
  const ScheduleParam& p = GetParam();
  Rng rng(p.seed);
  std::vector<double> durations(static_cast<std::size_t>(p.n));
  double sum = 0.0, max_task = 0.0;
  for (double& d : durations) {
    // Heavy-tailed, like tile tasks: mostly small, a few huge, some zero.
    double u = rng.uniform(0.0, 1.0);
    d = u < 0.1 ? 0.0 : (u > 0.9 ? rng.uniform(1e4, 1e6) : rng.uniform(1.0, 100.0));
    sum += d;
    max_task = std::max(max_task, d);
  }

  ScheduleResult sched = schedule_tasks(durations, p.cores);
  EXPECT_GE(sched.makespan_cycles, max_task);
  EXPECT_GE(sched.makespan_cycles,
            sum / static_cast<double>(p.cores) * (1.0 - 1e-12));
  EXPECT_LE(sched.makespan_cycles, sum * (1.0 + 1e-12));
  EXPECT_GE(sched.load_imbalance(), 1.0 - 1e-12);

  ASSERT_EQ(sched.task_core.size(), durations.size());
  ASSERT_EQ(sched.core_busy_cycles.size(), static_cast<std::size_t>(p.cores));
  double busy_sum = 0.0;
  for (double b : sched.core_busy_cycles) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, sched.makespan_cycles * (1.0 + 1e-12));
    busy_sum += b;
  }
  EXPECT_NEAR(busy_sum, sum, 1e-9 * std::max(1.0, sum));

  std::vector<ScheduledInterval> timeline = schedule_timeline(durations, p.cores);
  ASSERT_EQ(timeline.size(), durations.size());
  std::vector<bool> seen(durations.size(), false);
  double max_end = 0.0;
  for (const ScheduledInterval& iv : timeline) {
    ASSERT_GE(iv.task, 0);
    ASSERT_LT(static_cast<std::size_t>(iv.task), durations.size());
    EXPECT_FALSE(seen[static_cast<std::size_t>(iv.task)]) << "task scheduled twice";
    seen[static_cast<std::size_t>(iv.task)] = true;
    ASSERT_GE(iv.core, 0);
    ASSERT_LT(iv.core, p.cores);
    // Both functions run the identical greedy rule, so the assignment and
    // the arithmetic must match schedule_tasks exactly.
    EXPECT_EQ(iv.core, sched.task_core[static_cast<std::size_t>(iv.task)]);
    EXPECT_EQ(iv.end_cycles,
              iv.start_cycles + durations[static_cast<std::size_t>(iv.task)]);
    max_end = std::max(max_end, iv.end_cycles);
  }
  EXPECT_EQ(max_end, sched.makespan_cycles);

  // Per-core intervals must not overlap.
  for (int c = 0; c < p.cores; ++c) {
    std::vector<ScheduledInterval> on_core;
    for (const ScheduledInterval& iv : timeline)
      if (iv.core == c) on_core.push_back(iv);
    // Tie-break equal starts by end so zero-length intervals sitting on a
    // neighbor's boundary sort before it (they are not overlaps).
    std::sort(on_core.begin(), on_core.end(),
              [](const ScheduledInterval& a, const ScheduledInterval& b) {
                if (a.start_cycles != b.start_cycles)
                  return a.start_cycles < b.start_cycles;
                return a.end_cycles < b.end_cycles;
              });
    for (std::size_t i = 1; i < on_core.size(); ++i)
      EXPECT_GE(on_core[i].start_cycles, on_core[i - 1].end_cycles)
          << "overlap on core " << c;
  }
}

INSTANTIATE_TEST_SUITE_P(
    TaskSets, ScheduleProperty,
    ::testing::Values(ScheduleParam{1, 1, 101}, ScheduleParam{5, 7, 102},
                      ScheduleParam{64, 7, 103}, ScheduleParam{333, 7, 104},
                      ScheduleParam{100, 1, 105}, ScheduleParam{256, 16, 106},
                      ScheduleParam{29, 3, 107}));

// ---- Empty-graph / degenerate-shape robustness ---------------------------
TEST(DegenerateShapes, SingleVertexGraphRuns) {
  DatasetSpec spec;
  spec.name = "one";
  spec.tag = "ONE";
  spec.vertices = 1;
  spec.edges = 1;
  spec.feature_dim = 8;
  spec.num_classes = 2;
  spec.h0_density = 1.0;
  spec.hidden_dim = 4;
  Dataset ds = generate_dataset(spec, 1, 61);
  Rng rng(62);
  GnnModel m = build_model(GnnModelKind::kGcn, 8, 4, 2, rng);
  CompiledProgram prog = compile(m, ds, u250_config());
  ExecutionResult r = execute(prog, {});
  EXPECT_EQ(r.output.rows(), 1);
  EXPECT_EQ(r.output.cols(), 2);
  DenseMatrix expect = reference_output(m, ds.graph, ds.features);
  EXPECT_EQ(DenseMatrix::max_abs_diff(r.output.to_dense(), expect), 0.0f);
}

TEST(DegenerateShapes, AllZeroFeaturesYieldZeroOutputAndSkips) {
  DatasetSpec spec;
  spec.name = "zero";
  spec.tag = "ZR";
  spec.vertices = 64;
  spec.edges = 256;
  spec.feature_dim = 16;
  spec.num_classes = 4;
  spec.h0_density = 0.0;
  spec.hidden_dim = 8;
  Dataset ds = generate_dataset(spec, 1, 71);
  Rng rng(72);
  GnnModel m = build_model(GnnModelKind::kGcn, 16, 8, 4, rng);
  CompiledProgram prog = compile(m, ds, u250_config());
  ExecutionResult r = execute(prog, {});
  EXPECT_EQ(r.output.total_nnz(), 0);
  // Dynamic skips every pair that touches the empty feature matrix.
  EXPECT_GT(r.stats.pairs_skipped, 0);
}

}  // namespace
}  // namespace dynasparse
