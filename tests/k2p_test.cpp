// Unit tests: the three mapping strategies (paper Section VIII-B) and
// Algorithm 7's buffer routing.

#include <gtest/gtest.h>

#include "runtime/k2p.hpp"

namespace dynasparse {
namespace {

constexpr int kPsys = 16;

TEST(K2PTest, Static1MapsAggregateToSpdmmUpdateToGemm) {
  PairDecision agg =
      decide_pair(MappingStrategy::kStatic1, MappedKernelKind::kAggregate, 0.001, 0.9, kPsys);
  EXPECT_EQ(agg.prim, Primitive::kSpdmm);
  EXPECT_DOUBLE_EQ(agg.alpha_spdmm, 0.001);  // A viewed sparse
  PairDecision up =
      decide_pair(MappingStrategy::kStatic1, MappedKernelKind::kUpdate, 0.001, 1.0, kPsys);
  EXPECT_EQ(up.prim, Primitive::kGemm);  // blind to H sparsity
}

TEST(K2PTest, Static1IgnoresDensityEntirely) {
  // Even a fully dense aggregate stays SpDMM, even an empty update stays GEMM.
  EXPECT_EQ(decide_pair(MappingStrategy::kStatic1, MappedKernelKind::kAggregate, 1.0, 1.0,
                        kPsys).prim,
            Primitive::kSpdmm);
  EXPECT_EQ(decide_pair(MappingStrategy::kStatic1, MappedKernelKind::kUpdate, 0.0, 0.0,
                        kPsys).prim,
            Primitive::kGemm);
}

TEST(K2PTest, Static2MapsBothToSpdmmViewingLeftSparse) {
  for (MappedKernelKind kind :
       {MappedKernelKind::kAggregate, MappedKernelKind::kUpdate}) {
    PairDecision d = decide_pair(MappingStrategy::kStatic2, kind, 0.2, 0.9, kPsys);
    EXPECT_EQ(d.prim, Primitive::kSpdmm);
    EXPECT_DOUBLE_EQ(d.alpha_spdmm, 0.2);
  }
  // Static-2 charges the *left* operand even when the right is sparser —
  // that blindness is exactly what Dynamic improves on (Section VIII-B).
  PairDecision d =
      decide_pair(MappingStrategy::kStatic2, MappedKernelKind::kUpdate, 0.9, 0.1, kPsys);
  EXPECT_DOUBLE_EQ(d.alpha_spdmm, 0.9);
}

TEST(K2PTest, DynamicFollowsAlgorithm7) {
  // amin = 0 -> skip.
  EXPECT_EQ(decide_pair(MappingStrategy::kDynamic, MappedKernelKind::kUpdate, 0.0, 0.9,
                        kPsys).prim,
            Primitive::kSkip);
  // amin >= 1/2 -> GEMM.
  EXPECT_EQ(decide_pair(MappingStrategy::kDynamic, MappedKernelKind::kUpdate, 0.6, 0.7,
                        kPsys).prim,
            Primitive::kGemm);
  // amin < 1/2, amax >= 2/psys -> SpDMM with alpha = amin.
  PairDecision sd =
      decide_pair(MappingStrategy::kDynamic, MappedKernelKind::kAggregate, 0.9, 0.05, kPsys);
  EXPECT_EQ(sd.prim, Primitive::kSpdmm);
  EXPECT_DOUBLE_EQ(sd.alpha_spdmm, 0.05);
  // both tiny -> SPMM.
  EXPECT_EQ(decide_pair(MappingStrategy::kDynamic, MappedKernelKind::kUpdate, 0.01, 0.02,
                        kPsys).prim,
            Primitive::kSpmm);
}

TEST(K2PTest, DynamicRoutesSparserOperandToBufferU) {
  PairDecision d1 =
      decide_pair(MappingStrategy::kDynamic, MappedKernelKind::kUpdate, 0.05, 0.9, kPsys);
  EXPECT_TRUE(d1.x_in_buffer_u);
  PairDecision d2 =
      decide_pair(MappingStrategy::kDynamic, MappedKernelKind::kUpdate, 0.9, 0.05, kPsys);
  EXPECT_FALSE(d2.x_in_buffer_u);
}

TEST(K2PTest, DynamicIndependentOfKernelKind) {
  for (double ax : {0.0, 0.1, 0.6})
    for (double ay : {0.05, 0.9}) {
      PairDecision a =
          decide_pair(MappingStrategy::kDynamic, MappedKernelKind::kAggregate, ax, ay, kPsys);
      PairDecision u =
          decide_pair(MappingStrategy::kDynamic, MappedKernelKind::kUpdate, ax, ay, kPsys);
      EXPECT_EQ(a.prim, u.prim);
    }
}

TEST(K2PTest, StrategyNames) {
  EXPECT_STREQ(strategy_name(MappingStrategy::kStatic1), "Static-1");
  EXPECT_STREQ(strategy_name(MappingStrategy::kStatic2), "Static-2");
  EXPECT_STREQ(strategy_name(MappingStrategy::kDynamic), "Dynamic");
}

// Property: per-pair, Dynamic's modelled cycles never exceed either static
// strategy's (the basis of the paper's speedup claims).
class DynamicDominance
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(DynamicDominance, DynamicNeverSlowerPerPair) {
  auto [ax, ay] = GetParam();
  CycleModel cm(kPsys);
  PairShape s{256, 256, 64, ax, ay};
  for (MappedKernelKind kind :
       {MappedKernelKind::kAggregate, MappedKernelKind::kUpdate}) {
    PairDecision dyn = decide_pair(MappingStrategy::kDynamic, kind, ax, ay, kPsys);
    double dyn_cost = cm.pair_cycles(dyn.prim, s, dyn.alpha_spdmm);
    for (MappingStrategy st : {MappingStrategy::kStatic1, MappingStrategy::kStatic2}) {
      PairDecision sd = decide_pair(st, kind, ax, ay, kPsys);
      double st_cost = cm.pair_cycles(sd.prim, s, sd.alpha_spdmm);
      EXPECT_LE(dyn_cost, st_cost + 1e-9)
          << strategy_name(st) << " ax=" << ax << " ay=" << ay;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DensityGrid, DynamicDominance,
    ::testing::Combine(::testing::Values(0.0, 0.01, 0.1, 0.3, 0.5, 0.9, 1.0),
                       ::testing::Values(0.0, 0.01, 0.1, 0.3, 0.5, 0.9, 1.0)));

}  // namespace
}  // namespace dynasparse
