// PlanStore tests: plan-compatibility signature semantics (similar
// requests collide, shape/config changes split), seeded compilation
// bit-identical to plan-from-scratch, memory-tier hit/miss/eviction
// accounting, live-input validation rejecting stale or foreign
// snapshots, disk-tier round trips (warm start across store instances,
// corrupt files ignored), concurrent get-or-plan dedup, and the
// InferenceService plumbing. The concurrency test is part of the CI
// ThreadSanitizer job.

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "model/pruning.hpp"
#include "service/inference_service.hpp"
#include "service/plan_store.hpp"

namespace dynasparse {
namespace {

Dataset plan_dataset(std::uint64_t seed, std::int64_t vertices = 150) {
  DatasetSpec spec;
  spec.name = "plan";
  spec.tag = "PL" + std::to_string(seed % 100);
  spec.vertices = vertices;
  spec.edges = vertices * 4;
  spec.feature_dim = 24;
  spec.num_classes = 5;
  spec.h0_density = 0.3;
  spec.hidden_dim = 8;
  spec.degree_skew = 0.5;
  return generate_dataset(spec, 1, seed);
}

GnnModel plan_model(const Dataset& ds, std::uint64_t seed,
                    GnnModelKind kind = GnnModelKind::kGcn) {
  Rng rng(seed + 1);
  return build_model(kind, ds.spec.feature_dim, ds.spec.hidden_dim,
                     ds.spec.num_classes, rng);
}

std::uint64_t fingerprint_of(const CompiledProgram& prog) {
  InferenceReport rep = run_compiled(prog, {});
  return rep.deterministic_fingerprint();
}

/// Fresh per-test directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  std::string dir = ::testing::TempDir() + "plan_store_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

TEST(PlanSignatureTest, SimilarRequestsCollideShapeChangesSplit) {
  Dataset ds = plan_dataset(1);
  GnnModel m = plan_model(ds, 1);
  const SimConfig cfg = u250_config();
  const std::uint64_t base = plan_signature(m, ds.graph.num_vertices(), cfg);

  // Similar: different weight draw, pruning level, dataset instance of
  // the same shape — none reach the planner, all collide.
  GnnModel other_weights = plan_model(ds, 77);
  EXPECT_EQ(base, plan_signature(other_weights, ds.graph.num_vertices(), cfg));
  GnnModel pruned = m;
  prune_model(pruned, 0.6);
  EXPECT_EQ(base, plan_signature(pruned, ds.graph.num_vertices(), cfg));
  Dataset other_instance = plan_dataset(9);
  EXPECT_EQ(base,
            plan_signature(m, other_instance.graph.num_vertices(), cfg));

  // Planner inputs: vertex count, kernel shape, planning config fields.
  EXPECT_NE(base, plan_signature(m, ds.graph.num_vertices() + 1, cfg));
  Dataset wide = plan_dataset(1);
  wide.spec.hidden_dim = 16;
  GnnModel wide_model = plan_model(wide, 1);
  EXPECT_NE(base, plan_signature(wide_model, wide.graph.num_vertices(), cfg));
  SimConfig planning = cfg;
  planning.min_partition *= 2;
  EXPECT_NE(base, plan_signature(m, ds.graph.num_vertices(), planning));

  // Non-planning config fields stay out: same plan, same signature.
  SimConfig clocked = cfg;
  clocked.core_clock_hz *= 2.0;
  EXPECT_EQ(base, plan_signature(m, ds.graph.num_vertices(), clocked));
}

TEST(PlanStoreTest, SeededCompileBitIdenticalToColdAndStatsCount) {
  Dataset ds = plan_dataset(2);
  GnnModel cold_model = plan_model(ds, 2);
  GnnModel similar = cold_model;
  prune_model(similar, 0.5);
  const SimConfig cfg = u250_config();

  const CompiledProgram cold = compile(similar, ds, cfg);

  PlanStore store;
  CompiledProgram first = store.compile_seeded(cold_model, ds, cfg);
  CompiledProgram seeded = store.compile_seeded(similar, ds, cfg);
  EXPECT_EQ(seeded.plan.n1, cold.plan.n1);
  EXPECT_EQ(seeded.plan.n2, cold.plan.n2);
  EXPECT_EQ(fingerprint_of(seeded), fingerprint_of(cold));
  // The seeded compile skipped the planner entirely.
  EXPECT_EQ(seeded.stats.planning_ms, 0.0);
  EXPECT_GT(cold.stats.planning_ms, 0.0);

  PlanStoreStats s = store.stats();
  EXPECT_EQ(s.planned, 1);
  EXPECT_EQ(s.seeded, 1);
  EXPECT_EQ(s.rejected, 0);
  EXPECT_EQ(s.entries, 1);
  EXPECT_GT(s.planning_ms, 0.0);
  // Same content as `first` was never recompiled here, so the seeded
  // reuse is similar (num_edges equal in this case -> actually exact:
  // only the weights differ, and they are outside the IR).
  EXPECT_EQ(s.seeded_exact, 1);
}

TEST(PlanStoreTest, DisabledStoreDegradesToColdCompile) {
  Dataset ds = plan_dataset(3);
  GnnModel m = plan_model(ds, 3);
  PlanStore store(PlanStoreOptions{0, ""});
  EXPECT_FALSE(store.enabled());
  CompiledProgram prog = store.compile_seeded(m, ds, u250_config());
  EXPECT_GT(prog.stats.planning_ms, 0.0);  // planner ran inside compile()
  PlanStoreStats s = store.stats();
  EXPECT_EQ(s.planned, 0);
  EXPECT_EQ(s.seeded, 0);
}

TEST(PlanStoreTest, LruEvictionAtCapacity) {
  const SimConfig cfg = u250_config();
  PlanStoreOptions po;
  po.capacity = 1;
  PlanStore store(po);
  Dataset small = plan_dataset(4, 150);
  Dataset big = plan_dataset(5, 900);
  GnnModel small_model = plan_model(small, 4);
  GnnModel big_model = plan_model(big, 5);

  (void)store.compile_seeded(small_model, small, cfg);  // plan A resident
  (void)store.compile_seeded(big_model, big, cfg);      // plan B evicts A
  (void)store.compile_seeded(small_model, small, cfg);  // A re-planned

  PlanStoreStats s = store.stats();
  EXPECT_EQ(s.planned, 3);
  EXPECT_EQ(s.seeded, 0);
  EXPECT_GE(s.evictions, 1);
  EXPECT_EQ(s.entries, 1);
}

TEST(PlanStoreTest, StaleDiskSnapshotRejectedByLiveValidation) {
  const SimConfig cfg = u250_config();
  const std::string dir = fresh_dir("stale");
  Dataset ds_a = plan_dataset(6, 150);
  GnnModel model_a = plan_model(ds_a, 6);
  Dataset ds_b = plan_dataset(7, 300);
  GnnModel model_b = plan_model(ds_b, 7);
  const std::uint64_t key_b = plan_signature(model_b, ds_b.graph.num_vertices(), cfg);

  {
    PlanStore writer(PlanStoreOptions{8, dir});
    (void)writer.compile_seeded(model_a, ds_a, cfg);
    ASSERT_EQ(writer.stats().disk_writes, 1);
    // Masquerade A's snapshot as B's: the file itself is intact (irsig
    // matches its content), but it describes the wrong plan shape.
    const std::uint64_t key_a =
        plan_signature(model_a, ds_a.graph.num_vertices(), cfg);
    std::filesystem::copy_file(writer.disk_path(key_a), writer.disk_path(key_b));
  }

  PlanStore reader(PlanStoreOptions{8, dir});
  CompiledProgram prog = reader.compile_seeded(model_b, ds_b, cfg);
  PlanStoreStats s = reader.stats();
  EXPECT_EQ(s.rejected, 1);  // integrity-intact, but wrong planner inputs
  EXPECT_EQ(s.disk_hits, 0);
  EXPECT_EQ(s.planned, 1);      // re-planned instead of trusting the file
  EXPECT_EQ(s.disk_writes, 1);  // ...and healed the bad snapshot on disk
  EXPECT_EQ(s.seeded, 0);
  EXPECT_EQ(fingerprint_of(prog), fingerprint_of(compile(model_b, ds_b, cfg)));

  // The overwritten file now seeds a fresh store without any rejection.
  PlanStore healed(PlanStoreOptions{8, dir});
  (void)healed.compile_seeded(model_b, ds_b, cfg);
  PlanStoreStats h = healed.stats();
  EXPECT_EQ(h.disk_hits, 1);
  EXPECT_EQ(h.rejected, 0);
  EXPECT_EQ(h.planned, 0);
}

TEST(PlanStoreTest, DiskTierWarmStartsAcrossInstances) {
  const SimConfig cfg = u250_config();
  const std::string dir = fresh_dir("warm");
  Dataset ds = plan_dataset(8);
  GnnModel m = plan_model(ds, 8);
  std::uint64_t cold_fp = 0;
  {
    PlanStore first(PlanStoreOptions{8, dir});
    cold_fp = fingerprint_of(first.compile_seeded(m, ds, cfg));
    PlanStoreStats s = first.stats();
    EXPECT_EQ(s.planned, 1);
    EXPECT_EQ(s.disk_writes, 1);
  }
  // "Restart": a fresh store on the same directory never re-plans.
  PlanStore second(PlanStoreOptions{8, dir});
  CompiledProgram warm = second.compile_seeded(m, ds, cfg);
  EXPECT_EQ(fingerprint_of(warm), cold_fp);
  PlanStoreStats s = second.stats();
  EXPECT_EQ(s.planned, 0);
  EXPECT_EQ(s.disk_hits, 1);
  EXPECT_EQ(s.seeded, 1);
  EXPECT_EQ(s.seeded_exact, 1);  // same content -> identical IR
  EXPECT_EQ(s.disk_errors, 0);
}

TEST(PlanStoreTest, CorruptDiskSnapshotsIgnoredNeverTrusted) {
  const SimConfig cfg = u250_config();
  const std::string dir = fresh_dir("corrupt");
  Dataset ds = plan_dataset(9);
  GnnModel m = plan_model(ds, 9);
  const std::uint64_t key = plan_signature(m, ds.graph.num_vertices(), cfg);
  std::string path;
  {
    PlanStore writer(PlanStoreOptions{8, dir});
    (void)writer.compile_seeded(m, ds, cfg);
    path = writer.disk_path(key);
    ASSERT_TRUE(std::filesystem::exists(path));
  }

  // Corruption modes: unparseable garbage, a truncated file, and a
  // parseable snapshot whose irsig trailer no longer matches.
  std::string original;
  {
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    original = ss.str();
  }
  const std::string cases[] = {
      "garbage\n",
      original.substr(0, original.size() / 2),
      [&] {
        std::string flipped = original;
        std::size_t digit = flipped.find(' ', flipped.find("kernel "));
        flipped[digit + 1] = flipped[digit + 1] == '1' ? '2' : '1';
        return flipped;
      }(),
  };
  for (const std::string& contents : cases) {
    {
      std::ofstream out(path, std::ios::trunc);
      out << contents;
    }
    PlanStore reader(PlanStoreOptions{8, dir});
    CompiledProgram prog = reader.compile_seeded(m, ds, cfg);
    PlanStoreStats s = reader.stats();
    EXPECT_GE(s.disk_errors, 1) << contents.substr(0, 20);
    EXPECT_EQ(s.planned, 1);  // fell back to a fresh plan
    EXPECT_GT(prog.plan.n1, 0);
  }
}

TEST(PlanStoreTest, InvalidConfigFailsTheRequestNotTheProcess) {
  // Regression: the seeded path once reached plan_partitions before any
  // config validation — psys = 0 divides and SIGFPEs the process. It
  // must instead surface the cold path's std::invalid_argument so a bad
  // request fails in isolation.
  Dataset ds = plan_dataset(12);
  GnnModel m = plan_model(ds, 12);
  SimConfig bad = u250_config();
  bad.psys = 0;
  PlanStore store;
  EXPECT_THROW((void)store.compile_seeded(m, ds, bad), std::invalid_argument);
  EXPECT_EQ(store.stats().planned, 0);
}

TEST(PlanStoreTest, ConcurrentGetOrPlanDedupsToOnePlanning) {
  const SimConfig cfg = u250_config();
  PlanStore store;
  constexpr int kThreads = 8;
  // Same plan shape, different content per thread (distinct weight draws):
  // exactly one thread plans, everyone else joins or hits.
  Dataset ds = plan_dataset(10);
  std::vector<GnnModel> models;
  for (int t = 0; t < kThreads; ++t) models.push_back(plan_model(ds, 100 + t));

  std::atomic<int> failures{0};
  std::vector<std::uint64_t> fps(kThreads, 0);
  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t)
      threads.emplace_back([&, t] {
        try {
          CompiledProgram prog = store.compile_seeded(models[t], ds, cfg);
          fps[t] = fingerprint_of(prog);
        } catch (...) {
          ++failures;
        }
      });
    for (std::thread& th : threads) th.join();
  }
  EXPECT_EQ(failures.load(), 0);
  PlanStoreStats s = store.stats();
  EXPECT_EQ(s.planned, 1);
  EXPECT_EQ(s.seeded, kThreads - 1);
  EXPECT_EQ(s.entries, 1);
  // Distinct contents -> distinct results, but each must equal its own
  // cold compile.
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(fps[t], fingerprint_of(compile(models[t], ds, cfg))) << t;
}

TEST(PlanStoreTest, ServicePlumbsPlanStoreAndStaysBitIdentical) {
  // Similar-heavy mini-stream through the full service: every request a
  // compilation-cache miss, three requests per plan shape.
  auto make_requests = [] {
    std::vector<ServiceRequest> reqs;
    for (std::int64_t vertices : {150, 300}) {
      Dataset ds = plan_dataset(11, vertices);
      for (double prune : {0.0, 0.4, 0.7}) {
        GnnModel m = plan_model(ds, 11);
        if (prune > 0.0) prune_model(m, prune);
        reqs.push_back(ServiceRequest::own(std::move(m), ds));
      }
    }
    return reqs;
  };

  std::vector<InferenceReport> plain, seeded;
  {
    InferenceService svc;  // defaults: plan store off
    EXPECT_EQ(svc.plan_store(), nullptr);
    plain = svc.run_batch(make_requests());
  }
  {
    ServiceOptions opts;
    opts.plan_store_capacity = 8;
    InferenceService svc(opts);
    ASSERT_NE(svc.plan_store(), nullptr);
    seeded = svc.run_batch(make_requests());
    PlanStoreStats s = svc.plan_store_stats();
    EXPECT_EQ(s.planned, 2);
    EXPECT_EQ(s.seeded, 4);
    EXPECT_EQ(s.rejected, 0);
  }
  ASSERT_EQ(plain.size(), seeded.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    EXPECT_EQ(plain[i].deterministic_fingerprint(),
              seeded[i].deterministic_fingerprint())
        << i;
}

}  // namespace
}  // namespace dynasparse
