// Unit tests: util/ (config, rng, prefix sums, math helpers, logging,
// blocking queue incl. the bounded/admission mode).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/blocking_queue.hpp"
#include "util/cancellation.hpp"
#include "util/config.hpp"
#include "util/fault_injection.hpp"
#include "util/keyed_future_cache.hpp"
#include "util/logging.hpp"
#include "util/math_util.hpp"
#include "util/parallel.hpp"
#include "util/prefix_sum.hpp"
#include "util/random.hpp"
#include "util/strict_parse.hpp"

namespace dynasparse {
namespace {

TEST(ConfigTest, DefaultsMatchPaperPlatform) {
  SimConfig cfg = u250_config();
  EXPECT_EQ(cfg.psys, 16);
  EXPECT_EQ(cfg.num_cores, 7);
  EXPECT_DOUBLE_EQ(cfg.core_clock_hz, 250.0e6);
  EXPECT_DOUBLE_EQ(cfg.soft_clock_hz, 370.0e6);
  EXPECT_DOUBLE_EQ(cfg.ddr_bandwidth_bytes_per_s, 77.0e9);
  EXPECT_TRUE(cfg.valid());
}

TEST(ConfigTest, DdrBytesPerCycle) {
  SimConfig cfg = u250_config();
  EXPECT_NEAR(cfg.ddr_bytes_per_cycle(), 77.0e9 / 250.0e6, 1e-9);
}

TEST(ConfigTest, MaxPartitionSizeFitsBuffer) {
  SimConfig cfg = u250_config();
  int n = cfg.max_partition_size();
  EXPECT_EQ(n, 720);  // largest psys-aligned square tile in a 2 MB buffer
  EXPECT_LE(static_cast<std::size_t>(n) * n * cfg.dense_elem_bytes, cfg.onchip_tile_bytes);
  EXPECT_EQ(n % cfg.psys, 0);
}

TEST(ConfigTest, MaxPartitionSizeIsMaximal) {
  SimConfig cfg = u250_config();
  cfg.onchip_tile_bytes = 300 * 300 * 4;  // not a psys-aligned square
  int n = cfg.max_partition_size();
  EXPECT_LE(static_cast<std::size_t>(n) * n * 4, cfg.onchip_tile_bytes);
  EXPECT_EQ(n % cfg.psys, 0);
  // The next psys multiple must overflow the buffer.
  std::size_t next = static_cast<std::size_t>(n + cfg.psys);
  EXPECT_GT(next * next * 4, cfg.onchip_tile_bytes);
}

TEST(ConfigTest, InvalidConfigsRejected) {
  SimConfig cfg;
  cfg.psys = 12;  // not a power of two
  EXPECT_FALSE(cfg.valid());
  cfg = SimConfig{};
  cfg.num_cores = 0;
  EXPECT_FALSE(cfg.valid());
  cfg = SimConfig{};
  cfg.ddr_bandwidth_bytes_per_s = -1.0;
  EXPECT_FALSE(cfg.valid());
  cfg = SimConfig{};
  cfg.onchip_tile_bytes = 4;  // smaller than one psys x psys tile
  EXPECT_FALSE(cfg.valid());
  cfg = SimConfig{};
  cfg.sparse_storage_threshold = 0.0;
  EXPECT_FALSE(cfg.valid());
}

TEST(ConfigTest, CycleConversions) {
  SimConfig cfg = u250_config();
  EXPECT_NEAR(cfg.cycles_to_ms(250e6), 1000.0, 1e-6);
  EXPECT_NEAR(cfg.soft_cycles_to_ms(370e6), 1000.0, 1e-6);
}

TEST(RngTest, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform_int(0, 1000), b.uniform_int(0, 1000));
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30)) ++same;
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(9);
  auto sample = rng.sample_without_replacement(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  std::set<std::int64_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto v : sample) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 100);
  }
}

TEST(RngTest, SampleWithoutReplacementFullSet) {
  Rng rng(9);
  auto sample = rng.sample_without_replacement(10, 10);
  std::set<std::int64_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 10u);
  auto over = rng.sample_without_replacement(5, 50);
  EXPECT_EQ(over.size(), 5u);
}

TEST(RngTest, SampleApproximatelyUniform) {
  Rng rng(11);
  std::vector<int> counts(20, 0);
  for (int trial = 0; trial < 2000; ++trial)
    for (auto v : rng.sample_without_replacement(20, 5)) ++counts[static_cast<std::size_t>(v)];
  // Expected 500 per slot; allow generous slack.
  for (int c : counts) {
    EXPECT_GT(c, 350);
    EXPECT_LT(c, 650);
  }
}

TEST(PrefixSumTest, ExclusiveBasic) {
  std::vector<std::int64_t> in = {1, 2, 3, 4};
  auto out = exclusive_prefix_sum(in);
  EXPECT_EQ(out, (std::vector<std::int64_t>{0, 1, 3, 6}));
}

TEST(PrefixSumTest, InclusiveBasic) {
  std::vector<std::int64_t> in = {1, 2, 3, 4};
  auto out = inclusive_prefix_sum(in);
  EXPECT_EQ(out, (std::vector<std::int64_t>{1, 3, 6, 10}));
}

TEST(PrefixSumTest, EmptyInput) {
  EXPECT_TRUE(exclusive_prefix_sum({}).empty());
  EXPECT_TRUE(inclusive_prefix_sum({}).empty());
}

TEST(PrefixSumTest, NetworkStages) {
  EXPECT_EQ(prefix_network_stages(1), 0);
  EXPECT_EQ(prefix_network_stages(2), 1);
  EXPECT_EQ(prefix_network_stages(16), 4);
  EXPECT_EQ(prefix_network_stages(17), 5);
}

TEST(MathUtilTest, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(0, 5), 0);
  EXPECT_EQ(ceil_div(1, 512), 1);
}

TEST(MathUtilTest, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geometric_mean({2.0, 8.0}), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0.0);
  EXPECT_DOUBLE_EQ(geometric_mean({3.0}), 3.0);
}

TEST(MathUtilTest, Clamp) {
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(2.0, 0.0, 1.0), 1.0);
}

TEST(LoggingTest, LevelGate) {
  LogLevel before = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_info("should be dropped silently");
  set_log_level(before);
}

// ---- parallel primitives (work-stealing pool) -----------------------------
// Pool-specific behavior (concurrent jobs, stealing, caps, shutdown) is
// covered by tests/parallel_pool_test.cpp; these are the API contracts.

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 8}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    parallel_for(257, [&](std::int64_t i) { ++hits[static_cast<std::size_t>(i)]; },
                 threads);
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, EmptyAndNegativeAreNoops) {
  parallel_for(0, [](std::int64_t) { FAIL(); });
  parallel_for(-5, [](std::int64_t) { FAIL(); });
}

TEST(ParallelForTest, PropagatesException) {
  EXPECT_THROW(
      parallel_for(
          100, [](std::int64_t i) { if (i == 37) throw std::runtime_error("boom"); },
          4),
      std::runtime_error);
}

TEST(ParallelForTest, StopsStartingWorkAfterFailure) {
  // After the failure is recorded no further item may *start*; items
  // numbered after the failing one in the same chunk must be skipped.
  std::atomic<std::int64_t> started{0};
  try {
    parallel_for(
        1 << 20,
        [&](std::int64_t i) {
          if (i == 0) throw std::runtime_error("early");
          ++started;
        },
        2);
    FAIL() << "exception did not propagate";
  } catch (const std::runtime_error&) {
  }
  // Not every remaining index ran: cancellation cut the sweep short.
  EXPECT_LT(started.load(), (1 << 20) - 1);
}

TEST(ParallelForTest, NestedCallsAreExact) {
  // Nested calls become stealable pool jobs (work-stealing pool, PR 3);
  // every index must still run exactly once whatever thread executes it.
  std::atomic<int> total{0};
  parallel_for(
      8,
      [&](std::int64_t) {
        parallel_for(16, [&](std::int64_t) { ++total; }, 4);
      },
      4);
  EXPECT_EQ(total.load(), 8 * 16);
}

TEST(ParallelReduceTest, SumsDeterministicallyAcrossThreadCounts) {
  const std::int64_t n = 1000;
  auto run = [&](int threads) {
    return parallel_reduce<double>(
        n, 0.0, [](std::int64_t i, double& acc) { acc += 1.0 / (1.0 + i); },
        [](double& into, const double& from) { into += from; }, threads);
  };
  double serial = run(1);
  // Bit-identical regardless of thread count: chunking depends only on n.
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(ParallelReduceTest, EmptyReturnsIdentity) {
  double r = parallel_reduce<double>(
      0, 42.0, [](std::int64_t, double&) {},
      [](double& into, const double& from) { into += from; });
  EXPECT_DOUBLE_EQ(r, 42.0);
}

TEST(ParallelForRangeTest, ChunksPartitionTheRange) {
  std::vector<std::atomic<int>> hits(100);
  for (auto& h : hits) h = 0;
  parallel_for_range(
      100,
      [&](std::int64_t begin, std::int64_t end) {
        EXPECT_LT(begin, end);
        for (std::int64_t i = begin; i < end; ++i)
          ++hits[static_cast<std::size_t>(i)];
      },
      4, 7);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

using IntQueue = BlockingQueue<int>;

TEST(BlockingQueueTest, UnboundedPushNeverRefusesUntilClosed) {
  IntQueue q;  // capacity 0 = unbounded
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(q.push(i));
  EXPECT_EQ(q.try_push(100), IntQueue::PushResult::kOk);
  EXPECT_EQ(q.size(), 101u);
  q.close();
  EXPECT_FALSE(q.push(0));
  EXPECT_EQ(q.try_push(0), IntQueue::PushResult::kClosed);
  // Queued items remain poppable after close, in FIFO order.
  int out = -1;
  for (int i = 0; i <= 100; ++i) {
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(q.pop(out));  // closed and drained
}

TEST(BlockingQueueTest, TryPushDistinguishesFullFromClosed) {
  IntQueue q(2);
  EXPECT_EQ(q.try_push(1), IntQueue::PushResult::kOk);
  EXPECT_EQ(q.try_push(2), IntQueue::PushResult::kOk);
  EXPECT_EQ(q.try_push(3), IntQueue::PushResult::kFull);
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(q.try_push(3), IntQueue::PushResult::kOk);  // space freed
  q.close();
  EXPECT_EQ(q.try_push(4), IntQueue::PushResult::kClosed);
}

TEST(BlockingQueueTest, BoundedPushBlocksUntilPopMakesRoom) {
  IntQueue q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the pop below
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(pushed.load());  // still blocked on the full queue
  int out = 0;
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  ASSERT_TRUE(q.pop(out));
  EXPECT_EQ(out, 2);
}

TEST(BlockingQueueTest, CloseWakesBlockedBoundedPush) {
  // The close()/bounded-push contract: a producer blocked on a full
  // queue is woken by close() and returns false without enqueueing — the
  // item never sneaks into a closing queue. This is what lets
  // InferenceService::shutdown() compose with the kBlock admission
  // policy.
  IntQueue q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<int> result{-1};
  std::thread producer([&] { result = q.push(2) ? 1 : 0; });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  q.close();
  producer.join();
  EXPECT_EQ(result.load(), 0);
  int out = 0;
  ASSERT_TRUE(q.pop(out));  // the accepted item drains...
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(q.pop(out));  // ...and the refused one was never queued
}

TEST(BlockingQueueTest, PushShedOldestEvictsInFifoOrderAtomically) {
  IntQueue q(2);
  std::vector<int> shed;
  EXPECT_TRUE(q.push_shed_oldest(1, shed));
  EXPECT_TRUE(q.push_shed_oldest(2, shed));
  EXPECT_TRUE(shed.empty());
  EXPECT_TRUE(q.push_shed_oldest(3, shed));  // sheds 1
  ASSERT_EQ(shed.size(), 1u);
  EXPECT_EQ(shed[0], 1);
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(q.try_pop(out));
  EXPECT_EQ(out, 3);
  q.close();
  shed.clear();
  EXPECT_FALSE(q.push_shed_oldest(4, shed));  // closed: refuse, shed nothing
  EXPECT_TRUE(shed.empty());
}

TEST(BlockingQueueTest, ManyProducersConsumersBoundedDeliverEveryItemOnce) {
  IntQueue q(3);
  constexpr int kProducers = 3, kConsumers = 3, kPerProducer = 50;
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  for (auto& s : seen) s = 0;
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p)
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i)
        EXPECT_TRUE(q.push(p * kPerProducer + i));
    });
  std::atomic<int> consumed{0};
  for (int c = 0; c < kConsumers; ++c)
    threads.emplace_back([&] {
      int v = 0;
      while (q.pop(v)) {
        ++seen[static_cast<std::size_t>(v)];
        ++consumed;
      }
    });
  for (int p = 0; p < kProducers; ++p) threads[static_cast<std::size_t>(p)].join();
  q.close();  // producers done; consumers drain and exit
  for (int c = 0; c < kConsumers; ++c)
    threads[static_cast<std::size_t>(kProducers + c)].join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

// ---- strict parsing (util/strict_parse.hpp) -------------------------------

TEST(StrictParseTest, WholeTokenRequired) {
  EXPECT_EQ(strict_stoi("16"), 16);
  EXPECT_EQ(strict_stoi("-4"), -4);
  EXPECT_EQ(strict_stoll("123456789012"), 123456789012ll);
  EXPECT_EQ(strict_stoull("2023"), 2023ull);
  EXPECT_DOUBLE_EQ(strict_stod("0.5"), 0.5);
  // std::stoi alone accepts all of these as their numeric prefix.
  EXPECT_THROW(strict_stoi("16abc"), std::invalid_argument);
  EXPECT_THROW(strict_stoi("4x2"), std::invalid_argument);
  EXPECT_THROW(strict_stoll("12 "), std::invalid_argument);
  EXPECT_THROW(strict_stod("0.5pt"), std::invalid_argument);
  EXPECT_THROW(strict_stoi("abc"), std::invalid_argument);
  EXPECT_THROW(strict_stoi(""), std::invalid_argument);
  EXPECT_THROW(strict_stoi("999999999999999999999"), std::out_of_range);
}

TEST(StrictParseTest, UnsignedRejectsNegativeInsteadOfWrapping) {
  // std::stoull("-1") silently yields 2^64 - 1.
  EXPECT_THROW(strict_stoull("-1"), std::invalid_argument);
  EXPECT_THROW(strict_stoull(" -7"), std::invalid_argument);
  EXPECT_EQ(strict_stoull("18446744073709551615"), ~0ull);
}

TEST(ParseEnvIntTest, UnsetAndEmptyFallBackSilently) {
  unsetenv("DYNASPARSE_TEST_KNOB");
  EXPECT_EQ(parse_env_int("DYNASPARSE_TEST_KNOB", 42, 0, 100), 42);
  setenv("DYNASPARSE_TEST_KNOB", "", 1);
  EXPECT_EQ(parse_env_int("DYNASPARSE_TEST_KNOB", 42, 0, 100), 42);
  unsetenv("DYNASPARSE_TEST_KNOB");
}

TEST(ParseEnvIntTest, ValidValuesParsedMalformedFallBackDeterministically) {
  setenv("DYNASPARSE_TEST_KNOB", "17", 1);
  EXPECT_EQ(parse_env_int("DYNASPARSE_TEST_KNOB", 42, 0, 100), 17);
  EXPECT_EQ(parse_env_size("DYNASPARSE_TEST_KNOB", 42), 17u);
  // Malformed or out-of-range: logged and the default kept — the knob
  // never silently misparses ("16abc" is not 16) or crashes.
  for (const char* bad : {"16abc", "foo", "-1", "1e3", "101"}) {
    setenv("DYNASPARSE_TEST_KNOB", bad, 1);
    EXPECT_EQ(parse_env_int("DYNASPARSE_TEST_KNOB", 42, 0, 100), 42) << bad;
  }
  unsetenv("DYNASPARSE_TEST_KNOB");
}

TEST(ParseDurationTest, BareMillisecondsSuffixesAndFractions) {
  EXPECT_EQ(parse_duration_ms("250"), 250);
  EXPECT_EQ(parse_duration_ms("250ms"), 250);
  EXPECT_EQ(parse_duration_ms("2s"), 2000);
  EXPECT_EQ(parse_duration_ms("1.5s"), 1500);
  EXPECT_EQ(parse_duration_ms("0"), 0);
  EXPECT_EQ(parse_duration_ms("0.25s"), 250);
  // Whole-token discipline: suffix typos and trailing junk are errors,
  // not numeric prefixes.
  EXPECT_THROW(parse_duration_ms(""), std::invalid_argument);
  EXPECT_THROW(parse_duration_ms("250m"), std::invalid_argument);
  EXPECT_THROW(parse_duration_ms("250 ms"), std::invalid_argument);
  EXPECT_THROW(parse_duration_ms("ms"), std::invalid_argument);
  EXPECT_THROW(parse_duration_ms("abc"), std::invalid_argument);
  EXPECT_THROW(parse_duration_ms("-5"), std::invalid_argument);
  EXPECT_THROW(parse_duration_ms("-1s"), std::invalid_argument);
  // Fractional milliseconds don't exist in this API.
  EXPECT_THROW(parse_duration_ms("1.5"), std::invalid_argument);
  EXPECT_THROW(parse_duration_ms("1.5ms"), std::invalid_argument);
}

TEST(ParseDurationTest, EnvVariantFallsBackOnMalformed) {
  unsetenv("DYNASPARSE_TEST_DURATION");
  EXPECT_EQ(parse_env_duration_ms("DYNASPARSE_TEST_DURATION", 7), 7);
  setenv("DYNASPARSE_TEST_DURATION", "1.5s", 1);
  EXPECT_EQ(parse_env_duration_ms("DYNASPARSE_TEST_DURATION", 7), 1500);
  setenv("DYNASPARSE_TEST_DURATION", "nope", 1);
  EXPECT_EQ(parse_env_duration_ms("DYNASPARSE_TEST_DURATION", 7), 7);
  unsetenv("DYNASPARSE_TEST_DURATION");
}

TEST(ParseSizeTest, SuffixesCaseAndBareMultiplier) {
  EXPECT_EQ(parse_size_bytes("1024"), 1024u);
  EXPECT_EQ(parse_size_bytes("512b"), 512u);
  EXPECT_EQ(parse_size_bytes("4k"), std::size_t{4} << 10);
  EXPECT_EQ(parse_size_bytes("4kb"), std::size_t{4} << 10);
  EXPECT_EQ(parse_size_bytes("512m"), std::size_t{512} << 20);
  EXPECT_EQ(parse_size_bytes("512MB"), std::size_t{512} << 20);
  EXPECT_EQ(parse_size_bytes("2g"), std::size_t{2} << 30);
  EXPECT_EQ(parse_size_bytes("2Gb"), std::size_t{2} << 30);
  // bare_multiplier only scales suffixless values — "256" under an *_MB
  // knob means 256 MiB, but "1g" stays 1 GiB.
  EXPECT_EQ(parse_size_bytes("256", std::size_t{1} << 20), std::size_t{256} << 20);
  EXPECT_EQ(parse_size_bytes("1g", std::size_t{1} << 20), std::size_t{1} << 30);
  EXPECT_EQ(parse_size_bytes("0"), 0u);
}

TEST(ParseSizeTest, WholeTokenDisciplineAndOverflow) {
  // Trailing garbage after the suffix is an error, not a numeric prefix.
  EXPECT_THROW(parse_size_bytes("512mx"), std::invalid_argument);
  EXPECT_THROW(parse_size_bytes("512 m"), std::invalid_argument);
  EXPECT_THROW(parse_size_bytes("m"), std::invalid_argument);
  EXPECT_THROW(parse_size_bytes(""), std::invalid_argument);
  EXPECT_THROW(parse_size_bytes("-1"), std::invalid_argument);
  EXPECT_THROW(parse_size_bytes("1.5g"), std::invalid_argument);
  // Multiplying past SIZE_MAX must throw, not wrap.
  EXPECT_THROW(parse_size_bytes("18446744073709551615k"), std::out_of_range);
  EXPECT_THROW(parse_size_bytes("99999999999999999999"), std::out_of_range);
  EXPECT_THROW(
      parse_size_bytes("18446744073709551615", std::size_t{1} << 20),
      std::out_of_range);
}

TEST(ParseSizeTest, EnvVariantFallsBackOnMalformed) {
  unsetenv("DYNASPARSE_TEST_SIZE");
  EXPECT_EQ(parse_env_size_bytes("DYNASPARSE_TEST_SIZE", 7), 7u);
  setenv("DYNASPARSE_TEST_SIZE", "2g", 1);
  EXPECT_EQ(parse_env_size_bytes("DYNASPARSE_TEST_SIZE", 7), std::size_t{2} << 30);
  setenv("DYNASPARSE_TEST_SIZE", "64", 1);
  EXPECT_EQ(parse_env_size_bytes("DYNASPARSE_TEST_SIZE", 7, std::size_t{1} << 20),
            std::size_t{64} << 20);
  setenv("DYNASPARSE_TEST_SIZE", "512mx", 1);
  EXPECT_EQ(parse_env_size_bytes("DYNASPARSE_TEST_SIZE", 7), 7u);
  unsetenv("DYNASPARSE_TEST_SIZE");
}

TEST(FaultSpecTest, ParseGrammarAndRejections) {
  EXPECT_TRUE(parse_fault_spec("").empty());

  FaultSpec spec = parse_fault_spec(
      "plan_store.disk_read:0.3,compile.alloc:0.1:5,seed:42");
  EXPECT_EQ(spec.seed, 42u);
  ASSERT_EQ(spec.sites.size(), 2u);
  EXPECT_EQ(spec.sites[0].site, "plan_store.disk_read");
  EXPECT_DOUBLE_EQ(spec.sites[0].probability, 0.3);
  EXPECT_EQ(spec.sites[0].count, -1);
  EXPECT_EQ(spec.sites[1].site, "compile.alloc");
  EXPECT_EQ(spec.sites[1].count, 5);

  // A typo'd site name must be loud, never a silently-unarmed chaos run.
  EXPECT_THROW(parse_fault_spec("compile.allocx:0.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("compile.alloc"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("compile.alloc:1.5"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("compile.alloc:-0.1"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("compile.alloc:0.5:-2"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("compile.alloc:0.5:2x"), std::invalid_argument);
  EXPECT_THROW(parse_fault_spec("seed:abc"), std::invalid_argument);

  // Every published site constant parses.
  for (const std::string& site : fault_site_names())
    EXPECT_NO_THROW(parse_fault_spec(site + ":0.5")) << site;
}

TEST(FaultInjectorTest, DeterministicPerSiteAndCountBounded) {
  FaultInjector inj;
  inj.arm(parse_fault_spec("queue.delay:0.5,seed:7"));
  std::vector<bool> first;
  for (int i = 0; i < 64; ++i) first.push_back(inj.should_inject("queue.delay"));

  // Re-arming with the same spec restarts the same deterministic draw
  // sequence — a chaos failure reproduces from its seed alone.
  inj.arm(parse_fault_spec("queue.delay:0.5,seed:7"));
  for (int i = 0; i < 64; ++i)
    EXPECT_EQ(inj.should_inject("queue.delay"), first[i]) << "draw " << i;
  FaultSiteStats st = inj.site_stats("queue.delay");
  EXPECT_EQ(st.evaluations, 64);
  EXPECT_GT(st.injected, 0);   // p=0.5 over 64 draws
  EXPECT_LT(st.injected, 64);

  // Sites not in the spec never fire and are not counted.
  EXPECT_FALSE(inj.should_inject("compile.alloc"));
  EXPECT_EQ(inj.site_stats("compile.alloc").evaluations, 0);

  // The count budget caps injections even at probability 1.
  inj.arm(parse_fault_spec("compile.alloc:1:3"));
  int fired = 0;
  for (int i = 0; i < 10; ++i) fired += inj.should_inject("compile.alloc") ? 1 : 0;
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(inj.site_stats("compile.alloc").evaluations, 10);

  // pause()/resume() suspend without losing RNG position or arming.
  inj.arm(parse_fault_spec("compile.alloc:1"));
  inj.pause();
  EXPECT_FALSE(inj.should_inject("compile.alloc"));
  inj.resume();
  EXPECT_TRUE(inj.should_inject("compile.alloc"));

  inj.disarm();
  EXPECT_FALSE(inj.armed());
  EXPECT_FALSE(inj.should_inject("compile.alloc"));
}

TEST(CancellationTest, TokensObserveCancelAndDeadline) {
  // Default token: never aborts, costs nothing.
  CancellationToken none;
  EXPECT_FALSE(none.cancelled());
  EXPECT_FALSE(none.expired());
  EXPECT_FALSE(none.aborted());
  EXPECT_FALSE(none.has_deadline());
  EXPECT_NO_THROW(none.check());

  CancellationSource source;
  CancellationToken token = source.token();
  EXPECT_FALSE(token.aborted());
  EXPECT_NO_THROW(token.check());
  source.cancel();
  EXPECT_TRUE(token.cancelled());
  EXPECT_TRUE(token.aborted());
  EXPECT_THROW(token.check(), CancelledError);

  // Deadline-carrying source: expired() flips once the deadline passes.
  CancellationSource past(std::chrono::steady_clock::now() -
                          std::chrono::milliseconds(1));
  EXPECT_TRUE(past.token().has_deadline());
  EXPECT_TRUE(past.token().expired());
  EXPECT_THROW(past.token().check(), DeadlineExceededError);

  CancellationSource future(std::chrono::steady_clock::now() +
                            std::chrono::hours(1));
  EXPECT_FALSE(future.token().expired());
  EXPECT_NO_THROW(future.token().check());
  // cancel() wins over an expired deadline (checked first).
  future.cancel();
  EXPECT_THROW(future.token().check(), CancelledError);

  // The taxonomy: both abort reasons share RequestAbortedError.
  EXPECT_THROW(
      { throw CancelledError("c"); }, RequestAbortedError);
  EXPECT_THROW(
      { throw DeadlineExceededError("d"); }, RequestAbortedError);
}

TEST(KeyedFutureCacheTest, FailedFillErasesBeforePublishSoRetrySucceeds) {
  // Regression: a factory that throws must erase its entry BEFORE the
  // exception reaches any waiter, so a later (or woken) caller re-runs
  // the factory instead of observing the cached failure forever.
  KeyedFutureCache<int, int> cache(4);
  EXPECT_THROW(cache.get_or_make(1, []() -> std::shared_ptr<const int> {
    throw std::runtime_error("fill failed");
  }),
               std::runtime_error);
  std::shared_ptr<const int> v =
      cache.get_or_make(1, [] { return std::make_shared<const int>(7); });
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 7);
  EXPECT_EQ(cache.stats().misses, 2);  // both calls ran a factory
  EXPECT_EQ(cache.stats().entries, 1);
}

TEST(KeyedFutureCacheTest, AbortedLeaderHandsOffToJoiner) {
  // A leader whose factory aborts cooperatively must not propagate the
  // abort to joined waiters: each retries under its own factory. The
  // joiner here blocks on the leader's in-flight future, the leader
  // aborts, and the joiner's retry produces the value.
  KeyedFutureCache<int, int> cache(4);
  std::atomic<bool> leader_entered{false};
  std::atomic<bool> joiner_joined{false};

  std::thread leader([&] {
    EXPECT_THROW(
        cache.get_or_make(1,
                          [&]() -> std::shared_ptr<const int> {
                            leader_entered = true;
                            // Hold the entry in flight until the joiner
                            // has actually joined it.
                            while (!joiner_joined)
                              std::this_thread::yield();
                            throw CancelledError("leader cancelled");
                          }),
        CancelledError);
  });
  while (!leader_entered) std::this_thread::yield();

  std::thread joiner([&] {
    std::shared_ptr<const int> v = cache.get_or_make(1, [&] {
      return std::make_shared<const int>(42);
    });
    ASSERT_TRUE(v);
    EXPECT_EQ(*v, 42);
  });
  // The joiner must be inside fut.get() before the leader throws; the
  // inflight_joins stat flips exactly as it joins.
  while (cache.stats().inflight_joins == 0) std::this_thread::yield();
  joiner_joined = true;
  leader.join();
  joiner.join();

  KeyedCacheStats s = cache.stats();
  EXPECT_EQ(s.aborted_retries, 1);
  EXPECT_EQ(s.misses, 2);  // leader's run + joiner's retry
  EXPECT_EQ(s.entries, 1);
  std::shared_ptr<const int> v = cache.peek(1);
  ASSERT_TRUE(v);
  EXPECT_EQ(*v, 42);
}

}  // namespace
}  // namespace dynasparse
