#pragma once
// Dynasparse engine — the library's top-level public API.
//
// One call runs the paper's full pipeline: host compilation (IR, data
// partitioning, compile-time sparsity profiling) followed by the runtime
// system driving the simulated Alveo-U250-class accelerator. Example:
//
//   auto ds    = dynasparse::generate_dataset(dynasparse::dataset_by_tag("CO"), 1, 7);
//   dynasparse::Rng rng(13);
//   auto model = dynasparse::build_model(dynasparse::GnnModelKind::kGcn,
//                                        ds.spec.feature_dim, ds.spec.hidden_dim,
//                                        ds.spec.num_classes, rng);
//   auto report = dynasparse::run_inference(model, ds, {});
//   std::cout << report.latency_ms << " ms\n";

#include "compiler/compiler.hpp"
#include "core/report.hpp"
#include "graph/dataset.hpp"
#include "model/model.hpp"
#include "runtime/runtime_system.hpp"

namespace dynasparse {

struct EngineOptions {
  SimConfig config = u250_config();
  /// runtime.host_threads doubles as the per-request intra-op parallelism
  /// knob: it bounds how many work-stealing pool threads this request's
  /// execution may fan out on (the service additionally clamps it by
  /// ServiceOptions::intra_op_threads). 0 = share the pool freely.
  RuntimeOptions runtime;
};

/// Compile `model` over `ds` and execute it under the configured mapping
/// strategy. Deterministic for fixed inputs.
///
/// Routed through the process-default InferenceService
/// (service/inference_service.hpp): repeated calls over content-identical
/// inputs reuse the CompiledProgram from a small LRU cache instead of
/// recompiling (set DYNASPARSE_ENGINE_CACHE=0 to disable). For many
/// requests, prefer InferenceService::run_batch / submit, which add
/// concurrent execution on service workers.
InferenceReport run_inference(const GnnModel& model, const Dataset& ds,
                              const EngineOptions& options);

/// Run the same compiled program under a different strategy (reuses the
/// compilation — how the strategy-comparison benches iterate cheaply).
/// `token` (optional) makes the execution cooperatively cancellable at
/// kernel boundaries; see runtime/runtime_system.hpp.
InferenceReport run_compiled(const CompiledProgram& prog, const RuntimeOptions& runtime,
                             const CancellationToken& token = {});

/// Wrap an already-obtained ExecutionResult in the full InferenceReport
/// run_compiled would build (compile stats, PCIe data-movement model,
/// end-to-end latency). Shared by run_compiled and the service's fused
/// batch path, which executes members through
/// RuntimeSystem::execute_batch and assembles reports afterwards.
InferenceReport assemble_compiled_report(const CompiledProgram& prog,
                                         const RuntimeOptions& runtime,
                                         ExecutionResult execution);

}  // namespace dynasparse
