#include "core/report.hpp"

#include <iomanip>
#include <sstream>

#include "compiler/signature.hpp"

namespace dynasparse {

namespace {

void hash_tile(HashStream& h, const Tile& t) {
  h.i64(t.rows).i64(t.cols).i64(static_cast<std::int64_t>(t.format)).i64(t.nnz);
  if (t.format == TileFormat::kDense) {
    h.f32s(t.dense.data());
  } else if (t.format == TileFormat::kCoo) {
    for (const CooEntry& e : t.coo.entries()) h.i64(e.row).i64(e.col).f32(e.value);
  }
}

void hash_partitioned(HashStream& h, const PartitionedMatrix& m) {
  h.i64(m.rows()).i64(m.cols()).i64(m.tile_rows()).i64(m.tile_cols());
  for (std::int64_t gi = 0; gi < m.grid_rows(); ++gi)
    for (std::int64_t gj = 0; gj < m.grid_cols(); ++gj) hash_tile(h, m.tile(gi, gj));
}

}  // namespace

std::string InferenceReport::summary() const {
  std::ostringstream os;
  os << std::setprecision(4) << model_name << " on " << dataset_tag << " ["
     << strategy_name(strategy) << "]: latency " << latency_ms << " ms"
     << " (compile " << compile.total_ms() << " ms, exec " << execution.exec_ms
     << " ms, runtime-overhead " << std::setprecision(3)
     << execution.runtime_overhead_ratio * 100.0 << "%)";
  return os.str();
}

std::string InferenceReport::kernel_table() const {
  std::ostringstream os;
  os << std::left << std::setw(14) << "kernel" << std::right << std::setw(12)
     << "cycles" << std::setw(9) << "tasks" << std::setw(9) << "GEMM" << std::setw(9)
     << "SpDMM" << std::setw(9) << "SPMM" << std::setw(9) << "skip" << std::setw(11)
     << "out-dens" << '\n';
  for (const KernelExecutionReport& k : execution.kernels) {
    os << std::left << std::setw(14) << k.name << std::right << std::setw(12)
       << static_cast<long long>(k.makespan_cycles) << std::setw(9) << k.tasks
       << std::setw(9) << k.pairs_gemm << std::setw(9) << k.pairs_spdmm << std::setw(9)
       << k.pairs_spmm << std::setw(9) << k.pairs_skipped << std::setw(11)
       << std::fixed << std::setprecision(4) << k.output_density << '\n';
    os.unsetf(std::ios::fixed);
  }
  return os.str();
}

std::size_t InferenceReport::approx_footprint_bytes() const {
  std::size_t bytes = sizeof(InferenceReport);
  bytes += model_name.size() + dataset_tag.size();
  const ExecutionResult& e = execution;
  for (const KernelExecutionReport& k : e.kernels)
    bytes += sizeof(KernelExecutionReport) + k.name.size();
  bytes += e.node_densities.size() * sizeof(double);
  for (const ExecutionResult::KernelTimeline& t : e.timeline)
    bytes += sizeof(ExecutionResult::KernelTimeline) + t.name.size() +
             t.intervals.size() * sizeof(t.intervals[0]);
  const PartitionedMatrix& m = e.output;
  for (std::int64_t gi = 0; gi < m.grid_rows(); ++gi)
    for (std::int64_t gj = 0; gj < m.grid_cols(); ++gj) {
      const Tile& t = m.tile(gi, gj);
      bytes += sizeof(Tile);
      bytes += t.dense.data().size() * sizeof(float);
      bytes += t.coo.entries().size() * sizeof(CooEntry);
    }
  return bytes;
}

std::uint64_t InferenceReport::deterministic_fingerprint() const {
  HashStream h;
  h.str(model_name).str(dataset_tag).i64(static_cast<std::int64_t>(strategy));
  h.f64(latency_ms).f64(data_movement_ms);

  const ExecutionResult& e = execution;
  h.f64(e.exec_cycles)
      .f64(e.exec_ms)
      .f64(e.soft_ms)
      .f64(e.exposed_runtime_ms)
      .f64(e.latency_ms)
      .f64(e.runtime_overhead_ratio);
  h.u64(e.kernels.size());
  for (const KernelExecutionReport& k : e.kernels) {
    h.i64(k.node_id)
        .str(k.name)
        .f64(k.makespan_cycles)
        .f64(k.compute_cycles)
        .f64(k.memory_cycles)
        .f64(k.ahm_cycles)
        .f64(k.soft_cycles)
        .f64(k.k2p_soft_cycles)
        .i64(k.tasks)
        .i64(k.pairs)
        .i64(k.pairs_gemm)
        .i64(k.pairs_spdmm)
        .i64(k.pairs_spmm)
        .i64(k.pairs_skipped)
        .f64(k.load_imbalance)
        .f64(k.output_density);
  }
  h.i64(e.stats.tasks)
      .i64(e.stats.pairs)
      .i64(e.stats.pairs_gemm)
      .i64(e.stats.pairs_spdmm)
      .i64(e.stats.pairs_spmm)
      .i64(e.stats.pairs_skipped)
      .i64(e.stats.mode_switches)
      .f64(e.stats.compute_cycles)
      .f64(e.stats.memory_cycles)
      .f64(e.stats.ahm_cycles);
  h.u64(e.node_densities.size());
  for (double d : e.node_densities) h.f64(d);
  hash_partitioned(h, e.output);
  return h.digest();
}

}  // namespace dynasparse
