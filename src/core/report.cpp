#include "core/report.hpp"

#include <iomanip>
#include <sstream>

namespace dynasparse {

std::string InferenceReport::summary() const {
  std::ostringstream os;
  os << std::setprecision(4) << model_name << " on " << dataset_tag << " ["
     << strategy_name(strategy) << "]: latency " << latency_ms << " ms"
     << " (compile " << compile.total_ms() << " ms, exec " << execution.exec_ms
     << " ms, runtime-overhead " << std::setprecision(3)
     << execution.runtime_overhead_ratio * 100.0 << "%)";
  return os.str();
}

std::string InferenceReport::kernel_table() const {
  std::ostringstream os;
  os << std::left << std::setw(14) << "kernel" << std::right << std::setw(12)
     << "cycles" << std::setw(9) << "tasks" << std::setw(9) << "GEMM" << std::setw(9)
     << "SpDMM" << std::setw(9) << "SPMM" << std::setw(9) << "skip" << std::setw(11)
     << "out-dens" << '\n';
  for (const KernelExecutionReport& k : execution.kernels) {
    os << std::left << std::setw(14) << k.name << std::right << std::setw(12)
       << static_cast<long long>(k.makespan_cycles) << std::setw(9) << k.tasks
       << std::setw(9) << k.pairs_gemm << std::setw(9) << k.pairs_spdmm << std::setw(9)
       << k.pairs_spmm << std::setw(9) << k.pairs_skipped << std::setw(11)
       << std::fixed << std::setprecision(4) << k.output_density << '\n';
    os.unsetf(std::ios::fixed);
  }
  return os.str();
}

}  // namespace dynasparse
