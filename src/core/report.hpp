#pragma once
// Inference report: everything the paper's evaluation tables read off a
// run, in one value type.

#include <string>

#include "compiler/compiler.hpp"
#include "runtime/runtime_system.hpp"

namespace dynasparse {

struct InferenceReport {
  std::string model_name;
  std::string dataset_tag;
  MappingStrategy strategy = MappingStrategy::kDynamic;

  CompileStats compile;          // Table IX data
  ExecutionResult execution;     // per-kernel breakdown, Fig. 13 data

  /// Accelerator execution latency in ms — the paper's headline metric
  /// (Section VIII-A "Performance metric").
  double latency_ms = 0.0;
  /// End-to-end latency = preprocessing + (modelled) data movement +
  /// execution (Section VIII-D discussion).
  double end_to_end_ms = 0.0;
  /// Modelled CPU->FPGA PCIe transfer time of graph + model + IR.
  double data_movement_ms = 0.0;

  /// Render a one-line summary (used by examples and benches).
  std::string summary() const;
  /// Render the per-kernel table.
  std::string kernel_table() const;

  /// 64-bit content hash of every *simulation-deterministic* field:
  /// metadata, simulated latencies/cycles, per-kernel reports, aggregate
  /// stats, node densities, and the functional output matrix bits.
  /// Wall-clock measurements (CompileStats, end_to_end_ms, which folds
  /// compile wall time in) are excluded, so two runs over identical
  /// inputs — sequential or batched, any host thread count — produce the
  /// same fingerprint, and any numeric regression in compiler/runtime/
  /// simulator changes it. The regression layer (tests/golden_report_test
  /// and the service bit-identity checks) is built on this.
  std::uint64_t deterministic_fingerprint() const;

  /// Approximate heap footprint of this report in bytes: struct size plus
  /// strings, per-kernel entries, node densities, timelines, and the
  /// functional output matrix (dense data / COO entries per tile; a
  /// tile's lazily cached alternate-format views are not counted). The
  /// service's ResultCache uses this for its byte-bounded LRU accounting,
  /// so it only needs to be proportional to real memory use, not exact.
  std::size_t approx_footprint_bytes() const;
};

/// Sustained PCIe bandwidth of the U250 host link (paper Section VIII-D:
/// ~11.2 GB/s) used for the data-movement estimate.
inline constexpr double kPcieBytesPerSecond = 11.2e9;

}  // namespace dynasparse
