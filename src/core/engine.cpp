#include "core/engine.hpp"

#include <utility>

#include "service/inference_service.hpp"

namespace dynasparse {

InferenceReport run_compiled(const CompiledProgram& prog, const RuntimeOptions& runtime,
                             const CancellationToken& token) {
  return assemble_compiled_report(prog, runtime, execute(prog, runtime, token));
}

InferenceReport assemble_compiled_report(const CompiledProgram& prog,
                                         const RuntimeOptions& runtime,
                                         ExecutionResult execution) {
  InferenceReport rep;
  rep.model_name = prog.model.name;
  rep.strategy = runtime.strategy;
  rep.compile = prog.stats;
  rep.execution = std::move(execution);
  rep.latency_ms = rep.execution.latency_ms;

  // End-to-end latency (paper Section VIII-D): preprocessing + PCIe data
  // movement of the partitioned operands + accelerator execution.
  std::size_t moved_bytes = prog.h0->ddr_bytes(prog.config);
  for (const auto& [key, adj] : prog.adjacency) moved_bytes += adj->ddr_bytes(prog.config);
  for (const PartitionedMatrix& w : prog.weights) moved_bytes += w.ddr_bytes(prog.config);
  rep.data_movement_ms =
      static_cast<double>(moved_bytes) / kPcieBytesPerSecond * 1e3;
  rep.end_to_end_ms = rep.compile.total_ms() + rep.data_movement_ms + rep.latency_ms;
  return rep;
}

InferenceReport run_inference(const GnnModel& model, const Dataset& ds,
                              const EngineOptions& options) {
  // Routed through the process-default InferenceService: same compile +
  // execute path as batched serving, plus a small content-keyed
  // compilation cache so back-to-back calls over identical inputs skip
  // preprocessing (DYNASPARSE_ENGINE_CACHE=0 restores always-recompile).
  // Runs synchronously on the calling thread; deterministic report fields
  // are unchanged from the pre-service behavior.
  return InferenceService::process_default().run_one(model, ds, options);
}

}  // namespace dynasparse
