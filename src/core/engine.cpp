#include "core/engine.hpp"

namespace dynasparse {

InferenceReport run_compiled(const CompiledProgram& prog, const RuntimeOptions& runtime) {
  InferenceReport rep;
  rep.model_name = prog.model.name;
  rep.strategy = runtime.strategy;
  rep.compile = prog.stats;
  rep.execution = execute(prog, runtime);
  rep.latency_ms = rep.execution.latency_ms;

  // End-to-end latency (paper Section VIII-D): preprocessing + PCIe data
  // movement of the partitioned operands + accelerator execution.
  std::size_t moved_bytes = prog.h0.ddr_bytes(prog.config);
  for (const auto& [key, adj] : prog.adjacency) moved_bytes += adj.ddr_bytes(prog.config);
  for (const PartitionedMatrix& w : prog.weights) moved_bytes += w.ddr_bytes(prog.config);
  rep.data_movement_ms =
      static_cast<double>(moved_bytes) / kPcieBytesPerSecond * 1e3;
  rep.end_to_end_ms = rep.compile.total_ms() + rep.data_movement_ms + rep.latency_ms;
  return rep;
}

InferenceReport run_inference(const GnnModel& model, const Dataset& ds,
                              const EngineOptions& options) {
  CompiledProgram prog = compile(model, ds, options.config);
  InferenceReport rep = run_compiled(prog, options.runtime);
  rep.dataset_tag = ds.spec.tag;
  return rep;
}

}  // namespace dynasparse
