#pragma once
// The Analyzer's analytical performance model (paper Section VI-A).
//
// For a pair with densities (ax, ay), let amin = min, amax = max. The
// cycle formulas of Table IV partition the (amin, amax) domain into three
// non-overlapping optimality regions:
//   amin >= 1/2                      -> GEMM   fastest
//   amin <  1/2 and amax >= 2/psys   -> SpDMM  fastest
//   amin <  1/2 and amax <  2/psys   -> SPMM   fastest
// plus the degenerate amin == 0 region where the product is zero and the
// pair is skipped outright (Algorithm 7 lines 6-7).

#include "sim/cycle_model.hpp"

namespace dynasparse {

/// The optimal primitive for densities (ax, ay) per the closed-form
/// regions above. Never returns kSkip for amin > 0.
Primitive choose_primitive(double ax, double ay, int psys);

/// Predicted cycles of the *chosen* primitive (the value the Analyzer
/// compares when reasoning about mappings).
double predicted_cycles(const CycleModel& model, const PairShape& shape);

}  // namespace dynasparse
