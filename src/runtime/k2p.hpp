#pragma once
// Kernel-to-primitive mapping strategies (paper Section VIII-B).
//
//   Static-1 (HyGCN / BoostGCN): Aggregate -> SpDMM with A as the sparse
//     operand; Update -> GEMM. Blind to feature/weight sparsity.
//   Static-2 (AWB-GCN): both kernels -> SpDMM, the left operand (A for
//     Aggregate, H for Update) viewed as sparse. Blind to weight sparsity
//     and to the case where dense inputs make GEMM cheaper.
//   Dynamic (this paper, Algorithm 7): per tile pair, pick the optimal
//     primitive from the profiled densities; empty pairs are skipped and
//     the sparser operand is routed to BufferU.

#include "sim/cycle_model.hpp"

namespace dynasparse {

enum class MappingStrategy { kStatic1, kStatic2, kDynamic };

const char* strategy_name(MappingStrategy s);

enum class MappedKernelKind { kAggregate, kUpdate };

/// Decision for one tile pair X (density ax) * Y (density ay).
struct PairDecision {
  Primitive prim = Primitive::kSkip;
  /// Density charged by the SpDMM cycle model = density of the operand
  /// placed in BufferU (min for Dynamic, always ax for the static
  /// strategies, which hard-wire the left operand as the sparse one).
  double alpha_spdmm = 0.0;
  /// True when X goes to BufferU (affects nothing functionally; recorded
  /// for stats/tests of Algorithm 7 lines 14-15).
  bool x_in_buffer_u = true;
};

PairDecision decide_pair(MappingStrategy strategy, MappedKernelKind kind, double ax,
                         double ay, int psys);

}  // namespace dynasparse
