#pragma once
// Dynamic task scheduling (paper Algorithm 8).
//
// Within one kernel, tasks are independent; each Computation Core raises
// an interrupt when idle and the soft processor hands it the next task.
// That is exactly greedy list scheduling: we simulate it with a min-heap
// of core free times. Kernels are separated by a barrier (Algorithm 8
// line 6: wait until all tasks of kernel l are executed).

#include <cstdint>
#include <vector>

namespace dynasparse {

struct ScheduleResult {
  double makespan_cycles = 0.0;
  std::vector<double> core_busy_cycles;   // per-core total work
  std::vector<int> task_core;             // assignment, parallel to input
  /// max(core busy) / mean(core busy); 1.0 = perfectly balanced.
  double load_imbalance() const;
};

/// Greedy list scheduling of `task_cycles` (in input order) over
/// `num_cores` identical cores.
ScheduleResult schedule_tasks(const std::vector<double>& task_cycles, int num_cores);

/// One scheduled interval, for timelines / trace export.
struct ScheduledInterval {
  int task = 0;
  int core = 0;
  double start_cycles = 0.0;
  double end_cycles = 0.0;
};

/// Reconstruct the per-core timeline of the greedy schedule (same
/// assignment rule as schedule_tasks; intervals sorted by start time).
std::vector<ScheduledInterval> schedule_timeline(const std::vector<double>& task_cycles,
                                                 int num_cores);

}  // namespace dynasparse
