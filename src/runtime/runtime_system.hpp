#pragma once
// The runtime system (paper Section VI): Analyzer + Scheduler driving the
// simulated accelerator over a compiled program.
//
// Per kernel (in IR order):
//   1. the Analyzer walks every task's tile pairs, fetches the profiled
//      densities, and maps each pair to a primitive (Algorithm 7) under
//      the configured strategy — charging soft-processor cycles;
//   2. the functional result of every task is computed (host thread pool;
//      numerically identical whatever the mapping, see DESIGN.md);
//   3. every task is priced by the ComputeCoreModel and the Scheduler's
//      greedy list schedule (Algorithm 8) yields the kernel makespan;
//   4. the output matrix is stored tile-by-tile, re-profiled by the
//      Sparsity Profiler — giving the runtime densities the *next*
//      kernel's mapping will use.
// The K2P work for kernel l+1 overlaps kernel l's execution (paper
// Section VI-B); only the non-overlappable portion extends latency.
//
// Re-entrancy contract: execute() never mutates the CompiledProgram or
// any other shared state — all accumulation happens in per-call locals
// (node outputs, SoftProcessor, stats), and the only mutation reachable
// through the const program is Tile's lazily materialized view cache,
// which is std::call_once-guarded. Any number of threads may therefore
// execute the *same* CompiledProgram concurrently (what the inference
// service relies on when many requests hit one cached program). Keep it
// that way: new state belongs in ExecutionResult or a local, never in
// CompiledProgram.

#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compiler.hpp"
#include "matrix/partitioned_matrix.hpp"
#include "runtime/k2p.hpp"
#include "runtime/scheduler.hpp"
#include "sim/accelerator.hpp"
#include "util/cancellation.hpp"

namespace dynasparse {

struct RuntimeOptions {
  MappingStrategy strategy = MappingStrategy::kDynamic;
  /// Double buffering hides AHM (profiler/FTM/LTU) streaming work
  /// (paper's configuration). false = ablation: AHM serializes.
  bool hide_ahm = true;
  /// Overlap the Analyzer's K2P mapping for kernel l+1 with kernel l's
  /// execution (paper Section VI-B). false = ablation: fully exposed.
  bool hide_runtime = true;
  /// Max host threads for the functional math and per-task pricing
  /// (0 = the work-stealing pool's default: all hardware threads, or
  /// DYNASPARSE_FORCE_THREADS). This is the per-request intra-op knob:
  /// the inference service combines it with ServiceOptions::
  /// intra_op_threads (tighter bound wins) before executing a request.
  /// Results are thread-count-invariant; only wall-clock changes.
  int host_threads = 0;
  /// Price every pair with the detailed dataflow models (systolic
  /// fill/drain, ISN bank conflicts, SCP imbalance; sim/acm_functional)
  /// instead of the Table IV closed forms. Slower to simulate; intended
  /// for fidelity studies (ablation_cycle_model_fidelity).
  bool detailed_timing = false;
  /// Record per-task schedule timelines (ExecutionResult::timeline) for
  /// Chrome-tracing export (io/trace_io.hpp).
  bool collect_timeline = false;
  /// Skip the functional math and only produce timing. Valid because
  /// timing consumes densities, not values; the density of each kernel
  /// *output* is then unavailable, so this is only allowed for programs
  /// whose mapping never needs runtime densities (not used by default).
  bool functional = true;
};

struct KernelExecutionReport {
  int node_id = 0;
  std::string name;                 // e.g. "Update L1"
  double makespan_cycles = 0.0;     // accelerator time for this kernel
  double compute_cycles = 0.0;      // summed over all tasks
  double memory_cycles = 0.0;
  double ahm_cycles = 0.0;
  double soft_cycles = 0.0;         // Analyzer + dispatch (soft clock)
  double k2p_soft_cycles = 0.0;     // Analyzer (K2P) portion only
  std::int64_t tasks = 0;
  std::int64_t pairs = 0;
  std::int64_t pairs_gemm = 0, pairs_spdmm = 0, pairs_spmm = 0, pairs_skipped = 0;
  double load_imbalance = 1.0;
  double output_density = 0.0;      // post-activation (Fig. 2 data)
};

struct ExecutionResult {
  std::vector<KernelExecutionReport> kernels;
  double exec_cycles = 0.0;        // sum of kernel makespans
  double exec_ms = 0.0;            // accelerator execution latency
  double soft_ms = 0.0;            // total runtime-system work
  double exposed_runtime_ms = 0.0; // portion not hidden by overlap
  double latency_ms = 0.0;         // exec_ms + exposed_runtime_ms
  /// Fig. 13 metric: runtime-system work / total execution time.
  double runtime_overhead_ratio = 0.0;
  AcceleratorStats stats;
  PartitionedMatrix output;        // final kernel's matrix (functional)
  std::vector<double> node_densities;  // per kernel, post-activation

  /// Kernel name + per-task intervals + cumulative start offset, filled
  /// when RuntimeOptions::collect_timeline is set (see io/trace_io.hpp).
  struct KernelTimeline {
    std::string name;
    std::vector<ScheduledInterval> intervals;
    double start_offset_cycles = 0.0;
  };
  std::vector<KernelTimeline> timeline;
};

/// Execute `prog`. `token` (optional; see util/cancellation.hpp) is
/// checked at every kernel boundary: a cancelled or deadline-expired
/// request aborts with the typed error between kernels, never mid-kernel
/// — so an execution that *completes* is bit-identical to an
/// uncancellable run. The token is deliberately NOT a RuntimeOptions
/// field: every RuntimeOptions field participates in the result-cache
/// signature (compiler/signature.hpp keep-in-sync discipline), and a
/// cancellation handle is identity, not content.
ExecutionResult execute(const CompiledProgram& prog, const RuntimeOptions& opt,
                        const CancellationToken& token = {});

/// One member of a fused cross-request batch. Members are grouped by the
/// service on equal plan_signature + dataset_signature, so their programs
/// share partition geometry and (when the tile pool is on) pointer-equal
/// adjacency operands — but each member keeps its own program (weights
/// may differ), options, and cancellation token.
struct BatchMember {
  const CompiledProgram* prog = nullptr;
  RuntimeOptions opt;
  CancellationToken token;
};

/// Per-member outcome of execute_batch: `error` null means `result` is a
/// completed execution bit-identical to what solo execute() would have
/// produced; `error` set means this member aborted or failed (the raw
/// exception — CancelledError / DeadlineExceededError /
/// FaultInjectedError / anything else — for the caller to classify).
struct BatchMemberResult {
  ExecutionResult result;
  std::exception_ptr error;
};

struct BatchExecution {
  std::vector<BatchMemberResult> members;  // one per input, same order
  /// Kernels whose functional math ran as ONE sweep over a shared
  /// (pointer-equal) X operand feeding every live member — the fused
  /// multi-feature path. Kernels with per-member X (Update kernels, or
  /// aggregates when the tile pool is off) still execute inside one flat
  /// cross-member parallel loop, they just don't share operand streams.
  std::int64_t fused_kernels = 0;
  std::int64_t total_kernels = 0;
};

/// Execute several plan-compatible programs as one fused batch.
///
/// Determinism contract: every member's completed ExecutionResult is
/// BIT-IDENTICAL to solo execute() with the same (prog, opt) — fusion
/// only restructures scheduling (which tasks run concurrently), never a
/// member's per-element FP operation sequence, its primitive dispatch,
/// or its pricing reduction shape. Per-member isolation mirrors solo
/// semantics at every kernel boundary, in member order: the member's
/// token is checked and the runtime.kernel_fault chaos site is drawn
/// once per member, so a cancelled/expired/faulted member drops out of
/// the batch alone and its batchmates continue unperturbed. An exception
/// escaping the fused functional sweep itself (e.g. allocation failure —
/// not attributable to one member) fails every still-live member.
///
/// Falls back to per-member solo execution when the programs are not
/// structurally batchable (different kernel sequences or partition
/// geometry) — callers may pass any group; compatible grouping only
/// affects speed, never correctness.
BatchExecution execute_batch(const std::vector<BatchMember>& members);

}  // namespace dynasparse
