#include "runtime/scheduler.hpp"

#include <queue>
#include <stdexcept>

namespace dynasparse {

double ScheduleResult::load_imbalance() const {
  if (core_busy_cycles.empty()) return 1.0;
  double max_busy = 0.0, sum = 0.0;
  for (double b : core_busy_cycles) {
    max_busy = std::max(max_busy, b);
    sum += b;
  }
  double mean = sum / static_cast<double>(core_busy_cycles.size());
  return mean > 0.0 ? max_busy / mean : 1.0;
}

ScheduleResult schedule_tasks(const std::vector<double>& task_cycles, int num_cores) {
  if (num_cores <= 0) throw std::invalid_argument("need at least one core");
  ScheduleResult r;
  r.core_busy_cycles.assign(static_cast<std::size_t>(num_cores), 0.0);
  r.task_core.assign(task_cycles.size(), -1);

  // Min-heap of (free_time, core); the earliest-idle core interrupts first.
  using Slot = std::pair<double, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> idle;
  for (int c = 0; c < num_cores; ++c) idle.push({0.0, c});

  for (std::size_t i = 0; i < task_cycles.size(); ++i) {
    auto [free_at, core] = idle.top();
    idle.pop();
    double done = free_at + task_cycles[i];
    r.task_core[i] = core;
    r.core_busy_cycles[static_cast<std::size_t>(core)] += task_cycles[i];
    r.makespan_cycles = std::max(r.makespan_cycles, done);
    idle.push({done, core});
  }
  return r;
}

std::vector<ScheduledInterval> schedule_timeline(const std::vector<double>& task_cycles,
                                                 int num_cores) {
  if (num_cores <= 0) throw std::invalid_argument("need at least one core");
  std::vector<ScheduledInterval> timeline;
  timeline.reserve(task_cycles.size());
  using Slot = std::pair<double, int>;
  std::priority_queue<Slot, std::vector<Slot>, std::greater<>> idle;
  for (int c = 0; c < num_cores; ++c) idle.push({0.0, c});
  for (std::size_t i = 0; i < task_cycles.size(); ++i) {
    auto [free_at, core] = idle.top();
    idle.pop();
    double done = free_at + task_cycles[i];
    timeline.push_back({static_cast<int>(i), core, free_at, done});
    idle.push({done, core});
  }
  return timeline;
}

}  // namespace dynasparse
