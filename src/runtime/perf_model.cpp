#include "runtime/perf_model.hpp"

#include <algorithm>

namespace dynasparse {

Primitive choose_primitive(double ax, double ay, int psys) {
  double amin = std::min(ax, ay);
  double amax = std::max(ax, ay);
  if (amin <= 0.0) return Primitive::kSkip;
  if (amin >= 0.5) return Primitive::kGemm;
  if (amax >= 2.0 / static_cast<double>(psys)) return Primitive::kSpdmm;
  return Primitive::kSpmm;
}

double predicted_cycles(const CycleModel& model, const PairShape& shape) {
  Primitive p = choose_primitive(shape.ax, shape.ay, model.psys());
  double amin = std::min(shape.ax, shape.ay);
  return model.pair_cycles(p, shape, amin);
}

}  // namespace dynasparse
