#include "runtime/k2p.hpp"

#include <algorithm>

#include "runtime/perf_model.hpp"

namespace dynasparse {

const char* strategy_name(MappingStrategy s) {
  switch (s) {
    case MappingStrategy::kStatic1: return "Static-1";
    case MappingStrategy::kStatic2: return "Static-2";
    case MappingStrategy::kDynamic: return "Dynamic";
  }
  return "?";
}

PairDecision decide_pair(MappingStrategy strategy, MappedKernelKind kind, double ax,
                         double ay, int psys) {
  PairDecision d;
  switch (strategy) {
    case MappingStrategy::kStatic1:
      if (kind == MappedKernelKind::kAggregate) {
        d.prim = Primitive::kSpdmm;
        d.alpha_spdmm = ax;  // A viewed sparse regardless of H
      } else {
        d.prim = Primitive::kGemm;
      }
      return d;
    case MappingStrategy::kStatic2:
      // Both kernels as SpDMM; the left operand (A or H) viewed sparse.
      d.prim = Primitive::kSpdmm;
      d.alpha_spdmm = ax;
      return d;
    case MappingStrategy::kDynamic: {
      d.prim = choose_primitive(ax, ay, psys);
      d.alpha_spdmm = std::min(ax, ay);
      d.x_in_buffer_u = ax <= ay;  // argmin density -> BufferU
      return d;
    }
  }
  return d;
}

}  // namespace dynasparse
