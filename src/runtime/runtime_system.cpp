#include "runtime/runtime_system.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "compiler/execution_scheme.hpp"
#include "model/activation.hpp"
#include "util/fault_injection.hpp"
#include "sim/acm_functional.hpp"
#include "sim/compute_core.hpp"
#include "sim/format_transform.hpp"
#include "sim/layout_transform.hpp"
#include "sim/soft_processor.hpp"

namespace dynasparse {

namespace {

/// Resolve the two operand matrices of a kernel.
struct KernelOperands {
  const PartitionedMatrix* x = nullptr;  // A for Aggregate, H for Update
  const PartitionedMatrix* y = nullptr;  // H for Aggregate, W for Update
};

KernelOperands resolve_operands(const CompiledProgram& prog, const KernelIR& ir,
                                const std::vector<PartitionedMatrix>& node_outputs) {
  const PartitionedMatrix& h =
      ir.spec.input == kFromFeatures
          ? *prog.h0
          : node_outputs[static_cast<std::size_t>(ir.spec.input)];
  KernelOperands ops;
  if (ir.spec.kind == KernelKind::kAggregate) {
    ops.x = &prog.adjacency_for(ir.spec);
    ops.y = &h;
  } else {
    ops.x = &h;
    ops.y = &prog.weights[static_cast<std::size_t>(ir.spec.weight_index)];
  }
  return ops;
}

/// AHM streaming work attached to one pair: format transforms when the
/// stored format differs from what the execution mode needs (Table III)
/// and the layout transform of GEMM's column-major second operand.
double pair_ahm_cycles(const PairDecision& d, const Tile& x, const Tile& y, int lanes) {
  double cycles = 0.0;
  if (d.prim == Primitive::kGemm) {
    // GEMM reads both operands dense; sparse-stored tiles pass S2D.
    if (x.format == TileFormat::kCoo) cycles += s2d_cycles(x.rows * x.cols, lanes);
    if (y.format == TileFormat::kCoo) cycles += s2d_cycles(y.rows * y.cols, lanes);
    // BufferP wants Y column-major; DDR keeps everything row-major.
    cycles += layout_transform_cycles(y.rows, y.cols, lanes);
  } else if (d.prim == Primitive::kSpdmm) {
    // BufferU operand must be sparse, BufferO operand dense.
    const Tile& u = d.x_in_buffer_u ? x : y;
    const Tile& o = d.x_in_buffer_u ? y : x;
    if (u.format == TileFormat::kDense) cycles += d2s_cycles(u.rows * u.cols, lanes);
    if (o.format == TileFormat::kCoo) cycles += s2d_cycles(o.rows * o.cols, lanes);
  } else if (d.prim == Primitive::kSpmm) {
    // Both operands sparse row-major.
    if (x.format == TileFormat::kDense) cycles += d2s_cycles(x.rows * x.cols, lanes);
    if (y.format == TileFormat::kDense) cycles += d2s_cycles(y.rows * y.cols, lanes);
  }
  return cycles;
}

/// Detailed-timing mode: execute the pair on the dataflow model of the
/// chosen mode and return its cycle count. SpDMM with the *right* operand
/// in BufferU runs the transposed product (Z^T = Y^T X^T) — identical MAC
/// count and bank-conflict structure with the roles swapped.
double detailed_pair_cycles(const PairDecision& d, const Tile& x, const Tile& y,
                            int psys) {
  switch (d.prim) {
    case Primitive::kSkip:
      return 0.0;
    case Primitive::kGemm: {
      // Cached tile views: the same X row strip / Y column strip tile is
      // priced by many tasks, so materialization happens once per tile,
      // not once per pair.
      DenseMatrix z(x.rows, y.cols);
      return GemmSystolicModel(psys).run(x.dense_view(), y.dense_view(), z).cycles;
    }
    case Primitive::kSpdmm: {
      SpdmmScatterGatherModel model(psys);
      if (d.x_in_buffer_u) {
        DenseMatrix z(x.rows, y.cols);
        return model.run(x.coo_view(), y.dense_view(), z).cycles;
      }
      CooMatrix yt = y.coo_view().transposed();
      DenseMatrix xt = x.dense_view().transposed();
      DenseMatrix z(y.cols, x.rows);
      return model.run(yt, xt, z).cycles;
    }
    case Primitive::kSpmm: {
      DenseMatrix z(x.rows, y.cols);
      return SpmmRowwiseModel(psys).run(x.coo_view(), y.coo_view(), z).cycles;
    }
  }
  return 0.0;
}

// ---------------------------------------------------------------------------
// Per-kernel execution phases, shared verbatim between the solo execute()
// and the fused execute_batch() below. Any change to one path IS a change
// to the other — that is what keeps batched results bit-identical to solo.
// ---------------------------------------------------------------------------

/// Everything one kernel instance carries between phases.
struct KernelPass {
  const KernelIR* ir = nullptr;
  KernelOperands ops;
  std::vector<Task> tasks;
  PartitionedMatrix out;
};

KernelPass begin_kernel(const CompiledProgram& prog, std::size_t l,
                        const std::vector<PartitionedMatrix>& node_outputs) {
  const KernelIR& ir = prog.kernels[l];
  KernelPass kp;
  kp.ir = &ir;
  kp.ops = resolve_operands(prog, ir, node_outputs);
  kp.tasks = generate_tasks(ir);
  kp.out = PartitionedMatrix(ir.num_vertices, ir.spec.out_dim, prog.plan.n1,
                             prog.plan.n2);
  return kp;
}

/// One task's functional math. Each task owns its output tile, so any
/// number of tasks — of one kernel or of several batch members — may run
/// concurrently without aliasing.
void run_functional_task(KernelPass& kp, const Task& t, double thr) {
  const PartitionedMatrix& X = *kp.ops.x;
  const PartitionedMatrix& Y = *kp.ops.y;
  DenseMatrix acc(kp.out.tile_row_count(t.out_gi), kp.out.tile_col_count(t.out_gk),
                  Layout::kRowMajor);
  for (std::int64_t j = 0; j < t.inner_steps; ++j)
    accumulate_product(X.tile(t.out_gi, j), Y.tile(j, t.out_gk), acc, kp.ir->spec.op);
  kp.out.set_tile_from_dense(t.out_gi, t.out_gk, std::move(acc), thr);
}

/// Combine (GraphSAGE) then activation, both in the store pipeline.
void finish_functional(KernelPass& kp,
                       const std::vector<PartitionedMatrix>& node_outputs,
                       double thr) {
  if (kp.ir->spec.add_input >= 0)
    kp.out.add_inplace(node_outputs[static_cast<std::size_t>(kp.ir->spec.add_input)],
                       thr);
  if (kp.ir->spec.act != Activation::kNone)
    kp.out.apply_elementwise(activation_fn(kp.ir->spec.act), thr);
}

/// Analyzer + per-task pricing + greedy list schedule + soft-processor
/// accounting for one kernel; appends the kernel report and advances the
/// per-request accumulators. Deliberately NOT fused across batch members:
/// parallel_reduce's chunk-combine shape depends on the element count, so
/// fusing reductions of different members would change the combine order
/// and break bit-identity with solo runs.
void price_and_schedule(const CompiledProgram& prog, const RuntimeOptions& opt,
                        KernelPass& kp, ComputeCoreModel& core, SoftProcessor& soft,
                        ExecutionResult& result) {
  const SimConfig& cfg = prog.config;
  const KernelIR& ir = *kp.ir;
  const PartitionedMatrix& X = *kp.ops.x;
  const PartitionedMatrix& Y = *kp.ops.y;
  const std::vector<Task>& tasks = kp.tasks;
  PartitionedMatrix& out = kp.out;

  KernelExecutionReport rep;
  rep.node_id = ir.node_id;
  {
    std::ostringstream name;
    name << ir.spec.kind_name() << " L" << ir.spec.layer_id;
    rep.name = name.str();
  }
  rep.tasks = static_cast<std::int64_t>(tasks.size());
  MappedKernelKind mkind = ir.spec.kind == KernelKind::kAggregate
                               ? MappedKernelKind::kAggregate
                               : MappedKernelKind::kUpdate;

  // Operand-strip reuse under double buffering: the grid_i tasks of one
  // output column all consume the same Y column strip (one weight strip
  // for Update, one H column strip for Aggregate); when that strip fits
  // the on-chip buffer it is loaded once per core, not once per task.
  // Symmetrically for X row strips shared by the grid_k tasks of one
  // output row. Amortized share = cores / tasks-sharing-the-strip.
  const double cores = static_cast<double>(cfg.num_cores);
  double y_reuse = 1.0, x_reuse = 1.0;
  if (ir.scheme.grid_k > 0) {
    std::size_t y_strip =
        Y.ddr_bytes(cfg) / static_cast<std::size_t>(ir.scheme.grid_k);
    if (y_strip <= cfg.onchip_tile_bytes && ir.scheme.grid_i > cfg.num_cores)
      y_reuse = cores / static_cast<double>(ir.scheme.grid_i);
  }
  if (ir.scheme.grid_i > 0) {
    std::size_t x_strip =
        X.ddr_bytes(cfg) / static_cast<std::size_t>(ir.scheme.grid_i);
    if (x_strip <= cfg.onchip_tile_bytes && ir.scheme.grid_k > cfg.num_cores)
      x_reuse = cores / static_cast<double>(ir.scheme.grid_k);
  }
  std::vector<double> durations(tasks.size(), 0.0);
  // Price every task and reduce the per-task stats in one pass. The
  // reduction must precede the soft-processor accounting below (which
  // charges less for pairs the Analyzer short-circuits as empty);
  // parallel_reduce combines chunk partials in chunk order, so the
  // totals are deterministic whatever the host thread count.
  AcceleratorStats kernel_stats = parallel_reduce<AcceleratorStats>(
      static_cast<std::int64_t>(tasks.size()), AcceleratorStats{},
      [&](std::int64_t ti, AcceleratorStats& acc) {
        const Task& t = tasks[static_cast<std::size_t>(ti)];
        std::vector<PairWork> pairs;
        pairs.reserve(static_cast<std::size_t>(t.inner_steps));
        for (std::int64_t j = 0; j < t.inner_steps; ++j) {
          const Tile& x = X.tile(t.out_gi, j);
          const Tile& y = Y.tile(j, t.out_gk);
          // Profile each operand once per pair; the decision and the
          // shape both consume the same numbers.
          const double ax = x.density(), ay = y.density();
          PairDecision d = decide_pair(opt.strategy, mkind, ax, ay, cfg.psys);
          PairWork w;
          w.shape = PairShape{x.rows, x.cols, y.cols, ax, ay};
          w.prim = d.prim;
          w.alpha_spdmm = d.alpha_spdmm;
          if (d.prim != Primitive::kSkip)
            w.load_bytes = x_reuse * static_cast<double>(x.ddr_bytes(cfg)) +
                           y_reuse * static_cast<double>(y.ddr_bytes(cfg));
          w.ahm_cycles = d.prim == Primitive::kSkip
                             ? 0.0
                             : pair_ahm_cycles(d, x, y, cfg.psys);
          if (opt.detailed_timing && d.prim != Primitive::kSkip)
            w.compute_cycles_override = detailed_pair_cycles(d, x, y, cfg.psys);
          pairs.push_back(w);
        }
        const Tile& out_tile = out.tile(t.out_gi, t.out_gk);
        std::size_t wb_bytes = opt.functional
                                   ? out_tile.ddr_bytes(cfg)
                                   : static_cast<std::size_t>(out_tile.rows) *
                                         static_cast<std::size_t>(out_tile.cols) *
                                         cfg.dense_elem_bytes;
        int active_cores = static_cast<int>(
            std::min<std::int64_t>(cfg.num_cores,
                                   static_cast<std::int64_t>(tasks.size())));
        TaskTiming tt =
            core.time_task(pairs, wb_bytes, out_tile.rows * out_tile.cols,
                           opt.hide_ahm, active_cores);
        // Parallel-safe: each task owns its duration slot.
        durations[static_cast<std::size_t>(ti)] = tt.total_cycles;
        // Tally primitive usage for the report.
        AcceleratorStats local;
        local.tasks = 1;
        for (const PairWork& w : pairs) {
          ++local.pairs;
          switch (w.prim) {
            case Primitive::kGemm: ++local.pairs_gemm; break;
            case Primitive::kSpdmm: ++local.pairs_spdmm; break;
            case Primitive::kSpmm: ++local.pairs_spmm; break;
            case Primitive::kSkip: ++local.pairs_skipped; break;
          }
        }
        local.mode_switches = tt.mode_switches;
        local.compute_cycles = tt.compute_cycles;
        local.memory_cycles = tt.memory_cycles;
        local.ahm_cycles = tt.ahm_cycles;
        acc.merge(local);
      },
      [](AcceleratorStats& into, const AcceleratorStats& from) { into.merge(from); },
      opt.host_threads);

  rep.pairs = kernel_stats.pairs;
  rep.pairs_gemm = kernel_stats.pairs_gemm;
  rep.pairs_spdmm = kernel_stats.pairs_spdmm;
  rep.pairs_spmm = kernel_stats.pairs_spmm;
  rep.pairs_skipped = kernel_stats.pairs_skipped;
  rep.compute_cycles = kernel_stats.compute_cycles;
  rep.memory_cycles = kernel_stats.memory_cycles;
  rep.ahm_cycles = kernel_stats.ahm_cycles;
  result.stats.mode_switches += kernel_stats.mode_switches;

  // ---- Scheduler: greedy list schedule over the Computation Cores ----
  ScheduleResult sched = schedule_tasks(durations, cfg.num_cores);
  rep.makespan_cycles = sched.makespan_cycles;
  rep.load_imbalance = sched.load_imbalance();
  if (opt.collect_timeline)
    result.timeline.push_back(ExecutionResult::KernelTimeline{
        rep.name, schedule_timeline(durations, cfg.num_cores), result.exec_cycles});

  // ---- Soft processor accounting --------------------------------------
  double soft_before = soft.cycles();
  double k2p_cycles = 0.0;
  if (opt.strategy == MappingStrategy::kDynamic) {
    soft.charge_k2p(rep.pairs - rep.pairs_skipped);
    soft.charge_k2p_skips(rep.pairs_skipped);
    k2p_cycles = soft.cycles() - soft_before;
  }
  soft.charge_dispatch(static_cast<std::int64_t>(tasks.size()));
  rep.soft_cycles = soft.cycles() - soft_before;
  rep.k2p_soft_cycles = k2p_cycles;

  rep.output_density = out.density();
  result.node_densities.push_back(rep.output_density);
  result.exec_cycles += rep.makespan_cycles;
  result.kernels.push_back(rep);
}

/// Roll kernel reports up into the request-level result (stats totals,
/// latency model, final output matrix).
void finalize_result(const SimConfig& cfg, const RuntimeOptions& opt,
                     std::vector<PartitionedMatrix>& node_outputs,
                     ExecutionResult& result) {
  for (const KernelExecutionReport& k : result.kernels) {
    result.stats.tasks += k.tasks;
    result.stats.pairs += k.pairs;
    result.stats.pairs_gemm += k.pairs_gemm;
    result.stats.pairs_spdmm += k.pairs_spdmm;
    result.stats.pairs_spmm += k.pairs_spmm;
    result.stats.pairs_skipped += k.pairs_skipped;
    result.stats.compute_cycles += k.compute_cycles;
    result.stats.memory_cycles += k.memory_cycles;
    result.stats.ahm_cycles += k.ahm_cycles;
  }

  result.exec_ms = cfg.cycles_to_ms(result.exec_cycles);
  result.soft_ms = cfg.soft_cycles_to_ms(
      [&] {
        double total = 0.0;
        for (const KernelExecutionReport& k : result.kernels) total += k.soft_cycles;
        return total;
      }());

  // Overlap model. Two mechanisms hide the runtime system's work:
  //  - the Analyzer maps kernel l+1 while kernel l executes (paper
  //    Section VI-B); kernel 0's operand densities (A, W, H0) come from
  //    compile-time profiling, so its mapping overlaps the initial
  //    host->FPGA data upload;
  //  - within a kernel, decisions stream ahead of the interrupt-driven
  //    dispatcher, overlapping that kernel's own execution (the paper's
  //    "hidden by the task scheduling", Section VI-C).
  // The paper's latency metric treats the runtime system as fully hidden
  // (Section VIII-C) and reports its cost only as the Fig. 13 ratio; with
  // hide_runtime we follow that accounting, and the ablation
  // (hide_runtime = false) exposes the full soft-processor time instead.
  result.exposed_runtime_ms = opt.hide_runtime ? 0.0 : result.soft_ms;
  result.latency_ms = result.exec_ms + result.exposed_runtime_ms;
  result.runtime_overhead_ratio =
      result.exec_ms > 0.0 ? result.soft_ms / result.exec_ms : 0.0;

  if (!node_outputs.empty()) result.output = std::move(node_outputs.back());
}

}  // namespace

ExecutionResult execute(const CompiledProgram& prog, const RuntimeOptions& opt,
                        const CancellationToken& token) {
  const SimConfig& cfg = prog.config;
  ComputeCoreModel core(cfg);
  SoftProcessor soft(cfg);
  const double thr = cfg.sparse_storage_threshold;

  ExecutionResult result;
  result.kernels.reserve(prog.kernels.size());
  std::vector<PartitionedMatrix> node_outputs(prog.kernels.size());

  for (std::size_t l = 0; l < prog.kernels.size(); ++l) {
    const KernelIR& ir = prog.kernels[l];
    // Kernel boundary: the cooperative abort point (never mid-kernel, so
    // a run that finishes is bit-identical to an uncancellable one) and
    // the chaos layer's transient-execution-failure site.
    token.check();
    if (fault_point(kFaultRuntimeKernelFault))
      throw FaultInjectedError("injected kernel fault (node " +
                               std::to_string(ir.node_id) + ")");
    KernelPass kp = begin_kernel(prog, l, node_outputs);

    // ---- Functional execution (work-stealing host pool; each task owns
    // its output tile, so parallel writes never alias, and the chunks of
    // this one loop fan out across every idle worker — concurrent
    // requests share the same pool without serializing). ------------------
    if (opt.functional) {
      parallel_for(
          static_cast<std::int64_t>(kp.tasks.size()),
          [&](std::int64_t ti) {
            run_functional_task(kp, kp.tasks[static_cast<std::size_t>(ti)], thr);
          },
          opt.host_threads);
      finish_functional(kp, node_outputs, thr);
    }

    price_and_schedule(prog, opt, kp, core, soft, result);
    node_outputs[static_cast<std::size_t>(ir.node_id)] = std::move(kp.out);
  }

  finalize_result(cfg, opt, node_outputs, result);
  return result;
}

namespace {

/// Per-member running state of a fused batch — exactly the locals of one
/// solo execute() call, boxed so members advance in lockstep.
struct MemberRun {
  const CompiledProgram* prog;
  const RuntimeOptions* opt;
  CancellationToken token;
  ComputeCoreModel core;
  SoftProcessor soft;
  double thr;
  ExecutionResult result;
  std::vector<PartitionedMatrix> node_outputs;
  std::exception_ptr error;

  explicit MemberRun(const BatchMember& m)
      : prog(m.prog),
        opt(&m.opt),
        token(m.token),
        core(m.prog->config),
        soft(m.prog->config),
        thr(m.prog->config.sparse_storage_threshold),
        node_outputs(m.prog->kernels.size()) {
    result.kernels.reserve(m.prog->kernels.size());
  }
  bool live() const { return !error; }
};

/// Structurally batchable: same kernel sequence shape and partition
/// geometry, so every member generates the identical task grid per
/// kernel. Guaranteed by equal plan_signature (the service's group key);
/// verified here so execute_batch stays safe for arbitrary callers.
bool batch_compatible(const std::vector<BatchMember>& members) {
  const CompiledProgram& p0 = *members[0].prog;
  for (const BatchMember& m : members) {
    const CompiledProgram& p = *m.prog;
    if (p.kernels.size() != p0.kernels.size()) return false;
    if (p.plan.n1 != p0.plan.n1 || p.plan.n2 != p0.plan.n2) return false;
    for (std::size_t l = 0; l < p.kernels.size(); ++l) {
      const KernelIR& a = p.kernels[l];
      const KernelIR& b = p0.kernels[l];
      if (a.spec.kind != b.spec.kind || a.spec.out_dim != b.spec.out_dim ||
          a.num_vertices != b.num_vertices)
        return false;
    }
  }
  return true;
}

/// Tighter of the members' host-thread caps (0 = uncapped) for the fused
/// loops. Results are thread-count-invariant, so this only affects
/// wall-clock, never bit-identity.
int fused_thread_cap(const std::vector<MemberRun>& runs,
                     const std::vector<std::size_t>& live) {
  int cap = 0;
  for (std::size_t m : live) {
    int ht = runs[m].opt->host_threads;
    if (ht > 0) cap = cap == 0 ? ht : std::min(cap, ht);
  }
  return cap;
}

}  // namespace

BatchExecution execute_batch(const std::vector<BatchMember>& members) {
  BatchExecution bx;
  bx.members.resize(members.size());
  if (members.empty()) return bx;

  // Non-batchable group (caller mixed plan shapes): solo per member.
  if (!batch_compatible(members)) {
    for (std::size_t m = 0; m < members.size(); ++m) {
      try {
        bx.members[m].result =
            execute(*members[m].prog, members[m].opt, members[m].token);
      } catch (...) {
        bx.members[m].error = std::current_exception();
      }
    }
    return bx;
  }

  std::vector<MemberRun> runs;
  runs.reserve(members.size());
  for (const BatchMember& m : members) runs.emplace_back(m);

  const std::size_t num_kernels = members[0].prog->kernels.size();
  bx.total_kernels = static_cast<std::int64_t>(num_kernels);

  for (std::size_t l = 0; l < num_kernels; ++l) {
    // Kernel boundary, per member in index order: each member's token
    // check and runtime.kernel_fault draw happen exactly as in its solo
    // run, so an abort or injected fault drops THAT member from the batch
    // and its batchmates continue. Member order is fixed, which keeps
    // chaos outcomes seed-reproducible for a given batch composition.
    std::vector<KernelPass> passes(runs.size());
    std::vector<std::size_t> live;
    for (std::size_t m = 0; m < runs.size(); ++m) {
      if (!runs[m].live()) continue;
      try {
        runs[m].token.check();
        if (fault_point(kFaultRuntimeKernelFault))
          throw FaultInjectedError(
              "injected kernel fault (node " +
              std::to_string(runs[m].prog->kernels[l].node_id) + ")");
        passes[m] = begin_kernel(*runs[m].prog, l, runs[m].node_outputs);
        live.push_back(m);
      } catch (...) {
        runs[m].error = std::current_exception();
      }
    }
    if (live.empty()) break;

    // ---- Fused functional execution ------------------------------------
    // Shared-sweep eligibility: every live member reads the SAME X operand
    // object (pointer equality — the tile pool's dataset-keyed sharing, or
    // a literally shared program) under the same accumulation op. Then one
    // pass over X's tiles feeds every member's accumulator — the batched
    // spmm/spdmm sweep. Otherwise (Update kernels, pool off) the members'
    // tasks still fuse into one flat parallel loop over (member, task).
    const std::vector<Task>& tasks0 = passes[live[0]].tasks;
    bool all_functional = true, shared_x = true, same_op = true;
    for (std::size_t m : live) {
      if (!runs[m].opt->functional) all_functional = false;
      if (passes[m].ops.x != passes[live[0]].ops.x) shared_x = false;
      if (passes[m].ir->spec.op != passes[live[0]].ir->spec.op) same_op = false;
    }
    const bool fused_sweep =
        all_functional && shared_x && same_op && live.size() >= 2;
    const int threads = fused_thread_cap(runs, live);
    try {
      if (fused_sweep) {
        ++bx.fused_kernels;
        const PartitionedMatrix& X = *passes[live[0]].ops.x;
        const AccumOp op = passes[live[0]].ir->spec.op;
        parallel_for(
            static_cast<std::int64_t>(tasks0.size()),
            [&](std::int64_t ti) {
              const Task& t = tasks0[static_cast<std::size_t>(ti)];
              // One accumulator per member; each member's accumulation
              // order over j (and within each tile product) is exactly its
              // solo order — only the X tile streams are shared.
              std::vector<DenseMatrix> accs;
              accs.reserve(live.size());
              for (std::size_t m : live)
                accs.emplace_back(passes[m].out.tile_row_count(t.out_gi),
                                  passes[m].out.tile_col_count(t.out_gk),
                                  Layout::kRowMajor);
              std::vector<const Tile*> ys(live.size());
              std::vector<DenseMatrix*> zs(live.size());
              for (std::int64_t j = 0; j < t.inner_steps; ++j) {
                for (std::size_t i = 0; i < live.size(); ++i) {
                  ys[i] = &passes[live[i]].ops.y->tile(j, t.out_gk);
                  zs[i] = &accs[i];
                }
                accumulate_product_batched(X.tile(t.out_gi, j), ys, zs, op);
              }
              for (std::size_t i = 0; i < live.size(); ++i)
                passes[live[i]].out.set_tile_from_dense(
                    t.out_gi, t.out_gk, std::move(accs[i]), runs[live[i]].thr);
            },
            threads);
      } else {
        // Flat fusion: every live functional member's tasks in one
        // parallel loop. Task math is run_functional_task — the solo body.
        std::vector<std::pair<std::size_t, std::size_t>> flat;
        for (std::size_t m : live) {
          if (!runs[m].opt->functional) continue;
          for (std::size_t ti = 0; ti < passes[m].tasks.size(); ++ti)
            flat.emplace_back(m, ti);
        }
        parallel_for(
            static_cast<std::int64_t>(flat.size()),
            [&](std::int64_t i) {
              auto [m, ti] = flat[static_cast<std::size_t>(i)];
              run_functional_task(passes[m], passes[m].tasks[ti], runs[m].thr);
            },
            threads);
      }
      for (std::size_t m : live)
        if (runs[m].opt->functional)
          finish_functional(passes[m], runs[m].node_outputs, runs[m].thr);
    } catch (...) {
      // A failure inside the fused sweep (allocation, library error) has
      // no single owner: fail every still-live member with it. Member-
      // attributable failures (tokens, chaos faults) only occur at the
      // kernel boundary above.
      std::exception_ptr err = std::current_exception();
      for (std::size_t m : live) runs[m].error = err;
      break;
    }

    // ---- Pricing / scheduling / soft-processor: strictly per member ----
    for (std::size_t m : live) {
      price_and_schedule(*runs[m].prog, *runs[m].opt, passes[m], runs[m].core,
                         runs[m].soft, runs[m].result);
      runs[m].node_outputs[static_cast<std::size_t>(passes[m].ir->node_id)] =
          std::move(passes[m].out);
    }
  }

  for (std::size_t m = 0; m < runs.size(); ++m) {
    if (runs[m].error) {
      bx.members[m].error = runs[m].error;
    } else {
      finalize_result(runs[m].prog->config, *runs[m].opt, runs[m].node_outputs,
                      runs[m].result);
      bx.members[m].result = std::move(runs[m].result);
    }
  }
  return bx;
}

}  // namespace dynasparse
