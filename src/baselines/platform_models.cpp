#include "baselines/platform_models.hpp"

#include <algorithm>

namespace dynasparse {

const std::vector<PlatformSpec>& framework_platforms() {
  // Peak FLOPS / bandwidth from paper Table V. Efficiency constants
  // reflect measured full-batch GNN inference behaviour of the
  // frameworks: dense GEMM reaches ~50% of peak through BLAS/cuBLAS;
  // sparse aggregation lands at ~1% (irregular gathers / atomics); and a
  // fixed per-kernel framework overhead (Python dispatch, kernel launch,
  // graph-format bookkeeping) dominates small graphs — which is exactly
  // why sub-ms accelerator latencies beat platforms with 7-70x the peak
  // FLOPS (the paper's core Fig. 14 argument). DGL's CPU kernels
  // outperform PyG's scatter-based ones ~2x; on GPU the relation
  // reverses, matching the ordering in Fig. 14.
  static const std::vector<PlatformSpec> specs = {
      {"PyG-CPU", 3.7e12, 107.0e9, 0.50, 0.005, 1200e-6},
      {"DGL-CPU", 3.7e12, 107.0e9, 0.50, 0.010, 600e-6},
      {"PyG-GPU", 36.0e12, 936.2e9, 0.40, 0.010, 300e-6},
      {"DGL-GPU", 36.0e12, 936.2e9, 0.40, 0.005, 450e-6},
  };
  return specs;
}

double platform_kernel_latency_s(const PlatformSpec& platform, const KernelSpec& k,
                                 std::int64_t num_vertices, std::int64_t adj_nnz) {
  const double v = static_cast<double>(num_vertices);
  double flops, bytes, eff;
  if (k.kind == KernelKind::kAggregate) {
    double f = static_cast<double>(k.out_dim);
    flops = 2.0 * static_cast<double>(adj_nnz) * f;
    bytes = static_cast<double>(adj_nnz) * 12.0 + 2.0 * v * f * 4.0;  // A + H in/out
    eff = platform.sparse_efficiency;
  } else {
    double fin = static_cast<double>(k.in_dim), fout = static_cast<double>(k.out_dim);
    flops = 2.0 * v * fin * fout;
    bytes = (v * fin + fin * fout + v * fout) * 4.0;
    eff = platform.dense_efficiency;
  }
  double compute_s = flops / (platform.peak_flops * eff);
  double memory_s = bytes / platform.mem_bandwidth;
  return std::max(compute_s, memory_s) + platform.per_kernel_overhead_s;
}

double platform_latency_ms(const PlatformSpec& platform, const GnnModel& model,
                           const Dataset& ds) {
  // Self-loops of the normalized operators add |V| nonzeros.
  const std::int64_t adj_nnz = ds.graph.num_edges() + ds.graph.num_vertices();
  double total_s = 0.0;
  for (const KernelSpec& k : model.kernels)
    total_s += platform_kernel_latency_s(platform, k, ds.graph.num_vertices(), adj_nnz);
  return total_s * 1e3;
}

}  // namespace dynasparse
