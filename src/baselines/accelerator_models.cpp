#include "baselines/accelerator_models.hpp"

namespace dynasparse {

PlatformSpec hygcn_spec() {
  // Dedicated edge-centric aggregation engine: high sparse efficiency,
  // but the systolic update engine stalls when aggregation dominates
  // (inter-engine imbalance) — modelled as reduced dense efficiency.
  return PlatformSpec{"HyGCN", 4.608e12, 256.0e9, 0.30, 0.25, 0.0};
}

PlatformSpec boostgcn_spec() {
  // Partition-centric FPGA dataflow; both engines well utilized.
  return PlatformSpec{"BoostGCN", 0.64e12, 77.0e9, 0.55, 0.45, 0.0};
}

double accelerator_latency_ms(const PlatformSpec& spec, const GnnModel& model,
                              const Dataset& ds) {
  // Identical roofline structure; only the constants differ.
  return platform_latency_ms(spec, model, ds);
}

}  // namespace dynasparse
