#pragma once
// Analytic models of the prior GNN accelerators compared in Table X.
//
// HyGCN (ASIC, 4.608 TFLOPS @ 1 GHz, 256 GB/s) and BoostGCN (Stratix 10,
// 0.64 TFLOPS @ 250 MHz, 77 GB/s) both use the Static-1 mapping:
// Aggregate -> sparse engine (exploits A's sparsity), Update -> dense
// GEMM engine (feature/weight sparsity ignored). We price their kernels
// with the same roofline as the framework baselines but with the
// accelerators' peaks, bandwidths and pipeline efficiencies.

#include "baselines/platform_models.hpp"

namespace dynasparse {

/// HyGCN per paper Table V; efficiency reflects its hybrid-architecture
/// inter-engine load imbalance on small graphs.
PlatformSpec hygcn_spec();

/// BoostGCN per paper Table V.
PlatformSpec boostgcn_spec();

/// Accelerator-execution latency of the Static-1 accelerator `spec` on
/// (model, ds) — same contract as platform_latency_ms.
double accelerator_latency_ms(const PlatformSpec& spec, const GnnModel& model,
                              const Dataset& ds);

}  // namespace dynasparse
