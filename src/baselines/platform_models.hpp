#pragma once
// Analytic latency models of the paper's comparison platforms.
//
// The paper measures PyG/DGL on an AMD Ryzen 3990x CPU and an Nvidia
// RTX3090 GPU (Table V) and compares accelerator latency against the
// HyGCN ASIC and the BoostGCN FPGA design (Table X). Offline we model all
// of them with a per-kernel roofline: a kernel takes
//     max(flops / (peak * eff), bytes / bandwidth) + framework overhead,
// where — as the paper notes (Section VIII-D) — these baselines exploit
// *only the graph sparsity*: Aggregate is sparse (nnz-proportional work)
// but Update is always dense, and feature/weight sparsity is ignored.
// Efficiency factors are stated constants (see .cpp) chosen once from
// typical measured utilization, not fit to the paper's numbers; the
// claims we reproduce are the comparison *shapes*.

#include <string>
#include <vector>

#include "graph/dataset.hpp"
#include "model/model.hpp"

namespace dynasparse {

struct PlatformSpec {
  std::string name;
  double peak_flops = 0.0;           // Table V peak performance
  double mem_bandwidth = 0.0;        // bytes/s
  double dense_efficiency = 0.5;     // achieved fraction of peak on GEMM
  double sparse_efficiency = 0.05;   // achieved fraction of peak on SpMM
  double per_kernel_overhead_s = 0;  // framework dispatch/launch cost
};

/// Platform specs (Table V) with framework constants: PyG-CPU, DGL-CPU,
/// PyG-GPU, DGL-GPU.
const std::vector<PlatformSpec>& framework_platforms();

/// Latency (seconds) of one kernel on `platform`. Kernel flops:
/// Aggregate = 2 * nnz(A_hat) * f (graph sparsity exploited);
/// Update = 2 * |V| * f_in * f_out (dense, weight/feature sparsity
/// ignored). Bytes move every operand once.
double platform_kernel_latency_s(const PlatformSpec& platform, const KernelSpec& kernel,
                                 std::int64_t num_vertices, std::int64_t adj_nnz);

/// Model `model` inference latency (ms) on `platform` for `ds`: sum of
/// platform_kernel_latency_s over the kernel sequence.
double platform_latency_ms(const PlatformSpec& platform, const GnnModel& model,
                           const Dataset& ds);

}  // namespace dynasparse
