#include "matrix/format_convert.hpp"

#include <algorithm>

#include "util/prefix_sum.hpp"

namespace dynasparse {

namespace {

/// Entries already in (row, col) order? Most COO matrices in the system
/// are (dense_to_coo and Tile storage keep layout order), so coo_to_csr
/// can usually skip its copy + O(nnz log nnz) sort for one O(nnz) scan.
bool row_major_sorted(const CooMatrix& m) {
  if (m.layout() != Layout::kRowMajor) return false;
  const auto& e = m.entries();
  for (std::size_t i = 1; i < e.size(); ++i)
    if (e[i - 1].row > e[i].row ||
        (e[i - 1].row == e[i].row && e[i - 1].col >= e[i].col))
      return false;
  return true;
}

void fill_csr_from_sorted(const std::vector<CooEntry>& entries, std::int64_t rows,
                          std::vector<std::int64_t>& row_ptr,
                          std::vector<std::int64_t>& col_idx,
                          std::vector<float>& values) {
  row_ptr.assign(static_cast<std::size_t>(rows) + 1, 0);
  for (const CooEntry& e : entries) ++row_ptr[static_cast<std::size_t>(e.row) + 1];
  for (std::size_t r = 1; r < row_ptr.size(); ++r) row_ptr[r] += row_ptr[r - 1];
  col_idx.reserve(entries.size());
  values.reserve(entries.size());
  for (const CooEntry& e : entries) {
    col_idx.push_back(e.col);
    values.push_back(e.value);
  }
}

}  // namespace

CooMatrix dense_to_coo(const DenseMatrix& m) {
  CooMatrix out(m.rows(), m.cols(), m.layout());
  if (m.layout() == Layout::kRowMajor) {
    // Row-span scan: contiguous reads, no per-element layout branch.
    for (std::int64_t r = 0; r < m.rows(); ++r) {
      const float* row = m.row_ptr(r);
      for (std::int64_t c = 0; c < m.cols(); ++c)
        if (row[c] != 0.0f) out.push(r, c, row[c]);
    }
  } else {
    const float* data = m.data().data();
    for (std::int64_t c = 0; c < m.cols(); ++c) {
      const float* col = data + c * m.rows();
      for (std::int64_t r = 0; r < m.rows(); ++r)
        if (col[r] != 0.0f) out.push(r, c, col[r]);
    }
  }
  return out;
}

DenseMatrix coo_to_dense(const CooMatrix& m) { return m.to_dense(); }

CsrMatrix dense_to_csr(const DenseMatrix& m) {
  DenseMatrix scratch;
  const DenseMatrix& mr = m.require_row_major(scratch);
  std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(m.rows()) + 1, 0);
  std::vector<std::int64_t> col_idx;
  std::vector<float> values;
  for (std::int64_t r = 0; r < m.rows(); ++r) {
    const float* row = mr.row_ptr(r);
    for (std::int64_t c = 0; c < m.cols(); ++c)
      if (row[c] != 0.0f) {
        col_idx.push_back(c);
        values.push_back(row[c]);
      }
    row_ptr[static_cast<std::size_t>(r) + 1] =
        static_cast<std::int64_t>(col_idx.size());
  }
  return CsrMatrix(m.rows(), m.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix coo_to_csr(const CooMatrix& m) {
  std::vector<std::int64_t> row_ptr, col_idx;
  std::vector<float> values;
  if (row_major_sorted(m)) {
    fill_csr_from_sorted(m.entries(), m.rows(), row_ptr, col_idx, values);
  } else {
    CooMatrix sorted =
        m.layout() == Layout::kRowMajor ? m : m.with_layout(Layout::kRowMajor);
    sorted.sort_to_layout();
    fill_csr_from_sorted(sorted.entries(), m.rows(), row_ptr, col_idx, values);
  }
  return CsrMatrix(m.rows(), m.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CompactedChunk compact_chunk(const std::vector<float>& chunk) {
  // Functional mirror of the hardware pipeline: the prefix sum of "is zero"
  // gives each survivor its left-shift distance; applying the shift stage
  // by stage (1, 2, 4, ... positions) compacts in log(n) steps. Here we
  // apply the final permutation directly — the staged network computes the
  // same result, which the unit tests verify against Fig. 8's example.
  std::vector<std::int64_t> is_zero(chunk.size());
  for (std::size_t i = 0; i < chunk.size(); ++i) is_zero[i] = chunk[i] == 0.0f ? 1 : 0;
  std::vector<std::int64_t> shift = exclusive_prefix_sum(is_zero);
  CompactedChunk out;
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    if (chunk[i] != 0.0f) {
      out.values.push_back(chunk[i]);
      out.source_index.push_back(static_cast<int>(i));
      // The element lands at position i - shift[i]; order of push_back
      // already realizes that because shifts are monotone.
      (void)shift;
    }
  }
  return out;
}

}  // namespace dynasparse
