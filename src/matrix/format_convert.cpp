#include "matrix/format_convert.hpp"

#include "util/prefix_sum.hpp"

namespace dynasparse {

CooMatrix dense_to_coo(const DenseMatrix& m) {
  CooMatrix out(m.rows(), m.cols(), m.layout());
  if (m.layout() == Layout::kRowMajor) {
    for (std::int64_t r = 0; r < m.rows(); ++r)
      for (std::int64_t c = 0; c < m.cols(); ++c)
        if (m.at(r, c) != 0.0f) out.push(r, c, m.at(r, c));
  } else {
    for (std::int64_t c = 0; c < m.cols(); ++c)
      for (std::int64_t r = 0; r < m.rows(); ++r)
        if (m.at(r, c) != 0.0f) out.push(r, c, m.at(r, c));
  }
  return out;
}

DenseMatrix coo_to_dense(const CooMatrix& m) { return m.to_dense(); }

CsrMatrix dense_to_csr(const DenseMatrix& m) {
  std::vector<std::int64_t> counts(static_cast<std::size_t>(m.rows()), 0);
  for (std::int64_t r = 0; r < m.rows(); ++r)
    for (std::int64_t c = 0; c < m.cols(); ++c)
      if (m.at(r, c) != 0.0f) ++counts[static_cast<std::size_t>(r)];
  std::vector<std::int64_t> row_ptr = exclusive_prefix_sum(counts);
  row_ptr.push_back(row_ptr.empty() ? 0 : row_ptr.back() + (counts.empty() ? 0 : counts.back()));
  std::vector<std::int64_t> col_idx;
  std::vector<float> values;
  col_idx.reserve(static_cast<std::size_t>(row_ptr.back()));
  values.reserve(static_cast<std::size_t>(row_ptr.back()));
  for (std::int64_t r = 0; r < m.rows(); ++r)
    for (std::int64_t c = 0; c < m.cols(); ++c)
      if (m.at(r, c) != 0.0f) {
        col_idx.push_back(c);
        values.push_back(m.at(r, c));
      }
  return CsrMatrix(m.rows(), m.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix coo_to_csr(const CooMatrix& m) {
  CooMatrix sorted = m.layout() == Layout::kRowMajor ? m : m.with_layout(Layout::kRowMajor);
  sorted.sort_to_layout();
  std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(m.rows()) + 1, 0);
  for (const CooEntry& e : sorted.entries()) ++row_ptr[static_cast<std::size_t>(e.row) + 1];
  for (std::size_t r = 1; r < row_ptr.size(); ++r) row_ptr[r] += row_ptr[r - 1];
  std::vector<std::int64_t> col_idx;
  std::vector<float> values;
  col_idx.reserve(sorted.entries().size());
  values.reserve(sorted.entries().size());
  for (const CooEntry& e : sorted.entries()) {
    col_idx.push_back(e.col);
    values.push_back(e.value);
  }
  return CsrMatrix(m.rows(), m.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CompactedChunk compact_chunk(const std::vector<float>& chunk) {
  // Functional mirror of the hardware pipeline: the prefix sum of "is zero"
  // gives each survivor its left-shift distance; applying the shift stage
  // by stage (1, 2, 4, ... positions) compacts in log(n) steps. Here we
  // apply the final permutation directly — the staged network computes the
  // same result, which the unit tests verify against Fig. 8's example.
  std::vector<std::int64_t> is_zero(chunk.size());
  for (std::size_t i = 0; i < chunk.size(); ++i) is_zero[i] = chunk[i] == 0.0f ? 1 : 0;
  std::vector<std::int64_t> shift = exclusive_prefix_sum(is_zero);
  CompactedChunk out;
  for (std::size_t i = 0; i < chunk.size(); ++i) {
    if (chunk[i] != 0.0f) {
      out.values.push_back(chunk[i]);
      out.source_index.push_back(static_cast<int>(i));
      // The element lands at position i - shift[i]; order of push_back
      // already realizes that because shifts are monotone.
      (void)shift;
    }
  }
  return out;
}

}  // namespace dynasparse
