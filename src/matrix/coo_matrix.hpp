#pragma once
// Sparse matrix in Coordinate (COO) format — the paper's on-device sparse
// representation (Section V-A): each nonzero is a (col, row, value)
// three-tuple, and the element *order* encodes the data layout (row-major
// or column-major).

#include <cstdint>
#include <vector>

#include "matrix/dense_matrix.hpp"

namespace dynasparse {

struct CooEntry {
  std::int64_t row = 0;
  std::int64_t col = 0;
  float value = 0.0f;
};

class CooMatrix {
 public:
  CooMatrix() = default;
  CooMatrix(std::int64_t rows, std::int64_t cols, Layout layout = Layout::kRowMajor)
      : rows_(rows), cols_(cols), layout_(layout) {}

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  Layout layout() const { return layout_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(entries_.size()); }
  double density() const {
    if (rows_ == 0 || cols_ == 0) return 0.0;
    return static_cast<double>(nnz()) / static_cast<double>(rows_ * cols_);
  }

  const std::vector<CooEntry>& entries() const { return entries_; }
  std::vector<CooEntry>& entries() { return entries_; }

  /// Append an entry; caller is responsible for keeping layout order (or
  /// calling sort_to_layout afterwards) and for not duplicating positions.
  void push(std::int64_t r, std::int64_t c, float v) { entries_.push_back({r, c, v}); }

  /// Sort entries into this matrix's layout order: row-major sorts by
  /// (row, col), column-major by (col, row).
  void sort_to_layout();

  /// Return the same nonzeros re-ordered for the other layout.
  CooMatrix with_layout(Layout layout) const;

  /// Logical transpose (swaps row/col of every entry and the shape).
  CooMatrix transposed() const;

  /// True if entries are sorted according to layout() and positions are
  /// in-bounds and unique.
  bool well_formed() const;

  /// Materialize as dense (row-major). Intended for tests / small tiles.
  DenseMatrix to_dense() const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  Layout layout_ = Layout::kRowMajor;
  std::vector<CooEntry> entries_;
};

}  // namespace dynasparse
