#include "matrix/dense_matrix.hpp"

#include <cmath>
#include <stdexcept>

namespace dynasparse {

DenseMatrix::DenseMatrix(std::int64_t rows, std::int64_t cols, Layout layout)
    : rows_(rows), cols_(cols), layout_(layout),
      data_(static_cast<std::size_t>(rows * cols), 0.0f) {
  if (rows < 0 || cols < 0) throw std::invalid_argument("negative matrix shape");
}

std::int64_t DenseMatrix::nnz() const {
  std::int64_t n = 0;
  for (float v : data_)
    if (v != 0.0f) ++n;
  return n;
}

double DenseMatrix::density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) / static_cast<double>(rows_ * cols_);
}

DenseMatrix DenseMatrix::with_layout(Layout layout) const {
  if (layout == layout_) return *this;
  DenseMatrix out(rows_, cols_, layout);
  // Physical transpose of the backing array; both sides indexed with the
  // layout branch hoisted out of the loop.
  const float* src = data_.data();
  float* dst = out.data_.data();
  if (layout == Layout::kRowMajor) {
    for (std::int64_t r = 0; r < rows_; ++r)
      for (std::int64_t c = 0; c < cols_; ++c)
        dst[r * cols_ + c] = src[c * rows_ + r];
  } else {
    for (std::int64_t c = 0; c < cols_; ++c)
      for (std::int64_t r = 0; r < rows_; ++r)
        dst[c * rows_ + r] = src[r * cols_ + c];
  }
  return out;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix out(cols_, rows_, Layout::kRowMajor);
  float* dst = out.data_.data();
  const float* src = data_.data();
  if (layout_ == Layout::kRowMajor) {
    for (std::int64_t r = 0; r < rows_; ++r)
      for (std::int64_t c = 0; c < cols_; ++c) dst[c * rows_ + r] = src[r * cols_ + c];
  } else {
    // Column-major storage of the source *is* the row-major storage of its
    // transpose: a straight copy.
    out.data_ = data_;
  }
  return out;
}

void DenseMatrix::fill(float v) {
  for (float& x : data_) x = v;
}

float DenseMatrix::max_abs_diff(const DenseMatrix& a, const DenseMatrix& b) {
  if (!a.same_shape(b)) throw std::invalid_argument("shape mismatch in max_abs_diff");
  float m = 0.0f;
  for (std::int64_t r = 0; r < a.rows(); ++r)
    for (std::int64_t c = 0; c < a.cols(); ++c)
      m = std::max(m, std::fabs(a.at(r, c) - b.at(r, c)));
  return m;
}

}  // namespace dynasparse
