#include "matrix/density.hpp"

namespace dynasparse {

std::int64_t count_nonzeros(const std::vector<float>& values) {
  std::int64_t n = 0;
  for (float v : values)
    if (v != 0.0f) ++n;
  return n;
}

double profile_density(const DenseMatrix& m) { return m.density(); }

double profile_density(const CooMatrix& m) { return m.density(); }

double density_from_nnz(std::int64_t nnz, std::int64_t rows, std::int64_t cols) {
  if (rows == 0 || cols == 0) return 0.0;
  return static_cast<double>(nnz) / static_cast<double>(rows * cols);
}

}  // namespace dynasparse
