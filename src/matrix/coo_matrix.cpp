#include "matrix/coo_matrix.hpp"

#include <algorithm>

namespace dynasparse {

namespace {
bool row_major_less(const CooEntry& a, const CooEntry& b) {
  return a.row != b.row ? a.row < b.row : a.col < b.col;
}
bool col_major_less(const CooEntry& a, const CooEntry& b) {
  return a.col != b.col ? a.col < b.col : a.row < b.row;
}
}  // namespace

void CooMatrix::sort_to_layout() {
  if (layout_ == Layout::kRowMajor)
    std::sort(entries_.begin(), entries_.end(), row_major_less);
  else
    std::sort(entries_.begin(), entries_.end(), col_major_less);
}

CooMatrix CooMatrix::with_layout(Layout layout) const {
  CooMatrix out(rows_, cols_, layout);
  out.entries_ = entries_;
  out.sort_to_layout();
  return out;
}

CooMatrix CooMatrix::transposed() const {
  CooMatrix out(cols_, rows_, layout_);
  out.entries_.reserve(entries_.size());
  for (const CooEntry& e : entries_) out.entries_.push_back({e.col, e.row, e.value});
  out.sort_to_layout();
  return out;
}

bool CooMatrix::well_formed() const {
  auto less = layout_ == Layout::kRowMajor ? row_major_less : col_major_less;
  for (std::size_t i = 0; i < entries_.size(); ++i) {
    const CooEntry& e = entries_[i];
    if (e.row < 0 || e.row >= rows_ || e.col < 0 || e.col >= cols_) return false;
    if (i > 0) {
      // Strictly increasing in layout order implies sorted and duplicate-free.
      if (!less(entries_[i - 1], e)) return false;
    }
  }
  return true;
}

DenseMatrix CooMatrix::to_dense() const {
  DenseMatrix out(rows_, cols_, Layout::kRowMajor);
  for (const CooEntry& e : entries_) out.at(e.row, e.col) += e.value;
  return out;
}

}  // namespace dynasparse
