#pragma once
// Tiled matrix with per-tile storage format and density metadata.
//
// The compiler partitions every operand (paper Section IV-C): the adjacency
// matrix A into N1 x N1 blocks, feature matrices H into N1 x N2 tiles, and
// weight matrices W into N2 x N2 blocks. Different parts of one matrix can
// have very different densities, so each tile independently records its
// density and is stored dense or COO — this is exactly what enables the
// paper's *fine-grained* kernel-to-primitive mapping (Section VI-B) and
// the empty-partition skip (Algorithm 7 line 6-7).
//
// Tiles are value types; an all-zero tile stores nothing (kEmpty).

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "matrix/coo_matrix.hpp"
#include "matrix/csr_matrix.hpp"
#include "matrix/dense_matrix.hpp"
#include "util/config.hpp"

namespace dynasparse {

enum class TileFormat { kEmpty, kDense, kCoo };

/// Accumulation operator of a kernel (paper IR Table II: Sum/Mean/Max/Min;
/// Mean folds into adjacency weights, so tiles only distinguish the reduce).
enum class AccumOp { kSum, kMax, kMin };

/// One data partition. `rows`/`cols` are the tile's actual shape (edge
/// tiles may be smaller than the nominal partition size).
struct Tile {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  TileFormat format = TileFormat::kEmpty;
  DenseMatrix dense;  // populated iff format == kDense
  CooMatrix coo;      // populated iff format == kCoo (row-major order)
  std::int64_t nnz = 0;

  double density() const {
    if (rows == 0 || cols == 0) return 0.0;
    return static_cast<double>(nnz) / static_cast<double>(rows * cols);
  }
  bool empty() const { return format == TileFormat::kEmpty || nnz == 0; }

  /// Bytes this tile occupies in external memory under its storage format.
  std::size_t ddr_bytes(const SimConfig& cfg) const;

  /// Approximate host-resident bytes of the stored representation (dense
  /// buffer + COO entries; lazily cached views excluded). Feeds the
  /// cache tiers' byte accounting, not the simulated DDR model.
  std::size_t approx_footprint_bytes() const;

  /// Materialize as dense / COO regardless of current format (fresh copy).
  DenseMatrix to_dense() const;
  CooMatrix to_coo() const;

  /// Cached materializations. The first call in any format builds the
  /// representation once (thread-safe); later calls — e.g. the runtime
  /// system pricing many pairs against the same tile, or the same Y strip
  /// tile consumed by every task of an output column — return the cached
  /// copy. Tiles are immutable after factory construction, so the cache
  /// never goes stale; reassigning a Tile replaces it wholesale. Memory:
  /// a cached view lives as long as the tile, bounded by ~3x the tile's
  /// stored footprint (dense of a <=1/3-density COO tile, or COO of a
  /// dense tile); callers that must not retain that (none today) should
  /// use to_dense()/to_coo(), which stay transient.
  const DenseMatrix& dense_view() const;
  const CooMatrix& coo_view() const;
  /// CSR of this tile's nonzeros — the first-class operand format of the
  /// host SPMM kernel (sparse x sparse pairs convert Y once, not per pair).
  const CsrMatrix& csr_view() const;

  /// Build a tile from a computed dense block, profiling its density and
  /// choosing COO storage when density <= sparse_threshold.
  static Tile from_dense(DenseMatrix block, double sparse_threshold);
  /// Build directly from COO entries (kept sparse regardless of density
  /// unless densification wins; entries must be within shape).
  static Tile from_coo(CooMatrix block, double sparse_threshold);
  /// All-zero tile of the given shape.
  static Tile zero(std::int64_t rows, std::int64_t cols);

 private:
  struct ViewCache {
    std::once_flag dense_once, coo_once, csr_once;
    DenseMatrix dense;
    CooMatrix coo;
    CsrMatrix csr;
  };
  // Shared (not per-copy) so copies of a tile reuse one materialization.
  mutable std::shared_ptr<ViewCache> views_ = std::make_shared<ViewCache>();
};

/// z (dense accumulator) op= x * y for two tiles. The functional math is
/// identical for every simulated primitive (GEMM/SpDMM/SPMM all compute the
/// same product); which *cycle model* applies is decided elsewhere.
void accumulate_product(const Tile& x, const Tile& y, DenseMatrix& z,
                        AccumOp op = AccumOp::kSum);

/// Batched variant for fused cross-request execution: z_i op= x * y_i for
/// B members sharing ONE left tile (a pooled adjacency block). The shared
/// x streams once; members are grouped by their y tile's storage format
/// and dispatched to the batched column-block sweeps (matrix_ops
/// *_accumulate_batched), preserving each member's solo primitive choice
/// and per-element FP sequence exactly — batched output bits equal solo
/// output bits, member by member (the sign-of-a-zero caveat in
/// accumulate_product is why dispatch must mirror, not just the math).
/// `ys` and `zs` are index-aligned and must satisfy the solo shape
/// contract per member.
void accumulate_product_batched(const Tile& x, const std::vector<const Tile*>& ys,
                                const std::vector<DenseMatrix*>& zs,
                                AccumOp op = AccumOp::kSum);

/// Logical rows x cols matrix cut into a grid of tile_rows x tile_cols
/// partitions (edge tiles truncated).
class PartitionedMatrix {
 public:
  PartitionedMatrix() = default;
  /// All-zero partitioned matrix.
  PartitionedMatrix(std::int64_t rows, std::int64_t cols, std::int64_t tile_rows,
                    std::int64_t tile_cols);

  static PartitionedMatrix from_dense(const DenseMatrix& m, std::int64_t tile_rows,
                                      std::int64_t tile_cols, double sparse_threshold);
  static PartitionedMatrix from_coo(const CooMatrix& m, std::int64_t tile_rows,
                                    std::int64_t tile_cols, double sparse_threshold);
  static PartitionedMatrix from_csr(const CsrMatrix& m, std::int64_t tile_rows,
                                    std::int64_t tile_cols, double sparse_threshold);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t tile_rows() const { return tile_rows_; }
  std::int64_t tile_cols() const { return tile_cols_; }
  std::int64_t grid_rows() const { return grid_rows_; }
  std::int64_t grid_cols() const { return grid_cols_; }

  const Tile& tile(std::int64_t gi, std::int64_t gj) const;
  Tile& tile(std::int64_t gi, std::int64_t gj);

  /// Shape of tile (gi, gj) accounting for edge truncation.
  std::int64_t tile_row_count(std::int64_t gi) const;
  std::int64_t tile_col_count(std::int64_t gj) const;

  /// Replace tile (gi, gj) from a computed dense block (shape must match);
  /// density is profiled and the storage format chosen by threshold.
  void set_tile_from_dense(std::int64_t gi, std::int64_t gj, DenseMatrix block,
                           double sparse_threshold);

  std::int64_t total_nnz() const;
  double density() const;
  /// Total external-memory footprint of all tiles.
  std::size_t ddr_bytes(const SimConfig& cfg) const;
  /// Host-resident bytes across all tiles (cache accounting, not DDR).
  std::size_t approx_footprint_bytes() const;

  /// Reassemble the full logical matrix (tests / small matrices only).
  DenseMatrix to_dense() const;

  /// Apply f to every stored element; tiles are re-profiled and may change
  /// storage format (e.g. ReLU re-sparsifies). Elements that are
  /// structurally absent (zero) are assumed to satisfy f(0) == 0, which
  /// holds for ReLU/PReLU — asserted in debug builds.
  void apply_elementwise(const std::function<float(float)>& f, double sparse_threshold);

  /// this += other (elementwise); shapes and tilings must match. Used for
  /// GraphSAGE's combine step.
  void add_inplace(const PartitionedMatrix& other, double sparse_threshold);

  /// Per-tile densities flattened row-major over the grid (profiling
  /// snapshot handed to the runtime system).
  std::vector<double> tile_density_map() const;

 private:
  std::size_t grid_index(std::int64_t gi, std::int64_t gj) const {
    return static_cast<std::size_t>(gi * grid_cols_ + gj);
  }

  std::int64_t rows_ = 0, cols_ = 0;
  std::int64_t tile_rows_ = 0, tile_cols_ = 0;
  std::int64_t grid_rows_ = 0, grid_cols_ = 0;
  std::vector<Tile> tiles_;
};

}  // namespace dynasparse
