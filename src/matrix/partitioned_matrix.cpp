#include "matrix/partitioned_matrix.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "matrix/format_convert.hpp"
#include "matrix/matrix_ops.hpp"
#include "util/math_util.hpp"
#include "util/parallel.hpp"

namespace dynasparse {

std::size_t Tile::ddr_bytes(const SimConfig& cfg) const {
  switch (format) {
    case TileFormat::kEmpty:
      return 0;
    case TileFormat::kDense:
      return static_cast<std::size_t>(rows * cols) * cfg.dense_elem_bytes;
    case TileFormat::kCoo:
      return static_cast<std::size_t>(nnz) * cfg.coo_elem_bytes;
  }
  return 0;
}

std::size_t Tile::approx_footprint_bytes() const {
  // Host-resident bytes of the stored representation. Lazily cached
  // views (dense_view/coo_view/csr_view) are deliberately excluded:
  // they are shared across tile copies and bounded by a small multiple
  // of this number, and counting them would make a footprint change as
  // a side effect of reads.
  std::size_t b = sizeof(Tile);
  b += dense.data().size() * sizeof(float);
  b += coo.entries().size() * sizeof(CooEntry);
  return b;
}

DenseMatrix Tile::to_dense() const {
  switch (format) {
    case TileFormat::kEmpty:
      return DenseMatrix(rows, cols, Layout::kRowMajor);
    case TileFormat::kDense:
      return dense;
    case TileFormat::kCoo:
      return coo.to_dense();
  }
  return DenseMatrix(rows, cols, Layout::kRowMajor);
}

CooMatrix Tile::to_coo() const {
  switch (format) {
    case TileFormat::kEmpty:
      return CooMatrix(rows, cols, Layout::kRowMajor);
    case TileFormat::kDense:
      return dense_to_coo(dense);
    case TileFormat::kCoo:
      return coo;
  }
  return CooMatrix(rows, cols, Layout::kRowMajor);
}

const DenseMatrix& Tile::dense_view() const {
  if (format == TileFormat::kDense) return dense;
  std::call_once(views_->dense_once, [&] { views_->dense = to_dense(); });
  return views_->dense;
}

const CooMatrix& Tile::coo_view() const {
  if (format == TileFormat::kCoo) return coo;
  std::call_once(views_->coo_once, [&] { views_->coo = to_coo(); });
  return views_->coo;
}

const CsrMatrix& Tile::csr_view() const {
  std::call_once(views_->csr_once, [&] {
    views_->csr = format == TileFormat::kDense ? dense_to_csr(dense)
                                               : coo_to_csr(coo_view());
  });
  return views_->csr;
}

Tile Tile::from_dense(DenseMatrix block, double sparse_threshold) {
  Tile t;
  t.rows = block.rows();
  t.cols = block.cols();
  t.nnz = block.nnz();
  if (t.nnz == 0) {
    t.format = TileFormat::kEmpty;
    return t;
  }
  if (t.density() <= sparse_threshold) {
    t.format = TileFormat::kCoo;
    t.coo = dense_to_coo(block);
  } else {
    t.format = TileFormat::kDense;
    t.dense = std::move(block);
  }
  return t;
}

Tile Tile::from_coo(CooMatrix block, double sparse_threshold) {
  Tile t;
  t.rows = block.rows();
  t.cols = block.cols();
  t.nnz = block.nnz();
  if (t.nnz == 0) {
    t.format = TileFormat::kEmpty;
    return t;
  }
  if (t.density() > sparse_threshold) {
    t.format = TileFormat::kDense;
    t.dense = block.to_dense();
  } else {
    t.format = TileFormat::kCoo;
    block.sort_to_layout();
    t.coo = std::move(block);
  }
  return t;
}

Tile Tile::zero(std::int64_t rows, std::int64_t cols) {
  Tile t;
  t.rows = rows;
  t.cols = cols;
  return t;
}

namespace {

/// Apply `op` to accumulate `contrib` into `acc` at (r, c).
inline void reduce_into(DenseMatrix& acc, std::int64_t r, std::int64_t c, float contrib,
                        AccumOp op) {
  float& slot = acc.at(r, c);
  switch (op) {
    case AccumOp::kSum:
      slot += contrib;
      break;
    case AccumOp::kMax:
      slot = contrib > slot ? contrib : slot;
      break;
    case AccumOp::kMin:
      slot = contrib < slot ? contrib : slot;
      break;
  }
}

void dense_dense(const DenseMatrix& x, const DenseMatrix& y, DenseMatrix& z, AccumOp op) {
  for (std::int64_t i = 0; i < x.rows(); ++i)
    for (std::int64_t k = 0; k < x.cols(); ++k) {
      float xv = x.at(i, k);
      if (xv == 0.0f) continue;
      for (std::int64_t j = 0; j < y.cols(); ++j) {
        float yv = y.at(k, j);
        if (yv != 0.0f) reduce_into(z, i, j, xv * yv, op);
      }
    }
}

void coo_dense(const CooMatrix& x, const DenseMatrix& y, DenseMatrix& z, AccumOp op) {
  for (const CooEntry& e : x.entries())
    for (std::int64_t j = 0; j < y.cols(); ++j) {
      float yv = y.at(e.col, j);
      if (yv != 0.0f) reduce_into(z, e.row, j, e.value * yv, op);
    }
}

void dense_coo(const DenseMatrix& x, const CooMatrix& y, DenseMatrix& z, AccumOp op) {
  // Preserve k-ascending accumulation per output element: entries of a
  // row-major COO are sorted by (row=k, col=j).
  for (const CooEntry& e : y.entries())
    for (std::int64_t i = 0; i < x.rows(); ++i) {
      float xv = x.at(i, e.row);
      if (xv != 0.0f) reduce_into(z, i, e.col, xv * e.value, op);
    }
}

void coo_coo(const CooMatrix& x, const CooMatrix& y, DenseMatrix& z, AccumOp op) {
  CsrMatrix ycsr = coo_to_csr(y);
  for (const CooEntry& e : x.entries())
    for (std::int64_t k = ycsr.row_begin(e.col); k < ycsr.row_end(e.col); ++k) {
      std::size_t ki = static_cast<std::size_t>(k);
      reduce_into(z, e.row, ycsr.col_idx()[ki], e.value * ycsr.values()[ki], op);
    }
}

}  // namespace

void accumulate_product(const Tile& x, const Tile& y, DenseMatrix& z, AccumOp op) {
  if (x.cols != y.rows) throw std::invalid_argument("tile inner dim mismatch");
  if (z.rows() != x.rows || z.cols() != y.cols)
    throw std::invalid_argument("tile output shape mismatch");
  if (x.empty() || y.empty()) return;
  const bool xd = x.format == TileFormat::kDense;
  const bool yd = y.format == TileFormat::kDense;
  if (op == AccumOp::kSum && z.layout() == Layout::kRowMajor) {
    // Sum accumulation is an ordinary product: funnel through the
    // optimized row-span primitives. Zero-valued products the generic
    // path skips contribute exactly 0.0f here, so results agree (the only
    // representational difference is the sign of a zero output).
    if (xd && yd)
      gemm_accumulate(x.dense, y.dense, z);
    else if (!xd && yd)
      spdmm_accumulate(x.coo, y.dense, z);
    else if (xd && !yd)
      spdmm_rhs_accumulate(x.dense, y.coo, z);
    else
      spmm_accumulate(x.coo, y.csr_view(), z);
    return;
  }
  if (xd && yd)
    dense_dense(x.dense, y.dense, z, op);
  else if (!xd && yd)
    coo_dense(x.coo, y.dense, z, op);
  else if (xd && !yd)
    dense_coo(x.dense, y.coo, z, op);
  else
    coo_coo(x.coo, y.coo, z, op);
}

void accumulate_product_batched(const Tile& x, const std::vector<const Tile*>& ys,
                                const std::vector<DenseMatrix*>& zs, AccumOp op) {
  if (ys.size() != zs.size())
    throw std::invalid_argument("batched accumulate: ys/zs size mismatch");
  for (std::size_t b = 0; b < ys.size(); ++b) {
    if (x.cols != ys[b]->rows) throw std::invalid_argument("tile inner dim mismatch");
    if (zs[b]->rows() != x.rows || zs[b]->cols() != ys[b]->cols)
      throw std::invalid_argument("tile output shape mismatch");
  }
  // Shared-x early return mirrors every member's solo early return.
  if (x.empty()) return;
  // Members the shared sweeps can't serve bit-identically go through the
  // solo dispatch one by one: non-sum reductions, column-major
  // accumulators (both route to the generic/reference kernels in solo
  // accumulate_product), empty y tiles (solo: no-op), and — when x is
  // dense — sparse-y members, whose spdmm_rhs sweep is driven by the
  // member's OWN entries, so there is nothing shared to amortize.
  const bool xd = x.format == TileFormat::kDense;
  std::vector<std::size_t> dense_y, sparse_y;
  for (std::size_t b = 0; b < ys.size(); ++b) {
    if (ys[b]->empty()) continue;
    if (op != AccumOp::kSum || zs[b]->layout() != Layout::kRowMajor) {
      accumulate_product(x, *ys[b], *zs[b], op);
      continue;
    }
    (ys[b]->format == TileFormat::kDense ? dense_y : sparse_y).push_back(b);
  }
  std::vector<const DenseMatrix*> yd;
  std::vector<DenseMatrix*> zd;
  for (std::size_t b : dense_y) {
    yd.push_back(&ys[b]->dense);
    zd.push_back(zs[b]);
  }
  if (xd) {
    if (!yd.empty()) gemm_accumulate_batched(x.dense, yd, zd);
    for (std::size_t b : sparse_y) spdmm_rhs_accumulate(x.dense, ys[b]->coo, *zs[b]);
    return;
  }
  if (!yd.empty()) spdmm_accumulate_batched(x.coo, yd, zd);
  if (!sparse_y.empty()) {
    std::vector<const CsrMatrix*> yc;
    std::vector<DenseMatrix*> zc;
    for (std::size_t b : sparse_y) {
      yc.push_back(&ys[b]->csr_view());
      zc.push_back(zs[b]);
    }
    spmm_accumulate_batched(x.coo, yc, zc);
  }
}

PartitionedMatrix::PartitionedMatrix(std::int64_t rows, std::int64_t cols,
                                     std::int64_t tile_rows, std::int64_t tile_cols)
    : rows_(rows), cols_(cols), tile_rows_(tile_rows), tile_cols_(tile_cols) {
  if (rows < 0 || cols < 0 || tile_rows <= 0 || tile_cols <= 0)
    throw std::invalid_argument("bad partitioned matrix shape");
  grid_rows_ = ceil_div(rows, tile_rows);
  grid_cols_ = ceil_div(cols, tile_cols);
  tiles_.resize(static_cast<std::size_t>(grid_rows_ * grid_cols_));
  for (std::int64_t gi = 0; gi < grid_rows_; ++gi)
    for (std::int64_t gj = 0; gj < grid_cols_; ++gj)
      tiles_[grid_index(gi, gj)] = Tile::zero(tile_row_count(gi), tile_col_count(gj));
}

std::int64_t PartitionedMatrix::tile_row_count(std::int64_t gi) const {
  return std::min(tile_rows_, rows_ - gi * tile_rows_);
}
std::int64_t PartitionedMatrix::tile_col_count(std::int64_t gj) const {
  return std::min(tile_cols_, cols_ - gj * tile_cols_);
}

const Tile& PartitionedMatrix::tile(std::int64_t gi, std::int64_t gj) const {
  return tiles_[grid_index(gi, gj)];
}
Tile& PartitionedMatrix::tile(std::int64_t gi, std::int64_t gj) {
  return tiles_[grid_index(gi, gj)];
}

PartitionedMatrix PartitionedMatrix::from_dense(const DenseMatrix& m,
                                                std::int64_t tile_rows,
                                                std::int64_t tile_cols,
                                                double sparse_threshold) {
  PartitionedMatrix out(m.rows(), m.cols(), tile_rows, tile_cols);
  parallel_for(out.grid_rows_ * out.grid_cols_, [&](std::int64_t cell) {
    std::int64_t gi = cell / out.grid_cols_, gj = cell % out.grid_cols_;
    std::int64_t tr = out.tile_row_count(gi), tc = out.tile_col_count(gj);
    DenseMatrix block(tr, tc, Layout::kRowMajor);
    for (std::int64_t r = 0; r < tr; ++r)
      for (std::int64_t c = 0; c < tc; ++c)
        block.at(r, c) = m.at(gi * tile_rows + r, gj * tile_cols + c);
    out.tiles_[static_cast<std::size_t>(cell)] =
        Tile::from_dense(std::move(block), sparse_threshold);
  });
  return out;
}

PartitionedMatrix PartitionedMatrix::from_coo(const CooMatrix& m, std::int64_t tile_rows,
                                              std::int64_t tile_cols,
                                              double sparse_threshold) {
  PartitionedMatrix out(m.rows(), m.cols(), tile_rows, tile_cols);
  // This is the Table IX hot path (multi-million-nnz feature matrices):
  // a parallel two-pass bucket scatter — per-slice per-cell counts, a
  // (slice, cell) offset prefix, then every slice rescans its entries into
  // disjoint scratch ranges — followed by fully parallel per-tile
  // finalization (sort + format choice + optional densification).
  const std::size_t cells = out.tiles_.size();
  const std::int64_t nnz = m.nnz();
  const std::int64_t slices =
      std::clamp<std::int64_t>(nnz / 65536, 1, 32);  // ~64k entries per slice
  const std::int64_t slice_len = ceil_div(nnz, slices);
  // counts[s * cells + c] = entries of slice s landing in cell c.
  std::vector<std::int64_t> counts(static_cast<std::size_t>(slices) * cells, 0);
  parallel_for(slices, [&](std::int64_t s) {
    std::int64_t lo = s * slice_len, hi = std::min(nnz, lo + slice_len);
    std::int64_t* row = counts.data() + s * static_cast<std::int64_t>(cells);
    for (std::int64_t i = lo; i < hi; ++i) {
      const CooEntry& e = m.entries()[static_cast<std::size_t>(i)];
      ++row[out.grid_index(e.row / tile_rows, e.col / tile_cols)];
    }
  });
  // offsets[c] = start of cell c; cursor per (slice, cell) follows.
  std::vector<std::int64_t> offsets(cells + 1, 0);
  for (std::size_t c = 0; c < cells; ++c) {
    std::int64_t total = 0;
    for (std::int64_t s = 0; s < slices; ++s)
      total += counts[static_cast<std::size_t>(s) * cells + c];
    offsets[c + 1] = offsets[c] + total;
  }
  std::vector<std::int64_t> cursor(static_cast<std::size_t>(slices) * cells);
  for (std::size_t c = 0; c < cells; ++c) {
    std::int64_t at = offsets[c];
    for (std::int64_t s = 0; s < slices; ++s) {
      cursor[static_cast<std::size_t>(s) * cells + c] = at;
      at += counts[static_cast<std::size_t>(s) * cells + c];
    }
  }
  std::vector<CooEntry> scratch(static_cast<std::size_t>(nnz));
  parallel_for(slices, [&](std::int64_t s) {
    std::int64_t lo = s * slice_len, hi = std::min(nnz, lo + slice_len);
    std::int64_t* cur = cursor.data() + s * static_cast<std::int64_t>(cells);
    for (std::int64_t i = lo; i < hi; ++i) {
      const CooEntry& e = m.entries()[static_cast<std::size_t>(i)];
      std::int64_t gi = e.row / tile_rows, gj = e.col / tile_cols;
      std::size_t cell = out.grid_index(gi, gj);
      scratch[static_cast<std::size_t>(cur[cell]++)] = {
          e.row - gi * tile_rows, e.col - gj * tile_cols, e.value};
    }
  });
  parallel_for(static_cast<std::int64_t>(cells), [&](std::int64_t cell) {
    std::size_t c = static_cast<std::size_t>(cell);
    std::int64_t gi = cell / out.grid_cols_, gj = cell % out.grid_cols_;
    CooMatrix bucket(out.tile_row_count(gi), out.tile_col_count(gj), Layout::kRowMajor);
    bucket.entries().assign(scratch.begin() + static_cast<std::ptrdiff_t>(offsets[c]),
                            scratch.begin() + static_cast<std::ptrdiff_t>(offsets[c + 1]));
    out.tiles_[c] = Tile::from_coo(std::move(bucket), sparse_threshold);
  });
  return out;
}

PartitionedMatrix PartitionedMatrix::from_csr(const CsrMatrix& m, std::int64_t tile_rows,
                                              std::int64_t tile_cols,
                                              double sparse_threshold) {
  return from_coo(m.to_coo(), tile_rows, tile_cols, sparse_threshold);
}

void PartitionedMatrix::set_tile_from_dense(std::int64_t gi, std::int64_t gj,
                                            DenseMatrix block, double sparse_threshold) {
  if (block.rows() != tile_row_count(gi) || block.cols() != tile_col_count(gj))
    throw std::invalid_argument("set_tile_from_dense shape mismatch");
  tiles_[grid_index(gi, gj)] = Tile::from_dense(std::move(block), sparse_threshold);
}

std::int64_t PartitionedMatrix::total_nnz() const {
  std::int64_t n = 0;
  for (const Tile& t : tiles_) n += t.nnz;
  return n;
}

double PartitionedMatrix::density() const {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(total_nnz()) / static_cast<double>(rows_ * cols_);
}

std::size_t PartitionedMatrix::ddr_bytes(const SimConfig& cfg) const {
  std::size_t b = 0;
  for (const Tile& t : tiles_) b += t.ddr_bytes(cfg);
  return b;
}

std::size_t PartitionedMatrix::approx_footprint_bytes() const {
  std::size_t b = sizeof(PartitionedMatrix);
  for (const Tile& t : tiles_) b += t.approx_footprint_bytes();
  return b;
}

DenseMatrix PartitionedMatrix::to_dense() const {
  DenseMatrix out(rows_, cols_, Layout::kRowMajor);
  for (std::int64_t gi = 0; gi < grid_rows_; ++gi)
    for (std::int64_t gj = 0; gj < grid_cols_; ++gj) {
      const Tile& t = tile(gi, gj);
      if (t.empty()) continue;
      if (t.format == TileFormat::kDense && t.dense.layout() == Layout::kRowMajor) {
        // Contiguous row-span copies, no per-element index math.
        for (std::int64_t r = 0; r < t.rows; ++r) {
          const float* src = t.dense.row_ptr(r);
          float* dst = out.row_ptr(gi * tile_rows_ + r) + gj * tile_cols_;
          std::copy(src, src + t.cols, dst);
        }
      } else {
        for (const CooEntry& e : t.coo_view().entries())
          out.at(gi * tile_rows_ + e.row, gj * tile_cols_ + e.col) = e.value;
      }
    }
  return out;
}

void PartitionedMatrix::apply_elementwise(const std::function<float(float)>& f,
                                          double sparse_threshold) {
  assert(f(0.0f) == 0.0f && "elementwise fn must preserve structural zeros");
  for (Tile& t : tiles_) {
    if (t.empty()) continue;
    if (t.format == TileFormat::kDense) {
      for (float& v : t.dense.data()) v = f(v);
      t = Tile::from_dense(std::move(t.dense), sparse_threshold);
    } else {
      CooMatrix kept(t.coo.rows(), t.coo.cols(), Layout::kRowMajor);
      for (const CooEntry& e : t.coo.entries()) {
        float v = f(e.value);
        if (v != 0.0f) kept.push(e.row, e.col, v);
      }
      t = Tile::from_coo(std::move(kept), sparse_threshold);
    }
  }
}

void PartitionedMatrix::add_inplace(const PartitionedMatrix& other,
                                    double sparse_threshold) {
  if (rows_ != other.rows_ || cols_ != other.cols_ || tile_rows_ != other.tile_rows_ ||
      tile_cols_ != other.tile_cols_)
    throw std::invalid_argument("add_inplace tiling mismatch");
  for (std::int64_t gi = 0; gi < grid_rows_; ++gi)
    for (std::int64_t gj = 0; gj < grid_cols_; ++gj) {
      const Tile& o = other.tile(gi, gj);
      if (o.empty()) continue;
      Tile& t = tile(gi, gj);
      DenseMatrix sum = t.to_dense();
      if (sum.layout() != Layout::kRowMajor) sum = sum.with_layout(Layout::kRowMajor);
      DenseMatrix scratch;
      const DenseMatrix& rhs = o.dense_view().require_row_major(scratch);
      for (std::int64_t r = 0; r < sum.rows(); ++r) {
        float* srow = sum.row_ptr(r);
        const float* orow = rhs.row_ptr(r);
        for (std::int64_t c = 0; c < sum.cols(); ++c) srow[c] += orow[c];
      }
      t = Tile::from_dense(std::move(sum), sparse_threshold);
    }
}

std::vector<double> PartitionedMatrix::tile_density_map() const {
  std::vector<double> out;
  out.reserve(tiles_.size());
  for (const Tile& t : tiles_) out.push_back(t.density());
  return out;
}

}  // namespace dynasparse
