#include "matrix/matrix_ops_ref.hpp"

#include <stdexcept>

#include "matrix/format_convert.hpp"

namespace dynasparse::ref {

namespace {
void check_shapes(std::int64_t xc, std::int64_t yr) {
  if (xc != yr) throw std::invalid_argument("inner dimension mismatch");
}
void check_out(std::int64_t xr, std::int64_t yc, const DenseMatrix& z) {
  if (z.rows() != xr || z.cols() != yc)
    throw std::invalid_argument("output shape mismatch");
}
}  // namespace

void gemm_accumulate(const DenseMatrix& x, const DenseMatrix& y, DenseMatrix& z) {
  check_shapes(x.cols(), y.rows());
  check_out(x.rows(), y.cols(), z);
  // i-k-j loop keeps the inner accumulation in k-order per output element,
  // matching the sparse kernels' ordering (entries sorted by (row, col)).
  for (std::int64_t i = 0; i < x.rows(); ++i)
    for (std::int64_t k = 0; k < x.cols(); ++k) {
      float xv = x.at(i, k);
      if (xv == 0.0f) continue;  // numerically a no-op; keeps bit-equality
      for (std::int64_t j = 0; j < y.cols(); ++j)
        z.at(i, j) += xv * y.at(k, j);
    }
}

void spdmm_accumulate(const CooMatrix& x, const DenseMatrix& y, DenseMatrix& z) {
  check_shapes(x.cols(), y.rows());
  check_out(x.rows(), y.cols(), z);
  // Scatter-gather paradigm (paper Algorithm 5): each nonzero e of X
  // fetches row Y[e.col] and updates output row Z[e.row]. Row-major entry
  // order gives the same k-order accumulation as gemm_accumulate.
  CooMatrix xs = x.layout() == Layout::kRowMajor ? x : x.with_layout(Layout::kRowMajor);
  for (const CooEntry& e : xs.entries())
    for (std::int64_t j = 0; j < y.cols(); ++j)
      z.at(e.row, j) += e.value * y.at(e.col, j);
}

void spdmm_rhs_accumulate(const DenseMatrix& x, const CooMatrix& y, DenseMatrix& z) {
  check_shapes(x.cols(), y.rows());
  check_out(x.rows(), y.cols(), z);
  // Mirrors spdmm with roles swapped: each nonzero e of Y pairs with
  // column e.row of X. Iterating e in row-major order of Y preserves the
  // k-accumulation order for every output element.
  CooMatrix ys = y.layout() == Layout::kRowMajor ? y : y.with_layout(Layout::kRowMajor);
  for (const CooEntry& e : ys.entries())
    for (std::int64_t i = 0; i < x.rows(); ++i) {
      float xv = x.at(i, e.row);
      if (xv != 0.0f) z.at(i, e.col) += xv * e.value;
    }
}

void spmm_accumulate(const CooMatrix& x, const CooMatrix& y, DenseMatrix& z) {
  check_shapes(x.cols(), y.rows());
  check_out(x.rows(), y.cols(), z);
  // Row-wise product (paper Algorithm 6): Z[j] = sum_i X[j][i] * Y[i].
  CsrMatrix ycsr = coo_to_csr(y);
  CooMatrix xs = x.layout() == Layout::kRowMajor ? x : x.with_layout(Layout::kRowMajor);
  for (const CooEntry& e : xs.entries()) {
    for (std::int64_t k = ycsr.row_begin(e.col); k < ycsr.row_end(e.col); ++k) {
      std::size_t ki = static_cast<std::size_t>(k);
      z.at(e.row, ycsr.col_idx()[ki]) += e.value * ycsr.values()[ki];
    }
  }
}

DenseMatrix gemm(const DenseMatrix& x, const DenseMatrix& y) {
  DenseMatrix z(x.rows(), y.cols(), Layout::kRowMajor);
  gemm_accumulate(x, y, z);
  return z;
}

DenseMatrix spdmm(const CooMatrix& x, const DenseMatrix& y) {
  DenseMatrix z(x.rows(), y.cols(), Layout::kRowMajor);
  spdmm_accumulate(x, y, z);
  return z;
}

DenseMatrix spdmm_rhs(const DenseMatrix& x, const CooMatrix& y) {
  DenseMatrix z(x.rows(), y.cols(), Layout::kRowMajor);
  spdmm_rhs_accumulate(x, y, z);
  return z;
}

DenseMatrix spmm(const CooMatrix& x, const CooMatrix& y) {
  DenseMatrix z(x.rows(), y.cols(), Layout::kRowMajor);
  spmm_accumulate(x, y, z);
  return z;
}

DenseMatrix csr_spdmm(const CsrMatrix& x, const DenseMatrix& y) {
  check_shapes(x.cols(), y.rows());
  DenseMatrix z(x.rows(), y.cols(), Layout::kRowMajor);
  for (std::int64_t r = 0; r < x.rows(); ++r)
    for (std::int64_t k = x.row_begin(r); k < x.row_end(r); ++k) {
      std::size_t ki = static_cast<std::size_t>(k);
      float xv = x.values()[ki];
      std::int64_t col = x.col_idx()[ki];
      for (std::int64_t j = 0; j < y.cols(); ++j) z.at(r, j) += xv * y.at(col, j);
    }
  return z;
}

}  // namespace dynasparse::ref
