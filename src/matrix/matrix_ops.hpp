#pragma once
// Reference implementations of the three computation primitives.
//
// GEMM, SpDMM and SPMM are *numerically identical* operations — they all
// compute Z = X * Y — and differ only in which zero elements they skip
// (paper Section III-A). These host-side kernels are the functional ground
// truth: the simulator's per-tile execution and the end-to-end engine are
// both validated against them, and the property tests assert the three
// primitives agree on random inputs across the whole density grid.
//
// Accumulation order: all kernels accumulate in the order k = 0..n-1 for
// output (i, j) += X(i, k) * Y(k, j), so results are bit-identical across
// primitives, not merely close.

#include "matrix/coo_matrix.hpp"
#include "matrix/csr_matrix.hpp"
#include "matrix/dense_matrix.hpp"

namespace dynasparse {

/// Dense x dense -> dense (row-major). The GEMM primitive.
DenseMatrix gemm(const DenseMatrix& x, const DenseMatrix& y);

/// Sparse x dense -> dense. The SpDMM primitive: skips zeros of X.
DenseMatrix spdmm(const CooMatrix& x, const DenseMatrix& y);

/// Dense x sparse -> dense. SpDMM with the *second* operand sparse (the
/// hardware handles this by loading X into BufferO and routing on Y; see
/// Algorithm 7 lines 14-15 which place the sparser operand in BufferU).
DenseMatrix spdmm_rhs(const DenseMatrix& x, const CooMatrix& y);

/// Sparse x sparse -> dense. The SPMM primitive (row-wise product).
DenseMatrix spmm(const CooMatrix& x, const CooMatrix& y);

/// CSR x dense -> dense; cache-friendly host kernel used by the naive
/// reference model and the CPU baseline's functional path.
DenseMatrix csr_spdmm(const CsrMatrix& x, const DenseMatrix& y);

/// z += x * y with dense accumulation into a caller-provided tile. All the
/// simulator's functional tile math funnels through these.
void gemm_accumulate(const DenseMatrix& x, const DenseMatrix& y, DenseMatrix& z);
void spdmm_accumulate(const CooMatrix& x, const DenseMatrix& y, DenseMatrix& z);
void spdmm_rhs_accumulate(const DenseMatrix& x, const CooMatrix& y, DenseMatrix& z);
void spmm_accumulate(const CooMatrix& x, const CooMatrix& y, DenseMatrix& z);

}  // namespace dynasparse
