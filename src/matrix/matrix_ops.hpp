#pragma once
// Optimized implementations of the three computation primitives.
//
// GEMM, SpDMM and SPMM are *numerically identical* operations — they all
// compute Z = X * Y — and differ only in which zero elements they skip
// (paper Section III-A). These host-side kernels are the functional ground
// truth: the simulator's per-tile execution and the end-to-end engine are
// both validated against them, and the property tests assert the three
// primitives agree on random inputs across the whole density grid.
//
// Accumulation order: all kernels accumulate in the order k = 0..n-1 for
// output (i, j) += X(i, k) * Y(k, j), so results are bit-identical across
// primitives, not merely close.
//
// Implementation strategy (this is the host hot path): every kernel
// normalizes its operands once — dense operands to row-major, sparse
// operands to CSR / row-major COO — then streams contiguous row spans
// through raw pointers. The layout branch that DenseMatrix::at() pays per
// element is hoisted entirely out of the inner loops, which lets the
// compiler vectorize the j-loop. The seed kernels are preserved verbatim
// in matrix_ops_ref.hpp; the kernel-equivalence tests assert bit-identical
// output between the two families.

#include <vector>

#include "matrix/coo_matrix.hpp"
#include "matrix/csr_matrix.hpp"
#include "matrix/dense_matrix.hpp"

namespace dynasparse {

/// Dense x dense -> dense (row-major). The GEMM primitive.
DenseMatrix gemm(const DenseMatrix& x, const DenseMatrix& y);

/// Sparse x dense -> dense. The SpDMM primitive: skips zeros of X.
DenseMatrix spdmm(const CooMatrix& x, const DenseMatrix& y);
/// CSR-first SpDMM: the preferred operand format for host kernels (row
/// spans of X pair with row spans of Y with no per-entry row lookup).
DenseMatrix spdmm(const CsrMatrix& x, const DenseMatrix& y);

/// Dense x sparse -> dense. SpDMM with the *second* operand sparse (the
/// hardware handles this by loading X into BufferO and routing on Y; see
/// Algorithm 7 lines 14-15 which place the sparser operand in BufferU).
DenseMatrix spdmm_rhs(const DenseMatrix& x, const CooMatrix& y);

/// Sparse x sparse -> dense. The SPMM primitive (row-wise product).
DenseMatrix spmm(const CooMatrix& x, const CooMatrix& y);
/// CSR-first SPMM.
DenseMatrix spmm(const CsrMatrix& x, const CsrMatrix& y);

/// CSR x dense -> dense; cache-friendly host kernel used by the naive
/// reference model and the CPU baseline's functional path.
DenseMatrix csr_spdmm(const CsrMatrix& x, const DenseMatrix& y);

/// z += x * y with dense accumulation into a caller-provided tile. All the
/// simulator's functional tile math funnels through these.
void gemm_accumulate(const DenseMatrix& x, const DenseMatrix& y, DenseMatrix& z);
void spdmm_accumulate(const CooMatrix& x, const DenseMatrix& y, DenseMatrix& z);
void spdmm_accumulate(const CsrMatrix& x, const DenseMatrix& y, DenseMatrix& z);
void spdmm_rhs_accumulate(const DenseMatrix& x, const CooMatrix& y, DenseMatrix& z);
void spmm_accumulate(const CooMatrix& x, const CooMatrix& y, DenseMatrix& z);
/// SPMM with the right operand pre-converted to CSR (e.g. a cached
/// Tile::csr_view()), skipping the per-call coo_to_csr.
void spmm_accumulate(const CooMatrix& x, const CsrMatrix& y, DenseMatrix& z);
void spmm_accumulate(const CsrMatrix& x, const CsrMatrix& y, DenseMatrix& z);

// ---- Batched column-block sweeps (continuous cross-request batching) ----
//
// z_i += x * y_i for B right-hand sides sharing ONE left operand: the
// shared X (a pooled adjacency tile) streams through the sweep loop once,
// feeding every member's accumulator, instead of once per request. Each
// member's per-element FP operation sequence is IDENTICAL to the solo
// kernel above it (same entry/row order, same k-ascending accumulation,
// same zero-skip tests) — only the X traversal is amortized — so batched
// results are bit-identical to solo execution, signed zeros included.
// `ys` and `zs` are index-aligned; all shapes must match the solo
// contract per member.

/// Batched gemm_accumulate: dense X swept i-outer/k-inner once, per-member
/// axpy on each nonzero of the shared row.
void gemm_accumulate_batched(const DenseMatrix& x,
                             const std::vector<const DenseMatrix*>& ys,
                             const std::vector<DenseMatrix*>& zs);
/// Batched spdmm_accumulate: one pass over X's COO entries, per-member
/// axpy per entry.
void spdmm_accumulate_batched(const CooMatrix& x,
                              const std::vector<const DenseMatrix*>& ys,
                              const std::vector<DenseMatrix*>& zs);
/// Batched spmm_accumulate: one pass over X's COO entries, per-member CSR
/// row scan per entry.
void spmm_accumulate_batched(const CooMatrix& x,
                             const std::vector<const CsrMatrix*>& ys,
                             const std::vector<DenseMatrix*>& zs);

}  // namespace dynasparse
