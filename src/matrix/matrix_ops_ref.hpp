#pragma once
// Frozen copies of the original (seed) primitive kernels: naive COO scans
// through layout-branching DenseMatrix::at() accessors.
//
// These are deliberately NOT optimized. They serve two purposes:
//   - ground truth for the kernel-equivalence regression tests — the
//     rewritten row-span/CSR kernels in matrix_ops.hpp must reproduce
//     their output bit-for-bit (same k-ordered accumulation, same
//     floating-point operation sequence per output element);
//   - the baseline that bench/micro_primitives measures speedups against,
//     so BENCH_pr1.json records an honest before/after on the same build.

#include "matrix/coo_matrix.hpp"
#include "matrix/csr_matrix.hpp"
#include "matrix/dense_matrix.hpp"

namespace dynasparse::ref {

DenseMatrix gemm(const DenseMatrix& x, const DenseMatrix& y);
DenseMatrix spdmm(const CooMatrix& x, const DenseMatrix& y);
DenseMatrix spdmm_rhs(const DenseMatrix& x, const CooMatrix& y);
DenseMatrix spmm(const CooMatrix& x, const CooMatrix& y);
DenseMatrix csr_spdmm(const CsrMatrix& x, const DenseMatrix& y);

void gemm_accumulate(const DenseMatrix& x, const DenseMatrix& y, DenseMatrix& z);
void spdmm_accumulate(const CooMatrix& x, const DenseMatrix& y, DenseMatrix& z);
void spdmm_rhs_accumulate(const DenseMatrix& x, const CooMatrix& y, DenseMatrix& z);
void spmm_accumulate(const CooMatrix& x, const CooMatrix& y, DenseMatrix& z);

}  // namespace dynasparse::ref
