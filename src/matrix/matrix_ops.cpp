#include "matrix/matrix_ops.hpp"

#include <stdexcept>

#include "matrix/format_convert.hpp"
#include "matrix/matrix_ops_ref.hpp"

namespace dynasparse {

namespace {

void check_shapes(std::int64_t xc, std::int64_t yr) {
  if (xc != yr) throw std::invalid_argument("inner dimension mismatch");
}
void check_out(std::int64_t xr, std::int64_t yc, const DenseMatrix& z) {
  if (z.rows() != xr || z.cols() != yc)
    throw std::invalid_argument("output shape mismatch");
}

/// Z[e.row] += v * Y[e.col] over a contiguous d-wide span — the shared
/// inner loop of every sparse-times-dense kernel. Plain indexed loop so
/// the compiler auto-vectorizes.
inline void axpy_row(float v, const float* __restrict y, float* __restrict z,
                     std::int64_t d) {
  for (std::int64_t j = 0; j < d; ++j) z[j] += v * y[j];
}

}  // namespace

void gemm_accumulate(const DenseMatrix& x, const DenseMatrix& y, DenseMatrix& z) {
  check_shapes(x.cols(), y.rows());
  check_out(x.rows(), y.cols(), z);
  if (z.layout() != Layout::kRowMajor) {  // cold path: callers allocate row-major
    ref::gemm_accumulate(x, y, z);
    return;
  }
  DenseMatrix xtmp, ytmp;
  const DenseMatrix& xr = x.require_row_major(xtmp);
  const DenseMatrix& yr = y.require_row_major(ytmp);
  const std::int64_t m = x.rows(), n = x.cols(), d = y.cols();
  // Same i-k-j order (and the same xv == 0 skip) as the seed kernel, so
  // every output element sees the identical FP operation sequence; the
  // layout branch is hoisted out of the loops and the j-sweep runs over
  // contiguous row spans the compiler vectorizes. (Blocked/gathered
  // variants were measured and lost: at GNN tile sizes the Z and Y rows
  // are cache-resident, so extra passes only add overhead.)
  for (std::int64_t i = 0; i < m; ++i) {
    const float* xrow = xr.row_ptr(i);
    float* zrow = z.row_ptr(i);
    for (std::int64_t k = 0; k < n; ++k) {
      float xv = xrow[k];
      if (xv == 0.0f) continue;
      axpy_row(xv, yr.row_ptr(k), zrow, d);
    }
  }
}

void spdmm_accumulate(const CooMatrix& x, const DenseMatrix& y, DenseMatrix& z) {
  check_shapes(x.cols(), y.rows());
  check_out(x.rows(), y.cols(), z);
  if (z.layout() != Layout::kRowMajor) {
    ref::spdmm_accumulate(x, y, z);
    return;
  }
  DenseMatrix ytmp;
  const DenseMatrix& yr = y.require_row_major(ytmp);
  CooMatrix xtmp;
  const CooMatrix& xs =
      x.layout() == Layout::kRowMajor ? x : (xtmp = x.with_layout(Layout::kRowMajor));
  const std::int64_t d = y.cols();
  for (const CooEntry& e : xs.entries())
    axpy_row(e.value, yr.row_ptr(e.col), z.row_ptr(e.row), d);
}

void spdmm_accumulate(const CsrMatrix& x, const DenseMatrix& y, DenseMatrix& z) {
  check_shapes(x.cols(), y.rows());
  check_out(x.rows(), y.cols(), z);
  if (z.layout() != Layout::kRowMajor) {
    ref::spdmm_accumulate(x.to_coo(), y, z);
    return;
  }
  DenseMatrix ytmp;
  const DenseMatrix& yr = y.require_row_major(ytmp);
  const std::int64_t m = x.rows(), d = y.cols();
  const std::int64_t* col = x.col_idx().data();
  const float* val = x.values().data();
  // CSR row order == row-major COO entry order: identical k-ordered
  // accumulation per output element.
  for (std::int64_t r = 0; r < m; ++r) {
    float* zrow = z.row_ptr(r);
    const std::int64_t kend = x.row_end(r);
    for (std::int64_t k = x.row_begin(r); k < kend; ++k)
      axpy_row(val[k], yr.row_ptr(col[k]), zrow, d);
  }
}

void spdmm_rhs_accumulate(const DenseMatrix& x, const CooMatrix& y, DenseMatrix& z) {
  check_shapes(x.cols(), y.rows());
  check_out(x.rows(), y.cols(), z);
  if (z.layout() != Layout::kRowMajor) {
    ref::spdmm_rhs_accumulate(x, y, z);
    return;
  }
  DenseMatrix xtmp;
  const DenseMatrix& xr = x.require_row_major(xtmp);
  CooMatrix ytmp;
  const CooMatrix& ys =
      y.layout() == Layout::kRowMajor ? y : (ytmp = y.with_layout(Layout::kRowMajor));
  const auto& entries = ys.entries();
  const std::int64_t m = x.rows();
  // Loop interchange vs the seed (i outer, entries inner): every output
  // slot (i, j) still accumulates its contributions in the same entry
  // order (k ascending), so the per-slot FP sequence is unchanged, while
  // X and Z rows stay resident in cache across the entry scan.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* xrow = xr.row_ptr(i);
    float* zrow = z.row_ptr(i);
    for (const CooEntry& e : entries) {
      float xv = xrow[e.row];
      if (xv != 0.0f) zrow[e.col] += xv * e.value;
    }
  }
}

void spmm_accumulate(const CooMatrix& x, const CooMatrix& y, DenseMatrix& z) {
  spmm_accumulate(x, coo_to_csr(y), z);
}

void spmm_accumulate(const CooMatrix& x, const CsrMatrix& y, DenseMatrix& z) {
  check_shapes(x.cols(), y.rows());
  check_out(x.rows(), y.cols(), z);
  if (z.layout() != Layout::kRowMajor) {
    ref::spmm_accumulate(x, y.to_coo(), z);
    return;
  }
  CooMatrix xtmp;
  const CooMatrix& xs =
      x.layout() == Layout::kRowMajor ? x : (xtmp = x.with_layout(Layout::kRowMajor));
  const std::int64_t* yrp = y.row_ptr().data();
  const std::int64_t* yci = y.col_idx().data();
  const float* yv = y.values().data();
  for (const CooEntry& e : xs.entries()) {
    float* zrow = z.row_ptr(e.row);
    const std::int64_t kend = yrp[e.col + 1];
    for (std::int64_t k = yrp[e.col]; k < kend; ++k) zrow[yci[k]] += e.value * yv[k];
  }
}

void spmm_accumulate(const CsrMatrix& x, const CsrMatrix& y, DenseMatrix& z) {
  check_shapes(x.cols(), y.rows());
  check_out(x.rows(), y.cols(), z);
  if (z.layout() != Layout::kRowMajor) {
    ref::spmm_accumulate(x.to_coo(), y.to_coo(), z);
    return;
  }
  const std::int64_t* xci = x.col_idx().data();
  const float* xv = x.values().data();
  const std::int64_t* yrp = y.row_ptr().data();
  const std::int64_t* yci = y.col_idx().data();
  const float* yv = y.values().data();
  for (std::int64_t r = 0; r < x.rows(); ++r) {
    float* zrow = z.row_ptr(r);
    const std::int64_t xend = x.row_end(r);
    for (std::int64_t xk = x.row_begin(r); xk < xend; ++xk) {
      const std::int64_t c = xci[xk];
      const float v = xv[xk];
      const std::int64_t kend = yrp[c + 1];
      for (std::int64_t k = yrp[c]; k < kend; ++k) zrow[yci[k]] += v * yv[k];
    }
  }
}

void gemm_accumulate_batched(const DenseMatrix& x,
                             const std::vector<const DenseMatrix*>& ys,
                             const std::vector<DenseMatrix*>& zs) {
  if (ys.size() != zs.size())
    throw std::invalid_argument("batched gemm: ys/zs size mismatch");
  // Solo path for any member the fast loop can't serve bit-identically
  // (column-major accumulator falls back to the reference kernel there).
  bool fast = true;
  for (std::size_t b = 0; b < ys.size(); ++b) {
    check_shapes(x.cols(), ys[b]->rows());
    check_out(x.rows(), ys[b]->cols(), *zs[b]);
    if (zs[b]->layout() != Layout::kRowMajor) fast = false;
  }
  if (!fast) {
    for (std::size_t b = 0; b < ys.size(); ++b)
      gemm_accumulate(x, *ys[b], *zs[b]);
    return;
  }
  DenseMatrix xtmp;
  const DenseMatrix& xr = x.require_row_major(xtmp);
  std::vector<DenseMatrix> ytmps(ys.size());
  std::vector<const DenseMatrix*> yr(ys.size());
  for (std::size_t b = 0; b < ys.size(); ++b)
    yr[b] = &ys[b]->require_row_major(ytmps[b]);
  const std::int64_t m = x.rows(), n = x.cols();
  // Shared X row streamed once; each member sees the same i-k order and
  // the same xv == 0 skip as its solo gemm_accumulate.
  for (std::int64_t i = 0; i < m; ++i) {
    const float* xrow = xr.row_ptr(i);
    for (std::int64_t k = 0; k < n; ++k) {
      float xv = xrow[k];
      if (xv == 0.0f) continue;
      for (std::size_t b = 0; b < ys.size(); ++b)
        axpy_row(xv, yr[b]->row_ptr(k), zs[b]->row_ptr(i), yr[b]->cols());
    }
  }
}

void spdmm_accumulate_batched(const CooMatrix& x,
                              const std::vector<const DenseMatrix*>& ys,
                              const std::vector<DenseMatrix*>& zs) {
  if (ys.size() != zs.size())
    throw std::invalid_argument("batched spdmm: ys/zs size mismatch");
  bool fast = true;
  for (std::size_t b = 0; b < ys.size(); ++b) {
    check_shapes(x.cols(), ys[b]->rows());
    check_out(x.rows(), ys[b]->cols(), *zs[b]);
    if (zs[b]->layout() != Layout::kRowMajor) fast = false;
  }
  if (!fast) {
    for (std::size_t b = 0; b < ys.size(); ++b)
      spdmm_accumulate(x, *ys[b], *zs[b]);
    return;
  }
  std::vector<DenseMatrix> ytmps(ys.size());
  std::vector<const DenseMatrix*> yr(ys.size());
  for (std::size_t b = 0; b < ys.size(); ++b)
    yr[b] = &ys[b]->require_row_major(ytmps[b]);
  CooMatrix xtmp;
  const CooMatrix& xs =
      x.layout() == Layout::kRowMajor ? x : (xtmp = x.with_layout(Layout::kRowMajor));
  // One pass over the shared sparse operand; per entry, every member's
  // axpy in member order. Per member this is the exact solo entry order.
  for (const CooEntry& e : xs.entries())
    for (std::size_t b = 0; b < ys.size(); ++b)
      axpy_row(e.value, yr[b]->row_ptr(e.col), zs[b]->row_ptr(e.row),
               yr[b]->cols());
}

void spmm_accumulate_batched(const CooMatrix& x,
                             const std::vector<const CsrMatrix*>& ys,
                             const std::vector<DenseMatrix*>& zs) {
  if (ys.size() != zs.size())
    throw std::invalid_argument("batched spmm: ys/zs size mismatch");
  bool fast = true;
  for (std::size_t b = 0; b < ys.size(); ++b) {
    check_shapes(x.cols(), ys[b]->rows());
    check_out(x.rows(), ys[b]->cols(), *zs[b]);
    if (zs[b]->layout() != Layout::kRowMajor) fast = false;
  }
  if (!fast) {
    for (std::size_t b = 0; b < ys.size(); ++b)
      spmm_accumulate(x, *ys[b], *zs[b]);
    return;
  }
  CooMatrix xtmp;
  const CooMatrix& xs =
      x.layout() == Layout::kRowMajor ? x : (xtmp = x.with_layout(Layout::kRowMajor));
  for (const CooEntry& e : xs.entries()) {
    for (std::size_t b = 0; b < ys.size(); ++b) {
      const CsrMatrix& y = *ys[b];
      const std::int64_t* yrp = y.row_ptr().data();
      const std::int64_t* yci = y.col_idx().data();
      const float* yv = y.values().data();
      float* zrow = zs[b]->row_ptr(e.row);
      const std::int64_t kend = yrp[e.col + 1];
      for (std::int64_t k = yrp[e.col]; k < kend; ++k)
        zrow[yci[k]] += e.value * yv[k];
    }
  }
}

DenseMatrix gemm(const DenseMatrix& x, const DenseMatrix& y) {
  DenseMatrix z(x.rows(), y.cols(), Layout::kRowMajor);
  gemm_accumulate(x, y, z);
  return z;
}

DenseMatrix spdmm(const CooMatrix& x, const DenseMatrix& y) {
  DenseMatrix z(x.rows(), y.cols(), Layout::kRowMajor);
  spdmm_accumulate(x, y, z);
  return z;
}

DenseMatrix spdmm(const CsrMatrix& x, const DenseMatrix& y) {
  DenseMatrix z(x.rows(), y.cols(), Layout::kRowMajor);
  spdmm_accumulate(x, y, z);
  return z;
}

DenseMatrix spdmm_rhs(const DenseMatrix& x, const CooMatrix& y) {
  DenseMatrix z(x.rows(), y.cols(), Layout::kRowMajor);
  spdmm_rhs_accumulate(x, y, z);
  return z;
}

DenseMatrix spmm(const CooMatrix& x, const CooMatrix& y) {
  DenseMatrix z(x.rows(), y.cols(), Layout::kRowMajor);
  spmm_accumulate(x, y, z);
  return z;
}

DenseMatrix spmm(const CsrMatrix& x, const CsrMatrix& y) {
  DenseMatrix z(x.rows(), y.cols(), Layout::kRowMajor);
  spmm_accumulate(x, y, z);
  return z;
}

DenseMatrix csr_spdmm(const CsrMatrix& x, const DenseMatrix& y) {
  return spdmm(x, y);
}

}  // namespace dynasparse
