#include "matrix/layout.hpp"

#include <stdexcept>

namespace dynasparse {

DenseMatrix toggle_layout(const DenseMatrix& m) {
  return m.with_layout(m.layout() == Layout::kRowMajor ? Layout::kColMajor
                                                       : Layout::kRowMajor);
}

CooMatrix toggle_layout(const CooMatrix& m) {
  return m.with_layout(m.layout() == Layout::kRowMajor ? Layout::kColMajor
                                                       : Layout::kRowMajor);
}

DenseMatrix merge_partials(const DenseMatrix& row_major_part,
                           const DenseMatrix& col_major_part) {
  if (!row_major_part.same_shape(col_major_part))
    throw std::invalid_argument("merge_partials shape mismatch");
  DenseMatrix out(row_major_part.rows(), row_major_part.cols(), Layout::kRowMajor);
  for (std::int64_t r = 0; r < out.rows(); ++r)
    for (std::int64_t c = 0; c < out.cols(); ++c)
      out.at(r, c) = row_major_part.at(r, c) + col_major_part.at(r, c);
  return out;
}

}  // namespace dynasparse
