#pragma once
// Data-format conversion between dense and sparse representations.
//
// Functionally these are host-side conversions; the hardware equivalents
// (the Dense-to-Sparse and Sparse-to-Dense modules of the Auxiliary
// Hardware Module, paper Fig. 8) are *streaming* pipelines whose cycle
// costs are modelled in src/sim/format_transform.hpp. The functional
// `dense_to_coo` here mirrors the hardware algorithm: per n-element chunk,
// compute the prefix sum of zero counts and compact survivors left.

#include <cstdint>
#include <vector>

#include "matrix/coo_matrix.hpp"
#include "matrix/csr_matrix.hpp"
#include "matrix/dense_matrix.hpp"

namespace dynasparse {

/// Dense -> COO keeping the dense matrix's layout order (row-major scan
/// for row-major input, column-major scan otherwise).
CooMatrix dense_to_coo(const DenseMatrix& m);

/// COO -> dense (row-major). Duplicate positions accumulate.
DenseMatrix coo_to_dense(const CooMatrix& m);

/// Dense -> CSR.
CsrMatrix dense_to_csr(const DenseMatrix& m);

/// COO (any layout) -> CSR.
CsrMatrix coo_to_csr(const CooMatrix& m);

/// One hardware D2S pipeline step (paper Fig. 8): compact the nonzeros of
/// an n-wide chunk to the left, preserving order, and report their
/// original indices. Exposed for unit-testing the pipeline model against
/// the figure's worked example.
struct CompactedChunk {
  std::vector<float> values;        // surviving nonzero values, in order
  std::vector<int> source_index;    // original position of each survivor
};
CompactedChunk compact_chunk(const std::vector<float>& chunk);

}  // namespace dynasparse
