#include "matrix/tile_pool.hpp"

#include <utility>

#include "util/cancellation.hpp"

namespace dynasparse {

TilePool::TilePool(std::size_t max_entries,
                   std::shared_ptr<MemoryBudget::Tier> tier)
    : max_entries_(max_entries), tier_(std::move(tier)) {}

std::shared_ptr<const PartitionedMatrix> TilePool::get_or_build(
    const Key& key, const Builder& build) {
  if (max_entries_ == 0) {
    {
      std::lock_guard<OrderedMutex> lk(mu_);
      ++stats_.misses;
    }
    return std::make_shared<const PartitionedMatrix>(build());
  }

  for (;;) {
    std::promise<FillResult> promise;
    std::shared_future<FillResult> fut;
    bool build_here = false;
    {
      std::lock_guard<OrderedMutex> lk(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++stats_.hits;
        if (it->second.ready) {
          lru_.splice(lru_.end(), lru_, it->second.lru_pos);
          it->second.lru_pos = std::prev(lru_.end());
          return it->second.value;
        }
        ++stats_.inflight_joins;
        fut = it->second.pending;
      } else {
        ++stats_.misses;
        build_here = true;
        Entry e;
        e.pending = promise.get_future().share();
        lru_.push_back(key);
        e.lru_pos = std::prev(lru_.end());
        entries_.emplace(key, std::move(e));
        ++stats_.entries;
      }
    }

    if (!build_here) {
      const FillResult& r = fut.get();  // never throws: failures are data
      if (r.value) return r.value;
      if (r.aborted) {
        // The leader's request was cancelled or hit its deadline; the
        // dead entry is already erased. Retry: this caller becomes the
        // new leader under its own token.
        std::lock_guard<OrderedMutex> lk(mu_);
        ++stats_.aborted_retries;
        continue;
      }
      throw CacheFillFailedError(r.error);  // this joiner's own object
    }

    try {
      auto value = std::make_shared<const PartitionedMatrix>(build());
      const std::size_t bytes = value->approx_footprint_bytes();
      promise.set_value(FillResult{value, false, std::string()});
      bool need_rebalance = false;
      {
        std::lock_guard<OrderedMutex> lk(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
          it->second.value = value;
          it->second.ready = true;
          it->second.bytes = bytes;
          // Drop the future now that the value is published: its shared
          // state holds a value copy that would otherwise keep
          // use_count >= 2 forever and defeat the use_count == 1
          // eviction rule. Joiners already in fut.get() hold their own
          // shared_future copy, which keeps the state alive for them.
          it->second.pending = {};
          stats_.bytes += static_cast<std::int64_t>(bytes);
          if (tier_) need_rebalance = tier_->charge(bytes);
        }
        evict_locked(max_entries_, kNoByteBound);
      }
      if (need_rebalance) tier_->owner().rebalance();
      return value;
    } catch (const std::exception& e) {
      // Erase before publishing so a retrying joiner finds the key
      // absent; publish the failure as data, never as this thread's
      // exception object (see keyed_future_cache.hpp).
      erase_failed_entry(key);
      FillResult r;
      r.aborted = dynamic_cast<const RequestAbortedError*>(&e) != nullptr;
      r.error = e.what();
      promise.set_value(std::move(r));
      throw;
    } catch (...) {
      erase_failed_entry(key);
      FillResult r;
      r.error = "tile pool build failed: unknown exception";
      promise.set_value(std::move(r));
      throw;
    }
  }
}

void TilePool::erase_failed_entry(const Key& key) {
  std::lock_guard<OrderedMutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_pos);
  entries_.erase(it);
  --stats_.entries;
}

void TilePool::evict_locked(std::size_t entry_limit, std::int64_t byte_target) {
  auto over = [&] {
    return entries_.size() > entry_limit || stats_.bytes > byte_target;
  };
  auto pos = lru_.begin();
  while (over() && pos != lru_.end()) {
    auto it = entries_.find(*pos);
    if (it == entries_.end() || !it->second.ready) {  // in-flight: skip
      ++pos;
      continue;
    }
    if (it->second.value.use_count() > 1) {
      // Pinned by a live program (or a caller mid-return): evicting
      // would not free the tiles, only force the next sharer to rebuild
      // duplicates. Leave it resident.
      ++stats_.pinned_skips;
      ++pos;
      continue;
    }
    stats_.bytes -= static_cast<std::int64_t>(it->second.bytes);
    if (tier_) tier_->credit(it->second.bytes);
    entries_.erase(it);
    --stats_.entries;
    ++stats_.evictions;
    pos = lru_.erase(pos);
  }
}

void TilePool::shrink_to_bytes(std::size_t target) {
  std::lock_guard<OrderedMutex> lk(mu_);
  // entry_limit = current size: only the byte bound drives this pass.
  evict_locked(entries_.size(), static_cast<std::int64_t>(target));
}

void TilePool::clear() {
  std::lock_guard<OrderedMutex> lk(mu_);
  evict_locked(0, 0);
}

TilePoolStats TilePool::stats() const {
  std::lock_guard<OrderedMutex> lk(mu_);
  TilePoolStats out = stats_;
  out.shared_refs = 0;
  for (const auto& [key, e] : entries_) {
    (void)key;
    if (e.ready)
      out.shared_refs += static_cast<std::int64_t>(e.value.use_count()) - 1;
  }
  return out;
}

}  // namespace dynasparse
