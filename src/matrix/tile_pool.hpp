#pragma once
// TilePool — dataset-keyed shared pool of reorganized operands.
//
// Every CompiledProgram carries partitioned copies of its dataset's
// operands: the adjacency operator(s) reorganized into N1 x N1 tiles and
// the feature matrix H0 into N1 x N2 tiles. These are immutable once
// built (the compiler profiles them and the runtime only reads), and two
// programs compiled from the same dataset under the same partition
// geometry produce bit-identical tiles — `from_csr`/`from_coo` are pure
// functions of (operand bytes, n1, n2, threshold). Yet before this pool
// each cached program held private copies, so the resident footprint of
// the compilation cache grew with cached *programs* instead of with
// distinct *datasets* (a GCN and a GraphSAGE variant over Citeseer
// duplicated every Citeseer tile).
//
// The pool fixes that: compilation routes operand materialization
// through get_or_build(key, build) where the key is
//
//   (dataset_signature, geometry_signature, operand_signature)
//
// - dataset_signature: content hash of the dataset (spec + CSR arrays +
//   feature nonzeros, src/compiler/signature.hpp) — equal signatures
//   mean byte-equal source operands;
// - geometry_signature: hash of everything that shapes the partitioned
//   result (n1, n2, sparse_storage_threshold bits) — the plan fields
//   that change tile content;
// - operand_signature: which operand of the dataset this is (h0, or an
//   adjacency operator hashed over AdjKind + epsilon bits).
//
// Equal keys therefore guarantee bit-identical `PartitionedMatrix`
// payloads, which is what makes handing the same shared_ptr to many
// programs safe under the determinism contract (fingerprint-verified in
// tests/tile_pool_test.cpp).
//
// Unlike KeyedFutureCache, eviction here must be REFCOUNT-AWARE: a
// pooled operand referenced by a live CompiledProgram (use_count > 1)
// must not leave the pool, or the next program compiled from that
// dataset would rebuild — and re-account — bytes that are still
// resident anyway. shrink/evict therefore skip pinned entries; an entry
// only leaves once every program holding it has itself been evicted.
// That is also why the pool registers FIRST with the MemoryBudget: the
// budget shrinks tiers in reverse registration order, so the program
// caches drop their references before the pool is asked to free the
// now-unpinned tiles.
//
// In-flight dedup, cancelled-leader hand-off, and failure semantics
// mirror KeyedFutureCache (see keyed_future_cache.hpp): concurrent
// builders of one key join a shared future; a leader whose request
// aborts hands the fill to a joiner; other failures surface to joiners
// as their own CacheFillFailedError. One structural difference: the
// entry's future is RESET once the value is ready. Keeping it would pin
// use_count at 2 forever (the future's shared state holds a value copy),
// making every entry look referenced and the use_count==1 eviction rule
// vacuous.
//
// capacity 0 disables pooling: every call runs `build` privately, which
// keeps the pool-off baseline measurable through the same call sites.

#include <cstdint>
#include <functional>
#include <future>
#include <limits>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>

#include "matrix/partitioned_matrix.hpp"
#include "util/keyed_future_cache.hpp"  // CacheFillFailedError
#include "util/memory_budget.hpp"
#include "util/ordered_mutex.hpp"

namespace dynasparse {

struct TilePoolStats {
  std::int64_t hits = 0;            // key found (ready or in-flight)
  std::int64_t misses = 0;          // this call built the operand
  std::int64_t evictions = 0;       // unpinned entries dropped
  std::int64_t inflight_joins = 0;  // hits that waited on a build in flight
  std::int64_t aborted_retries = 0; // joins retried after a leader abort
  std::int64_t pinned_skips = 0;    // eviction passes over referenced entries
  std::int64_t entries = 0;         // resident operands
  std::int64_t bytes = 0;           // approx_footprint_bytes of residents
  std::int64_t shared_refs = 0;     // sum over residents of (use_count - 1):
                                    // live program references beyond the pool's
};

class TilePool {
 public:
  /// (dataset, geometry, operand) — see file comment for what each
  /// component must hash so equal keys imply bit-identical payloads.
  struct Key {
    std::uint64_t dataset_sig = 0;
    std::uint64_t geometry_sig = 0;
    std::uint64_t operand_sig = 0;
    bool operator<(const Key& o) const {
      return std::tie(dataset_sig, geometry_sig, operand_sig) <
             std::tie(o.dataset_sig, o.geometry_sig, o.operand_sig);
    }
  };

  using Builder = std::function<PartitionedMatrix()>;

  /// `max_entries` 0 disables pooling (every call builds privately).
  /// `tier` (optional) mirrors resident bytes into the shared budget.
  explicit TilePool(std::size_t max_entries,
                    std::shared_ptr<MemoryBudget::Tier> tier = nullptr);

  /// Return the pooled operand for `key`, running `build` at most once
  /// per key. Concurrent callers for one key join the builder in
  /// flight; the failure/abort semantics match
  /// KeyedFutureCache::get_or_make. The returned shared_ptr is the
  /// pin: the entry stays resident while any caller (or program) holds it.
  std::shared_ptr<const PartitionedMatrix> get_or_build(const Key& key,
                                                        const Builder& build);

  /// Evict unpinned (use_count == 1) ready entries, LRU first, until
  /// resident bytes are at most `target`. The budget's shrinker hook;
  /// pinned entries are skipped and counted in stats().pinned_skips.
  void shrink_to_bytes(std::size_t target);

  /// Drop every unpinned ready entry.
  void clear();

  TilePoolStats stats() const;
  std::size_t max_entries() const { return max_entries_; }

 private:
  struct FillResult {
    std::shared_ptr<const PartitionedMatrix> value;
    bool aborted = false;
    std::string error;
  };
  struct Entry {
    // Exactly one of the two is set: `pending` while the builder runs
    // (joiners wait on it), `value` once ready. The future is reset at
    // publish time so its shared state's value copy dies with the last
    // joiner — see file comment on refcount-aware eviction.
    std::shared_future<FillResult> pending;
    std::shared_ptr<const PartitionedMatrix> value;
    bool ready = false;
    std::size_t bytes = 0;
    std::list<Key>::iterator lru_pos;
  };

  /// Erase `key` after a failed build; mu_ taken inside.
  void erase_failed_entry(const Key& key);
  /// Drop unpinned ready LRU entries while over `entry_limit` entries or
  /// `byte_target` bytes (kNoByteBound = count-only pass); mu_ held.
  static constexpr std::int64_t kNoByteBound =
      std::numeric_limits<std::int64_t>::max();
  void evict_locked(std::size_t entry_limit, std::int64_t byte_target);

  const std::size_t max_entries_;
  const std::shared_ptr<MemoryBudget::Tier> tier_;
  mutable OrderedMutex mu_{LockRank::kTilePool};
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = least recently used
  TilePoolStats stats_;
};

}  // namespace dynasparse
