#pragma once
// Compressed Sparse Row matrix. Used host-side: graph adjacency storage and
// the reference kernels iterate CSR for cache-friendly row access. The
// simulated device uses COO (paper Section V-A); conversions live in
// format_convert.hpp.

#include <cstdint>
#include <vector>

#include "matrix/coo_matrix.hpp"

namespace dynasparse {

class CsrMatrix {
 public:
  CsrMatrix() = default;
  /// Build from shape + parallel arrays; row_ptr.size() must be rows+1.
  CsrMatrix(std::int64_t rows, std::int64_t cols, std::vector<std::int64_t> row_ptr,
            std::vector<std::int64_t> col_idx, std::vector<float> values);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  std::int64_t nnz() const { return static_cast<std::int64_t>(col_idx_.size()); }
  double density() const {
    if (rows_ == 0 || cols_ == 0) return 0.0;
    return static_cast<double>(nnz()) / static_cast<double>(rows_ * cols_);
  }

  const std::vector<std::int64_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::int64_t>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }
  std::vector<float>& values() { return values_; }

  std::int64_t row_begin(std::int64_t r) const { return row_ptr_[static_cast<std::size_t>(r)]; }
  std::int64_t row_end(std::int64_t r) const { return row_ptr_[static_cast<std::size_t>(r) + 1]; }
  std::int64_t row_nnz(std::int64_t r) const { return row_end(r) - row_begin(r); }

  /// Structural validity: monotone row_ptr, in-bounds sorted column
  /// indices without duplicates within a row.
  bool well_formed() const;

  CooMatrix to_coo(Layout layout = Layout::kRowMajor) const;
  DenseMatrix to_dense() const;

 private:
  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  std::vector<std::int64_t> row_ptr_ = {0};
  std::vector<std::int64_t> col_idx_;
  std::vector<float> values_;
};

}  // namespace dynasparse
