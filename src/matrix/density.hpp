#pragma once
// Density profiling — functional counterpart of the hardware Sparsity
// Profiler (comparator array + adder tree at the Result Buffer output,
// paper Section V-B2). Density = nnz / (rows * cols); sparsity = 1 - density.

#include <cstdint>
#include <vector>

#include "matrix/coo_matrix.hpp"
#include "matrix/dense_matrix.hpp"

namespace dynasparse {

/// Count of nonzeros in a raw value stream (what the comparator array sees).
std::int64_t count_nonzeros(const std::vector<float>& values);

/// Density of a dense matrix.
double profile_density(const DenseMatrix& m);
/// Density of a COO matrix (entries assumed nonzero).
double profile_density(const CooMatrix& m);

/// Density of the m x n product-shape metadata given an nnz count.
double density_from_nnz(std::int64_t nnz, std::int64_t rows, std::int64_t cols);

}  // namespace dynasparse
