#pragma once
// Data-layout transformation — functional counterpart of the Layout
// Transformation Unit (streaming permutation network, paper Section V-B2).
// Row-major <-> column-major re-storage of the same logical matrix is a
// physical transpose of the backing array.

#include "matrix/coo_matrix.hpp"
#include "matrix/dense_matrix.hpp"

namespace dynasparse {

/// Re-store `m` in the opposite layout (logical values unchanged).
DenseMatrix toggle_layout(const DenseMatrix& m);
CooMatrix toggle_layout(const CooMatrix& m);

/// Merge two partial results of the same logical tile, one row-major and
/// one column-major, into a single row-major tile (the Layout Merger of
/// the Result Buffer: partial sums from GEMM-mode and transposed-operand
/// passes are added elementwise on the way to DDR).
DenseMatrix merge_partials(const DenseMatrix& row_major_part,
                           const DenseMatrix& col_major_part);

}  // namespace dynasparse
