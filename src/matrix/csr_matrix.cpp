#include "matrix/csr_matrix.hpp"

#include <stdexcept>

namespace dynasparse {

CsrMatrix::CsrMatrix(std::int64_t rows, std::int64_t cols,
                     std::vector<std::int64_t> row_ptr, std::vector<std::int64_t> col_idx,
                     std::vector<float> values)
    : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)), values_(std::move(values)) {
  if (row_ptr_.size() != static_cast<std::size_t>(rows_) + 1)
    throw std::invalid_argument("CSR row_ptr size mismatch");
  if (col_idx_.size() != values_.size())
    throw std::invalid_argument("CSR col_idx/values size mismatch");
}

bool CsrMatrix::well_formed() const {
  if (row_ptr_.empty() || row_ptr_.front() != 0) return false;
  if (row_ptr_.back() != nnz()) return false;
  for (std::size_t r = 0; r + 1 < row_ptr_.size(); ++r) {
    if (row_ptr_[r] > row_ptr_[r + 1]) return false;
    for (std::int64_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      std::size_t i = static_cast<std::size_t>(k);
      if (col_idx_[i] < 0 || col_idx_[i] >= cols_) return false;
      if (k > row_ptr_[r] && col_idx_[i - 1] >= col_idx_[i]) return false;
    }
  }
  return true;
}

CooMatrix CsrMatrix::to_coo(Layout layout) const {
  CooMatrix out(rows_, cols_, layout);
  out.entries().reserve(static_cast<std::size_t>(nnz()));
  for (std::int64_t r = 0; r < rows_; ++r)
    for (std::int64_t k = row_begin(r); k < row_end(r); ++k)
      out.push(r, col_idx_[static_cast<std::size_t>(k)], values_[static_cast<std::size_t>(k)]);
  if (layout != Layout::kRowMajor) out.sort_to_layout();
  return out;
}

DenseMatrix CsrMatrix::to_dense() const {
  DenseMatrix out(rows_, cols_, Layout::kRowMajor);
  for (std::int64_t r = 0; r < rows_; ++r) {
    float* row = out.row_ptr(r);
    const std::int64_t kend = row_end(r);
    for (std::int64_t k = row_begin(r); k < kend; ++k)
      row[col_idx_[static_cast<std::size_t>(k)]] += values_[static_cast<std::size_t>(k)];
  }
  return out;
}

}  // namespace dynasparse
