#pragma once
// Dense fp32 matrix with an explicit storage layout.
//
// Layout matters to the accelerator: the GEMM execution mode requires its
// second operand column-major (paper Table III), and the Layout
// Transformation Unit charges cycles for transposition. The host-side data
// structure records the layout so the simulator can bill transforms.

#include <cassert>
#include <cstdint>
#include <vector>

namespace dynasparse {

enum class Layout { kRowMajor, kColMajor };

class DenseMatrix {
 public:
  DenseMatrix() = default;
  /// Zero-initialized rows x cols matrix in the given layout.
  DenseMatrix(std::int64_t rows, std::int64_t cols, Layout layout = Layout::kRowMajor);

  std::int64_t rows() const { return rows_; }
  std::int64_t cols() const { return cols_; }
  Layout layout() const { return layout_; }
  std::int64_t size() const { return rows_ * cols_; }

  /// Element access by logical (row, col), independent of layout.
  float at(std::int64_t r, std::int64_t c) const { return data_[index(r, c)]; }
  float& at(std::int64_t r, std::int64_t c) { return data_[index(r, c)]; }

  /// Contiguous span of logical row r. Only valid for row-major storage —
  /// kernels hoist the layout branch by normalizing an operand to
  /// row-major once (see require_row_major) and then streaming rows
  /// through these pointers instead of paying the branch inside `at()` on
  /// every element.
  const float* row_ptr(std::int64_t r) const {
    assert(layout_ == Layout::kRowMajor);
    return data_.data() + static_cast<std::size_t>(r * cols_);
  }
  float* row_ptr(std::int64_t r) {
    assert(layout_ == Layout::kRowMajor);
    return data_.data() + static_cast<std::size_t>(r * cols_);
  }

  /// Hoisted layout normalization: returns *this when already row-major;
  /// otherwise materializes a row-major copy into `scratch` and returns
  /// that. Element values are copied verbatim (no arithmetic), so kernels
  /// reading through the result are bit-identical to layout-branching
  /// access.
  const DenseMatrix& require_row_major(DenseMatrix& scratch) const {
    if (layout_ == Layout::kRowMajor) return *this;
    scratch = with_layout(Layout::kRowMajor);
    return scratch;
  }

  const std::vector<float>& data() const { return data_; }
  std::vector<float>& data() { return data_; }

  /// Number of elements with value != 0.
  std::int64_t nnz() const;
  /// nnz / (rows * cols); 0 for an empty matrix.
  double density() const;

  /// Re-store the same logical matrix in the other layout (a physical
  /// transpose of the backing array). Logical indices are unchanged.
  DenseMatrix with_layout(Layout layout) const;

  /// Logical transpose: returns the cols x rows matrix B with
  /// B[c][r] == (*this)[r][c], stored row-major.
  DenseMatrix transposed() const;

  /// Set every element to v.
  void fill(float v);

  /// Max |a - b| over all elements; matrices must be the same shape.
  static float max_abs_diff(const DenseMatrix& a, const DenseMatrix& b);

  bool same_shape(const DenseMatrix& o) const {
    return rows_ == o.rows_ && cols_ == o.cols_;
  }

 private:
  std::size_t index(std::int64_t r, std::int64_t c) const {
    return layout_ == Layout::kRowMajor
               ? static_cast<std::size_t>(r * cols_ + c)
               : static_cast<std::size_t>(c * rows_ + r);
  }

  std::int64_t rows_ = 0;
  std::int64_t cols_ = 0;
  Layout layout_ = Layout::kRowMajor;
  std::vector<float> data_;
};

}  // namespace dynasparse
