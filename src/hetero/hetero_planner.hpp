#pragma once
// Heterogeneous execution planner — the paper's stated future work
// (Section IX): "extend Dynasparse on heterogeneous platforms that
// consist of CPU, GPU and FPGA, where GPU is effective for dense
// primitives, FPGA is effective for sparse primitives and the CPU can
// execute complex control flow".
//
// Given a compiled program, the planner assigns every kernel to one of
// the three devices by minimizing predicted end-to-end time with a
// dynamic program over the kernel chain: per-kernel device latencies come
// from the simulator (FPGA, per-kernel makespans of a Dynamic run) and
// the roofline models (CPU/GPU), and moving the feature matrix between
// devices between consecutive kernels pays a PCIe transfer.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "compiler/compiler.hpp"
#include "runtime/runtime_system.hpp"

namespace dynasparse {

enum class DeviceKind { kCpu = 0, kGpu = 1, kFpga = 2 };
inline constexpr int kNumDevices = 3;

const char* device_name(DeviceKind d);

struct HeteroOptions {
  /// PCIe bandwidth for inter-device feature transfers (bytes/s);
  /// default = the U250 link of the paper's end-to-end discussion.
  double pcie_bytes_per_s = 11.2e9;
  /// Fixed per-transfer latency (DMA setup + driver), seconds.
  double transfer_latency_s = 20e-6;
};

struct HeteroPlan {
  std::vector<DeviceKind> assignment;        // per kernel
  std::vector<double> kernel_ms;             // chosen-device latency
  double total_ms = 0.0;                     // exec + transfers
  double transfer_ms = 0.0;                  // PCIe movement portion
  double fpga_only_ms = 0.0;                 // baseline: everything on FPGA
  double speedup_vs_fpga_only() const {
    return total_ms > 0.0 ? fpga_only_ms / total_ms : 0.0;
  }
  std::string describe() const;
};

/// Per-kernel latency matrix (ms), kernels x devices.
std::vector<std::array<double, kNumDevices>> hetero_latency_matrix(
    const CompiledProgram& prog, const ExecutionResult& fpga_run);

/// Plan the assignment. `fpga_run` must be an execution of `prog` (its
/// per-kernel makespans price the FPGA column).
HeteroPlan plan_heterogeneous(const CompiledProgram& prog,
                              const ExecutionResult& fpga_run,
                              const HeteroOptions& options = {});

}  // namespace dynasparse
