#include "hetero/hetero_planner.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "baselines/platform_models.hpp"

namespace dynasparse {

const char* device_name(DeviceKind d) {
  switch (d) {
    case DeviceKind::kCpu: return "CPU";
    case DeviceKind::kGpu: return "GPU";
    case DeviceKind::kFpga: return "FPGA";
  }
  return "?";
}

std::string HeteroPlan::describe() const {
  std::ostringstream os;
  os << "hetero plan:";
  for (std::size_t i = 0; i < assignment.size(); ++i)
    os << ' ' << device_name(assignment[i]);
  os << " | total " << total_ms << " ms (transfers " << transfer_ms
     << " ms), FPGA-only " << fpga_only_ms << " ms, speedup "
     << speedup_vs_fpga_only() << "x";
  return os.str();
}

std::vector<std::array<double, kNumDevices>> hetero_latency_matrix(
    const CompiledProgram& prog, const ExecutionResult& fpga_run) {
  // CPU column uses the faster CPU framework model (DGL), GPU the faster
  // GPU one (PyG) — the planner should compete against each device's
  // best software stack.
  const PlatformSpec& cpu = framework_platforms()[1];  // DGL-CPU
  const PlatformSpec& gpu = framework_platforms()[2];  // PyG-GPU
  const std::int64_t v = prog.kernels.empty() ? 0 : prog.kernels.front().num_vertices;
  const std::int64_t adj_nnz =
      (prog.kernels.empty() ? 0 : prog.kernels.front().num_edges) + v;

  std::vector<std::array<double, kNumDevices>> lat;
  lat.reserve(prog.kernels.size());
  for (std::size_t i = 0; i < prog.kernels.size(); ++i) {
    const KernelSpec& k = prog.kernels[i].spec;
    std::array<double, kNumDevices> row{};
    row[static_cast<int>(DeviceKind::kCpu)] =
        platform_kernel_latency_s(cpu, k, v, adj_nnz) * 1e3;
    row[static_cast<int>(DeviceKind::kGpu)] =
        platform_kernel_latency_s(gpu, k, v, adj_nnz) * 1e3;
    row[static_cast<int>(DeviceKind::kFpga)] =
        prog.config.cycles_to_ms(fpga_run.kernels[i].makespan_cycles);
    lat.push_back(row);
  }
  return lat;
}

HeteroPlan plan_heterogeneous(const CompiledProgram& prog,
                              const ExecutionResult& fpga_run,
                              const HeteroOptions& options) {
  HeteroPlan plan;
  const std::size_t n = prog.kernels.size();
  if (n == 0 || fpga_run.kernels.size() != n) return plan;
  auto lat = hetero_latency_matrix(prog, fpga_run);

  // Transfer cost into kernel i: its input feature matrix crosses PCIe
  // when the producing kernel ran on a different device. Dense-equivalent
  // bytes scaled by the profiled density of the producing node.
  auto transfer_ms = [&](std::size_t i) {
    const KernelSpec& k = prog.kernels[i].spec;
    double density = k.input == kFromFeatures
                         ? prog.h0_profile.overall_density
                         : fpga_run.kernels[static_cast<std::size_t>(k.input)]
                               .output_density;
    double bytes = static_cast<double>(prog.kernels[i].num_vertices) *
                   static_cast<double>(k.in_dim) * 4.0 * std::max(density, 0.05);
    return (bytes / options.pcie_bytes_per_s + options.transfer_latency_s) * 1e3;
  };

  // DP over the chain: best[i][d] = min cost of kernels 0..i with kernel
  // i on device d. (Branch inputs — GraphSAGE's add_input — follow the
  // chain approximation; see DESIGN.md.)
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::array<double, kNumDevices>> best(
      n, {kInf, kInf, kInf});
  std::vector<std::array<int, kNumDevices>> from(n, {-1, -1, -1});
  for (int d = 0; d < kNumDevices; ++d) best[0][static_cast<std::size_t>(d)] = lat[0][static_cast<std::size_t>(d)];
  for (std::size_t i = 1; i < n; ++i) {
    double move = transfer_ms(i);
    for (int d = 0; d < kNumDevices; ++d) {
      for (int p = 0; p < kNumDevices; ++p) {
        double cost = best[i - 1][static_cast<std::size_t>(p)] +
                      (p == d ? 0.0 : move) + lat[i][static_cast<std::size_t>(d)];
        if (cost < best[i][static_cast<std::size_t>(d)]) {
          best[i][static_cast<std::size_t>(d)] = cost;
          from[i][static_cast<std::size_t>(d)] = p;
        }
      }
    }
  }

  // Recover the argmin path.
  int d_end = 0;
  for (int d = 1; d < kNumDevices; ++d)
    if (best[n - 1][static_cast<std::size_t>(d)] < best[n - 1][static_cast<std::size_t>(d_end)]) d_end = d;
  plan.assignment.assign(n, DeviceKind::kFpga);
  plan.kernel_ms.assign(n, 0.0);
  int d = d_end;
  for (std::size_t i = n; i-- > 0;) {
    plan.assignment[i] = static_cast<DeviceKind>(d);
    plan.kernel_ms[i] = lat[i][static_cast<std::size_t>(d)];
    d = i > 0 ? from[i][static_cast<std::size_t>(d)] : d;
  }
  plan.total_ms = best[n - 1][static_cast<std::size_t>(d_end)];
  for (std::size_t i = 0; i < n; ++i) {
    plan.fpga_only_ms += lat[i][static_cast<int>(DeviceKind::kFpga)];
    if (i > 0 && plan.assignment[i] != plan.assignment[i - 1])
      plan.transfer_ms += transfer_ms(i);
  }
  return plan;
}

}  // namespace dynasparse
