#pragma once
// Per-connection protocol state machine for the network front-end — the
// codec/FSM layer between one client socket and the NetServer (the idiom
// RIOT's packet codecs + control-protocol FSMs use: a connection is a
// small explicit state machine fed by the event loop, never a thread).
//
// States:
//
//   kOpen     normal duplex operation: inbound bytes accumulate until
//             whole frames extract (net/wire.hpp), outbound frames queue
//             and flush as the socket accepts them.
//   kDraining a fatal condition was answered (protocol error frame,
//             server shutdown notice): no more input is read; the
//             connection closes once the write buffer flushes (so the
//             peer actually receives the diagnosis — close-before-flush
//             is how servers produce undebuggable resets).
//   kClosed   torn down; the owner reaps it.
//
// Hardening mirrors util/strict_parse: the inbound buffer is bounded by
// the maximum frame size (a peer that sends more without ever completing
// a frame is hostile by definition), a hostile length prefix surfaces as
// a protocol error before any allocation (wire.hpp contract), and the
// outbound buffer is bounded so a non-reading peer cannot balloon server
// memory. The connection itself never interprets frame *bodies* — it
// extracts validated frames; the server decodes and acts.
//
// Single-threaded: every method runs on the event-loop thread.

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/wire.hpp"

namespace dynasparse {

class Connection {
 public:
  enum class State { kOpen, kDraining, kClosed };

  /// Caps chosen against frame-size facts: inbound only ever needs one
  /// maximal frame (+ prefix); outbound allows a deep response backlog
  /// before declaring the peer dead.
  static constexpr std::size_t kMaxInboundBytes =
      kFrameLenBytes + kMaxFramePayload;
  static constexpr std::size_t kMaxOutboundBytes = 4u << 20;

  /// Takes ownership of `fd` (closes it on destruction / close()).
  Connection(int fd, std::uint64_t id);
  ~Connection();
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_.get(); }
  std::uint64_t id() const { return id_; }
  State state() const { return state_; }
  bool closed() const { return state_ == State::kClosed; }

  /// Pump readable bytes: recv() until drained, extract every complete
  /// frame into `frames`. On EOF, a socket error, or a wire protocol
  /// violation the connection transitions: EOF/error -> kClosed;
  /// protocol violation -> protocol_error() is set and the caller is
  /// expected to answer it and begin_drain(). A kDraining/kClosed
  /// connection reads nothing (input after a fatal answer is noise).
  void on_readable(std::vector<WireFrame>& frames);

  /// Flush pending outbound bytes. kDraining connections transition to
  /// kClosed once the buffer empties; a write error closes immediately
  /// (the response is undeliverable — nothing further to say).
  void on_writable();

  /// Queue a complete frame and opportunistically flush (the common case
  /// — a response fitting the socket buffer — completes here, with no
  /// extra loop round-trip). Overflowing kMaxOutboundBytes closes the
  /// connection: the peer is not reading.
  void send(const std::vector<std::uint8_t>& frame);

  /// Stop reading; close once the write buffer drains.
  void begin_drain();
  /// Immediate teardown: marks kClosed. The fd itself stays open until
  /// the owner destroys the Connection (after unregistering it from the
  /// event loop), so the fd number cannot be reused while the loop still
  /// references it.
  void close();

  bool wants_write() const { return !out_.empty(); }
  /// The event-loop interest mask this connection currently needs.
  std::uint32_t interest() const;

  /// First wire-protocol violation observed on this connection, if any
  /// (sticky; one strike ends the conversation).
  const std::optional<std::string>& protocol_error() const {
    return protocol_error_;
  }

  /// Slow-loris accounting: a partial frame is sitting in the inbound
  /// buffer, and this is when its newest byte arrived. The server times
  /// out connections whose partial frame stops making progress.
  bool has_partial_frame() const { return state_ == State::kOpen && !in_.empty(); }
  std::chrono::steady_clock::time_point last_progress() const {
    return last_progress_;
  }

  /// Bytes/frames counters for the server's stats.
  std::int64_t frames_in() const { return frames_in_; }

 private:
  void extract_frames(std::vector<WireFrame>& frames);

  ScopedFd fd_;
  const std::uint64_t id_;
  State state_ = State::kOpen;
  std::vector<std::uint8_t> in_;
  std::vector<std::uint8_t> out_;
  std::size_t out_pos_ = 0;  // flushed prefix of out_
  std::optional<std::string> protocol_error_;
  std::chrono::steady_clock::time_point last_progress_;
  std::int64_t frames_in_ = 0;
};

}  // namespace dynasparse
