#pragma once
// Net-layer members of the closed error taxonomy (see
// service/errors.hpp for the rule and the full list).

#include <stdexcept>

namespace dynasparse {

/// Socket/loop setup failed (socket, bind, listen, pipe, ...): the
/// errno-bearing startup failures of NetServer and the event loop.
/// Unlike a per-request error this is fatal to start(); the CLI turns it
/// into one clean usage/abort message.
struct NetSetupError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

}  // namespace dynasparse
