#pragma once
// NetClient — blocking client for the dynasparse wire protocol
// (net/wire.hpp), used by tools/dynasparse_loadgen and the loopback
// tests. Deliberately simple: one TCP connection, blocking sends and
// receives, correlation ids assigned from a per-client counter.
//
// Pipelining: submit() returns immediately after the SUBMIT frame is on
// the wire; many requests may be in flight at once. Responses are read
// by await(corr) / await_any(); frames that answer a *different*
// correlation id are stashed and handed out when their turn comes, so
// out-of-order completion (the normal case for a concurrent service)
// costs nothing.
//
// Error surfaces, kept strictly apart:
//   NetError          — the transport failed (connect refused, EOF,
//                       recv timeout). The conversation is over.
//   WireProtocolError — the server sent malformed bytes. Also fatal.
//   Outcome.error     — the *request* failed; the wire code maps 1:1 to
//                       the service taxonomy, and rethrow() raises the
//                       very exception type a local wait() would have.
//
// Thread-safety: sends and receives are internally serialized (two
// mutexes), so ONE submitter thread plus ONE awaiter thread — the
// loadgen's open-loop shape — is safe: submit() only takes the send
// lock, await()/await_any() only the receive lock. The composite calls
// (request, poll_state, cancel, stats) take both in sequence and must
// not run concurrently with an awaiter, since they could steal each
// other's replies.

#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/event_loop.hpp"  // ScopedFd
#include "net/wire.hpp"
#include "util/ordered_mutex.hpp"

namespace dynasparse {

/// Transport-level failure: the socket, not the request.
struct NetError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

class NetClient {
 public:
  /// Connect (blocking) to host:port. `io_timeout_ms` > 0 bounds every
  /// subsequent blocking receive (SO_RCVTIMEO); a timeout surfaces as
  /// NetError. Throws NetError if the connection cannot be established.
  NetClient(const std::string& host, std::uint16_t port,
            std::int64_t io_timeout_ms = 10000);
  ~NetClient() = default;
  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// How one request ended: exactly one of result/error is meaningful.
  struct Outcome {
    std::uint64_t corr = 0;
    bool ok = false;
    WireResult result;  // valid when ok
    WireError error;    // valid when !ok
    /// For !ok: throw the exception a local InferenceService::wait would
    /// have thrown (wire.hpp rethrow_wire_error).
    [[noreturn]] void rethrow() const { rethrow_wire_error(error.code, error.message); }
  };

  /// Send one SUBMIT; returns the correlation id to await. spec.repeat
  /// must be 1 (one frame = one request).
  std::uint64_t submit(const StreamRequestSpec& spec);

  /// Block until `corr`'s terminal RESULT/ERROR arrives (other frames
  /// are stashed for their own awaiters).
  Outcome await(std::uint64_t corr);
  /// Block until *any* terminal RESULT/ERROR arrives — stashed frames
  /// first, in arrival order.
  Outcome await_any();

  /// submit + await + rethrow-on-error, in one call.
  WireResult request(const StreamRequestSpec& spec);

  /// POLL a live correlation id: 0=queued 1=running 2=done 3=failed.
  /// Throws std::invalid_argument if the server no longer knows the id
  /// (it already answered, or it never existed).
  std::uint8_t poll_state(std::uint64_t corr);
  /// CANCEL a live correlation id; true iff the abort took (the terminal
  /// frame for `corr` will then be a kCancelled ERROR). Throws
  /// std::invalid_argument for an unknown id — mirroring the local
  /// InferenceService::cancel contract.
  bool cancel(std::uint64_t corr);
  /// STATS: the server's key=value counters line.
  std::string stats();

  /// Half-close our sending side (the server sees EOF and reaps the
  /// connection, cancelling anything still in flight — the disconnect
  /// path the tests drive deliberately).
  void shutdown_send();

  int fd() const { return fd_.get(); }

 private:
  void send_all(const std::vector<std::uint8_t>& bytes);
  /// Read exactly one frame off the socket (blocking).
  WireFrame next_frame();
  static Outcome to_outcome(const WireFrame& f);
  /// The reply to a POLL/CANCEL on `corr`: kState, or a kUnknownRequest
  /// ERROR. A racing terminal RESULT/ERROR for the same corr is stashed,
  /// not consumed — the awaiter still gets it.
  WireFrame control_reply(std::uint64_t corr);

  ScopedFd fd_;
  OrderedMutex send_mu_{LockRank::kNetClientSend};
  OrderedMutex recv_mu_{LockRank::kNetClientRecv};
  std::uint64_t next_corr_ = 1;  // guarded by send_mu_
  std::vector<std::uint8_t> rbuf_;          // guarded by recv_mu_
  std::vector<WireFrame> stash_;            // guarded by recv_mu_
};

}  // namespace dynasparse
