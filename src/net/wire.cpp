#include "net/wire.hpp"

#include <cctype>
#include <cmath>
#include <cstring>

#include "service/errors.hpp"
#include "service/inference_service.hpp"
#include "util/cancellation.hpp"

namespace dynasparse {

namespace {

// ---- little-endian primitives ----------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v), "f64 must be 8 bytes");
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint64_t read_u64_raw(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

/// Bounds-checked cursor over a frame body. Every getter validates the
/// remaining length BEFORE touching (or allocating for) the bytes, and
/// finish() rejects trailing garbage — the whole-token discipline.
class Reader {
 public:
  Reader(const WireFrame& f, const char* what)
      : p_(f.body.data()), n_(f.body.size()), what_(what) {}

  std::uint8_t u8() {
    need(1, "u8");
    return p_[pos_++];
  }
  std::uint16_t u16() {
    need(2, "u16");
    std::uint16_t v = static_cast<std::uint16_t>(
        p_[pos_] | (static_cast<std::uint16_t>(p_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
  }
  std::uint32_t u32() {
    need(4, "u32");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(p_[pos_ + i]) << (8 * i);
    pos_ += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8, "u64");
    std::uint64_t v = read_u64_raw(p_ + pos_);
    pos_ += 8;
    return v;
  }
  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  /// A length-prefixed string: the declared length is checked against
  /// both `cap` and the bytes actually present before the string is
  /// allocated.
  std::string str(std::size_t len, std::size_t cap, const char* field) {
    if (len > cap)
      throw WireProtocolError(std::string(what_) + ": " + field + " length " +
                              std::to_string(len) + " exceeds bound " +
                              std::to_string(cap));
    need(len, field);
    std::string s(reinterpret_cast<const char*>(p_ + pos_), len);
    pos_ += len;
    return s;
  }
  void finish() const {
    if (pos_ != n_)
      throw WireProtocolError(std::string(what_) + ": " +
                              std::to_string(n_ - pos_) +
                              " trailing bytes after body");
  }

 private:
  void need(std::size_t k, const char* field) const {
    if (n_ - pos_ < k)
      throw WireProtocolError(std::string(what_) + ": truncated body (need " +
                              std::to_string(k) + " bytes for " + field +
                              ", have " + std::to_string(n_ - pos_) + ")");
  }
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t pos_ = 0;
  const char* what_;
};

/// Start a frame: length placeholder + header. finish_frame backfills
/// the length prefix.
std::vector<std::uint8_t> begin_frame(FrameType type, std::uint64_t corr) {
  std::vector<std::uint8_t> out;
  put_u64(out, 0);  // payload length, backfilled
  put_u8(out, kWireVersion);
  put_u8(out, static_cast<std::uint8_t>(type));
  put_u64(out, corr);
  return out;
}

std::vector<std::uint8_t> finish_frame(std::vector<std::uint8_t> out) {
  std::uint64_t payload = out.size() - kFrameLenBytes;
  for (int i = 0; i < 8; ++i)
    out[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(payload >> (8 * i));
  return out;
}

// ---- enum <-> wire byte maps (explicit, not static_cast round-trips, so
// ---- a reordered C++ enum can never silently change the wire format) ------

std::uint8_t model_code(GnnModelKind k) {
  switch (k) {
    case GnnModelKind::kGcn: return 0;
    case GnnModelKind::kSage: return 1;
    case GnnModelKind::kGin: return 2;
    case GnnModelKind::kSgc: return 3;
  }
  return 0;
}

GnnModelKind model_from_code(std::uint8_t c) {
  switch (c) {
    case 0: return GnnModelKind::kGcn;
    case 1: return GnnModelKind::kSage;
    case 2: return GnnModelKind::kGin;
    case 3: return GnnModelKind::kSgc;
  }
  throw WireProtocolError("SUBMIT: unknown model code " + std::to_string(c));
}

std::uint8_t strategy_code(MappingStrategy s) {
  switch (s) {
    case MappingStrategy::kStatic1: return 0;
    case MappingStrategy::kStatic2: return 1;
    case MappingStrategy::kDynamic: return 2;
  }
  return 2;
}

MappingStrategy strategy_from_code(std::uint8_t c) {
  switch (c) {
    case 0: return MappingStrategy::kStatic1;
    case 1: return MappingStrategy::kStatic2;
    case 2: return MappingStrategy::kDynamic;
  }
  throw WireProtocolError("SUBMIT: unknown strategy code " + std::to_string(c));
}

bool known_frame_type(std::uint8_t t) {
  switch (static_cast<FrameType>(t)) {
    case FrameType::kSubmit:
    case FrameType::kPoll:
    case FrameType::kCancel:
    case FrameType::kStats:
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kState:
    case FrameType::kStatsReply:
      return true;
  }
  return false;
}

}  // namespace

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::kSubmit: return "SUBMIT";
    case FrameType::kPoll: return "POLL";
    case FrameType::kCancel: return "CANCEL";
    case FrameType::kStats: return "STATS";
    case FrameType::kResult: return "RESULT";
    case FrameType::kError: return "ERROR";
    case FrameType::kState: return "STATE";
    case FrameType::kStatsReply: return "STATS_REPLY";
  }
  return "?";
}

const char* wire_error_name(WireErrorCode c) {
  switch (c) {
    case WireErrorCode::kProtocol: return "protocol";
    case WireErrorCode::kCancelled: return "cancelled";
    case WireErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case WireErrorCode::kAdmissionRejected: return "admission_rejected";
    case WireErrorCode::kExecutionError: return "execution_error";
    case WireErrorCode::kShuttingDown: return "shutting_down";
    case WireErrorCode::kUnknownRequest: return "unknown_request";
    case WireErrorCode::kInvalidRequest: return "invalid_request";
  }
  return "?";
}

void rethrow_wire_error(WireErrorCode code, const std::string& message) {
  switch (code) {
    case WireErrorCode::kCancelled: throw CancelledError(message);
    case WireErrorCode::kDeadlineExceeded: throw DeadlineExceededError(message);
    case WireErrorCode::kAdmissionRejected:
      throw AdmissionRejectedError(message);
    case WireErrorCode::kExecutionError: throw ExecutionError(message);
    case WireErrorCode::kShuttingDown: throw ShutdownError(message);
    case WireErrorCode::kUnknownRequest:
    case WireErrorCode::kInvalidRequest:
      throw std::invalid_argument(message);
    case WireErrorCode::kProtocol: break;
  }
  throw WireProtocolError(message);
}

bool try_extract_frame(const std::uint8_t* data, std::size_t size,
                       WireFrame& out, std::size_t& consumed) {
  if (size < kFrameLenBytes) return false;
  // The raw prefix is validated as a u64 BEFORE it is narrowed or used
  // to size anything: 2^63, SIZE_MAX, and 0 all die right here.
  const std::uint64_t payload = read_u64_raw(data);
  if (payload > kMaxFramePayload)
    throw WireProtocolError("frame payload length " + std::to_string(payload) +
                            " exceeds bound " +
                            std::to_string(kMaxFramePayload));
  if (payload < kFrameHeaderBytes)
    throw WireProtocolError("frame payload length " + std::to_string(payload) +
                            " shorter than the " +
                            std::to_string(kFrameHeaderBytes) +
                            "-byte frame header");
  if (size - kFrameLenBytes < payload) return false;  // need more bytes
  const std::uint8_t* p = data + kFrameLenBytes;
  const std::uint8_t version = p[0];
  if (version != kWireVersion)
    throw WireProtocolError("unsupported wire version " +
                            std::to_string(version) + " (expected " +
                            std::to_string(kWireVersion) + ")");
  const std::uint8_t type = p[1];
  if (!known_frame_type(type))
    throw WireProtocolError("unknown frame type " + std::to_string(type));
  out.version = version;
  out.type = static_cast<FrameType>(type);
  out.corr = read_u64_raw(p + 2);
  out.body.assign(p + kFrameHeaderBytes, p + payload);
  consumed = kFrameLenBytes + static_cast<std::size_t>(payload);
  return true;
}

std::vector<std::uint8_t> encode_submit(std::uint64_t corr,
                                        const StreamRequestSpec& spec) {
  if (spec.dataset.empty() || spec.dataset.size() > kMaxDatasetTagBytes)
    throw std::invalid_argument("SUBMIT: dataset tag length must be in [1, " +
                                std::to_string(kMaxDatasetTagBytes) + "]");
  if (spec.repeat != 1)
    throw std::invalid_argument("SUBMIT: repeat must be 1 (one frame = one "
                                "request; expand the stream first)");
  std::vector<std::uint8_t> out = begin_frame(FrameType::kSubmit, corr);
  put_u8(out, static_cast<std::uint8_t>(spec.dataset.size()));
  out.insert(out.end(), spec.dataset.begin(), spec.dataset.end());
  put_u8(out, model_code(spec.model));
  put_u8(out, strategy_code(spec.strategy));
  put_u32(out, static_cast<std::uint32_t>(spec.scale));
  put_u64(out, static_cast<std::uint64_t>(spec.hidden));
  put_f64(out, spec.prune);
  put_u64(out, spec.seed);
  put_u64(out, static_cast<std::uint64_t>(spec.deadline_ms));
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_poll(std::uint64_t corr) {
  return finish_frame(begin_frame(FrameType::kPoll, corr));
}

std::vector<std::uint8_t> encode_cancel(std::uint64_t corr) {
  return finish_frame(begin_frame(FrameType::kCancel, corr));
}

std::vector<std::uint8_t> encode_stats(std::uint64_t corr) {
  return finish_frame(begin_frame(FrameType::kStats, corr));
}

std::vector<std::uint8_t> encode_result(std::uint64_t corr,
                                        const WireResult& result) {
  std::vector<std::uint8_t> out = begin_frame(FrameType::kResult, corr);
  put_u64(out, result.fingerprint);
  put_f64(out, result.sim_latency_ms);
  put_f64(out, result.server_ms);
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_error(std::uint64_t corr, WireErrorCode code,
                                       const std::string& message) {
  std::string msg = message.substr(0, kMaxErrorMessageBytes);
  std::vector<std::uint8_t> out = begin_frame(FrameType::kError, corr);
  put_u8(out, static_cast<std::uint8_t>(code));
  put_u16(out, static_cast<std::uint16_t>(msg.size()));
  out.insert(out.end(), msg.begin(), msg.end());
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_state(std::uint64_t corr, std::uint8_t value) {
  std::vector<std::uint8_t> out = begin_frame(FrameType::kState, corr);
  put_u8(out, value);
  return finish_frame(std::move(out));
}

std::vector<std::uint8_t> encode_stats_reply(std::uint64_t corr,
                                             const std::string& text) {
  // The frame bound is the real limit; truncate rather than build an
  // unsendable frame (stats text is diagnostic, not data).
  const std::size_t cap = kMaxFramePayload - kFrameHeaderBytes - 4;
  std::string body = text.substr(0, cap);
  std::vector<std::uint8_t> out = begin_frame(FrameType::kStatsReply, corr);
  put_u32(out, static_cast<std::uint32_t>(body.size()));
  out.insert(out.end(), body.begin(), body.end());
  return finish_frame(std::move(out));
}

StreamRequestSpec decode_submit(const WireFrame& f) {
  if (f.type != FrameType::kSubmit)
    throw WireProtocolError("decode_submit on a non-SUBMIT frame");
  Reader r(f, "SUBMIT");
  StreamRequestSpec spec;
  const std::uint8_t tag_len = r.u8();
  if (tag_len == 0)
    throw WireProtocolError("SUBMIT: empty dataset tag");
  spec.dataset = r.str(tag_len, kMaxDatasetTagBytes, "dataset tag");
  for (char c : spec.dataset)
    if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '-'))
      throw WireProtocolError("SUBMIT: dataset tag contains byte " +
                              std::to_string(static_cast<unsigned char>(c)) +
                              " outside [A-Za-z0-9_-]");
  spec.model = model_from_code(r.u8());
  spec.strategy = strategy_from_code(r.u8());
  const std::uint32_t scale = r.u32();
  if (scale > kMaxWireScale)
    throw WireProtocolError("SUBMIT: scale " + std::to_string(scale) +
                            " exceeds bound " + std::to_string(kMaxWireScale));
  spec.scale = static_cast<int>(scale);
  const std::uint64_t hidden = r.u64();
  if (hidden > kMaxWireHidden)
    throw WireProtocolError("SUBMIT: hidden " + std::to_string(hidden) +
                            " exceeds bound " + std::to_string(kMaxWireHidden));
  spec.hidden = static_cast<std::int64_t>(hidden);
  spec.prune = r.f64();
  if (!(spec.prune >= 0.0 && spec.prune < 1.0) || std::isnan(spec.prune))
    throw WireProtocolError("SUBMIT: prune outside [0, 1)");
  spec.seed = r.u64();
  const std::uint64_t deadline = r.u64();
  if (deadline > kMaxWireDeadlineMs)
    throw WireProtocolError("SUBMIT: deadline_ms " + std::to_string(deadline) +
                            " exceeds bound " +
                            std::to_string(kMaxWireDeadlineMs));
  spec.deadline_ms = static_cast<std::int64_t>(deadline);
  spec.repeat = 1;
  r.finish();
  return spec;
}

WireResult decode_result(const WireFrame& f) {
  if (f.type != FrameType::kResult)
    throw WireProtocolError("decode_result on a non-RESULT frame");
  Reader r(f, "RESULT");
  WireResult out;
  out.fingerprint = r.u64();
  out.sim_latency_ms = r.f64();
  out.server_ms = r.f64();
  r.finish();
  return out;
}

WireError decode_error(const WireFrame& f) {
  if (f.type != FrameType::kError)
    throw WireProtocolError("decode_error on a non-ERROR frame");
  Reader r(f, "ERROR");
  WireError out;
  const std::uint8_t code = r.u8();
  if (code < static_cast<std::uint8_t>(WireErrorCode::kProtocol) ||
      code > static_cast<std::uint8_t>(WireErrorCode::kInvalidRequest))
    throw WireProtocolError("ERROR: unknown error code " + std::to_string(code));
  out.code = static_cast<WireErrorCode>(code);
  const std::uint16_t len = r.u16();
  out.message = r.str(len, kMaxErrorMessageBytes, "message");
  r.finish();
  return out;
}

std::uint8_t decode_state(const WireFrame& f) {
  if (f.type != FrameType::kState)
    throw WireProtocolError("decode_state on a non-STATE frame");
  Reader r(f, "STATE");
  std::uint8_t v = r.u8();
  r.finish();
  return v;
}

std::string decode_stats_reply(const WireFrame& f) {
  if (f.type != FrameType::kStatsReply)
    throw WireProtocolError("decode_stats_reply on a non-STATS_REPLY frame");
  Reader r(f, "STATS_REPLY");
  const std::uint32_t len = r.u32();
  std::string text = r.str(len, kMaxFramePayload, "stats text");
  r.finish();
  return text;
}

void decode_empty(const WireFrame& f) {
  Reader r(f, frame_type_name(f.type));
  r.finish();
}

}  // namespace dynasparse
