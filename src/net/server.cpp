#include "net/server.hpp"

#include <cerrno>
#include <cstring>
#include <sstream>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/fault_injection.hpp"
#include "net/errors.hpp"
#include "util/logging.hpp"

namespace dynasparse {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetSetupError(what + ": " + std::strerror(errno));
}

std::uint8_t state_code(RequestState s) {
  switch (s) {
    case RequestState::kQueued: return 0;
    case RequestState::kRunning: return 1;
    case RequestState::kDone: return 2;
    case RequestState::kFailed: return 3;
  }
  return 3;
}

}  // namespace

NetServer::NetServer(InferenceService& service, NetServerOptions options)
    : service_(service), options_(std::move(options)) {
  if (options_.backlog <= 0)
    throw std::invalid_argument("NetServerOptions::backlog must be > 0");
  if (options_.max_connections == 0)
    throw std::invalid_argument("NetServerOptions::max_connections must be > 0");
  if (options_.frame_timeout_ms < 0)
    throw std::invalid_argument("NetServerOptions::frame_timeout_ms must be >= 0");
  if (options_.completion_poll_ms <= 0)
    throw std::invalid_argument("NetServerOptions::completion_poll_ms must be > 0");
}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  std::lock_guard<OrderedMutex> lk(lifecycle_mu_);
  if (thread_.joinable())
    // Programming error (double start), not an environment failure.
    throw std::logic_error("NetServer already started");

  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_errno("socket");
  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1)
    throw std::invalid_argument("NetServer: bad listen host " + options_.host);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    throw_errno("bind " + options_.host + ":" + std::to_string(options_.port));
  if (::listen(fd.get(), options_.backlog) != 0) throw_errno("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0)
    throw_errno("getsockname");
  port_ = ntohs(bound.sin_port);

  set_nonblocking(fd.get());
  listener_ = std::move(fd);
  loop_.add(listener_.get(), EventLoop::kRead,
            [this](std::uint32_t ev) { handle_listener(ev); });

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { loop_main(); });
}

void NetServer::stop() {
  std::lock_guard<OrderedMutex> lk(lifecycle_mu_);
  if (!thread_.joinable()) return;
  running_.store(false, std::memory_order_release);
  loop_.wake();
  thread_.join();
}

NetServerStats NetServer::stats() const {
  std::lock_guard<OrderedMutex> lk(stats_mu_);
  return stats_;
}

void NetServer::bump(std::int64_t NetServerStats::*field) {
  std::lock_guard<OrderedMutex> lk(stats_mu_);
  ++(stats_.*field);
}

int NetServer::poll_timeout_ms() const {
  if (!pending_.empty()) return options_.completion_poll_ms;
  for (const auto& [id, conn] : conns_) {
    (void)id;
    if (conn->has_partial_frame()) return 20;  // slow-loris watch
  }
  return 200;
}

void NetServer::loop_main() {
  while (running_.load(std::memory_order_acquire)) {
    loop_.poll_once(poll_timeout_ms());
    finalize_completions();
    check_frame_timeouts();
    reap_connections();
    for (auto& [id, conn] : conns_) {
      (void)id;
      refresh_interest(*conn);
    }
  }
  // Shutdown: cancel every in-flight request, consume every slot (no
  // leak), tell every surviving owner the server is going down, close.
  for (auto& [rid, p] : pending_) {
    (void)p;
    try {
      service_.cancel(rid);
    } catch (const std::exception&) {
      // already terminal or service gone — wait() below settles it
    }
  }
  for (auto& [rid, p] : pending_) {
    try {
      (void)service_.wait(rid);
    } catch (const std::exception&) {
      // outcome irrelevant: the slot is consumed, which is the contract
    }
    for (auto& [cid, conn] : conns_) {
      if (cid == p.conn_id && !conn->closed()) {
        conn->send(encode_error(p.corr, WireErrorCode::kShuttingDown,
                                "server shutting down"));
        bump(&NetServerStats::errors_sent);
      }
    }
  }
  pending_.clear();
  corr_index_.clear();
  for (auto& [id, conn] : conns_) {
    (void)id;
    if (loop_.contains(conn->fd())) loop_.remove(conn->fd());
  }
  conns_.clear();  // destructors close the sockets
  if (listener_.valid()) {
    loop_.remove(listener_.get());
    listener_.reset();
  }
  materialized_.clear();
}

void NetServer::handle_listener(std::uint32_t events) {
  if (!(events & EventLoop::kRead)) return;
  while (true) {
    int fd = ::accept(listener_.get(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      log_warn("NetServer accept failed: " + std::string(std::strerror(errno)));
      return;
    }
    // Chaos site net.accept / connection cap: refuse by closing — the
    // client observes an immediate EOF, the canonical "try again"
    // signal, and established connections are untouched.
    if (conns_.size() >= options_.max_connections || fault_point(kFaultNetAccept)) {
      ::close(fd);
      bump(&NetServerStats::refused);
      continue;
    }
    try {
      set_nonblocking(fd);
    } catch (const std::exception& e) {
      ::close(fd);
      log_warn(std::string("NetServer: ") + e.what());
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    const std::uint64_t conn_id = next_conn_id_++;
    auto conn = std::make_unique<Connection>(fd, conn_id);
    loop_.add(fd, conn->interest(),
              [this, conn_id](std::uint32_t ev) { handle_connection(conn_id, ev); });
    conns_.emplace(conn_id, std::move(conn));
    bump(&NetServerStats::accepted);
  }
}

void NetServer::handle_connection(std::uint64_t conn_id, std::uint32_t events) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& conn = *it->second;
  if (events & EventLoop::kError) {
    conn.close();
    return;
  }
  if (events & EventLoop::kWrite) conn.on_writable();
  if (events & EventLoop::kRead) {
    std::vector<WireFrame> frames;
    conn.on_readable(frames);
    // Frames extracted before a violation — or before an EOF in the same
    // read burst (submit-then-disconnect is a legitimate client shape) —
    // are valid: serve them all. Responses to an already-dead connection
    // fall out in Connection::send (a no-op on kClosed), and the reap
    // pass then cancels whatever these frames put in flight.
    for (const WireFrame& f : frames) {
      bump(&NetServerStats::frames);
      dispatch_frame(conn, f);
    }
    if (conn.protocol_error() && conn.state() == Connection::State::kOpen) {
      bump(&NetServerStats::protocol_errors);
      bump(&NetServerStats::errors_sent);
      conn.send(encode_error(0, WireErrorCode::kProtocol,
                             *conn.protocol_error()));
      conn.begin_drain();
    }
  }
  refresh_interest(conn);
}

void NetServer::dispatch_frame(Connection& conn, const WireFrame& frame) {
  auto protocol_violation = [&](const std::string& msg) {
    bump(&NetServerStats::protocol_errors);
    bump(&NetServerStats::errors_sent);
    conn.send(encode_error(frame.corr, WireErrorCode::kProtocol, msg));
    conn.begin_drain();
  };
  switch (frame.type) {
    case FrameType::kSubmit:
      handle_submit(conn, frame);
      return;
    case FrameType::kPoll: {
      try {
        decode_empty(frame);
      } catch (const WireProtocolError& e) {
        protocol_violation(e.what());
        return;
      }
      auto& index = corr_index_[conn.id()];
      auto pit = index.find(frame.corr);
      if (pit == index.end()) {
        bump(&NetServerStats::errors_sent);
        conn.send(encode_error(frame.corr, WireErrorCode::kUnknownRequest,
                               "unknown correlation id (never submitted, or "
                               "already resolved)"));
        return;
      }
      conn.send(encode_state(frame.corr, state_code(service_.state(pit->second))));
      return;
    }
    case FrameType::kCancel: {
      try {
        decode_empty(frame);
      } catch (const WireProtocolError& e) {
        protocol_violation(e.what());
        return;
      }
      auto& index = corr_index_[conn.id()];
      auto pit = index.find(frame.corr);
      if (pit == index.end()) {
        bump(&NetServerStats::errors_sent);
        conn.send(encode_error(frame.corr, WireErrorCode::kUnknownRequest,
                               "unknown correlation id (never submitted, or "
                               "already resolved)"));
        return;
      }
      bool cancelled = false;
      try {
        cancelled = service_.cancel(pit->second);
      } catch (const std::invalid_argument&) {
        cancelled = false;  // slot raced to terminal; the RESULT/ERROR is coming
      }
      conn.send(encode_state(frame.corr, cancelled ? 1 : 0));
      return;
    }
    case FrameType::kStats: {
      try {
        decode_empty(frame);
      } catch (const WireProtocolError& e) {
        protocol_violation(e.what());
        return;
      }
      CacheStats cs = service_.cache_stats();
      RobustnessStats rs = service_.robustness_stats();
      AdmissionStats as = service_.admission_stats();
      MemoryBudgetStats ms = service_.memory_budget_stats();
      TilePoolStats ps = service_.tile_pool_stats();
      BatchStats bs = service_.batch_stats();
      NetServerStats ns = stats();
      std::ostringstream os;
      os << "connections=" << conns_.size() << " accepted=" << ns.accepted
         << " refused=" << ns.refused << " frames=" << ns.frames
         << " submits=" << ns.submits << " results=" << ns.results
         << " errors_sent=" << ns.errors_sent
         << " protocol_errors=" << ns.protocol_errors
         << " timeouts=" << ns.timeouts
         << " disconnect_cancels=" << ns.disconnect_cancels
         << " cache_hits=" << cs.hits << " cache_misses=" << cs.misses
         << " admission_accepted=" << as.accepted
         << " admission_rejected=" << as.rejected
         << " admission_shed=" << as.shed << " cancelled=" << rs.cancelled
         << " expired_in_queue=" << rs.expired_in_queue
         << " expired_running=" << rs.expired_running
         << " execution_failures=" << rs.execution_failures
         << " budget_limit=" << ms.limit_bytes << " budget_bytes=" << ms.bytes
         << " budget_high_water=" << ms.high_water
         << " pool_entries=" << ps.entries << " pool_bytes=" << ps.bytes
         << " pool_shared_refs=" << ps.shared_refs
         << " batches_formed=" << bs.batches_formed
         << " batched_requests=" << bs.batched_requests
         << " fused_requests=" << bs.fused_requests
         << " fused_kernels=" << bs.fused_kernels
         << " batch_occupancy=" << bs.mean_occupancy();
      conn.send(encode_stats_reply(frame.corr, os.str()));
      return;
    }
    case FrameType::kResult:
    case FrameType::kError:
    case FrameType::kState:
    case FrameType::kStatsReply:
      break;
  }
  protocol_violation(std::string("client sent a server-to-client frame type ") +
                     frame_type_name(frame.type));
}

ServiceRequest NetServer::materialize_cached(const StreamRequestSpec& spec) {
  StreamRequestSpec content = spec;
  content.deadline_ms = 0;  // deadline is per-submit, not part of the content
  const std::string key = content.to_line();
  auto it = materialized_.find(key);
  if (it == materialized_.end()) {
    if (materialized_.size() >= 256) materialized_.clear();  // crude bound
    it = materialized_.emplace(key, materialize_request(content)).first;
  }
  ServiceRequest req = it->second;  // shared_ptr copies: cheap
  req.deadline_ms = spec.deadline_ms;
  return req;
}

void NetServer::handle_submit(Connection& conn, const WireFrame& frame) {
  StreamRequestSpec spec;
  try {
    spec = decode_submit(frame);
  } catch (const WireProtocolError& e) {
    bump(&NetServerStats::protocol_errors);
    bump(&NetServerStats::errors_sent);
    conn.send(encode_error(frame.corr, WireErrorCode::kProtocol, e.what()));
    conn.begin_drain();
    return;
  }
  auto& index = corr_index_[conn.id()];
  if (index.count(frame.corr)) {
    // Reusing a live correlation id would make responses ambiguous: a
    // protocol-FSM violation, not a request failure.
    bump(&NetServerStats::protocol_errors);
    bump(&NetServerStats::errors_sent);
    conn.send(encode_error(frame.corr, WireErrorCode::kProtocol,
                           "correlation id already in flight on this "
                           "connection"));
    conn.begin_drain();
    return;
  }
  ServiceRequest req;
  try {
    req = materialize_cached(spec);
  } catch (const std::exception& e) {
    // Well-formed frame, unusable request (unknown dataset tag, ...).
    bump(&NetServerStats::errors_sent);
    conn.send(encode_error(frame.corr, WireErrorCode::kInvalidRequest, e.what()));
    return;
  }
  RequestId id = 0;
  try {
    id = service_.submit(std::move(req));
  } catch (const std::invalid_argument& e) {
    bump(&NetServerStats::errors_sent);
    conn.send(encode_error(frame.corr, WireErrorCode::kInvalidRequest, e.what()));
    return;
  } catch (const std::exception& e) {
    // The submit/shutdown race: the service refused cleanly, so the wire
    // answer is a typed kShuttingDown — never a silently dropped frame.
    bump(&NetServerStats::errors_sent);
    conn.send(encode_error(frame.corr, WireErrorCode::kShuttingDown, e.what()));
    return;
  }
  Pending p;
  p.conn_id = conn.id();
  p.corr = frame.corr;
  p.request = id;
  p.submitted = std::chrono::steady_clock::now();
  pending_.emplace(id, p);
  index.emplace(frame.corr, id);
  bump(&NetServerStats::submits);
}

void NetServer::finalize_completions() {
  if (pending_.empty()) return;
  std::vector<RequestId> done;
  for (const auto& [rid, p] : pending_) {
    (void)p;
    if (service_.done(rid)) done.push_back(rid);
  }
  for (RequestId rid : done) {
    auto pit = pending_.find(rid);
    Pending p = pit->second;
    pending_.erase(pit);
    auto cit = conns_.find(p.conn_id);
    Connection* conn =
        (cit != conns_.end() && !cit->second->closed()) ? cit->second.get()
                                                        : nullptr;
    if (p.conn_id != 0) {
      auto iit = corr_index_.find(p.conn_id);
      if (iit != corr_index_.end()) iit->second.erase(p.corr);
    }
    // wait() completes immediately (done(id) was true) and consumes the
    // slot — orphaned requests (owner disconnected) are consumed too, so
    // no slot ever leaks.
    std::vector<std::uint8_t> response;
    try {
      InferenceReport rep = service_.wait(rid);
      WireResult result;
      result.fingerprint = rep.deterministic_fingerprint();
      result.sim_latency_ms = rep.latency_ms;
      result.server_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - p.submitted)
                             .count();
      response = encode_result(p.corr, result);
      bump(&NetServerStats::results);
    } catch (const CancelledError& e) {
      response = encode_error(p.corr, WireErrorCode::kCancelled, e.what());
    } catch (const DeadlineExceededError& e) {
      response = encode_error(p.corr, WireErrorCode::kDeadlineExceeded, e.what());
    } catch (const AdmissionRejectedError& e) {
      response = encode_error(p.corr, WireErrorCode::kAdmissionRejected, e.what());
    } catch (const ExecutionError& e) {
      response = encode_error(p.corr, WireErrorCode::kExecutionError, e.what());
    } catch (const std::exception& e) {
      response = encode_error(p.corr, WireErrorCode::kShuttingDown, e.what());
    }
    if (conn) {
      if (response[kFrameLenBytes + 1] ==
          static_cast<std::uint8_t>(FrameType::kError))
        bump(&NetServerStats::errors_sent);
      conn->send(response);
      refresh_interest(*conn);
    }
  }
}

void NetServer::check_frame_timeouts() {
  if (options_.frame_timeout_ms <= 0) return;
  const auto now = std::chrono::steady_clock::now();
  for (auto& [id, conn] : conns_) {
    (void)id;
    if (!conn->has_partial_frame()) continue;
    const double stalled_ms =
        std::chrono::duration<double, std::milli>(now - conn->last_progress())
            .count();
    if (stalled_ms < static_cast<double>(options_.frame_timeout_ms)) continue;
    // Slow loris: a partial frame that stopped progressing. One typed
    // answer, then the connection is gone — other connections never
    // waited on it (the loop is non-blocking throughout).
    bump(&NetServerStats::timeouts);
    bump(&NetServerStats::errors_sent);
    conn->send(encode_error(0, WireErrorCode::kProtocol,
                            "frame timeout: partial frame stalled for " +
                                std::to_string(options_.frame_timeout_ms) +
                                " ms"));
    conn->begin_drain();
  }
}

void NetServer::reap_connections() {
  for (auto it = conns_.begin(); it != conns_.end();) {
    Connection& conn = *it->second;
    if (!conn.closed()) {
      ++it;
      continue;
    }
    // A dropped connection maps onto cancel(id): its in-flight requests
    // abort cooperatively, and finalize_completions later consumes their
    // slots (conn_id = 0 marks them ownerless).
    auto iit = corr_index_.find(conn.id());
    if (iit != corr_index_.end()) {
      for (const auto& [corr, rid] : iit->second) {
        (void)corr;
        auto pit = pending_.find(rid);
        if (pit != pending_.end()) pit->second.conn_id = 0;
        try {
          if (service_.cancel(rid)) bump(&NetServerStats::disconnect_cancels);
        } catch (const std::exception&) {
          // already terminal — finalize will consume it regardless
        }
      }
      corr_index_.erase(iit);
    }
    if (loop_.contains(conn.fd())) loop_.remove(conn.fd());
    it = conns_.erase(it);
  }
}

void NetServer::refresh_interest(Connection& conn) {
  if (conn.closed() || !loop_.contains(conn.fd())) return;
  loop_.set_interest(conn.fd(), conn.interest());
}

}  // namespace dynasparse
