#pragma once
// NetServer — the concurrent TCP serving front-end over InferenceService.
//
// One event-loop thread (net/event_loop.hpp, poll-based) owns the
// listener and every Connection (net/connection.hpp); the
// InferenceService's worker threads execute requests exactly as they do
// for local submitters — the front-end is a protocol adapter, not a
// second execution engine. The loop thread:
//
//   1. accepts connections (bounded by max_connections; the chaos site
//      net.accept can refuse one, which a client observes as an
//      immediate close);
//   2. extracts frames and dispatches them: SUBMIT materializes the
//      StreamRequestSpec deterministically (request_stream.hpp, with a
//      small memo so repeat-heavy streams regenerate each unique content
//      once) and feeds InferenceService::submit — admission control,
//      deadlines, caches, and the fault injector all apply unchanged;
//   3. ticks: completed requests (InferenceService::done) resolve to
//      RESULT/ERROR frames carrying the deterministic fingerprint or the
//      taxonomy error code (net/wire.hpp), and stalled partial frames
//      time out (slow-loris defense) without affecting other
//      connections;
//   4. reaps dead connections, cancelling their in-flight requests via
//      InferenceService::cancel — a dropped client is a cancellation,
//      exactly as ROADMAP promised — and still consuming each slot via
//      wait() so nothing leaks.
//
// Deadline mapping: a SUBMIT's deadline_ms rides ServiceRequest::
// deadline_ms unchanged (ServiceOptions::default_deadline_ms still
// supplies the default), so the whole PR-6 expiry machinery serves the
// wire. Error mapping: every non-completed request resolves to exactly
// one WireErrorCode (the closed taxonomy); a shutdown-racing submit
// surfaces as kShuttingDown — never a silently dropped frame.
//
// Blocking caveat: with AdmissionPolicy::kBlock and a bounded full
// queue, submit() blocks the loop thread — backpressure propagates to
// every connection (TCP naturally stops reading). Prefer kReject or
// kShedOldest for networked services; the tests use those.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/errors.hpp"
#include "net/connection.hpp"
#include "net/event_loop.hpp"
#include "util/ordered_mutex.hpp"
#include "service/inference_service.hpp"
#include "service/request_stream.hpp"

namespace dynasparse {

struct NetServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral: the kernel picks; port() reports the bound port.
  std::uint16_t port = 0;
  int backlog = 64;
  std::size_t max_connections = 256;
  /// A connection whose partial frame makes no progress for this long is
  /// closed (slow-loris defense). 0 disables the timeout.
  std::int64_t frame_timeout_ms = 2000;
  /// Poll tick while requests are in flight: bounds the added completion
  /// -> RESULT latency.
  int completion_poll_ms = 1;
};

/// Loop-thread counters, snapshot via NetServer::stats().
struct NetServerStats {
  std::int64_t accepted = 0;          // connections admitted
  std::int64_t refused = 0;           // over max_connections or net.accept fault
  std::int64_t frames = 0;            // well-formed frames dispatched
  std::int64_t submits = 0;           // SUBMIT frames fed to the service
  std::int64_t results = 0;           // RESULT frames sent
  std::int64_t errors_sent = 0;       // ERROR frames sent (any code)
  std::int64_t protocol_errors = 0;   // connections that violated the wire
  std::int64_t timeouts = 0;          // slow-loris closes
  std::int64_t disconnect_cancels = 0;  // in-flight cancels from teardown
};

class NetServer {
 public:
  /// The service must outlive the server. Options are validated here;
  /// throws std::invalid_argument on nonsense.
  NetServer(InferenceService& service, NetServerOptions options = {});
  ~NetServer();  // stop()
  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Bind + listen + spawn the loop thread. Throws NetSetupError on
  /// bind/listen failure. port() is valid once this returns.
  void start();
  /// Stop the loop, cancel + consume every in-flight request, notify
  /// connections (kShuttingDown) and close them, join. Idempotent.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  std::uint16_t port() const { return port_; }
  NetServerStats stats() const;

 private:
  struct Pending {
    std::uint64_t conn_id = 0;  // owning connection (0 after it died)
    std::uint64_t corr = 0;
    RequestId request = 0;
    std::chrono::steady_clock::time_point submitted;
  };

  void loop_main();
  void handle_listener(std::uint32_t events);
  void handle_connection(std::uint64_t conn_id, std::uint32_t events);
  void dispatch_frame(Connection& conn, const WireFrame& frame);
  void handle_submit(Connection& conn, const WireFrame& frame);
  /// Send RESULT/ERROR for every in-flight request the service finished.
  void finalize_completions();
  /// Close connections whose partial frame stalled past frame_timeout_ms.
  void check_frame_timeouts();
  /// Unregister + destroy closed connections; cancel their in-flight.
  void reap_connections();
  void refresh_interest(Connection& conn);
  ServiceRequest materialize_cached(const StreamRequestSpec& spec);
  int poll_timeout_ms() const;
  void bump(std::int64_t NetServerStats::*field);

  InferenceService& service_;
  const NetServerOptions options_;
  EventLoop loop_;
  ScopedFd listener_;
  std::uint16_t port_ = 0;

  std::atomic<bool> running_{false};
  std::thread thread_;
  OrderedMutex lifecycle_mu_{LockRank::kNetServerLifecycle};  // serializes start()/stop()

  // ---- loop-thread-confined state ----
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 1;
  /// In-flight requests, keyed by service RequestId. corr -> RequestId
  /// lives per connection in corr_index_ for POLL/CANCEL lookup.
  std::map<RequestId, Pending> pending_;
  std::unordered_map<std::uint64_t, std::unordered_map<std::uint64_t, RequestId>>
      corr_index_;
  /// Deterministic materialization memo (spec line minus deadline ->
  /// request): repeat-heavy streams regenerate each unique content once.
  std::unordered_map<std::string, ServiceRequest> materialized_;

  mutable OrderedMutex stats_mu_{LockRank::kNetServerStats};
  NetServerStats stats_;
};

}  // namespace dynasparse
