#pragma once
// poll(2)-based event loop for the network serving front-end.
//
// Single-threaded by design: every fd callback runs on the thread inside
// run()/poll_once(), so connection state needs no locking. The only
// cross-thread entry points are wake() and stop(), which write one byte
// to a self-pipe — the idiom that lets another thread (or a completion
// elsewhere in the process) interrupt a blocking poll() without races.
//
// The loop is deliberately thin: it owns fd -> callback registration and
// the poll() dispatch; timers, accept logic, and per-connection protocol
// state live in the caller (net/server.cpp), which chooses the poll
// timeout per iteration based on what it is waiting for (in-flight
// service completions: short tick; idle: long tick). Callbacks may add
// or remove fds — including their own — during dispatch; removal is
// checked again per ready fd before its callback is invoked.

#include <cstdint>
#include <functional>
#include <map>

namespace dynasparse {

/// RAII file descriptor: closes on destruction, move-only.
class ScopedFd {
 public:
  ScopedFd() = default;
  explicit ScopedFd(int fd) : fd_(fd) {}
  ~ScopedFd() { reset(); }
  ScopedFd(ScopedFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  ScopedFd& operator=(ScopedFd&& o) noexcept {
    if (this != &o) {
      reset();
      fd_ = o.fd_;
      o.fd_ = -1;
    }
    return *this;
  }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset(int fd = -1);

 private:
  int fd_ = -1;
};

/// Set O_NONBLOCK; throws std::runtime_error (with errno text) on failure.
void set_nonblocking(int fd);

class EventLoop {
 public:
  /// Interest/event bits. kError is delivered (never requested): the fd
  /// hit POLLERR/POLLHUP/POLLNVAL and should be torn down.
  static constexpr std::uint32_t kRead = 1u << 0;
  static constexpr std::uint32_t kWrite = 1u << 1;
  static constexpr std::uint32_t kError = 1u << 2;

  using Callback = std::function<void(std::uint32_t events)>;

  /// Throws std::runtime_error if the self-pipe cannot be created.
  EventLoop();
  ~EventLoop();
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Register `fd` with an interest mask. The callback receives the
  /// ready-event mask. Throws std::invalid_argument on a duplicate fd.
  void add(int fd, std::uint32_t interest, Callback cb);
  /// Change the interest mask of a registered fd (no-op mask allowed —
  /// the fd stays registered but is never polled ready).
  void set_interest(int fd, std::uint32_t interest);
  void remove(int fd);
  bool contains(int fd) const { return fds_.count(fd) != 0; }
  std::size_t size() const { return fds_.size(); }

  /// One poll + dispatch round. timeout_ms < 0 blocks until an event (or
  /// a wake()); 0 polls without blocking. Returns the number of fds that
  /// had events dispatched (0 on timeout or bare wake). Not re-entrant.
  int poll_once(int timeout_ms);

  /// Interrupt a blocking poll_once from any thread. Coalesces: many
  /// wakes cost one pipe byte until the loop drains it.
  void wake();

 private:
  struct Entry {
    std::uint32_t interest = 0;
    Callback cb;
  };
  ScopedFd wake_rd_, wake_wr_;
  std::map<int, Entry> fds_;  // ordered: deterministic dispatch order
};

}  // namespace dynasparse
