#include "net/event_loop.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "net/errors.hpp"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

namespace dynasparse {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetSetupError(what + ": " + std::strerror(errno));
}

}  // namespace

void ScopedFd::reset(int fd) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = fd;
}

void set_nonblocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

EventLoop::EventLoop() {
  int pipefd[2];
  if (::pipe(pipefd) != 0) throw_errno("pipe(wake)");
  wake_rd_.reset(pipefd[0]);
  wake_wr_.reset(pipefd[1]);
  set_nonblocking(wake_rd_.get());
  set_nonblocking(wake_wr_.get());
}

EventLoop::~EventLoop() = default;

void EventLoop::add(int fd, std::uint32_t interest, Callback cb) {
  if (fd < 0) throw std::invalid_argument("EventLoop::add: negative fd");
  auto [it, inserted] = fds_.emplace(fd, Entry{interest, std::move(cb)});
  (void)it;
  if (!inserted)
    throw std::invalid_argument("EventLoop::add: fd " + std::to_string(fd) +
                                " already registered");
}

void EventLoop::set_interest(int fd, std::uint32_t interest) {
  auto it = fds_.find(fd);
  if (it == fds_.end())
    throw std::invalid_argument("EventLoop::set_interest: unknown fd " +
                                std::to_string(fd));
  it->second.interest = interest;
}

void EventLoop::remove(int fd) { fds_.erase(fd); }

int EventLoop::poll_once(int timeout_ms) {
  std::vector<pollfd> pfds;
  pfds.reserve(fds_.size() + 1);
  pfds.push_back(pollfd{wake_rd_.get(), POLLIN, 0});
  for (const auto& [fd, entry] : fds_) {
    short events = 0;
    if (entry.interest & kRead) events |= POLLIN;
    if (entry.interest & kWrite) events |= POLLOUT;
    // Registered-but-idle fds still ride along with events == 0 so
    // POLLERR/POLLHUP (always reported) reaches their callback.
    pfds.push_back(pollfd{fd, events, 0});
  }
  int n = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (n < 0) {
    if (errno == EINTR) return 0;  // signal; caller re-evaluates and retries
    throw_errno("poll");
  }
  if (n == 0) return 0;
  // Drain the wake pipe (coalesced: any number of wake() calls -> one
  // drain).
  if (pfds[0].revents & POLLIN) {
    char buf[64];
    while (::read(wake_rd_.get(), buf, sizeof buf) > 0) {
    }
  }
  int dispatched = 0;
  for (std::size_t i = 1; i < pfds.size(); ++i) {
    if (pfds[i].revents == 0) continue;
    // A prior callback this round may have removed (or replaced) the fd;
    // look it up again rather than trusting the snapshot.
    auto it = fds_.find(pfds[i].fd);
    if (it == fds_.end()) continue;
    std::uint32_t ev = 0;
    if (pfds[i].revents & POLLIN) ev |= kRead;
    if (pfds[i].revents & POLLOUT) ev |= kWrite;
    if (pfds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) ev |= kError;
    if (ev == 0) continue;
    ++dispatched;
    // Copy the callback: it may remove its own registration (invalidating
    // `it`) while running.
    Callback cb = it->second.cb;
    cb(ev);
  }
  return dispatched;
}

void EventLoop::wake() {
  char one = 1;
  // Full pipe = a wake is already pending; either way the loop wakes.
  (void)!::write(wake_wr_.get(), &one, 1);
}

}  // namespace dynasparse
