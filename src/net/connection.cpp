#include "net/connection.hpp"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

#include "util/fault_injection.hpp"

namespace dynasparse {

Connection::Connection(int fd, std::uint64_t id)
    : fd_(fd), id_(id), last_progress_(std::chrono::steady_clock::now()) {}

Connection::~Connection() = default;

void Connection::on_readable(std::vector<WireFrame>& frames) {
  if (state_ != State::kOpen) return;
  // Chaos site: a fired net.read is a transport fault on this connection
  // — the same teardown path a peer reset takes, so the chaos lane
  // drives connection-death handling (cancel in-flight, reap) without a
  // real network misbehaving.
  if (fault_point(kFaultNetRead)) {
    close();
    return;
  }
  char buf[4096];
  while (state_ == State::kOpen) {
    ssize_t n = ::recv(fd_.get(), buf, sizeof buf, 0);
    if (n > 0) {
      if (in_.size() + static_cast<std::size_t>(n) > kMaxInboundBytes) {
        // More buffered bytes than any valid frame can need: hostile.
        protocol_error_ = "inbound buffer overflow (no frame within " +
                          std::to_string(kMaxInboundBytes) + " bytes)";
        return;
      }
      in_.insert(in_.end(), buf, buf + n);
      last_progress_ = std::chrono::steady_clock::now();
      extract_frames(frames);
      if (state_ != State::kOpen || protocol_error_) return;
      continue;
    }
    if (n == 0) {  // orderly EOF
      close();
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // drained
    if (errno == EINTR) continue;
    close();  // ECONNRESET and friends
    return;
  }
}

void Connection::extract_frames(std::vector<WireFrame>& frames) {
  std::size_t offset = 0;
  try {
    WireFrame frame;
    std::size_t consumed = 0;
    while (try_extract_frame(in_.data() + offset, in_.size() - offset, frame,
                             consumed)) {
      offset += consumed;
      ++frames_in_;
      frames.push_back(std::move(frame));
      frame = WireFrame{};
    }
  } catch (const WireProtocolError& e) {
    protocol_error_ = e.what();
  }
  if (offset > 0) in_.erase(in_.begin(), in_.begin() + offset);
}

void Connection::on_writable() {
  while (out_pos_ < out_.size()) {
    ssize_t n = ::send(fd_.get(), out_.data() + out_pos_, out_.size() - out_pos_,
                       MSG_NOSIGNAL);
    if (n > 0) {
      out_pos_ += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    close();  // EPIPE/ECONNRESET: the response is undeliverable
    return;
  }
  if (out_pos_ == out_.size()) {
    out_.clear();
    out_pos_ = 0;
    if (state_ == State::kDraining) close();
  } else if (out_pos_ > (out_.size() >> 1)) {
    // Reclaim the flushed prefix once it dominates the buffer.
    out_.erase(out_.begin(), out_.begin() + out_pos_);
    out_pos_ = 0;
  }
}

void Connection::send(const std::vector<std::uint8_t>& frame) {
  if (state_ == State::kClosed) return;
  if (out_.size() - out_pos_ + frame.size() > kMaxOutboundBytes) {
    close();  // peer stopped reading; don't buffer without bound
    return;
  }
  out_.insert(out_.end(), frame.begin(), frame.end());
  on_writable();
}

void Connection::begin_drain() {
  if (state_ != State::kOpen) return;
  state_ = State::kDraining;
  in_.clear();
  if (out_.empty()) close();
}

void Connection::close() {
  // Mark only — the fd stays open (and registered) until the server
  // reaps this connection. Closing here would free the fd number while
  // the event loop still holds it, and a same-round accept() could then
  // reuse the number and collide with the stale registration.
  state_ = State::kClosed;
}

std::uint32_t Connection::interest() const {
  std::uint32_t mask = 0;
  if (state_ == State::kOpen) mask |= EventLoop::kRead;
  if (wants_write() && state_ != State::kClosed) mask |= EventLoop::kWrite;
  return mask;
}

}  // namespace dynasparse
