#include "net/client.hpp"

#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace dynasparse {

namespace {

[[noreturn]] void throw_net(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

}  // namespace

NetClient::NetClient(const std::string& host, std::uint16_t port,
                     std::int64_t io_timeout_ms) {
  if (io_timeout_ms < 0)
    throw std::invalid_argument("NetClient: io_timeout_ms must be >= 0");
  ScopedFd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) throw_net("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    throw NetError("NetClient: bad host " + host);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
    throw_net("connect " + host + ":" + std::to_string(port));
  if (io_timeout_ms > 0) {
    timeval tv{};
    tv.tv_sec = io_timeout_ms / 1000;
    tv.tv_usec = static_cast<suseconds_t>((io_timeout_ms % 1000) * 1000);
    ::setsockopt(fd.get(), SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  }
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  fd_ = std::move(fd);
}

void NetClient::send_all(const std::vector<std::uint8_t>& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    ssize_t n = ::send(fd_.get(), bytes.data() + sent, bytes.size() - sent,
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_net("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

WireFrame NetClient::next_frame() {
  // recv_mu_ is held by the caller.
  WireFrame frame;
  std::size_t consumed = 0;
  while (true) {
    if (try_extract_frame(rbuf_.data(), rbuf_.size(), frame, consumed)) {
      rbuf_.erase(rbuf_.begin(),
                  rbuf_.begin() + static_cast<std::ptrdiff_t>(consumed));
      return frame;
    }
    std::uint8_t chunk[4096];
    ssize_t n = ::recv(fd_.get(), chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        throw NetError("receive timed out waiting for a frame");
      throw_net("recv");
    }
    if (n == 0)
      throw NetError("connection closed by server while awaiting a frame");
    rbuf_.insert(rbuf_.end(), chunk, chunk + n);
  }
}

std::uint64_t NetClient::submit(const StreamRequestSpec& spec) {
  std::lock_guard<OrderedMutex> lk(send_mu_);
  const std::uint64_t corr = next_corr_++;
  send_all(encode_submit(corr, spec));
  return corr;
}

NetClient::Outcome NetClient::to_outcome(const WireFrame& f) {
  Outcome out;
  out.corr = f.corr;
  if (f.type == FrameType::kResult) {
    out.ok = true;
    out.result = decode_result(f);
  } else if (f.type == FrameType::kError) {
    out.ok = false;
    out.error = decode_error(f);
  } else {
    throw WireProtocolError(
        std::string("expected RESULT/ERROR, server sent ") +
        frame_type_name(f.type));
  }
  return out;
}

NetClient::Outcome NetClient::await(std::uint64_t corr) {
  std::lock_guard<OrderedMutex> lk(recv_mu_);
  for (std::size_t i = 0; i < stash_.size(); ++i) {
    if (stash_[i].corr == corr && (stash_[i].type == FrameType::kResult ||
                                   stash_[i].type == FrameType::kError)) {
      WireFrame f = std::move(stash_[i]);
      stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
      return to_outcome(f);
    }
  }
  while (true) {
    WireFrame f = next_frame();
    if (f.corr == corr &&
        (f.type == FrameType::kResult || f.type == FrameType::kError))
      return to_outcome(f);
    stash_.push_back(std::move(f));
  }
}

NetClient::Outcome NetClient::await_any() {
  std::lock_guard<OrderedMutex> lk(recv_mu_);
  for (std::size_t i = 0; i < stash_.size(); ++i) {
    if (stash_[i].type == FrameType::kResult ||
        stash_[i].type == FrameType::kError) {
      WireFrame f = std::move(stash_[i]);
      stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
      return to_outcome(f);
    }
  }
  while (true) {
    WireFrame f = next_frame();
    if (f.type == FrameType::kResult || f.type == FrameType::kError)
      return to_outcome(f);
    stash_.push_back(std::move(f));
  }
}

WireResult NetClient::request(const StreamRequestSpec& spec) {
  Outcome out = await(submit(spec));
  if (!out.ok) out.rethrow();
  return out.result;
}

WireFrame NetClient::control_reply(std::uint64_t corr) {
  // A control reply is a kState frame, or a kUnknownRequest ERROR. A
  // terminal RESULT / other-code ERROR that races in for the same corr
  // belongs to the awaiter: stash it.
  std::lock_guard<OrderedMutex> lk(recv_mu_);
  auto is_reply = [&](const WireFrame& f) {
    if (f.corr != corr) return false;
    if (f.type == FrameType::kState) return true;
    if (f.type != FrameType::kError) return false;
    return decode_error(f).code == WireErrorCode::kUnknownRequest;
  };
  for (std::size_t i = 0; i < stash_.size(); ++i) {
    if (is_reply(stash_[i])) {
      WireFrame f = std::move(stash_[i]);
      stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
      return f;
    }
  }
  while (true) {
    WireFrame f = next_frame();
    if (is_reply(f)) return f;
    stash_.push_back(std::move(f));
  }
}

std::uint8_t NetClient::poll_state(std::uint64_t corr) {
  {
    std::lock_guard<OrderedMutex> lk(send_mu_);
    send_all(encode_poll(corr));
  }
  WireFrame f = control_reply(corr);
  if (f.type == FrameType::kState) return decode_state(f);
  throw std::invalid_argument(decode_error(f).message);
}

bool NetClient::cancel(std::uint64_t corr) {
  {
    std::lock_guard<OrderedMutex> lk(send_mu_);
    send_all(encode_cancel(corr));
  }
  WireFrame f = control_reply(corr);
  if (f.type == FrameType::kState) return decode_state(f) != 0;
  throw std::invalid_argument(decode_error(f).message);
}

std::string NetClient::stats() {
  std::uint64_t corr = 0;
  {
    std::lock_guard<OrderedMutex> lk(send_mu_);
    corr = next_corr_++;
    send_all(encode_stats(corr));
  }
  std::lock_guard<OrderedMutex> lk(recv_mu_);
  for (std::size_t i = 0; i < stash_.size(); ++i) {
    if (stash_[i].corr == corr && stash_[i].type == FrameType::kStatsReply) {
      WireFrame f = std::move(stash_[i]);
      stash_.erase(stash_.begin() + static_cast<std::ptrdiff_t>(i));
      return decode_stats_reply(f);
    }
  }
  while (true) {
    WireFrame f = next_frame();
    if (f.corr == corr && f.type == FrameType::kStatsReply)
      return decode_stats_reply(f);
    stash_.push_back(std::move(f));
  }
}

void NetClient::shutdown_send() { ::shutdown(fd_.get(), SHUT_WR); }

}  // namespace dynasparse
