#pragma once
// Wire protocol for the network serving front-end — length-prefixed,
// versioned binary frames between dynasparse_loadgen / NetClient and the
// NetServer inside `dynasparse_serve --listen`.
//
// Frame layout (all integers little-endian):
//
//   u64  payload_len            bounded by kMaxFramePayload — a hostile
//                               prefix (2^63, 0, SIZE_MAX) is rejected
//                               before any allocation happens
//   u8   version                kWireVersion; anything else is a
//                               protocol error (versioned frames let a
//                               future v2 coexist on one port)
//   u8   type                   FrameType
//   u64  correlation id         client-chosen; echoed on every response
//   ...  type-specific body     decoded by the decode_* functions below
//
// Requests:  SUBMIT (a StreamRequestSpec — the same deterministic
//            workload description request-stream files use), POLL,
//            CANCEL, STATS.
// Responses: RESULT (deterministic fingerprint + latencies), ERROR
//            (WireErrorCode — the service's closed error taxonomy as
//            stable wire codes), STATE (poll/cancel replies), STATS_REPLY
//            (key=value text).
//
// Hardening contract (the util/strict_parse discipline, applied to
// bytes): every length is bounded and checked against what was actually
// received before anything is allocated or copied; every enum byte is
// range-checked; every body must be consumed exactly — trailing bytes
// are an error, not slack; every violation throws WireProtocolError with
// a message naming the offending field. try_extract_frame never reads
// past `size` and never allocates more than kMaxFramePayload.
//
// Error-code round-trip: wire_error_code maps each taxonomy exception to
// its code; rethrow_wire_error maps a code back to the same exception
// type, so a client observes exactly the typed error a local
// InferenceService::wait would have thrown (tested 1:1 in
// tests/net_service_test.cpp).

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "service/request_stream.hpp"

namespace dynasparse {

/// Malformed bytes on the wire (either direction). Deliberately distinct
/// from the request taxonomy: a protocol error says the *peer* is broken
/// or hostile, not that a request failed.
struct WireProtocolError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint8_t kWireVersion = 1;
/// Hard bound on one frame's payload. Checked against the raw length
/// prefix before any allocation: a 2^63 prefix costs nothing.
inline constexpr std::uint64_t kMaxFramePayload = 64 * 1024;
inline constexpr std::size_t kFrameLenBytes = 8;   // u64 length prefix
inline constexpr std::size_t kFrameHeaderBytes = 10;  // version+type+corr
/// Bounds on embedded variable-length fields, all far below the frame
/// bound so a single frame can never smuggle an oversized allocation.
inline constexpr std::size_t kMaxDatasetTagBytes = 32;
inline constexpr std::size_t kMaxErrorMessageBytes = 512;
/// Sanity bounds on submitted numeric fields — hostile values are
/// rejected at decode, before they reach dataset generation.
inline constexpr std::uint64_t kMaxWireScale = 1u << 20;
inline constexpr std::uint64_t kMaxWireHidden = 1u << 20;
inline constexpr std::uint64_t kMaxWireDeadlineMs = 1000ull * 1000 * 1000;

enum class FrameType : std::uint8_t {
  // client -> server
  kSubmit = 1,
  kPoll = 2,
  kCancel = 3,
  kStats = 4,
  // server -> client
  kResult = 0x81,
  kError = 0x82,
  kState = 0x83,
  kStatsReply = 0x84,
};

const char* frame_type_name(FrameType t);

/// The service's closed error taxonomy as stable wire codes, plus the
/// protocol-layer outcomes a networked caller can additionally observe.
enum class WireErrorCode : std::uint8_t {
  kProtocol = 1,           // malformed frame (WireProtocolError)
  kCancelled = 2,          // CancelledError
  kDeadlineExceeded = 3,   // DeadlineExceededError
  kAdmissionRejected = 4,  // AdmissionRejectedError
  kExecutionError = 5,     // ExecutionError
  kShuttingDown = 6,       // submit refused: server going down
  kUnknownRequest = 7,     // POLL/CANCEL for an unknown correlation id
  kInvalidRequest = 8,     // well-formed frame, unusable request
};

const char* wire_error_name(WireErrorCode c);

/// Map a code back to the exception a local InferenceService would have
/// thrown: kCancelled -> CancelledError, kDeadlineExceeded ->
/// DeadlineExceededError, kAdmissionRejected -> AdmissionRejectedError,
/// kExecutionError -> ExecutionError, kShuttingDown ->
/// ShutdownError (the submit/shutdown race), kUnknownRequest /
/// kInvalidRequest -> std::invalid_argument, kProtocol ->
/// WireProtocolError.
[[noreturn]] void rethrow_wire_error(WireErrorCode code,
                                     const std::string& message);

/// One extracted frame: validated header, raw (not yet decoded) body.
struct WireFrame {
  std::uint8_t version = kWireVersion;
  FrameType type = FrameType::kSubmit;
  std::uint64_t corr = 0;
  std::vector<std::uint8_t> body;
};

/// Decoded response payloads.
struct WireResult {
  std::uint64_t fingerprint = 0;  // InferenceReport::deterministic_fingerprint
  double sim_latency_ms = 0.0;    // simulated accelerator latency
  double server_ms = 0.0;         // submit -> completion on the server
};
struct WireError {
  WireErrorCode code = WireErrorCode::kProtocol;
  std::string message;
};

/// Try to extract one frame from the front of `data[0..size)`. Returns
/// false when more bytes are needed (nothing consumed); on success fills
/// `out`, sets `consumed`, and the caller drops that prefix. Throws
/// WireProtocolError — before allocating anything — on a hostile length
/// prefix (0, > kMaxFramePayload, 2^63...), a bad version byte, or an
/// unknown frame type.
bool try_extract_frame(const std::uint8_t* data, std::size_t size,
                       WireFrame& out, std::size_t& consumed);

// ---- encoders (always produce a complete, length-prefixed frame) -----------

/// SUBMIT carries a StreamRequestSpec (repeat is not transmitted: one
/// frame = one request; spec.repeat must be 1).
std::vector<std::uint8_t> encode_submit(std::uint64_t corr,
                                        const StreamRequestSpec& spec);
std::vector<std::uint8_t> encode_poll(std::uint64_t corr);
std::vector<std::uint8_t> encode_cancel(std::uint64_t corr);
std::vector<std::uint8_t> encode_stats(std::uint64_t corr);
std::vector<std::uint8_t> encode_result(std::uint64_t corr,
                                        const WireResult& result);
/// The message is truncated to kMaxErrorMessageBytes on encode, so a
/// long exception string can never produce an overlong frame.
std::vector<std::uint8_t> encode_error(std::uint64_t corr, WireErrorCode code,
                                       const std::string& message);
std::vector<std::uint8_t> encode_state(std::uint64_t corr, std::uint8_t value);
std::vector<std::uint8_t> encode_stats_reply(std::uint64_t corr,
                                             const std::string& text);

// ---- decoders (validate every field, require exact body consumption) -------

StreamRequestSpec decode_submit(const WireFrame& f);
WireResult decode_result(const WireFrame& f);
WireError decode_error(const WireFrame& f);
std::uint8_t decode_state(const WireFrame& f);
std::string decode_stats_reply(const WireFrame& f);
/// POLL/CANCEL/STATS carry no body; reject trailing bytes.
void decode_empty(const WireFrame& f);

}  // namespace dynasparse
