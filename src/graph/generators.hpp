#pragma once
// Synthetic graph generators.
//
// The paper evaluates on Planetoid/Flickr/NELL/Reddit downloads; offline we
// generate graphs that match their |V|, |E| (and hence adjacency density,
// Table VI) with a heavy-tailed degree distribution, which is the property
// the partition-level density variation (paper Fig. 1) comes from.

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/random.hpp"

namespace dynasparse {

/// G(n, m): exactly m distinct directed edges chosen uniformly.
Graph erdos_renyi(std::int64_t n, std::int64_t m, Rng& rng);

/// Heavy-tailed generator: endpoints are drawn with probability
/// proportional to (rank+1)^(-skew), giving hub vertices and the uneven
/// per-block adjacency densities seen in real graphs. skew in [0, 1);
/// skew = 0 degenerates to Erdős–Rényi.
Graph power_law(std::int64_t n, std::int64_t m, double skew, Rng& rng);

/// Recursive-matrix (R-MAT) generator with quadrant probabilities
/// (a, b, c, d), a + b + c + d = 1. Produces community-like block
/// structure — distinct tiles of A get visibly different densities.
Graph rmat(std::int64_t n, std::int64_t m, double a, double b, double c, Rng& rng);

}  // namespace dynasparse
