#pragma once
// Dataset registry reproducing the paper's six benchmark graphs.
//
// Table VI of the paper gives, per dataset: |V|, |E|, feature dimension,
// class count, density of the adjacency matrix A (implied by |V| and |E|)
// and density of the input feature matrix H0. We regenerate graphs and
// features synthetically to match those statistics; DESIGN.md documents
// why this substitution preserves every reported experiment.
//
// The two largest graphs (NELL, Reddit) carry a default `bench_scale`
// that divides |V| and |E| so functional simulation stays tractable;
// scale = 1 reproduces the paper's full sizes (timed-only workflows).

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "matrix/coo_matrix.hpp"
#include "util/random.hpp"

namespace dynasparse {

struct DatasetSpec {
  std::string name;       // full name, e.g. "CiteSeer"
  std::string tag;        // paper's two-letter tag, e.g. "CI"
  std::int64_t vertices = 0;
  std::int64_t edges = 0;
  std::int64_t feature_dim = 0;
  std::int64_t num_classes = 0;
  double h0_density = 0.0;  // density of the input feature matrix
  std::int64_t hidden_dim = 16;  // paper: 16 for CI/CO/PU, 128 for FL/NE/RE
  double degree_skew = 0.6;      // heavy-tail parameter for the generator
  int bench_scale = 1;           // default down-scale used by the benches
};

/// A generated dataset: graph topology plus the (sparse) input features.
struct Dataset {
  DatasetSpec spec;   // spec *after* scaling (vertices/edges reflect scale)
  Graph graph;
  CooMatrix features;  // |V| x feature_dim, density ~= spec.h0_density
};

/// The six specs of Table VI, in paper order: CI, CO, PU, FL, NE, RE.
const std::vector<DatasetSpec>& paper_datasets();

/// Look up a spec by its tag ("CI", "CO", "PU", "FL", "NE", "RE").
DatasetSpec dataset_by_tag(const std::string& tag);

/// Generate a dataset from a spec. `scale` divides |V| by scale and |E| by
/// scale^2, preserving the adjacency density of Table VI; scale <= 0 means
/// "use spec.bench_scale". Deterministic in (spec, scale, seed).
Dataset generate_dataset(const DatasetSpec& spec, int scale, std::uint64_t seed);

/// Random sparse feature matrix: per-row binomial nonzero counts at the
/// target density, positive values in [0.5, 1.5) (bag-of-words-like).
CooMatrix generate_features(std::int64_t rows, std::int64_t cols, double density,
                            Rng& rng);

}  // namespace dynasparse
