#include "graph/generators.hpp"

#include <cmath>
#include <functional>
#include <stdexcept>
#include <unordered_set>

namespace dynasparse {

namespace {

std::uint64_t edge_key(std::int64_t src, std::int64_t dst, std::int64_t n) {
  return static_cast<std::uint64_t>(src) * static_cast<std::uint64_t>(n) +
         static_cast<std::uint64_t>(dst);
}

/// Draw m distinct edges using `draw_endpoint` for both ends. Gives up on a
/// duplicate draw after a generous retry budget so degenerate parameters
/// terminate (slightly under-shooting m instead of spinning forever).
std::vector<Edge> draw_distinct_edges(std::int64_t n, std::int64_t m, Rng& rng,
                                      const std::function<std::int64_t()>& draw_endpoint) {
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(static_cast<std::size_t>(m) * 2);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = m * 50 + 1000;
  while (static_cast<std::int64_t>(edges.size()) < m && attempts < max_attempts) {
    ++attempts;
    std::int64_t s = draw_endpoint();
    std::int64_t d = draw_endpoint();
    if (seen.insert(edge_key(s, d, n)).second) edges.push_back({s, d});
    (void)rng;
  }
  return edges;
}

}  // namespace

Graph erdos_renyi(std::int64_t n, std::int64_t m, Rng& rng) {
  if (n <= 0) throw std::invalid_argument("need n > 0");
  if (m > n * n) throw std::invalid_argument("more edges than vertex pairs");
  auto endpoint = [&] { return rng.uniform_int(0, n - 1); };
  return Graph(n, draw_distinct_edges(n, m, rng, endpoint));
}

Graph power_law(std::int64_t n, std::int64_t m, double skew, Rng& rng) {
  if (n <= 0) throw std::invalid_argument("need n > 0");
  if (skew < 0.0 || skew >= 1.0) throw std::invalid_argument("skew must be in [0, 1)");
  // Inverse-transform sampling of p(rank) ~ (rank+1)^(-skew): for u in
  // [0,1), rank = floor(n * u^(1/(1-skew))) concentrates mass on low ranks.
  double expo = 1.0 / (1.0 - skew);
  auto endpoint = [&] {
    double u = rng.uniform();
    auto r = static_cast<std::int64_t>(std::floor(std::pow(u, expo) * static_cast<double>(n)));
    return std::min(r, n - 1);
  };
  return Graph(n, draw_distinct_edges(n, m, rng, endpoint));
}

Graph rmat(std::int64_t n, std::int64_t m, double a, double b, double c, Rng& rng) {
  if (n <= 0) throw std::invalid_argument("need n > 0");
  double d = 1.0 - a - b - c;
  if (a < 0 || b < 0 || c < 0 || d < 0) throw std::invalid_argument("bad RMAT quadrants");
  // Round n up to a power of two for the recursive descent, then reject
  // endpoints outside [0, n).
  std::int64_t size = 1;
  while (size < n) size <<= 1;
  std::unordered_set<std::uint64_t> seen;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(m));
  std::int64_t attempts = 0;
  const std::int64_t max_attempts = m * 100 + 1000;
  while (static_cast<std::int64_t>(edges.size()) < m && attempts < max_attempts) {
    ++attempts;
    std::int64_t r0 = 0, c0 = 0, span = size;
    while (span > 1) {
      span >>= 1;
      double u = rng.uniform();
      if (u < a) {
        // top-left: nothing to add
      } else if (u < a + b) {
        c0 += span;
      } else if (u < a + b + c) {
        r0 += span;
      } else {
        r0 += span;
        c0 += span;
      }
    }
    if (r0 >= n || c0 >= n) continue;
    if (seen.insert(edge_key(c0, r0, n)).second) edges.push_back({c0, r0});
  }
  return Graph(n, edges);
}

}  // namespace dynasparse
