#include "graph/dataset.hpp"

#include <algorithm>
#include <stdexcept>

#include "graph/generators.hpp"

namespace dynasparse {

const std::vector<DatasetSpec>& paper_datasets() {
  // Table VI. Reddit's edge count is listed as 11x10^7; hidden dims per
  // Section VIII-A. bench_scale keeps default functional runs under a few
  // seconds per kernel (full scale remains available with scale = 1).
  static const std::vector<DatasetSpec> specs = {
      {"CiteSeer", "CI", 3327, 4732, 3703, 6, 0.0085, 16, 0.6, 1},
      {"Cora", "CO", 2708, 5429, 1433, 7, 0.0127, 16, 0.6, 1},
      {"PubMed", "PU", 19717, 44338, 500, 3, 0.100, 16, 0.6, 1},
      {"Flickr", "FL", 89250, 899756, 500, 7, 0.464, 128, 0.6, 4},
      {"NELL", "NE", 65755, 251550, 61278, 186, 0.0001, 128, 0.6, 8},
      {"Reddit", "RE", 232965, 110000000, 602, 41, 1.000, 128, 0.6, 32},
  };
  return specs;
}

DatasetSpec dataset_by_tag(const std::string& tag) {
  for (const DatasetSpec& s : paper_datasets())
    if (s.tag == tag) return s;
  throw std::invalid_argument("unknown dataset tag: " + tag);
}

CooMatrix generate_features(std::int64_t rows, std::int64_t cols, double density,
                            Rng& rng) {
  CooMatrix out(rows, cols, Layout::kRowMajor);
  if (density <= 0.0) return out;
  if (density >= 1.0) {
    // Fully dense features (Reddit): every element nonzero.
    out.entries().reserve(static_cast<std::size_t>(rows * cols));
    for (std::int64_t r = 0; r < rows; ++r)
      for (std::int64_t c = 0; c < cols; ++c)
        out.push(r, c, static_cast<float>(rng.uniform(0.5, 1.5)));
    return out;
  }
  std::binomial_distribution<std::int64_t> row_nnz_dist(cols, density);
  for (std::int64_t r = 0; r < rows; ++r) {
    std::int64_t k = row_nnz_dist(rng.engine());
    if (k == 0) continue;
    std::vector<std::int64_t> cols_chosen = rng.sample_without_replacement(cols, k);
    std::sort(cols_chosen.begin(), cols_chosen.end());
    for (std::int64_t c : cols_chosen)
      out.push(r, c, static_cast<float>(rng.uniform(0.5, 1.5)));
  }
  return out;
}

Dataset generate_dataset(const DatasetSpec& spec, int scale, std::uint64_t seed) {
  if (scale <= 0) scale = spec.bench_scale;
  DatasetSpec scaled = spec;
  scaled.vertices = std::max<std::int64_t>(1, spec.vertices / scale);
  // Edges scale with scale^2 so the adjacency *density* |E|/|V|^2 — the
  // statistic that drives kernel-to-primitive decisions — is preserved.
  scaled.edges =
      std::max<std::int64_t>(1, spec.edges / (static_cast<std::int64_t>(scale) * scale));
  // A graph cannot hold more distinct edges than |V|^2.
  scaled.edges = std::min(scaled.edges, scaled.vertices * scaled.vertices);
  scaled.bench_scale = scale;

  Rng rng(seed);
  Graph g = power_law(scaled.vertices, scaled.edges, scaled.degree_skew, rng);
  CooMatrix features =
      generate_features(scaled.vertices, scaled.feature_dim, scaled.h0_density, rng);
  // Record realized counts (duplicate draws can undershoot slightly).
  scaled.edges = g.num_edges();
  return Dataset{std::move(scaled), std::move(g), std::move(features)};
}

}  // namespace dynasparse
