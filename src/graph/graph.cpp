#include "graph/graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace dynasparse {

Graph::Graph(std::int64_t num_vertices, std::vector<Edge> edges)
    : num_vertices_(num_vertices) {
  if (num_vertices < 0) throw std::invalid_argument("negative vertex count");
  for (const Edge& e : edges)
    if (e.src < 0 || e.src >= num_vertices || e.dst < 0 || e.dst >= num_vertices)
      throw std::invalid_argument("edge endpoint out of range");
  // CSR rows are destinations: sort by (dst, src) and collapse duplicates.
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.dst != b.dst ? a.dst < b.dst : a.src < b.src;
  });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.dst == b.dst && a.src == b.src;
                          }),
              edges.end());
  std::vector<std::int64_t> row_ptr(static_cast<std::size_t>(num_vertices) + 1, 0);
  for (const Edge& e : edges) ++row_ptr[static_cast<std::size_t>(e.dst) + 1];
  for (std::size_t r = 1; r < row_ptr.size(); ++r) row_ptr[r] += row_ptr[r - 1];
  std::vector<std::int64_t> col_idx;
  std::vector<float> values;
  col_idx.reserve(edges.size());
  values.assign(edges.size(), 1.0f);
  for (const Edge& e : edges) col_idx.push_back(e.src);
  num_edges_ = static_cast<std::int64_t>(edges.size());
  adjacency_ = CsrMatrix(num_vertices, num_vertices, std::move(row_ptr),
                         std::move(col_idx), std::move(values));
}

}  // namespace dynasparse
