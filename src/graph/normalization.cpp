#include "graph/normalization.hpp"

#include <cmath>
#include <stdexcept>

namespace dynasparse {

CsrMatrix add_self_loops(const CsrMatrix& a, float weight) {
  if (a.rows() != a.cols()) throw std::invalid_argument("self loops need square matrix");
  std::vector<std::int64_t> row_ptr;
  std::vector<std::int64_t> col_idx;
  std::vector<float> values;
  row_ptr.reserve(static_cast<std::size_t>(a.rows()) + 1);
  col_idx.reserve(static_cast<std::size_t>(a.nnz() + a.rows()));
  values.reserve(col_idx.capacity());
  row_ptr.push_back(0);
  for (std::int64_t r = 0; r < a.rows(); ++r) {
    bool inserted = false;
    for (std::int64_t k = a.row_begin(r); k < a.row_end(r); ++k) {
      std::size_t ki = static_cast<std::size_t>(k);
      std::int64_t c = a.col_idx()[ki];
      if (!inserted && c >= r) {
        if (c == r) {
          col_idx.push_back(r);
          values.push_back(a.values()[ki] + weight);
          inserted = true;
          continue;
        }
        col_idx.push_back(r);
        values.push_back(weight);
        inserted = true;
      }
      col_idx.push_back(c);
      values.push_back(a.values()[ki]);
    }
    if (!inserted) {
      col_idx.push_back(r);
      values.push_back(weight);
    }
    row_ptr.push_back(static_cast<std::int64_t>(col_idx.size()));
  }
  return CsrMatrix(a.rows(), a.cols(), std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix build_adjacency_operator(const Graph& g, AdjKind kind, double eps) {
  const CsrMatrix& a = g.adjacency();
  switch (kind) {
    case AdjKind::kRaw:
      return a;
    case AdjKind::kSelfLoopEps:
      return add_self_loops(a, static_cast<float>(1.0 + eps));
    case AdjKind::kRowNorm: {
      CsrMatrix out = a;
      for (std::int64_t r = 0; r < out.rows(); ++r) {
        std::int64_t deg = out.row_nnz(r);
        if (deg == 0) continue;
        float inv = 1.0f / static_cast<float>(deg);
        for (std::int64_t k = out.row_begin(r); k < out.row_end(r); ++k)
          out.values()[static_cast<std::size_t>(k)] *= inv;
      }
      return out;
    }
    case AdjKind::kSymNorm: {
      CsrMatrix sl = add_self_loops(a, 1.0f);
      // Degrees of A + I (row sums of the binary structure).
      std::vector<float> inv_sqrt_deg(static_cast<std::size_t>(sl.rows()));
      for (std::int64_t r = 0; r < sl.rows(); ++r)
        inv_sqrt_deg[static_cast<std::size_t>(r)] =
            1.0f / std::sqrt(static_cast<float>(sl.row_nnz(r)));
      CsrMatrix out = sl;
      for (std::int64_t r = 0; r < out.rows(); ++r)
        for (std::int64_t k = out.row_begin(r); k < out.row_end(r); ++k) {
          std::size_t ki = static_cast<std::size_t>(k);
          out.values()[ki] *= inv_sqrt_deg[static_cast<std::size_t>(r)] *
                              inv_sqrt_deg[static_cast<std::size_t>(out.col_idx()[ki])];
        }
      return out;
    }
  }
  throw std::logic_error("unknown AdjKind");
}

}  // namespace dynasparse
