#pragma once
// Adjacency operators used by the GNN models.
//
// Each model consumes the graph through a weighted adjacency matrix:
//   GCN / SGC : sym-norm  A_hat = D^{-1/2} (A + I) D^{-1/2}
//   GraphSAGE : row-norm  D^{-1} A                  (mean aggregation)
//   GIN       : A + (1 + eps) I                     (sum + weighted self)
// Building the operator host-side keeps Aggregate() a pure matrix product
// on the accelerator, matching the paper's kernel abstraction.

#include "graph/graph.hpp"
#include "matrix/csr_matrix.hpp"

namespace dynasparse {

enum class AdjKind {
  kRaw,       // A as-is
  kSymNorm,   // D^{-1/2} (A + I) D^{-1/2}
  kRowNorm,   // D^{-1} A (rows with degree 0 stay zero)
  kSelfLoopEps,  // A + (1 + eps) I
};

/// Materialize the weighted adjacency operator for a model.
CsrMatrix build_adjacency_operator(const Graph& g, AdjKind kind, double eps = 0.0);

/// A + I with unit self-loop weights (helper shared by kSymNorm).
CsrMatrix add_self_loops(const CsrMatrix& a, float weight);

}  // namespace dynasparse
