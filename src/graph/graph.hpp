#pragma once
// Graph structure for full-graph GNN inference.
//
// A graph is stored as a CSR adjacency over vertex ids [0, |V|). For the
// GNN kernels the adjacency is consumed as a |V| x |V| sparse matrix A
// where row i holds the in-neighbors of vertex i, so Aggregate() is the
// product A * H (paper Section III-A).

#include <cstdint>
#include <vector>

#include "matrix/csr_matrix.hpp"

namespace dynasparse {

struct Edge {
  std::int64_t src = 0;
  std::int64_t dst = 0;
};

class Graph {
 public:
  Graph() = default;
  /// Build from an edge list. Edges are interpreted as src -> dst; the
  /// adjacency used by Aggregate has A[dst][src] = 1. Duplicates collapse.
  Graph(std::int64_t num_vertices, std::vector<Edge> edges);

  std::int64_t num_vertices() const { return num_vertices_; }
  std::int64_t num_edges() const { return num_edges_; }

  /// Binary adjacency (value 1.0 per edge) as CSR, A[dst][src].
  const CsrMatrix& adjacency() const { return adjacency_; }

  /// In-degree of v (row nnz of A), excluding any self loops added later.
  std::int64_t in_degree(std::int64_t v) const { return adjacency_.row_nnz(v); }

  /// Density of A = |E| / |V|^2.
  double adjacency_density() const { return adjacency_.density(); }

 private:
  std::int64_t num_vertices_ = 0;
  std::int64_t num_edges_ = 0;
  CsrMatrix adjacency_;
};

}  // namespace dynasparse
