#include "util/ordered_mutex.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace dynasparse {

const char* lock_rank_name(LockRank r) {
  switch (r) {
    case LockRank::kNetServerLifecycle: return "kNetServerLifecycle";
    case LockRank::kNetClientSend: return "kNetClientSend";
    case LockRank::kNetClientRecv: return "kNetClientRecv";
    case LockRank::kServiceWorkers: return "kServiceWorkers";
    case LockRank::kServiceSlots: return "kServiceSlots";
    case LockRank::kBatchGroups: return "kBatchGroups";
    case LockRank::kWorkQueue: return "kWorkQueue";
    case LockRank::kResultCache: return "kResultCache";
    case LockRank::kCompileCache: return "kCompileCache";
    case LockRank::kPlanStore: return "kPlanStore";
    case LockRank::kPlanStoreSide: return "kPlanStoreSide";
    case LockRank::kTilePool: return "kTilePool";
    case LockRank::kPoolDeque: return "kPoolDeque";
    case LockRank::kPoolIdle: return "kPoolIdle";
    case LockRank::kPoolJoin: return "kPoolJoin";
    case LockRank::kPoolError: return "kPoolError";
    case LockRank::kMemoryBudget: return "kMemoryBudget";
    case LockRank::kFaultInjector: return "kFaultInjector";
    case LockRank::kNetServerStats: return "kNetServerStats";
  }
  return "rank(?)";
}

namespace {

struct Held {
  const void* mu;
  LockRank rank;
};

/// Per-thread held-lock stack. Deliberately a trivially-destructible
/// fixed array, NOT a vector: a thread_local with a destructor is torn
/// down by __call_tls_dtors BEFORE exit() runs static destructors, and a
/// static object whose destructor takes an OrderedMutex (a service
/// shutting down at exit, the pool singleton joining its workers) would
/// then write into freed storage. Trivial TLS registers no destructor,
/// so the storage stays valid for the whole thread lifetime. Depth 16
/// dwarfs the deepest real chain (3); overflow entries are not recorded
/// (the rank CHECK still runs against everything that is).
struct HeldStack {
  Held items[16];
  int size = 0;
};

HeldStack& held_stack() {
  thread_local HeldStack stack;
  return stack;
}

/// One observed "held `from` while acquiring `to`" edge, with the first
/// full chain (and thread) that recorded it — the "other stack" an
/// inversion report shows.
struct EdgeRecord {
  std::string chain;
  std::string thread;
};

// Immortal (intentionally leaked) so locks taken from static
// destructors can still consult the graph safely.
std::mutex& graph_mu() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

std::map<std::pair<int, int>, EdgeRecord>& graph() {
  static auto* g = new std::map<std::pair<int, int>, EdgeRecord>;
  return *g;
}

std::string thread_desc() {
  std::ostringstream os;
  os << std::this_thread::get_id();
  return os.str();
}

std::string rank_desc(LockRank r) {
  std::ostringstream os;
  os << lock_rank_name(r) << "(" << static_cast<int>(r) << ")";
  return os.str();
}

std::string chain_desc(const HeldStack& held, LockRank acquiring) {
  std::ostringstream os;
  for (int i = 0; i < held.size; ++i) os << rank_desc(held.items[i].rank) << " -> ";
  os << "ACQUIRING " << rank_desc(acquiring);
  return os.str();
}

void default_handler(const LockOrderViolation& v) {
  std::fprintf(stderr, "%s\n", v.report);
  std::fflush(stderr);
  std::abort();
}

std::atomic<LockOrderHandler> g_handler{&default_handler};

/// DFS helper for find_path; graph_mu() held. `path` holds the nodes
/// from the search root to `node` inclusive.
bool dfs_path(int node, int to, std::vector<int>& path,
              std::vector<int>& visited) {
  if (node == to) return true;
  const auto& g = graph();
  for (auto it = g.lower_bound({node, 0});
       it != g.end() && it->first.first == node; ++it) {
    const int child = it->first.second;
    bool seen = false;
    for (int v : visited)
      if (v == child) { seen = true; break; }
    if (seen) continue;
    visited.push_back(child);
    path.push_back(child);
    if (dfs_path(child, to, path, visited)) return true;
    path.pop_back();
  }
  return false;
}

/// Path `from` ~> `to` through the recorded acquisition graph (both
/// endpoints included), or empty when unreachable. graph_mu() held.
std::vector<int> find_path(int from, int to) {
  std::vector<int> path{from};
  std::vector<int> visited{from};
  if (dfs_path(from, to, path, visited)) return path;
  return {};
}

}  // namespace

LockOrderHandler set_lock_order_handler(LockOrderHandler h) {
  return g_handler.exchange(h ? h : &default_handler);
}

void reset_lock_order_graph() {
  std::lock_guard<std::mutex> g(graph_mu());
  graph().clear();
}

namespace detail {

void lock_order_check_acquire(const void* mu, LockRank rank) {
  HeldStack& held = held_stack();
  if (held.size == 0) return;

  const std::string this_chain = chain_desc(held, rank);
  const std::string this_thread = thread_desc();

  struct Pending {
    LockOrderViolation::Kind kind;
    std::string report;
  };
  std::vector<Pending> violations;

  {
    std::lock_guard<std::mutex> g(graph_mu());
    bool well_ordered = true;
    for (int i = 0; i < held.size; ++i)
      well_ordered &= static_cast<int>(held.items[i].rank) < static_cast<int>(rank);
    // Only well-ordered acquisitions enter the graph: a violating edge is
    // reported right here, and recording it would make every LATER legal
    // use of the correct order re-report the same bug as a 2-cycle.
    if (well_ordered) {
      for (int i = 0; i < held.size; ++i) {
        const Held& h = held.items[i];
        EdgeRecord& e = graph()[{static_cast<int>(h.rank), static_cast<int>(rank)}];
        if (e.chain.empty()) {
          e.chain = this_chain;
          e.thread = this_thread;
        }
      }
    }

    for (int i = 0; i < held.size; ++i) {
      const Held& h = held.items[i];
      if (static_cast<int>(h.rank) < static_cast<int>(rank)) continue;
      std::ostringstream os;
      if (h.rank == rank && h.mu == mu) {
        os << "lock-order violation: re-acquiring " << rank_desc(rank)
           << " already held by this thread (non-recursive mutex)\n";
      } else {
        os << "lock-order violation: acquiring " << rank_desc(rank)
           << " while holding " << rank_desc(h.rank) << "\n";
      }
      os << "  this thread " << this_thread << ": " << this_chain;
      auto rev = graph().find({static_cast<int>(rank), static_cast<int>(h.rank)});
      if (rev != graph().end()) {
        os << "\n  opposite order recorded by thread " << rev->second.thread
           << ": " << rev->second.chain;
      }
      violations.push_back({LockOrderViolation::Kind::kRankOrder, os.str()});
      break;  // one rank report per acquisition is enough
    }

    // Cycle check: holding h while acquiring `rank` is an implicit
    // h -> rank edge; a recorded path rank ~> h closes a cycle. Paths of
    // length 2 (a direct rank -> h edge) are just the mirror of a plain
    // inversion — the rank check above already reported those — so only
    // genuine multi-edge cycles (3+ ranks) report here.
    for (int i = 0; i < held.size; ++i) {
      const Held& h = held.items[i];
      if (h.rank == rank) continue;
      std::vector<int> path =
          find_path(static_cast<int>(rank), static_cast<int>(h.rank));
      if (path.size() < 3) continue;
      std::ostringstream os;
      os << "lock-order cycle in the observed acquisition graph: ";
      for (int r : path) os << rank_desc(static_cast<LockRank>(r)) << " -> ";
      os << rank_desc(rank) << "\n";
      for (std::size_t p = 0; p + 1 < path.size(); ++p) {
        auto e = graph().find({path[p], path[p + 1]});
        if (e != graph().end())
          os << "  edge " << rank_desc(static_cast<LockRank>(path[p])) << " -> "
             << rank_desc(static_cast<LockRank>(path[p + 1])) << " recorded by thread "
             << e->second.thread << ": " << e->second.chain << "\n";
      }
      os << "  closing edge recorded by this thread " << this_thread << ": "
         << this_chain;
      violations.push_back({LockOrderViolation::Kind::kCycle, os.str()});
      break;
    }
  }

  LockOrderHandler handler = g_handler.load();
  for (const Pending& p : violations) {
    LockOrderViolation v;
    v.kind = p.kind;
    v.acquiring = rank;
    v.report = p.report.c_str();
    handler(v);  // may throw (tests) or abort (default)
  }
}

void lock_order_note_acquired(const void* mu, LockRank rank) {
  HeldStack& held = held_stack();
  if (held.size < static_cast<int>(sizeof(held.items) / sizeof(held.items[0])))
    held.items[held.size++] = {mu, rank};
}

void lock_order_note_released(const void* mu) {
  HeldStack& held = held_stack();
  for (int i = held.size - 1; i >= 0; --i) {
    if (held.items[i].mu == mu) {
      for (int j = i; j + 1 < held.size; ++j) held.items[j] = held.items[j + 1];
      --held.size;
      return;
    }
  }
}

}  // namespace detail

}  // namespace dynasparse
