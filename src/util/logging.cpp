#include "util/logging.hpp"

#include <atomic>
#include <iostream>

namespace dynasparse {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "[debug] ";
    case LogLevel::kInfo: return "[info ] ";
    case LogLevel::kWarn: return "[warn ] ";
    case LogLevel::kError: return "[error] ";
    default: return "";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void log_message(LogLevel level, const std::string& msg) {
  if (level < g_level.load()) return;
  std::ostream& os = (level >= LogLevel::kWarn) ? std::cerr : std::clog;
  os << tag(level) << msg << '\n';
}

}  // namespace dynasparse
