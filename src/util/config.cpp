#include "util/config.hpp"

namespace dynasparse {

int SimConfig::max_partition_size() const {
  // Largest N with N*N dense fp32 elements fitting the per-tile budget,
  // rounded down to a multiple of psys so systolic tiling stays aligned.
  std::size_t elems = onchip_tile_bytes / static_cast<std::size_t>(dense_elem_bytes);
  int n = 1;
  while (static_cast<std::size_t>(n + 1) * static_cast<std::size_t>(n + 1) <= elems) ++n;
  if (n >= psys) n -= n % psys;
  return n;
}

bool SimConfig::valid() const {
  if (psys <= 0 || (psys & (psys - 1)) != 0) return false;
  if (num_cores <= 0) return false;
  if (core_clock_hz <= 0 || soft_clock_hz <= 0) return false;
  if (ddr_bandwidth_bytes_per_s <= 0) return false;
  if (dense_elem_bytes <= 0 || coo_elem_bytes <= 0) return false;
  if (onchip_tile_bytes < static_cast<std::size_t>(psys) * psys * dense_elem_bytes)
    return false;
  if (load_balance_eta < 1) return false;
  if (min_partition < psys || min_partition % psys != 0) return false;
  if (sparse_storage_threshold <= 0.0 || sparse_storage_threshold > 1.0) return false;
  return true;
}

SimConfig u250_config() { return SimConfig{}; }

}  // namespace dynasparse
