#pragma once
// Strict input parsing shared by the serving entry points.
//
// The std::stoi family alone accepts "16abc" as 16 — a typo silently
// benchmarks the wrong configuration — and throws a bare
// std::invalid_argument("stoi") on "abc" that surfaces as an unhandled
// crash in a CLI. These wrappers require the whole token to be consumed
// and carry the offending text in the exception message, so callers can
// turn any bad value into one clean usage error. First written for
// service/request_stream.cpp; now also behind tools/dynasparse_serve and
// tools/dynasparse_cli so stream files and CLI flags share one parsing
// discipline.
//
// parse_env_int is the environment-variable counterpart: knobs like
// DYNASPARSE_RESULT_CACHE or DYNASPARSE_FORCE_THREADS must never change
// behavior silently on a typo. A set-but-malformed or out-of-range value
// logs one warning (util/logging.hpp) and deterministically falls back to
// the caller's default — never a crash, never a silent misparse.

#include <cstddef>
#include <cstdint>
#include <string>

namespace dynasparse {

/// Whole-token numeric parsers: throw std::invalid_argument unless the
/// entire string is one valid literal (std::stoi would accept "4x2" as 4),
/// or std::out_of_range when the value does not fit the target type. The
/// unsigned parsers additionally reject negative input, which std::stoull
/// would silently wrap to a huge positive value.
int strict_stoi(const std::string& v);
std::int64_t strict_stoll(const std::string& v);
std::uint64_t strict_stoull(const std::string& v);
double strict_stod(const std::string& v);

/// Whole-token base-16 parse (no 0x prefix, no sign): the PlanStore
/// irsig trailer and other fixed-width hex fields. Throws
/// std::invalid_argument unless every character is a hex digit (empty
/// included), std::out_of_range past 16 digits.
std::uint64_t strict_hex_u64(const std::string& v);

/// The one sanctioned doorway to string-valued environment variables
/// (directories, chaos specs): returns nullptr when `name` is unset OR
/// set empty — the shell idiom `VAR= cmd` means "unset" everywhere else
/// in this codebase, so it means that here too. Numeric knobs use
/// parse_env_int/parse_env_size instead; dynasparse_lint flags raw
/// getenv outside this file.
const char* env_text(const char* name);

/// Read the integer environment variable `name`. Unset (or set empty, the
/// shell idiom for unset) returns `fallback` silently; set but malformed
/// (non-whole-token) or outside [min_value, max_value] logs one warning
/// and returns `fallback`.
long long parse_env_int(const char* name, long long fallback,
                        long long min_value, long long max_value);

/// parse_env_int for non-negative size knobs (cache capacities, byte
/// bounds): any value in [0, SIZE_MAX representable as long long].
std::size_t parse_env_size(const char* name, std::size_t fallback);

/// Parse a non-negative byte size with optional binary-unit suffix:
/// "512m" / "512M" / "512mb" / "512MB" = 512 MiB, likewise "k"/"kb" and
/// "g"/"gb"; "b" is explicit bytes. A bare number is multiplied by
/// `bare_multiplier` (1 = bytes; the legacy *_MB knobs pass 1 MiB so
/// "256" keeps meaning 256 MiB). Throws std::invalid_argument on
/// anything else — negative values, unknown or dangling suffixes,
/// trailing garbage ("512mx") — and std::out_of_range on overflow: the
/// strict_stoi whole-token discipline.
std::size_t parse_size_bytes(const std::string& v, std::size_t bare_multiplier = 1);

/// parse_env_int-style byte-size knob (DYNASPARSE_MEM_BUDGET,
/// DYNASPARSE_RESULT_CACHE_MB): unset or empty returns `fallback`
/// silently; set but malformed or overflowing logs one warning and
/// returns `fallback`. `fallback` is in bytes.
std::size_t parse_env_size_bytes(const char* name, std::size_t fallback,
                                 std::size_t bare_multiplier = 1);

/// Parse a non-negative duration into milliseconds. Accepts a bare
/// integer ("250" = 250 ms), an "ms" suffix ("250ms"), or an "s" suffix
/// with an optionally fractional value ("1.5s" = 1500 ms). Throws
/// std::invalid_argument on anything else (negative values, unknown
/// suffixes, partial tokens — the strict_stoi discipline).
std::int64_t parse_duration_ms(const std::string& v);

/// parse_env_int-style duration knob (e.g. DYNASPARSE_DEADLINE_MS): unset
/// or empty returns `fallback` silently; set but malformed logs one
/// warning and returns `fallback`.
std::int64_t parse_env_duration_ms(const char* name, std::int64_t fallback);

}  // namespace dynasparse
