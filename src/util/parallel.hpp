#pragma once
// Host-side parallel primitives backed by a lazily-initialized persistent
// thread pool. Used by the simulator's functional path and the compiler's
// data partitioning; simulated timing never depends on how many host
// threads run (determinism is by construction: each parallel work item
// owns its output slot exclusively, and reductions combine per-chunk
// partials in chunk order, which depends only on n and the grain — never
// on the thread count or scheduling).
//
// The pool is created on first use and its workers persist for the life of
// the process, so a kernel invocation costs one condition-variable
// broadcast instead of nthreads thread spawns. Work is claimed in
// grain-sized chunks off an atomic cursor (task costs vary wildly with
// tile density, so dynamic claiming beats static splitting).

#include <cstdint>
#include <functional>
#include <vector>

namespace dynasparse {

/// Run fn(0..n-1) across up to `threads` host threads (0 = all hardware
/// threads). Work is claimed dynamically in chunks of `grain` indices
/// (0 = automatic). Exceptions propagate: the exception from the
/// lowest-indexed failing chunk is rethrown, and once a failure is
/// recorded no further work items start.
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn,
                  int threads = 0, std::int64_t grain = 0);

/// Chunked form: fn(begin, end) is called once per grain-sized chunk, so
/// per-item dispatch overhead is hoisted out of the inner loop.
void parallel_for_range(std::int64_t n,
                        const std::function<void(std::int64_t, std::int64_t)>& fn,
                        int threads = 0, std::int64_t grain = 0);

/// Chunking used by parallel_for/parallel_reduce for a given n. Depends
/// only on (n, grain) so results that combine per-chunk partials are
/// identical whatever the thread count.
std::int64_t resolve_grain(std::int64_t n, std::int64_t grain);

/// Deterministic parallel reduction. `map(i, acc)` folds item i into a
/// chunk-local accumulator (initialized to `identity`); `combine(into,
/// from)` merges chunk partials, applied serially in ascending chunk
/// order. The result is bit-identical for a fixed n regardless of thread
/// count.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::int64_t n, T identity, MapFn&& map, CombineFn&& combine,
                  int threads = 0, std::int64_t grain = 0) {
  if (n <= 0) return identity;
  const std::int64_t g = resolve_grain(n, grain);
  const std::int64_t nchunks = (n + g - 1) / g;
  std::vector<T> partials(static_cast<std::size_t>(nchunks), identity);
  parallel_for_range(
      n,
      [&](std::int64_t begin, std::int64_t end) {
        T& acc = partials[static_cast<std::size_t>(begin / g)];
        for (std::int64_t i = begin; i < end; ++i) map(i, acc);
      },
      threads, g);
  T out = identity;
  for (T& p : partials) combine(out, p);
  return out;
}

/// Number of workers the pool would use for threads=0 (informational).
int parallel_hardware_threads();

/// RAII guard: while alive on the current thread, parallel_for /
/// parallel_for_range / parallel_reduce run their chunks inline (serially
/// on this thread) instead of dispatching to the shared pool — the same
/// behavior nested parallel calls already get inside pool work.
///
/// This is how the inference service runs many requests concurrently on
/// its own workers without those requests contending for the pool's single
/// job slot: each request executes single-threaded, and concurrency comes
/// from running requests side by side (inter-request beats intra-request
/// parallelism once there is more than one request in flight). Results are
/// unaffected — chunk boundaries and reduction order depend only on
/// (n, grain), never on where the chunks run.
class ParallelInlineScope {
 public:
  ParallelInlineScope();
  ~ParallelInlineScope();
  ParallelInlineScope(const ParallelInlineScope&) = delete;
  ParallelInlineScope& operator=(const ParallelInlineScope&) = delete;

 private:
  bool prev_;
};

}  // namespace dynasparse
