#pragma once
// Host-side thread-pool helper. Used by the simulator's functional path
// and by the compiler's data partitioning; simulated timing never depends
// on how many host threads run (determinism is by construction: each
// parallel work item owns its output slot exclusively).

#include <cstdint>
#include <functional>

namespace dynasparse {

/// Run fn(0..n-1) across up to `threads` host threads (0 = all hardware
/// threads). Work items are claimed dynamically off an atomic counter
/// (task costs vary wildly with tile density); exceptions propagate.
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn,
                  int threads = 0);

}  // namespace dynasparse
