#pragma once
// Host-side parallel primitives backed by a lazily-initialized persistent
// work-stealing thread pool. Used by the simulator's functional path and
// the compiler's data partitioning; simulated timing never depends on how
// many host threads run (determinism is by construction: each parallel
// work item owns its output slot exclusively, and reductions combine
// per-chunk partials in chunk order, which depends only on n and the
// grain — never on the thread count or scheduling).
//
// Concurrency model (multi-job, work-stealing):
//   - Every parallel_for / parallel_for_range / parallel_reduce call is a
//     *job*: its index range is cut into grain-sized chunks (resolve_grain,
//     a pure function of (n, grain)), and chunk-range tasks are split
//     recursively onto per-worker deques. Owners pop LIFO (cache-warm,
//     ascending chunk order); idle workers steal FIFO (the biggest,
//     oldest ranges), so one large job fans out across every idle worker.
//   - Any number of jobs run concurrently: top-level calls from different
//     threads share the worker set instead of serializing on a single job
//     slot, so many small jobs overlap and none blocks behind a big one.
//   - Nested calls are jobs too: a parallel_for issued from inside pool
//     work pushes stealable tasks like any other job (no forced inline
//     execution), and the issuing thread helps run them until the nested
//     job completes. Idle workers steal nested work exactly like
//     top-level work.
//   - A job's `threads` argument caps how many threads may execute its
//     chunks concurrently (executor slots); the submitting thread always
//     participates and counts toward the cap.
// Workers spawn lazily up to the largest concurrency any call has
// requested and then park between jobs, so steady-state dispatch is a
// few deque pushes plus one wake, not thread spawns.
//
// Chunk *placement* is dynamic (stealing load-balances tasks whose cost
// varies wildly with tile density), but chunk *boundaries* and reduction
// order are (n, grain)-pure, so results are bit-identical whatever the
// thread count or steal schedule.

#include <cstdint>
#include <functional>
#include <vector>

namespace dynasparse {

/// Run fn(0..n-1) across up to `threads` host threads (0 = pool default:
/// all hardware threads, or DYNASPARSE_FORCE_THREADS when set). Work is
/// claimed dynamically in chunks of `grain` indices (0 = automatic).
/// Exceptions propagate: the exception from the lowest-indexed failing
/// chunk is rethrown, and once a failure is recorded no further work
/// items start.
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn,
                  int threads = 0, std::int64_t grain = 0);

/// Chunked form: fn(begin, end) is called once per grain-sized chunk, so
/// per-item dispatch overhead is hoisted out of the inner loop.
void parallel_for_range(std::int64_t n,
                        const std::function<void(std::int64_t, std::int64_t)>& fn,
                        int threads = 0, std::int64_t grain = 0);

/// Chunking used by parallel_for/parallel_reduce for a given n. Depends
/// only on (n, grain) so results that combine per-chunk partials are
/// identical whatever the thread count.
std::int64_t resolve_grain(std::int64_t n, std::int64_t grain);

/// Deterministic parallel reduction. `map(i, acc)` folds item i into a
/// chunk-local accumulator (initialized to `identity`); `combine(into,
/// from)` merges chunk partials, applied serially in ascending chunk
/// order. The result is bit-identical for a fixed n regardless of thread
/// count.
template <typename T, typename MapFn, typename CombineFn>
T parallel_reduce(std::int64_t n, T identity, MapFn&& map, CombineFn&& combine,
                  int threads = 0, std::int64_t grain = 0) {
  if (n <= 0) return identity;
  const std::int64_t g = resolve_grain(n, grain);
  const std::int64_t nchunks = (n + g - 1) / g;
  std::vector<T> partials(static_cast<std::size_t>(nchunks), identity);
  parallel_for_range(
      n,
      [&](std::int64_t begin, std::int64_t end) {
        T& acc = partials[static_cast<std::size_t>(begin / g)];
        for (std::int64_t i = begin; i < end; ++i) map(i, acc);
      },
      threads, g);
  T out = identity;
  for (T& p : partials) combine(out, p);
  return out;
}

/// Number of workers the pool would use for threads=0 (informational).
/// Honors the DYNASPARSE_FORCE_THREADS environment variable (read once at
/// first use), which overrides the hardware count so CI can exercise real
/// multi-thread pool behavior on 1-vCPU runners.
int parallel_hardware_threads();

/// Construct the pool's process-lifetime state now (workers still spawn
/// lazily). Long-lived objects whose destructors may run parallel work —
/// the inference service joins request workers in its destructor — call
/// this in their constructor so the pool outlives them under static
/// destruction ordering.
void parallel_ensure_pool();

/// Cumulative pool counters since process start (informational; used by
/// bench/pool_scaling to demonstrate multi-thread participation and by
/// tests). Counter updates are relaxed atomics: totals are exact once the
/// jobs being measured have completed.
struct PoolStats {
  std::int64_t jobs = 0;            // pool-dispatched jobs (serial calls excluded)
  std::int64_t chunks = 0;          // chunks executed through the pool
  std::int64_t chunks_stolen = 0;   // cumulative size (in chunks) of task
                                    // ranges taken from another thread's
                                    // deque; a re-stolen range counts again

  int threads = 0;                  // worker threads spawned so far
};
PoolStats parallel_pool_stats();

/// RAII guard: while alive on the current thread, parallel primitives
/// issued from this thread cap their effective concurrency at `max_threads`
/// (both the threads=0 default and explicit larger requests are clamped;
/// 1 means fully inline/serial on this thread; 0 or less = uncapped, the
/// scope is a no-op — matching the 0-means-default convention of every
/// other knob here). Scopes nest; the tightest enclosing cap wins. Results are unaffected — chunk boundaries and
/// reduction order depend only on (n, grain), never on where chunks run.
///
/// The cap bounds the scope's *concurrent* fan-out as a whole, not each
/// job separately: chunks of a capped job run their nested parallel
/// calls inline (the capped job itself may already occupy max_threads
/// executors), so nesting cannot compound the budget. (Executor slots
/// are claimed per chunk, so the set of distinct threads that touch the
/// work over its lifetime may be larger; at most max_threads run at any
/// instant.)
///
/// This is how the inference service bounds a request's intra-op fan-out
/// (ServiceOptions::intra_op_threads): the scope covers compilation and
/// execution alike without threading a parameter through every call.
class ParallelMaxThreadsScope {
 public:
  explicit ParallelMaxThreadsScope(int max_threads);
  ~ParallelMaxThreadsScope();
  ParallelMaxThreadsScope(const ParallelMaxThreadsScope&) = delete;
  ParallelMaxThreadsScope& operator=(const ParallelMaxThreadsScope&) = delete;

 private:
  int prev_;
};

/// RAII guard: while alive on the current thread, parallel_for /
/// parallel_for_range / parallel_reduce run their chunks inline (serially
/// on this thread) instead of dispatching to the shared pool. Equivalent
/// to ParallelMaxThreadsScope(1); kept as its own name because "run this
/// serially" is a common intent (tests, single-threaded baselines,
/// ServiceOptions::intra_op_threads == 1).
class ParallelInlineScope : public ParallelMaxThreadsScope {
 public:
  ParallelInlineScope() : ParallelMaxThreadsScope(1) {}
};

}  // namespace dynasparse
