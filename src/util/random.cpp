#include "util/random.hpp"

#include <algorithm>
#include <unordered_set>

namespace dynasparse {

std::vector<std::int64_t> Rng::sample_without_replacement(std::int64_t n, std::int64_t k) {
  if (k >= n) {
    std::vector<std::int64_t> all(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) all[static_cast<std::size_t>(i)] = i;
    return all;
  }
  // Floyd's algorithm: for j in [n-k, n), pick t in [0, j]; insert t unless
  // already chosen, in which case insert j. Produces a uniform k-subset.
  std::unordered_set<std::int64_t> chosen;
  chosen.reserve(static_cast<std::size_t>(k) * 2);
  std::vector<std::int64_t> out;
  out.reserve(static_cast<std::size_t>(k));
  for (std::int64_t j = n - k; j < n; ++j) {
    std::int64_t t = uniform_int(0, j);
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace dynasparse
