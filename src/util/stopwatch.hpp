#pragma once
// Wall-clock stopwatch for host-side measurements (compiler preprocessing
// time, Table IX). Simulated latency never uses this; it comes from cycle
// accounting in src/sim.

#include <chrono>

namespace dynasparse {

class Stopwatch {
 public:
  Stopwatch() { restart(); }

  void restart() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last restart().
  double elapsed_s() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double elapsed_ms() const { return elapsed_s() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dynasparse
