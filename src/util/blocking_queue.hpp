#pragma once
// MPMC blocking queue with close semantics and an optional capacity bound
// — the work feed between InferenceService::submit and its worker
// threads.
//
// Capacity 0 (the default) keeps the original unbounded behavior: push
// never blocks and memory is bounded only by what callers submit. A
// positive capacity turns the queue into the service's admission-control
// primitive: push() blocks while full (the "block" policy), try_push()
// refuses instead of blocking and distinguishes kFull from kClosed (the
// "reject" policy), and push_shed_oldest() makes room by popping the
// oldest queued items and handing them back to the caller to fail (the
// "shed-oldest" policy).
//
// close() interaction with bounded pushes: close() wakes every blocked
// producer AND consumer. A push() blocked on a full queue returns false
// (item dropped) once closed — it never sneaks an item into a closing
// queue — while items already queued remain poppable until drained, so a
// draining shutdown observes every accepted item exactly once. After
// close(), try_push() returns kClosed and push_shed_oldest() returns
// false without shedding anything.
//
// Every refusal is REPORTED, never silent: callers that race close()
// must translate a false/kClosed/kFull push into a typed failure for
// whoever handed them the item (InferenceService::submit maps kFull to
// AdmissionRejectedError and a closed-queue refusal to its shutdown
// error; see ServiceStressTest.SubmitRacingShutdownAlwaysGetsATypedAnswer).

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

#include "util/ordered_mutex.hpp"

namespace dynasparse {

template <typename T>
class BlockingQueue {
 public:
  /// capacity 0 = unbounded (push never blocks or refuses for space).
  /// `rank` places the queue's internal mutex in the global lock
  /// hierarchy (util/ordered_mutex.hpp); the default suits the service's
  /// work feed.
  explicit BlockingQueue(std::size_t capacity = 0,
                         LockRank rank = LockRank::kWorkQueue)
      : capacity_(capacity), mu_(rank) {}

  enum class PushResult { kOk, kFull, kClosed };

  /// Enqueue one item, blocking while the queue is at capacity. Returns
  /// false (dropping the item) once closed — including when close()
  /// arrives while this call is blocked waiting for space.
  bool push(T item) {
    {
      std::unique_lock<OrderedMutex> lk(mu_);
      space_cv_.wait(lk, [&] { return closed_ || !full_locked(); });
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    items_cv_.notify_one();
    return true;
  }

  /// Non-blocking enqueue: kFull when at capacity, kClosed once closed
  /// (the item is dropped in both refusal cases).
  PushResult try_push(T item) {
    {
      std::lock_guard<OrderedMutex> lk(mu_);
      if (closed_) return PushResult::kClosed;
      if (full_locked()) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    items_cv_.notify_one();
    return PushResult::kOk;
  }

  /// Enqueue one item, popping the oldest queued items into `shed` (in
  /// queue order) until there is room — one atomic step, so concurrent
  /// shedders cannot over-evict. Returns false (dropping the item,
  /// shedding nothing) once closed. With capacity 0 this never sheds.
  bool push_shed_oldest(T item, std::vector<T>& shed) {
    {
      std::lock_guard<OrderedMutex> lk(mu_);
      if (closed_) return false;
      while (full_locked()) {
        shed.push_back(std::move(items_.front()));
        items_.pop_front();
      }
      items_.push_back(std::move(item));
    }
    items_cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed *and*
  /// drained. Returns false only in the latter case.
  bool pop(T& out) {
    std::unique_lock<OrderedMutex> lk(mu_);
    items_cv_.wait(lk, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    space_cv_.notify_one();
    return true;
  }

  enum class PopResult { kOk, kTimeout, kClosed };

  /// Pop with a deadline: block until an item arrives (kOk), `deadline`
  /// passes with nothing queued (kTimeout), or the queue is closed *and*
  /// drained (kClosed). The batch scheduler's collect window waits here —
  /// a timeout means "stop collecting, dispatch what you have", never a
  /// dropped item.
  template <typename Clock, typename Duration>
  PopResult pop_until(T& out,
                      const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<OrderedMutex> lk(mu_);
    if (!items_cv_.wait_until(lk, deadline,
                              [&] { return closed_ || !items_.empty(); }))
      return PopResult::kTimeout;
    if (items_.empty()) return PopResult::kClosed;
    out = std::move(items_.front());
    items_.pop_front();
    lk.unlock();
    space_cv_.notify_one();
    return PopResult::kOk;
  }

  /// Non-blocking pop; false when nothing is queued right now.
  bool try_pop(T& out) {
    {
      std::lock_guard<OrderedMutex> lk(mu_);
      if (items_.empty()) return false;
      out = std::move(items_.front());
      items_.pop_front();
    }
    space_cv_.notify_one();
    return true;
  }

  /// Stop accepting pushes and wake all blocked producers and consumers.
  /// Queued items remain poppable until drained.
  void close() {
    {
      std::lock_guard<OrderedMutex> lk(mu_);
      closed_ = true;
    }
    items_cv_.notify_all();
    space_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<OrderedMutex> lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<OrderedMutex> lk(mu_);
    return items_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  bool full_locked() const {
    return capacity_ > 0 && items_.size() >= capacity_;
  }

  const std::size_t capacity_;
  mutable OrderedMutex mu_;
  OrderedCondVar items_cv_;  // waited on by consumers
  OrderedCondVar space_cv_;  // waited on by bounded producers
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dynasparse
