#pragma once
// Bounded-unbounded MPMC blocking queue with close semantics — the work
// feed between InferenceService::submit and its worker threads.
//
// push/pop pair a mutex with one condition variable; close() wakes every
// blocked consumer so workers can drain remaining items and exit. The
// queue is deliberately minimal: no priorities, no try_push backpressure —
// the service bounds memory by what callers submit, and requests hold
// shared_ptrs so queue entries are cheap.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace dynasparse {

template <typename T>
class BlockingQueue {
 public:
  /// Enqueue one item. Returns false (dropping the item) once closed.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an item is available or the queue is closed *and*
  /// drained. Returns false only in the latter case.
  bool pop(T& out) {
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Non-blocking pop; false when nothing is queued right now.
  bool try_pop(T& out) {
    std::lock_guard<std::mutex> lk(mu_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Stop accepting pushes and wake all blocked consumers. Queued items
  /// remain poppable until drained.
  void close() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lk(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return items_.size();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace dynasparse
