#pragma once
// Shared core of the service's caches (CompilationCache, ResultCache): a
// thread-safe content-keyed cache of shared_ptr<const V> with
//
//   - in-flight dedup: the first requester of an absent key runs the
//     factory; concurrent requesters for the same key block on a
//     shared_future instead of running it again;
//   - LRU eviction bounded by entry count and, when a weigher is
//     provided, by the approximate resident bytes of ready entries
//     (whichever bound is exceeded evicts);
//   - poisoned-entry erase: a factory that throws propagates to every
//     joined waiter and removes the entry, so the next request for that
//     key retries instead of observing the stale failure;
//   - hit/miss/eviction/in-flight-join/entry/byte stats.
//
// Entries hold shared_ptr<const V>, so a value stays alive for callers
// that hold it even after LRU eviction. max_entries 0 disables storage —
// every call runs the factory and counts a miss, which keeps an uncached
// baseline measurable through the same code path (callers may then skip
// computing a real key).
//
// In-flight entries are never evicted (their requesters hold the
// future), so the cache may briefly exceed max_entries while more keys
// run concurrently than fit. With a weigher, a lone value heavier than
// max_bytes is dropped by its own insertion — returned to the caller,
// never resident, and without evicting any other entry as collateral.

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

namespace dynasparse {

struct KeyedCacheStats {
  std::int64_t hits = 0;            // key found (ready or in-flight)
  std::int64_t misses = 0;          // key absent; this call ran the factory
  std::int64_t evictions = 0;       // entries dropped by LRU (count or bytes)
  std::int64_t inflight_joins = 0;  // hits that waited on a run in flight
  std::int64_t entries = 0;         // current resident entries
  std::int64_t bytes = 0;           // weighed bytes of ready entries (0 without a weigher)
};

template <typename Key, typename V>
class KeyedFutureCache {
 public:
  using Weigher = std::function<std::size_t(const V&)>;

  /// max_bytes 0 = unbounded by bytes; `weigh` empty = no byte accounting.
  explicit KeyedFutureCache(std::size_t max_entries, std::size_t max_bytes = 0,
                            Weigher weigh = {})
      : max_entries_(max_entries), max_bytes_(max_bytes), weigh_(std::move(weigh)) {}

  /// Return the value for `key`, running `make` at most once per key. May
  /// block while another thread runs the same key. Throws whatever `make`
  /// throws.
  std::shared_ptr<const V> get_or_make(
      const Key& key, const std::function<std::shared_ptr<const V>()>& make) {
    if (max_entries_ == 0) {
      {
        std::lock_guard<std::mutex> lk(mu_);
        ++stats_.misses;
      }
      return make();
    }

    std::promise<std::shared_ptr<const V>> promise;
    ValueFuture fut;
    bool make_here = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        ++stats_.hits;
        if (!it->second.ready) ++stats_.inflight_joins;
        touch(it->second);
        fut = it->second.value;
      } else {
        ++stats_.misses;
        make_here = true;
        Entry e;
        e.value = promise.get_future().share();
        lru_.push_back(key);
        e.lru_pos = std::prev(lru_.end());
        fut = e.value;
        entries_.emplace(key, std::move(e));
        ++stats_.entries;
      }
    }

    if (!make_here) return fut.get();  // rethrows if the making thread failed

    try {
      std::shared_ptr<const V> value = make();
      const std::size_t bytes = weigh_ ? weigh_(*value) : 0;
      promise.set_value(value);
      std::lock_guard<std::mutex> lk(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        if (max_bytes_ > 0 && bytes > max_bytes_) {
          // The value alone exceeds the byte bound: it can never stay
          // resident, so drop only it — running the LRU sweep instead
          // would evict every older entry first (the newcomer sits at
          // the MRU end) and flush the whole cache as collateral.
          lru_.erase(it->second.lru_pos);
          entries_.erase(it);
          --stats_.entries;
          ++stats_.evictions;
        } else {
          it->second.ready = true;
          it->second.bytes = bytes;
          stats_.bytes += static_cast<std::int64_t>(bytes);
        }
      }
      evict_excess();
      return value;
    } catch (...) {
      // Waiters blocked on the future observe the same exception; the
      // entry is erased so the next request for this key retries.
      promise.set_exception(std::current_exception());
      {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
          lru_.erase(it->second.lru_pos);
          entries_.erase(it);
          --stats_.entries;
        }
      }
      throw;
    }
  }

  /// Ready entry for `key`, or nullptr (does not wait on in-flight runs
  /// and does not touch LRU order or stats).
  std::shared_ptr<const V> peek(const Key& key) const {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end() || !it->second.ready) return nullptr;
    return it->second.value.get();
  }

  KeyedCacheStats stats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
  }

  std::size_t max_entries() const { return max_entries_; }
  std::size_t max_bytes() const { return max_bytes_; }

  /// Drop every ready entry (in-flight runs complete unobserved).
  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.ready) {
        stats_.bytes -= static_cast<std::int64_t>(it->second.bytes);
        lru_.erase(it->second.lru_pos);
        it = entries_.erase(it);
        --stats_.entries;
      } else {
        ++it;
      }
    }
  }

 private:
  using ValueFuture = std::shared_future<std::shared_ptr<const V>>;
  struct Entry {
    ValueFuture value;
    bool ready = false;     // set once the making thread fulfilled it
    std::size_t bytes = 0;  // weighed size, valid once ready
    typename std::list<Key>::iterator lru_pos;
  };

  /// Move to MRU end; mu_ held.
  void touch(Entry& e) {
    lru_.splice(lru_.end(), lru_, e.lru_pos);
    e.lru_pos = std::prev(lru_.end());
  }

  /// Drop ready LRU entries while either bound is exceeded; mu_ held.
  void evict_excess() {
    auto over = [&] {
      return entries_.size() > max_entries_ ||
             (max_bytes_ > 0 &&
              stats_.bytes > static_cast<std::int64_t>(max_bytes_));
    };
    auto pos = lru_.begin();
    while (over() && pos != lru_.end()) {
      auto it = entries_.find(*pos);
      if (it != entries_.end() && it->second.ready) {
        stats_.bytes -= static_cast<std::int64_t>(it->second.bytes);
        pos = lru_.erase(pos);
        entries_.erase(it);
        --stats_.entries;
        ++stats_.evictions;
      } else {
        ++pos;
      }
    }
  }

  const std::size_t max_entries_;
  const std::size_t max_bytes_;
  const Weigher weigh_;
  mutable std::mutex mu_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = least recently used
  KeyedCacheStats stats_;
};

}  // namespace dynasparse
