#pragma once
// Shared core of the service's caches (CompilationCache, ResultCache,
// PlanStore): a thread-safe content-keyed cache of shared_ptr<const V>
// with
//
//   - in-flight dedup: the first requester of an absent key runs the
//     factory; concurrent requesters for the same key block on a
//     shared_future instead of running it again;
//   - LRU eviction bounded by entry count and, when a weigher is
//     provided, by the approximate resident bytes of ready entries
//     (whichever bound is exceeded evicts);
//   - shared-budget accounting: with a MemoryBudget tier attached, every
//     byte the private accounting tracks is mirrored into the
//     process-wide budget (charge on entry-ready, credit on
//     evict/clear/failed-fill), and a charge that pushes the budget over
//     its limit triggers a cross-tier rebalance AFTER this cache's lock
//     is released (lock order is always cache -> budget). The budget
//     drives evictions back through shrink_to_bytes();
//   - poisoned-entry erase: a factory that throws fails every joined
//     waiter and removes the entry *before* the failure is published, so
//     a later request for that key retries instead of observing the
//     stale failure. The leader rethrows its own exception; each joiner
//     throws a FRESH CacheFillFailedError carrying the leader's message —
//     never the leader's exception object itself, which would be shared
//     mutable state (refcount + message) across joiner threads;
//   - cancelled-leader hand-off: when the factory aborts cooperatively
//     (RequestAbortedError — the leader's request was cancelled or blew
//     its deadline, see util/cancellation.hpp), joined waiters do NOT
//     inherit the abort; each retries the lookup, and the first one in
//     becomes the new leader running its own factory (with its own
//     token). Only the aborted request observes its abort;
//   - hit/miss/eviction/in-flight-join/aborted-retry/entry/byte stats.
//
// Entries hold shared_ptr<const V>, so a value stays alive for callers
// that hold it even after LRU eviction. max_entries 0 disables storage —
// every call runs the factory and counts a miss, which keeps an uncached
// baseline measurable through the same code path (callers may then skip
// computing a real key).
//
// In-flight entries are never evicted (their requesters hold the
// future), so the cache may briefly exceed max_entries while more keys
// run concurrently than fit. A lone value heavier than the hard byte
// ceiling — the private max_bytes, or the whole shared budget when the
// cache runs under one without a private bound — is dropped by its own
// insertion: returned to the caller, never resident, never charged, and
// without evicting any other entry as collateral (admit-then-drop,
// pinned by tests/memory_budget_test.cpp).

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>

#include "util/cancellation.hpp"
#include "util/memory_budget.hpp"
#include "util/ordered_mutex.hpp"

namespace dynasparse {

/// What a joiner sees when the leader's factory failed with a non-abort
/// error: a per-joiner object carrying the leader's message. (Leader
/// aborts — RequestAbortedError — are not surfaced to joiners at all;
/// they retry and take over the fill.)
struct CacheFillFailedError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

struct KeyedCacheStats {
  std::int64_t hits = 0;            // key found (ready or in-flight)
  std::int64_t misses = 0;          // key absent; this call ran the factory
  std::int64_t evictions = 0;       // entries dropped by LRU (count or bytes)
  std::int64_t inflight_joins = 0;  // hits that waited on a run in flight
  std::int64_t aborted_retries = 0; // joins that retried after their leader
                                    // aborted cooperatively (hand-off)
  std::int64_t entries = 0;         // current resident entries
  std::int64_t bytes = 0;           // weighed bytes of ready entries (0 without a weigher)
};

template <typename Key, typename V>
class KeyedFutureCache {
 public:
  using Weigher = std::function<std::size_t(const V&)>;
  using BudgetTier = std::shared_ptr<MemoryBudget::Tier>;

  /// max_bytes 0 = unbounded by bytes; `weigh` empty = no byte
  /// accounting. `tier` (optional) mirrors the byte accounting into a
  /// shared MemoryBudget — pass max_bytes 0 alongside it to let the
  /// budget, not a private ceiling, bound this cache.
  /// `rank` places this cache's mutex in the global lock hierarchy
  /// (util/ordered_mutex.hpp): each wrapper passes its own rank
  /// (kResultCache / kCompileCache / kPlanStore), all of which order
  /// before kMemoryBudget — the cache -> budget contract above.
  explicit KeyedFutureCache(std::size_t max_entries, std::size_t max_bytes = 0,
                            Weigher weigh = {}, BudgetTier tier = nullptr,
                            LockRank rank = LockRank::kResultCache)
      : max_entries_(max_entries), max_bytes_(max_bytes),
        weigh_(std::move(weigh)), tier_(std::move(tier)), mu_(rank) {}

  /// Return the value for `key`, running `make` at most once per key. May
  /// block while another thread runs the same key. The caller that ran
  /// `make` (the leader) throws whatever `make` threw; a joiner whose
  /// leader failed throws its own fresh CacheFillFailedError with the
  /// leader's message — except that a leader's RequestAbortedError is
  /// never propagated to joiners at all: each retries and, if the entry
  /// is still absent, runs its own `make` (hand-off).
  std::shared_ptr<const V> get_or_make(
      const Key& key, const std::function<std::shared_ptr<const V>()>& make) {
    if (max_entries_ == 0) {
      {
        std::lock_guard<OrderedMutex> lk(mu_);
        ++stats_.misses;
      }
      return make();
    }

    for (;;) {
      std::promise<FillResult> promise;
      ValueFuture fut;
      bool make_here = false;
      {
        std::lock_guard<OrderedMutex> lk(mu_);
        auto it = entries_.find(key);
        if (it != entries_.end()) {
          ++stats_.hits;
          if (!it->second.ready) ++stats_.inflight_joins;
          touch(it->second);
          fut = it->second.value;
        } else {
          ++stats_.misses;
          make_here = true;
          Entry e;
          e.value = promise.get_future().share();
          lru_.push_back(key);
          e.lru_pos = std::prev(lru_.end());
          fut = e.value;
          entries_.emplace(key, std::move(e));
          ++stats_.entries;
        }
      }

      if (!make_here) {
        const FillResult& r = fut.get();  // never throws: failures are data
        if (r.value) return r.value;
        if (r.aborted) {
          // The leader's request was cancelled or hit its deadline — an
          // abort that belongs to *that* request, not this one. The dead
          // entry is already erased (erase happens before the failure is
          // published), so loop: this caller re-looks-up and becomes the
          // new leader, running its own factory under its own token.
          std::lock_guard<OrderedMutex> lk(mu_);
          ++stats_.aborted_retries;
          continue;
        }
        throw CacheFillFailedError(r.error);  // this joiner's own object
      }

      try {
        std::shared_ptr<const V> value = make();
        const std::size_t bytes = weigh_ ? weigh_(*value) : 0;
        promise.set_value(FillResult{value, false, std::string()});
        bool need_rebalance = false;
        {
          std::lock_guard<OrderedMutex> lk(mu_);
          auto it = entries_.find(key);
          if (it != entries_.end()) {
            if (std::size_t hard = hard_byte_cap(); hard > 0 && bytes > hard) {
              // The value alone exceeds the byte bound (the private
              // ceiling, or the whole shared budget): it can never stay
              // resident, so drop only it — running the LRU sweep instead
              // would evict every older entry first (the newcomer sits at
              // the MRU end) and flush the whole cache as collateral. It
              // is never charged to the budget either: the caller-held
              // copy is transient request state, not cache residency.
              lru_.erase(it->second.lru_pos);
              entries_.erase(it);
              --stats_.entries;
              ++stats_.evictions;
            } else {
              it->second.ready = true;
              it->second.bytes = bytes;
              stats_.bytes += static_cast<std::int64_t>(bytes);
              if (tier_) need_rebalance = tier_->charge(bytes);
            }
          }
          evict_excess();
        }
        // Cross-tier pressure runs with no cache lock held: the budget's
        // shrinkers re-enter caches (this one included) through
        // shrink_to_bytes, which takes mu_ itself.
        if (need_rebalance) tier_->owner().rebalance();
        return value;
      } catch (const std::exception& e) {
        // Erase the entry BEFORE publishing the failure: a waiter that
        // wakes (and, for an abort, retries) must find the key absent so
        // its re-lookup inserts a fresh entry instead of re-joining the
        // dead future. The failure is published as data — abort flag +
        // message — never as this thread's exception object, so each
        // joiner materializes its own error and no refcounted exception
        // state is shared across threads.
        erase_failed_entry(key);
        FillResult r;
        r.aborted = dynamic_cast<const RequestAbortedError*>(&e) != nullptr;
        r.error = e.what();
        promise.set_value(std::move(r));
        throw;
      } catch (...) {
        erase_failed_entry(key);
        FillResult r;
        r.error = "cache fill failed: unknown exception";
        promise.set_value(std::move(r));
        throw;
      }
    }
  }

  /// Ready entry for `key`, or nullptr (does not wait on in-flight runs
  /// and does not touch LRU order or stats).
  std::shared_ptr<const V> peek(const Key& key) const {
    std::lock_guard<OrderedMutex> lk(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end() || !it->second.ready) return nullptr;
    return it->second.value.get().value;  // ready entries always hold a value
  }

  KeyedCacheStats stats() const {
    std::lock_guard<OrderedMutex> lk(mu_);
    return stats_;
  }

  std::size_t max_entries() const { return max_entries_; }
  std::size_t max_bytes() const { return max_bytes_; }
  const BudgetTier& budget_tier() const { return tier_; }

  /// Evict ready LRU entries until the weighed bytes are at most
  /// `target`. The MemoryBudget's shrinker hook: invoked with no budget
  /// lock held, takes mu_ itself, credits the tier per eviction.
  /// In-flight entries are skipped (their requesters hold the future),
  /// so the result is best-effort under concurrency.
  void shrink_to_bytes(std::size_t target) {
    std::lock_guard<OrderedMutex> lk(mu_);
    auto pos = lru_.begin();
    while (stats_.bytes > static_cast<std::int64_t>(target) && pos != lru_.end()) {
      auto it = entries_.find(*pos);
      if (it != entries_.end() && it->second.ready) {
        drop_ready_locked(it);
        pos = lru_.erase(pos);
        ++stats_.evictions;
      } else {
        ++pos;
      }
    }
  }

  /// Drop every ready entry (in-flight runs complete unobserved).
  void clear() {
    std::lock_guard<OrderedMutex> lk(mu_);
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (it->second.ready) {
        lru_.erase(it->second.lru_pos);
        auto victim = it++;
        drop_ready_locked(victim);
      } else {
        ++it;
      }
    }
  }

 private:
  /// How a fill resolves for joiners. Failures travel as plain data (an
  /// abort flag and a message), not as the leader's exception object:
  /// sharing one exception across joiner threads would race its final
  /// refcount release against another joiner's what() read.
  struct FillResult {
    std::shared_ptr<const V> value;  // null when the fill failed
    bool aborted = false;            // leader abort: joiners retry, not fail
    std::string error;               // leader's message (non-abort failures)
  };
  using ValueFuture = std::shared_future<FillResult>;
  struct Entry {
    ValueFuture value;
    bool ready = false;     // set once the making thread fulfilled it
    std::size_t bytes = 0;  // weighed size, valid once ready
    typename std::list<Key>::iterator lru_pos;
  };

  /// The ceiling a single value must fit under to stay resident: the
  /// private max_bytes when set, else the shared budget's limit.
  std::size_t hard_byte_cap() const {
    if (max_bytes_ > 0) return max_bytes_;
    if (tier_) return tier_->owner().limit_bytes();
    return 0;
  }

  /// Erase a ready entry and release its byte accounting (private stats
  /// and budget tier); mu_ held. Does not touch lru_.
  void drop_ready_locked(typename std::map<Key, Entry>::iterator it) {
    stats_.bytes -= static_cast<std::int64_t>(it->second.bytes);
    if (tier_) tier_->credit(it->second.bytes);
    entries_.erase(it);
    --stats_.entries;
  }

  /// Remove `key` after a failed fill (the leader is about to publish
  /// the failure and rethrow); no-op if the entry is already gone. The
  /// entry never became ready, so no bytes were charged.
  void erase_failed_entry(const Key& key) {
    std::lock_guard<OrderedMutex> lk(mu_);
    auto it = entries_.find(key);
    if (it == entries_.end()) return;
    lru_.erase(it->second.lru_pos);
    entries_.erase(it);
    --stats_.entries;
  }

  /// Move to MRU end; mu_ held.
  void touch(Entry& e) {
    lru_.splice(lru_.end(), lru_, e.lru_pos);
    e.lru_pos = std::prev(lru_.end());
  }

  /// Drop ready LRU entries while either private bound is exceeded; mu_
  /// held. (The shared budget's bound is enforced by rebalance ->
  /// shrink_to_bytes, never from under this lock.)
  void evict_excess() {
    auto over = [&] {
      return entries_.size() > max_entries_ ||
             (max_bytes_ > 0 &&
              stats_.bytes > static_cast<std::int64_t>(max_bytes_));
    };
    auto pos = lru_.begin();
    while (over() && pos != lru_.end()) {
      auto it = entries_.find(*pos);
      if (it != entries_.end() && it->second.ready) {
        drop_ready_locked(it);
        pos = lru_.erase(pos);
        ++stats_.evictions;
      } else {
        ++pos;
      }
    }
  }

  const std::size_t max_entries_;
  const std::size_t max_bytes_;
  const Weigher weigh_;
  const BudgetTier tier_;
  mutable OrderedMutex mu_;
  std::map<Key, Entry> entries_;
  std::list<Key> lru_;  // front = least recently used
  KeyedCacheStats stats_;
};

}  // namespace dynasparse
