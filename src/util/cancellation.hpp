#pragma once
// Cooperative cancellation + deadlines for long-running pipeline work.
//
// A CancellationSource owns the abort flag (and optionally an absolute
// deadline); the CancellationTokens it hands out are cheap value types
// that the compiler / planner / runtime check at loop boundaries.
// Checking is lock-free — one relaxed atomic load (plus a steady_clock
// read when a deadline is set) — so a check per kernel or per planner
// iteration costs nothing measurable against the work it bounds.
//
// A default-constructed token never aborts (null shared state), so every
// API that takes one can default it and keep its pre-cancellation
// behavior: run_inference, run_compiled, compile() callers outside the
// service never pay for or observe cancellation.
//
// Cancellation only ever *aborts*: a check either returns or throws one
// of the typed errors below; it never alters the computation. A request
// that completes is therefore bit-identical to an uncancellable run —
// the determinism contract is untouched.
//
// Error taxonomy: both abort reasons derive from RequestAbortedError so
// machinery that must treat "work stopped cooperatively, no result was
// produced" uniformly (keyed_future_cache's leader hand-off, the service
// worker's outcome classification) can catch one base, while callers
// still tell a cancel from a blown deadline.

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>

namespace dynasparse {

/// Base of the cooperative-abort errors: the work stopped before
/// producing a result, by request — not because it failed.
struct RequestAbortedError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// The request was cancelled (InferenceService::cancel or shutdown).
struct CancelledError : RequestAbortedError {
  using RequestAbortedError::RequestAbortedError;
};

/// The request's deadline passed before it finished.
struct DeadlineExceededError : RequestAbortedError {
  using RequestAbortedError::RequestAbortedError;
};

namespace detail {
struct CancelState {
  std::atomic<bool> cancelled{false};
  bool has_deadline = false;  // immutable after construction
  std::chrono::steady_clock::time_point deadline{};
};
}  // namespace detail

/// Read-only view of a CancellationSource. Copyable, cheap; a
/// default-constructed token never aborts.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True once the owning source was cancelled.
  bool cancelled() const {
    return state_ && state_->cancelled.load(std::memory_order_relaxed);
  }
  /// True once the deadline (if any) has passed.
  bool expired() const {
    return state_ && state_->has_deadline &&
           std::chrono::steady_clock::now() >= state_->deadline;
  }
  /// Either abort reason.
  bool aborted() const { return cancelled() || expired(); }

  /// Loop-boundary check: returns normally or throws the typed abort
  /// error. Cancellation is checked first so cancel() wins when both
  /// conditions hold (the more specific caller intent).
  void check() const {
    if (!state_) return;
    if (state_->cancelled.load(std::memory_order_relaxed))
      throw CancelledError("request cancelled");
    if (state_->has_deadline &&
        std::chrono::steady_clock::now() >= state_->deadline)
      throw DeadlineExceededError("request deadline exceeded");
  }

  /// Does this token carry a deadline?
  bool has_deadline() const { return state_ && state_->has_deadline; }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const detail::CancelState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<const detail::CancelState> state_;
};

/// Owner of the abort flag. One source per service slot; tokens flow down
/// the compile/execute pipeline by value.
class CancellationSource {
 public:
  CancellationSource() : state_(std::make_shared<detail::CancelState>()) {}
  /// Source whose tokens additionally expire at `deadline`.
  explicit CancellationSource(std::chrono::steady_clock::time_point deadline)
      : state_(std::make_shared<detail::CancelState>()) {
    state_->has_deadline = true;
    state_->deadline = deadline;
  }

  void cancel() { state_->cancelled.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return state_->cancelled.load(std::memory_order_relaxed);
  }
  CancellationToken token() const { return CancellationToken(state_); }

 private:
  std::shared_ptr<detail::CancelState> state_;
};

}  // namespace dynasparse
