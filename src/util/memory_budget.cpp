#include "util/memory_budget.hpp"

#include <algorithm>

namespace dynasparse {

bool MemoryBudget::Tier::charge(std::size_t bytes) {
  if (bytes == 0) return false;
  std::lock_guard<OrderedMutex> lk(owner_->mu_);
  bytes_ += static_cast<std::int64_t>(bytes);
  high_water_ = std::max(high_water_, bytes_);
  owner_->total_ += static_cast<std::int64_t>(bytes);
  owner_->high_water_ = std::max(owner_->high_water_, owner_->total_);
  return owner_->limit_ > 0 &&
         owner_->total_ > static_cast<std::int64_t>(owner_->limit_);
}

void MemoryBudget::Tier::credit(std::size_t bytes) {
  if (bytes == 0) return;
  std::lock_guard<OrderedMutex> lk(owner_->mu_);
  bytes_ -= static_cast<std::int64_t>(bytes);
  owner_->total_ -= static_cast<std::int64_t>(bytes);
}

void MemoryBudget::Tier::set_shrinker(std::function<void(std::size_t)> shrink) {
  std::lock_guard<OrderedMutex> lk(owner_->mu_);
  shrink_ = std::move(shrink);
}

std::int64_t MemoryBudget::Tier::bytes() const {
  std::lock_guard<OrderedMutex> lk(owner_->mu_);
  return bytes_;
}

MemoryBudget::~MemoryBudget() {
  // Move the callbacks out under the lock, destroy them after releasing
  // it: dropping a shrinker may run a captured cache's destructor, which
  // uncharges its tier and re-enters mu_.
  std::vector<std::function<void(std::size_t)>> dropped;
  {
    std::lock_guard<OrderedMutex> lk(mu_);
    dropped.reserve(tiers_.size());
    for (auto& tier : tiers_) dropped.push_back(std::move(tier->shrink_));
  }
}

std::shared_ptr<MemoryBudget::Tier> MemoryBudget::register_tier(std::string name,
                                                                double weight) {
  if (!(weight > 0.0)) weight = 1.0;
  std::lock_guard<OrderedMutex> lk(mu_);
  tiers_.push_back(std::shared_ptr<Tier>(
      new Tier(this, std::move(name), weight)));
  return tiers_.back();
}

void MemoryBudget::bind_shrinker(const std::string& name,
                                 std::function<void(std::size_t)> shrink) {
  std::lock_guard<OrderedMutex> lk(mu_);
  for (auto& tier : tiers_)
    if (tier->name_ == name) {
      tier->shrink_ = std::move(shrink);
      return;
    }
}

std::vector<std::size_t> MemoryBudget::targets_locked() const {
  // Waterfill: tiers at or under their weighted share keep their bytes
  // (their target is what they hold), and the capacity they leave unused
  // is re-split among the still-over tiers by weight. Each round either
  // terminates or moves at least one tier to the "capped" side, so the
  // loop runs at most tiers_.size() rounds. Sum of targets == limit
  // exactly when every tier is over-share; <= limit otherwise.
  const std::size_t n = tiers_.size();
  std::vector<std::size_t> targets(n, 0);
  std::vector<bool> capped(n, false);
  for (;;) {
    double weight_sum = 0.0;
    std::int64_t capped_bytes = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (capped[i]) capped_bytes += tiers_[i]->bytes_;
      else weight_sum += tiers_[i]->weight_;
    }
    const std::int64_t remaining =
        std::max<std::int64_t>(0, static_cast<std::int64_t>(limit_) - capped_bytes);
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (capped[i]) continue;
      const auto share = static_cast<std::int64_t>(
          static_cast<double>(remaining) * tiers_[i]->weight_ / weight_sum);
      if (tiers_[i]->bytes_ <= share) {
        capped[i] = true;  // under-share: keeps its bytes, frees its slack
        changed = true;
      } else {
        targets[i] = static_cast<std::size_t>(share);
      }
    }
    if (!changed) break;
  }
  for (std::size_t i = 0; i < n; ++i)
    if (capped[i]) targets[i] = static_cast<std::size_t>(tiers_[i]->bytes_);
  return targets;
}

void MemoryBudget::rebalance() {
  if (limit_ == 0) return;
  for (int pass = 0; pass < 3; ++pass) {
    std::vector<std::pair<std::function<void(std::size_t)>, std::size_t>> work;
    std::int64_t before = 0;
    {
      std::lock_guard<OrderedMutex> lk(mu_);
      if (total_ <= static_cast<std::int64_t>(limit_)) {
        if (pass > 0) rebalancing_ = false;
        return;
      }
      if (pass == 0) {
        if (rebalancing_) return;  // coalesce: the running pass handles it
        rebalancing_ = true;
      }
      before = total_;
      ++rebalances_;
      std::vector<std::size_t> targets = targets_locked();
      // Reverse registration order: caches whose entries pin another
      // tier's values (cached programs holding pool operands) are
      // registered after that tier and must shrink first.
      for (std::size_t i = tiers_.size(); i-- > 0;) {
        Tier& t = *tiers_[i];
        if (t.shrink_ && t.bytes_ > static_cast<std::int64_t>(targets[i])) {
          ++t.shrinks_;
          work.emplace_back(t.shrink_, targets[i]);
        }
      }
    }
    for (auto& [shrink, target] : work) shrink(target);
    std::lock_guard<OrderedMutex> lk(mu_);
    if (work.empty() || total_ >= before) {  // no shrinkers or no progress
      rebalancing_ = false;
      return;
    }
  }
  std::lock_guard<OrderedMutex> lk(mu_);
  rebalancing_ = false;
}

std::int64_t MemoryBudget::total_bytes() const {
  std::lock_guard<OrderedMutex> lk(mu_);
  return total_;
}

MemoryBudgetStats MemoryBudget::stats() const {
  std::lock_guard<OrderedMutex> lk(mu_);
  MemoryBudgetStats out;
  out.limit_bytes = limit_;
  out.bytes = total_;
  out.high_water = high_water_;
  out.rebalances = rebalances_;
  out.tiers.reserve(tiers_.size());
  for (const auto& tier : tiers_) {
    MemoryTierStats ts;
    ts.name = tier->name_;
    ts.weight = tier->weight_;
    ts.bytes = tier->bytes_;
    ts.high_water = tier->high_water_;
    ts.shrinks = tier->shrinks_;
    out.tiers.push_back(std::move(ts));
  }
  return out;
}

}  // namespace dynasparse
