#include "util/stopwatch.hpp"

// Header-only in practice; this TU anchors the target so every module has a
// .cpp and the library links even when nothing else references it.
