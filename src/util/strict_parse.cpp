#include "util/strict_parse.hpp"

#include <cctype>
#include <cstdlib>
#include <limits>
#include <stdexcept>

#include "util/logging.hpp"

namespace dynasparse {

namespace {

/// Run `parse` and require it to consume the whole token. Rewraps the
/// stoi-family exceptions so the message names the offending text (the
/// bare "stoi" they throw is useless in a usage error).
template <typename T, typename ParseFn>
T parse_full(const std::string& value, ParseFn parse) {
  std::size_t consumed = 0;
  T result{};
  try {
    result = parse(value, &consumed);
  } catch (const std::out_of_range&) {
    throw std::out_of_range("value out of range: \"" + value + "\"");
  } catch (const std::invalid_argument&) {
    throw std::invalid_argument("not a number: \"" + value + "\"");
  }
  if (consumed != value.size())
    throw std::invalid_argument("trailing characters in \"" + value + "\"");
  return result;
}

/// std::stoull happily parses "-1" as 2^64-1; an unsigned knob must
/// reject negative input instead of wrapping it.
void reject_negative(const std::string& v) {
  std::size_t i = 0;
  while (i < v.size() && std::isspace(static_cast<unsigned char>(v[i]))) ++i;
  if (i < v.size() && v[i] == '-')
    throw std::invalid_argument("negative value \"" + v + "\" for unsigned field");
}

}  // namespace

int strict_stoi(const std::string& v) {
  return parse_full<int>(v, [](const std::string& s, std::size_t* p) {
    return std::stoi(s, p);
  });
}

std::int64_t strict_stoll(const std::string& v) {
  return parse_full<std::int64_t>(v, [](const std::string& s, std::size_t* p) {
    return std::stoll(s, p);
  });
}

std::uint64_t strict_stoull(const std::string& v) {
  reject_negative(v);
  return parse_full<std::uint64_t>(v, [](const std::string& s, std::size_t* p) {
    return std::stoull(s, p);
  });
}

std::uint64_t strict_hex_u64(const std::string& v) {
  if (v.empty()) throw std::invalid_argument("empty hex value");
  if (v.size() > 16)
    throw std::out_of_range("hex value too wide for 64 bits: \"" + v + "\"");
  std::uint64_t out = 0;
  for (char c : v) {
    int digit;
    if (c >= '0' && c <= '9') digit = c - '0';
    else if (c >= 'a' && c <= 'f') digit = 10 + (c - 'a');
    else if (c >= 'A' && c <= 'F') digit = 10 + (c - 'A');
    else throw std::invalid_argument("not a hex value: \"" + v + "\"");
    out = (out << 4) | static_cast<std::uint64_t>(digit);
  }
  return out;
}

const char* env_text(const char* name) {
  const char* env = std::getenv(name);
  return (env && *env != '\0') ? env : nullptr;
}

double strict_stod(const std::string& v) {
  return parse_full<double>(v, [](const std::string& s, std::size_t* p) {
    return std::stod(s, p);
  });
}

long long parse_env_int(const char* name, long long fallback,
                        long long min_value, long long max_value) {
  const char* env = std::getenv(name);
  if (!env || *env == '\0') return fallback;
  long long v = 0;
  try {
    v = strict_stoll(env);
  } catch (const std::exception&) {
    log_warn(name, "=\"", env, "\" is not an integer; using default ", fallback);
    return fallback;
  }
  if (v < min_value || v > max_value) {
    log_warn(name, "=", v, " outside [", min_value, ", ", max_value,
             "]; using default ", fallback);
    return fallback;
  }
  return v;
}

std::size_t parse_env_size(const char* name, std::size_t fallback) {
  return static_cast<std::size_t>(
      parse_env_int(name, static_cast<long long>(fallback), 0,
                    std::numeric_limits<long long>::max()));
}

std::size_t parse_size_bytes(const std::string& v, std::size_t bare_multiplier) {
  std::string num = v;
  std::size_t mult = bare_multiplier;
  // Longest suffix first so "mb" is not consumed as a bare "b" with a
  // dangling 'm'. Case-insensitive: both "512M" and "512m" are common.
  auto ends_with_ci = [&](const char* suffix) {
    const std::size_t n = std::char_traits<char>::length(suffix);
    if (v.size() < n) return false;
    for (std::size_t i = 0; i < n; ++i)
      if (std::tolower(static_cast<unsigned char>(v[v.size() - n + i])) != suffix[i])
        return false;
    return true;
  };
  struct Unit { const char* suffix; std::size_t mult; };
  static constexpr Unit kUnits[] = {
      {"kb", std::size_t{1} << 10}, {"mb", std::size_t{1} << 20},
      {"gb", std::size_t{1} << 30}, {"k", std::size_t{1} << 10},
      {"m", std::size_t{1} << 20},  {"g", std::size_t{1} << 30},
      {"b", 1},
  };
  for (const Unit& u : kUnits)
    if (ends_with_ci(u.suffix)) {
      num = v.substr(0, v.size() - std::char_traits<char>::length(u.suffix));
      mult = u.mult;
      break;
    }
  if (num.empty()) throw std::invalid_argument("empty size: \"" + v + "\"");
  const std::uint64_t base = strict_stoull(num);  // whole-token, rejects "-"
  if (mult != 0 && base > std::numeric_limits<std::uint64_t>::max() / mult)
    throw std::out_of_range("size out of range: \"" + v + "\"");
  const std::uint64_t bytes = base * static_cast<std::uint64_t>(mult);
  if (bytes > std::numeric_limits<std::size_t>::max())
    throw std::out_of_range("size out of range: \"" + v + "\"");
  return static_cast<std::size_t>(bytes);
}

std::size_t parse_env_size_bytes(const char* name, std::size_t fallback,
                                 std::size_t bare_multiplier) {
  const char* env = std::getenv(name);
  if (!env || *env == '\0') return fallback;
  try {
    return parse_size_bytes(env, bare_multiplier);
  } catch (const std::exception&) {
    log_warn(name, "=\"", env, "\" is not a byte size; using default ",
             fallback, " bytes");
    return fallback;
  }
}

std::int64_t parse_duration_ms(const std::string& v) {
  std::string num = v;
  double scale = 1.0;
  bool fractional = false;
  if (v.size() >= 2 && v.compare(v.size() - 2, 2, "ms") == 0) {
    num = v.substr(0, v.size() - 2);
  } else if (!v.empty() && v.back() == 's') {
    num = v.substr(0, v.size() - 1);
    scale = 1000.0;
    fractional = true;  // "1.5s" is a natural spelling; "1.5ms" is not
  }
  if (num.empty()) throw std::invalid_argument("empty duration: \"" + v + "\"");
  std::int64_t ms = 0;
  if (fractional) {
    const double seconds = strict_stod(num);
    if (seconds < 0.0)
      throw std::invalid_argument("negative duration: \"" + v + "\"");
    const double as_ms = seconds * scale;
    if (as_ms > static_cast<double>(std::numeric_limits<std::int64_t>::max()))
      throw std::out_of_range("duration out of range: \"" + v + "\"");
    ms = static_cast<std::int64_t>(as_ms);
  } else {
    ms = strict_stoll(num);
    if (ms < 0) throw std::invalid_argument("negative duration: \"" + v + "\"");
  }
  return ms;
}

std::int64_t parse_env_duration_ms(const char* name, std::int64_t fallback) {
  const char* env = std::getenv(name);
  if (!env || *env == '\0') return fallback;
  try {
    return parse_duration_ms(env);
  } catch (const std::exception&) {
    log_warn(name, "=\"", env, "\" is not a duration; using default ",
             fallback, " ms");
    return fallback;
  }
}

}  // namespace dynasparse
