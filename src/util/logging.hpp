#pragma once
// Minimal leveled logger.
//
// The library is quiet by default (kWarn); benches and examples raise the
// level for progress reporting. Not thread-safe beyond what iostream gives
// us; simulator worker threads log only through the aggregated report path.

#include <sstream>
#include <string>

namespace dynasparse {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Set the global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one line at `level` with a level tag prefix.
void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() <= LogLevel::kDebug)
    log_message(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() <= LogLevel::kInfo)
    log_message(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_warn(Args&&... args) {
  if (log_level() <= LogLevel::kWarn)
    log_message(LogLevel::kWarn, detail::concat(std::forward<Args>(args)...));
}
template <typename... Args>
void log_error(Args&&... args) {
  if (log_level() <= LogLevel::kError)
    log_message(LogLevel::kError, detail::concat(std::forward<Args>(args)...));
}

}  // namespace dynasparse
