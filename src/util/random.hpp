#pragma once
// Deterministic random number generation.
//
// Every stochastic component (graph generators, weight init, pruning masks,
// feature sampling) draws from an explicitly seeded `Rng` so that tests and
// benchmarks are reproducible run to run and machine to machine.

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace dynasparse {

/// Thin wrapper around std::mt19937_64 with the handful of draw shapes the
/// library needs. Passing `Rng&` (never a copy) threads one stream through
/// a whole construction, mirroring how PyG seeds dataset transforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : gen_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(gen_);
  }

  /// Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(gen_);
  }

  /// Standard normal scaled by `stddev`.
  double normal(double mean = 0.0, double stddev = 1.0) {
    std::normal_distribution<double> d(mean, stddev);
    return d(gen_);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) {
    std::bernoulli_distribution d(p);
    return d(gen_);
  }

  /// k distinct integers sampled uniformly from [0, n) (k <= n).
  /// Uses Floyd's algorithm: O(k) expected draws, no O(n) scratch.
  std::vector<std::int64_t> sample_without_replacement(std::int64_t n, std::int64_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    std::shuffle(v.begin(), v.end(), gen_);
  }

  std::mt19937_64& engine() { return gen_; }

 private:
  std::mt19937_64 gen_;
};

}  // namespace dynasparse
