#include "util/fault_injection.hpp"

#include <cstdlib>
#include <functional>

#include "util/strict_parse.hpp"

namespace dynasparse {

const std::vector<std::string>& fault_site_names() {
  static const std::vector<std::string> kNames = {
      kFaultCompileAlloc,   kFaultPlanStoreDiskRead, kFaultPlanStoreDiskWrite,
      kFaultQueueDelay,     kFaultRuntimeKernelFault,
      kFaultNetAccept,      kFaultNetRead,
  };
  return kNames;
}

namespace {

bool known_site(const std::string& name) {
  for (const std::string& s : fault_site_names())
    if (s == name) return true;
  return false;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

}  // namespace

FaultSpec parse_fault_spec(const std::string& spec) {
  FaultSpec out;
  if (spec.empty()) return out;
  for (const std::string& entry : split(spec, ',')) {
    if (entry.empty())
      throw std::invalid_argument("fault spec: empty entry in \"" + spec + "\"");
    std::vector<std::string> fields = split(entry, ':');
    if (fields[0] == "seed") {
      if (fields.size() != 2)
        throw std::invalid_argument("fault spec: expected seed:N, got \"" +
                                    entry + "\"");
      out.seed = strict_stoull(fields[1]);
      continue;
    }
    if (fields.size() < 2 || fields.size() > 3)
      throw std::invalid_argument(
          "fault spec: expected site:probability[:count], got \"" + entry + "\"");
    if (!known_site(fields[0]))
      throw std::invalid_argument("fault spec: unknown site \"" + fields[0] +
                                  "\"");
    FaultSiteSpec site;
    site.site = fields[0];
    site.probability = strict_stod(fields[1]);
    if (site.probability < 0.0 || site.probability > 1.0)
      throw std::invalid_argument("fault spec: probability " + fields[1] +
                                  " outside [0, 1] for site " + site.site);
    if (fields.size() == 3) {
      site.count = strict_stoll(fields[2]);
      if (site.count < 0)
        throw std::invalid_argument("fault spec: negative count for site " +
                                    site.site);
    }
    out.sites.push_back(std::move(site));
  }
  return out;
}

void FaultInjector::arm(const FaultSpec& spec) {
  std::lock_guard<OrderedMutex> lk(mu_);
  sites_.clear();
  order_.clear();
  for (const FaultSiteSpec& s : spec.sites) {
    Site site;
    site.spec = s;
    // Per-site RNG seeded from (spec seed, site name): the k-th draw of a
    // site is fixed regardless of how other sites or threads interleave.
    site.rng.seed(spec.seed ^ std::hash<std::string>{}(s.site));
    if (sites_.emplace(s.site, std::move(site)).second)
      order_.push_back(s.site);
  }
  armed_.store(!sites_.empty(), std::memory_order_relaxed);
}

bool FaultInjector::should_inject(const std::string& site) {
  if (pause_depth_.load(std::memory_order_relaxed) > 0) return false;
  std::lock_guard<OrderedMutex> lk(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return false;
  Site& s = it->second;
  ++s.stats.evaluations;
  if (s.spec.count >= 0 && s.stats.injected >= s.spec.count) return false;
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  if (dist(s.rng) >= s.spec.probability) return false;
  ++s.stats.injected;
  return true;
}

FaultSiteStats FaultInjector::site_stats(const std::string& site) const {
  std::lock_guard<OrderedMutex> lk(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? FaultSiteStats{} : it->second.stats;
}

std::vector<std::pair<std::string, FaultSiteStats>> FaultInjector::all_stats()
    const {
  std::lock_guard<OrderedMutex> lk(mu_);
  std::vector<std::pair<std::string, FaultSiteStats>> out;
  out.reserve(order_.size());
  for (const std::string& name : order_)
    out.emplace_back(name, sites_.at(name).stats);
  return out;
}

FaultInjector& FaultInjector::global() {
  static FaultInjector* injector = [] {
    auto* g = new FaultInjector();  // leaked: outlives every static user
    if (const char* env = env_text("DYNASPARSE_FAULT_SPEC"))
      g->arm(parse_fault_spec(env));
    return g;
  }();
  return *injector;
}

}  // namespace dynasparse
