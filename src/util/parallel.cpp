#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <limits>
#include <mutex>
#include <thread>

namespace dynasparse {

namespace {

/// Set while a thread is executing pool work; nested parallel calls from
/// inside a work item run inline (serially) instead of deadlocking on the
/// single shared job slot.
thread_local bool t_in_pool_work = false;

/// Failure flag of the job this thread is currently executing chunks for
/// (null outside pool work). parallel_for polls it per item so a worker
/// that already claimed a chunk stops at the next item once any other
/// worker has failed.
thread_local const std::atomic<bool>* t_job_failed = nullptr;

unsigned hardware_threads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

/// Persistent worker pool executing one chunked job at a time. Workers are
/// spawned lazily up to the largest concurrency any call has requested
/// (bounded by kMaxWorkers) and then parked on a condition variable
/// between jobs, so steady-state dispatch is one notify_all, not N thread
/// spawns with their attendant page-table and scheduler churn.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  /// Run chunks 0..nchunks-1 of `body` with up to `concurrency` threads
  /// total (the calling thread participates and counts toward it).
  void run(std::int64_t nchunks, const std::function<void(std::int64_t)>& body,
           int concurrency) {
    // One job at a time; concurrent top-level callers serialize here.
    std::lock_guard<std::mutex> job_lock(job_mu_);
    ensure_workers(concurrency - 1);
    {
      std::lock_guard<std::mutex> lk(mu_);
      body_ = &body;
      next_.store(0, std::memory_order_relaxed);
      end_ = nchunks;
      failed_.store(false, std::memory_order_relaxed);
      error_ = nullptr;
      error_chunk_ = std::numeric_limits<std::int64_t>::max();
      joiners_cap_ = concurrency - 1;
      joiners_ = 0;
      ++generation_;
    }
    cv_.notify_all();
    // The calling thread participates too; mark it as pool work so a
    // nested parallel call from inside the body runs inline instead of
    // re-entering run() and self-deadlocking on job_mu_.
    const bool prev_in_pool = t_in_pool_work;
    t_in_pool_work = true;
    work(body);
    t_in_pool_work = prev_in_pool;
    {
      std::unique_lock<std::mutex> lk(mu_);
      done_cv_.wait(lk, [&] { return active_ == 0; });
      body_ = nullptr;
    }
    if (error_) std::rethrow_exception(error_);
  }

 private:
  Pool() = default;
  ~Pool() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  // Hard cap on pool size; explicit thread requests beyond the hardware
  // width are honored (oversubscription is how the scaling bench probes
  // contention) but bounded.
  static constexpr int kMaxWorkers = 64;

  void ensure_workers(int wanted) {
    wanted = std::min(wanted, kMaxWorkers);
    std::lock_guard<std::mutex> lk(mu_);
    while (static_cast<int>(workers_.size()) < wanted)
      workers_.emplace_back([this] { worker_main(); });
  }

  void worker_main() {
    std::uint64_t seen = 0;
    while (true) {
      const std::function<void(std::int64_t)>* body = nullptr;
      {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [&] {
          return stop_ || (body_ != nullptr && generation_ != seen &&
                           joiners_ < joiners_cap_);
        });
        if (stop_) return;
        seen = generation_;
        ++joiners_;
        ++active_;
        body = body_;
      }
      t_in_pool_work = true;
      work(*body);
      t_in_pool_work = false;
      {
        std::lock_guard<std::mutex> lk(mu_);
        if (--active_ == 0) done_cv_.notify_all();
      }
    }
  }

  void work(const std::function<void(std::int64_t)>& body) {
    const std::atomic<bool>* prev_failed = t_job_failed;
    t_job_failed = &failed_;
    while (true) {
      std::int64_t c = next_.fetch_add(1, std::memory_order_relaxed);
      if (c >= end_) break;
      // A recorded failure cancels all not-yet-started chunks.
      if (failed_.load(std::memory_order_acquire)) break;
      try {
        body(c);
      } catch (...) {
        std::lock_guard<std::mutex> lk(error_mu_);
        if (c < error_chunk_) {
          error_chunk_ = c;
          error_ = std::current_exception();
        }
        failed_.store(true, std::memory_order_release);
      }
    }
    t_job_failed = prev_failed;
  }

  std::mutex job_mu_;  // serializes top-level jobs
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  bool stop_ = false;

  // Current-job state (guarded by mu_ except the atomics).
  const std::function<void(std::int64_t)>* body_ = nullptr;
  std::atomic<std::int64_t> next_{0};
  std::int64_t end_ = 0;
  std::uint64_t generation_ = 0;
  int joiners_ = 0;      // workers that joined this generation
  int joiners_cap_ = 0;  // max background workers for this job
  int active_ = 0;       // workers currently inside work()

  std::mutex error_mu_;
  std::atomic<bool> failed_{false};
  std::exception_ptr error_;
  std::int64_t error_chunk_ = 0;
};

}  // namespace

std::int64_t resolve_grain(std::int64_t n, std::int64_t grain) {
  if (grain > 0) return grain;
  // Aim for enough chunks that dynamic claiming load-balances well, while
  // keeping per-chunk dispatch cost negligible. Depends only on n so that
  // chunk boundaries (and thus reduction order) are thread-count-invariant.
  return std::max<std::int64_t>(1, n / 64);
}

int parallel_hardware_threads() { return static_cast<int>(hardware_threads()); }

ParallelInlineScope::ParallelInlineScope() : prev_(t_in_pool_work) {
  t_in_pool_work = true;
}

ParallelInlineScope::~ParallelInlineScope() { t_in_pool_work = prev_; }

void parallel_for_range(std::int64_t n,
                        const std::function<void(std::int64_t, std::int64_t)>& fn,
                        int threads, std::int64_t grain) {
  if (n <= 0) return;
  const std::int64_t g = resolve_grain(n, grain);
  const std::int64_t nchunks = (n + g - 1) / g;
  std::int64_t concurrency =
      threads > 0 ? threads : static_cast<std::int64_t>(hardware_threads());
  concurrency = std::min(concurrency, nchunks);
  if (concurrency <= 1 || t_in_pool_work) {
    // Serial fallback walks the same chunk boundaries the pool would, so
    // chunk-order reductions associate identically at any thread count.
    for (std::int64_t begin = 0; begin < n; begin += g)
      fn(begin, std::min(n, begin + g));
    return;
  }
  std::function<void(std::int64_t)> chunk_body = [&](std::int64_t c) {
    std::int64_t begin = c * g;
    fn(begin, std::min(n, begin + g));
  };
  Pool::instance().run(nchunks, chunk_body, static_cast<int>(concurrency));
}

void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn,
                  int threads, std::int64_t grain) {
  parallel_for_range(
      n,
      [&fn](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          // The premature-exit fix: never start fn(i) after a failure has
          // been recorded, even mid-chunk.
          if (t_job_failed && t_job_failed->load(std::memory_order_acquire)) return;
          fn(i);
        }
      },
      threads, grain);
}

}  // namespace dynasparse
