#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <exception>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "util/ordered_mutex.hpp"
#include "util/strict_parse.hpp"

namespace dynasparse {

namespace {

/// Per-thread cap on effective parallel concurrency (0 = uncapped).
/// Installed by ParallelMaxThreadsScope and inherited by pool workers for
/// the duration of a chunk whose job was submitted under a cap, so a
/// capped request's *nested* parallel calls stay inside its budget no
/// matter which worker runs them.
thread_local int t_max_threads = 0;

/// Failure flag of the job whose chunk this thread is currently executing
/// (null otherwise). parallel_for polls it per item so a thread that
/// already started a chunk stops at the next item once any other thread
/// has failed.
thread_local const std::atomic<bool>* t_job_failed = nullptr;

unsigned hardware_threads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 4 : hw;
}

/// threads=0 default: DYNASPARSE_FORCE_THREADS (read once) or the
/// hardware width. The override exists so 1-vCPU CI runners still
/// exercise real multi-worker pool schedules. Strictly parsed
/// (util/strict_parse.hpp): a malformed or out-of-range value logs a
/// warning and falls back to the hardware width instead of being
/// silently ignored.
int default_threads() {
  static const int forced =
      static_cast<int>(parse_env_int("DYNASPARSE_FORCE_THREADS", 0, 0, 256));
  return forced > 0 ? forced : static_cast<int>(hardware_threads());
}

/// One parallel_for_range invocation. Lives on the submitting thread's
/// stack: join() returns only after every chunk has finished, and no task
/// referencing the job exists once `remaining` hits zero, so the lifetime
/// is safe by construction.
struct Job {
  const std::function<void(std::int64_t, std::int64_t)>* fn = nullptr;
  std::int64_t n = 0, grain = 0, nchunks = 0;
  int max_slots = 1;        // executor cap (submitter holds slot 0)
  int inherit_cap = 0;      // submitter's t_max_threads; > 0 makes chunk
                            // bodies run nested parallel calls inline so
                            // the cap bounds the request's total threads
  std::atomic<int> slots{1};
  std::atomic<std::int64_t> remaining{0};

  std::atomic<bool> failed{false};
  OrderedMutex error_mu{LockRank::kPoolError};
  std::exception_ptr error;
  std::int64_t error_chunk = std::numeric_limits<std::int64_t>::max();

  bool finished() const {
    return remaining.load(std::memory_order_acquire) == 0;
  }

  /// Try to claim one executor slot (thieves/workers; the submitter's
  /// slot is pre-claimed at construction).
  bool acquire_slot() {
    int cur = slots.load(std::memory_order_relaxed);
    while (cur < max_slots) {
      if (slots.compare_exchange_weak(cur, cur + 1, std::memory_order_relaxed))
        return true;
    }
    return false;
  }
  void release_slot() { slots.fetch_sub(1, std::memory_order_relaxed); }
};

/// A contiguous range of chunk indices [begin, end) of one job — the unit
/// that lives on the deques. Executing a task splits it binarily, pushing
/// the upper halves back as stealable tasks, until a single chunk remains.
struct TaskRange {
  Job* job = nullptr;
  std::int64_t begin = 0, end = 0;
};

/// Persistent multi-job work-stealing pool. Each worker owns a deque of
/// chunk-range tasks; owners push/pop at the back (LIFO: cache-warm,
/// ascending chunk order), thieves take from the front (FIFO: the oldest,
/// largest ranges). External (non-worker) submitters share one designated
/// "inject" deque. Any number of jobs coexist on the deques; a per-job
/// executor-slot cap bounds how many threads run one job's chunks at once.
class Pool {
 public:
  static Pool& instance() {
    static Pool pool;
    return pool;
  }

  // Hard cap on pool size; explicit thread requests beyond the hardware
  // width are honored (oversubscription is how the scaling bench probes
  // contention) but bounded.
  static constexpr int kMaxWorkers = 64;
  static constexpr int kInjectSlot = kMaxWorkers;  // shared by external threads
  static constexpr int kSlots = kMaxWorkers + 1;

  /// Submit `job` (root task = all chunks) and run/help until it
  /// completes. Called from worker and external threads alike; the
  /// calling thread participates under the job's pre-claimed slot and
  /// only ever executes tasks of `job` while joining.
  void submit_and_join(Job& job) {
    ensure_workers(job.max_slots - 1);
    jobs_.fetch_add(1, std::memory_order_relaxed);
    push_task(TaskRange{&job, 0, job.nchunks});
    TaskRange t;
    while (!job.finished()) {
      if (take_task(&job, t)) {
        run_task(t, /*release_slot=*/false);  // runs under the reservation
        continue;
      }
      // Nothing of this job is in any deque: its remaining chunks are
      // being executed (or split) by other threads right now. Sleep on
      // the shared completion cv; the timeout re-scans in case a split
      // pushed new stealable tasks between our scan and the wait.
      std::unique_lock<OrderedMutex> lk(join_mu_);
      if (job.finished()) break;
      join_cv_.wait_for(lk, std::chrono::microseconds(200),
                        [&] { return job.finished(); });
    }
    if (job.error) std::rethrow_exception(job.error);
  }

  PoolStats stats() {
    PoolStats s;
    s.jobs = jobs_.load(std::memory_order_relaxed);
    s.chunks = chunks_.load(std::memory_order_relaxed);
    s.chunks_stolen = steals_.load(std::memory_order_relaxed);
    {
      std::lock_guard<OrderedMutex> lk(idle_mu_);
      s.threads = spawned_;
    }
    return s;
  }

 private:
  struct Slot {
    OrderedMutex mu{LockRank::kPoolDeque};
    std::deque<TaskRange> tasks;  // back = owner (LIFO), front = thieves (FIFO)
  };

  Pool() : slots_(new Slot[kSlots]) {}

  ~Pool() {
    {
      std::lock_guard<OrderedMutex> lk(idle_mu_);
      stop_ = true;
    }
    idle_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  void ensure_workers(int wanted) {
    wanted = std::min(wanted, kMaxWorkers);
    std::lock_guard<OrderedMutex> lk(idle_mu_);
    while (spawned_ < wanted) {
      int index = spawned_++;
      workers_.emplace_back([this, index] { worker_main(index); });
    }
    spawned_count_.store(spawned_, std::memory_order_release);
  }

  void worker_main(int self) {
    t_slot = self;
    while (true) {
      std::uint64_t seen;
      {
        std::lock_guard<OrderedMutex> lk(idle_mu_);
        if (stop_) return;
        seen = work_epoch_;
      }
      TaskRange t;
      if (take_task(nullptr, t)) {
        run_task(t, /*release_slot=*/true);
        continue;
      }
      // The epoch was read *before* the scan: any push that the scan
      // missed bumped the epoch afterwards, so the predicate fails and we
      // rescan instead of sleeping through it.
      std::unique_lock<OrderedMutex> lk(idle_mu_);
      ++idle_waiters_;
      idle_cv_.wait(lk, [&] { return stop_ || work_epoch_ != seen; });
      --idle_waiters_;
      if (stop_) return;
    }
  }

  /// Push onto the calling thread's deque (workers: their own; external
  /// threads: the shared inject deque) and wake a parked worker if any.
  void push_task(TaskRange t) {
    Slot& slot = slots_[t_slot];
    {
      std::lock_guard<OrderedMutex> lk(slot.mu);
      slot.tasks.push_back(t);
    }
    bool wake;
    {
      std::lock_guard<OrderedMutex> lk(idle_mu_);
      ++work_epoch_;
      wake = idle_waiters_ > 0;
    }
    // One new task -> one woken worker; waking the whole herd would have
    // every parked worker scan all the deques for a task only one of
    // them can claim. A woken worker that loses the race (or fails the
    // executor-slot check) re-parks, and the next push re-notifies; the
    // submitter's own run/poll loop is the liveness backstop.
    if (wake) idle_cv_.notify_one();
  }

  /// Take one runnable task. `only` != null (a joining submitter): take
  /// only that job's tasks, under the submitter's pre-claimed slot.
  /// `only` == null (an idle worker): take any task whose job has a free
  /// executor slot — the slot is acquired here, released by the caller
  /// after run_task. Own deque is scanned back-to-front (LIFO), other
  /// deques front-to-back (FIFO steal).
  bool take_task(Job* only, TaskRange& out) {
    const int self = t_slot;
    Slot& mine = slots_[self];
    {
      std::lock_guard<OrderedMutex> lk(mine.mu);
      for (auto it = mine.tasks.rbegin(); it != mine.tasks.rend(); ++it) {
        if (!takeable(*it, only)) continue;
        out = *it;
        mine.tasks.erase(std::next(it).base());
        return true;
      }
    }
    // Only deques that can hold work: the spawned workers' and the inject
    // slot. (A stale low count just means a brand-new worker's deque is
    // skipped this scan — that worker drains its own deque anyway.)
    const int nworkers = spawned_count_.load(std::memory_order_acquire);
    for (int off = 1; off < kSlots; ++off) {
      const int idx = (self + off) % kSlots;
      if (idx != kInjectSlot && idx >= nworkers) continue;
      Slot& victim = slots_[idx];
      std::lock_guard<OrderedMutex> lk(victim.mu);
      for (auto it = victim.tasks.begin(); it != victim.tasks.end(); ++it) {
        if (!takeable(*it, only)) continue;
        out = *it;
        victim.tasks.erase(it);
        steals_.fetch_add(out.end - out.begin, std::memory_order_relaxed);
        return true;
      }
    }
    return false;
  }

  bool takeable(const TaskRange& t, Job* only) {
    if (only) return t.job == only;
    return t.job->acquire_slot();
  }

  /// Split `t` down to a single chunk (pushing the upper halves back as
  /// stealable tasks), execute that chunk, and retire it. The completion
  /// decrement is the very last touch of the job by this thread: the
  /// moment it reaches zero the submitter may return and destroy the
  /// stack-allocated Job, so the executor slot (if this thread holds one)
  /// is released *before* retiring.
  void run_task(TaskRange t, bool release_slot) {
    Job& job = *t.job;
    while (t.end - t.begin > 1) {
      std::int64_t mid = t.begin + (t.end - t.begin) / 2;
      push_task(TaskRange{&job, mid, t.end});
      t.end = mid;
    }
    const std::int64_t chunk = t.begin;
    // A recorded failure cancels all not-yet-started chunks (they still
    // count toward completion so the join can finish and rethrow).
    if (!job.failed.load(std::memory_order_acquire)) {
      const std::atomic<bool>* prev_failed = t_job_failed;
      const int prev_cap = t_max_threads;
      t_job_failed = &job.failed;
      // A capped job's cap is a bound on the whole request, not per job:
      // this job may already be running on up to max_slots threads, so
      // nested parallel calls from its chunks run inline (serially on
      // this executor) — otherwise each of N executors could submit its
      // own N-slot job and one "capped at N" request would fan out on
      // ~N^2 threads. Uncapped jobs keep full nested stealing.
      t_max_threads = job.inherit_cap > 0 ? 1 : 0;
      const std::int64_t begin = chunk * job.grain;
      const std::int64_t end = std::min(job.n, begin + job.grain);
      try {
        (*job.fn)(begin, end);
      } catch (...) {
        std::lock_guard<OrderedMutex> lk(job.error_mu);
        if (chunk < job.error_chunk) {
          job.error_chunk = chunk;
          job.error = std::current_exception();
        }
        job.failed.store(true, std::memory_order_release);
      }
      t_job_failed = prev_failed;
      t_max_threads = prev_cap;
    }
    chunks_.fetch_add(1, std::memory_order_relaxed);
    if (release_slot) job.release_slot();
    if (job.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last chunk retired: the decrement above was this thread's final
      // touch of the (stack-allocated) job — the submitter may destroy it
      // the moment it observes zero. Signal through the pool-lifetime cv;
      // the empty critical section pairs with the submitter's
      // check-then-wait under join_mu_ so the wake cannot be lost.
      { std::lock_guard<OrderedMutex> lk(join_mu_); }
      join_cv_.notify_all();
    }
  }

  static thread_local int t_slot;

  std::unique_ptr<Slot[]> slots_;
  std::vector<std::thread> workers_;

  // Shared by every job's submitter for completion waits (jobs are
  // stack-allocated, so their completion signal must not live in them).
  OrderedMutex join_mu_{LockRank::kPoolJoin};
  OrderedCondVar join_cv_;

  // guards spawned_, work_epoch_, idle_waiters_, stop_
  OrderedMutex idle_mu_{LockRank::kPoolIdle};
  OrderedCondVar idle_cv_;
  int spawned_ = 0;
  std::atomic<int> spawned_count_{0};  // mirror of spawned_ for lock-free scans
  int idle_waiters_ = 0;
  std::uint64_t work_epoch_ = 0;
  bool stop_ = false;

  std::atomic<std::int64_t> jobs_{0};
  std::atomic<std::int64_t> chunks_{0};
  std::atomic<std::int64_t> steals_{0};
};

thread_local int Pool::t_slot = Pool::kInjectSlot;

}  // namespace

std::int64_t resolve_grain(std::int64_t n, std::int64_t grain) {
  if (grain > 0) return grain;
  // Aim for enough chunks that stealing load-balances well, while keeping
  // per-chunk dispatch cost negligible. Depends only on n so that chunk
  // boundaries (and thus reduction order) are thread-count-invariant.
  return std::max<std::int64_t>(1, n / 64);
}

int parallel_hardware_threads() { return default_threads(); }

void parallel_ensure_pool() { Pool::instance(); }

PoolStats parallel_pool_stats() { return Pool::instance().stats(); }

ParallelMaxThreadsScope::ParallelMaxThreadsScope(int max_threads)
    : prev_(t_max_threads) {
  // 0 (or less) = uncapped, matching every other knob in this API: the
  // scope is a no-op and any enclosing cap stays in force. Scopes
  // tighten, never widen: the innermost of nested caps wins only if it
  // is smaller.
  if (max_threads > 0)
    t_max_threads = prev_ > 0 ? std::min(prev_, max_threads) : max_threads;
}

ParallelMaxThreadsScope::~ParallelMaxThreadsScope() { t_max_threads = prev_; }

void parallel_for_range(std::int64_t n,
                        const std::function<void(std::int64_t, std::int64_t)>& fn,
                        int threads, std::int64_t grain) {
  if (n <= 0) return;
  const std::int64_t g = resolve_grain(n, grain);
  const std::int64_t nchunks = (n + g - 1) / g;
  std::int64_t concurrency =
      threads > 0 ? threads : static_cast<std::int64_t>(default_threads());
  if (t_max_threads > 0)
    concurrency = std::min<std::int64_t>(concurrency, t_max_threads);
  concurrency = std::min(concurrency, nchunks);
  if (concurrency <= 1) {
    // Serial fallback walks the same chunk boundaries the pool would, so
    // chunk-order reductions associate identically at any thread count.
    for (std::int64_t begin = 0; begin < n; begin += g)
      fn(begin, std::min(n, begin + g));
    return;
  }
  Job job;
  job.fn = &fn;
  job.n = n;
  job.grain = g;
  job.nchunks = nchunks;
  job.max_slots = static_cast<int>(concurrency);
  job.inherit_cap = t_max_threads;
  job.remaining.store(nchunks, std::memory_order_relaxed);
  Pool::instance().submit_and_join(job);
}

void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn,
                  int threads, std::int64_t grain) {
  parallel_for_range(
      n,
      [&fn](std::int64_t begin, std::int64_t end) {
        for (std::int64_t i = begin; i < end; ++i) {
          // Never start fn(i) after a failure has been recorded, even
          // mid-chunk.
          if (t_job_failed && t_job_failed->load(std::memory_order_acquire)) return;
          fn(i);
        }
      },
      threads, grain);
}

}  // namespace dynasparse
