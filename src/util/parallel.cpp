#include "util/parallel.hpp"

#include <atomic>
#include <exception>
#include <thread>
#include <vector>

namespace dynasparse {

void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn,
                  int threads) {
  if (n <= 0) return;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  std::int64_t nthreads = threads > 0 ? threads : static_cast<std::int64_t>(hw);
  nthreads = std::min<std::int64_t>(nthreads, n);
  if (nthreads <= 1) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::int64_t> next{0};
  std::exception_ptr error;
  std::atomic<bool> failed{false};
  auto worker = [&] {
    try {
      while (true) {
        std::int64_t i = next.fetch_add(1);
        if (i >= n || failed.load()) break;
        fn(i);
      }
    } catch (...) {
      if (!failed.exchange(true)) error = std::current_exception();
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(nthreads));
  for (std::int64_t t = 0; t < nthreads; ++t) pool.emplace_back(worker);
  for (std::thread& th : pool) th.join();
  if (failed.load() && error) std::rethrow_exception(error);
}

}  // namespace dynasparse
