#pragma once
// Hardware and system configuration for the Dynasparse simulator.
//
// Defaults reproduce the paper's implementation on the Xilinx Alveo U250
// (Section VII): seven Computation Cores at 250 MHz, ALU arrays of
// psys = 16, a MicroBlaze-class soft processor at 370 MHz, and 77 GB/s of
// DDR4 bandwidth shared by all cores.

#include <cstddef>
#include <cstdint>

namespace dynasparse {

/// Static description of the simulated accelerator platform.
///
/// All cycle accounting in `src/sim` and the analytical performance model in
/// `src/runtime` read their parameters from this struct, so a single
/// instance fully determines simulated latency.
struct SimConfig {
  /// Dimension of the ALU array in each Computation Core (paper: 16).
  int psys = 16;
  /// Number of Computation Cores (paper: 7 across four SLRs).
  int num_cores = 7;
  /// Accelerator clock in Hz (paper: 250 MHz).
  double core_clock_hz = 250.0e6;
  /// Soft-processor clock in Hz (paper: MicroBlaze at 370 MHz).
  double soft_clock_hz = 370.0e6;
  /// Aggregate DDR bandwidth in bytes/second shared by all cores
  /// (paper Table V: 77 GB/s).
  double ddr_bandwidth_bytes_per_s = 77.0e9;
  /// Bytes of a dense matrix element (fp32).
  int dense_elem_bytes = 4;
  /// Bytes of a sparse COO element: (col, row, value) three-tuple.
  int coo_elem_bytes = 12;
  /// On-chip buffer capacity per core in bytes available for one input
  /// operand (the URAM-backed BufferO that streams the dense operand).
  /// The U250 carries 45 MB of on-chip memory (paper Table V) across the
  /// seven cores' buffer sets; 2 MB per streaming buffer matches the
  /// paper's 87.5% URAM utilization.
  std::size_t onchip_tile_bytes = 2 * 1024 * 1024;
  /// Load-balance factor eta: every kernel must decompose into at least
  /// eta * num_cores tasks (paper Section VI-C, eta = 4, following GPOP).
  int load_balance_eta = 4;
  /// Floor of the partition sizes N1/N2. Partitions below ~4x psys give
  /// tile products too little arithmetic intensity to ever beat the DDR
  /// stream (the systolic array idles), so the planner never goes under
  /// this even when the load-balance heuristic asks for less.
  int min_partition = 64;
  /// Soft-processor cycles charged per pair-wise K2P decision
  /// (Algorithm 7 body: fetch two densities from the D-Cache, compare,
  /// emit the primitive choice; a handful of MicroBlaze instructions with
  /// 1-2 cycle get/put AXI accesses per paper Section VII).
  int k2p_cycles_per_pair = 4;
  /// Soft-processor cycles for a pair whose sparser operand is an empty
  /// partition: the density fetch short-circuits (Algorithm 7 line 6),
  /// which is why the paper observes runtime overhead *decreasing* as
  /// pruning empties more partitions (Section VIII-C).
  int k2p_skip_cycles = 1;
  /// Soft-processor cycles to dispatch one task to an idle core
  /// (interrupt entry + AXI-stream control words).
  int dispatch_cycles_per_task = 24;
  /// Cycle cost of switching the execution mode of a Computation Core
  /// (paper Section V-B1: one clock cycle).
  int mode_switch_cycles = 1;
  /// Density threshold at or below which a tile is *stored* in COO format
  /// in DDR. With 12-byte COO tuples vs 4-byte dense words, sparse storage
  /// is smaller when density < 1/3.
  double sparse_storage_threshold = 1.0 / 3.0;

  /// Derived: DDR bytes delivered per accelerator clock cycle (all cores).
  double ddr_bytes_per_cycle() const {
    return ddr_bandwidth_bytes_per_s / core_clock_hz;
  }
  /// Derived: largest square dense tile edge that fits one on-chip buffer.
  int max_partition_size() const;
  /// Convert accelerator cycles to milliseconds.
  double cycles_to_ms(double cycles) const {
    return cycles / core_clock_hz * 1e3;
  }
  /// Convert soft-processor cycles to milliseconds.
  double soft_cycles_to_ms(double cycles) const {
    return cycles / soft_clock_hz * 1e3;
  }
  /// Validate invariants (positive sizes, psys a power of two, ...).
  /// Returns true when the configuration is usable.
  bool valid() const;
};

/// The configuration used by the paper's evaluation (Section VII).
SimConfig u250_config();

}  // namespace dynasparse
