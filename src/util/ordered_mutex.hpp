#pragma once
// Rank-annotated mutex with a debug/CI lock-order checker.
//
// Every long-lived mutex in the system carries a LockRank from the
// global hierarchy below. In checked builds each thread records the
// stack of OrderedMutex it currently holds; acquiring a mutex whose
// rank is <= any held rank (same-rank reentrancy included) is an order
// violation, reported with this thread's held chain AND the previously
// recorded chain that established the opposite order. Every well-ordered
// acquisition also adds a rank->rank edge to a process-wide acquisition
// graph; a cycle through that graph (possible once a violating thread
// was allowed to continue, e.g. under a test handler) is reported with
// the full cycle path. The default handler prints the report to stderr
// and aborts; tests install a throwing handler via
// set_lock_order_handler to observe violations in-process.
//
// Checking is compiled in when DYNASPARSE_LOCK_CHECK is defined or
// NDEBUG is not (the CMake option DYNASPARSE_LOCK_ORDER_CHECK, default
// ON, defines it so the default build runs ctest armed). With checking
// compiled out, lock()/unlock() inline to the underlying std::mutex:
// zero release cost, gated in bench/service_throughput.
//
// OrderedCondVar adapts std::condition_variable to OrderedMutex through
// the native handle (adopt_lock in, release out), so waits cost exactly
// a std::condition_variable wait in both modes. While a thread sleeps in
// wait() its held-stack entry is retained — it will hold the mutex again
// on wakeup, and a sleeping thread acquires nothing, so no false
// positives arise.
//
// The documented hierarchy (acquire strictly increasing):
//
//   kNetServerLifecycle < kNetClientSend < kNetClientRecv
//     < kServiceWorkers < kServiceSlots
//     < kBatchGroups < kWorkQueue
//     < kResultCache / kCompileCache / kPlanStore < kPlanStoreSide
//     < kTilePool
//     < kPoolDeque < kPoolIdle < kPoolJoin < kPoolError
//     < kMemoryBudget
//     < kFaultInjector < kNetServerStats
//
// encoding the contracts the code already documents: cache -> budget and
// never budget -> cache (budget shrinkers run with no budget lock held),
// service workers_mu_ -> slots_mu_, pool locks never nested with each
// other, fault_point() and stats bumps callable from under anything.

#include <chrono>
#include <condition_variable>
#include <mutex>

namespace dynasparse {

#if defined(DYNASPARSE_LOCK_CHECK) || !defined(NDEBUG)
#define DYNASPARSE_LOCK_CHECK_ACTIVE 1
#else
#define DYNASPARSE_LOCK_CHECK_ACTIVE 0
#endif

/// Global lock hierarchy. Larger rank = acquired later (inner). Gaps
/// leave room for future locks without renumbering.
enum class LockRank : int {
  kNetServerLifecycle = 100,  // NetServer start()/stop() serialization
  kNetClientSend = 110,       // NetClient send side
  kNetClientRecv = 120,       // NetClient receive side
  kServiceWorkers = 200,      // InferenceService worker spawn/join
  kServiceSlots = 210,        // InferenceService slot table
  kBatchGroups = 300,         // BatchScheduler group map
  kWorkQueue = 310,           // BlockingQueue internals
  kResultCache = 400,         // ResultCache KeyedFutureCache
  kCompileCache = 410,        // CompilationCache KeyedFutureCache
  kPlanStore = 420,           // PlanStore KeyedFutureCache
  kPlanStoreSide = 430,       // PlanStore side counters
  kTilePool = 440,            // TilePool entry map
  kPoolDeque = 500,           // work-stealing pool per-slot deques
  kPoolIdle = 510,            // pool idle/wake state
  kPoolJoin = 520,            // pool job join
  kPoolError = 530,           // pool per-job first-error capture
  kMemoryBudget = 600,        // process-wide MemoryBudget counters
  kFaultInjector = 700,       // FaultInjector site RNGs (leaf)
  kNetServerStats = 710,      // NetServer counters (leaf)
};

/// Human-readable name for reports; "rank(<n>)" for values outside the
/// enumerated hierarchy.
const char* lock_rank_name(LockRank r);

/// What the checker found. `report` is the full multi-line text: the
/// acquiring thread's held chain, plus either the previously recorded
/// opposite-order chain (kRankOrder) or the cycle path (kCycle).
struct LockOrderViolation {
  enum class Kind { kRankOrder, kCycle };
  Kind kind = Kind::kRankOrder;
  LockRank acquiring = LockRank::kMemoryBudget;
  const char* report = nullptr;  // valid for the duration of the handler call
};

using LockOrderHandler = void (*)(const LockOrderViolation&);

/// Install a violation handler (tests install one that throws so the
/// offending lock() never blocks); returns the previous handler. Pass
/// nullptr to restore the default print-and-abort handler.
LockOrderHandler set_lock_order_handler(LockOrderHandler h);

/// Drop every recorded acquisition-graph edge (test isolation).
void reset_lock_order_graph();

namespace detail {
// Implemented in ordered_mutex.cpp; no-ops when checking is compiled out.
void lock_order_check_acquire(const void* mu, LockRank rank);
void lock_order_note_acquired(const void* mu, LockRank rank);
void lock_order_note_released(const void* mu);
}  // namespace detail

class OrderedMutex {
 public:
  explicit OrderedMutex(LockRank rank) : rank_(rank) {}
  OrderedMutex(const OrderedMutex&) = delete;
  OrderedMutex& operator=(const OrderedMutex&) = delete;

  void lock() {
#if DYNASPARSE_LOCK_CHECK_ACTIVE
    // Check (and report) BEFORE blocking: a real inversion may deadlock
    // inside mu_.lock(), after which nothing gets reported. If the
    // handler throws, the mutex is never acquired and the held stack is
    // unchanged.
    detail::lock_order_check_acquire(this, rank_);
    mu_.lock();
    detail::lock_order_note_acquired(this, rank_);
#else
    mu_.lock();
#endif
  }

  /// try_lock never blocks, so it cannot deadlock by itself: a
  /// successful try_lock is recorded in the held stack (later lock()
  /// calls are checked against it) but is not itself order-checked.
  bool try_lock() {
#if DYNASPARSE_LOCK_CHECK_ACTIVE
    if (!mu_.try_lock()) return false;
    detail::lock_order_note_acquired(this, rank_);
    return true;
#else
    return mu_.try_lock();
#endif
  }

  void unlock() {
#if DYNASPARSE_LOCK_CHECK_ACTIVE
    detail::lock_order_note_released(this);
#endif
    mu_.unlock();
  }

  LockRank rank() const { return rank_; }
  /// The underlying mutex, for OrderedCondVar's native waits.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
  const LockRank rank_;
};

/// std::condition_variable over OrderedMutex. Waits go through the
/// native handle (adopt in, release out) so they cost exactly a
/// std::condition_variable wait; the held-stack entry for the mutex is
/// retained across the sleep (see file comment).
class OrderedCondVar {
 public:
  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(std::unique_lock<OrderedMutex>& lk) {
    std::unique_lock<std::mutex> inner(lk.mutex()->native(), std::adopt_lock);
    cv_.wait(inner);
    inner.release();
  }

  template <typename Pred>
  void wait(std::unique_lock<OrderedMutex>& lk, Pred pred) {
    while (!pred()) wait(lk);
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      std::unique_lock<OrderedMutex>& lk,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    std::unique_lock<std::mutex> inner(lk.mutex()->native(), std::adopt_lock);
    const std::cv_status s = cv_.wait_until(inner, deadline);
    inner.release();
    return s;
  }

  template <typename Clock, typename Duration, typename Pred>
  bool wait_until(std::unique_lock<OrderedMutex>& lk,
                  const std::chrono::time_point<Clock, Duration>& deadline,
                  Pred pred) {
    while (!pred()) {
      if (wait_until(lk, deadline) == std::cv_status::timeout) return pred();
    }
    return true;
  }

  template <typename Rep, typename Period>
  std::cv_status wait_for(std::unique_lock<OrderedMutex>& lk,
                          const std::chrono::duration<Rep, Period>& d) {
    return wait_until(lk, std::chrono::steady_clock::now() + d);
  }

  template <typename Rep, typename Period, typename Pred>
  bool wait_for(std::unique_lock<OrderedMutex>& lk,
                const std::chrono::duration<Rep, Period>& d, Pred pred) {
    return wait_until(lk, std::chrono::steady_clock::now() + d,
                      std::move(pred));
  }

 private:
  std::condition_variable cv_;
};

}  // namespace dynasparse
