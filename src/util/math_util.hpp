#pragma once
// Small arithmetic helpers shared across subsystems.

#include <cmath>
#include <cstdint>
#include <vector>

namespace dynasparse {

/// ceil(a / b) for non-negative a and positive b.
constexpr std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
  return (a + b - 1) / b;
}

/// Geometric mean of positive values; returns 0 for an empty input.
inline double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

/// Clamp x into [lo, hi].
constexpr double clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

}  // namespace dynasparse
