#pragma once
// Deterministic fault injection (the chaos layer behind tests/chaos_test).
//
// A fault *site* is a named point in the code — `fault_point("x.y")` —
// that normally does nothing. Arming the injector with a spec like
//
//   plan_store.disk_read:0.3,compile.alloc:0.1:5,seed:42
//
// makes each listed site fire with the given probability (an optional
// third field bounds how many times it may fire at all; `seed:N` seeds
// the RNG). What "fire" means is the call site's business: throwing
// std::bad_alloc, failing a disk read, sleeping in the worker loop —
// the injector only answers yes/no.
//
// Determinism: each armed site owns its own mt19937_64 seeded from
// (spec seed ^ site-name hash), so the k-th evaluation of a given site
// draws the same value regardless of how other sites or threads
// interleave. The chaos tests rely on this to reproduce failures from a
// seed alone.
//
// Overhead: fault_point() on an unarmed injector is one relaxed atomic
// load and a branch — cheap enough to leave in production code
// unconditionally (bench/service_throughput gates it at <1% of request
// latency). Armed sites take a mutex; chaos runs are not benchmarks.
//
// The process-global injector (FaultInjector::global) arms itself from
// DYNASPARSE_FAULT_SPEC on first use — how CI's chaos lane injects
// faults into unmodified binaries. ServiceOptions::fault_spec routes
// through the same instance.

#include <cstdint>
#include <random>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include <atomic>
#include <mutex>

#include "util/ordered_mutex.hpp"
namespace dynasparse {

/// What an armed `runtime.kernel_fault` site throws — a stand-in for the
/// transient execution failures (device faults, poisoned inputs) the
/// service must absorb without corrupting neighbors.
struct FaultInjectedError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

// The known injection sites. fault_point() takes any string, but the
// spec parser rejects names outside this list — a typo in
// DYNASPARSE_FAULT_SPEC must be a loud error, not a silently-unarmed
// chaos run.
inline constexpr const char* kFaultCompileAlloc = "compile.alloc";
inline constexpr const char* kFaultPlanStoreDiskRead = "plan_store.disk_read";
inline constexpr const char* kFaultPlanStoreDiskWrite = "plan_store.disk_write";
inline constexpr const char* kFaultQueueDelay = "queue.delay";
inline constexpr const char* kFaultRuntimeKernelFault = "runtime.kernel_fault";
/// Network front-end sites (net/server.cpp, net/connection.cpp): a fired
/// net.accept drops the just-accepted connection (the client sees an
/// immediate close), a fired net.read kills an established connection as
/// if the transport reset it — driving the teardown-cancels-in-flight
/// path the same way the service sites drive the request pipeline.
inline constexpr const char* kFaultNetAccept = "net.accept";
inline constexpr const char* kFaultNetRead = "net.read";

/// All known site names, for spec validation and exhaustive chaos tests.
const std::vector<std::string>& fault_site_names();

/// One armed site.
struct FaultSiteSpec {
  std::string site;
  double probability = 0.0;   // in [0, 1]
  std::int64_t count = -1;    // max injections; -1 = unlimited
};

struct FaultSpec {
  std::uint64_t seed = 2023;
  std::vector<FaultSiteSpec> sites;
  bool empty() const { return sites.empty(); }
};

/// Parse "site:prob[:count],...,seed:N". Throws std::invalid_argument on
/// unknown site names, probabilities outside [0,1], negative counts, or
/// malformed numbers (util/strict_parse discipline: the whole token must
/// parse). An empty string parses to an empty (disarmed) spec.
FaultSpec parse_fault_spec(const std::string& spec);

/// Per-site counters (snapshot).
struct FaultSiteStats {
  std::int64_t evaluations = 0;  // times the site was reached while armed
  std::int64_t injected = 0;     // times it fired
};

class FaultInjector {
 public:
  /// Replace the armed spec (an empty spec disarms). Resets counters and
  /// reseeds every site's RNG — arming is the start of a fresh
  /// deterministic chaos run.
  void arm(const FaultSpec& spec);
  void disarm() { arm(FaultSpec{}); }
  /// Any site armed? One relaxed load — the unarmed fast path.
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Should the site fire now? Counts the evaluation, draws from the
  /// site's own RNG, honors the count budget. Unarmed/unknown sites and
  /// paused injectors return false without counting.
  bool should_inject(const std::string& site);

  /// Suspend/resume injection without losing the armed sites or their
  /// RNG positions — how tests compute fault-free reference results in
  /// the middle of a chaos run. Nestable.
  void pause() { pause_depth_.fetch_add(1, std::memory_order_relaxed); }
  void resume() { pause_depth_.fetch_sub(1, std::memory_order_relaxed); }

  FaultSiteStats site_stats(const std::string& site) const;
  /// (site, stats) for every armed site, in spec order.
  std::vector<std::pair<std::string, FaultSiteStats>> all_stats() const;

  /// The process-global injector. First access arms it from
  /// DYNASPARSE_FAULT_SPEC (malformed values are a hard
  /// std::invalid_argument — a chaos run must never silently not run).
  static FaultInjector& global();

 private:
  struct Site {
    FaultSiteSpec spec;
    std::mt19937_64 rng;
    FaultSiteStats stats;
  };

  std::atomic<bool> armed_{false};
  std::atomic<int> pause_depth_{0};
  mutable OrderedMutex mu_{LockRank::kFaultInjector};
  std::unordered_map<std::string, Site> sites_;
  std::vector<std::string> order_;  // spec order, for all_stats()
};

/// The injection point: false (and nearly free) unless the global
/// injector arms `site`. Call sites decide what a `true` means.
inline bool fault_point(const char* site) {
  FaultInjector& g = FaultInjector::global();
  if (!g.armed()) return false;
  return g.should_inject(site);
}

/// RAII pause of the global injector, for computing fault-free reference
/// results inside chaos tests.
class FaultPauseScope {
 public:
  FaultPauseScope() { FaultInjector::global().pause(); }
  ~FaultPauseScope() { FaultInjector::global().resume(); }
  FaultPauseScope(const FaultPauseScope&) = delete;
  FaultPauseScope& operator=(const FaultPauseScope&) = delete;
};

}  // namespace dynasparse
