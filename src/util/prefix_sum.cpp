#include "util/prefix_sum.hpp"

namespace dynasparse {

std::vector<std::int64_t> exclusive_prefix_sum(const std::vector<std::int64_t>& in) {
  std::vector<std::int64_t> out(in.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = acc;
    acc += in[i];
  }
  return out;
}

std::vector<std::int64_t> inclusive_prefix_sum(const std::vector<std::int64_t>& in) {
  std::vector<std::int64_t> out(in.size());
  std::int64_t acc = 0;
  for (std::size_t i = 0; i < in.size(); ++i) {
    acc += in[i];
    out[i] = acc;
  }
  return out;
}

int prefix_network_stages(int n) {
  int stages = 0;
  int width = 1;
  while (width < n) {
    width <<= 1;
    ++stages;
  }
  return stages;
}

}  // namespace dynasparse
