#pragma once
// MemoryBudget — one process-wide byte arbiter spanning every cache tier.
//
// Before this existed, each reuse tier (CompilationCache, ResultCache,
// PlanStore) carried a private byte ceiling and the resident footprint of
// the process was whatever the sum happened to be. The budget inverts
// that: tiers register once with a name and a weight, charge/credit the
// bytes they hold as entries become ready or are evicted, and the budget
// enforces ONE limit across all of them. When the sum exceeds the limit,
// rebalance() computes weighted per-tier targets — a waterfill over the
// tier weights: tiers under their fair share keep what they have, and
// the remaining capacity is split among the over-share tiers in
// proportion to their weights — and invokes each over-target tier's
// shrinker (the cache-side eviction hook). limit_bytes 0 = track-only:
// charges and high-water stats are recorded but nothing ever shrinks,
// which keeps the pre-budget per-tier-ceiling behavior available.
//
// Locking contract (what lets this arbiter sit underneath every cache
// without ordering their mutexes against each other):
//   - charge()/credit() are counter-only and take just the budget mutex,
//     so a cache may call them while holding its own lock (lock order is
//     always cache -> budget, never the reverse);
//   - rebalance() snapshots targets under the budget mutex but holds NO
//     lock while invoking shrinkers, so a shrinker may take its cache's
//     lock — and credit the tier from inside it — freely;
//   - shrinkers run in REVERSE registration order: a tier registered
//     early (the TilePool, whose entries are pinned by live cached
//     programs) shrinks after the later-registered caches whose entries
//     hold those references have dropped them. rebalance() makes up to
//     three passes while it is still over limit and the previous pass
//     freed bytes, so references released by one pass are collected by
//     the next.
// Callers trigger rebalance() only after releasing their own locks;
// Tier::charge() returns whether that is needed. Concurrent rebalance
// calls coalesce (a second caller returns immediately; the running pass
// brings the pool under). Between a charge and the rebalance it requests
// the sum may transiently exceed the limit — the invariant the budget
// maintains is "quiesced total <= limit", not an allocation gate.
//
// The budget must outlive every Tier handle use; in the service it is a
// member declared before all tier-holding caches, so destruction order
// guarantees it.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/ordered_mutex.hpp"
namespace dynasparse {

struct MemoryTierStats {
  std::string name;
  double weight = 1.0;
  std::int64_t bytes = 0;       // currently charged
  std::int64_t high_water = 0;  // tier-local high-water
  std::int64_t shrinks = 0;     // shrinker invocations on this tier
};

struct MemoryBudgetStats {
  std::size_t limit_bytes = 0;  // 0 = track-only
  std::int64_t bytes = 0;       // sum across tiers
  std::int64_t high_water = 0;  // high-water of the sum
  std::int64_t rebalances = 0;  // shrink passes actually run
  std::vector<MemoryTierStats> tiers;
};

class MemoryBudget {
 public:
  /// A registered tier's handle. Caches hold one and mirror every byte
  /// of their resident accounting through it.
  class Tier {
   public:
    /// Add `bytes` to this tier (counter-only; safe under any caller
    /// lock). Returns true when the budget is now over its limit — the
    /// caller should release its own lock and call owner().rebalance().
    bool charge(std::size_t bytes);
    /// Remove `bytes` from this tier (counter-only, never rebalances).
    void credit(std::size_t bytes);
    /// Install the eviction hook rebalance() drives: shrink resident
    /// bytes to at most `target`. Best-effort — pinned entries (in-flight
    /// fills, pool operands still referenced by live programs) may keep
    /// the tier above target. Install before traffic; may be re-set.
    void set_shrinker(std::function<void(std::size_t)> shrink);
    std::int64_t bytes() const;
    MemoryBudget& owner() const { return *owner_; }

   private:
    friend class MemoryBudget;
    Tier(MemoryBudget* owner, std::string name, double weight)
        : owner_(owner), name_(std::move(name)), weight_(weight) {}
    MemoryBudget* owner_;
    const std::string name_;
    const double weight_;
    // All below guarded by owner_->mu_.
    std::int64_t bytes_ = 0;
    std::int64_t high_water_ = 0;
    std::int64_t shrinks_ = 0;
    std::function<void(std::size_t)> shrink_;
  };

  /// limit_bytes 0 = track-only (never shrinks anything).
  explicit MemoryBudget(std::size_t limit_bytes = 0) : limit_(limit_bytes) {}

  /// Drops every tier's shrinker. Shrinkers routinely capture an owning
  /// reference to their cache while the cache holds the Tier handle —
  /// the budget severing the callback edge on teardown is what keeps
  /// that pair from becoming a shared_ptr cycle that outlives everyone.
  ~MemoryBudget();

  /// Register a tier. `weight` sets its fair share of the limit relative
  /// to the other tiers (the old per-tier byte knobs plug in here as soft
  /// weights); non-positive weights are clamped to 1.
  std::shared_ptr<Tier> register_tier(std::string name, double weight);

  /// Install `shrink` on the tier registered under `name`; no-op for an
  /// unknown name. Convenience for callers that wire shrinkers after the
  /// tier-holding caches are constructed.
  void bind_shrinker(const std::string& name,
                     std::function<void(std::size_t)> shrink);

  /// Enforce the limit: while the charged sum exceeds it (and progress is
  /// being made, up to three passes), compute waterfilled per-tier
  /// targets and invoke over-target shrinkers in reverse registration
  /// order. No lock is held across shrinker calls. No-op when limit is 0
  /// or the sum is within it; concurrent calls coalesce.
  void rebalance();

  std::size_t limit_bytes() const { return limit_; }
  std::int64_t total_bytes() const;
  MemoryBudgetStats stats() const;

 private:
  /// Weighted waterfill targets for the registered tiers; mu_ held.
  std::vector<std::size_t> targets_locked() const;

  const std::size_t limit_;
  mutable OrderedMutex mu_{LockRank::kMemoryBudget};
  std::vector<std::shared_ptr<Tier>> tiers_;  // registration order
  std::int64_t total_ = 0;
  std::int64_t high_water_ = 0;
  std::int64_t rebalances_ = 0;
  bool rebalancing_ = false;  // coalesces concurrent rebalance() calls
};

}  // namespace dynasparse
