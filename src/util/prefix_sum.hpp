#pragma once
// Prefix sums, used functionally by the Dense-to-Sparse conversion (paper
// Fig. 8 drives its compaction shifter with a zero-count prefix sum) and by
// CSR construction.

#include <cstdint>
#include <vector>

namespace dynasparse {

/// Exclusive prefix sum: out[i] = sum of in[0..i-1]; out.size() == in.size().
std::vector<std::int64_t> exclusive_prefix_sum(const std::vector<std::int64_t>& in);

/// Inclusive prefix sum: out[i] = sum of in[0..i].
std::vector<std::int64_t> inclusive_prefix_sum(const std::vector<std::int64_t>& in);

/// Number of pipeline stages of an n-wide prefix-sum / compaction network
/// (ceil(log2 n)); this is the latency model of the hardware D2S module.
int prefix_network_stages(int n);

}  // namespace dynasparse
