#include "compiler/sparsity_prep.hpp"

#include <algorithm>

namespace dynasparse {

SparsityProfile profile_partitions(const PartitionedMatrix& m) {
  SparsityProfile p;
  p.overall_density = m.density();
  double min_d = 1.0, max_d = 0.0;
  bool any = false;
  for (std::int64_t gi = 0; gi < m.grid_rows(); ++gi)
    for (std::int64_t gj = 0; gj < m.grid_cols(); ++gj) {
      const Tile& t = m.tile(gi, gj);
      ++p.tiles;
      if (t.empty()) {
        ++p.empty_tiles;
        continue;
      }
      any = true;
      min_d = std::min(min_d, t.density());
      max_d = std::max(max_d, t.density());
      if (t.format == TileFormat::kCoo)
        ++p.sparse_tiles;
      else
        ++p.dense_tiles;
    }
  if (any) {
    p.min_tile_density = min_d;
    p.max_tile_density = max_d;
  }
  return p;
}

}  // namespace dynasparse
