#include "compiler/ir.hpp"

#include <sstream>

namespace dynasparse {

double KernelIR::dense_macs() const {
  if (spec.kind == KernelKind::kAggregate)
    return static_cast<double>(num_vertices) * static_cast<double>(num_vertices) *
           static_cast<double>(spec.out_dim);
  return static_cast<double>(num_vertices) * static_cast<double>(spec.in_dim) *
         static_cast<double>(spec.out_dim);
}

std::string KernelIR::describe() const {
  std::ostringstream os;
  os << "#" << node_id << " " << spec.kind_name() << " L" << spec.layer_id << " ("
     << spec.in_dim << " -> " << spec.out_dim << ") tasks=" << scheme.num_tasks()
     << " inner=" << scheme.inner_steps;
  return os.str();
}

}  // namespace dynasparse
