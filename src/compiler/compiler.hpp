#pragma once
// Compiler driver (paper Section IV, "Step 1. Compilation/Preprocessing").
//
// compile() performs the three preprocessing stages on the host:
//   1. IR generation      — one node per kernel (computation_graph)
//   2. data partitioning  — choose (N1, N2) (partition_planner), attach
//                           execution schemes, and reorganize A / W / H0
//                           into partitions (PartitionedMatrix)
//   3. sparsity prep      — per-partition density profiling of the
//                           compile-time-known operands
// The result is a CompiledProgram the runtime system executes. Wall-clock
// per stage is recorded (Table IX reports this preprocessing time).

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "compiler/computation_graph.hpp"
#include "compiler/execution_scheme.hpp"
#include "compiler/ir.hpp"
#include "compiler/partition_planner.hpp"
#include "compiler/sparsity_prep.hpp"
#include "graph/dataset.hpp"
#include "graph/normalization.hpp"
#include "model/model.hpp"
#include "util/config.hpp"

namespace dynasparse {

class TilePool;

/// Where compilation materializes the dataset-derived operands
/// (adjacency operators, H0). Default: privately, as always. With a pool
/// and the dataset's content signature, materialization routes through
/// TilePool::get_or_build so programs compiled from the same dataset
/// under the same partition geometry share one immutable copy.
struct OperandSource {
  TilePool* pool = nullptr;
  std::uint64_t dataset_sig = 0;  // dataset_signature(ds); 0 = don't pool
};

struct CompileStats {
  double ir_ms = 0.0;          // IR + computation-graph generation
  double partition_ms = 0.0;   // partition planning + data reorganization
  double sparsity_ms = 0.0;    // compile-time density profiling
  /// Sub-measurement of partition_ms (NOT added by total_ms): wall-clock
  /// inside plan_partitions only. 0.0 when the plan was reused — this is
  /// the work a plan-seeded compile skips, and what the plan-reuse bench
  /// gates on.
  double planning_ms = 0.0;
  double total_ms() const { return ir_ms + partition_ms + sparsity_ms; }
};

/// Key of a materialized adjacency operator: models may use several
/// operator variants (sym-norm, row-norm, A + (1+eps)I) over one graph.
struct AdjOperatorKey {
  AdjKind kind = AdjKind::kRaw;
  double eps = 0.0;
  bool operator<(const AdjOperatorKey& o) const {
    if (kind != o.kind) return kind < o.kind;
    return eps < o.eps;
  }
};

struct CompiledProgram {
  SimConfig config;
  GnnModel model;                // includes weight values
  std::vector<KernelIR> kernels; // scheme metadata attached
  PartitionPlan plan;

  // Partitioned operands known at compile time. Adjacency and H0 derive
  // from the dataset alone and are immutable post-compile, so they are
  // held by shared_ptr: with a TilePool in play (OperandSource), every
  // program compiled from the same dataset under the same geometry
  // holds the SAME objects. Weights derive from the model (distinct per
  // program) and stay private values.
  std::map<AdjOperatorKey, std::shared_ptr<const PartitionedMatrix>>
      adjacency;                                 // N1 x N1 tiles
  std::shared_ptr<const PartitionedMatrix> h0;   // N1 x N2 tiles
  std::vector<PartitionedMatrix> weights;        // N2 x N2 tiles

  /// Host bytes of the dataset-derived operands (adjacency + h0), and
  /// whether they are pool-shared. When pooled, those bytes are the
  /// pool tier's to account — approx_footprint_bytes() excludes them so
  /// one resident copy is never charged to the budget twice.
  std::size_t operand_bytes = 0;
  bool operands_pooled = false;

  // Compile-time sparsity info (Step 1.3).
  SparsityProfile h0_profile;
  std::vector<SparsityProfile> weight_profiles;

  CompileStats stats;

  const PartitionedMatrix& adjacency_for(const KernelSpec& spec) const;

  /// Approximate host-resident bytes this program is uniquely
  /// responsible for: model weights (dense + partitioned), IR, and —
  /// only when privately owned — the dataset operands. Feeds the
  /// CompilationCache's byte-LRU and its budget tier.
  std::size_t approx_footprint_bytes() const;
};

/// Compile `model` over `ds` for the platform `cfg`. `token` (optional)
/// is checked at stage boundaries and inside the partitioning loops: a
/// cancelled or deadline-expired request aborts compilation with the
/// typed error (util/cancellation.hpp). A default token never aborts —
/// non-service callers keep the unconditional behavior. `operands`
/// (optional) routes dataset-operand materialization through a shared
/// TilePool; the default builds private copies.
CompiledProgram compile(const GnnModel& model, const Dataset& ds, const SimConfig& cfg,
                        const CancellationToken& token = {},
                        const OperandSource& operands = {});

/// Recompile with a previously planned partitioning (paper Section
/// VIII-A: "the optimized IR can be stored and reused if the sparsity of
/// the input graph and GNN model changes"). Skips the planning stage and
/// reuses `plan` verbatim; the data reorganization and sparsity profiling
/// run against the (possibly re-pruned / re-featured) inputs. The model
/// and graph *shapes* must match what the plan was made for.
CompiledProgram compile_with_plan(const GnnModel& model, const Dataset& ds,
                                  const SimConfig& cfg, const PartitionPlan& plan,
                                  const CancellationToken& token = {},
                                  const OperandSource& operands = {});

}  // namespace dynasparse
