#pragma once
// Computation-graph construction (paper compilation Step 1): one IR node
// per kernel of the model, edges given by KernelSpec::input/add_input.

#include <vector>

#include "compiler/ir.hpp"
#include "graph/graph.hpp"
#include "model/model.hpp"

namespace dynasparse {

/// Build the IR nodes (without scheme metadata) for `model` over `graph`.
/// Node order equals model.kernels order, which is already topological.
std::vector<KernelIR> build_computation_graph(const GnnModel& model, const Graph& graph);

/// Verify the dependency structure: every edge points backwards, and the
/// per-node dims chain (mirrors validate_model at the IR level).
bool validate_computation_graph(const std::vector<KernelIR>& nodes);

}  // namespace dynasparse
