#pragma once
// Compile-time sparsity preprocessing (paper Step 1, item 3): while data
// partitioning reorganizes A, W and H0 into partitions, counters profile
// the density of every partition. Densities of intermediate feature
// matrices H1..HL are *not* known here — they are profiled by the
// accelerator's Sparsity Profiler at runtime.

#include <cstdint>
#include <vector>

#include "matrix/partitioned_matrix.hpp"

namespace dynasparse {

/// Summary statistics of one partitioned operand.
struct SparsityProfile {
  std::int64_t tiles = 0;
  std::int64_t empty_tiles = 0;
  std::int64_t sparse_tiles = 0;  // stored COO
  std::int64_t dense_tiles = 0;   // stored dense
  double overall_density = 0.0;
  double min_tile_density = 0.0;  // over non-empty tiles
  double max_tile_density = 0.0;
};

SparsityProfile profile_partitions(const PartitionedMatrix& m);

}  // namespace dynasparse
