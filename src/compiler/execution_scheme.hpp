#pragma once
// Execution-scheme generation (paper Algorithms 2-4).
//
// A kernel decomposes into independent *tasks*; each task owns one output
// tile Z_ik and accumulates Z_ik += Matmul(X_ij, Y_jk) over the inner
// dimension j. Which primitive executes each Matmul is the runtime
// system's decision (Algorithm 7) — the scheme only fixes the tiling.

#include <cstdint>
#include <vector>

#include "compiler/ir.hpp"

namespace dynasparse {

/// One computation task (paper Algorithm 4): produce output tile
/// (out_gi, out_gk) of kernel `kernel_id` by accumulating `inner_steps`
/// tile products.
struct Task {
  int kernel_id = 0;
  std::int64_t out_gi = 0;
  std::int64_t out_gk = 0;
  std::int64_t inner_steps = 0;
};

/// Fill in the scheme metadata of `ir` for partition sizes (n1, n2):
///   Aggregate (Algorithm 2): grid_i = ceil(|V|/N1), grid_k = ceil(f/N2),
///                            inner  = ceil(|V|/N1)   (blocks of A)
///   Update    (Algorithm 3): grid_i = ceil(|V|/N1), grid_k = ceil(f2/N2),
///                            inner  = ceil(f1/N2)    (blocks of W)
void attach_scheme(KernelIR& ir, std::int64_t n1, std::int64_t n2);

/// Materialize the task list of one kernel, output tiles in row-major
/// order of the grid.
std::vector<Task> generate_tasks(const KernelIR& ir);

}  // namespace dynasparse
