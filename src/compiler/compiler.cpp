#include "compiler/compiler.hpp"

#include <functional>
#include <new>
#include <stdexcept>

#include "compiler/signature.hpp"
#include "matrix/tile_pool.hpp"
#include "util/fault_injection.hpp"
#include "util/stopwatch.hpp"

namespace dynasparse {

const PartitionedMatrix& CompiledProgram::adjacency_for(const KernelSpec& spec) const {
  auto it = adjacency.find(AdjOperatorKey{spec.adj, spec.epsilon});
  if (it == adjacency.end())
    throw std::logic_error("adjacency operator not materialized for kernel");
  return *it->second;
}

std::size_t CompiledProgram::approx_footprint_bytes() const {
  std::size_t b = sizeof(CompiledProgram);
  for (const DenseMatrix& w : model.weights) b += w.data().size() * sizeof(float);
  for (const PartitionedMatrix& w : weights) b += w.approx_footprint_bytes();
  b += kernels.size() * sizeof(KernelIR);
  // Dataset operands only when this program privately owns them; pooled
  // copies are the TilePool tier's bytes (charged exactly once there).
  if (!operands_pooled) b += operand_bytes;
  return b;
}

namespace {

/// Shared compilation body; `plan` empty (n1 == 0) means "run the
/// partition planner", otherwise the given plan is reused verbatim.
CompiledProgram compile_impl(const GnnModel& model, const Dataset& ds,
                             const SimConfig& cfg, const PartitionPlan& reuse_plan,
                             const CancellationToken& token,
                             const OperandSource& operands) {
  if (!cfg.valid()) throw std::invalid_argument("invalid SimConfig");
  std::string err;
  if (!validate_model(model, &err)) throw std::invalid_argument("invalid model: " + err);
  if (ds.features.cols() != model.in_dim)
    throw std::invalid_argument("dataset feature dim does not match model in_dim");

  CompiledProgram prog;
  prog.config = cfg;
  prog.model = model;

  // ---- Step 1: IR / computation graph --------------------------------
  Stopwatch sw;
  prog.kernels = build_computation_graph(model, ds.graph);
  if (!validate_computation_graph(prog.kernels))
    throw std::logic_error("computation graph failed validation");
  prog.stats.ir_ms = sw.elapsed_ms();

  // ---- Step 2: data partitioning --------------------------------------
  sw.restart();
  token.check();
  // The chaos layer's allocation-pressure site: Step 2 is where the
  // partitioned operands (the compile's dominant allocations) are
  // materialized, so an injected bad_alloc here exercises the same
  // failure surface a real out-of-memory would.
  if (fault_point(kFaultCompileAlloc)) throw std::bad_alloc();
  if (reuse_plan.n1 > 0) {
    if (reuse_plan.n2 <= 0 || reuse_plan.n1 % cfg.psys != 0 ||
        reuse_plan.n2 % cfg.psys != 0)
      throw std::invalid_argument("reused plan incompatible with config");
    prog.plan = reuse_plan;
  } else {
    std::vector<KernelWorkload> workloads = planner_workloads(prog.kernels);
    Stopwatch plan_sw;
    prog.plan = plan_partitions(workloads, cfg, token);
    prog.stats.planning_ms = plan_sw.elapsed_ms();
  }
  for (KernelIR& k : prog.kernels) attach_scheme(k, prog.plan.n1, prog.plan.n2);

  const double thr = cfg.sparse_storage_threshold;
  // Dataset-derived operands (adjacency, H0) go through the TilePool
  // when one is supplied: equal (dataset, geometry, operand) keys are
  // guaranteed bit-identical tiles — from_csr/from_coo are pure
  // functions of the dataset bytes and this geometry — so programs
  // sharing a dataset share one immutable copy instead of each holding
  // a private one.
  const bool pool_on = operands.pool != nullptr && operands.dataset_sig != 0 &&
                       operands.pool->max_entries() > 0;
  std::uint64_t geometry_sig = 0;
  if (pool_on)
    geometry_sig =
        HashStream().i64(prog.plan.n1).i64(prog.plan.n2).f64(thr).digest();
  auto materialize = [&](std::uint64_t operand_sig,
                         const std::function<PartitionedMatrix()>& build) {
    if (!pool_on) return std::make_shared<const PartitionedMatrix>(build());
    return operands.pool->get_or_build(
        TilePool::Key{operands.dataset_sig, geometry_sig, operand_sig}, build);
  };

  // Materialize each adjacency operator the model references once.
  for (const KernelIR& k : prog.kernels) {
    token.check();
    if (k.spec.kind != KernelKind::kAggregate) continue;
    AdjOperatorKey key{k.spec.adj, k.spec.epsilon};
    if (prog.adjacency.count(key)) continue;
    const std::uint64_t adj_sig = HashStream()
                                      .str("adj")
                                      .i64(static_cast<std::int64_t>(k.spec.adj))
                                      .f64(k.spec.epsilon)
                                      .digest();
    prog.adjacency.emplace(key, materialize(adj_sig, [&] {
      CsrMatrix op = build_adjacency_operator(ds.graph, k.spec.adj, k.spec.epsilon);
      return PartitionedMatrix::from_csr(op, prog.plan.n1, prog.plan.n1, thr);
    }));
  }
  token.check();
  prog.h0 = materialize(HashStream().str("h0").digest(), [&] {
    return PartitionedMatrix::from_coo(ds.features, prog.plan.n1, prog.plan.n2, thr);
  });
  prog.operands_pooled = pool_on;
  prog.operand_bytes = prog.h0->approx_footprint_bytes();
  for (const auto& [akey, adj] : prog.adjacency) {
    (void)akey;
    prog.operand_bytes += adj->approx_footprint_bytes();
  }
  prog.weights.reserve(model.weights.size());
  for (const DenseMatrix& w : model.weights) {
    token.check();
    prog.weights.push_back(
        PartitionedMatrix::from_dense(w, prog.plan.n2, prog.plan.n2, thr));
  }
  prog.stats.partition_ms = sw.elapsed_ms();

  // ---- Step 3: compile-time sparsity profiling ------------------------
  sw.restart();
  token.check();
  prog.h0_profile = profile_partitions(*prog.h0);
  prog.weight_profiles.reserve(prog.weights.size());
  for (const PartitionedMatrix& w : prog.weights)
    prog.weight_profiles.push_back(profile_partitions(w));
  prog.stats.sparsity_ms = sw.elapsed_ms();

  return prog;
}

}  // namespace

CompiledProgram compile(const GnnModel& model, const Dataset& ds, const SimConfig& cfg,
                        const CancellationToken& token, const OperandSource& operands) {
  return compile_impl(model, ds, cfg, PartitionPlan{}, token, operands);
}

CompiledProgram compile_with_plan(const GnnModel& model, const Dataset& ds,
                                  const SimConfig& cfg, const PartitionPlan& plan,
                                  const CancellationToken& token,
                                  const OperandSource& operands) {
  if (plan.n1 <= 0 || plan.n2 <= 0)
    throw std::invalid_argument("compile_with_plan needs a concrete plan");
  return compile_impl(model, ds, cfg, plan, token, operands);
}

}  // namespace dynasparse
