#include "compiler/computation_graph.hpp"

namespace dynasparse {

std::vector<KernelIR> build_computation_graph(const GnnModel& model, const Graph& graph) {
  std::vector<KernelIR> nodes;
  nodes.reserve(model.kernels.size());
  for (std::size_t i = 0; i < model.kernels.size(); ++i) {
    KernelIR ir;
    ir.node_id = static_cast<int>(i);
    ir.spec = model.kernels[i];
    ir.num_vertices = graph.num_vertices();
    ir.num_edges = graph.num_edges();
    nodes.push_back(std::move(ir));
  }
  return nodes;
}

bool validate_computation_graph(const std::vector<KernelIR>& nodes) {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const KernelSpec& s = nodes[i].spec;
    if (s.input != kFromFeatures) {
      if (s.input < 0 || static_cast<std::size_t>(s.input) >= i) return false;
      if (nodes[static_cast<std::size_t>(s.input)].spec.out_dim != s.in_dim) return false;
    }
    if (s.add_input >= 0) {
      if (static_cast<std::size_t>(s.add_input) >= i) return false;
      if (nodes[static_cast<std::size_t>(s.add_input)].spec.out_dim != s.out_dim)
        return false;
    }
  }
  return true;
}

}  // namespace dynasparse
