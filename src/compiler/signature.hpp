#pragma once
// Content-hash signatures of compilation inputs and artifacts.
//
// The inference service caches CompiledPrograms keyed by *what was
// compiled*, not by object identity: two independently generated but
// bit-identical (model, dataset, config) triples must collide, and any
// change to weight values, graph topology, feature nonzeros, or a single
// SimConfig field must produce a different key. Signatures therefore hash
// the full content — every float as its bit pattern, every index array,
// every config field — with a 64-bit FNV-1a-style word hash. Wall-clock
// fields (CompileStats) are never part of a signature.
//
// ir_signature covers the reusable compiler artifact (partition plan +
// kernel IRs with scheme metadata), matching what io/ir_io.hpp persists;
// it lets a cache validate a stored IR snapshot against a live program.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "compiler/ir.hpp"
#include "compiler/partition_planner.hpp"
#include "graph/dataset.hpp"
#include "model/model.hpp"
#include "runtime/runtime_system.hpp"
#include "util/config.hpp"

namespace dynasparse {

/// Incremental 64-bit content hash. Word-granular FNV-1a variant with an
/// extra diffusion shift per step; collision-resistant enough for cache
/// keying (keys additionally carry three independent component hashes).
class HashStream {
 public:
  HashStream& u64(std::uint64_t v) {
    h_ ^= v;
    h_ *= kPrime;
    h_ ^= h_ >> 32;
    return *this;
  }
  HashStream& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  HashStream& f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }
  HashStream& f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }
  HashStream& str(const std::string& s) {
    u64(s.size());
    for (char c : s) u64(static_cast<unsigned char>(c));
    return *this;
  }
  HashStream& i64s(const std::vector<std::int64_t>& v) {
    u64(v.size());
    for (std::int64_t x : v) i64(x);
    return *this;
  }
  HashStream& f32s(const std::vector<float>& v) {
    u64(v.size());
    for (float x : v) f32(x);
    return *this;
  }
  std::uint64_t digest() const { return h_; }

 private:
  static constexpr std::uint64_t kPrime = 0x100000001b3ull;
  std::uint64_t h_ = 0xcbf29ce484222325ull;  // FNV offset basis
};

/// Hash of everything that makes a model what it is: kind, name, layer
/// structure, every KernelSpec field, weight shapes and weight value bits.
std::uint64_t model_signature(const GnnModel& model);

/// Hash of the dataset content: the spec (including name/tag, which flow
/// into reports), the adjacency CSR arrays, and the feature nonzeros.
std::uint64_t dataset_signature(const Dataset& ds);

/// Bounded-work dataset identity: the spec and array shapes in full plus
/// a fixed-count stride sample of the adjacency arrays and feature
/// nonzeros, instead of dataset_signature's full content walk (which
/// costs milliseconds on the larger graphs). Content-equal datasets
/// always fingerprint equal. Built for keys where a collision between
/// *different* datasets is harmless — the batch scheduler groups on
/// this, and a falsely grouped member simply misses the shared-operand
/// sweep (the runtime fuses only pointer-equal pooled operands) while
/// still executing correctly. NOT a substitute for dataset_signature in
/// the compilation/result caches, where a collision would alias
/// different programs.
std::uint64_t dataset_fingerprint(const Dataset& ds);

/// Hash of every SimConfig field. Keep in sync with the struct — a new
/// field MUST be added here, or programs compiled under different configs
/// would collide in the cache.
std::uint64_t config_signature(const SimConfig& cfg);

/// Hash of the reusable compiler artifact: plan + kernel IRs + schemes.
std::uint64_t ir_signature(const std::vector<KernelIR>& kernels,
                           const PartitionPlan& plan);

/// Plan-compatibility signature: hashes exactly the partition planner's
/// inputs — the per-kernel workload sequence (kind, out_dim; every kernel
/// spans the whole graph, so one vertex count covers all of them) plus
/// the SimConfig fields plan_partitions reads (psys, num_cores,
/// load_balance_eta, min_partition, and the onchip_tile_bytes /
/// dense_elem_bytes behind max_partition_size). A strict subset of the
/// CompileKey content: weight values, feature nonzeros, graph topology
/// beyond |V|, and the non-planning config fields do not flow in, so
/// *similar* requests — same model/plan shape but a different dataset
/// instance, pruning level, or weight draw — collide here even though
/// their CompileKeys differ. Equal signatures guarantee plan_partitions
/// would return the identical PartitionPlan, which is what licenses the
/// PlanStore (service/plan_store.hpp) to seed compile_with_plan and still
/// produce a bit-identical program. Keep in sync with plan_partitions the
/// same way config_signature tracks SimConfig: a new planner input MUST
/// be added here or incompatible requests would share plans.
std::uint64_t plan_signature(const GnnModel& model, std::int64_t num_vertices,
                             const SimConfig& cfg);

/// Compilation-cache key: independent content hashes of the three compile
/// inputs. Equality of all three components is what "same compilation"
/// means to the service.
struct CompileKey {
  std::uint64_t model = 0;
  std::uint64_t dataset = 0;
  std::uint64_t config = 0;

  bool operator==(const CompileKey& o) const {
    return model == o.model && dataset == o.dataset && config == o.config;
  }
  bool operator!=(const CompileKey& o) const { return !(*this == o); }
  bool operator<(const CompileKey& o) const {
    if (model != o.model) return model < o.model;
    if (dataset != o.dataset) return dataset < o.dataset;
    return config < o.config;
  }
  /// "mmmmmmmm-dddddddd-cccccccc" hex rendering for logs and tools.
  std::string to_string() const;
};

CompileKey make_compile_key(const GnnModel& model, const Dataset& ds,
                            const SimConfig& cfg);

/// Hash of every RuntimeOptions field. Keep in sync with the struct — a
/// new field MUST be added here, or results executed under different
/// runtime options would collide in the result cache (same discipline as
/// config_signature).
///
/// Every field is hashed, including host_threads, even though results are
/// thread-count-invariant by construction: "flip any field, change the
/// key" is a simpler invariant to keep true than a per-field judgement
/// call of what affects results, and the cost of the conservative key is
/// only a cache miss that re-executes — never a wrong report.
std::uint64_t runtime_options_signature(const RuntimeOptions& rt);

/// Result-memoization key: the compilation identity plus the runtime
/// options the program was executed under. The simulator is fully
/// deterministic (see InferenceReport::deterministic_fingerprint), so two
/// requests with equal ResultKeys must produce bit-identical deterministic
/// report fields — which is what licenses the service's ResultCache to
/// return a stored report without executing.
struct ResultKey {
  CompileKey compile;
  std::uint64_t runtime = 0;

  bool operator==(const ResultKey& o) const {
    return compile == o.compile && runtime == o.runtime;
  }
  bool operator!=(const ResultKey& o) const { return !(*this == o); }
  bool operator<(const ResultKey& o) const {
    if (compile != o.compile) return compile < o.compile;
    return runtime < o.runtime;
  }
  /// "mmmmmmmm-dddddddd-cccccccc-rrrrrrrr" hex rendering for logs/tools.
  std::string to_string() const;
};

ResultKey make_result_key(const CompileKey& compile, const RuntimeOptions& rt);

}  // namespace dynasparse
