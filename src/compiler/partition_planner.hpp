#pragma once
// Data-partitioning heuristic (paper Algorithm 9).
//
// Chooses the partition sizes (N1, N2) shared by all kernels so that
//   1. tiles fit on-chip buffers:          N1, N2 <= Nmax = g(So)
//   2. every kernel has enough tasks for load balance across the NCC
//      Computation Cores:                  tasks >= eta * NCC
//   3. subject to 1-2, N1 and N2 are as large as possible (data locality).
// N2 is fixed first from the Update kernels, then N1 from the Aggregate
// kernels (paper's two-step order), followed by a repair pass that
// enforces the task-count constraint under this library's task tiling
// (Update tasks produce N1 x N2 output tiles; see DESIGN.md).

#include <cstdint>
#include <vector>

#include "compiler/ir.hpp"
#include "model/model.hpp"
#include "util/cancellation.hpp"
#include "util/config.hpp"

namespace dynasparse {

struct PartitionPlan {
  std::int64_t n1 = 0;
  std::int64_t n2 = 0;
  std::int64_t n_max = 0;  // g(So): on-chip capacity bound used
};

/// Workload descriptor the planner needs per kernel.
struct KernelWorkload {
  KernelKind kind = KernelKind::kUpdate;
  std::int64_t num_vertices = 0;
  std::int64_t out_dim = 0;
  std::int64_t workload() const { return num_vertices * out_dim; }
};

/// The planner's projection of a computation graph: one workload
/// descriptor per kernel IR. Every planning site (compile() and the
/// service's PlanStore) routes through this, so a stored plan is derived
/// from exactly the inputs a cold compile would plan from — keep any new
/// planner input here AND in plan_signature (compiler/signature.hpp).
std::vector<KernelWorkload> planner_workloads(const std::vector<KernelIR>& kernels);

/// Algorithm 9. Partition sizes are multiples of psys (systolic alignment)
/// within [cfg.min_partition, Nmax]; when a kernel is too small to ever
/// reach eta * NCC tasks, the floor wins (documented deviation: the paper
/// leaves this case implicit, and below ~4x psys a tile product has too
/// little arithmetic intensity to outrun the DDR stream anyway).
/// `token` is checked at every search-loop iteration: a cancelled or
/// deadline-expired request aborts planning with the typed error
/// (util/cancellation.hpp) instead of finishing work nobody will consume.
PartitionPlan plan_partitions(const std::vector<KernelWorkload>& kernels,
                              const SimConfig& cfg,
                              const CancellationToken& token = {});

/// Task count of a kernel under (n1, n2) and this library's tiling:
/// ceil(|V|/N1) * ceil(f_out/N2) for both kernel kinds.
std::int64_t tasks_for(const KernelWorkload& k, std::int64_t n1, std::int64_t n2);

}  // namespace dynasparse
