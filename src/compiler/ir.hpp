#pragma once
// Intermediate representation of a GNN inference program (paper Table II).
//
// The compiler turns (model, graph metadata) into one KernelIR node per
// computation kernel. Each node carries the Table II metadata plus the
// execution-scheme metadata produced by data partitioning: the partition
// sizes, the output tile grid, and the resulting task count.

#include <cstdint>
#include <string>
#include <vector>

#include "model/model.hpp"

namespace dynasparse {

/// Execution-scheme metadata of one kernel ("Meta data of execution
/// scheme" row of Table II; concretely Algorithms 2/3 loop bounds).
struct ExecutionSchemeMeta {
  std::int64_t n1 = 0;          // row-partition size (A blocks, H row tiles)
  std::int64_t n2 = 0;          // column-partition size (H/W column tiles)
  std::int64_t grid_i = 0;      // output tile rows  = ceil(|V| / N1)
  std::int64_t grid_k = 0;      // output tile cols  = ceil(f_out / N2)
  std::int64_t inner_steps = 0; // accumulation steps per task (j loop)
  std::int64_t num_tasks() const { return grid_i * grid_k; }
};

/// IR of one kernel: Table II fields + scheme metadata.
struct KernelIR {
  int node_id = 0;            // index in execution order
  KernelSpec spec;            // kind, layer, dims, operator, activation...
  std::int64_t num_vertices = 0;
  std::int64_t num_edges = 0;
  ExecutionSchemeMeta scheme;

  /// Total multiply-accumulate workload of the kernel if executed densely:
  /// Aggregate: |V| * |V| * f; Update: |V| * f_in * f_out.
  double dense_macs() const;
  /// Workload measure Q used by the partition planner (output elements).
  std::int64_t planner_workload() const { return num_vertices * spec.out_dim; }

  std::string describe() const;
};

}  // namespace dynasparse
