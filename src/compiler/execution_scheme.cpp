#include "compiler/execution_scheme.hpp"

#include "util/math_util.hpp"

namespace dynasparse {

void attach_scheme(KernelIR& ir, std::int64_t n1, std::int64_t n2) {
  ExecutionSchemeMeta& s = ir.scheme;
  s.n1 = n1;
  s.n2 = n2;
  s.grid_i = ceil_div(ir.num_vertices, n1);
  s.grid_k = ceil_div(ir.spec.out_dim, n2);
  s.inner_steps = ir.spec.kind == KernelKind::kAggregate
                      ? ceil_div(ir.num_vertices, n1)
                      : ceil_div(ir.spec.in_dim, n2);
}

std::vector<Task> generate_tasks(const KernelIR& ir) {
  std::vector<Task> tasks;
  tasks.reserve(static_cast<std::size_t>(ir.scheme.num_tasks()));
  for (std::int64_t gi = 0; gi < ir.scheme.grid_i; ++gi)
    for (std::int64_t gk = 0; gk < ir.scheme.grid_k; ++gk)
      tasks.push_back(Task{ir.node_id, gi, gk, ir.scheme.inner_steps});
  return tasks;
}

}  // namespace dynasparse
