#include "compiler/partition_planner.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/math_util.hpp"

namespace dynasparse {

namespace {

/// Round n down to a multiple of psys, clamped to [floor_n, n_max].
std::int64_t clamp_partition(std::int64_t n, std::int64_t psys, std::int64_t floor_n,
                             std::int64_t n_max) {
  n = std::min(n, n_max);
  n -= n % psys;
  return std::max(n, std::min(floor_n, n_max));
}

}  // namespace

std::int64_t tasks_for(const KernelWorkload& k, std::int64_t n1, std::int64_t n2) {
  return ceil_div(k.num_vertices, n1) * ceil_div(k.out_dim, n2);
}

std::vector<KernelWorkload> planner_workloads(const std::vector<KernelIR>& kernels) {
  std::vector<KernelWorkload> workloads;
  workloads.reserve(kernels.size());
  for (const KernelIR& k : kernels)
    workloads.push_back(KernelWorkload{k.spec.kind, k.num_vertices, k.spec.out_dim});
  return workloads;
}

PartitionPlan plan_partitions(const std::vector<KernelWorkload>& kernels,
                              const SimConfig& cfg,
                              const CancellationToken& token) {
  if (kernels.empty()) throw std::invalid_argument("no kernels to plan");
  token.check();
  const std::int64_t psys = cfg.psys;
  const std::int64_t floor_n = cfg.min_partition;
  const std::int64_t n_max = cfg.max_partition_size();
  const std::int64_t min_tasks =
      static_cast<std::int64_t>(cfg.load_balance_eta) * cfg.num_cores;

  PartitionPlan plan;
  plan.n_max = n_max;

  // A kernel constrains the plan only if it can reach min_tasks at all
  // (at the smallest partitions); tiny kernels fall to the floor sizes.
  auto all_satisfied = [&](std::int64_t a, std::int64_t b) {
    for (const KernelWorkload& k : kernels) {
      if (tasks_for(k, floor_n, floor_n) < min_tasks) continue;
      if (tasks_for(k, a, b) < min_tasks) return false;
    }
    return true;
  };

  // The paper's two-step order with the *actual* task counts of this
  // library's tiling (the closed forms Q/N2^2 and Q/(N1*N2) are the
  // idealized versions; ceil arithmetic matters when out_dim < N2).
  // ---- Step 1: largest N2 such that the Update kernels still reach
  // min_tasks in the best case (N1 at its floor maximizes grid_i).
  std::int64_t n2 = n_max;
  while (n2 > floor_n) {
    token.check();
    bool ok = true;
    for (const KernelWorkload& k : kernels) {
      if (k.kind != KernelKind::kUpdate) continue;
      if (tasks_for(k, floor_n, floor_n) < min_tasks) continue;
      if (tasks_for(k, floor_n, n2) < min_tasks) ok = false;
    }
    if (ok) break;
    n2 = clamp_partition(n2 - psys, psys, floor_n, n_max);
  }

  // ---- Step 2: largest N1 such that every kernel reaches min_tasks
  // under the chosen N2.
  std::int64_t n1 = n_max;
  while (n1 > floor_n && !all_satisfied(n1, n2)) {
    token.check();
    n1 = clamp_partition(n1 - psys, psys, floor_n, n_max);
  }

  // ---- Repair backstop: if the pair still violates the constraint,
  // shrink N2 as well.
  while (!all_satisfied(n1, n2) && n2 > floor_n)
    n2 = clamp_partition(n2 / 2, psys, floor_n, n_max);

  plan.n1 = n1;
  plan.n2 = n2;
  return plan;
}

}  // namespace dynasparse
