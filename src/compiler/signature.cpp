#include "compiler/signature.hpp"

#include <algorithm>
#include <cstdio>

namespace dynasparse {

// ---- keep-in-sync tripwires ------------------------------------------------
// Every struct hashed below is pinned to its current size: adding a field
// changes sizeof and fails this build until the matching hasher (and this
// assert) is updated — the signature silently missing a new field is
// exactly the bug that would alias cache keys across different inputs.
// Sizes are ABI-specific, so the pins only arm on the toolchain CI runs
// (libstdc++ on x86-64); other ABIs still get the hashers, just not the
// tripwire. dynasparse_lint rule [signature-tripwire] enforces that every
// hashed type has an assert here.
#if defined(__GLIBCXX__) && defined(__x86_64__)
static_assert(sizeof(KernelSpec) == 56, "KernelSpec changed: update hash_spec");
static_assert(sizeof(DenseMatrix) == 48, "DenseMatrix changed: update hash_dense");
static_assert(sizeof(GnnModel) == 120, "GnnModel changed: update model_signature");
static_assert(sizeof(Dataset) == 280, "Dataset changed: update dataset_signature");
static_assert(sizeof(CsrMatrix) == 88, "CsrMatrix changed: update dataset_signature");
static_assert(sizeof(CooEntry) == 24, "CooEntry changed: update dataset_signature");
static_assert(sizeof(SimConfig) == 80, "SimConfig changed: update config_signature");
static_assert(sizeof(KernelIR) == 120, "KernelIR changed: update ir_signature");
static_assert(sizeof(PartitionPlan) == 24, "PartitionPlan changed: update ir_signature");
static_assert(sizeof(RuntimeOptions) == 16,
              "RuntimeOptions changed: update runtime_options_signature");
static_assert(sizeof(CompileKey) == 24, "CompileKey changed: update make_result_key");
#endif

namespace {

void hash_spec(HashStream& h, const KernelSpec& s) {
  h.i64(static_cast<std::int64_t>(s.kind))
      .i64(s.layer_id)
      .i64(s.in_dim)
      .i64(s.out_dim)
      .i64(s.weight_index)
      .i64(static_cast<std::int64_t>(s.adj))
      .f64(s.epsilon)
      .i64(static_cast<std::int64_t>(s.op))
      .i64(s.input)
      .i64(s.add_input)
      .i64(static_cast<std::int64_t>(s.act));
}

void hash_dense(HashStream& h, const DenseMatrix& m) {
  h.i64(m.rows()).i64(m.cols()).i64(static_cast<std::int64_t>(m.layout()));
  h.f32s(m.data());
}

}  // namespace

std::uint64_t model_signature(const GnnModel& model) {
  HashStream h;
  h.i64(static_cast<std::int64_t>(model.kind))
      .str(model.name)
      .i64(model.num_layers)
      .i64(model.in_dim)
      .i64(model.hidden_dim)
      .i64(model.out_dim);
  h.u64(model.kernels.size());
  for (const KernelSpec& s : model.kernels) hash_spec(h, s);
  h.u64(model.weights.size());
  for (const DenseMatrix& w : model.weights) hash_dense(h, w);
  return h.digest();
}

std::uint64_t dataset_signature(const Dataset& ds) {
  HashStream h;
  h.str(ds.spec.name)
      .str(ds.spec.tag)
      .i64(ds.spec.vertices)
      .i64(ds.spec.edges)
      .i64(ds.spec.feature_dim)
      .i64(ds.spec.num_classes)
      .f64(ds.spec.h0_density)
      .i64(ds.spec.hidden_dim)
      .f64(ds.spec.degree_skew)
      .i64(ds.spec.bench_scale);
  const CsrMatrix& a = ds.graph.adjacency();
  h.i64(ds.graph.num_vertices()).i64(ds.graph.num_edges());
  h.i64(a.rows()).i64(a.cols());
  h.i64s(a.row_ptr()).i64s(a.col_idx()).f32s(a.values());
  h.i64(ds.features.rows())
      .i64(ds.features.cols())
      .i64(static_cast<std::int64_t>(ds.features.layout()));
  h.u64(ds.features.entries().size());
  for (const CooEntry& e : ds.features.entries()) h.i64(e.row).i64(e.col).f32(e.value);
  return h.digest();
}

std::uint64_t dataset_fingerprint(const Dataset& ds) {
  // 64 strided probes per array + first/last element: enough that any
  // plausible dataset perturbation (an edge rewire, a feature redraw)
  // lands in the sample with high probability, cheap enough to run per
  // request on the scheduler's hot path.
  constexpr std::size_t kProbes = 64;
  HashStream h;
  h.str(ds.spec.name)
      .str(ds.spec.tag)
      .i64(ds.spec.vertices)
      .i64(ds.spec.edges)
      .i64(ds.spec.feature_dim)
      .i64(ds.spec.num_classes)
      .f64(ds.spec.h0_density)
      .i64(ds.spec.hidden_dim)
      .f64(ds.spec.degree_skew)
      .i64(ds.spec.bench_scale);
  const CsrMatrix& a = ds.graph.adjacency();
  h.i64(ds.graph.num_vertices()).i64(ds.graph.num_edges());
  h.i64(a.rows()).i64(a.cols());
  auto probe_i64 = [&h](const std::vector<std::int64_t>& v) {
    h.u64(v.size());
    if (v.empty()) return;
    const std::size_t stride = std::max<std::size_t>(1, v.size() / kProbes);
    for (std::size_t i = 0; i < v.size(); i += stride) h.i64(v[i]);
    h.i64(v.back());
  };
  auto probe_f32 = [&h](const std::vector<float>& v) {
    h.u64(v.size());
    if (v.empty()) return;
    const std::size_t stride = std::max<std::size_t>(1, v.size() / kProbes);
    for (std::size_t i = 0; i < v.size(); i += stride) h.f32(v[i]);
    h.f32(v.back());
  };
  probe_i64(a.row_ptr());
  probe_i64(a.col_idx());
  probe_f32(a.values());
  h.i64(ds.features.rows())
      .i64(ds.features.cols())
      .i64(static_cast<std::int64_t>(ds.features.layout()));
  const std::vector<CooEntry>& fe = ds.features.entries();
  h.u64(fe.size());
  if (!fe.empty()) {
    const std::size_t stride = std::max<std::size_t>(1, fe.size() / kProbes);
    for (std::size_t i = 0; i < fe.size(); i += stride)
      h.i64(fe[i].row).i64(fe[i].col).f32(fe[i].value);
    h.i64(fe.back().row).i64(fe.back().col).f32(fe.back().value);
  }
  return h.digest();
}

std::uint64_t config_signature(const SimConfig& cfg) {
  HashStream h;
  h.i64(cfg.psys)
      .i64(cfg.num_cores)
      .f64(cfg.core_clock_hz)
      .f64(cfg.soft_clock_hz)
      .f64(cfg.ddr_bandwidth_bytes_per_s)
      .i64(cfg.dense_elem_bytes)
      .i64(cfg.coo_elem_bytes)
      .u64(cfg.onchip_tile_bytes)
      .i64(cfg.load_balance_eta)
      .i64(cfg.min_partition)
      .i64(cfg.k2p_cycles_per_pair)
      .i64(cfg.k2p_skip_cycles)
      .i64(cfg.dispatch_cycles_per_task)
      .i64(cfg.mode_switch_cycles)
      .f64(cfg.sparse_storage_threshold);
  return h.digest();
}

std::uint64_t ir_signature(const std::vector<KernelIR>& kernels,
                           const PartitionPlan& plan) {
  HashStream h;
  h.i64(plan.n1).i64(plan.n2).i64(plan.n_max);
  h.u64(kernels.size());
  for (const KernelIR& k : kernels) {
    h.i64(k.node_id).i64(k.num_vertices).i64(k.num_edges);
    hash_spec(h, k.spec);
    h.i64(k.scheme.n1)
        .i64(k.scheme.n2)
        .i64(k.scheme.grid_i)
        .i64(k.scheme.grid_k)
        .i64(k.scheme.inner_steps);
  }
  return h.digest();
}

std::uint64_t plan_signature(const GnnModel& model, std::int64_t num_vertices,
                             const SimConfig& cfg) {
  HashStream h;
  h.i64(num_vertices);
  h.u64(model.kernels.size());
  for (const KernelSpec& s : model.kernels)
    h.i64(static_cast<std::int64_t>(s.kind)).i64(s.out_dim);
  h.i64(cfg.psys)
      .i64(cfg.num_cores)
      .i64(cfg.load_balance_eta)
      .i64(cfg.min_partition)
      .u64(cfg.onchip_tile_bytes)
      .i64(cfg.dense_elem_bytes);
  return h.digest();
}

std::string CompileKey::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%016llx-%016llx-%016llx",
                static_cast<unsigned long long>(model),
                static_cast<unsigned long long>(dataset),
                static_cast<unsigned long long>(config));
  return buf;
}

CompileKey make_compile_key(const GnnModel& model, const Dataset& ds,
                            const SimConfig& cfg) {
  return CompileKey{model_signature(model), dataset_signature(ds),
                    config_signature(cfg)};
}

std::uint64_t runtime_options_signature(const RuntimeOptions& rt) {
  HashStream h;
  h.i64(static_cast<std::int64_t>(rt.strategy))
      .i64(rt.hide_ahm ? 1 : 0)
      .i64(rt.hide_runtime ? 1 : 0)
      .i64(rt.host_threads)
      .i64(rt.detailed_timing ? 1 : 0)
      .i64(rt.collect_timeline ? 1 : 0)
      .i64(rt.functional ? 1 : 0);
  return h.digest();
}

std::string ResultKey::to_string() const {
  char buf[80];
  std::snprintf(buf, sizeof(buf), "%s-%016llx", compile.to_string().c_str(),
                static_cast<unsigned long long>(runtime));
  return buf;
}

ResultKey make_result_key(const CompileKey& compile, const RuntimeOptions& rt) {
  return ResultKey{compile, runtime_options_signature(rt)};
}

}  // namespace dynasparse
