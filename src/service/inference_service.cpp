#include "service/inference_service.hpp"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <stdexcept>

#include "util/parallel.hpp"

namespace dynasparse {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

ServiceOptions default_engine_options() {
  ServiceOptions opts;
  opts.cache_capacity = 4;
  if (const char* env = std::getenv("DYNASPARSE_ENGINE_CACHE")) {
    char* end = nullptr;
    long v = std::strtol(env, &end, 10);
    if (end != env && v >= 0) opts.cache_capacity = static_cast<std::size_t>(v);
  }
  return opts;
}

}  // namespace

ServiceRequest ServiceRequest::own(GnnModel model, Dataset dataset,
                                   EngineOptions options) {
  ServiceRequest req;
  req.model = std::make_shared<const GnnModel>(std::move(model));
  req.dataset = std::make_shared<const Dataset>(std::move(dataset));
  req.options = options;
  return req;
}

ServiceRequest ServiceRequest::borrow(const GnnModel& model, const Dataset& dataset,
                                      const EngineOptions& options) {
  ServiceRequest req;
  req.model = std::shared_ptr<const GnnModel>(&model, [](const GnnModel*) {});
  req.dataset = std::shared_ptr<const Dataset>(&dataset, [](const Dataset*) {});
  req.options = options;
  return req;
}

InferenceService::InferenceService(ServiceOptions options)
    : options_(options), cache_(options.cache_capacity) {}

InferenceService::~InferenceService() {
  queue_.close();
  std::lock_guard<std::mutex> lk(workers_mu_);
  for (std::thread& t : workers_) t.join();
}

InferenceReport InferenceService::execute_request(const ServiceRequest& request) {
  std::shared_ptr<const CompiledProgram> prog = cache_.get_or_compile(
      *request.model, *request.dataset, request.options.config);
  InferenceReport rep = run_compiled(*prog, request.options.runtime);
  rep.dataset_tag = request.dataset->spec.tag;
  return rep;
}

void InferenceService::ensure_workers() {
  int wanted = options_.workers > 0
                   ? options_.workers
                   : std::min(parallel_hardware_threads(), 16);
  wanted = std::max(wanted, 1);
  std::lock_guard<std::mutex> lk(workers_mu_);
  while (static_cast<int>(workers_.size()) < wanted)
    workers_.emplace_back([this] { worker_main(); });
}

void InferenceService::worker_main() {
  Job job;
  while (queue_.pop(job)) {
    {
      std::lock_guard<std::mutex> lk(slots_mu_);
      Slot& slot = slots_.at(job.id);
      slot.state = RequestState::kRunning;
      slot.started = std::chrono::steady_clock::now();
    }
    InferenceReport report;
    std::exception_ptr error;
    try {
      std::optional<ParallelInlineScope> inline_scope;
      if (options_.inline_intra_op) inline_scope.emplace();
      report = execute_request(job.request);
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lk(slots_mu_);
      Slot& slot = slots_.at(job.id);
      slot.finished = std::chrono::steady_clock::now();
      if (error) {
        slot.error = error;
        slot.state = RequestState::kFailed;
      } else {
        slot.report = std::move(report);
        slot.state = RequestState::kDone;
      }
    }
    slots_cv_.notify_all();
  }
}

RequestId InferenceService::submit(ServiceRequest request) {
  if (!request.model || !request.dataset)
    throw std::invalid_argument("ServiceRequest needs a model and a dataset");
  ensure_workers();
  RequestId id;
  {
    std::lock_guard<std::mutex> lk(slots_mu_);
    id = next_id_++;
    Slot& slot = slots_[id];
    slot.state = RequestState::kQueued;
    slot.submitted = std::chrono::steady_clock::now();
  }
  if (!queue_.push(Job{id, std::move(request)})) {
    std::lock_guard<std::mutex> lk(slots_mu_);
    slots_.erase(id);
    throw std::runtime_error("InferenceService is shutting down");
  }
  return id;
}

RequestState InferenceService::state(RequestId id) const {
  std::lock_guard<std::mutex> lk(slots_mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) throw std::invalid_argument("unknown request id");
  return it->second.state;
}

bool InferenceService::done(RequestId id) const {
  RequestState s = state(id);
  return s == RequestState::kDone || s == RequestState::kFailed;
}

InferenceReport InferenceService::wait(RequestId id, RequestTiming* timing) {
  std::unique_lock<std::mutex> lk(slots_mu_);
  if (slots_.find(id) == slots_.end())
    throw std::invalid_argument("unknown request id");
  // Re-find inside the predicate: concurrent submits may rehash the map
  // while this thread sleeps, invalidating any held iterator.
  slots_cv_.wait(lk, [&] {
    auto it = slots_.find(id);
    if (it == slots_.end()) return true;  // consumed by a racing waiter
    RequestState s = it->second.state;
    return s == RequestState::kDone || s == RequestState::kFailed;
  });
  auto it = slots_.find(id);
  if (it == slots_.end())
    throw std::invalid_argument("request id already consumed by another waiter");
  Slot slot = std::move(it->second);
  slots_.erase(it);
  lk.unlock();
  if (timing) {
    timing->queue_ms = ms_between(slot.submitted, slot.started);
    timing->exec_ms = ms_between(slot.started, slot.finished);
    timing->total_ms = ms_between(slot.submitted, slot.finished);
  }
  if (slot.error) std::rethrow_exception(slot.error);
  return std::move(slot.report);
}

std::vector<InferenceReport> InferenceService::run_batch(
    std::vector<ServiceRequest> requests) {
  // Validate the whole batch before enqueueing anything: a mid-batch
  // submit() throw would otherwise abandon already-submitted requests
  // (their slots, and eventually their reports, would leak in slots_).
  for (const ServiceRequest& req : requests)
    if (!req.model || !req.dataset)
      throw std::invalid_argument("ServiceRequest needs a model and a dataset");
  std::vector<RequestId> ids;
  ids.reserve(requests.size());
  try {
    for (ServiceRequest& req : requests) ids.push_back(submit(std::move(req)));
  } catch (...) {
    // Shutdown raced the batch: drain what did get in, then propagate.
    for (RequestId id : ids) {
      try {
        (void)wait(id);
      } catch (...) {
      }
    }
    throw;
  }
  std::vector<InferenceReport> reports(ids.size());
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    try {
      reports[i] = wait(ids[i]);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return reports;
}

InferenceReport InferenceService::run_one(const GnnModel& model, const Dataset& ds,
                                          const EngineOptions& options) {
  return execute_request(ServiceRequest::borrow(model, ds, options));
}

InferenceService& InferenceService::process_default() {
  static InferenceService service(default_engine_options());
  return service;
}

}  // namespace dynasparse
