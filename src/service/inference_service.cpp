#include "service/inference_service.hpp"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <thread>

#include "runtime/runtime_system.hpp"
#include "service/errors.hpp"
#include "util/fault_injection.hpp"
#include "util/parallel.hpp"
#include "util/strict_parse.hpp"

namespace dynasparse {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

ServiceOptions default_engine_options() {
  // Every integer knob parses strictly (parse_env_size logs and keeps the
  // default on a malformed value — never a silent misparse).
  ServiceOptions opts;
  opts.cache_capacity = parse_env_size("DYNASPARSE_ENGINE_CACHE", 4);
  // Result memoization stays off unless explicitly enabled: run_inference
  // callers did not opt into retaining output matrices.
  opts.result_cache_capacity = parse_env_size("DYNASPARSE_RESULT_CACHE", 0);
  // Byte-size knobs share one suffix-aware parser (parse_size_bytes —
  // "512m", "2g", strict about trailing garbage, overflow-checked). The
  // legacy MB knob keeps its bare unit: a suffixless "256" still means
  // 256 MiB; the budget knob's bare unit is bytes.
  opts.result_cache_bytes = parse_env_size_bytes(
      "DYNASPARSE_RESULT_CACHE_MB", opts.result_cache_bytes, std::size_t{1} << 20);
  opts.memory_budget_bytes =
      parse_env_size_bytes("DYNASPARSE_MEM_BUDGET", opts.memory_budget_bytes);
  opts.tile_pool_capacity =
      parse_env_size("DYNASPARSE_TILE_POOL", opts.tile_pool_capacity);
  opts.plan_store_capacity = parse_env_size("DYNASPARSE_PLAN_STORE", 0);
  if (const char* dir = env_text("DYNASPARSE_PLAN_STORE_DIR"))
    opts.plan_store_dir = dir;
  // Deadline knob for submitted requests; run_inference routes through
  // run_one, which is never deadline-bounded.
  opts.default_deadline_ms = parse_env_duration_ms("DYNASPARSE_DEADLINE_MS", 0);
  // Continuous batching (off by default). The window is a bare integer in
  // MICROSECONDS — batching windows live well under a millisecond, so the
  // duration parser's ms unit would be the wrong default here.
  opts.batch_window_us = static_cast<std::int64_t>(
      parse_env_size("DYNASPARSE_BATCH_WINDOW_US", 0));
  opts.max_batch_size = parse_env_size("DYNASPARSE_BATCH_MAX", 0);
  return opts;
}

/// The PlanStore for `opts`, or null when plan reuse is disabled. Plans
/// are small (kilobytes against the caches' megabytes), so their tier
/// weight is a fixed 32 MiB rather than a knob.
std::shared_ptr<PlanStore> make_plan_store(const ServiceOptions& opts,
                                           MemoryBudget& budget) {
  if (opts.plan_store_capacity == 0) return nullptr;
  PlanStoreOptions po;
  po.capacity = opts.plan_store_capacity;
  po.dir = opts.plan_store_dir;
  po.tier = budget.register_tier("plans", static_cast<double>(32u << 20));
  return std::make_shared<PlanStore>(std::move(po));
}

/// Reject nonsense, resolve defaults: options().workers always reports
/// the count the service will actually run — the old silent
/// min(hardware, 16) cap is now visible to callers.
ServiceOptions validate_and_resolve(ServiceOptions o) {
  if (o.workers < 0)
    throw std::invalid_argument("ServiceOptions::workers must be >= 0");
  if (o.intra_op_threads < 0)
    throw std::invalid_argument("ServiceOptions::intra_op_threads must be >= 0");
  if (o.default_deadline_ms < 0)
    throw std::invalid_argument("ServiceOptions::default_deadline_ms must be >= 0");
  if (o.batch_window_us < 0)
    throw std::invalid_argument("ServiceOptions::batch_window_us must be >= 0");
  if (o.workers == 0) o.workers = std::min(parallel_hardware_threads(), 16);
  o.workers = std::max(o.workers, 1);
  return o;
}

/// Tighter of two caps where 0 means "uncapped".
int combine_caps(int a, int b) {
  if (a <= 0) return b;
  if (b <= 0) return a;
  return std::min(a, b);
}

/// The relative deadline a request runs under: its own, else the service
/// default, else none. Negative request values are an input error.
std::int64_t effective_deadline_ms(const ServiceOptions& opts,
                                   const ServiceRequest& req) {
  if (req.deadline_ms < 0)
    throw std::invalid_argument("ServiceRequest::deadline_ms must be >= 0");
  return req.deadline_ms > 0 ? req.deadline_ms : opts.default_deadline_ms;
}

}  // namespace

const char* admission_policy_name(AdmissionPolicy p) {
  switch (p) {
    case AdmissionPolicy::kBlock: return "block";
    case AdmissionPolicy::kReject: return "reject";
    case AdmissionPolicy::kShedOldest: return "shed";
  }
  return "?";
}

AdmissionPolicy parse_admission_policy(const std::string& s) {
  if (s == "block") return AdmissionPolicy::kBlock;
  if (s == "reject") return AdmissionPolicy::kReject;
  if (s == "shed" || s == "shed-oldest") return AdmissionPolicy::kShedOldest;
  // Bad configuration, not runtime state: the caller passed an
  // unusable option value.
  throw std::invalid_argument("unknown admission policy: " + s +
                              " (expected block|reject|shed)");
}

ServiceRequest ServiceRequest::own(GnnModel model, Dataset dataset,
                                   EngineOptions options) {
  ServiceRequest req;
  req.model = std::make_shared<const GnnModel>(std::move(model));
  req.dataset = std::make_shared<const Dataset>(std::move(dataset));
  req.options = options;
  return req;
}

ServiceRequest ServiceRequest::borrow(const GnnModel& model, const Dataset& dataset,
                                      const EngineOptions& options) {
  ServiceRequest req;
  req.model = std::shared_ptr<const GnnModel>(&model, [](const GnnModel*) {});
  req.dataset = std::shared_ptr<const Dataset>(&dataset, [](const Dataset*) {});
  req.options = options;
  return req;
}

InferenceService::InferenceService(ServiceOptions options)
    : options_(validate_and_resolve(options)),
      budget_(std::make_shared<MemoryBudget>(options_.memory_budget_bytes)),
      // Tier registration order (pool, plans, compile, result) is the
      // reverse of shrink order — see the member-declaration comment.
      // Under a budget (> 0) the private per-tier byte ceilings switch
      // off and the byte knobs act as tier weights instead.
      tile_pool_(std::make_shared<TilePool>(
          options_.tile_pool_capacity,
          budget_->register_tier(
              "tile_pool", static_cast<double>(options_.compilation_cache_bytes)))),
      plan_store_(make_plan_store(options_, *budget_)),
      cache_(options_.cache_capacity, plan_store_,
             options_.memory_budget_bytes > 0 ? 0 : options_.compilation_cache_bytes,
             budget_->register_tier(
                 "compile", static_cast<double>(options_.compilation_cache_bytes)),
             tile_pool_),
      result_cache_(options_.result_cache_capacity,
                    options_.memory_budget_bytes > 0 ? 0 : options_.result_cache_bytes,
                    budget_->register_tier(
                        "result", static_cast<double>(options_.result_cache_bytes))),
      queue_(options_.max_queue_depth),
      batcher_(queue_, BatchPolicy{options_.batch_window_us, options_.max_batch_size},
               [](const Job& job) {
                 return make_batch_key(*job.request.model, *job.request.dataset,
                                       job.request.options.config);
               }) {
  // Shrinkers bind after the caches exist; they capture raw pointers to
  // members of this object, which is safe because the budget never calls
  // them spontaneously — only from rebalance(), which only runs from
  // inside a live cache's charge path.
  budget_->bind_shrinker("tile_pool",
                         [p = tile_pool_.get()](std::size_t t) { p->shrink_to_bytes(t); });
  if (plan_store_)
    budget_->bind_shrinker("plans", [p = plan_store_.get()](std::size_t t) {
      p->shrink_to_bytes(t);
    });
  budget_->bind_shrinker("compile",
                         [this](std::size_t t) { cache_.shrink_to_bytes(t); });
  budget_->bind_shrinker("result",
                         [this](std::size_t t) { result_cache_.shrink_to_bytes(t); });
  // Requests executed (or joined) by this service's destructor use the
  // shared pool; constructing the pool first pins its static lifetime
  // beyond this object's.
  parallel_ensure_pool();
  // Arm the process-global chaos injector when this service carries a
  // spec (a malformed spec throws std::invalid_argument here, before any
  // request can run under a half-armed configuration). An empty spec
  // leaves whatever DYNASPARSE_FAULT_SPEC armed untouched.
  if (!options_.fault_spec.empty())
    FaultInjector::global().arm(parse_fault_spec(options_.fault_spec));
}

InferenceService::~InferenceService() { shutdown(); }

void InferenceService::shutdown() {
  // Phase 1: stop accepting and abort. A submit() past this point throws
  // and leaves no slot behind. Every still-queued slot fails now with
  // CancelledError (its worker pop will skip the stale job), and every
  // running request's token is cancelled so it aborts at the next
  // cooperative check — the service goes down in bounded time instead of
  // draining a queue nobody will read.
  {
    std::lock_guard<OrderedMutex> lk(slots_mu_);
    accepting_ = false;
    for (auto& [id, slot] : slots_) {
      (void)id;
      if (slot.state == RequestState::kQueued) {
        if (fail_slot_locked(slot,
                             std::make_exception_ptr(CancelledError(
                                 "request cancelled: InferenceService "
                                 "shutting down")))) {
          ++robust_.cancelled;
          slot.cancel_counted = true;
        }
      } else if (slot.state == RequestState::kRunning) {
        slot.source.cancel();
      }
    }
    slots_cv_.notify_all();
  }
  queue_.close();
  // Phase 2: join. Workers pop (and skip) every remaining stale item
  // before exiting; a running request aborts at its next check or, if it
  // was already past the last one, completes normally.
  {
    std::lock_guard<OrderedMutex> lk(workers_mu_);
    for (std::thread& t : workers_) t.join();
    workers_.clear();
  }
  // Phase 3: no waiter outlives the service. After the join every slot
  // must be terminal (that is the invariant the phases above establish);
  // if one ever is not, fail it rather than strand its waiter, then hold
  // the destructor until every in-flight wait() has consumed its slot.
  {
    std::unique_lock<OrderedMutex> lk(slots_mu_);
    for (auto& [id, slot] : slots_) {
      (void)id;
      assert(slot.state != RequestState::kRunning &&
             "worker exited mid-request");
      if (slot.state == RequestState::kQueued ||
          slot.state == RequestState::kRunning) {
        slot.state = RequestState::kFailed;
        slot.error = std::make_exception_ptr(ShutdownError(
            "InferenceService destroyed before the request ran"));
        slot.finished = std::chrono::steady_clock::now();
        // Never picked up by a worker: pin started so a wait(id, &timing)
        // on this failed slot reports queue_ms = the full lifetime and
        // exec_ms = 0 instead of deltas against an epoch timestamp.
        slot.started = slot.finished;
      }
    }
    slots_cv_.notify_all();
    slots_cv_.wait(lk, [&] { return waiters_ == 0 && inflight_submits_ == 0; });
  }
}

InferenceReport InferenceService::execute_request(const ServiceRequest& request,
                                                  const CancellationToken& token) {
  // Per-request intra-op budget: the service-wide knob and the request's
  // own host_threads compose (tighter wins; 0 = uncapped). The scope
  // covers compilation too — the partition planner's parallel loops take
  // no thread argument — and clamps the runtime hot loops without turning
  // the cap into an explicit thread request (which would oversubscribe
  // the pool whenever the cap exceeds the hardware width).
  ParallelMaxThreadsScope budget(
      combine_caps(options_.intra_op_threads, request.options.runtime.host_threads));
  token.check();
  if (!result_cache_.enabled()) {
    std::shared_ptr<const CompiledProgram> prog = cache_.get_or_compile(
        *request.model, *request.dataset, request.options.config, token);
    token.check();  // compile/execute boundary
    InferenceReport rep = run_compiled(*prog, request.options.runtime, token);
    rep.dataset_tag = request.dataset->spec.tag;
    return rep;
  }
  // Memoized path: hash the compile inputs once (the compilation cache
  // reuses the key below instead of rehashing) and extend it with the
  // runtime-options signature. A hit returns the stored report without
  // compiling or executing — sound because equal ResultKeys imply
  // bit-identical deterministic report fields (determinism contract).
  // The factory runs under THIS request's token; if it aborts, joined
  // same-key requests retry under their own tokens (keyed_future_cache
  // hand-off) instead of inheriting the abort.
  const CompileKey ckey = make_compile_key(*request.model, *request.dataset,
                                           request.options.config);
  return result_cache_.get_or_run(
      make_result_key(ckey, request.options.runtime), [&] {
        std::shared_ptr<const CompiledProgram> prog = cache_.get_or_compile(
            ckey, *request.model, *request.dataset, request.options.config,
            token);
        token.check();  // compile/execute boundary
        InferenceReport rep = run_compiled(*prog, request.options.runtime, token);
        rep.dataset_tag = request.dataset->spec.tag;
        return rep;
      });
}

void InferenceService::ensure_workers() {
  std::lock_guard<OrderedMutex> lk(workers_mu_);
  {
    std::lock_guard<OrderedMutex> slk(slots_mu_);
    if (!accepting_) return;  // submit() will throw at slot creation
  }
  while (static_cast<int>(workers_.size()) < options_.workers)
    workers_.emplace_back([this] { worker_main(); });
}

void InferenceService::worker_main() {
  std::vector<Job> jobs;
  while (batcher_.next_batch(jobs)) process_batch(jobs);
}

void InferenceService::process_batch(std::vector<Job>& jobs) {
  // Chaos site: stall between dequeue and the deadline recheck — the
  // window where a queued request goes stale. One draw per batch: with
  // batching off every batch is a singleton, so this is exactly the
  // pre-batching per-job behavior.
  if (fault_point(kFaultQueueDelay))
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  std::vector<RunnableMember> runnable;
  bool notify = false;
  {
    std::lock_guard<OrderedMutex> lk(slots_mu_);
    for (Job& job : jobs) {
      auto it = slots_.find(job.id);
      // Stale job: cancel()/shutdown failed the slot while it sat in the
      // queue (and a waiter may even have consumed it already). Skip —
      // a stale member drops out here without holding up its batchmates.
      if (it == slots_.end() || it->second.state != RequestState::kQueued)
        continue;
      Slot& slot = it->second;
      CancellationToken token = slot.source.token();
      // Dequeue recheck: an expired request must never reach the
      // compiler — fail it here, before any work.
      if (token.expired()) {
        if (fail_slot_locked(slot,
                             std::make_exception_ptr(DeadlineExceededError(
                                 "request deadline expired while queued"))))
          ++robust_.expired_in_queue;
        notify = true;
        continue;
      }
      slot.state = RequestState::kRunning;
      slot.started = std::chrono::steady_clock::now();
      runnable.push_back(RunnableMember{&job, std::move(token)});
    }
    // Formation stats count runnable members only, so mean occupancy
    // measures work actually executed together, not queue bookkeeping.
    // Unbatched mode records nothing — there are no "batches" to speak
    // of and the counters stay zero as documented.
    if (batcher_.policy().enabled() && !runnable.empty()) {
      ++batch_.batches_formed;
      batch_.batched_requests += static_cast<std::int64_t>(runnable.size());
      if (runnable.size() >= 2) {
        ++batch_.fused_batches;
        batch_.fused_requests += static_cast<std::int64_t>(runnable.size());
      }
    }
  }
  if (notify) slots_cv_.notify_all();
  if (runnable.empty()) return;
  if (runnable.size() == 1) {
    // Degenerate batch: run the pre-batching solo path, bit for bit.
    run_job(*runnable.front().job, runnable.front().token);
    return;
  }
  run_fused(runnable);
}

void InferenceService::run_job(Job& job, const CancellationToken& token) {
  InferenceReport report;
  std::exception_ptr raw;
  try {
    report = execute_request(job.request, token);
  } catch (...) {
    raw = std::current_exception();
  }
  publish_result(job.id, std::move(report), std::move(raw), token);
}

void InferenceService::run_fused(std::vector<RunnableMember>& members) {
  // One intra-op scope covers the whole batch. A member's own
  // host_threads cap cannot be honored for the *fused* sweeps (one loop
  // serves everyone), but execute_batch still applies the tightest
  // member cap there and each member's pricing loops run under its own
  // cap — and thread counts never affect results, only wall clock.
  ParallelMaxThreadsScope scope(options_.intra_op_threads);
  const std::size_t n = members.size();
  struct Prep {
    std::shared_ptr<const CompiledProgram> prog;  // compiled, to execute
    std::shared_ptr<const InferenceReport> memo;  // result-cache peek hit
    std::optional<ResultKey> rkey;                // set when memoizing
    std::exception_ptr error;                     // member-isolated failure
  };
  // Per-member compile / memoization peek, failures isolated: a member
  // whose compile throws (or whose token fired) drops out with its own
  // error; its batchmates proceed untouched.
  std::vector<Prep> preps(n);
  for (std::size_t i = 0; i < n; ++i) {
    const ServiceRequest& req = members[i].job->request;
    try {
      members[i].token.check();
      if (result_cache_.enabled()) {
        const CompileKey ckey =
            make_compile_key(*req.model, *req.dataset, req.options.config);
        preps[i].rkey = make_result_key(ckey, req.options.runtime);
        // A ready memoized report short-circuits this member out of the
        // fused execution entirely (same outcome as the solo hit path).
        if ((preps[i].memo = result_cache_.peek(*preps[i].rkey))) continue;
        preps[i].prog = cache_.get_or_compile(ckey, *req.model, *req.dataset,
                                              req.options.config,
                                              members[i].token);
      } else {
        preps[i].prog =
            cache_.get_or_compile(*req.model, *req.dataset,
                                  req.options.config, members[i].token);
      }
      members[i].token.check();  // compile/execute boundary (solo parity)
    } catch (...) {
      preps[i].error = std::current_exception();
    }
  }
  // Fused multi-feature execution over the members that still need it.
  std::vector<std::size_t> exec_member;  // members index per batch entry
  std::vector<BatchMember> batch;
  for (std::size_t i = 0; i < n; ++i) {
    if (preps[i].error || preps[i].memo) continue;
    exec_member.push_back(i);
    batch.push_back(BatchMember{preps[i].prog.get(),
                                members[i].job->request.options.runtime,
                                members[i].token});
  }
  BatchExecution bx;
  if (!batch.empty()) bx = execute_batch(batch);
  if (bx.fused_kernels > 0) {
    std::lock_guard<OrderedMutex> lk(slots_mu_);
    batch_.fused_kernels += bx.fused_kernels;
  }
  std::vector<std::ptrdiff_t> batch_index(n, -1);
  for (std::size_t j = 0; j < exec_member.size(); ++j) {
    batch_index[exec_member[j]] = static_cast<std::ptrdiff_t>(j);
    if (bx.members[j].error)
      preps[exec_member[j]].error = std::move(bx.members[j].error);
  }
  // Publish every member in arrival order through the same terminal-state
  // path the solo worker uses.
  for (std::size_t i = 0; i < n; ++i) {
    const ServiceRequest& req = members[i].job->request;
    InferenceReport rep;
    if (!preps[i].error) {
      try {
        if (preps[i].memo) {
          rep = *preps[i].memo;
        } else {
          rep = assemble_compiled_report(
              *preps[i].prog, req.options.runtime,
              std::move(bx.members[static_cast<std::size_t>(batch_index[i])]
                            .result));
          rep.dataset_tag = req.dataset->spec.tag;
          // Memoize the fused result exactly as a solo run would have;
          // if a racing solo run of the same key got there first, the
          // stored report wins — bit-identical either way.
          if (preps[i].rkey)
            rep = result_cache_.get_or_run(*preps[i].rkey,
                                           [&rep] { return rep; });
        }
      } catch (...) {
        preps[i].error = std::current_exception();
      }
    }
    publish_result(members[i].job->id, std::move(rep),
                   std::move(preps[i].error), members[i].token);
  }
}

void InferenceService::publish_result(RequestId id, InferenceReport&& report,
                                      std::exception_ptr raw,
                                      const CancellationToken& token) {
  // Classify the outcome outside the lock: cooperative aborts keep
  // their typed error; everything else is wrapped as ExecutionError
  // (message preserved) so "what wait() can throw" is a closed set.
  std::exception_ptr error;
  enum class Outcome { kDone, kCancelled, kExpired, kFailed } outcome = Outcome::kDone;
  if (raw) {
    try {
      std::rethrow_exception(raw);
    } catch (const CancelledError&) {
      outcome = Outcome::kCancelled;
      error = std::current_exception();
    } catch (const DeadlineExceededError&) {
      outcome = Outcome::kExpired;
      error = std::current_exception();
    } catch (const std::exception& e) {
      outcome = Outcome::kFailed;
      error = std::make_exception_ptr(
          ExecutionError(std::string("request execution failed: ") + e.what()));
    } catch (...) {
      outcome = Outcome::kFailed;
      error = std::make_exception_ptr(
          ExecutionError("request execution failed: unknown exception"));
    }
  }
  {
    std::lock_guard<OrderedMutex> lk(slots_mu_);
    Slot& slot = slots_.at(id);  // kRunning slots are never consumed
    slot.finished = std::chrono::steady_clock::now();
    if (error) {
      // Move — not copy — so this worker drops its reference inside the
      // lock: the final release of the exception (and its message
      // string) then happens on whichever thread consumes the slot,
      // after it read the error, instead of racing that read from here.
      slot.error = std::move(error);
      slot.state = RequestState::kFailed;
      if (outcome == Outcome::kCancelled) ++robust_.cancelled;
      else if (outcome == Outcome::kExpired) ++robust_.expired_running;
      else ++robust_.execution_failures;
    } else if (token.cancelled()) {
      // cancel()/shutdown fired the token while this slot was kRunning,
      // and cancel() returned true on that observation — a promise that
      // the request resolves as cancelled even when execution slipped
      // past its last checkpoint and produced a result. Both sides hold
      // slots_mu_, so the promise is exact: a cancel() that loses this
      // race instead finds the slot terminal and returns false.
      slot.error = std::make_exception_ptr(
          CancelledError("request cancelled (completed result discarded)"));
      slot.state = RequestState::kFailed;
      ++robust_.cancelled;
    } else {
      slot.report = std::move(report);
      slot.state = RequestState::kDone;
    }
  }
  slots_cv_.notify_all();
}

RequestId InferenceService::create_slot(bool throw_on_closed,
                                        std::int64_t deadline_ms) {
  std::lock_guard<OrderedMutex> lk(slots_mu_);
  if (!accepting_) {
    if (throw_on_closed)
      throw ShutdownError("InferenceService is shutting down");
    return 0;
  }
  RequestId id = next_id_++;
  Slot& slot = slots_[id];
  slot.state = RequestState::kQueued;
  slot.submitted = std::chrono::steady_clock::now();
  // Admission-time deadline anchor: relative deadlines are measured from
  // this point, so queue time counts against them.
  if (deadline_ms > 0)
    slot.source = CancellationSource(slot.submitted +
                                     std::chrono::milliseconds(deadline_ms));
  // From here until the push resolves, shutdown() must not complete: it
  // drains inflight_submits_ to zero in its final phase, so the
  // queue/mutexes the submit path still touches outlive it.
  ++inflight_submits_;
  return id;
}

bool InferenceService::fail_slot_locked(Slot& slot, std::exception_ptr error) {
  // Only a still-queued slot can be failed by admission control: a racing
  // shutdown may already have failed it (phase 3), and that resolution
  // must not be overwritten (or double-counted in the stats).
  if (slot.state != RequestState::kQueued) return false;
  slot.state = RequestState::kFailed;
  slot.error = std::move(error);
  slot.finished = std::chrono::steady_clock::now();
  slot.started = slot.finished;  // never picked up; queue_ms = lifetime
  return true;
}

void InferenceService::erase_unobserved_slot_locked(RequestId id) {
  auto it = slots_.find(id);
  if (it == slots_.end()) return;
  if (it->second.cancel_counted) --robust_.cancelled;
  slots_.erase(it);
}

RequestId InferenceService::submit(ServiceRequest request) {
  if (!request.model || !request.dataset)
    throw std::invalid_argument("ServiceRequest needs a model and a dataset");
  const std::int64_t deadline_ms = effective_deadline_ms(options_, request);
  const RequestId id = create_slot(/*throw_on_closed=*/true, deadline_ms);
  // The queue can still close between slot creation and this push
  // (shutdown closes it right after flipping accepting_; a push blocked
  // on a full queue is woken by the close). The push then refuses the
  // item; erase the slot and report shutdown instead of returning an id
  // whose request will never run — the bug this guards against left the
  // slot kQueued forever and deadlocked wait().
  bool pushed = false;
  bool rejected_full = false;  // kReject policy refused a full queue
  std::vector<Job> shed;
  try {
    ensure_workers();
    if (options_.max_queue_depth == 0 ||
        options_.admission == AdmissionPolicy::kBlock) {
      pushed = queue_.push(Job{id, std::move(request)});
    } else if (options_.admission == AdmissionPolicy::kReject) {
      auto r = queue_.try_push(Job{id, std::move(request)});
      pushed = r == BlockingQueue<Job>::PushResult::kOk;
      rejected_full = r == BlockingQueue<Job>::PushResult::kFull;
    } else {  // kShedOldest
      pushed = queue_.push_shed_oldest(Job{id, std::move(request)}, shed);
    }
  } catch (...) {
    // Thread spawn or enqueue allocation failed: resolve the inflight
    // accounting and drop the slot, or shutdown() would wait on
    // inflight_submits_ forever (the id was never returned, so no waiter
    // can exist).
    {
      std::lock_guard<OrderedMutex> lk(slots_mu_);
      --inflight_submits_;
      erase_unobserved_slot_locked(id);
    }
    slots_cv_.notify_all();
    throw;
  }
  {
    std::lock_guard<OrderedMutex> lk(slots_mu_);
    --inflight_submits_;
    if (pushed) ++admission_.accepted;
    // Shed jobs were removed from the queue atomically with the push, so
    // no worker can ever pop them; fail their slots now (unless shutdown
    // already did, or a waiter consumed the shutdown-failed slot).
    for (const Job& job : shed) {
      auto it = slots_.find(job.id);
      if (it == slots_.end()) continue;
      if (fail_slot_locked(it->second,
                           std::make_exception_ptr(AdmissionRejectedError(
                               "request shed by admission control "
                               "(queue full, policy shed-oldest)"))))
        ++admission_.shed;
    }
    if (!pushed) {
      if (rejected_full) {
        // Failed-fast slot: submit still returns the id; wait(id)
        // rethrows the admission error without the request executing.
        // The id has not been returned to anyone yet, so no waiter can
        // have consumed the slot — if shutdown's phase 3 failed it first
        // (also unobserved, for the same reason), overwrite that with the
        // admission error: a full-queue reject always resolves as
        // AdmissionRejectedError and always counts as rejected,
        // regardless of how the shutdown race interleaves.
        Slot& slot = slots_.at(id);
        if (slot.cancel_counted) {  // shutdown counted a cancel we overwrite
          --robust_.cancelled;
          slot.cancel_counted = false;
        }
        slot.state = RequestState::kFailed;
        slot.error = std::make_exception_ptr(AdmissionRejectedError(
            "request rejected by admission control (queue full, policy "
            "reject)"));
        slot.finished = std::chrono::steady_clock::now();
        slot.started = slot.finished;
        ++admission_.rejected;
      } else {
        // Queue closed under us: shutdown race.
        erase_unobserved_slot_locked(id);
      }
    }
  }
  slots_cv_.notify_all();  // shutdown may be waiting on the inflight drain
  if (!pushed && !rejected_full)
    throw ShutdownError("InferenceService is shutting down");
  return id;
}

std::optional<RequestId> InferenceService::try_submit(ServiceRequest request) {
  if (!request.model || !request.dataset)
    throw std::invalid_argument("ServiceRequest needs a model and a dataset");
  const std::int64_t deadline_ms = effective_deadline_ms(options_, request);
  const RequestId id = create_slot(/*throw_on_closed=*/false, deadline_ms);
  if (id == 0) return std::nullopt;  // shutting down; nothing to clean up
  BlockingQueue<Job>::PushResult r;
  try {
    ensure_workers();
    r = queue_.try_push(Job{id, std::move(request)});
  } catch (...) {
    // Same cleanup as submit(): never leave inflight_submits_ elevated or
    // a kQueued slot behind on a thread-spawn/allocation failure.
    {
      std::lock_guard<OrderedMutex> lk(slots_mu_);
      --inflight_submits_;
      erase_unobserved_slot_locked(id);
    }
    slots_cv_.notify_all();
    throw;
  }
  const bool pushed = r == BlockingQueue<Job>::PushResult::kOk;
  {
    std::lock_guard<OrderedMutex> lk(slots_mu_);
    --inflight_submits_;
    if (pushed) {
      ++admission_.accepted;
    } else {
      if (r == BlockingQueue<Job>::PushResult::kFull) ++admission_.rejected;
      erase_unobserved_slot_locked(id);
    }
  }
  slots_cv_.notify_all();
  if (!pushed) return std::nullopt;
  return id;
}

AdmissionStats InferenceService::admission_stats() const {
  std::lock_guard<OrderedMutex> lk(slots_mu_);
  return admission_;
}

BatchStats InferenceService::batch_stats() const {
  std::lock_guard<OrderedMutex> lk(slots_mu_);
  return batch_;
}

RobustnessStats InferenceService::robustness_stats() const {
  std::lock_guard<OrderedMutex> lk(slots_mu_);
  return robust_;
}

bool InferenceService::cancel(RequestId id) {
  bool notify = false;
  bool accepted = false;
  {
    std::lock_guard<OrderedMutex> lk(slots_mu_);
    auto it = slots_.find(id);
    if (it == slots_.end()) throw std::invalid_argument("unknown request id");
    Slot& slot = it->second;
    if (slot.state == RequestState::kDone || slot.state == RequestState::kFailed)
      return false;  // already terminal: cancellation never un-completes
    slot.source.cancel();
    accepted = true;
    if (slot.state == RequestState::kQueued) {
      // Fail the slot now so the owner's wait() resolves promptly —
      // otherwise it would sit until a worker popped the stale job. The
      // worker that eventually pops it finds the slot terminal and skips.
      if (fail_slot_locked(slot, std::make_exception_ptr(
                                     CancelledError("request cancelled")))) {
        ++robust_.cancelled;
        slot.cancel_counted = true;
      }
      notify = true;
    }
    // kRunning: the token is signalled; the worker aborts at the next
    // cooperative check — or, if execution finishes first, discards the
    // result at publish time (both under slots_mu_, so returning true
    // here guarantees the request resolves as cancelled).
  }
  if (notify) slots_cv_.notify_all();
  return accepted;
}

RequestState InferenceService::state(RequestId id) const {
  std::lock_guard<OrderedMutex> lk(slots_mu_);
  auto it = slots_.find(id);
  if (it == slots_.end()) throw std::invalid_argument("unknown request id");
  return it->second.state;
}

bool InferenceService::done(RequestId id) const {
  RequestState s = state(id);
  return s == RequestState::kDone || s == RequestState::kFailed;
}

InferenceReport InferenceService::wait(RequestId id, RequestTiming* timing) {
  std::unique_lock<OrderedMutex> lk(slots_mu_);
  if (slots_.find(id) == slots_.end())
    throw std::invalid_argument("unknown request id");
  ++waiters_;
  // Re-find inside the predicate: concurrent submits may rehash the map
  // while this thread sleeps, invalidating any held iterator.
  slots_cv_.wait(lk, [&] {
    auto it = slots_.find(id);
    if (it == slots_.end()) return true;  // consumed by a racing waiter
    RequestState s = it->second.state;
    return s == RequestState::kDone || s == RequestState::kFailed;
  });
  --waiters_;
  auto it = slots_.find(id);
  if (it == slots_.end()) {
    // The destructor may be blocked on waiters_ == 0.
    slots_cv_.notify_all();
    lk.unlock();
    throw std::invalid_argument("request id already consumed by another waiter");
  }
  Slot slot = std::move(it->second);
  slots_.erase(it);
  slots_cv_.notify_all();
  lk.unlock();
  if (timing) {
    timing->queue_ms = ms_between(slot.submitted, slot.started);
    timing->exec_ms = ms_between(slot.started, slot.finished);
    timing->total_ms = ms_between(slot.submitted, slot.finished);
  }
  if (slot.error) std::rethrow_exception(slot.error);
  return std::move(slot.report);
}

std::vector<InferenceReport> InferenceService::run_batch(
    std::vector<ServiceRequest> requests) {
  // Validate the whole batch before enqueueing anything: a mid-batch
  // submit() throw would otherwise abandon already-submitted requests
  // (their slots, and eventually their reports, would leak in slots_).
  for (const ServiceRequest& req : requests)
    if (!req.model || !req.dataset)
      throw std::invalid_argument("ServiceRequest needs a model and a dataset");
  std::vector<RequestId> ids;
  ids.reserve(requests.size());
  try {
    for (ServiceRequest& req : requests) ids.push_back(submit(std::move(req)));
  } catch (...) {
    // Shutdown raced the batch: drain what did get in, then propagate.
    for (RequestId id : ids) {
      try {
        (void)wait(id);
      } catch (...) {
      }
    }
    throw;
  }
  std::vector<InferenceReport> reports(ids.size());
  std::exception_ptr first_error;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    try {
      reports[i] = wait(ids[i]);
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return reports;
}

InferenceReport InferenceService::run_one(const GnnModel& model, const Dataset& ds,
                                          const EngineOptions& options) {
  return execute_request(ServiceRequest::borrow(model, ds, options));
}

InferenceService& InferenceService::process_default() {
  static InferenceService service(default_engine_options());
  return service;
}

}  // namespace dynasparse
