#include "service/compilation_cache.hpp"

namespace dynasparse {

CompiledProgram CompilationCache::compile_miss(const GnnModel& model,
                                               const Dataset& ds,
                                               const SimConfig& cfg,
                                               const CancellationToken& token,
                                               std::uint64_t dataset_sig) const {
  OperandSource operands;
  operands.pool = pool_.get();
  operands.dataset_sig = dataset_sig;
  return plans_ ? plans_->compile_seeded(model, ds, cfg, token, operands)
                : compile(model, ds, cfg, token, operands);
}

std::shared_ptr<const CompiledProgram> CompilationCache::get_or_compile(
    const GnnModel& model, const Dataset& ds, const SimConfig& cfg,
    const CancellationToken& token) {
  if (impl_.max_entries() == 0) {
    // No storage, no key needed: skip the content hash (it walks every
    // weight bit and graph index) and go straight to the compiler. The
    // dummy key is never stored. With a pool attached the dataset hash
    // IS needed (it keys the pool) — still cheaper than the full
    // CompileKey, which additionally walks every weight bit.
    const std::uint64_t ds_sig =
        pool_ && pool_->max_entries() > 0 ? dataset_signature(ds) : 0;
    return impl_.get_or_make(CompileKey{}, [&] {
      return std::make_shared<const CompiledProgram>(
          compile_miss(model, ds, cfg, token, ds_sig));
    });
  }
  return get_or_compile(make_compile_key(model, ds, cfg),  // hash outside the lock
                        model, ds, cfg, token);
}

std::shared_ptr<const CompiledProgram> CompilationCache::get_or_compile(
    const CompileKey& key, const GnnModel& model, const Dataset& ds,
    const SimConfig& cfg, const CancellationToken& token) {
  return impl_.get_or_make(key, [&] {
    return std::make_shared<const CompiledProgram>(
        compile_miss(model, ds, cfg, token, key.dataset));
  });
}

CacheStats CompilationCache::stats() const {
  const KeyedCacheStats s = impl_.stats();
  CacheStats out;
  out.hits = s.hits;
  out.misses = s.misses;
  out.evictions = s.evictions;
  out.inflight_joins = s.inflight_joins;
  out.entries = s.entries;
  out.bytes = s.bytes;
  return out;
}

}  // namespace dynasparse
