#include "service/compilation_cache.hpp"

namespace dynasparse {

std::shared_ptr<const CompiledProgram> CompilationCache::get_or_compile(
    const GnnModel& model, const Dataset& ds, const SimConfig& cfg) {
  if (capacity_ == 0) {
    // No storage, no key needed: skip the content hash (it walks every
    // weight bit and graph index) and go straight to the compiler.
    {
      std::lock_guard<std::mutex> lk(mu_);
      ++stats_.misses;
    }
    return std::make_shared<const CompiledProgram>(compile(model, ds, cfg));
  }

  const CompileKey key = make_compile_key(model, ds, cfg);  // hash outside the lock

  std::promise<std::shared_ptr<const CompiledProgram>> promise;
  ProgramFuture fut;
  bool compile_here = false;
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      if (!it->second.ready) ++stats_.inflight_joins;
      touch(it->second);
      fut = it->second.program;
    } else {
      ++stats_.misses;
      compile_here = true;
      Entry e;
      e.program = promise.get_future().share();
      lru_.push_back(key);
      e.lru_pos = std::prev(lru_.end());
      fut = e.program;
      entries_.emplace(key, std::move(e));
      ++stats_.entries;
    }
  }

  if (!compile_here) return fut.get();  // rethrows if the compiler thread failed

  try {
    auto prog = std::make_shared<const CompiledProgram>(compile(model, ds, cfg));
    promise.set_value(prog);
    std::lock_guard<std::mutex> lk(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) it->second.ready = true;
    evict_excess();
    return prog;
  } catch (...) {
    // Waiters blocked on the future observe the same exception; the entry
    // is erased so the next request for this key retries the compile.
    promise.set_exception(std::current_exception());
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        lru_.erase(it->second.lru_pos);
        entries_.erase(it);
        --stats_.entries;
      }
    }
    throw;
  }
}

std::shared_ptr<const CompiledProgram> CompilationCache::peek(
    const CompileKey& key) const {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end() || !it->second.ready) return nullptr;
  return it->second.program.get();
}

CacheStats CompilationCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  return stats_;
}

void CompilationCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.ready) {
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
      --stats_.entries;
    } else {
      ++it;
    }
  }
}

void CompilationCache::touch(Entry& e) {
  lru_.splice(lru_.end(), lru_, e.lru_pos);
  e.lru_pos = std::prev(lru_.end());
}

void CompilationCache::evict_excess() {
  // Evict ready entries from the LRU front; in-flight compiles are never
  // evicted (their requesters hold the future), so the cache may briefly
  // exceed capacity while more than `capacity_` keys compile at once.
  auto pos = lru_.begin();
  while (entries_.size() > capacity_ && pos != lru_.end()) {
    auto it = entries_.find(*pos);
    if (it != entries_.end() && it->second.ready) {
      pos = lru_.erase(pos);
      entries_.erase(it);
      --stats_.entries;
      ++stats_.evictions;
    } else {
      ++pos;
    }
  }
}

}  // namespace dynasparse
