#include "service/compilation_cache.hpp"

namespace dynasparse {

CompiledProgram CompilationCache::compile_miss(const GnnModel& model,
                                               const Dataset& ds,
                                               const SimConfig& cfg,
                                               const CancellationToken& token) const {
  return plans_ ? plans_->compile_seeded(model, ds, cfg, token)
                : compile(model, ds, cfg, token);
}

std::shared_ptr<const CompiledProgram> CompilationCache::get_or_compile(
    const GnnModel& model, const Dataset& ds, const SimConfig& cfg,
    const CancellationToken& token) {
  if (impl_.max_entries() == 0) {
    // No storage, no key needed: skip the content hash (it walks every
    // weight bit and graph index) and go straight to the compiler. The
    // dummy key is never stored.
    return impl_.get_or_make(CompileKey{}, [&] {
      return std::make_shared<const CompiledProgram>(
          compile_miss(model, ds, cfg, token));
    });
  }
  return get_or_compile(make_compile_key(model, ds, cfg),  // hash outside the lock
                        model, ds, cfg, token);
}

std::shared_ptr<const CompiledProgram> CompilationCache::get_or_compile(
    const CompileKey& key, const GnnModel& model, const Dataset& ds,
    const SimConfig& cfg, const CancellationToken& token) {
  return impl_.get_or_make(key, [&] {
    return std::make_shared<const CompiledProgram>(
        compile_miss(model, ds, cfg, token));
  });
}

CacheStats CompilationCache::stats() const {
  const KeyedCacheStats s = impl_.stats();
  CacheStats out;
  out.hits = s.hits;
  out.misses = s.misses;
  out.evictions = s.evictions;
  out.inflight_joins = s.inflight_joins;
  out.entries = s.entries;
  return out;
}

}  // namespace dynasparse
