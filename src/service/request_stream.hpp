#pragma once
// Request-stream format: a line-oriented description of a serving
// workload, replayed by tools/dynasparse_serve.cpp and the service
// throughput bench.
//
//   # comment lines ignored; blank lines ignored
//   dataset=CO model=gcn scale=4 hidden=16 prune=0.5 seed=7 repeat=2
//
// Every field is optional except dataset; `repeat=N` expands to N
// identical requests (how a stream expresses the repeated-traffic pattern
// the compilation cache amortizes), and `deadline_ms=N` bounds each
// expanded request's end-to-end time (0 = the service default). Unknown
// keys and malformed values throw std::runtime_error with a line number,
// matching the io/ readers.
//
// materialize() regenerates the dataset and model deterministically from
// the spec, so two streams containing the same line produce content-equal
// requests that share one cache entry.

#include <iosfwd>
#include <string>
#include <vector>

#include "runtime/k2p.hpp"
#include "service/inference_service.hpp"

namespace dynasparse {

struct StreamRequestSpec {
  std::string dataset = "CO";   // registry tag (CI/CO/PU/FL/NE/RE)
  int scale = 0;                // 0 = dataset default bench scale
  GnnModelKind model = GnnModelKind::kGcn;
  std::int64_t hidden = 0;      // 0 = dataset default hidden dim
  double prune = 0.0;           // weight sparsity in [0, 1)
  MappingStrategy strategy = MappingStrategy::kDynamic;
  std::uint64_t seed = 2023;
  int repeat = 1;
  std::int64_t deadline_ms = 0;  // 0 = service default; see ServiceRequest

  /// Render back as one stream line (write->parse round-trips).
  std::string to_line() const;
};

/// Parse helpers shared with the CLIs; throw std::runtime_error on
/// unknown names.
GnnModelKind parse_model_kind(const std::string& s);
MappingStrategy parse_strategy_name(const std::string& s);

/// Parse a stream; `repeat` is kept folded (one spec per line).
std::vector<StreamRequestSpec> parse_request_stream(std::istream& in);
std::vector<StreamRequestSpec> read_request_stream_file(const std::string& path);

/// Expand repeat counts into a flat request list, in stream order.
std::vector<StreamRequestSpec> expand_stream(
    const std::vector<StreamRequestSpec>& specs);

/// Deterministically generate the dataset + model for a spec and wrap
/// them as an owning ServiceRequest.
ServiceRequest materialize_request(const StreamRequestSpec& spec);

/// A synthetic mixed workload: `n` requests cycling through a fixed
/// roster of (dataset, model) pairs, seeded by `seed`. Used by the serve
/// tool's --requests mode and the throughput bench.
std::vector<StreamRequestSpec> synthetic_stream(int n, std::uint64_t seed);

}  // namespace dynasparse
