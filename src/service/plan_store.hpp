#pragma once
// PlanStore — cross-request partition-plan reuse (paper Section VIII-A:
// "the optimized IR can be stored and reused if the sparsity of the input
// graph and GNN model changes").
//
// The CompilationCache shares whole CompiledPrograms across *identical*
// requests (equal CompileKeys). This store amortizes one level deeper:
// requests that differ in content but agree on everything the partition
// planner reads — model/plan shape, vertex count, the planning SimConfig
// fields (plan_signature in compiler/signature.hpp) — share one
// PartitionPlan + IR snapshot. A compilation-cache miss consults the
// store and routes through compile_with_plan, skipping plan_partitions
// entirely; reports stay bit-identical to plan-from-scratch compilation
// because an equal plan signature guarantees the planner would have
// returned the very same plan (the determinism contract, extended to
// plan reuse — see the *BitIdentical* tests in tests/plan_store_test.cpp).
//
// Two tiers:
//   memory — a KeyedFutureCache of validated snapshots (LRU, in-flight
//            dedup: concurrent same-shape requests plan once, the rest
//            join the planning in flight);
//   disk   — optional (PlanStoreOptions::dir): snapshots persist via
//            io/ir_io.hpp's write_ir/read_ir plus an `irsig` integrity
//            trailer, so a restarted dynasparse_serve warm-starts its
//            compiler from the plans a previous process computed.
//
// Validation is layered: a disk snapshot must round-trip read_ir and
// match its recorded ir_signature (corrupt or hand-edited files are
// counted in disk_errors and ignored, never trusted); any snapshot must
// then match the live request's planner inputs field-for-field
// (plan_snapshot_compatible) before its plan seeds compile_with_plan — a
// hash-collision or stale-file defense; a validation failure falls back
// to a cold compile and counts in `rejected`. After seeding, the live
// program's ir_signature is compared against the stored one to classify
// exact reuse (same content re-planned, e.g. a service restart) vs
// similar reuse (same shape, different content), surfaced in the stats.
//
// Thread-safe. capacity 0 disables the store (compile_seeded degrades to
// plain compile()).

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "compiler/compiler.hpp"
#include "compiler/signature.hpp"
#include "io/ir_io.hpp"
#include "util/keyed_future_cache.hpp"
#include "util/ordered_mutex.hpp"

namespace dynasparse {

struct PlanStoreOptions {
  /// Memory-tier capacity in plans. 0 disables the store entirely.
  std::size_t capacity = 32;
  /// Disk-tier directory (created if absent). Empty = memory-only. Plans
  /// are written as plan-<signature>.ir files; a fresh process pointed at
  /// the same directory reloads them instead of re-planning.
  std::string dir;
  /// Shared memory-budget tier for the memory-tier snapshots (optional).
  std::shared_ptr<MemoryBudget::Tier> tier;
};

struct PlanStoreStats {
  std::int64_t hits = 0;            // memory-tier hits (ready or in flight)
  std::int64_t misses = 0;          // memory-tier misses
  std::int64_t inflight_joins = 0;  // hits that waited on a plan in flight
  std::int64_t entries = 0;         // resident memory-tier plans
  std::int64_t evictions = 0;       // memory-tier LRU drops
  std::int64_t planned = 0;         // plans computed from scratch
  std::int64_t seeded = 0;          // compiles that reused a stored plan
  std::int64_t seeded_exact = 0;    // seeded with live IR == stored IR (ir_signature)
  std::int64_t rejected = 0;        // stored plans failing live-input validation
  std::int64_t disk_hits = 0;       // plans loaded from the disk tier
  std::int64_t disk_writes = 0;     // snapshots persisted
  std::int64_t disk_errors = 0;     // unreadable/corrupt/unwritable snapshots
  std::int64_t bytes = 0;           // approx resident bytes of memory-tier plans
  double planning_ms = 0.0;         // wall-clock inside plan_partitions (cold plans)
};

/// One stored artifact: the reusable IR snapshot plus its content hash
/// (recomputed and checked whenever the snapshot crosses the disk tier).
struct StoredPlan {
  IrSnapshot snap;
  std::uint64_t ir_sig = 0;  // ir_signature(snap.kernels, snap.plan)
};

/// Does `snap` match the live planner inputs field-for-field? True iff
/// the snapshot's kernels agree with `model`'s kernel sequence on every
/// field the plan is derived from — (kind, out_dim) per kernel and the
/// vertex count. num_edges, weight values, and the rest of the content
/// deliberately do not participate: they vary across plan-compatible
/// requests and never reach plan_partitions.
bool plan_snapshot_compatible(const IrSnapshot& snap, const GnnModel& model,
                              std::int64_t num_vertices);

class PlanStore {
 public:
  explicit PlanStore(PlanStoreOptions options = {});

  bool enabled() const { return impl_.max_entries() > 0; }
  bool disk_enabled() const { return disk_ok_; }
  const PlanStoreOptions& options() const { return options_; }

  /// compile(), with the planning stage shared across plan-compatible
  /// requests: resolve the plan signature, fetch the stored snapshot
  /// (memory tier, then disk, then plan from scratch — concurrent
  /// requests for one signature plan exactly once), validate it against
  /// the live inputs, and compile through compile_with_plan. Falls back
  /// to a plain cold compile() when the store is disabled, validation
  /// rejects the snapshot, or anything in the store path throws — the
  /// store can only ever cost a fallback, never a wrong program. Throws
  /// what compile() throws for invalid inputs. A RequestAbortedError
  /// (the request's own `token` fired) is NOT a store failure and
  /// propagates — an aborted request must not fall back to a cold
  /// compile nobody will consume.
  CompiledProgram compile_seeded(const GnnModel& model, const Dataset& ds,
                                 const SimConfig& cfg,
                                 const CancellationToken& token = {},
                                 const OperandSource& operands = {});

  /// The stored snapshot for `key`: memory tier, then disk, else plan
  /// from scratch and store (and persist) the result. `planned_here` (if
  /// non-null) is set to true iff this call ran the planner — false for
  /// memory hits, in-flight joins, and disk loads, i.e. whenever the
  /// planning work was reused. Exposed for tests; compile_seeded is the
  /// serving entry point.
  std::shared_ptr<const StoredPlan> get_or_plan(std::uint64_t key,
                                                const GnnModel& model,
                                                const Dataset& ds,
                                                const SimConfig& cfg,
                                                bool* planned_here = nullptr,
                                                const CancellationToken& token = {});

  PlanStoreStats stats() const;
  /// Drop every ready memory-tier entry (disk files stay).
  void clear() { impl_.clear(); }
  /// Budget shrinker hook: evict memory-tier plans down to `target` bytes.
  void shrink_to_bytes(std::size_t target) { impl_.shrink_to_bytes(target); }

  /// Disk-tier file path for a plan signature (inside options().dir).
  std::string disk_path(std::uint64_t key) const;

 private:
  std::shared_ptr<const StoredPlan> load_disk(std::uint64_t key);
  void store_disk(std::uint64_t key, const StoredPlan& plan);

  const PlanStoreOptions options_;
  bool disk_ok_ = false;
  KeyedFutureCache<std::uint64_t, StoredPlan> impl_;

  mutable OrderedMutex side_mu_{LockRank::kPlanStoreSide};  // guards the side counters below
  std::int64_t planned_ = 0, seeded_ = 0, seeded_exact_ = 0, rejected_ = 0;
  std::int64_t disk_hits_ = 0, disk_writes_ = 0, disk_errors_ = 0;
  double planning_ms_ = 0.0;
};

}  // namespace dynasparse
